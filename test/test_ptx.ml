(* Tests for the PTX-like ISA: structure, printing/parsing, CFG,
   liveness, register allocation, scalar optimizations, and the static
   execution-profile estimation that feeds the paper's metrics. *)

open Ptx
module I = Instr

let t name f = Alcotest.test_case name `Quick f
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

let rf i = Reg.make Reg.F32 i
let rr i = Reg.make Reg.S32 i
let rp i = Reg.make Reg.Pred i

(* ------------------------------------------------------------------ *)
(* Registers                                                           *)
(* ------------------------------------------------------------------ *)

let reg_tests =
  [
    t "to_string uses PTX class prefixes" (fun () ->
        check_s "f" "%f3" (Reg.to_string (rf 3));
        check_s "r" "%r0" (Reg.to_string (rr 0));
        check_s "p" "%p7" (Reg.to_string (rp 7)));
    t "compare orders by class then index" (fun () ->
        check_b "f<r" true (Reg.compare (rf 9) (rr 0) < 0);
        check_b "r<p" true (Reg.compare (rr 9) (rp 0) < 0);
        check_b "idx" true (Reg.compare (rf 1) (rf 2) < 0);
        check_i "eq" 0 (Reg.compare (rp 4) (rp 4)));
    t "gen hands out distinct fresh registers per class" (fun () ->
        let g = Reg.Gen.create () in
        let a = Reg.Gen.fresh g Reg.F32 in
        let b = Reg.Gen.fresh g Reg.F32 in
        let c = Reg.Gen.fresh g Reg.S32 in
        check_b "distinct" true (not (Reg.equal a b));
        check_i "f idx" 0 (Reg.idx a);
        check_i "r idx starts fresh" 0 (Reg.idx c));
    t "create_above avoids existing registers" (fun () ->
        let g = Reg.Gen.create_above [ rf 5; rr 2 ] in
        check_i "f" 6 (Reg.idx (Reg.Gen.fresh g Reg.F32));
        check_i "r" 3 (Reg.idx (Reg.Gen.fresh g Reg.S32));
        check_i "p" 0 (Reg.idx (Reg.Gen.fresh g Reg.Pred)));
    t "make rejects negative indices" (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Reg.make: negative index") (fun () ->
            ignore (Reg.make Reg.F32 (-1))));
  ]

(* ------------------------------------------------------------------ *)
(* Instructions                                                        *)
(* ------------------------------------------------------------------ *)

let instr_tests =
  [
    t "def/uses of an fmad" (fun () ->
        let i = I.Fmad (rf 0, I.Reg (rf 1), I.Reg (rf 2), I.Reg (rf 0)) in
        check_b "def" true (I.def i = Some (rf 0));
        check_i "uses" 3 (List.length (I.uses i)));
    t "stores define nothing" (fun () ->
        let i = I.St (I.Global, { base = I.Reg (rr 1); offset = 4 }, I.Reg (rf 0)) in
        check_b "def" true (I.def i = None);
        check_i "uses" 2 (List.length (I.uses i)));
    t "immediates and params are not register uses" (fun () ->
        let i = I.F2 (I.FAdd, rf 0, I.Imm_f 1.0, I.Par "x") in
        check_i "uses" 0 (List.length (I.uses i)));
    t "map_regs renames defs and uses" (fun () ->
        let i = I.F2 (I.FAdd, rf 0, I.Reg (rf 1), I.Reg (rf 2)) in
        let j = I.map_regs (fun r -> Reg.make (Reg.ty r) (Reg.idx r + 10)) i in
        check_b "renamed" true (j = I.F2 (I.FAdd, rf 10, I.Reg (rf 11), I.Reg (rf 12))));
    t "map_uses leaves the destination alone" (fun () ->
        let i = I.Mov (rf 0, I.Reg (rf 1)) in
        let j = I.map_uses (fun _ -> I.Imm_f 2.0) i in
        check_b "dest kept" true (j = I.Mov (rf 0, I.Imm_f 2.0)));
    t "SFU classification" (fun () ->
        check_b "rsqrt" true (I.is_sfu (I.F1 (I.FRsqrt, rf 0, I.Reg (rf 1))));
        check_b "sin" true (I.is_sfu (I.F1 (I.FSin, rf 0, I.Reg (rf 1))));
        check_b "neg is not SFU" false (I.is_sfu (I.F1 (I.FNeg, rf 0, I.Reg (rf 1))));
        check_b "add is not SFU" false (I.is_sfu (I.F2 (I.FAdd, rf 0, I.Imm_f 1.0, I.Imm_f 2.0))));
    t "blocking classification (paper sec 4)" (fun () ->
        let gl = I.Ld (I.Global, rf 0, { base = I.Reg (rr 0); offset = 0 }) in
        let sh = I.Ld (I.Shared, rf 0, { base = I.Reg (rr 0); offset = 0 }) in
        let lo = I.Ld (I.Local, rf 0, { base = I.Imm_i 0; offset = 0 }) in
        check_b "global load blocks" true (I.is_blocking gl);
        check_b "local load blocks (off-chip)" true (I.is_blocking lo);
        check_b "shared load does not" false (I.is_blocking sh);
        check_b "barrier blocks" true (I.is_blocking I.Bar);
        check_b "stores do not block the warp" false
          (I.is_blocking (I.St (I.Global, { base = I.Reg (rr 0); offset = 0 }, I.Imm_f 0.0))));
    t "off-chip byte accounting" (fun () ->
        check_i "global ld" 4 (I.global_bytes (I.Ld (I.Global, rf 0, { base = I.Imm_i 0; offset = 0 })));
        check_i "shared ld" 0 (I.global_bytes (I.Ld (I.Shared, rf 0, { base = I.Imm_i 0; offset = 0 })));
        check_i "global st" 4
          (I.global_bytes (I.St (I.Global, { base = I.Imm_i 0; offset = 0 }, I.Imm_f 1.0))));
  ]

(* ------------------------------------------------------------------ *)
(* Programs and validation                                             *)
(* ------------------------------------------------------------------ *)

let block = Prog.block

let simple_kernel ?(smem = 0) blocks =
  Prog.make ~name:"k" ~params:[ { Prog.pname = "A"; pty = Prog.PBuf I.Global } ] ~smem_words:smem
    ~lmem_words:0 blocks

let prog_tests =
  [
    t "validate accepts a well-formed kernel" (fun () ->
        ignore
          (Prog.validate
             (simple_kernel
                [
                  block "entry" [ I.Mov (rr 0, I.Spec I.Tid_x) ] (Prog.Jump "exit");
                  block "exit" [] Prog.Ret;
                ])));
    t "validate rejects duplicate labels" (fun () ->
        check_b "raises" true
          (try
             ignore (Prog.validate (simple_kernel [ block "a" [] Prog.Ret; block "a" [] Prog.Ret ]));
             false
           with Invalid_argument _ -> true));
    t "validate rejects unknown jump targets" (fun () ->
        check_b "raises" true
          (try
             ignore (Prog.validate (simple_kernel [ block "a" [] (Prog.Jump "nowhere") ]));
             false
           with Invalid_argument _ -> true));
    t "validate rejects unknown reconvergence labels" (fun () ->
        check_b "raises" true
          (try
             ignore
               (Prog.validate
                  (simple_kernel
                     [
                       block "a" []
                         (Prog.Br
                            { pred = rp 0; negate = false; if_true = "b"; if_false = "b"; reconv = "zz" });
                       block "b" [] Prog.Ret;
                     ]));
             false
           with Invalid_argument _ -> true));
    t "validate rejects undeclared parameter uses" (fun () ->
        check_b "raises" true
          (try
             ignore
               (Prog.validate
                  (simple_kernel [ block "a" [ I.Mov (rr 0, I.Par "nope") ] Prog.Ret ]));
             false
           with Invalid_argument _ -> true));
    t "validate rejects empty kernels" (fun () ->
        check_b "raises" true
          (try
             ignore (Prog.validate (simple_kernel []));
             false
           with Invalid_argument _ -> true));
    t "static_size counts bodies plus terminators" (fun () ->
        let k =
          simple_kernel
            [
              block "a" [ I.Mov (rr 0, I.Imm_i 1); I.Mov (rr 1, I.Imm_i 2) ] (Prog.Jump "b");
              block "b" [] Prog.Ret;
            ]
        in
        check_i "size" 4 (Prog.static_size k));
    t "all_regs collects every register once" (fun () ->
        let k =
          simple_kernel
            [
              block "a"
                [ I.F2 (I.FAdd, rf 0, I.Reg (rf 1), I.Reg (rf 1)); I.Mov (rr 0, I.Spec I.Tid_x) ]
                Prog.Ret;
            ]
        in
        check_i "count" 3 (Reg.Set.cardinal (Prog.all_regs k)));
  ]

(* ------------------------------------------------------------------ *)
(* Printer / parser roundtrip                                          *)
(* ------------------------------------------------------------------ *)

(* A random well-formed kernel generator for round-trip testing. *)
let random_kernel seed : Prog.t =
  let rng = Util.Rng.create seed in
  let n_blocks = 1 + Util.Rng.int rng 4 in
  let labels = List.init n_blocks (Printf.sprintf "B%d") in
  let label i = List.nth labels (i mod n_blocks) in
  let operand () =
    match Util.Rng.int rng 6 with
    | 0 -> I.Reg (rf (Util.Rng.int rng 8))
    | 1 -> I.Reg (rr (Util.Rng.int rng 8))
    | 2 -> I.Imm_f (Util.Float32.round (Util.Rng.float_range rng (-100.0) 100.0))
    | 3 -> I.Imm_i (Util.Rng.int rng 1000 - 500)
    | 4 -> I.Spec I.Tid_x
    | _ -> I.Par "A"
  in
  let int_operand () =
    match Util.Rng.int rng 3 with
    | 0 -> I.Reg (rr (Util.Rng.int rng 8))
    | 1 -> I.Imm_i (Util.Rng.int rng 4096)
    | _ -> I.Par "A"
  in
  let instr () =
    match Util.Rng.int rng 10 with
    | 0 -> I.Mov (rf (Util.Rng.int rng 8), operand ())
    | 1 -> I.F2 (I.FMul, rf 0, operand (), operand ())
    | 2 -> I.Fmad (rf 1, operand (), operand (), operand ())
    | 3 -> I.I2 (I.IShl, rr 2, int_operand (), I.Imm_i (Util.Rng.int rng 8))
    | 4 -> I.Imad (rr 3, int_operand (), I.Imm_i 4, int_operand ())
    | 5 -> I.Setp (I.CLe, Reg.S32, rp 0, int_operand (), int_operand ())
    | 6 -> I.Ld (I.Global, rf 4, { base = int_operand (); offset = 4 * Util.Rng.int rng 16 })
    | 7 -> I.St (I.Shared, { base = int_operand (); offset = 0 }, operand ())
    | 8 -> I.Bar
    | _ -> I.Selp (rf 5, operand (), operand (), I.Reg (rp 0))
  in
  let mk_block i name =
    let body = List.init (Util.Rng.int rng 6) (fun _ -> instr ()) in
    let term =
      match Util.Rng.int rng 3 with
      | 0 when i < n_blocks - 1 -> Prog.Jump (label (i + 1))
      | 1 when i < n_blocks - 1 ->
        Prog.Br
          {
            pred = rp 0;
            negate = Util.Rng.int rng 2 = 0;
            if_true = label (i + 1);
            if_false = label (Util.Rng.int rng n_blocks);
            reconv = label (Util.Rng.int rng n_blocks);
          }
      | _ -> Prog.Ret
    in
    { Prog.label = name; weight = float_of_int (1 + Util.Rng.int rng 100); body; term }
  in
  Prog.validate (simple_kernel (List.mapi mk_block labels))

let roundtrip_tests =
  [
    t "roundtrip: hand-written kernel" (fun () ->
        let k =
          simple_kernel ~smem:128
            [
              block ~weight:17.0 "entry"
                [
                  I.Mov (rr 0, I.Spec I.Tid_x);
                  I.Imad (rr 1, I.Reg (rr 0), I.Imm_i 4, I.Par "A");
                  I.Ld (I.Global, rf 0, { base = I.Reg (rr 1); offset = 16 });
                  I.F1 (I.FRsqrt, rf 1, I.Reg (rf 0));
                  I.Setp (I.CLt, Reg.F32, rp 0, I.Reg (rf 1), I.Imm_f 0.5);
                ]
                (Prog.Br
                   { pred = rp 0; negate = true; if_true = "then"; if_false = "exit"; reconv = "exit" });
              block "then"
                [ I.St (I.Global, { base = I.Reg (rr 1); offset = 0 }, I.Reg (rf 1)); I.Bar ]
                (Prog.Jump "exit");
              block "exit" [] Prog.Ret;
            ]
        in
        let k' = Parser.kernel_of_string (Pp.kernel k) in
        check_s "identical text" (Pp.kernel k) (Pp.kernel k'));
    t "roundtrip preserves negative offsets and floats" (fun () ->
        let k =
          simple_kernel
            [
              block "a"
                [
                  I.Ld (I.Global, rf 0, { base = I.Reg (rr 0); offset = -8 });
                  I.Mov (rf 1, I.Imm_f 0.1);
                  I.Mov (rf 2, I.Imm_f (-1.25e-7));
                  I.Mov (rf 3, I.Imm_f 3.0);
                ]
                Prog.Ret;
            ]
        in
        let k' = Parser.kernel_of_string (Pp.kernel k) in
        check_b "equal" true (k = k'));
    t "parser rejects garbage" (fun () ->
        check_b "raises" true
          (try
             ignore (Parser.kernel_of_string ".kernel x () .smem 0 .lmem 0 { A: frobnicate; }");
             false
           with Parser.Error _ | Lexer.Error _ -> true));
    t "parser rejects trailing input" (fun () ->
        check_b "raises" true
          (try
             ignore
               (Parser.kernel_of_string
                  ".kernel x () .smem 0 .lmem 0 { A: ret; } extra");
             false
           with Parser.Error _ -> true));
    t "parser checks ld destination class against suffix" (fun () ->
        check_b "raises" true
          (try
             ignore
               (Parser.kernel_of_string
                  ".kernel x (.param .gbuf A) .smem 0 .lmem 0 { A0: ld.global.f32 %r1, [$A]; ret; }");
             false
           with Parser.Error _ -> true));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"roundtrip: random kernels (qcheck)" ~count:200
         QCheck.(int_range 0 100000)
         (fun seed ->
           let k = random_kernel seed in
           let k' = Parser.kernel_of_string (Pp.kernel k) in
           k = k'));
  ]

(* ------------------------------------------------------------------ *)
(* CFG and liveness                                                    *)
(* ------------------------------------------------------------------ *)

let diamond =
  simple_kernel
    [
      block "entry"
        [ I.Setp (I.CLt, Reg.S32, rp 0, I.Spec I.Tid_x, I.Imm_i 4); I.Mov (rf 0, I.Imm_f 1.0) ]
        (Prog.Br { pred = rp 0; negate = false; if_true = "t"; if_false = "f"; reconv = "join" });
      block "t" [ I.F2 (I.FAdd, rf 1, I.Reg (rf 0), I.Imm_f 1.0) ] (Prog.Jump "join");
      block "f" [ I.F2 (I.FAdd, rf 1, I.Reg (rf 0), I.Imm_f 2.0) ] (Prog.Jump "join");
      block "join"
        [ I.St (I.Global, { base = I.Par "A"; offset = 0 }, I.Reg (rf 1)) ]
        Prog.Ret;
    ]

let cfg_tests =
  [
    t "successors and predecessors of a diamond" (fun () ->
        let g = Cfg.of_kernel diamond in
        check_i "entry succs" 2 (List.length (Cfg.succs g).(Cfg.index g "entry"));
        check_i "join preds" 2 (List.length (Cfg.preds g).(Cfg.index g "join"));
        check_i "join succs" 0 (List.length (Cfg.succs g).(Cfg.index g "join")));
    t "reverse postorder starts at the entry" (fun () ->
        let g = Cfg.of_kernel diamond in
        match Cfg.reverse_postorder g with
        | 0 :: _ -> ()
        | _ -> Alcotest.fail "rpo must start at entry");
    t "rpo visits all reachable blocks once" (fun () ->
        let g = Cfg.of_kernel diamond in
        let rpo = Cfg.reverse_postorder g in
        check_i "count" 4 (List.length (List.sort_uniq compare rpo)));
    t "unreachable blocks are reported" (fun () ->
        let k =
          simple_kernel [ block "a" [] Prog.Ret; block "dead" [] Prog.Ret ]
        in
        check_b "dead found" true (Cfg.unreachable (Cfg.of_kernel k) = [ 1 ]));
    t "loop back edges are handled" (fun () ->
        let k =
          simple_kernel
            [
              block "pre" [ I.Mov (rr 0, I.Imm_i 0) ] (Prog.Jump "hdr");
              block "hdr"
                [ I.Setp (I.CLt, Reg.S32, rp 0, I.Reg (rr 0), I.Imm_i 10) ]
                (Prog.Br
                   { pred = rp 0; negate = false; if_true = "body"; if_false = "exit"; reconv = "exit" });
              block "body" [ I.I2 (I.IAdd, rr 0, I.Reg (rr 0), I.Imm_i 1) ] (Prog.Jump "hdr");
              block "exit" [] Prog.Ret;
            ]
        in
        let g = Cfg.of_kernel k in
        check_i "hdr preds" 2 (List.length (Cfg.preds g).(Cfg.index g "hdr")));
    t "liveness: value live across the diamond" (fun () ->
        let g = Cfg.of_kernel diamond in
        let l = Liveness.compute g in
        (* f0 is live into both branches; f1 live into join. *)
        check_b "f0 into t" true (Reg.Set.mem (rf 0) l.live_in.(Cfg.index g "t"));
        check_b "f0 into f" true (Reg.Set.mem (rf 0) l.live_in.(Cfg.index g "f"));
        check_b "f1 into join" true (Reg.Set.mem (rf 1) l.live_in.(Cfg.index g "join"));
        check_b "f1 not live into entry" false (Reg.Set.mem (rf 1) l.live_in.(Cfg.index g "entry")));
    t "liveness: loop-carried register stays live in the loop" (fun () ->
        let k =
          simple_kernel
            [
              block "pre" [ I.Mov (rr 0, I.Imm_i 0) ] (Prog.Jump "hdr");
              block "hdr"
                [ I.Setp (I.CLt, Reg.S32, rp 0, I.Reg (rr 0), I.Imm_i 10) ]
                (Prog.Br
                   { pred = rp 0; negate = false; if_true = "body"; if_false = "exit"; reconv = "exit" });
              block "body" [ I.I2 (I.IAdd, rr 0, I.Reg (rr 0), I.Imm_i 1) ] (Prog.Jump "hdr");
              block "exit"
                [ I.St (I.Global, { base = I.Par "A"; offset = 0 }, I.Reg (rr 0)) ]
                Prog.Ret;
            ]
        in
        let g = Cfg.of_kernel k in
        let l = Liveness.compute g in
        check_b "r0 live out of body" true (Reg.Set.mem (rr 0) l.live_out.(Cfg.index g "body"));
        check_b "r0 live out of hdr" true (Reg.Set.mem (rr 0) l.live_out.(Cfg.index g "hdr")));
    t "live_after_each tracks within-block kill points" (fun () ->
        let k =
          simple_kernel
            [
              block "a"
                [
                  I.Mov (rf 0, I.Imm_f 1.0);
                  I.F2 (I.FAdd, rf 1, I.Reg (rf 0), I.Imm_f 1.0);
                  I.St (I.Global, { base = I.Par "A"; offset = 0 }, I.Reg (rf 1));
                ]
                Prog.Ret;
            ]
        in
        let g = Cfg.of_kernel k in
        let l = Liveness.compute g in
        let after = Liveness.live_after_each l g 0 in
        check_b "f0 live after mov" true (Reg.Set.mem (rf 0) after.(0));
        check_b "f0 dead after add" false (Reg.Set.mem (rf 0) after.(1));
        check_b "f1 dead after store" false (Reg.Set.mem (rf 1) after.(2)));
  ]

(* ------------------------------------------------------------------ *)
(* Register allocation                                                 *)
(* ------------------------------------------------------------------ *)

let regalloc_tests =
  [
    t "disjoint lifetimes share a physical register" (fun () ->
        let k =
          simple_kernel
            [
              block "a"
                [
                  I.Mov (rf 0, I.Imm_f 1.0);
                  I.St (I.Global, { base = I.Par "A"; offset = 0 }, I.Reg (rf 0));
                  I.Mov (rf 1, I.Imm_f 2.0);
                  I.St (I.Global, { base = I.Par "A"; offset = 4 }, I.Reg (rf 1));
                ]
                Prog.Ret;
            ]
        in
        let r = Regalloc.allocate k in
        check_i "one register suffices" 1 r.reg_count);
    t "overlapping lifetimes need distinct registers" (fun () ->
        let k =
          simple_kernel
            [
              block "a"
                [
                  I.Mov (rf 0, I.Imm_f 1.0);
                  I.Mov (rf 1, I.Imm_f 2.0);
                  I.F2 (I.FAdd, rf 2, I.Reg (rf 0), I.Reg (rf 1));
                  I.St (I.Global, { base = I.Par "A"; offset = 0 }, I.Reg (rf 2));
                ]
                Prog.Ret;
            ]
        in
        check_b ">= 2" true ((Regalloc.allocate k).reg_count >= 2));
    t "no interval conflicts on the diamond" (fun () ->
        check_b "ok" true (Regalloc.check_no_conflicts (Regalloc.allocate diamond)));
    t "apply keeps the program well-formed" (fun () ->
        let r = Regalloc.allocate diamond in
        ignore (Prog.validate (Regalloc.apply diamond r)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"no conflicting assignment on random kernels (qcheck)" ~count:100
         QCheck.(int_range 0 100000)
         (fun seed ->
           let k = random_kernel seed in
           Regalloc.check_no_conflicts (Regalloc.allocate k)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"reg_count never exceeds virtual count (qcheck)" ~count:100
         QCheck.(int_range 0 100000)
         (fun seed ->
           let k = random_kernel seed in
           (Regalloc.allocate k).reg_count <= Reg.Set.cardinal (Prog.all_regs k)));
  ]

(* ------------------------------------------------------------------ *)
(* Scalar optimizations                                                *)
(* ------------------------------------------------------------------ *)

let body_of k = (List.hd (Opt.run k).Prog.blocks).Prog.body

let straightline instrs extra_live =
  (* Keep [extra_live] registers observable via stores. *)
  simple_kernel
    [
      block "a"
        (instrs
        @ List.mapi
            (fun i r -> I.St (I.Global, { base = I.Par "A"; offset = 4 * i }, I.Reg r))
            extra_live)
        Prog.Ret;
    ]

let opt_tests =
  [
    t "constant folding collapses arithmetic" (fun () ->
        let k =
          straightline
            [
              I.Mov (rf 0, I.Imm_f 3.0);
              I.F2 (I.FMul, rf 1, I.Reg (rf 0), I.Imm_f 2.0);
              I.F2 (I.FAdd, rf 2, I.Reg (rf 1), I.Imm_f 1.0);
            ]
            [ rf 2 ]
        in
        match body_of k with
        | [ I.St (_, _, I.Imm_f 7.0) ] -> ()
        | b -> Alcotest.failf "expected a single folded store, got %d instrs" (List.length b));
    t "integer identities simplify addressing" (fun () ->
        let k =
          straightline
            [
              I.I2 (I.IMul, rr 0, I.Spec I.Tid_x, I.Imm_i 1);
              I.I2 (I.IAdd, rr 1, I.Reg (rr 0), I.Imm_i 0);
              I.Imad (rr 2, I.Reg (rr 1), I.Imm_i 4, I.Imm_i 0);
              I.Ld (I.Global, rf 0, { base = I.Reg (rr 2); offset = 0 });
            ]
            [ rf 0 ]
        in
        (* mul-by-1 and add-0 vanish; the Imad becomes a single shl/mul. *)
        check_b "short" true (List.length (body_of k) <= 3));
    t "local CSE shares repeated address computations" (fun () ->
        let addr () = I.Imad (rr 0, I.Spec I.Tid_x, I.Imm_i 4, I.Par "A") in
        let k =
          simple_kernel
            [
              block "a"
                [
                  addr ();
                  I.Ld (I.Global, rf 0, { base = I.Reg (rr 0); offset = 0 });
                  I.Imad (rr 1, I.Spec I.Tid_x, I.Imm_i 4, I.Par "A");
                  I.St (I.Global, { base = I.Reg (rr 1); offset = 4 }, I.Reg (rf 0));
                ]
                Prog.Ret;
            ]
        in
        let b = body_of k in
        let mads = List.filter (function I.Imad _ -> true | _ -> false) b in
        check_i "single mad survives" 1 (List.length mads));
    t "CSE must not share across a redefinition" (fun () ->
        let k =
          simple_kernel
            [
              block "a"
                [
                  I.I2 (I.IAdd, rr 1, I.Reg (rr 0), I.Imm_i 1);
                  (* redefine the operand *)
                  I.I2 (I.IAdd, rr 0, I.Reg (rr 0), I.Imm_i 5);
                  I.I2 (I.IAdd, rr 2, I.Reg (rr 0), I.Imm_i 1);
                  I.St (I.Global, { base = I.Par "A"; offset = 0 }, I.Reg (rr 1));
                  I.St (I.Global, { base = I.Par "A"; offset = 4 }, I.Reg (rr 2));
                ]
                Prog.Ret;
            ]
        in
        let adds =
          List.filter (function I.I2 (I.IAdd, _, _, _) -> true | _ -> false) (body_of k)
        in
        check_b "both adds survive" true (List.length adds >= 2)
        (* note: rr0+1 before and after the redefinition are different values *));
    t "DCE removes dead pure code but keeps stores and barriers" (fun () ->
        let k =
          simple_kernel
            [
              block "a"
                [
                  I.Mov (rf 0, I.Imm_f 1.0);
                  (* dead *)
                  I.F1 (I.FSin, rf 1, I.Imm_f 2.0);
                  (* dead *)
                  I.Bar;
                  I.St (I.Global, { base = I.Par "A"; offset = 0 }, I.Imm_f 3.0);
                ]
                Prog.Ret;
            ]
        in
        match body_of k with
        | [ I.Bar; I.St _ ] -> ()
        | b -> Alcotest.failf "expected [bar; st], got %d instrs" (List.length b));
    t "dead loads are removed" (fun () ->
        let k =
          straightline [ I.Ld (I.Global, rf 0, { base = I.Par "A"; offset = 0 }) ] []
        in
        check_i "empty" 0 (List.length (body_of k)));
    t "integer mad with zero multiplicand folds to its addend" (fun () ->
        let k =
          straightline [ I.Imad (rr 0, I.Reg (rr 1), I.Imm_i 0, I.Imm_i 5) ] [ rr 0 ]
        in
        (match body_of k with
        | [ I.St (_, _, I.Imm_i 5) ] -> ()
        | _ -> Alcotest.fail "expected the constant addend");
        (* float mad with a zero multiplicand must NOT fold: x could be
           inf or nan, and our folder is IEEE-strict. *)
        let kf =
          straightline [ I.Fmad (rf 0, I.Reg (rf 1), I.Imm_f 0.0, I.Imm_f 5.0) ] [ rf 0 ]
        in
        check_b "float mad survives" true
          (List.exists (function I.Fmad _ -> true | _ -> false) (body_of kf)));
    t "setp on constants folds through selp" (fun () ->
        let k =
          straightline
            [
              I.Setp (I.CLt, Reg.S32, rp 0, I.Imm_i 1, I.Imm_i 2);
              I.Selp (rf 0, I.Imm_f 10.0, I.Imm_f 20.0, I.Reg (rp 0));
            ]
            [ rf 0 ]
        in
        match body_of k with
        | [ I.St (_, _, I.Imm_f 10.0) ] -> ()
        | _ -> Alcotest.fail "expected the selected constant");
    t "division by zero is not folded" (fun () ->
        let k = straightline [ I.I2 (I.IDiv, rr 0, I.Imm_i 5, I.Imm_i 0) ] [ rr 0 ] in
        check_b "division survives" true
          (List.exists (function I.I2 (I.IDiv, _, _, _) -> true | _ -> false) (body_of k)));
    t "adding +0.0 is not an identity (signed zero)" (fun () ->
        (* x + (+0.0) is +0.0 when x = -0.0, so the add must survive;
           x + (-0.0) is x for every x and may fold away. *)
        let with_addend z =
          straightline
            [
              I.Ld (I.Global, rf 0, { base = I.Par "A"; offset = 0 });
              I.F2 (I.FAdd, rf 1, I.Reg (rf 0), I.Imm_f z);
            ]
            [ rf 1 ]
        in
        check_b "+0.0 addend survives" true
          (List.exists
             (function I.F2 (I.FAdd, _, _, _) -> true | _ -> false)
             (body_of (with_addend 0.0)));
        check_b "-0.0 addend folds" false
          (List.exists
             (function I.F2 (I.FAdd, _, _, _) -> true | _ -> false)
             (body_of (with_addend (-0.0)))));
    t "cse does not reuse an expression clobbered by its own destination" (fun () ->
        (* [add f1, f1, f1] computes 2x into f1; the later textually
           identical [add f3, f1, f1] computes 4x and must stay. *)
        let k =
          straightline
            [
              I.Ld (I.Global, rf 1, { base = I.Par "A"; offset = 0 });
              I.F2 (I.FAdd, rf 1, I.Reg (rf 1), I.Reg (rf 1));
              I.F2 (I.FAdd, rf 3, I.Reg (rf 1), I.Reg (rf 1));
            ]
            [ rf 1; rf 3 ]
        in
        let adds =
          List.length
            (List.filter (function I.F2 (I.FAdd, _, _, _) -> true | _ -> false) (body_of k))
        in
        check_i "both adds survive" 2 adds);
    t "opt terminates (fixed point) and is idempotent" (fun () ->
        let k = Opt.run diamond in
        check_b "idempotent" true (Opt.run k = k));
  ]

(* ------------------------------------------------------------------ *)
(* Static profile estimation (Count)                                   *)
(* ------------------------------------------------------------------ *)

let count_tests =
  [
    t "weights multiply instruction counts" (fun () ->
        let k =
          simple_kernel
            [
              block ~weight:10.0 "a" [ I.Mov (rf 0, I.Imm_f 1.0); I.Bar ] Prog.Ret;
            ]
        in
        let p = Count.profile_of k in
        (* (2 body + 1 term) * 10 *)
        Alcotest.(check (float 1e-9)) "instr" 30.0 p.instr;
        Alcotest.(check (float 1e-9)) "barriers" 10.0 p.barriers);
    t "independent load runs count as one region unit" (fun () ->
        let body =
          [
            I.Ld (I.Global, rf 0, { base = I.Par "A"; offset = 0 });
            I.Ld (I.Global, rf 1, { base = I.Par "A"; offset = 4 });
            I.F2 (I.FAdd, rf 2, I.Reg (rf 0), I.Reg (rf 1));
          ]
        in
        let k = simple_kernel [ block "a" body Prog.Ret ] in
        let p = Count.profile_of k in
        Alcotest.(check (float 1e-9)) "one event" 1.0 p.mem_bar_events);
    t "a dependent load starts a new run" (fun () ->
        let body =
          [
            I.Ld (I.Global, rr 0, { base = I.Par "A"; offset = 0 });
            (* pointer chase: depends on the previous load *)
            I.Ld (I.Global, rf 1, { base = I.Reg (rr 0); offset = 0 });
          ]
        in
        let k = simple_kernel [ block "a" body Prog.Ret ] in
        Alcotest.(check (float 1e-9)) "two events" 2.0 (Count.profile_of k).mem_bar_events);
    t "address arithmetic between independent loads keeps the run open" (fun () ->
        let body =
          [
            I.Ld (I.Global, rf 0, { base = I.Par "A"; offset = 0 });
            I.Imad (rr 0, I.Spec I.Tid_x, I.Imm_i 4, I.Par "A");
            I.Ld (I.Global, rf 1, { base = I.Reg (rr 0); offset = 0 });
          ]
        in
        let k = simple_kernel [ block "a" body Prog.Ret ] in
        Alcotest.(check (float 1e-9)) "one event" 1.0 (Count.profile_of k).mem_bar_events);
    t "barriers close load runs and count themselves" (fun () ->
        let body =
          [
            I.Ld (I.Global, rf 0, { base = I.Par "A"; offset = 0 });
            I.Bar;
            I.Ld (I.Global, rf 1, { base = I.Par "A"; offset = 4 });
          ]
        in
        let k = simple_kernel [ block "a" body Prog.Ret ] in
        Alcotest.(check (float 1e-9)) "three events" 3.0 (Count.profile_of k).mem_bar_events);
    t "SFU runs are tracked separately" (fun () ->
        let body =
          [
            I.F1 (I.FRsqrt, rf 0, I.Imm_f 2.0);
            I.F2 (I.FAdd, rf 1, I.Reg (rf 0), I.Imm_f 1.0);
            I.F1 (I.FSin, rf 2, I.Reg (rf 1));
          ]
        in
        let k = simple_kernel [ block "a" body Prog.Ret ] in
        let p = Count.profile_of k in
        Alcotest.(check (float 1e-9)) "sfu events" 2.0 p.sfu_events;
        Alcotest.(check (float 1e-9)) "no mem events" 0.0 p.mem_bar_events);
    t "regions uses SFU events only when they dominate (paper rule)" (fun () ->
        Alcotest.(check (float 1e-9)) "sfu dominates" 11.0
          (Count.effective_events ~mem_bar:1.0 ~sfu:10.0);
        Alcotest.(check (float 1e-9)) "mem dominates" 10.0
          (Count.effective_events ~mem_bar:10.0 ~sfu:2.0));
    t "matmul-paper-scale profile: weighted barrier and load-pair counts" (fun () ->
        (* A synthetic kernel shaped like the paper's unrolled matmul:
           a loop body (weight 256) with one independent load pair and
           two barriers gives 256*(1+2) events; Regions = events + 1. *)
        let body =
          [
            I.Ld (I.Global, rf 0, { base = I.Par "A"; offset = 0 });
            I.Ld (I.Global, rf 1, { base = I.Par "A"; offset = 4 });
            I.Bar;
            I.Fmad (rf 2, I.Reg (rf 0), I.Reg (rf 1), I.Reg (rf 2));
            I.Bar;
          ]
        in
        let k =
          simple_kernel
            [
              block ~weight:256.0 "loop" body (Prog.Jump "exit");
              block "exit"
                [ I.St (I.Global, { base = I.Par "A"; offset = 0 }, I.Reg (rf 2)) ]
                Prog.Ret;
            ]
        in
        let p = Count.profile_of k in
        Alcotest.(check (float 1e-9)) "regions" 769.0 p.regions);
    t "mem_fraction" (fun () ->
        let k =
          simple_kernel
            [
              block "a"
                [
                  I.Ld (I.Global, rf 0, { base = I.Par "A"; offset = 0 });
                  I.F2 (I.FAdd, rf 1, I.Reg (rf 0), I.Imm_f 1.0);
                  I.St (I.Global, { base = I.Par "A"; offset = 0 }, I.Reg (rf 1));
                ]
                Prog.Ret;
            ]
        in
        Alcotest.(check (float 1e-9)) "fraction" 0.5 (Count.mem_fraction (Count.profile_of k)));
  ]

(* ------------------------------------------------------------------ *)
(* Resource report                                                     *)
(* ------------------------------------------------------------------ *)

let resource_tests =
  [
    t "resource report reflects declarations" (fun () ->
        let k =
          Prog.make ~name:"k"
            ~params:[ { Prog.pname = "A"; pty = Prog.PBuf I.Global } ]
            ~smem_words:100 ~lmem_words:3
            [ block "a" [ I.Mov (rf 0, I.Imm_f 1.0) ] Prog.Ret ]
        in
        let r = Resource.of_kernel k in
        check_i "smem bytes" 400 r.smem_bytes_per_block;
        check_i "lmem bytes" 12 r.lmem_bytes_per_thread;
        check_i "static" 2 r.static_instrs);
  ]

let suite =
  [
    ("ptx.reg", reg_tests);
    ("ptx.instr", instr_tests);
    ("ptx.prog", prog_tests);
    ("ptx.roundtrip", roundtrip_tests);
    ("ptx.cfg+liveness", cfg_tests);
    ("ptx.regalloc", regalloc_tests);
    ("ptx.opt", opt_tests);
    ("ptx.count", count_tests);
    ("ptx.resource", resource_tests);
  ]

(* ------------------------------------------------------------------ *)
(* Optimizer semantic preservation on random executable programs       *)
(* ------------------------------------------------------------------ *)

(* Random straight-line programs over a small register pool whose
   memory accesses are all in-bounds (A has 64 words, lanes index
   A[tid + small]).  Execute before and after [Opt.run] and compare the
   output buffer bit-for-bit. *)
let random_executable seed : Prog.t =
  let rng = Util.Rng.create seed in
  let pool_f = 4 and pool_r = 3 in
  (* Initialize every register so reads are deterministic. *)
  let init =
    List.init pool_f (fun k ->
        I.Mov (rf k, I.Imm_f (Util.Float32.round (Util.Rng.float_range rng (-4.0) 4.0))))
    @ List.init pool_r (fun k -> I.Mov (rr k, I.Imm_i (Util.Rng.int rng 16)))
    @ [ I.Imad (rr 3, I.Spec I.Tid_x, I.Imm_i 4, I.Par "A") ]
  in
  let fop () = List.nth [ I.FAdd; I.FSub; I.FMul; I.FMin; I.FMax ] (Util.Rng.int rng 5) in
  let iop () = List.nth [ I.IAdd; I.ISub; I.IMul; I.IAnd; I.IOr ] (Util.Rng.int rng 5) in
  let fsrc () =
    if Util.Rng.int rng 3 = 0 then
      I.Imm_f (Util.Float32.round (Util.Rng.float_range rng (-4.0) 4.0))
    else I.Reg (rf (Util.Rng.int rng pool_f))
  in
  let isrc () =
    if Util.Rng.int rng 3 = 0 then I.Imm_i (Util.Rng.int rng 8)
    else I.Reg (rr (Util.Rng.int rng pool_r))
  in
  let instr () =
    match Util.Rng.int rng 8 with
    | 0 -> I.F2 (fop (), rf (Util.Rng.int rng pool_f), fsrc (), fsrc ())
    | 1 -> I.Fmad (rf (Util.Rng.int rng pool_f), fsrc (), fsrc (), fsrc ())
    | 2 -> I.I2 (iop (), rr (Util.Rng.int rng pool_r), isrc (), isrc ())
    | 3 -> I.Mov (rf (Util.Rng.int rng pool_f), fsrc ())
    | 4 -> I.F1 (I.FAbs, rf (Util.Rng.int rng pool_f), fsrc ())
    | 5 ->
      (* in-bounds load: A[tid + 0..15] *)
      I.Ld (I.Global, rf (Util.Rng.int rng pool_f),
            { base = I.Reg (rr 3); offset = 4 * Util.Rng.int rng 16 })
    | 6 ->
      I.St (I.Global, { base = I.Reg (rr 3); offset = 4 * Util.Rng.int rng 16 }, fsrc ())
    | _ -> I.Setp (I.CLt, Reg.S32, rp 0, isrc (), isrc ())
  in
  let body = init @ List.init (10 + Util.Rng.int rng 30) (fun _ -> instr ()) in
  (* Make the register pool observable at the end. *)
  let finale =
    List.init pool_f (fun k ->
        I.St (I.Global, { base = I.Reg (rr 3); offset = 4 * (16 + k) }, I.Reg (rf k)))
  in
  Prog.validate (simple_kernel [ block "entry" (body @ finale) Prog.Ret ])

let run_buffer (k : Prog.t) : float array =
  let d = Gpu.Device.create () in
  let a = Gpu.Device.alloc d 64 in
  Gpu.Device.to_device d a (Array.init 64 (fun i -> Util.Float32.round (0.25 *. float_of_int i)));
  ignore
    (Gpu.Sim.run ~mode:Gpu.Sim.Functional d
       { Gpu.Sim.kernel = k; grid = (1, 1); block = (32, 1); args = [ ("A", Gpu.Sim.Buf a) ] });
  Gpu.Device.of_device d a

let opt_preservation_tests =
  [
    t "regression: inputs that once exposed optimizer miscompilations" (fun () ->
        (* 1139/3973/13638/15332: x + (+0.0) folded to x (wrong for
           x = -0.0); 18115/595595: CSE reused an expression whose
           destination overwrote one of its own operands. *)
        List.iter
          (fun seed ->
            let k = random_executable seed in
            let before = run_buffer k in
            let after = run_buffer (Opt.run k) in
            check_b
              (Printf.sprintf "seed %d preserved" seed)
              true
              (Array.for_all2 Util.Float32.equal_bits before after))
          [ 1139; 3973; 13638; 15332; 18115; 595595 ]);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Opt.run preserves program semantics (qcheck)" ~count:150
         QCheck.(int_range 0 1000000)
         (fun seed ->
           let k = random_executable seed in
           let before = run_buffer k in
           let after = run_buffer (Opt.run k) in
           Array.for_all2 Util.Float32.equal_bits before after));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Opt.run never grows the program (qcheck)" ~count:150
         QCheck.(int_range 0 1000000)
         (fun seed ->
           let k = random_executable seed in
           Prog.static_size (Opt.run k) <= Prog.static_size k));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"regalloc rewrite preserves semantics (qcheck)" ~count:60
         QCheck.(int_range 0 1000000)
         (fun seed ->
           let k = random_executable seed in
           let k' = Regalloc.apply k (Regalloc.allocate k) in
           Array.for_all2 Util.Float32.equal_bits (run_buffer k) (run_buffer k')));
  ]

let suite = suite @ [ ("ptx.opt-preservation", opt_preservation_tests) ]
