(* Tests for the static memory-access analyzer: the affine domain
   against the reference interpreter (qcheck), cross-validation of the
   coalescing/bank predictions against the simulator's per-site
   counters on all four applications, the mutation-based checks for the
   race detector and bank-conflict lint, divergent-barrier detection,
   and the simulator counter-sum invariants. *)

open Kir.Ast

let t name f = Alcotest.test_case name `Quick f
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Affine forms vs the reference interpreter                           *)
(* ------------------------------------------------------------------ *)

(* Random integer index expressions over tid/bid/params/constants.  The
   affine analysis of [Store A[e]] must agree with [Kir.Interp]'s
   concrete evaluation of [e] for every thread — whenever the analysis
   stays out of ⊤. *)
let gen_expr : expr QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Int n) (int_range (-8) 8);
        return tid_x;
        return tid_y;
        return bid_x;
        return bid_y;
        return (Param "n");
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 1 then leaf
         else
           oneof
             [
               leaf;
               map2 (fun a b -> Bin (Add, a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Bin (Sub, a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a c -> Bin (Mul, a, Int c)) (self (n / 2)) (int_range (-4) 4);
               map2 (fun a c -> Bin (Mul, Int c, a)) (self (n / 2)) (int_range (-4) 4);
               map2 (fun a c -> Bin (Div, a, Int c)) (self (n / 2)) (int_range 1 4);
               map2 (fun a c -> Bin (Rem, a, Int c)) (self (n / 2)) (int_range 1 4);
               map2 (fun a c -> Bin (Min, a, Int c)) (self (n / 2)) (int_range (-8) 8);
               map2 (fun a c -> Bin (Max, a, Int c)) (self (n / 2)) (int_range (-8) 8);
               map (fun a -> Un (Neg, a)) (self (n - 1));
             ])

let rec expr_print (e : expr) : string =
  match e with
  | Int n -> string_of_int n
  | Special TidX -> "tx"
  | Special TidY -> "ty"
  | Special BidX -> "bx"
  | Special BidY -> "by"
  | Param p -> p
  | Bin (op, a, b) ->
    let o =
      match op with
      | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%" | Min -> "min"
      | Max -> "max" | _ -> "?"
    in
    Printf.sprintf "(%s %s %s)" (expr_print a) o (expr_print b)
  | Un (Neg, a) -> Printf.sprintf "(- %s)" (expr_print a)
  | _ -> "<expr>"

let arbitrary_expr = QCheck.make ~print:expr_print gen_expr

(* Evaluate [e] with the reference interpreter for one thread. *)
let interp_eval ~tid_x:tx ~tid_y:ty ~bid_x:bx ~bid_y:by ~n (e : expr) : int =
  let c =
    {
      Kir.Interp.dev = Gpu.Device.create ~global_words:16 ();
      arrays = Hashtbl.create 1;
      scalars = Hashtbl.create 1;
      vars = Hashtbl.create 1;
      tid_x = tx;
      tid_y = ty;
      bid_x = bx;
      bid_y = by;
      bdim = (8, 4);
      gdim = (4, 2);
    }
  in
  Hashtbl.replace c.Kir.Interp.scalars "n" (Kir.Interp.VI n);
  Kir.Interp.as_i (Kir.Interp.eval c e)

let affine_vs_interp (e : expr) : bool =
  let n = 13 in
  let k =
    {
      kname = "aff";
      scalar_params = [ ("n", S32) ];
      array_params = [ { aname = "A"; aspace = Global } ];
      shared_decls = [];
      local_decls = [];
      body = [ Store ("A", e, f 0.0) ];
    }
  in
  match Analysis.Access.sites_of ~block:(8, 4) ~grid:(4, 2) ~params:[ ("n", n) ] k with
  | [ info ] -> (
    match info.Analysis.Access.i_index with
    | Analysis.Affine.Top _ -> true (* ⊤ is always sound *)
    | aff ->
      (* every thread of a couple of blocks *)
      List.for_all
        (fun (bid_x, bid_y) ->
          List.for_all
            (fun tid_y ->
              List.for_all
                (fun tid_x ->
                  let want = interp_eval ~tid_x ~tid_y ~bid_x ~bid_y ~n e in
                  match
                    Analysis.Affine.eval ~tid_x ~tid_y ~bid_x ~bid_y
                      ~loop:(fun _ -> assert false)
                      aff
                  with
                  | Some got -> got = want
                  | None -> false)
                [ 0; 1; 3; 7 ])
            [ 0; 1; 3 ])
        [ (0, 0); (3, 1) ])
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Cross-validation: all four applications                             *)
(* ------------------------------------------------------------------ *)

let wb_exn (r : (Apps.Workbench.t, string) result) : Apps.Workbench.t =
  match r with Ok wb -> wb | Error msg -> Alcotest.fail msg

let crossval_exact ?config ~expect_top name build () =
  let wb = wb_exn (build ?config ()) in
  let cv = Apps.Workbench.crossval wb in
  check_i (name ^ " mismatches") 0 cv.Analysis.Crossval.cv_mismatches;
  check_b (name ^ " has analyzable sites") true (cv.Analysis.Crossval.cv_checked > 0);
  check_i (name ^ " sites partition")
    cv.Analysis.Crossval.cv_total
    (cv.Analysis.Crossval.cv_checked + cv.Analysis.Crossval.cv_top);
  check_i (name ^ " top sites") expect_top cv.Analysis.Crossval.cv_top;
  (* shipped kernels are race-free with convergent barriers *)
  let lint = Apps.Workbench.lint wb in
  check_b (name ^ " race-free") false (Analysis.Lint.has_errors lint)

let verdicts_of (r : Analysis.Lint.report) (arr : string) (kind : [ `Load | `Store ]) =
  List.filter_map
    (fun (sr : Analysis.Lint.site_report) ->
      if sr.Analysis.Lint.sr_info.Analysis.Access.i_array = arr
         && sr.Analysis.Lint.sr_info.Analysis.Access.i_kind = kind
      then Some sr.Analysis.Lint.sr_verdict
      else None)
    r.Analysis.Lint.r_sites

let crossval_tests =
  [
    t "matmul default: static = dynamic on every site, none ⊤"
      (crossval_exact ?config:None ~expect_top:0 "matmul" (fun ?config () -> Apps.Workbench.smoke_matmul ?config ()));
    t "cp default: static = dynamic on every site, none ⊤"
      (crossval_exact ?config:None ~expect_top:0 "cp" (fun ?config () -> Apps.Workbench.smoke_cp ?config ()));
    t "sad default: exact on analyzable sites, ⊤ sites reported"
      (crossval_exact ?config:None ~expect_top:4 "sad" (fun ?config () -> Apps.Workbench.smoke_sad ?config ()));
    t "mri default: static = dynamic on every site, none ⊤"
      (crossval_exact ?config:None ~expect_top:0 "mri" (fun ?config () -> Apps.Workbench.smoke_mri ?config ()));
    t "matmul 16x16 variant: still exact"
      (crossval_exact ~config:"16x16/1x1/u1" ~expect_top:0 "matmul16" (fun ?config () -> Apps.Workbench.smoke_matmul ?config ()));
    t "cp uncoalesced variant: still exact"
      (crossval_exact ~config:"b16x2/t2/unco" ~expect_top:0 "cp-unco" (fun ?config () -> Apps.Workbench.smoke_cp ?config ()));
    t "matmul 8x8 tile: C store uncoalesced; 16x16 tile: coalesced" (fun () ->
        let v8 = verdicts_of (Apps.Workbench.lint (wb_exn (Apps.Workbench.smoke_matmul ()))) "C" `Store in
        let v16 =
          verdicts_of
            (Apps.Workbench.lint (wb_exn (Apps.Workbench.smoke_matmul ~config:"16x16/1x1/u1" ())))
            "C" `Store
        in
        check_b "8x8 uncoalesced" true
          (List.for_all (function Analysis.Lint.Uncoalesced _ -> true | _ -> false) v8
          && v8 <> []);
        check_b "16x16 coalesced" true
          (List.for_all (function Analysis.Lint.Coalesced _ -> true | _ -> false) v16
          && v16 <> []));
    t "cp uncoalesced config is flagged, coalesced is clean" (fun () ->
        let vco = verdicts_of (Apps.Workbench.lint (wb_exn (Apps.Workbench.smoke_cp ()))) "V" `Store in
        let vun =
          verdicts_of
            (Apps.Workbench.lint (wb_exn (Apps.Workbench.smoke_cp ~config:"b16x2/t2/unco" ())))
            "V" `Store
        in
        check_b "coalesced clean" true
          (List.for_all (function Analysis.Lint.Coalesced _ -> true | _ -> false) vco && vco <> []);
        check_b "uncoalesced flagged" true
          (List.exists (function Analysis.Lint.Uncoalesced _ -> true | _ -> false) vun));
    t "cp atom loads broadcast from the constant cache" (fun () ->
        let r = Apps.Workbench.lint (wb_exn (Apps.Workbench.smoke_cp ())) in
        let vs = verdicts_of r "atoms" `Load in
        check_b "broadcast" true
          (List.for_all (function Analysis.Lint.Broadcast _ -> true | _ -> false) vs && vs <> []));
  ]

(* ------------------------------------------------------------------ *)
(* Mutants: bank conflicts and races                                   *)
(* ------------------------------------------------------------------ *)

let mutant_tests =
  [
    t "transposed As store has bank conflicts; crossval stays exact" (fun () ->
        let wb = wb_exn (Apps.Workbench.smoke_matmul ()) in
        let r = Apps.Workbench.lint_mutant wb (Kir.Mutate.transpose_store ~array:"As") in
        let vs = verdicts_of r "As" `Store in
        check_b "conflict flagged" true
          (List.exists
             (function
               | Analysis.Lint.Bank_conflict p -> p.Analysis.Bank.b_max_degree > 1
               | _ -> false)
             vs);
        let cv = Apps.Workbench.crossval ~mutate:(Kir.Mutate.transpose_store ~array:"As") wb in
        check_i "mutant crossval mismatches" 0 cv.Analysis.Crossval.cv_mismatches;
        check_b "mutant replays predicted" true
          (List.exists
             (fun (d : Analysis.Crossval.site_diff) ->
               match d.Analysis.Crossval.d_static with
               | Ok c -> c.Analysis.Crossval.replays > 0
               | Error _ -> false)
             cv.Analysis.Crossval.cv_sites));
    t "barrier-dropped matmul mutant is flagged as racy" (fun () ->
        let wb = wb_exn (Apps.Workbench.smoke_matmul ()) in
        let r = Apps.Workbench.lint_mutant wb (Kir.Mutate.drop_sync ~index:1) in
        check_b "races found" true (r.Analysis.Lint.r_races.Analysis.Races.findings <> []);
        check_b "has_errors" true (Analysis.Lint.has_errors r);
        (* dropping the first barrier races too (tile loads vs consumers) *)
        let r0 = Apps.Workbench.lint_mutant wb (Kir.Mutate.drop_sync ~index:0) in
        check_b "first-barrier drop races" true
          (r0.Analysis.Lint.r_races.Analysis.Races.findings <> []));
    t "race findings carry array, element and interval provenance" (fun () ->
        let wb = wb_exn (Apps.Workbench.smoke_matmul ()) in
        let r = Apps.Workbench.lint_mutant wb (Kir.Mutate.drop_sync ~index:1) in
        match r.Analysis.Lint.r_races.Analysis.Races.findings with
        | [] -> Alcotest.fail "expected at least one race"
        | f :: _ ->
          check_b "array named" true
            (List.mem f.Analysis.Races.f_array [ "As"; "Bs" ]);
          check_b "distinct threads" true
            (f.Analysis.Races.f_tid1 <> f.Analysis.Races.f_tid2));
    t "drop_sync with an out-of-range index raises" (fun () ->
        let wb = wb_exn (Apps.Workbench.smoke_matmul ()) in
        check_b "raises" true
          (try
             ignore (Kir.Mutate.drop_sync ~index:99 wb.Apps.Workbench.wb_kernel);
             false
           with Kir.Mutate.Mutate_error _ -> true));
    t "transpose_store on an array with no stores raises" (fun () ->
        let wb = wb_exn (Apps.Workbench.smoke_matmul ()) in
        check_b "raises" true
          (try
             ignore (Kir.Mutate.transpose_store ~array:"nosuch" wb.Apps.Workbench.wb_kernel);
             false
           with Kir.Mutate.Mutate_error _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Divergent barriers                                                  *)
(* ------------------------------------------------------------------ *)

let divergence_tests =
  [
    t "a barrier under a tid-dependent branch is reported" (fun () ->
        let k =
          {
            kname = "div";
            scalar_params = [];
            array_params = [];
            shared_decls = [ ("s", 32) ];
            local_decls = [];
            body = [ If (tid_x <: i 4, [ Sync ], []) ];
          }
        in
        check_b "flagged" true (Analysis.Races.tid_dependent_barriers k <> []));
    t "a barrier under a uniform branch is not reported" (fun () ->
        let k =
          {
            kname = "uni";
            scalar_params = [ ("n", S32) ];
            array_params = [];
            shared_decls = [ ("s", 32) ];
            local_decls = [];
            body = [ If (bid_x <: Param "n", [ Sync ], []); Sync ];
          }
        in
        check_i "none" 0 (List.length (Analysis.Races.tid_dependent_barriers k)));
    t "shipped kernels have no divergent barriers" (fun () ->
        List.iter
          (fun wb ->
            let wb = wb_exn wb in
            check_i wb.Apps.Workbench.wb_app 0
              (List.length (Analysis.Races.tid_dependent_barriers wb.Apps.Workbench.wb_kernel)))
          [ Apps.Workbench.smoke_matmul (); Apps.Workbench.smoke_sad () ]);
  ]

(* ------------------------------------------------------------------ *)
(* Simulator per-site counters: sum invariants                         *)
(* ------------------------------------------------------------------ *)

let counter_tests =
  [
    t "site counters sum to the aggregate simulator statistics" (fun () ->
        let wb = wb_exn (Apps.Workbench.smoke_matmul ()) in
        let ptx, _ = Kir.Lower.lower_with_sites wb.Apps.Workbench.wb_kernel in
        let stats =
          Gpu.Sim.run ~mode:Gpu.Sim.Functional
            (Gpu.Device.clone wb.Apps.Workbench.wb_dev)
            {
              Gpu.Sim.kernel = ptx;
              grid = wb.Apps.Workbench.wb_grid;
              block = wb.Apps.Workbench.wb_block;
              args = wb.Apps.Workbench.wb_args;
            }
        in
        let tx_sum =
          List.fold_left
            (fun acc (sc : Gpu.Sim.site_counter) -> acc + sc.Gpu.Sim.sc_tx)
            0 stats.Gpu.Sim.site_counters
        in
        check_i "Σ site tx = gmem transactions" stats.Gpu.Sim.gmem_transactions tx_sum;
        let shared_replays =
          List.fold_left
            (fun acc (sc : Gpu.Sim.site_counter) ->
              if sc.Gpu.Sim.sc_space = Ptx.Instr.Shared then acc + sc.Gpu.Sim.sc_replays else acc)
            0 stats.Gpu.Sim.site_counters
        in
        check_i "Σ shared replays · issue = conflict extra"
          stats.Gpu.Sim.bank_conflict_extra
          (shared_replays * Gpu.Arch.g80_latencies.Gpu.Arch.issue));
    t "bank-conflict mutant: replay counters light up in the simulator" (fun () ->
        let wb = wb_exn (Apps.Workbench.smoke_matmul ()) in
        let k = Kir.Mutate.transpose_store ~array:"As" wb.Apps.Workbench.wb_kernel in
        let ptx, _ = Kir.Lower.lower_with_sites k in
        let stats =
          Gpu.Sim.run ~mode:Gpu.Sim.Functional
            (Gpu.Device.clone wb.Apps.Workbench.wb_dev)
            {
              Gpu.Sim.kernel = ptx;
              grid = wb.Apps.Workbench.wb_grid;
              block = wb.Apps.Workbench.wb_block;
              args = wb.Apps.Workbench.wb_args;
            }
        in
        check_b "replays > 0" true
          (List.exists
             (fun (sc : Gpu.Sim.site_counter) -> sc.Gpu.Sim.sc_replays > 0)
             stats.Gpu.Sim.site_counters));
  ]

(* ------------------------------------------------------------------ *)
(* Pipeline integration                                                *)
(* ------------------------------------------------------------------ *)

let pipeline_tests =
  [
    t "the analyze stage fills compiled.lint and reports via the hook" (fun () ->
        let p = Apps.Matmul.setup ~n:64 () in
        let cfg = List.hd (Tuner.Space.configs Apps.Matmul.space) in
        let stages = ref [] in
        let c =
          Apps.Matmul.compile ~n:64
            ~hook:(fun s -> stages := s.Tuner.Pipeline.stage :: !stages)
            ~analyze:(Apps.Matmul.analysis_input_of p cfg)
            cfg
        in
        check_b "lint present" true (c.Tuner.Pipeline.lint <> None);
        check_b "analyze stage traced" true (List.mem "analyze" !stages);
        match c.Tuner.Pipeline.lint with
        | None -> Alcotest.fail "no lint report"
        | Some r -> check_i "matmul sites" 7 (List.length r.Analysis.Lint.r_sites));
    t "without ?analyze the pipeline skips the stage" (fun () ->
        let cfg = List.hd (Tuner.Space.configs Apps.Matmul.space) in
        let stages = ref [] in
        let c =
          Apps.Matmul.compile ~n:64
            ~hook:(fun s -> stages := s.Tuner.Pipeline.stage :: !stages)
            cfg
        in
        check_b "no lint" true (c.Tuner.Pipeline.lint = None);
        check_b "no analyze stage" false (List.mem "analyze" !stages));
    t "instruction class breakdown partitions the static program" (fun () ->
        let cfg = List.hd (Tuner.Space.configs Apps.Matmul.space) in
        let c = Apps.Matmul.compile ~n:64 cfg in
        let rows = Ptx.Count.class_breakdown c.Tuner.Pipeline.ptx in
        let static_sum =
          List.fold_left (fun acc (r : Ptx.Count.class_row) -> acc + r.static_count) 0 rows
        in
        (* bodies + one terminator per block = Prog.static_size *)
        check_i "classes partition static size" (Ptx.Prog.static_size c.Tuner.Pipeline.ptx)
          static_sum;
        let get n =
          (List.find (fun (r : Ptx.Count.class_row) -> r.class_name = n) rows).Ptx.Count
          .static_count
        in
        check_b "has global and shared mem instructions" true
          (get "mem.global" > 0 && get "mem.shared" > 0 && get "barrier" > 0));
  ]

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"affine index forms agree with the interpreter (qcheck)" ~count:500
         arbitrary_expr affine_vs_interp);
  ]

let suite =
  [
    ("analysis:affine", qcheck_tests);
    ("analysis:crossval", crossval_tests);
    ("analysis:mutants", mutant_tests);
    ("analysis:divergence", divergence_tests);
    ("analysis:counters", counter_tests);
    ("analysis:pipeline", pipeline_tests);
  ]
