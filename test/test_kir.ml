(* Tests for the KIR kernel language: typechecking, the reference
   interpreter, each optimization pass (semantic preservation and
   resource effects), and lowering (differential testing against the
   interpreter). *)

open Kir.Ast

let t name f = Alcotest.test_case name `Quick f
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Typechecking                                                        *)
(* ------------------------------------------------------------------ *)

let mk body =
  {
    kname = "k";
    scalar_params = [ ("n", S32); ("alpha", F32) ];
    array_params = [ { aname = "A"; aspace = Global } ];
    shared_decls = [ ("s", 32) ];
    local_decls = [];
    body;
  }

let rejects body =
  try
    Kir.Typecheck.check (mk body);
    false
  with Kir.Typecheck.Type_error _ -> true

let typecheck_tests =
  [
    t "accepts a well-typed kernel" (fun () ->
        Kir.Typecheck.check
          (mk
             [
               Let ("x", F32, Param "alpha" *: f 2.0);
               Store ("A", tid_x, v "x");
               Sync;
               If (tid_x <: Param "n", [ Store ("s", tid_x, f 0.0) ], []);
             ]));
    t "rejects unbound variables" (fun () -> check_b "r" true (rejects [ Let ("x", F32, v "nope") ]));
    t "rejects mixed int/float arithmetic" (fun () ->
        check_b "r" true (rejects [ Let ("x", F32, f 1.0 +: i 1) ]));
    t "rejects type-mismatched declarations" (fun () ->
        check_b "r" true (rejects [ Let ("x", S32, f 1.0) ]));
    t "rejects assignment to immutable bindings" (fun () ->
        check_b "r" true (rejects [ Let ("x", F32, f 1.0); Assign ("x", f 2.0) ]));
    t "accepts assignment to mutable bindings" (fun () ->
        Kir.Typecheck.check (mk [ Mut ("x", F32, f 1.0); Assign ("x", f 2.0) ]));
    t "rejects redeclaration" (fun () ->
        check_b "r" true (rejects [ Let ("x", F32, f 1.0); Let ("x", F32, f 2.0) ]));
    t "rejects stores to unknown arrays" (fun () ->
        check_b "r" true (rejects [ Store ("nope", i 0, f 1.0) ]));
    t "rejects stores to constant memory" (fun () ->
        let k =
          {
            (mk [ Store ("T", i 0, f 1.0) ]) with
            array_params = [ { aname = "T"; aspace = Const } ];
          }
        in
        check_b "r" true
          (try
             Kir.Typecheck.check k;
             false
           with Kir.Typecheck.Type_error _ -> true));
    t "rejects non-boolean conditions" (fun () ->
        check_b "r" true (rejects [ If (i 1, [], []) ]));
    t "rejects float array indices" (fun () ->
        check_b "r" true (rejects [ Let ("x", F32, Ld ("A", f 1.0)) ]));
    t "rejects non-positive or non-literal loop steps" (fun () ->
        check_b "r" true
          (rejects [ For { var = "j"; lo = i 0; hi = i 4; step = i 0; trip = None; body = [] } ]);
        check_b "r" true
          (rejects
             [ For { var = "j"; lo = i 0; hi = i 4; step = Param "n"; trip = None; body = [] } ]));
    t "rejects transcendentals on integers" (fun () ->
        check_b "r" true (rejects [ Let ("x", F32, Un (Sqrt, i 4)) ]));
    t "rejects select with disagreeing arms" (fun () ->
        check_b "r" true (rejects [ Let ("x", F32, Select (Bool true, f 1.0, i 1)) ]));
    t "rejects shadowing a parameter" (fun () ->
        check_b "r" true (rejects [ Let ("n", S32, i 1) ]));
  ]

(* ------------------------------------------------------------------ *)
(* Static trip counts                                                  *)
(* ------------------------------------------------------------------ *)

let trip_tests =
  [
    t "derived from literal bounds" (fun () ->
        let l = { var = "j"; lo = i 0; hi = i 10; step = i 3; trip = None; body = [] } in
        check_b "trip" true (static_trip l = Some 4));
    t "annotation wins when present" (fun () ->
        let l = { var = "j"; lo = i 0; hi = tid_x; step = i 1; trip = Some 7; body = [] } in
        check_b "trip" true (static_trip l = Some 7));
    t "unknown without literals or annotation" (fun () ->
        let l = { var = "j"; lo = i 0; hi = tid_x; step = i 1; trip = None; body = [] } in
        check_b "trip" true (static_trip l = None));
    t "empty range has trip zero" (fun () ->
        let l = { var = "j"; lo = i 5; hi = i 5; step = i 1; trip = None; body = [] } in
        check_b "trip" true (static_trip l = Some 0));
  ]

(* ------------------------------------------------------------------ *)
(* Differential execution harness                                      *)
(* ------------------------------------------------------------------ *)

(* Run a kernel through (a) the reference interpreter and (b) lowering
   + PTX optimization + the simulator; compare the output buffer
   bit-for-bit. *)
let differential ?(grid = (2, 1)) ?(block = (32, 1)) ?(words = 256) (k : kernel)
    ~(extra_args : Gpu.Device.t -> (string * Gpu.Sim.arg) list) : bool =
  let run use_interp =
    let d = Gpu.Device.create () in
    let out = Gpu.Device.alloc d words in
    let args = (("O", Gpu.Sim.Buf out) :: extra_args d : (string * Gpu.Sim.arg) list) in
    if use_interp then Kir.Interp.run d k ~grid ~block ~args
    else begin
      let ptx = Ptx.Opt.run (Kir.Lower.lower k) in
      ignore (Gpu.Sim.run ~mode:Gpu.Sim.Functional d { Gpu.Sim.kernel = ptx; grid; block; args })
    end;
    Gpu.Device.of_device d out
  in
  let a = run true and b = run false in
  Array.for_all2 (fun x y -> Util.Float32.equal_bits x y) a b

let no_extra (_ : Gpu.Device.t) : (string * Gpu.Sim.arg) list = []

(* A kernel exercising most constructs. *)
let rich_kernel =
  {
    kname = "rich";
    scalar_params = [ ("alpha", F32) ];
    array_params = [ { aname = "O"; aspace = Global } ];
    shared_decls = [ ("buf", 64) ];
    local_decls = [ ("scratch", 2) ];
    body =
      [
        Let ("gid", S32, (bid_x *: bdim_x) +: tid_x);
        Mut ("acc", F32, f 0.0);
        Store ("scratch", i 0, Un (ToF, v "gid"));
        for_ "j" (i 0) (i 8)
          [
            Let ("w", F32, Un (ToF, v "j" +: v "gid"));
            Assign ("acc", v "acc" +: (v "w" *: Param "alpha"));
          ];
        Store ("buf", tid_x %: i 64, v "acc");
        Sync;
        Let ("other", F32, Ld ("buf", (tid_x +: i 7) %: i 64));
        If
          ( Bin (Rem, v "gid", i 3) =: i 0,
            [ Assign ("acc", v "acc" +: Un (Sqrt, Un (Abs, v "other")) +: Ld ("scratch", i 0)) ],
            [ Assign ("acc", Select (v "acc" <: f 10.0, v "acc" -: f 1.0, v "other")) ] );
        Store ("O", v "gid", v "acc");
      ];
  }

let interp_tests =
  [
    t "interpreter matches simulator on a rich kernel" (fun () ->
        check_b "differential" true
          (differential rich_kernel ~extra_args:(fun _ -> [ ("alpha", Gpu.Sim.F 1.5) ])));
    t "barrier with early-exited threads completes (CUDA-permissive)" (fun () ->
        (* Threads >= 16 exit before the barrier; the rest must still be
           released — the same semantics the timing simulator uses. *)
        let k =
          {
            rich_kernel with
            kname = "divsync";
            scalar_params = [];
            shared_decls = [ ("buf", 64) ];
            local_decls = [];
            body =
              [
                If (tid_x >=: i 16, [ Return ], []);
                Sync;
                Store ("O", tid_x, f 1.0);
              ];
          }
        in
        check_b "diff" true
          (differential ~grid:(1, 1) ~block:(32, 1) ~words:64 k ~extra_args:no_extra));
    t "interpreter bounds-checks shared arrays" (fun () ->
        let k =
          {
            rich_kernel with
            kname = "oob";
            scalar_params = [];
            local_decls = [];
            body = [ Store ("buf", i 99, f 1.0) ];
          }
        in
        let d = Gpu.Device.create () in
        let out = Gpu.Device.alloc d 4 in
        check_b "raises" true
          (try
             Kir.Interp.run d k ~grid:(1, 1) ~block:(32, 1) ~args:[ ("O", Gpu.Sim.Buf out) ];
             false
           with Kir.Interp.Runtime_error _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Transformations: semantic preservation + resource effects           *)
(* ------------------------------------------------------------------ *)

(* The canonical tiled-loop kernel the passes target. *)
let tiled_kernel =
  {
    kname = "tiled";
    scalar_params = [];
    array_params = [ { aname = "X"; aspace = Global }; { aname = "O"; aspace = Global } ];
    shared_decls = [ ("tile", 32) ];
    local_decls = [];
    body =
      [
        Mut ("acc", F32, f 0.0);
        for_ "tb" (i 0) (i 4)
          [
            Let ("x", F32, Ld ("X", (v "tb" *: i 32) +: tid_x));
            Store ("tile", tid_x, v "x");
            Sync;
            for_ "k" (i 0) (i 32) [ Assign ("acc", v "acc" +: Ld ("tile", v "k")) ];
            Sync;
          ];
        Store ("O", tid_x, v "acc");
      ];
  }

let x_data d =
  let x = Gpu.Device.alloc d 128 in
  let rng = Util.Rng.create 5 in
  Gpu.Device.to_device d x
    (Array.init 128 (fun _ -> Util.Float32.round (Util.Rng.float_range rng (-1.0) 1.0)));
  [ ("X", Gpu.Sim.Buf x) ]

let regs_of k = (Ptx.Resource.of_kernel (Ptx.Opt.run (Kir.Lower.lower k))).regs_per_thread
let instr_of k = (Ptx.Count.profile_of (Ptx.Opt.run (Kir.Lower.lower k))).instr

let pass_tests =
  [
    t "unroll x2 preserves semantics" (fun () ->
        let k = Kir.Unroll.apply ~select:(Kir.Unroll.Named "k") ~factor:2 tiled_kernel in
        check_b "diff" true (differential ~grid:(1, 1) k ~extra_args:x_data));
    t "unroll with remainder (factor 3 on trip 32) preserves semantics" (fun () ->
        let k = Kir.Unroll.apply ~select:(Kir.Unroll.Named "k") ~factor:3 tiled_kernel in
        check_b "diff" true (differential ~grid:(1, 1) k ~extra_args:x_data));
    t "complete unroll preserves semantics" (fun () ->
        let k = Kir.Unroll.apply ~select:(Kir.Unroll.Named "k") ~factor:0 tiled_kernel in
        check_b "diff" true (differential ~grid:(1, 1) k ~extra_args:x_data));
    t "unrolling reduces dynamic instructions" (fun () ->
        let u4 = Kir.Unroll.apply ~select:(Kir.Unroll.Named "k") ~factor:4 tiled_kernel in
        check_b "fewer" true (instr_of u4 < instr_of tiled_kernel));
    t "complete unroll minimizes dynamic instructions" (fun () ->
        let uc = Kir.Unroll.apply ~select:(Kir.Unroll.Named "k") ~factor:0 tiled_kernel in
        let u4 = Kir.Unroll.apply ~select:(Kir.Unroll.Named "k") ~factor:4 tiled_kernel in
        check_b "least" true (instr_of uc < instr_of u4));
    t "unroll factor 1 and oversized factors are identity-safe" (fun () ->
        let k1 = Kir.Unroll.apply ~select:(Kir.Unroll.Named "k") ~factor:1 tiled_kernel in
        check_b "id" true (k1 = tiled_kernel);
        let k64 = Kir.Unroll.apply ~select:(Kir.Unroll.Named "k") ~factor:64 tiled_kernel in
        check_b "diff" true (differential ~grid:(1, 1) k64 ~extra_args:x_data));
    t "prefetch matches the tile-loop pattern and preserves semantics" (fun () ->
        let k, changed = Kir.Prefetch.apply tiled_kernel in
        check_b "matched" true changed;
        check_b "diff" true (differential ~grid:(1, 1) k ~extra_args:x_data));
    t "prefetch increases register pressure (paper sec 3.1)" (fun () ->
        let k, _ = Kir.Prefetch.apply tiled_kernel in
        check_b "regs up" true (regs_of k > regs_of tiled_kernel));
    t "prefetch does not fire without a barrier" (fun () ->
        let k =
          {
            tiled_kernel with
            body =
              [
                Mut ("acc", F32, f 0.0);
                for_ "tb" (i 0) (i 4)
                  [
                    Let ("x", F32, Ld ("X", (v "tb" *: i 32) +: tid_x));
                    Assign ("acc", v "acc" +: v "x");
                  ];
                Store ("O", tid_x, v "acc");
              ];
          }
        in
        let _, changed = Kir.Prefetch.apply k in
        check_b "no match" false changed);
    t "spill preserves semantics" (fun () ->
        let k = Kir.Spill.apply ~vars:[ "acc" ] tiled_kernel in
        check_b "diff" true (differential ~grid:(1, 1) k ~extra_args:x_data));
    t "spill moves a value to local memory" (fun () ->
        let k = Kir.Spill.apply ~vars:[ "acc" ] tiled_kernel in
        let res = Ptx.Resource.of_kernel (Ptx.Opt.run (Kir.Lower.lower k)) in
        check_b "lmem used" true (res.lmem_bytes_per_thread > 0));
    t "spilling unknown or boolean vars is a no-op" (fun () ->
        let k = Kir.Spill.apply ~vars:[ "does_not_exist" ] tiled_kernel in
        check_b "diff" true (differential ~grid:(1, 1) k ~extra_args:x_data));
    t "licm hoists invariant prefix lets and preserves semantics" (fun () ->
        let k =
          {
            tiled_kernel with
            body =
              [
                Mut ("acc", F32, f 0.0);
                for_ "tb" (i 0) (i 4)
                  [
                    Let ("inv", F32, Un (ToF, tid_x) *: f 2.0);
                    Let ("x", F32, Ld ("X", (v "tb" *: i 32) +: tid_x));
                    Assign ("acc", v "acc" +: (v "x" *: v "inv"));
                  ];
                Store ("O", tid_x, v "acc");
              ];
          }
        in
        let h = Kir.Licm.apply k in
        (* the invariant let must now precede the loop *)
        let rec loop_body = function
          | For l :: _ -> l.body
          | _ :: tl -> loop_body tl
          | [] -> []
        in
        check_b "hoisted" true
          (List.length (loop_body h.body) < List.length (loop_body k.body));
        check_b "diff" true (differential ~grid:(1, 1) h ~extra_args:x_data));
    t "licm does not hoist loads" (fun () ->
        let k =
          {
            tiled_kernel with
            body =
              [
                Mut ("acc", F32, f 0.0);
                for_ "tb" (i 0) (i 4)
                  [
                    Let ("ld", F32, Ld ("X", tid_x));
                    Assign ("acc", v "acc" +: v "ld");
                  ];
                Store ("O", tid_x, v "acc");
              ];
          }
        in
        let h = Kir.Licm.apply k in
        check_b "unchanged" true (h = k));
    t "rename_binders renames bindings consistently" (fun () ->
        let ss = [ Let ("x", F32, f 1.0); Store ("O", tid_x, v "x" +: v "outer") ] in
        match rename_binders "#z" ss with
        | [ Let ("x#z", _, _); Store (_, _, Bin (Add, Var "x#z", Var "outer")) ] -> ()
        | _ -> Alcotest.fail "unexpected rename");
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"unroll preserves semantics for any factor (qcheck)" ~count:12
         QCheck.(int_range 1 9)
         (fun factor ->
           let k = Kir.Unroll.apply ~select:(Kir.Unroll.Named "k") ~factor tiled_kernel in
           differential ~grid:(1, 1) k ~extra_args:x_data));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"pass compositions preserve semantics (qcheck)" ~count:8
         QCheck.(pair (int_range 0 4) bool)
         (fun (factor, do_prefetch) ->
           let k = Kir.Unroll.apply ~select:(Kir.Unroll.Named "k") ~factor tiled_kernel in
           let k = if do_prefetch then fst (Kir.Prefetch.apply k) else k in
           let k = Kir.Spill.apply ~vars:[ "acc" ] k in
           differential ~grid:(1, 1) k ~extra_args:x_data));
  ]

(* ------------------------------------------------------------------ *)
(* Lowering details                                                    *)
(* ------------------------------------------------------------------ *)

let lower_tests =
  [
    t "constant indices fold into [reg+imm] addressing" (fun () ->
        let k =
          {
            kname = "addr";
            scalar_params = [];
            array_params = [ { aname = "O"; aspace = Global } ];
            shared_decls = [];
            local_decls = [];
            body =
              [
                Let ("base", S32, tid_x *: i 4);
                Store ("O", v "base" +: i 3, f 1.0);
                Store ("O", v "base" +: i 7, f 2.0);
              ];
          }
        in
        let ptx = Ptx.Opt.run (Kir.Lower.lower k) in
        (* One address computation, two offsets. *)
        let body = (List.hd ptx.Ptx.Prog.blocks).Ptx.Prog.body in
        let mads = List.filter (function Ptx.Instr.Imad _ -> true | _ -> false) body in
        check_i "one addr computation" 1 (List.length mads);
        let offsets =
          List.filter_map
            (function Ptx.Instr.St (_, { offset; _ }, _) -> Some offset | _ -> None)
            body
        in
        check_b "distinct byte offsets" true (List.sort compare offsets = [ 12; 28 ]));
    t "accumulation lowers to a single mad" (fun () ->
        let k =
          {
            kname = "mad";
            scalar_params = [ ("a", F32); ("b", F32) ];
            array_params = [ { aname = "O"; aspace = Global } ];
            shared_decls = [];
            local_decls = [];
            body =
              [
                Mut ("s", F32, f 1.0);
                Assign ("s", v "s" +: (Param "a" *: Param "b"));
                Store ("O", tid_x, v "s");
              ];
          }
        in
        let ptx = Ptx.Opt.run (Kir.Lower.lower k) in
        let body = (List.hd ptx.Ptx.Prog.blocks).Ptx.Prog.body in
        check_b "has fmad" true
          (List.exists (function Ptx.Instr.Fmad _ -> true | _ -> false) body));
    t "loop weights reflect trip counts" (fun () ->
        let ptx = Kir.Lower.lower tiled_kernel in
        let weights = List.map (fun (b : Ptx.Prog.block) -> b.weight) ptx.Ptx.Prog.blocks in
        (* inner loop body executes 4 * 32 = 128 times per thread *)
        check_b "128 present" true (List.mem 128.0 weights));
    t "lowered kernels always validate" (fun () ->
        List.iter
          (fun k -> ignore (Ptx.Prog.validate (Kir.Lower.lower k)))
          [ tiled_kernel; rich_kernel ]);
    t "shared arrays get disjoint static layout" (fun () ->
        let k =
          {
            kname = "layout";
            scalar_params = [];
            array_params = [ { aname = "O"; aspace = Global } ];
            shared_decls = [ ("a", 16); ("b", 16) ];
            local_decls = [];
            body =
              [
                Store ("a", tid_x %: i 16, f 1.0);
                Store ("b", tid_x %: i 16, f 2.0);
                Sync;
                Store ("O", tid_x, Ld ("a", tid_x %: i 16) +: Ld ("b", tid_x %: i 16));
              ];
          }
        in
        check_i "total smem words" 32 (Kir.Lower.lower k).Ptx.Prog.smem_words;
        check_b "diff" true (differential ~grid:(1, 1) k ~extra_args:no_extra));
  ]

let suite =
  [
    ("kir.typecheck", typecheck_tests);
    ("kir.trip", trip_tests);
    ("kir.interp", interp_tests);
    ("kir.passes", pass_tests);
    ("kir.lower", lower_tests);
  ]
