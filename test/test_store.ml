(* Content-addressed result store battery: digest stability, exact
   round-trips through the on-disk format, concurrent writers, and loud
   rejection of damaged records. *)

module S = Tuner.Store

let t name f = Alcotest.test_case name `Quick f
let qt = QCheck_alcotest.to_alcotest
let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let with_tmp (f : string -> 'a) : 'a =
  let file = Filename.temp_file "gpuopt-store-test-" ".store" in
  Fun.protect ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ()) (fun () -> f file)

let with_store (f : string -> S.t -> 'a) : 'a =
  with_tmp (fun file ->
      let s = S.open_ ~file () in
      Fun.protect ~finally:(fun () -> S.close s) (fun () -> f file s))

(* A synthetic but well-formed 32-hex-char key. *)
let key_of (i : int) : string = Digest.to_hex (Digest.string (string_of_int i))

(* ------------------------------------------------------------------ *)
(* Digests                                                             *)
(* ------------------------------------------------------------------ *)

let digest_tests =
  [
    t "digests are stable across sessions (pure functions of content)" (fun () ->
        (* Two independently built candidate lists for the same app and
           scale must digest identically — nothing about physical
           identity, closure allocation or build order may leak in. *)
        let e = Option.get (Apps.Registry.find "matmul") in
        let c1 = e.quick_candidates () and c2 = e.quick_candidates () in
        let arch = S.arch_digest () in
        Alcotest.(check string) "arch digest deterministic" arch (S.arch_digest ());
        let descs cs =
          List.filter_map
            (fun (c : Tuner.Candidate.t) -> if c.valid then Some c.desc else None)
            cs
        in
        let sp1 = S.space_digest ~app_name:"matmul" ~scale:"quick" (descs c1) in
        let sp2 = S.space_digest ~app_name:"matmul" ~scale:"quick" (descs c2) in
        Alcotest.(check string) "space digest stable" sp1 sp2;
        List.iter2
          (fun (a : Tuner.Candidate.t) (b : Tuner.Candidate.t) ->
            Alcotest.(check string) ("kernel digest stable: " ^ a.desc) (S.kernel_digest a)
              (S.kernel_digest b);
            Alcotest.(check string) ("key stable: " ^ a.desc)
              (S.candidate_key ~arch ~space:sp1 a)
              (S.candidate_key ~arch ~space:sp2 b))
          c1 c2);
    t "digests separate what must not share measurements" (fun () ->
        let e = Option.get (Apps.Registry.find "matmul") in
        let cands = e.quick_candidates () in
        let descs =
          List.filter_map
            (fun (c : Tuner.Candidate.t) -> if c.valid then Some c.desc else None)
            cands
        in
        let quick = S.space_digest ~app_name:"matmul" ~scale:"quick" descs in
        let full = S.space_digest ~app_name:"matmul" ~scale:"full" descs in
        Alcotest.(check bool) "scale is part of the space digest" false (quick = full);
        let other = S.space_digest ~app_name:"cp" ~scale:"quick" descs in
        Alcotest.(check bool) "app is part of the space digest" false (quick = other);
        match cands with
        | a :: b :: _ ->
          Alcotest.(check bool) "distinct candidates, distinct kernels" false
            (S.kernel_digest a = S.kernel_digest b)
        | _ -> Alcotest.fail "expected at least two candidates");
  ]

(* ------------------------------------------------------------------ *)
(* Round-trips                                                         *)
(* ------------------------------------------------------------------ *)

let roundtrip_tests =
  [
    qt
      (QCheck.Test.make
         ~name:"put/get survives close + reopen with times bit-exact (qcheck)" ~count:30
         QCheck.(
           small_list
             (pair small_nat
                (oneof
                   [
                     float;
                     oneofl
                       [
                         Float.nan;
                         Int64.float_of_bits 0xFFF0DEADBEEF0001L;
                         Float.infinity;
                         0x1.fffffep+127;
                         0x1p-149;
                         -0.0;
                         1e-300;
                       ];
                   ])))
         (fun entries ->
           (* In the real system a key determines its outcome; the store
              is first-write-wins, so keep the first value per key. *)
           let entries =
             List.rev
               (List.fold_left
                  (fun acc (i, t) -> if List.mem_assoc i acc then acc else (i, t) :: acc)
                  [] entries)
           in
           with_tmp (fun file ->
               let s = S.open_ ~file () in
               List.iter
                 (fun (i, time) -> S.put s ~key:(key_of i) ~desc:(Printf.sprintf "cfg-%d" i) (Ok time))
                 entries;
               S.close s;
               let s' = S.open_ ~file () in
               Fun.protect
                 ~finally:(fun () -> S.close s')
                 (fun () ->
                   S.corrupt_entries s' = []
                   && List.for_all
                        (fun (i, time) ->
                          match S.get s' (key_of i) with
                          | Some (Ok time') -> feq time time'
                          | _ -> false)
                        entries))));
    t "fault outcomes round-trip through the journal encoding" (fun () ->
        let faults =
          [
            Tuner.Fault.Compile_error { stage = "unroll"; reason = "bad \"quoted\"\nreason" };
            Tuner.Fault.Verify_rejected { stage = "coalesce"; reason = "mismatch at 3" };
            Tuner.Fault.Launch_error { reason = "too many threads" };
            Tuner.Fault.Sim_trap { reason = "out-of-bounds load" };
            Tuner.Fault.Watchdog_exceeded { issued = 100001; budget = 100000 };
            Tuner.Fault.Worker_crash { exn_name = "Stack_overflow"; backtrace = "" };
          ]
        in
        with_tmp (fun file ->
            let s = S.open_ ~file () in
            List.iteri (fun i fa -> S.put s ~key:(key_of i) ~desc:"d" (Error fa)) faults;
            S.close s;
            let s' = S.open_ ~file () in
            Fun.protect
              ~finally:(fun () -> S.close s')
              (fun () ->
                Alcotest.(check int) "all loaded" (List.length faults) (S.loaded s');
                List.iteri
                  (fun i fa ->
                    match S.get s' (key_of i) with
                    | Some (Error fa') ->
                      Alcotest.(check string) "fault preserved" (Tuner.Fault.to_journal fa)
                        (Tuner.Fault.to_journal fa')
                    | _ -> Alcotest.fail "fault entry lost")
                  faults)));
    t "put is first-write-wins and get/mem agree" (fun () ->
        with_store (fun _file s ->
            S.put s ~key:(key_of 1) ~desc:"d" (Ok 1.0);
            S.put s ~key:(key_of 1) ~desc:"d" (Ok 2.0);
            Alcotest.(check int) "one entry" 1 (S.entries s);
            Alcotest.(check bool) "mem" true (S.mem s (key_of 1));
            Alcotest.(check bool) "absent key" false (S.mem s (key_of 2));
            match S.get s (key_of 1) with
            | Some (Ok x) -> Alcotest.(check (float 0.0)) "first write kept" 1.0 x
            | _ -> Alcotest.fail "entry lost"));
    t "put on a closed store is refused" (fun () ->
        with_tmp (fun file ->
            let s = S.open_ ~file () in
            S.close s;
            match S.put s ~key:(key_of 1) ~desc:"d" (Ok 1.0) with
            | () -> Alcotest.fail "put succeeded on a closed store"
            | exception Invalid_argument _ -> ()));
  ]

(* ------------------------------------------------------------------ *)
(* Concurrency                                                         *)
(* ------------------------------------------------------------------ *)

let concurrency_tests =
  [
    t "concurrent writers from N domains leave a consistent store" (fun () ->
        with_tmp (fun file ->
            let s = S.open_ ~file () in
            let n = 200 in
            (* Four domains race 200 puts, with every key written twice
               (two writers per key) to exercise the already-present
               path under contention. *)
            let work = List.init (2 * n) (fun i -> i mod n) in
            ignore
              (Util.Pool.map ~jobs:4
                 (fun i ->
                   S.put s ~key:(key_of i) ~desc:(Printf.sprintf "cfg-%d" i)
                     (Ok (float_of_int i *. 0x1p-20)))
                 work
                : unit list);
            S.close s;
            let s' = S.open_ ~file () in
            Fun.protect
              ~finally:(fun () -> S.close s')
              (fun () ->
                Alcotest.(check (list (pair int string))) "no record damaged" []
                  (List.map
                     (fun (c : S.corrupt_line) -> (c.cl_line, c.cl_reason))
                     (S.corrupt_entries s'));
                Alcotest.(check int) "every key present exactly once" n (S.entries s');
                for i = 0 to n - 1 do
                  match S.get s' (key_of i) with
                  | Some (Ok x) ->
                    if not (feq x (float_of_int i *. 0x1p-20)) then
                      Alcotest.failf "key %d: wrong time" i
                  | _ -> Alcotest.failf "key %d lost" i
                done)));
  ]

(* ------------------------------------------------------------------ *)
(* Corruption                                                          *)
(* ------------------------------------------------------------------ *)

(* Rewrite one line of a file in place. *)
let mangle_line file lineno (f : string -> string option) : unit =
  let lines = In_channel.with_open_text file In_channel.input_lines in
  let lines' =
    List.concat (List.mapi (fun i l -> if i = lineno then Option.to_list (f l) else [ l ]) lines)
  in
  Out_channel.with_open_text file (fun oc ->
      List.iter
        (fun l ->
          Out_channel.output_string oc l;
          Out_channel.output_char oc '\n')
        lines')

let fill_store file n =
  let s = S.open_ ~file () in
  for i = 0 to n - 1 do
    S.put s ~key:(key_of i) ~desc:(Printf.sprintf "cfg-%d" i) (Ok (float_of_int i))
  done;
  S.close s

let corruption_tests =
  [
    t "a bit-flipped record is rejected loudly and skipped; the rest load" (fun () ->
        with_tmp (fun file ->
            fill_store file 10;
            (* line 0 is the header; flip a payload byte of entry 3 *)
            mangle_line file 4 (fun l ->
                let b = Bytes.of_string l in
                let p = Bytes.length b - 1 in
                Bytes.set b p (if Bytes.get b p = '0' then '1' else '0');
                Some (Bytes.to_string b));
            let s = S.open_ ~file () in
            Fun.protect
              ~finally:(fun () -> S.close s)
              (fun () ->
                (match S.corrupt_entries s with
                | [ { cl_line = 5; cl_reason } ] ->
                  Alcotest.(check bool) "reason names the checksum" true
                    (String.length cl_reason > 0
                    && String.sub cl_reason 0 8 = "checksum")
                | other -> Alcotest.failf "expected 1 corrupt line, got %d" (List.length other));
                Alcotest.(check int) "nine healthy entries" 9 (S.loaded s))));
    t "a truncated record (torn write) is rejected and skipped" (fun () ->
        with_tmp (fun file ->
            fill_store file 5;
            mangle_line file 3 (fun l -> Some (String.sub l 0 (String.length l / 2)));
            let s = S.open_ ~file () in
            Fun.protect
              ~finally:(fun () -> S.close s)
              (fun () ->
                Alcotest.(check int) "one rejection" 1 (List.length (S.corrupt_entries s));
                Alcotest.(check int) "four healthy entries" 4 (S.loaded s))));
    t "garbage lines are rejected per line, never fatal" (fun () ->
        with_tmp (fun file ->
            fill_store file 3;
            mangle_line file 2 (fun _ -> Some "x totally not a record");
            let s = S.open_ ~file () in
            Fun.protect
              ~finally:(fun () -> S.close s)
              (fun () ->
                Alcotest.(check int) "one rejection" 1 (List.length (S.corrupt_entries s));
                Alcotest.(check int) "two healthy entries" 2 (S.loaded s);
                (* and the store still accepts appends afterwards *)
                S.put s ~key:(key_of 99) ~desc:"post" (Ok 9.0);
                Alcotest.(check int) "append after damage" 3 (S.entries s))));
    t "a foreign header is refused outright" (fun () ->
        with_tmp (fun file ->
            Out_channel.with_open_text file (fun oc ->
                Out_channel.output_string oc "some other format v9\n");
            match S.open_ ~file () with
            | (_ : S.t) -> Alcotest.fail "foreign file accepted"
            | exception Failure msg ->
              Alcotest.(check bool) "error names the file" true
                (String.length msg > 0
                && String.exists (fun _ -> true) msg
                && Option.is_some (String.index_opt msg ':'))));
  ]

(* ------------------------------------------------------------------ *)
(* Durability, torn writes, fsck and compaction                        *)
(* ------------------------------------------------------------------ *)

let write_prefix ~(src : string) ~(dst : string) (len : int) : unit =
  let s = In_channel.with_open_bin src In_channel.input_all in
  Out_channel.with_open_bin dst (fun oc -> Out_channel.output_string oc (String.sub s 0 len))

let hardening_tests =
  [
    t "a torn final record recovers the completed prefix at every cut offset" (fun () ->
        (* The crash-recovery proof: kill -9 lands mid-append, so the
           file ends at an arbitrary byte of the record being written.
           For EVERY such offset, reopening must yield exactly the
           completed records, report the torn tail, and never raise. *)
        with_tmp (fun file ->
            fill_store file 4;
            let full = In_channel.with_open_bin file In_channel.input_all in
            let before_last = String.rindex_from full (String.length full - 2) '\n' + 1 in
            with_tmp (fun torn ->
                (* a cut that loses only the trailing newline leaves the
                   whole record on disk: that one must fully recover *)
                write_prefix ~src:file ~dst:torn (String.length full - 1);
                let s = S.open_ ~file:torn () in
                Fun.protect
                  ~finally:(fun () -> S.close s)
                  (fun () ->
                    Alcotest.(check int) "newline-only tear: all records recover" 4 (S.loaded s));
                for cut = before_last to String.length full - 2 do
                  write_prefix ~src:file ~dst:torn cut;
                  let s = S.open_ ~file:torn () in
                  Fun.protect
                    ~finally:(fun () -> S.close s)
                    (fun () ->
                      Alcotest.(check int)
                        (Printf.sprintf "cut %d: completed prefix intact" cut)
                        3 (S.loaded s);
                      for i = 0 to 2 do
                        match S.get s (key_of i) with
                        | Some (Ok x) ->
                          if not (feq x (float_of_int i)) then
                            Alcotest.failf "cut %d: key %d read back wrong" cut i
                        | _ -> Alcotest.failf "cut %d: key %d lost" cut i
                      done;
                      Alcotest.(check bool)
                        (Printf.sprintf "cut %d: torn key absent" cut)
                        false (S.mem s (key_of 3));
                      Alcotest.(check int)
                        (Printf.sprintf "cut %d: torn tail reported" cut)
                        (if cut > before_last then 1 else 0)
                        (List.length (S.corrupt_entries s)))
                done)));
    t "durable appends read back bit-exact after close and reopen" (fun () ->
        with_tmp (fun file ->
            let s = S.open_ ~durable:true ~file () in
            for i = 0 to 9 do
              S.put s ~key:(key_of i) ~desc:(Printf.sprintf "cfg-%d" i)
                (Ok (float_of_int i *. 0x1p-7))
            done;
            S.close s;
            let s' = S.open_ ~file () in
            Fun.protect
              ~finally:(fun () -> S.close s')
              (fun () ->
                Alcotest.(check int) "all durable entries loaded" 10 (S.loaded s');
                for i = 0 to 9 do
                  match S.get s' (key_of i) with
                  | Some (Ok x) ->
                    if not (feq x (float_of_int i *. 0x1p-7)) then
                      Alcotest.failf "durable key %d read back wrong" i
                  | _ -> Alcotest.failf "durable key %d lost" i
                done)));
    t "fsck counts duplicates and corruption; compact reclaims exactly that" (fun () ->
        with_tmp (fun file ->
            fill_store file 6;
            (* replayed append: duplicate key 2's line at the tail *)
            let lines = In_channel.with_open_text file In_channel.input_lines in
            let dup = List.nth lines 3 in
            Out_channel.with_open_gen
              [ Open_append; Open_wronly ]
              0o644 file
              (fun oc -> Out_channel.output_string oc (dup ^ "\n"));
            (* torn write: truncate key 4's line *)
            mangle_line file 5 (fun l -> Some (String.sub l 0 (String.length l - 3)));
            let r = S.fsck ~file in
            Alcotest.(check int) "records scanned" 7 r.S.fs_records;
            Alcotest.(check int) "valid keys" 5 r.S.fs_valid;
            Alcotest.(check int) "duplicates" 1 r.S.fs_duplicates;
            Alcotest.(check int) "corrupt lines" 1 (List.length r.S.fs_corrupt);
            Alcotest.(check bool) "reclaimable bytes positive" true (r.S.fs_reclaimable > 0);
            let _r2, reclaimed = S.compact ~file in
            Alcotest.(check int) "compact reclaims what fsck promised" r.S.fs_reclaimable
              reclaimed;
            let r3 = S.fsck ~file in
            Alcotest.(check int) "clean after compact: nothing reclaimable" 0 r3.S.fs_reclaimable;
            Alcotest.(check int) "clean after compact: no corruption" 0
              (List.length r3.S.fs_corrupt);
            Alcotest.(check int) "clean after compact: no duplicates" 0 r3.S.fs_duplicates;
            let s = S.open_ ~file () in
            Fun.protect
              ~finally:(fun () -> S.close s)
              (fun () ->
                Alcotest.(check int) "survivors load" 5 (S.loaded s);
                Alcotest.(check bool) "corrupt key gone" false (S.mem s (key_of 4));
                List.iter
                  (fun i ->
                    match S.get s (key_of i) with
                    | Some (Ok x) ->
                      if not (feq x (float_of_int i)) then
                        Alcotest.failf "key %d wrong after compact" i
                    | _ -> Alcotest.failf "key %d lost by compact" i)
                  [ 0; 1; 2; 3; 5 ])));
    qt
      (QCheck.Test.make
         ~name:"4-domain appends + a kill truncation lose at most the torn tail (qcheck)"
         ~count:15
         QCheck.(pair (int_bound 1_000_000) (int_bound 16))
         (fun (cutseed, extra) ->
           with_tmp (fun file ->
               let n = 24 + extra in
               let s = S.open_ ~file () in
               ignore
                 (Util.Pool.map ~jobs:4
                    (fun i ->
                      S.put s ~key:(key_of i) ~desc:(Printf.sprintf "cfg-%d" i)
                        (Ok (float_of_int i *. 0x1p-10)))
                    (List.init n Fun.id)
                   : unit list);
               S.close s;
               let full = In_channel.with_open_bin file In_channel.input_all in
               let hdr = String.index full '\n' + 1 in
               let cut = hdr + (cutseed mod (String.length full - hdr + 1)) in
               with_tmp (fun torn ->
                   write_prefix ~src:file ~dst:torn cut;
                   let s' = S.open_ ~file:torn () in
                   Fun.protect
                     ~finally:(fun () -> S.close s')
                     (fun () ->
                       (* one truncation can damage at most the record it
                          landed in, and anything that survives reads
                          back exactly as written *)
                       List.length (S.corrupt_entries s') <= 1
                       && List.for_all
                            (fun i ->
                              match S.get s' (key_of i) with
                              | None -> true
                              | Some (Ok x) -> feq x (float_of_int i *. 0x1p-10)
                              | Some (Error _) -> false)
                            (List.init n Fun.id))))));
  ]

let suite =
  [
    ( "store",
      digest_tests @ roundtrip_tests @ concurrency_tests @ corruption_tests @ hardening_tests );
  ]
