(* Tests for the unified compilation pipeline: PTX verification rejects
   corrupted kernels, per-stage verification catches broken passes, the
   typed spaces match the candidate enumerations, and the trace hook
   reports per-pass statistics. *)

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let r0 = Ptx.Reg.make F32 0
let r1 = Ptx.Reg.make F32 1
let s0 = Ptx.Reg.make S32 0
let p0 = Ptx.Reg.make Pred 0

let ret_kernel ~name blocks =
  Ptx.Prog.make ~name ~params:[] ~smem_words:0 ~lmem_words:0 blocks

let rejects what k =
  match Ptx.Verify.check k with
  | Ok () -> Alcotest.failf "verifier accepted a kernel with %s" what
  | Error vs -> check_b "violations reported" true (vs <> [])

(* ------------------------------------------------------------------ *)
(* Ptx.Verify on hand-corrupted kernels                                 *)
(* ------------------------------------------------------------------ *)

let verify_tests =
  [
    t "accepts a well-formed straight-line kernel" (fun () ->
        let k =
          ret_kernel ~name:"ok"
            [
              Ptx.Prog.block "entry"
                [
                  Ptx.Instr.Mov (r0, Ptx.Instr.Imm_f 1.0);
                  Ptx.Instr.F2 (Ptx.Instr.FAdd, r1, Ptx.Instr.Reg r0, Ptx.Instr.Imm_f 2.0);
                ]
                Ptx.Prog.Ret;
            ]
        in
        check_b "ok" true (Ptx.Verify.check k = Ok ()));
    t "rejects a use of an undefined register" (fun () ->
        let k =
          ret_kernel ~name:"undef"
            [
              Ptx.Prog.block "entry"
                [ Ptx.Instr.F2 (Ptx.Instr.FAdd, r1, Ptx.Instr.Reg r0, Ptx.Instr.Imm_f 2.0) ]
                Ptx.Prog.Ret;
            ]
        in
        rejects "an undefined register" k);
    t "rejects a register defined only on one branch arm" (fun () ->
        let k =
          ret_kernel ~name:"halfdef"
            [
              Ptx.Prog.block "entry"
                [
                  Ptx.Instr.Mov (s0, Ptx.Instr.Par "n");
                  Ptx.Instr.Setp (Ptx.Instr.CLt, Ptx.Reg.S32, p0, Ptx.Instr.Reg s0, Ptx.Instr.Imm_i 4);
                ]
                (Ptx.Prog.Br { pred = p0; negate = false; if_true = "then"; if_false = "join"; reconv = "join" });
              Ptx.Prog.block "then" [ Ptx.Instr.Mov (r0, Ptx.Instr.Imm_f 1.0) ] (Ptx.Prog.Jump "join");
              (* r0 is undefined when the branch is not taken *)
              Ptx.Prog.block "join"
                [ Ptx.Instr.F2 (Ptx.Instr.FAdd, r1, Ptx.Instr.Reg r0, Ptx.Instr.Imm_f 2.0) ]
                Ptx.Prog.Ret;
            ]
        in
        let k = { k with Ptx.Prog.params = [ { Ptx.Prog.pname = "n"; pty = Ptx.Prog.PS32 } ] } in
        rejects "a partially defined register" k);
    t "rejects a dangling jump target" (fun () ->
        let k =
          ret_kernel ~name:"dangling"
            [ Ptx.Prog.block "entry" [] (Ptx.Prog.Jump "nowhere") ]
        in
        rejects "a dangling label" k);
    t "rejects an undeclared parameter reference" (fun () ->
        let k =
          ret_kernel ~name:"ghostpar"
            [ Ptx.Prog.block "entry" [ Ptx.Instr.Mov (r0, Ptx.Instr.Par "ghost") ] Ptx.Prog.Ret ]
        in
        rejects "an undeclared parameter" k);
    t "rejects a barrier inside a tid-divergent region" (fun () ->
        let k =
          ret_kernel ~name:"divbar"
            [
              Ptx.Prog.block "entry"
                [
                  Ptx.Instr.Mov (s0, Ptx.Instr.Spec Ptx.Instr.Tid_x);
                  Ptx.Instr.Setp (Ptx.Instr.CLt, Ptx.Reg.S32, p0, Ptx.Instr.Reg s0, Ptx.Instr.Imm_i 4);
                ]
                (Ptx.Prog.Br { pred = p0; negate = false; if_true = "then"; if_false = "join"; reconv = "join" });
              Ptx.Prog.block "then" [ Ptx.Instr.Bar ] (Ptx.Prog.Jump "join");
              Ptx.Prog.block "join" [] Ptx.Prog.Ret;
            ]
        in
        rejects "a divergent barrier" k);
    t "accepts the same barrier under a uniform predicate" (fun () ->
        (* Identical shape, but the predicate derives from a kernel
           parameter (uniform across the block), so the barrier is
           legal: every thread or no thread reaches it. *)
        let k =
          ret_kernel ~name:"unibar"
            [
              Ptx.Prog.block "entry"
                [
                  Ptx.Instr.Mov (s0, Ptx.Instr.Par "n");
                  Ptx.Instr.Setp (Ptx.Instr.CLt, Ptx.Reg.S32, p0, Ptx.Instr.Reg s0, Ptx.Instr.Imm_i 4);
                ]
                (Ptx.Prog.Br { pred = p0; negate = false; if_true = "then"; if_false = "join"; reconv = "join" });
              Ptx.Prog.block "then" [ Ptx.Instr.Bar ] (Ptx.Prog.Jump "join");
              Ptx.Prog.block "join" [] Ptx.Prog.Ret;
            ]
        in
        let k = { k with Ptx.Prog.params = [ { Ptx.Prog.pname = "n"; pty = Ptx.Prog.PS32 } ] } in
        check_b "ok" true (Ptx.Verify.check k = Ok ()));
    t "check_exn raises Invalid with the stage name" (fun () ->
        let k =
          ret_kernel ~name:"undef"
            [
              Ptx.Prog.block "entry"
                [ Ptx.Instr.F2 (Ptx.Instr.FAdd, r1, Ptx.Instr.Reg r0, Ptx.Instr.Imm_f 2.0) ]
                Ptx.Prog.Ret;
            ]
        in
        match Ptx.Verify.check_exn ~stage:"unit-test" k with
        | () -> Alcotest.fail "expected Invalid"
        | exception Ptx.Verify.Invalid (stage, vs) ->
          check_b "stage" true (stage = "unit-test");
          check_b "violations" true (vs <> []));
  ]

(* ------------------------------------------------------------------ *)
(* Pipeline verification catches broken passes                          *)
(* ------------------------------------------------------------------ *)

let mm_cfg = { Apps.Matmul.tile = 16; rect = 2; unroll = 2; prefetch = true; spill = false }

let pipeline_tests =
  [
    t "a KIR pass that breaks typing is caught and named" (fun () ->
        let broken =
          Tuner.Pipeline.kir_pass "break-kir" (fun k ->
              { k with Kir.Ast.body = [ Kir.Ast.Assign ("ghost", Kir.Ast.v "ghost") ] })
        in
        let sched =
          { (Apps.Matmul.schedule mm_cfg) with Tuner.Pipeline.kir_passes = [ broken ] }
        in
        match Tuner.Pipeline.compile sched (Apps.Matmul.kernel ~n:64 mm_cfg) with
        | _ -> Alcotest.fail "expected Pass_failed"
        | exception Tuner.Pipeline.Pass_failed { stage; _ } ->
          check_b "stage names the pass" true (stage = "break-kir"));
    t "a PTX pass that corrupts the kernel is caught and named" (fun () ->
        (* Empty the entry block's body: downstream blocks then use
           registers that are never defined. *)
        let broken =
          Tuner.Pipeline.ptx_pass "break-ptx" (fun (p : Ptx.Prog.t) ->
              match p.blocks with
              | b :: rest -> { p with blocks = { b with body = [] } :: rest }
              | [] -> p)
        in
        let base = Apps.Matmul.schedule mm_cfg in
        let sched =
          { base with Tuner.Pipeline.ptx_passes = base.ptx_passes @ [ broken ] }
        in
        (match Tuner.Pipeline.compile sched (Apps.Matmul.kernel ~n:64 mm_cfg) with
        | _ -> Alcotest.fail "expected Pass_failed"
        | exception Tuner.Pipeline.Pass_failed { stage; _ } ->
          check_b "stage names the pass" true (stage = "break-ptx"));
        (* With verification off the same schedule completes: the
           checks, not luck, caught the corruption. *)
        match Tuner.Pipeline.compile ~verify:false sched (Apps.Matmul.kernel ~n:64 mm_cfg) with
        | (_ : Tuner.Pipeline.compiled) -> ()
        | exception Tuner.Pipeline.Pass_failed _ ->
          Alcotest.fail "verification off should not raise Pass_failed");
    t "the trace hook reports every stage with sane statistics" (fun () ->
        let stats = ref [] in
        let c =
          Apps.Matmul.compile ~n:64 ~hook:(fun s -> stats := s :: !stats) mm_cfg
        in
        let stats = List.rev !stats in
        check_b "has KIR stages" true
          (List.exists (fun (s : Tuner.Pipeline.stat) -> s.layer = Tuner.Pipeline.Kir) stats);
        check_b "has the lower stage" true
          (List.exists (fun (s : Tuner.Pipeline.stat) -> s.stage = "lower") stats);
        (match List.rev stats with
        | last :: _ ->
          check_b "last stage is characterize" true (last.stage = "characterize");
          check_i "regs match the resource report" c.resource.regs_per_thread last.regs
        | [] -> Alcotest.fail "no stats emitted");
        List.iter
          (fun (s : Tuner.Pipeline.stat) ->
            check_b "sizes positive" true (s.size_before > 0 && s.size_after > 0);
            check_b "time non-negative" true (s.elapsed_s >= 0.0))
          stats);
    t "scheduled PTX passes reproduce Ptx.Opt.run exactly" (fun () ->
        let kir = Apps.Matmul.kernel ~n:64 mm_cfg in
        let kir =
          List.fold_left
            (fun k (p : Tuner.Pipeline.kir_pass) -> p.kp_fn k)
            kir (Apps.Matmul.schedule mm_cfg).kir_passes
        in
        let direct = Ptx.Opt.run (Kir.Lower.lower kir) in
        let piped = (Tuner.Pipeline.lower_opt kir).ptx in
        check_b "byte-identical kernels" true (direct = piped));
    t "unroll of a missing loop label raises No_such_loop" (fun () ->
        let k = Apps.Matmul.kernel ~n:64 mm_cfg in
        match Kir.Unroll.apply ~select:(Kir.Unroll.Named "nonexistent") ~factor:2 k with
        | _ -> Alcotest.fail "expected No_such_loop"
        | exception Kir.Unroll.No_such_loop name ->
          check_b "names the loop" true (name = "nonexistent"));
    t "Named and Pred selectors agree on the k loop" (fun () ->
        let k = Apps.Matmul.kernel ~n:64 mm_cfg in
        let a = Kir.Unroll.apply ~select:(Kir.Unroll.Named "k") ~factor:2 k in
        let b = Kir.Unroll.apply ~select:(Kir.Unroll.Pred (String.equal "k")) ~factor:2 k in
        check_b "identical" true (a = b));
  ]

(* ------------------------------------------------------------------ *)
(* Spaces vs candidate enumerations                                     *)
(* ------------------------------------------------------------------ *)

let space_tests =
  [
    t "registry cardinalities are the paper's Table 4 sizes" (fun () ->
        let card name =
          (Option.get (Apps.Registry.find name)).Apps.Registry.cardinality
        in
        check_i "matmul" 96 (card "matmul");
        check_i "cp" 40 (card "cp");
        check_i "sad" 648 (card "sad");
        check_i "mri" 175 (card "mri"));
    t "sad's validity constraint is recorded and effective" (fun () ->
        let s = Apps.Sad.space in
        check_b "constraint named" true
          (List.mem "u_vec <= tiling" (Tuner.Space.constraints s));
        check_i "raw cross product" 972 (Tuner.Space.raw_cardinality s);
        check_i "constrained" 648 (Tuner.Space.cardinality s);
        check_b "predicate holds everywhere" true
          (List.for_all (fun (c : Apps.Sad.config) -> c.u_vec <= c.tiling)
             (Tuner.Space.configs s)));
    t "space params carry every axis in declaration order" (fun () ->
        List.iter
          (fun (_, params) ->
            check_b "axis names" true
              (List.map fst params = [ "tile"; "rect"; "unroll"; "prefetch"; "spill" ]))
          (Tuner.Space.elements Apps.Matmul.space));
    ts "every registry app enumerates exactly its space" (fun () ->
        List.iter
          (fun (e : Apps.Registry.entry) ->
            let cands = e.quick_candidates () in
            check_i (e.name ^ " count") e.cardinality (List.length cands);
            check_b (e.name ^ " order and descs") true
              (List.map (fun (c : Tuner.Candidate.t) -> c.desc) cands
              = Lazy.force e.configs))
          Apps.Registry.all);
  ]

let suite =
  [
    ("pipeline.verify", verify_tests);
    ("pipeline.compile", pipeline_tests);
    ("pipeline.spaces", space_tests);
  ]
