(* Wire-protocol battery: QCheck round-trips for every message, plus
   adversarial framing — truncated frames, oversized length prefixes,
   interleaved garbage, hostile JSON.  The contract under test is
   totality: any bytes produce either a message or a typed error,
   never an exception, a hang or a stack overflow. *)

module P = Tuner.Proto
module J = Util.Json

let t name f = Alcotest.test_case name `Quick f
let qt = QCheck_alcotest.to_alcotest

(* Exact float identity, NaN included. *)
let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_string =
  (* Full byte range: the codec must round-trip control characters and
     non-UTF-8 bytes, not just pretty ASCII. *)
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 24))

let gen_float =
  (* [Float.nan] is itself a payload NaN (0x7ff8...001); the other two
     NaNs pin sign and arbitrary-payload round-trips. *)
  QCheck.Gen.(
    oneof
      [
        float;
        oneofl
          [
            Float.nan;
            Int64.float_of_bits 0xFFF8000000000000L;
            Int64.float_of_bits 0x7FF0123456789ABCL;
            Float.infinity;
            Float.neg_infinity;
            0.0;
            -0.0;
            0x1p-1074;
            1e300;
          ];
      ])

let gen_scale = QCheck.Gen.oneofl [ P.Quick; P.Bench; P.Full ]

let gen_chaos =
  QCheck.Gen.(
    opt (map2 (fun s c -> { P.ch_seed = s; ch_count = c }) small_int small_int))

let gen_request =
  QCheck.Gen.(
    oneof
      [
        return P.Ping;
        return P.Stats;
        return P.Shutdown;
        map2
          (fun (app, scale) (arch, deadline_ms) -> P.Tune { app; scale; arch; deadline_ms })
          (pair gen_string gen_scale)
          (pair (opt gen_string) (opt small_int));
        map3
          (fun (app, scale) (chaos, arch) (predict, deadline_ms) ->
            P.Explore { app; scale; chaos; arch; predict; deadline_ms })
          (pair gen_string gen_scale)
          (pair gen_chaos (opt gen_string))
          (pair bool (opt small_int));
        map2 (fun app config -> P.Lint { app; config }) gen_string (opt gen_string);
      ])

let gen_row = QCheck.Gen.(map2 (fun d x -> { P.m_desc = d; m_time_s = x }) gen_string gen_float)
let gen_fault = QCheck.Gen.(map2 (fun d f -> { P.f_desc = d; f_fault = f }) gen_string gen_string)

let gen_response =
  QCheck.Gen.(
    oneof
      [
        return P.Pong;
        return P.Bye;
        map
          (fun (a, b, c, d, e, f) ->
            P.Stats_r
              {
                sv_requests = a;
                sv_errors = b;
                sv_runs = c;
                sv_store_hits = d;
                sv_store_misses = e;
                sv_store_entries = f;
              })
          (tup6 small_int small_int small_int small_int small_int small_int);
        map
          (fun ((app, n, chosen, sel, runs, hits), arch) ->
            P.Tune_r
              {
                t_app = app;
                t_arch = arch;
                t_space_size = n;
                t_chosen = chosen;
                t_selected = sel;
                t_runs = runs;
                t_store_hits = hits;
              })
          (pair
             (tup6 gen_string small_int gen_row (small_list gen_string) small_int small_int)
             gen_string);
        map2
          (fun (app, n, inv, best, sbest, sel) ((ex, red, opt, faults, runs, hits), arch) ->
            P.Explore_r
              {
                x_app = app;
                x_arch = arch;
                x_space_size = n;
                x_invalid = inv;
                x_best = best;
                x_selected_best = sbest;
                x_selected = sel;
                x_exhaustive = ex;
                x_reduction = red;
                x_optimum_selected = opt;
                x_faults = faults;
                x_runs = runs;
                x_store_hits = hits;
                x_prune = None;
              })
          (tup6 gen_string small_int small_int gen_row gen_row (small_list gen_string))
          (pair
             (tup6 (small_list gen_row) gen_float bool (small_list gen_fault) small_int
                small_int)
             gen_string);
        map2 (fun r e -> P.Lint_r { l_report = r; l_errors = e }) gen_string bool;
        map2
          (fun c m -> P.Error_r { e_code = c; e_msg = m })
          (oneofl
             [
               P.Unknown_app;
               P.Bad_request;
               P.Protocol_error;
               P.Server_error;
               P.Deadline_exceeded;
             ])
          gen_string;
        map (fun ms -> P.Overloaded_r { o_retry_after_ms = ms }) small_int;
      ])

(* ------------------------------------------------------------------ *)
(* Message equality (floats by bits)                                   *)
(* ------------------------------------------------------------------ *)

let row_eq (a : P.measured_row) (b : P.measured_row) =
  String.equal a.m_desc b.m_desc && feq a.m_time_s b.m_time_s

let req_eq (a : P.request) (b : P.request) =
  match (a, b) with
  | P.Ping, P.Ping | P.Stats, P.Stats | P.Shutdown, P.Shutdown -> true
  | P.Tune x, P.Tune y ->
    x.app = y.app && x.scale = y.scale && x.arch = y.arch && x.deadline_ms = y.deadline_ms
  | P.Explore x, P.Explore y ->
    x.app = y.app && x.scale = y.scale && x.chaos = y.chaos && x.arch = y.arch
    && x.predict = y.predict
    && x.deadline_ms = y.deadline_ms
  | P.Lint x, P.Lint y -> x.app = y.app && x.config = y.config
  | _ -> false

let resp_eq (a : P.response) (b : P.response) =
  match (a, b) with
  | P.Pong, P.Pong | P.Bye, P.Bye -> true
  | P.Stats_r x, P.Stats_r y -> x = y
  | P.Tune_r x, P.Tune_r y ->
    x.t_app = y.t_app && x.t_space_size = y.t_space_size && row_eq x.t_chosen y.t_chosen
    && x.t_selected = y.t_selected && x.t_runs = y.t_runs && x.t_store_hits = y.t_store_hits
  | P.Explore_r x, P.Explore_r y ->
    x.x_app = y.x_app && x.x_space_size = y.x_space_size && x.x_invalid = y.x_invalid
    && row_eq x.x_best y.x_best
    && row_eq x.x_selected_best y.x_selected_best
    && x.x_selected = y.x_selected
    && List.length x.x_exhaustive = List.length y.x_exhaustive
    && List.for_all2 row_eq x.x_exhaustive y.x_exhaustive
    && feq x.x_reduction y.x_reduction
    && x.x_optimum_selected = y.x_optimum_selected
    && x.x_faults = y.x_faults && x.x_runs = y.x_runs && x.x_store_hits = y.x_store_hits
  | P.Lint_r x, P.Lint_r y -> x.l_report = y.l_report && x.l_errors = y.l_errors
  | P.Error_r x, P.Error_r y -> x.e_code = y.e_code && x.e_msg = y.e_msg
  | P.Overloaded_r x, P.Overloaded_r y -> x.o_retry_after_ms = y.o_retry_after_ms
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Round-trip properties                                               *)
(* ------------------------------------------------------------------ *)

let roundtrip_tests =
  [
    qt
      (QCheck.Test.make ~name:"request round-trips through encode/decode (qcheck)" ~count:500
         (QCheck.make gen_request) (fun req ->
           match P.decode_request (P.encode_request req) with
           | Ok req' -> req_eq req req'
           | Error e -> QCheck.Test.fail_reportf "decode: %s" (P.decode_error_to_string e)));
    qt
      (QCheck.Test.make
         ~name:"response round-trips through encode/decode, floats bit-exact (qcheck)" ~count:500
         (QCheck.make gen_response) (fun resp ->
           match P.decode_response (P.encode_response resp) with
           | Ok resp' -> resp_eq resp resp'
           | Error e -> QCheck.Test.fail_reportf "decode: %s" (P.decode_error_to_string e)));
    qt
      (QCheck.Test.make ~name:"JSON values survive print/parse (qcheck)" ~count:500
         (QCheck.make
            QCheck.Gen.(
              sized (fun n ->
                  fix
                    (fun self n ->
                      if n = 0 then
                        oneof
                          [
                            return J.Null;
                            map (fun b -> J.Bool b) bool;
                            map (fun i -> J.Int i) int;
                            map (fun s -> J.Str s) gen_string;
                          ]
                      else
                        oneof
                          [
                            map (fun l -> J.List l) (list_size (int_bound 4) (self (n / 2)));
                            map
                              (fun l -> J.Obj l)
                              (list_size (int_bound 4) (pair gen_string (self (n / 2))));
                          ])
                    (min n 6))))
         (fun v ->
           match J.of_string (J.to_string v) with Ok v' -> v = v' | Error _ -> false));
  ]

(* ------------------------------------------------------------------ *)
(* Adversarial framing                                                 *)
(* ------------------------------------------------------------------ *)

let framing_tests =
  [
    t "frame/peek_frame round-trip, including back-to-back frames" (fun () ->
        let a = "hello" and b = String.make 300 'x' in
        let buf = P.frame a ^ P.frame b in
        match P.peek_frame buf ~pos:0 with
        | `Frame (p, next) -> (
          Alcotest.(check string) "first payload" a p;
          match P.peek_frame buf ~pos:next with
          | `Frame (p2, next2) ->
            Alcotest.(check string) "second payload" b p2;
            Alcotest.(check int) "consumed exactly" (String.length buf) next2
          | _ -> Alcotest.fail "second frame not found")
        | _ -> Alcotest.fail "first frame not found");
    qt
      (QCheck.Test.make ~name:"every strict prefix of a frame asks for the missing bytes (qcheck)"
         ~count:200
         (QCheck.make QCheck.Gen.(pair gen_string (int_bound 1000)))
         (fun (payload, cut) ->
           let full = P.frame payload in
           let cut = cut mod String.length full in
           let prefix = String.sub full 0 cut in
           match P.peek_frame prefix ~pos:0 with
           | `Need k ->
             (* before the 4-byte header is in, only its remainder is
                requested; after, the remainder of the whole frame *)
             k = (if cut < 4 then 4 - cut else String.length full - cut)
             && (match P.peek_frame full ~pos:0 with `Frame (p, _) -> p = payload | _ -> false)
             &&
             (* a stream ending here is a typed truncation, not a crash *)
             (match P.at_eof ~pending:cut ~need:k with
             | Some (P.Truncated _) -> cut > 0 || k <> 4
             | None -> cut = 0
             | Some (P.Oversized _) -> false)
           | _ -> false));
    t "oversized length prefix is rejected before allocation" (fun () ->
        let header = Bytes.create 4 in
        Bytes.set_uint8 header 0 0x7F;
        Bytes.set_uint8 header 1 0xFF;
        Bytes.set_uint8 header 2 0xFF;
        Bytes.set_uint8 header 3 0xFF;
        (match P.peek_frame (Bytes.to_string header) ~pos:0 with
        | `Error (P.Oversized { frame_len; max_len }) ->
          Alcotest.(check int) "declared" 0x7FFFFFFF frame_len;
          Alcotest.(check int) "limit" P.default_max_frame max_len
        | _ -> Alcotest.fail "oversized frame accepted");
        (* one byte over the limit is already out *)
        let n = P.default_max_frame + 1 in
        let h = Bytes.create 4 in
        Bytes.set_uint8 h 0 ((n lsr 24) land 0xFF);
        Bytes.set_uint8 h 1 ((n lsr 16) land 0xFF);
        Bytes.set_uint8 h 2 ((n lsr 8) land 0xFF);
        Bytes.set_uint8 h 3 (n land 0xFF);
        match P.peek_frame (Bytes.to_string h) ~pos:0 with
        | `Error (P.Oversized _) -> ()
        | _ -> Alcotest.fail "limit+1 frame accepted");
    qt
      (QCheck.Test.make ~name:"garbage bytes never crash the decoders (qcheck)" ~count:500
         (QCheck.make QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 64)))
         (fun garbage ->
           (* Any result is fine; an exception is the only failure. *)
           (match P.decode_request garbage with Ok _ | Error _ -> ());
           (match P.decode_response garbage with Ok _ | Error _ -> ());
           (match P.peek_frame garbage ~pos:0 with `Frame _ | `Need _ | `Error _ -> ());
           true));
    t "interleaved garbage between frames surfaces as a typed error" (fun () ->
        (* A valid frame, then bytes that declare an absurd length: the
           stream is poisoned and must die with Oversized, not hang. *)
        let buf = P.frame {|{"type":"ping"}|} ^ "\xFF\xFF\xFF\xFFgarbage" in
        match P.peek_frame buf ~pos:0 with
        | `Frame (p, next) -> (
          Alcotest.(check bool) "first frame decodes" true (P.decode_request p = Ok P.Ping);
          match P.peek_frame buf ~pos:next with
          | `Error (P.Oversized _) -> ()
          | _ -> Alcotest.fail "garbage tail not rejected")
        | _ -> Alcotest.fail "leading frame lost");
    t "hostile JSON: deep nesting terminates with an error, not a stack overflow" (fun () ->
        let deep = String.make 100_000 '[' in
        (match J.of_string deep with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "100k-deep nesting parsed");
        match P.decode_request (String.make 100_000 '{') with
        | Error (P.Bad_json _) -> ()
        | _ -> Alcotest.fail "deep object accepted");
    t "well-formed JSON of the wrong shape is a Bad_message" (fun () ->
        List.iter
          (fun text ->
            match P.decode_request text with
            | Error (P.Bad_message _) -> ()
            | Ok _ -> Alcotest.failf "%s decoded as a request" text
            | Error (P.Bad_json m) -> Alcotest.failf "%s reported as bad JSON: %s" text m)
          [
            {|{"type":"warp-speed"}|};
            {|{"type":"tune"}|};
            {|{"type":"tune","app":"matmul","scale":"galactic"}|};
            {|{"type":"tune","app":42,"scale":"quick"}|};
            {|{"no_type":true}|};
            {|[1,2,3]|};
            {|"just a string"|};
          ]);
  ]

let suite = [ ("proto", roundtrip_tests @ framing_tests) ]
