(* The machine-model registry (PR 7): registry invariants, store-digest
   distinctness and legacy pinning, per-arch occupancy, cross-arch sweep
   determinism, served-equals-direct per arch, and the headline result —
   different machines pick different winning configurations. *)

module A = Gpu.Arch
module P = Tuner.Proto
module S = Tuner.Serve

let t name f = Alcotest.test_case name `Quick f
let check_b what = Alcotest.(check bool) what
let check_i what = Alcotest.(check int) what
let check_s what = Alcotest.(check string) what
let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* ------------------------------------------------------------------ *)
(* Registry invariants                                                 *)
(* ------------------------------------------------------------------ *)

let registry_tests =
  [
    t "registry holds at least three models, g80 first" (fun () ->
        check_b "three or more" true (List.length A.archs >= 3);
        check_s "g80 first" "g80" (List.hd A.archs).A.name);
    t "names are unique and find round-trips every entry" (fun () ->
        let names = A.names in
        check_i "unique" (List.length names) (List.length (List.sort_uniq compare names));
        List.iter
          (fun (a : A.t) ->
            match A.find a.A.name with
            | Some b -> check_s ("find " ^ a.A.name) a.A.name b.A.name
            | None -> Alcotest.failf "find %s returned None" a.A.name)
          A.archs;
        check_b "unknown name" true (A.find "not-an-arch" = None));
    t "every model is simulable: warp 32, power-of-two banks" (fun () ->
        List.iter
          (fun (a : A.t) ->
            check_i (a.A.name ^ " warp") 32 a.A.limits.warp_size;
            check_b (a.A.name ^ " banks pow2") true (is_pow2 a.A.shared_banks);
            check_b (a.A.name ^ " positive clock") true (a.A.clock_ghz > 0.0))
          A.archs);
    t "g80 carries the paper's numbers verbatim" (fun () ->
        let g = A.g80 in
        check_i "SMs" 16 g.A.limits.num_sms;
        check_i "threads/SM" 768 g.A.limits.max_threads_per_sm;
        check_i "blocks/SM" 8 g.A.limits.max_blocks_per_sm;
        check_i "regs/SM" 8192 g.A.limits.regs_per_sm;
        check_i "smem/SM" 16384 g.A.limits.smem_per_sm;
        check_i "banks" 16 g.A.shared_banks;
        check_b "388.8 GFLOPS" true (Float.abs (A.peak_gflops g -. 388.8) < 0.01);
        check_b "4 B/cy/SM" true (Float.abs (A.bytes_per_cycle_per_sm g -. 4.0) < 0.01));
    t "the registry spans the design space" (fun () ->
        let wide = Option.get (A.find "wide32") and fpga = Option.get (A.find "fpga_soft") in
        check_i "wide32 banks" 32 wide.A.shared_banks;
        check_b "wide32 regs > g80" true
          (wide.A.limits.regs_per_sm > A.g80.A.limits.regs_per_sm);
        check_b "fpga regs < g80" true
          (fpga.A.limits.regs_per_sm < A.g80.A.limits.regs_per_sm);
        check_b "fpga block limit < g80" true
          (fpga.A.limits.max_threads_per_block < A.g80.A.limits.max_threads_per_block));
  ]

(* ------------------------------------------------------------------ *)
(* Store digests: legacy pinning and full-record distinctness          *)
(* ------------------------------------------------------------------ *)

(* The exact string the store hashed before the machine model became a
   value.  If this test fails, every pre-registry store on disk goes
   cold — treat the digest as frozen. *)
let legacy_g80_digest () =
  let l = A.g80.A.limits and lat = A.g80.A.latencies in
  Digest.to_hex
    (Digest.string
       (String.concat ","
          [
            "arch";
            string_of_int l.num_sms;
            string_of_int l.max_threads_per_sm;
            string_of_int l.max_blocks_per_sm;
            string_of_int l.regs_per_sm;
            string_of_int l.smem_per_sm;
            string_of_int l.max_threads_per_block;
            string_of_int A.g80.A.shared_banks;
            Printf.sprintf "%h" A.g80.A.clock_ghz;
            Printf.sprintf "%h" A.g80.A.global_bandwidth_gbs;
            string_of_int lat.issue;
            string_of_int lat.alu;
            string_of_int lat.sfu;
            string_of_int lat.sfu_issue;
            string_of_int lat.shared;
            string_of_int lat.global;
            string_of_int lat.coalesced_tx;
            string_of_int A.g80.A.scoreboard_depth;
          ]))

let digest_tests =
  [
    t "g80 digest is bit-identical to the pre-registry store digest" (fun () ->
        check_s "default = g80" (Tuner.Store.arch_digest ()) (Tuner.Store.arch_digest ~arch:A.g80 ());
        check_s "pinned legacy hash" (legacy_g80_digest ()) (Tuner.Store.arch_digest ()));
    t "every registry pair hashes differently" (fun () ->
        let ds = List.map (fun a -> Tuner.Store.arch_digest ~arch:a ()) A.archs in
        check_i "all distinct" (List.length ds) (List.length (List.sort_uniq compare ds)));
    t "two arches differing only in one latency hash differently" (fun () ->
        let bumped =
          { A.g80 with A.latencies = { A.g80.A.latencies with alu = A.g80.A.latencies.alu + 1 } }
        in
        check_b "alu latency splits the digest" false
          (String.equal (Tuner.Store.arch_digest ~arch:A.g80 ())
             (Tuner.Store.arch_digest ~arch:bumped ())));
    t "extension fields split the digest too" (fun () ->
        (* const_hit and flops/SM are outside the legacy 18-field list;
           the tagged extension entries must still separate them. *)
        let hit =
          {
            A.g80 with
            A.latencies = { A.g80.A.latencies with const_hit = A.g80.A.latencies.const_hit + 1 };
          }
        in
        let flops = { A.g80 with A.flops_per_sm_per_cycle = A.g80.A.flops_per_sm_per_cycle + 1 } in
        let d a = Tuner.Store.arch_digest ~arch:a () in
        check_b "const_hit" false (String.equal (d A.g80) (d hit));
        check_b "flops" false (String.equal (d A.g80) (d flops)));
  ]

(* ------------------------------------------------------------------ *)
(* Per-arch occupancy and launch guards                                *)
(* ------------------------------------------------------------------ *)

let occupancy_tests =
  [
    t "a 1024-thread block is invalid on g80, valid on wide32" (fun () ->
        let wide = Option.get (A.find "wide32") in
        let o arch = A.occupancy ~arch ~threads_per_block:1024 ~regs_per_thread:8 ~smem_per_block:0 () in
        check_b "g80 rejects" false (A.is_valid (o A.g80));
        check_b "wide32 accepts" true (A.is_valid (o wide)));
    t "a 512-thread block is valid on g80, invalid on fpga_soft" (fun () ->
        let fpga = Option.get (A.find "fpga_soft") in
        let o arch = A.occupancy ~arch ~threads_per_block:512 ~regs_per_thread:4 ~smem_per_block:0 () in
        check_b "g80 accepts" true (A.is_valid (o A.g80));
        check_b "fpga rejects" false (A.is_valid (o fpga)));
    t "register pressure caps occupancy differently per arch" (fun () ->
        let wide = Option.get (A.find "wide32") in
        let o arch =
          (A.occupancy ~arch ~threads_per_block:256 ~regs_per_thread:11 ~smem_per_block:4096 ())
            .A.blocks_per_sm
        in
        (* The paper's cliff: 11 regs -> 2 blocks on g80.  wide32's
           larger register file does not hit that wall. *)
        check_i "g80 cliff" 2 (o A.g80);
        check_b "wide32 above the cliff" true (o wide > 2));
    t "the simulator refuses a non-32-wide arch" (fun () ->
        let narrow = { A.g80 with A.limits = { A.g80.A.limits with warp_size = 16 } } in
        let k =
          {
            Kir.Ast.kname = "store1";
            scalar_params = [];
            array_params = [ { Kir.Ast.aname = "O"; aspace = Kir.Ast.Global } ];
            shared_decls = [];
            local_decls = [];
            body = [ Kir.Ast.Store ("O", Kir.Ast.tid_x, Kir.Ast.f 1.0) ];
          }
        in
        let ptx = Ptx.Opt.run (Kir.Lower.lower k) in
        let dev = Gpu.Device.create () in
        let b = Gpu.Device.alloc dev 32 in
        let launch =
          { Gpu.Sim.kernel = ptx; grid = (1, 1); block = (32, 1); args = [ ("O", Gpu.Sim.Buf b) ] }
        in
        check_b "raises Launch_error" true
          (match Gpu.Sim.run ~arch:narrow dev launch with
          | (_ : Gpu.Sim.stats) -> false
          | exception Gpu.Sim.Launch_error _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Cross-arch sweeps: determinism, disagreement, served = direct       *)
(* ------------------------------------------------------------------ *)

let quick_matmul arch =
  (Option.get (Apps.Registry.find "matmul")).Apps.Registry.quick_candidates ~arch ()

let rows (r : Tuner.Search.result) =
  List.map (fun (m : Tuner.Search.measured) -> (m.cand.desc, m.time_s)) r.exhaustive

let sweep_tests =
  [
    t "cross-arch sweep is bit-identical at jobs 1 and 4" (fun () ->
        let run jobs =
          Tuner.Search.run_archs ~jobs ~app_name:"matmul" ~archs:A.archs quick_matmul
        in
        let a = run 1 and b = run 4 in
        check_i "same arch count" (List.length a) (List.length b);
        List.iter2
          (fun (ra : Tuner.Search.arch_result) (rb : Tuner.Search.arch_result) ->
            check_s "arch order" ra.ar_arch.A.name rb.ar_arch.A.name;
            let xa = rows ra.ar_result and xb = rows rb.ar_result in
            check_i (ra.ar_arch.A.name ^ " row count") (List.length xa) (List.length xb);
            List.iter2
              (fun (d1, t1) (d2, t2) ->
                check_s "desc" d1 d2;
                if not (feq t1 t2) then Alcotest.failf "%s: %h vs %h" d1 t1 t2)
              xa xb;
            check_s "winner"
              ra.ar_result.Tuner.Search.selected_best.cand.desc
              rb.ar_result.Tuner.Search.selected_best.cand.desc)
          a b);
    t "at least one pair of arches disagrees on the winner" (fun () ->
        let rs = Tuner.Search.run_archs ~jobs:2 ~app_name:"matmul" ~archs:A.archs quick_matmul in
        let winners =
          List.map
            (fun (r : Tuner.Search.arch_result) ->
              r.ar_result.Tuner.Search.selected_best.cand.desc)
            rs
        in
        check_b "winners not all equal" true
          (List.length (List.sort_uniq compare winners) > 1));
    t "a low-resource arch invalidates configurations a big one accepts" (fun () ->
        let fpga = Option.get (A.find "fpga_soft") in
        let valid arch =
          List.length
            (List.filter (fun (c : Tuner.Candidate.t) -> c.valid) (quick_matmul arch))
        in
        check_b "fpga_soft loses configs" true (valid fpga < valid A.g80));
    t "run_archs rejects a candidate list built for the wrong arch" (fun () ->
        check_b "invalid_arg" true
          (match
             Tuner.Search.run_archs ~jobs:1 ~app_name:"matmul" ~archs:A.archs (fun _ ->
                 quick_matmul A.g80)
           with
          | (_ : Tuner.Search.arch_result list) -> false
          | exception Invalid_argument _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Service: per-arch requests                                          *)
(* ------------------------------------------------------------------ *)

let with_server (f : S.t -> 'a) : 'a =
  let file = Filename.temp_file "gpuopt-arch-test-" ".store" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let store = Tuner.Store.open_ ~file () in
      Fun.protect
        ~finally:(fun () -> Tuner.Store.close store)
        (fun () -> f (S.create ~jobs:2 ~store (Apps.Serving.resolver ()))))

let serve_tests =
  [
    t "served cross-arch explore equals the direct sweep, per arch" (fun () ->
        with_server (fun server ->
            List.iter
              (fun (arch : A.t) ->
                let direct =
                  Tuner.Search.run ~jobs:2 ~app_name:"matmul" (quick_matmul arch)
                in
                let x =
                  match
                    S.handle server
                      (P.Explore
                         {
                           app = "matmul";
                           scale = P.Quick;
                           chaos = None;
                           arch = Some arch.A.name;
                           predict = false;
                           deadline_ms = None;
                         })
                  with
                  | P.Explore_r x -> x
                  | _ -> Alcotest.failf "%s: no Explore_r" arch.A.name
                in
                check_s "reply echoes the arch" arch.A.name x.P.x_arch;
                check_i (arch.A.name ^ " space") direct.space_size x.P.x_space_size;
                check_s (arch.A.name ^ " winner") direct.selected_best.cand.desc
                  x.P.x_selected_best.P.m_desc;
                if not (feq direct.selected_best.time_s x.P.x_selected_best.P.m_time_s) then
                  Alcotest.failf "%s: served winner time differs" arch.A.name;
                List.iter2
                  (fun (d, tm) (r : P.measured_row) ->
                    check_s "row desc" d r.P.m_desc;
                    if not (feq tm r.P.m_time_s) then
                      Alcotest.failf "%s/%s: %h vs %h" arch.A.name d tm r.P.m_time_s)
                  (List.map
                     (fun (m : Tuner.Search.measured) -> (m.cand.desc, m.time_s))
                     direct.exhaustive)
                  x.P.x_exhaustive)
              A.archs));
    t "an omitted arch means g80; an unknown arch is a Bad_request" (fun () ->
        with_server (fun server ->
            (match
               S.handle server
                 (P.Tune { app = "matmul"; scale = P.Quick; arch = None; deadline_ms = None })
             with
            | P.Tune_r t -> check_s "default arch" "g80" t.P.t_arch
            | _ -> Alcotest.fail "no Tune_r");
            match
              S.handle server
                (P.Tune { app = "matmul"; scale = P.Quick; arch = Some "vliw99"; deadline_ms = None })
            with
            | P.Error_r { e_code = P.Bad_request; e_msg } ->
              let contains hay needle =
                let nh = String.length hay and nn = String.length needle in
                let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
                go 0
              in
              check_b "message names the registry" true (contains e_msg "g80")
            | _ -> Alcotest.fail "unknown arch was not rejected"));
    t "distinct arches never collide in the store" (fun () ->
        (* Same app, same scale, same candidate descs — the store keys
           must still differ because the arch digest differs. *)
        let wide = Option.get (A.find "wide32") in
        let key arch =
          let cands = quick_matmul arch in
          let descs =
            List.filter_map
              (fun (c : Tuner.Candidate.t) -> if c.valid then Some c.desc else None)
              cands
          in
          let space = Tuner.Store.space_digest ~app_name:"matmul" ~scale:"quick" descs in
          Tuner.Store.candidate_key
            ~arch:(Tuner.Store.arch_digest ~arch ())
            ~space (List.hd cands)
        in
        check_b "keys differ" false (String.equal (key A.g80) (key wide)));
  ]

let suite =
  [
    ("arch registry", registry_tests);
    ("arch digests", digest_tests);
    ("arch occupancy", occupancy_tests);
    ("arch sweeps", sweep_tests);
    ("arch serve", serve_tests);
  ]
