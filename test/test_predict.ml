(* Tests for the static predictor ([Tuner.Predict]) and the
   model-driven race ([Tuner.Prune]).

   The empirical cross-shape fidelity claim — racing at the
   [Workbench.Reduced] shape finds the bench-scale optimum — is pinned
   by the bench `prune` exhibit, which sweeps the real spaces.  Here
   the races are *self-reduced* (the reduced space is the target space
   itself), which turns recovery into an exact invariant the machinery
   must meet: probe seeding, the ridge fit, survivor selection and the
   budget math all sit on the path, and any regression that drops the
   true optimum from the survivor set fails loudly. *)

module P = Tuner.Predict
module R = Tuner.Prune

let t name f = Alcotest.test_case name `Quick f
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Predict: ridge regression                                           *)
(* ------------------------------------------------------------------ *)

(* Synthetic linear data over the real feature dimension: y = w.x + b
   with deterministic pseudo-random features.  Ridge with a small
   lambda must recover the relation well enough to rank by it. *)
let synth_rows ~seed n : (float array * float) list =
  let rng = Util.Rng.create seed in
  let w = Array.init P.dim (fun j -> if j < 6 then 0.5 -. (0.17 *. float_of_int j) else 0.0) in
  List.init n (fun _ ->
      let x = Array.init P.dim (fun _ -> Util.Rng.float rng) in
      let y = Array.fold_left ( +. ) 0.3 (Array.mapi (fun j v -> w.(j) *. v) x) in
      (x, y))

let predict_tests =
  [
    t "ridge fit recovers a linear relation" (fun () ->
        let rows = synth_rows ~seed:11 64 in
        let m = P.fit ~lambda:1e-6 rows in
        let holdout = synth_rows ~seed:12 16 in
        List.iter
          (fun (x, y) ->
            let p = P.predict m x in
            if Float.abs (p -. y) > 1e-3 then
              Alcotest.failf "prediction %g too far from %g" p y)
          holdout);
    t "fit is deterministic (same rows, same digest)" (fun () ->
        let rows = synth_rows ~seed:21 32 in
        check_s "digest" (P.digest (P.fit rows)) (P.digest (P.fit rows)));
    t "serialization round-trips through to_lines/of_lines" (fun () ->
        let m = P.fit (synth_rows ~seed:31 32) in
        match P.of_lines (P.to_lines m) with
        | None -> Alcotest.fail "of_lines rejected its own to_lines"
        | Some m' ->
          check_s "digest" (P.digest m) (P.digest m');
          let x = Array.init P.dim (fun j -> 0.01 *. float_of_int j) in
          Alcotest.(check (float 0.0)) "prediction" (P.predict m x) (P.predict m' x));
    t "weight table covers every feature" (fun () ->
        let m = P.fit (synth_rows ~seed:41 32) in
        check_i "entries" P.dim (List.length (P.weight_table m));
        List.iter
          (fun (name, w) ->
            if not (Float.is_finite w) then Alcotest.failf "weight %s not finite" name)
          (P.weight_table m));
    t "of_candidate yields a finite feature vector" (fun () ->
        let e = Option.get (Apps.Registry.find "matmul") in
        List.iter
          (fun (c : Tuner.Candidate.t) ->
            let x = P.of_candidate c in
            check_i "dim" P.dim (Array.length x);
            Array.iteri
              (fun j v ->
                if not (Float.is_finite v) then
                  Alcotest.failf "%s: feature %d not finite" c.desc j)
              x)
          (List.filteri (fun i _ -> i < 8) (e.quick_candidates ())));
  ]

(* ------------------------------------------------------------------ *)
(* Prune: self-reduced races on the smoke spaces                       *)
(* ------------------------------------------------------------------ *)

let entry name = Option.get (Apps.Registry.find name)

(* Smoke spaces and a shared full-scale engine per app: the engine's
   cache makes repeated exhaustive sweeps free, without changing any
   measured value. *)
let space =
  let tbl = Hashtbl.create 8 in
  fun name ->
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
      let cands =
        List.filter (fun (c : Tuner.Candidate.t) -> c.valid) ((entry name).quick_candidates ())
      in
      let engine = Tuner.Measure.create ~app_name:name () in
      Hashtbl.replace tbl name (cands, engine);
      (cands, engine)

let exhaustive_best ~jobs name (cands : Tuner.Candidate.t list) : Tuner.Measure.measured =
  let _, engine = space name in
  let ok =
    List.filter_map
      (fun ((c : Tuner.Candidate.t), o) ->
        match o with Ok t -> Some { Tuner.Measure.cand = c; time_s = t } | Error _ -> None)
      (Tuner.Measure.measure_outcomes ~jobs engine cands)
  in
  Option.get (Util.Stats.argmin (fun (m : Tuner.Measure.measured) -> m.time_s) ok)

let self_race ?(jobs = 2) name (cands : Tuner.Candidate.t list) : R.outcome =
  let _, engine = space name in
  R.run ~jobs ~engine ~app_name:name (R.spec ~reduced:cands ()) cands

let outcome_key (o : R.outcome) =
  ( P.digest o.R.pr_model,
    o.R.pr_winner.Tuner.Measure.cand.desc,
    o.R.pr_winner.Tuner.Measure.time_s,
    o.R.pr_simulated,
    o.R.pr_probes,
    o.R.pr_survivors,
    o.R.pr_ranked )

let prune_tests =
  [
    t "self-reduced race finds the exhaustive optimum (matmul, cp)" (fun () ->
        List.iter
          (fun name ->
            let cands, _ = space name in
            let best = exhaustive_best ~jobs:2 name cands in
            let o = self_race name cands in
            check_b (name ^ " recovered") true (R.recovered o ~best);
            if o.R.pr_simulated > o.R.pr_total then
              Alcotest.failf "%s: simulated %d > space %d" name o.R.pr_simulated o.R.pr_total)
          [ "matmul"; "cp" ]);
    t "race stays within its full-simulation budget" (fun () ->
        let cands, _ = space "matmul" in
        let o = self_race "matmul" cands in
        check_i "simulated = probes + survivors"
          (List.length o.R.pr_probes + List.length o.R.pr_survivors)
          o.R.pr_simulated;
        if o.R.pr_simulated > o.R.pr_budget then
          Alcotest.failf "simulated %d over budget %d" o.R.pr_simulated o.R.pr_budget);
    t "jobs 1 vs 4: outcome bit-identical" (fun () ->
        let cands, _ = space "matmul" in
        let a = self_race ~jobs:1 "matmul" cands in
        let b = self_race ~jobs:4 "matmul" cands in
        check_b "outcome key" true (outcome_key a = outcome_key b));
    t "per-arch recovery (g80, wide32, fpga_soft)" (fun () ->
        List.iter
          (fun (arch : Gpu.Arch.t) ->
            let cands =
              List.filter
                (fun (c : Tuner.Candidate.t) -> c.valid)
                ((entry "matmul").quick_candidates ~arch ())
            in
            let engine = Tuner.Measure.create ~app_name:("matmul-" ^ arch.Gpu.Arch.name) () in
            let ok =
              List.filter_map
                (fun ((c : Tuner.Candidate.t), o) ->
                  match o with
                  | Ok t -> Some { Tuner.Measure.cand = c; time_s = t }
                  | Error _ -> None)
                (Tuner.Measure.measure_outcomes ~jobs:2 engine cands)
            in
            let best =
              Option.get (Util.Stats.argmin (fun (m : Tuner.Measure.measured) -> m.time_s) ok)
            in
            let o =
              R.run ~jobs:2 ~engine
                ~app_name:("matmul-" ^ arch.Gpu.Arch.name)
                (R.spec ~reduced:cands ()) cands
            in
            check_b (arch.Gpu.Arch.name ^ " recovered") true (R.recovered o ~best))
          Gpu.Arch.archs);
  ]

(* Random subspaces: prune over a seeded random slice of each app's
   smoke space must never return a worse time than sweeping that same
   slice exhaustively. *)
let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:6 ~name:"pruned subspace never worse than exhaustive (all apps)"
        QCheck.(pair (int_bound 1_000_000) (int_range 6 18))
        (fun (seed, k) ->
          List.for_all
            (fun name ->
              let cands, _ = space name in
              let sub = R.sample ~seed k cands in
              let best = exhaustive_best ~jobs:2 name sub in
              let o = self_race name sub in
              o.R.pr_winner.Tuner.Measure.time_s <= best.Tuner.Measure.time_s +. 1e-15)
            [ "matmul"; "cp"; "sad"; "mri" ]);
    ]

(* ------------------------------------------------------------------ *)
(* Superoptimized spaces and cancellation plumbing                     *)
(* ------------------------------------------------------------------ *)

(* One discovery run shared by both apps: the rule database is a pure
   function of the arch, not of the space it is applied to. *)
let superopt_rules =
  lazy (Tuner.Superopt.discover ~jobs:2 ~max_len:1 ~sweep:64 ()).Tuner.Superopt.rules

let result_key (r : Tuner.Search.result) =
  ( r.Tuner.Search.best.Tuner.Measure.cand.desc,
    r.Tuner.Search.best.Tuner.Measure.time_s,
    List.map
      (fun (m : Tuner.Measure.measured) -> (m.Tuner.Measure.cand.desc, m.Tuner.Measure.time_s))
      r.Tuner.Search.exhaustive,
    Option.map outcome_key r.Tuner.Search.prune )

let hardened_tests =
  [
    t "superoptimized spaces: race under a 10% budget recovers the optimum (matmul, cp)"
      (fun () ->
        (* The deadline/cancellation rework sits under [Search.run]; this
           pins that a budgeted model race over spaces rewritten by the
           verified peephole pass still lands on the exhaustive optimum. *)
        let rules = Lazy.force superopt_rules in
        List.iter
          (fun name ->
            let cands =
              List.filter
                (fun (c : Tuner.Candidate.t) -> c.valid)
                ((entry name).quick_candidates
                   ~extra_ptx:[ Tuner.Pipeline.peephole rules ]
                   ())
            in
            let r =
              Tuner.Search.run ~jobs:2
                ~predict:(R.spec ~rules ~reduced:cands ())
                ~budget_frac:0.10 ~app_name:name cands
            in
            let o = Option.get r.Tuner.Search.prune in
            check_b (name ^ ": optimum recovered under rules + 10% budget") true
              (R.recovered o ~best:r.Tuner.Search.best))
          [ "matmul"; "cp" ]);
    t "a never-tripping cancel token is invisible (jobs 1 vs 4 bit-identical)" (fun () ->
        let run jobs cancel =
          let cands, _ = space "matmul" in
          Tuner.Search.run ~jobs ?cancel
            ~predict:(R.spec ~reduced:cands ())
            ~app_name:"matmul" cands
        in
        let with_token = run 1 (Some (Tuner.Cancel.create ())) in
        let without = run 4 None in
        check_b "identical results with and without a token, any jobs" true
          (result_key with_token = result_key without));
  ]

let suite = [ ("tuner.predict", predict_tests @ prune_tests @ qcheck_tests @ hardened_tests) ]
