(* Golden-equivalence suite for the compiled simulator core.

   The simulator's decode/schedule/memory paths were rebuilt for
   throughput; the timing model and statistics must be bit-identical.
   Two defenses:

   - Golden digests: for four applications x (default + one non-default
     config) x (functional + timing), every headline statistic and an
     md5 of the full per-site counter rendering were captured from the
     pre-refactor interpreter core at the [Workbench.Smoke] shapes.
     Each row is checked under both the ready-heap scheduler and the
     reference linear-scan scheduler.  (GPUOPT_GOLDEN_CAPTURE reprints
     the table after a deliberate shape change, see below.)

   - Differential property: random race-free KIR kernels must produce
     bit-identical output buffers under [Kir.Interp] and under lowering
     + PTX optimization + [Gpu.Sim] in functional mode. *)

open Kir.Ast

let t name f = Alcotest.test_case name `Quick f
let check_i = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Golden digests                                                      *)
(* ------------------------------------------------------------------ *)

(* Renders every observable statistic, including the per-site memory
   counters.  The digest table below was captured from this exact
   format; do not change it without re-capturing. *)
let render_stats (s : Gpu.Sim.stats) : string =
  let b = Buffer.create 256 in
  Printf.bprintf b "cycles=%.17g warp_instrs=%d tx=%d bytes=%d conflict=%d blocks=%d/%d occ=%d"
    s.cycles s.warp_instrs s.gmem_transactions s.gmem_bytes s.bank_conflict_extra
    s.blocks_simulated s.total_blocks s.occupancy.blocks_per_sm;
  List.iter
    (fun (sc : Gpu.Sim.site_counter) ->
      Printf.bprintf b "; %s[%d]%s e=%d tx=%d by=%d rp=%d" sc.sc_label sc.sc_index
        (match sc.sc_space with
        | Ptx.Instr.Global -> "G"
        | Ptx.Instr.Shared -> "S"
        | Ptx.Instr.Const -> "C"
        | Ptx.Instr.Local -> "L")
        sc.sc_execs sc.sc_tx sc.sc_bytes sc.sc_replays)
    s.site_counters;
  Buffer.contents b

(* (app, config ("" = default), mode, cycles, warp_instrs,
    gmem_transactions, gmem_bytes, bank_conflict_extra,
    blocks_simulated, md5 of [render_stats]). *)
let golden : (string * string * string * float * int * int * int * int * int * string) list =
  [
    ("matmul", "", "functional", 0., 115072, 69632, 4456448, 0, 64, "1d5171063097d53f7fdc661a7b97b9e1");
    ("matmul", "", "timing", 67826., 7192, 4352, 278528, 0, 4, "0079f22954a88882a004d5bf5a8a249a");
    ("matmul", "16x16/1x4/uC/pf/sp", "functional", 0., 39456, 9856, 630784, 0, 4, "9d4da5a59f0950d29e3ad77a9aa669a4");
    ("matmul", "16x16/1x4/uC/pf/sp", "timing", 49876., 9864, 2464, 157696, 0, 1, "3ad654f8d7f83f4df208ddcf16877bf4");
    ("cp", "", "functional", 0., 38912, 256, 16384, 0, 128, "bb6d9b1d688749ea33fb8da1674dab10");
    ("cp", "", "timing", 11324., 2432, 16, 1024, 0, 8, "6d0b1f11d8b5709a064ee99d34eb0c58");
    ("cp", "b16x16/t8/unco", "functional", 0., 12592, 4096, 262144, 0, 2, "25a394240dc391f22a62a7a9272171cf");
    ("cp", "b16x16/t8/unco", "timing", 37472., 6296, 2048, 131072, 0, 1, "7fa55f09f60361a7c1c4b5b6c21f996d");
    ("sad", "", "functional", 0., 11840, 2592, 165888, 1536, 32, "829fd9502c1e7fa5fdb8002a87373245");
    ("sad", "", "timing", 8646., 740, 162, 10368, 64, 2, "0160f3e7e4beabf605c6cf1202acc67b");
    ("sad", "tpb384/t4/uv2/uy1/ux1", "functional", 0., 46016, 3072, 196608, 6144, 32, "4671d5a4d68df51a8920dce31120a0b5");
    ("sad", "tpb384/t4/uv2/uy1/ux1", "timing", 45688., 2876, 192, 12288, 256, 2, "468d389ace1fd10966458cff5e851c83");
    ("mri", "", "functional", 0., 23209, 1050, 67200, 0, 53, "ef7f73af6dd842c4cd41eef22f9c55f0");
    ("mri", "", "timing", 8922., 1768, 80, 5120, 0, 4, "665fc46bc2b1dcf70a10c1b3401f0380");
    ("mri", "tpb256/u16/w7", "functional", 0., 22489, 1050, 67200, 0, 2, "07ffd7d20048b493319d5e64493be718");
    ("mri", "tpb256/u16/w7", "timing", 59154., 11992, 560, 35840, 0, 1, "2dcb4e574b006cfdba15f52e25360720");
  ]

(* Goldens run at the [Workbench.Smoke] shapes — the pre-refactor
   lint shapes the table was originally captured at, and cheap enough
   that functional mode (all blocks) stays fast.  Lint itself now runs
   at the [Workbench.Reduced] race shapes; the @check alias's
   `lint --crossval` covers that path. *)
let stats_of ~scheduler app config mode_name : Gpu.Sim.stats =
  let wb_of =
    match app with
    | "matmul" -> Apps.Workbench.smoke_matmul
    | "cp" -> Apps.Workbench.smoke_cp
    | "sad" -> Apps.Workbench.smoke_sad
    | "mri" -> Apps.Workbench.smoke_mri
    | _ -> failwith ("no smoke workbench for " ^ app)
  in
  let config_opt = match config with "" -> None | d -> Some d in
  match wb_of ?config:config_opt () with
  | Error msg -> failwith (app ^ " " ^ config ^ ": " ^ msg)
  | Ok wb ->
    let launch =
      {
        Gpu.Sim.kernel = wb.Apps.Workbench.wb_compiled.Tuner.Pipeline.ptx;
        grid = wb.wb_grid;
        block = wb.wb_block;
        args = wb.wb_args;
      }
    in
    let mode =
      match mode_name with
      | "functional" -> Gpu.Sim.Functional
      | _ -> Gpu.Sim.Timing { max_blocks = Gpu.Sim.default_max_blocks }
    in
    Gpu.Sim.run ~scheduler ~mode wb.wb_dev launch

(* With GPUOPT_GOLDEN_CAPTURE set, each heap-scheduler case prints its
   row in the table format above instead of asserting — the supported
   way to re-capture after a deliberate workbench-shape change. *)
let capture = Sys.getenv_opt "GPUOPT_GOLDEN_CAPTURE" <> None

let golden_tests =
  List.concat_map
    (fun (app, config, mode, cycles, wi, tx, bytes, conflict, blocks, md5) ->
      List.map
        (fun (sched_name, scheduler) ->
          let cfg = if config = "" then "default" else config in
          t (Printf.sprintf "golden %s/%s %s (%s)" app cfg mode sched_name) (fun () ->
              let s = stats_of ~scheduler app config mode in
              if capture then (
                if sched_name = "heap" then
                  Printf.printf "    (%S, %S, %S, %.17g, %d, %d, %d, %d, %d, %S);\n%!" app
                    config mode s.Gpu.Sim.cycles s.warp_instrs s.gmem_transactions
                    s.gmem_bytes s.bank_conflict_extra s.blocks_simulated
                    (Digest.to_hex (Digest.string (render_stats s))))
              else (
                Alcotest.(check (float 0.0)) "cycles" cycles s.Gpu.Sim.cycles;
                check_i "warp_instrs" wi s.warp_instrs;
                check_i "gmem_transactions" tx s.gmem_transactions;
                check_i "gmem_bytes" bytes s.gmem_bytes;
                check_i "bank_conflict_extra" conflict s.bank_conflict_extra;
                check_i "blocks_simulated" blocks s.blocks_simulated;
                Alcotest.(check string) "digest" md5
                  (Digest.to_hex (Digest.string (render_stats s))))))
        [ ("heap", Gpu.Sim.Heap); ("scan", Gpu.Sim.Scan) ])
    golden

(* ------------------------------------------------------------------ *)
(* Random-kernel differential property                                 *)
(* ------------------------------------------------------------------ *)

(* Random race-free kernels: every thread writes only O[gid], so the
   output is deterministic regardless of warp interleaving.  Value
   expressions stay in F32 and are kept finite: division, sqrt, rsqrt
   and rcp are guarded so arithmetic results are reproducible across
   expression shapes.  NaN comparison semantics no longer need the
   guard: the simulator's float Setp historically used [Float.compare]
   (a total order sorting NaN below everything) while [Kir.Interp] used
   IEEE comparisons where NaN compares false — that divergence is fixed
   (the sim's [ftest] is IEEE now) and pinned by the dedicated NaN
   regression below.  Index expressions are structural so every access
   is in bounds. *)

let words = 256

let rec gen_f rng depth : expr =
  if depth = 0 then gen_leaf rng
  else
    match Util.Rng.int rng 10 with
    | 0 -> Bin (Add, gen_f rng (depth - 1), gen_f rng (depth - 1))
    | 1 -> Bin (Sub, gen_f rng (depth - 1), gen_f rng (depth - 1))
    | 2 -> Bin (Mul, gen_f rng (depth - 1), gen_f rng (depth - 1))
    | 3 ->
      (* Guarded: |denominator| >= 1/2, so the quotient stays finite. *)
      Bin (Div, gen_f rng (depth - 1), Bin (Max, Un (Abs, gen_f rng (depth - 1)), f 0.5))
    | 4 -> Bin (Min, gen_f rng (depth - 1), gen_f rng (depth - 1))
    | 5 -> Bin (Max, gen_f rng (depth - 1), gen_f rng (depth - 1))
    | 6 -> (
      let a = gen_f rng (depth - 1) in
      match Util.Rng.int rng 7 with
      | 0 -> Un (Neg, a)
      | 1 -> Un (Abs, a)
      | 2 -> Un (Sqrt, Un (Abs, a))
      | 3 -> Un (Rsqrt, Bin (Max, Un (Abs, a), f 0.5))
      | 4 -> Un (Rcp, Bin (Max, Un (Abs, a), f 0.5))
      | 5 -> Un (Sin, a)
      | _ -> Un (Cos, a))
    | 7 ->
      Select
        ( Bin (Lt, gen_f rng (depth - 1), gen_f rng (depth - 1)),
          gen_f rng (depth - 1),
          gen_f rng (depth - 1) )
    | _ -> gen_leaf rng

and gen_leaf rng : expr =
  match Util.Rng.int rng 6 with
  | 0 -> v "x0"
  | 1 -> v "y"
  | 2 -> Param "alpha"
  | 3 -> f (Util.Float32.round (Util.Rng.float_range rng (-4.0) 4.0))
  | 4 -> Un (ToF, tid_x)
  | _ -> Un (ToF, v "g")

let gen_kernel rng : kernel =
  let use_shared = Util.Rng.int rng 2 = 0 in
  let use_loop = Util.Rng.int rng 2 = 0 in
  let diverge = Util.Rng.int rng 2 = 0 in
  let y_def =
    if use_shared then
      [
        Store ("sh", tid_x, v "x0");
        Sync;
        Let ("y", F32, Ld ("sh", (tid_x +: i 1) %: i 32));
      ]
    else [ Let ("y", F32, v "x0" *: f 2.0) ]
  in
  let acc =
    if use_loop then
      [
        Mut ("acc", F32, gen_f rng 2);
        for_ "j" (i 0) (i (2 + Util.Rng.int rng 3))
          [ Assign ("acc", v "acc" +: (gen_f rng 2 *: Un (ToF, v "j"))) ];
        Let ("r", F32, v "acc");
      ]
    else [ Let ("r", F32, gen_f rng 3) ]
  in
  let store =
    if diverge then
      [
        If
          ( Bin (Rem, v "g", i 2) =: i 0,
            [ Store ("O", v "g", v "r") ],
            [ Store ("O", v "g", v "r" +: f 1.0) ] );
      ]
    else [ Store ("O", v "g", v "r") ]
  in
  {
    kname = "rand";
    scalar_params = [ ("alpha", F32); ("n", S32) ];
    array_params = [ { aname = "O"; aspace = Global }; { aname = "A"; aspace = Global } ];
    shared_decls = (if use_shared then [ ("sh", 32) ] else []);
    local_decls = [];
    body =
      [
        Let ("g", S32, (bid_x *: bdim_x) +: tid_x);
        (* Guard on the scalar parameter so Param-in-predicate paths
           are exercised; n always covers every launched thread. *)
        If
          ( v "g" <: Param "n",
            [ Let ("x0", F32, Ld ("A", v "g")) ] @ y_def @ acc @ store,
            [] );
      ];
  }

let sim_matches_interp (k : kernel) ~(input : float array) ~(alpha : float) : bool =
  let run use_interp =
    let d = Gpu.Device.create () in
    let out = Gpu.Device.alloc d words in
    let a = Gpu.Device.alloc d words in
    Gpu.Device.to_device d a input;
    let args =
      [
        ("O", Gpu.Sim.Buf out);
        ("A", Gpu.Sim.Buf a);
        ("alpha", Gpu.Sim.F alpha);
        ("n", Gpu.Sim.I words);
      ]
    in
    let grid = (2, 1) and block = (32, 1) in
    if use_interp then Kir.Interp.run d k ~grid ~block ~args
    else begin
      let ptx = Ptx.Opt.run (Kir.Lower.lower k) in
      ignore (Gpu.Sim.run ~mode:Gpu.Sim.Functional d { Gpu.Sim.kernel = ptx; grid; block; args })
    end;
    Gpu.Device.of_device d out
  in
  Array.for_all2 (fun x y -> Util.Float32.equal_bits x y) (run true) (run false)

(* ------------------------------------------------------------------ *)
(* NaN setp regression                                                 *)
(* ------------------------------------------------------------------ *)

(* The caveat formerly documented above, promoted to a test: float
   comparisons against NaN must follow IEEE unordered semantics (every
   comparison false except ne) in BOTH execution engines, bit for bit.
   Each thread compares its element against another (the lane-0 pair is
   NaN vs a normal) under all six operators, plus Min/Max, which are
   NaN-discarding on both sides. *)
let nan_setp_kernel : kernel =
  let cmps = [ Eq; Ne; Lt; Le; Gt; Ge ] in
  let out idx value = Store ("O", (v "g" *: i 8) +: i idx, value) in
  let store_cmp idx op = out idx (Select (Bin (op, v "x0", v "y"), f 1.0, f 0.0)) in
  {
    kname = "nan_setp";
    scalar_params = [ ("n", S32) ];
    array_params = [ { aname = "O"; aspace = Global }; { aname = "A"; aspace = Global } ];
    shared_decls = [];
    local_decls = [];
    body =
      [
        Let ("g", S32, (bid_x *: bdim_x) +: tid_x);
        If
          ( v "g" <: Param "n",
            [
              Let ("x0", F32, Ld ("A", v "g"));
              Let ("y", F32, Ld ("A", Bin (Rem, v "g" +: i 7, Param "n")));
            ]
            @ List.mapi store_cmp cmps
            @ [ out 6 (Bin (Min, v "x0", v "y")); out 7 (Bin (Max, v "x0", v "y")) ],
            [] );
      ];
  }

let nan_setp_tests =
  [
    t "float setp on NaN: sim is IEEE and matches Kir.Interp (regression)" (fun () ->
        let k = nan_setp_kernel in
        Kir.Typecheck.check k;
        let n = 32 in
        let input =
          Array.init n (fun idx ->
              match idx mod 8 with
              | 0 -> Float.nan
              | 1 -> Float.infinity
              | 2 -> Float.neg_infinity
              | 3 -> 0.0
              | 4 -> -0.0
              | 5 -> 1.5
              | 6 -> -2.25
              | _ -> Util.Float32.round 3.7)
        in
        let run use_interp =
          let d = Gpu.Device.create () in
          let out = Gpu.Device.alloc d (n * 8) in
          let a = Gpu.Device.alloc d n in
          Gpu.Device.to_device d a input;
          let args = [ ("O", Gpu.Sim.Buf out); ("A", Gpu.Sim.Buf a); ("n", Gpu.Sim.I n) ] in
          let grid = (1, 1) and block = (n, 1) in
          if use_interp then Kir.Interp.run d k ~grid ~block ~args
          else begin
            let ptx = Ptx.Opt.run (Kir.Lower.lower k) in
            ignore
              (Gpu.Sim.run ~mode:Gpu.Sim.Functional d { Gpu.Sim.kernel = ptx; grid; block; args })
          end;
          Gpu.Device.of_device d out
        in
        let interp = run true and sim = run false in
        (* Lane 0 is NaN vs 3.7: IEEE truth, spelled out. *)
        let expected0 = [| 0.; 1.; 0.; 0.; 0.; 0.; Util.Float32.round 3.7; Util.Float32.round 3.7 |] in
        Array.iteri
          (fun idx x ->
            Alcotest.(check (float 0.0))
              (Printf.sprintf "IEEE truth for NaN lane, O[%d]" idx)
              x sim.(idx))
          expected0;
        Array.iteri
          (fun idx x ->
            if not (Util.Float32.equal_bits x sim.(idx)) then
              Alcotest.failf "engines disagree at O[%d]: interp %h, sim %h" idx x sim.(idx))
          interp);
  ]

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"sim functional output matches Kir.Interp on random kernels (qcheck)"
         ~count:60
         QCheck.(int_range 0 100_000)
         (fun seed ->
           let rng = Util.Rng.create seed in
           let k = gen_kernel rng in
           Kir.Typecheck.check k;
           let input =
             Array.init words (fun _ -> Util.Float32.round (Util.Rng.float_range rng (-2.0) 2.0))
           in
           let alpha = Util.Float32.round (Util.Rng.float_range rng (-2.0) 2.0) in
           sim_matches_interp k ~input ~alpha));
  ]

let suite = [ ("sim-golden", golden_tests @ nan_setp_tests @ qcheck_tests) ]
