(* Tests for the fault-tolerance layer: exception classification, the
   simulator watchdog, fault-aware measurement with checkpoint/resume,
   graceful degradation in the search driver, and the chaos harness's
   end-to-end properties on the matmul space. *)

let t name f = Alcotest.test_case name `Quick f
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

exception Boom of int

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let classify_tests =
  let tag e = Tuner.Fault.tag (Tuner.Fault.classify ~backtrace:"" e) in
  [
    t "pass failure classifies as a verifier rejection" (fun () ->
        match
          Tuner.Fault.classify ~backtrace:""
            (Tuner.Pipeline.Pass_failed { stage = "unroll"; reason = "bad" })
        with
        | Tuner.Fault.Verify_rejected { stage; reason } ->
          check_b "stage" true (stage = "unroll" && reason = "bad")
        | _ -> Alcotest.fail "wrong constructor");
    t "compiler exceptions name their stage" (fun () ->
        check_b "typecheck" true (tag (Kir.Typecheck.Type_error "x") = "compile");
        check_b "lower" true (tag (Kir.Lower.Lower_error "x") = "compile");
        check_b "mutate" true (tag (Kir.Mutate.Mutate_error "x") = "compile"));
    t "simulator exceptions map to launch/trap/watchdog" (fun () ->
        check_b "launch" true (tag (Gpu.Sim.Launch_error "too big") = "launch");
        check_b "trap" true (tag (Failure "deadlock") = "trap");
        check_b "watchdog" true (tag (Gpu.Sim.Watchdog { issued = 11; budget = 10 }) = "watchdog"));
    t "unknown exceptions become worker crashes with the backtrace" (fun () ->
        match Tuner.Fault.classify ~backtrace:"frame1\nframe2" (Boom 3) with
        | Tuner.Fault.Worker_crash { exn_name; backtrace } ->
          check_b "name mentions the exception" true
            (String.length exn_name > 0 && backtrace = "frame1\nframe2")
        | _ -> Alcotest.fail "wrong constructor");
    t "run_candidate surfaces the thunk's fault" (fun () ->
        let c =
          Tuner.Candidate.make ~desc:"x" ~params:[]
            ~kernel:
              (Ptx.Prog.make ~name:"d" ~params:[] ~smem_words:0 ~lmem_words:0
                 [ Ptx.Prog.block "a" [] Ptx.Prog.Ret ])
            ~threads_per_block:64 ~threads_total:64
            ~run:(fun () -> raise (Gpu.Sim.Watchdog { issued = 5; budget = 4 }))
            ()
        in
        match Tuner.Fault.run_candidate c with
        | Error (Tuner.Fault.Watchdog_exceeded { issued = 5; budget = 4 }) -> ()
        | _ -> Alcotest.fail "expected a watchdog fault");
  ]

(* ------------------------------------------------------------------ *)
(* Journal encoding                                                    *)
(* ------------------------------------------------------------------ *)

let journal_tests =
  let roundtrips (f : Tuner.Fault.t) (expect : Tuner.Fault.t) =
    match Tuner.Fault.of_journal (Tuner.Fault.to_journal f) with
    | Some g -> g = expect
    | None -> false
  in
  [
    t "every constructor round-trips" (fun () ->
        let cases =
          Tuner.Fault.
            [
              Compile_error { stage = "lower"; reason = "no loop" };
              Verify_rejected { stage = "cse#2"; reason = "unbound %r3" };
              Launch_error { reason = "grid too large" };
              Sim_trap { reason = "out-of-bounds load" };
              Watchdog_exceeded { issued = 100001; budget = 100000 };
            ]
        in
        List.iter (fun f -> check_b (Tuner.Fault.tag f) true (roundtrips f f)) cases);
    t "worker crash round-trips minus the backtrace" (fun () ->
        let f = Tuner.Fault.Worker_crash { exn_name = "Boom(3)"; backtrace = "stale frames" } in
        check_b "backtrace dropped" true
          (roundtrips f (Tuner.Fault.Worker_crash { exn_name = "Boom(3)"; backtrace = "" })));
    t "garbage decodes to None, not an exception" (fun () ->
        List.iter
          (fun s -> check_b s true (Tuner.Fault.of_journal s = None))
          [ ""; "nonsense"; "watchdog x y"; "compile \"unterminated"; "ok \"a\" 1.0" ]);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"reason strings round-trip through %S (qcheck)" ~count:300
         QCheck.(pair printable_string printable_string)
         (fun (stage, reason) ->
           let f = Tuner.Fault.Verify_rejected { stage; reason } in
           Tuner.Fault.of_journal (Tuner.Fault.to_journal f) = Some f));
  ]

(* ------------------------------------------------------------------ *)
(* Watchdog                                                            *)
(* ------------------------------------------------------------------ *)

let run_tiny ?budget () =
  let c = Tuner.Pipeline.lower_opt Tuner.Chaos.tiny_kernel in
  let dev = Gpu.Device.create ~global_words:4 () in
  let out = Gpu.Device.alloc dev 1 in
  let launch =
    { Gpu.Sim.kernel = c.ptx; grid = (1, 1); block = (32, 1); args = [ ("out", Gpu.Sim.Buf out) ] }
  in
  Gpu.Sim.run ~mode:(Gpu.Sim.Timing { max_blocks = 1 }) ?budget dev launch

let watchdog_tests =
  [
    t "a runaway kernel is cut off with issued > budget" (fun () ->
        match Tuner.Chaos.runaway_time () with
        | (_ : float) -> Alcotest.fail "runaway terminated?"
        | exception Gpu.Sim.Watchdog { issued; budget } ->
          check_b "tripped just past the budget" true (issued > budget && budget = 100_000));
    t "the default budget catches runaways too" (fun () ->
        (* Shrink the per-warp cap so the default-budget path trips
           quickly; restore it for the rest of the suite. *)
        let saved = Gpu.Sim.watchdog_per_warp () in
        Fun.protect
          ~finally:(fun () -> Gpu.Sim.set_watchdog_per_warp saved)
          (fun () ->
            Gpu.Sim.set_watchdog_per_warp 10_000;
            let stretched =
              Kir.Mutate.runaway_loop ~iters:1_000_000_000 Tuner.Chaos.tiny_kernel
            in
            let c = Tuner.Pipeline.lower_opt stretched in
            let dev = Gpu.Device.create ~global_words:4 () in
            let out = Gpu.Device.alloc dev 1 in
            let launch =
              {
                Gpu.Sim.kernel = c.ptx;
                grid = (1, 1);
                block = (32, 1);
                args = [ ("out", Gpu.Sim.Buf out) ];
              }
            in
            match Gpu.Sim.run ~mode:(Gpu.Sim.Timing { max_blocks = 1 }) dev launch with
            | (_ : Gpu.Sim.stats) -> Alcotest.fail "runaway terminated?"
            | exception Gpu.Sim.Watchdog { budget; _ } ->
              (* one warp, one block accounted: budget = per-warp cap *)
              check_i "derived budget" 10_000 budget));
    t "a terminating kernel is bit-identical with and without a budget" (fun () ->
        let s1 = run_tiny () in
        let s2 = run_tiny ~budget:max_int () in
        check_b "same stats" true (s1 = s2));
    t "budget must be positive" (fun () ->
        match run_tiny ~budget:0 () with
        | (_ : Gpu.Sim.stats) -> Alcotest.fail "accepted budget 0"
        | exception Gpu.Sim.Launch_error _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Fault-aware measurement + checkpoint/resume                         *)
(* ------------------------------------------------------------------ *)

let dummy_kernel =
  Ptx.Prog.make ~name:"dummy" ~params:[] ~smem_words:0 ~lmem_words:0
    [ Ptx.Prog.block "a" [] Ptx.Prog.Ret ]

let fake ~desc ~instr ~regions ~time : Tuner.Candidate.t =
  let base =
    Tuner.Candidate.make ~desc ~params:[] ~kernel:dummy_kernel ~threads_per_block:64
      ~threads_total:6400 ~run:(fun () -> time) ()
  in
  { base with profile = { base.profile with instr; regions } }

let fake_space n =
  List.init n (fun k ->
      fake
        ~desc:(Printf.sprintf "c%d" k)
        ~instr:(100.0 +. float_of_int (k * 37 mod 200))
        ~regions:(10.0 +. float_of_int (k * 17 mod 50))
        ~time:(1.0 +. float_of_int k))

let with_tmp f =
  let file = Filename.temp_file "gpuopt-test-" ".journal" in
  Fun.protect ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ()) (fun () -> f file)

let measure_tests =
  [
    t "a faulting candidate is measured-as-failed exactly once" (fun () ->
        let attempts = Atomic.make 0 in
        let bad =
          let c = fake ~desc:"bad" ~instr:100.0 ~regions:10.0 ~time:1.0 in
          { c with run = (fun () -> Atomic.incr attempts; failwith "trap") }
        in
        let engine = Tuner.Measure.create ~app_name:"synthetic" () in
        let o1 = Tuner.Measure.measure_outcomes ~jobs:1 engine [ bad ] in
        let o2 = Tuner.Measure.measure_outcomes ~jobs:1 engine [ bad ] in
        check_i "one simulator attempt" 1 (Atomic.get attempts);
        let is_trap = function
          | [ (_, Error (Tuner.Fault.Sim_trap { reason = "trap" })) ] -> true
          | _ -> false
        in
        check_b "both calls see the cached fault" true (is_trap o1 && is_trap o2));
    t "measure_all raises Fail on the first fault in input order" (fun () ->
        let bad d =
          let c = fake ~desc:d ~instr:100.0 ~regions:10.0 ~time:1.0 in
          { c with run = (fun () -> failwith d) }
        in
        let engine = Tuner.Measure.create ~app_name:"synthetic" () in
        match
          Tuner.Measure.measure_all ~jobs:1 engine
            [ fake ~desc:"ok" ~instr:1.0 ~regions:1.0 ~time:1.0; bad "b1"; bad "b2" ]
        with
        | (_ : Tuner.Search.measured list) -> Alcotest.fail "expected Fail"
        | exception Tuner.Fault.Fail { desc; fault } ->
          check_b "first in input order" true
            (desc = "b1" && Tuner.Fault.tag fault = "trap"));
    t "time_exn on a faulted candidate names app, config and fault" (fun () ->
        let bad =
          let c = fake ~desc:"bad" ~instr:100.0 ~regions:10.0 ~time:1.0 in
          { c with run = (fun () -> failwith "sim exploded") }
        in
        let engine = Tuner.Measure.create ~app_name:"myapp" () in
        ignore (Tuner.Measure.measure_outcomes ~jobs:1 engine [ bad ]);
        match Tuner.Measure.time_exn engine bad with
        | (_ : float) -> Alcotest.fail "expected a raise"
        | exception Invalid_argument msg ->
          let has needle =
            let nl = String.length needle and ml = String.length msg in
            let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
            go 0
          in
          check_b "names everything" true
            (has "myapp" && has "bad" && has "sim exploded"));
    t "checkpoint journals, interrupts on budget and resumes exactly" (fun () ->
        with_tmp (fun file ->
            let cands = fake_space 12 in
            let key = Tuner.Search.space_key ~app_name:"synthetic" cands in
            (* Uninterrupted reference. *)
            let ref_engine = Tuner.Measure.create ~app_name:"synthetic" () in
            let reference = Tuner.Measure.measure_outcomes ~jobs:1 ref_engine cands in
            (* Interrupted run: budget of 5 journaled outcomes. *)
            let e1 = Tuner.Measure.create ~app_name:"synthetic" () in
            check_i "fresh journal loads nothing" 0
              (Tuner.Measure.checkpoint ~stop_after:5 e1 ~file ~key);
            (match Tuner.Measure.measure_outcomes ~jobs:1 e1 cands with
            | (_ : (Tuner.Candidate.t * (float, Tuner.Fault.t) result) list) ->
              Alcotest.fail "expected Interrupted"
            | exception Tuner.Measure.Interrupted { journaled; _ } ->
              check_i "journal holds the budget" 5 journaled);
            Tuner.Measure.close_journal e1;
            (* Resume: loads 5, measures the remaining 7. *)
            let e2 = Tuner.Measure.create ~app_name:"synthetic" () in
            check_i "resume loads the journal" 5 (Tuner.Measure.checkpoint e2 ~file ~key);
            let resumed = Tuner.Measure.measure_outcomes ~jobs:1 e2 cands in
            Tuner.Measure.close_journal e2;
            check_i "only the unfinished work ran" 7 (Tuner.Measure.runs e2);
            check_b "merged result equals the uninterrupted run" true
              (List.map2
                 (fun ((a : Tuner.Candidate.t), oa) ((b : Tuner.Candidate.t), ob) ->
                   a.desc = b.desc && oa = ob)
                 reference resumed
              |> List.for_all Fun.id)));
    t "journals reject a different app or space, loudly" (fun () ->
        with_tmp (fun file ->
            let cands = fake_space 4 in
            let key = Tuner.Search.space_key ~app_name:"appA" cands in
            let e1 = Tuner.Measure.create ~app_name:"appA" () in
            ignore (Tuner.Measure.checkpoint e1 ~file ~key);
            ignore (Tuner.Measure.measure_outcomes ~jobs:1 e1 cands);
            Tuner.Measure.close_journal e1;
            let rejects ~app_name ~key =
              let e = Tuner.Measure.create ~app_name () in
              match Tuner.Measure.checkpoint e ~file ~key with
              | (_ : int) -> false
              | exception Failure _ -> true
            in
            check_b "wrong app" true (rejects ~app_name:"appB" ~key);
            check_b "wrong space key" true
              (rejects ~app_name:"appA"
                 ~key:(Tuner.Search.space_key ~app_name:"appA" (fake_space 5)))));
    t "corrupt journal entries fail the load" (fun () ->
        with_tmp (fun file ->
            let cands = fake_space 3 in
            let key = Tuner.Search.space_key ~app_name:"appA" cands in
            let e1 = Tuner.Measure.create ~app_name:"appA" () in
            ignore (Tuner.Measure.checkpoint e1 ~file ~key);
            ignore (Tuner.Measure.measure_outcomes ~jobs:1 e1 cands);
            Tuner.Measure.close_journal e1;
            let oc = open_out_gen [ Open_append ] 0o644 file in
            output_string oc "ok not-a-quoted-desc zzz\n";
            close_out oc;
            let e2 = Tuner.Measure.create ~app_name:"appA" () in
            match Tuner.Measure.checkpoint e2 ~file ~key with
            | (_ : int) -> Alcotest.fail "loaded a corrupt journal"
            | exception Failure msg ->
              check_b "message names the file" true
                (String.length msg > 0
                && String.length file > 0
                &&
                let rec go i =
                  i + String.length file <= String.length msg
                  && (String.sub msg i (String.length file) = file || go (i + 1))
                in
                go 0)));
  ]

(* ------------------------------------------------------------------ *)
(* Graceful degradation in Search                                      *)
(* ------------------------------------------------------------------ *)

let search_tests =
  [
    t "fault-free runs report an empty fault list" (fun () ->
        let r = Tuner.Search.run ~jobs:1 ~app_name:"synthetic" (fake_space 8) in
        check_i "no faults" 0 (List.length r.faults));
    t "faulted candidates are excluded from every statistic" (fun () ->
        let cands =
          fake_space 8
          |> List.mapi (fun k (c : Tuner.Candidate.t) ->
                 if k = 0 then { c with run = (fun () -> failwith "dead") } else c)
        in
        (* c0 has time 1.0 — the optimum — and it faults. *)
        let r = Tuner.Search.run ~jobs:1 ~app_name:"synthetic" cands in
        check_i "one fault" 1 (List.length r.faults);
        check_b "fault names the victim" true
          ((fst (List.hd r.faults)).desc = "c0");
        check_b "best skips the faulted optimum" true (r.best.cand.desc <> "c0");
        check_b "exhaustive excludes it" true
          (List.for_all (fun (m : Tuner.Search.measured) -> m.cand.desc <> "c0") r.exhaustive);
        check_b "selection excludes it" true
          (List.for_all (fun ((c : Tuner.Candidate.t), _) -> c.desc <> "c0") r.selected));
    t "fail_fast restores the abort semantics" (fun () ->
        let cands =
          fake_space 4
          |> List.mapi (fun k (c : Tuner.Candidate.t) ->
                 if k = 2 then { c with run = (fun () -> failwith "dead") } else c)
        in
        match Tuner.Search.run ~jobs:1 ~fail_fast:true ~app_name:"synthetic" cands with
        | (_ : Tuner.Search.result) -> Alcotest.fail "expected Fail"
        | exception Tuner.Fault.Fail { desc; _ } -> check_b "victim" true (desc = "c2"));
    t "an all-faulted space is an error, not a crash" (fun () ->
        let cands =
          fake_space 3
          |> List.map (fun (c : Tuner.Candidate.t) ->
                 { c with run = (fun () -> failwith "dead") })
        in
        match Tuner.Search.run ~jobs:1 ~app_name:"synthetic" cands with
        | (_ : Tuner.Search.result) -> Alcotest.fail "expected invalid_arg"
        | exception Invalid_argument _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Chaos properties on the real matmul space                           *)
(* ------------------------------------------------------------------ *)

(* Built once: compiling and measuring the 96-point quick space per
   QCheck iteration would dominate the suite's runtime. *)
let matmul_quick = lazy (Apps.Registry.(Option.get (find "matmul")).quick_candidates ())

let baseline = lazy (Tuner.Search.run ~app_name:"matmul" (Lazy.force matmul_quick))

let chaos_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"chaos: faults list exactly the injected set (qcheck)" ~count:4
         QCheck.(int_range 0 100000)
         (fun seed ->
           let cands = Lazy.force matmul_quick in
           let injected, injections = Tuner.Chaos.inject ~seed ~count:7 cands in
           let r = Tuner.Search.run ~app_name:"matmul" injected in
           List.sort compare (List.map (fun ((c : Tuner.Candidate.t), _) -> c.desc) r.faults)
           = List.sort compare
               (List.map (fun (i : Tuner.Chaos.injection) -> i.inj_desc) injections)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"chaos: selected_best survives faults that miss the frontier (qcheck)" ~count:4
         QCheck.(int_range 0 100000)
         (fun seed ->
           let cands = Lazy.force matmul_quick in
           let b = Lazy.force baseline in
           let avoid = List.map (fun ((c : Tuner.Candidate.t), _) -> c.desc) b.selected in
           let injected, _ = Tuner.Chaos.inject ~seed ~count:7 ~avoid cands in
           let r = Tuner.Search.run ~app_name:"matmul" injected in
           r.selected_best.cand.desc = b.selected_best.cand.desc
           && r.selected_best.time_s = b.selected_best.time_s
           && List.map (fun ((c : Tuner.Candidate.t), _) -> c.desc) r.selected
              = List.map (fun ((c : Tuner.Candidate.t), _) -> c.desc) b.selected));
  ]

let suite =
  [
    ("tuner.fault.classify", classify_tests);
    ("tuner.fault.journal", journal_tests);
    ("tuner.fault.watchdog", watchdog_tests);
    ("tuner.fault.measure", measure_tests);
    ("tuner.fault.search", search_tests);
    ("tuner.fault.chaos", chaos_tests);
  ]
