(* Unit tests for the domain pool that backs parallel measurement.

   The tuner's determinism guarantee rests on [Pool.map] behaving as an
   order-preserving, exception-faithful [List.map]; these tests lock
   that contract down independently of the tuner. *)

let t name f = Alcotest.test_case name `Quick f
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

exception Boom of int

let pool_tests =
  [
    t "map preserves input order" (fun () ->
        let xs = List.init 100 Fun.id in
        Alcotest.(check (list int))
          "squares in order"
          (List.map (fun x -> x * x) xs)
          (Util.Pool.map ~jobs:4 (fun x -> x * x) xs));
    t "jobs:1 is exactly List.map" (fun () ->
        (* Sequential fallback: side effects happen in list order on
           the calling domain, with no worker spawned. *)
        let trace = ref [] in
        let here = Domain.self () in
        let r =
          Util.Pool.map ~jobs:1
            (fun x ->
              trace := x :: !trace;
              check_b "runs on the calling domain" true (Domain.self () = here);
              x + 1)
            [ 1; 2; 3; 4 ]
        in
        Alcotest.(check (list int)) "result" [ 2; 3; 4; 5 ] r;
        Alcotest.(check (list int)) "evaluation order" [ 4; 3; 2; 1 ] !trace);
    t "exception propagates to the caller" (fun () ->
        Alcotest.check_raises "raises Boom" (Boom 7) (fun () ->
            ignore (Util.Pool.map ~jobs:4 (fun x -> if x = 7 then raise (Boom x) else x)
                      (List.init 20 Fun.id))));
    t "first exception in input order wins" (fun () ->
        Alcotest.check_raises "raises the earliest" (Boom 3) (fun () ->
            ignore
              (Util.Pool.map ~jobs:4
                 (fun x -> if x >= 3 then raise (Boom x) else x)
                 (List.init 10 Fun.id))));
    t "empty list" (fun () ->
        check_i "no elements" 0 (List.length (Util.Pool.map ~jobs:4 Fun.id []));
        check_i "jobs:1 empty" 0 (List.length (Util.Pool.map ~jobs:1 Fun.id [])));
    t "jobs greater than list length" (fun () ->
        Alcotest.(check (list int))
          "three elements, eight jobs" [ 2; 4; 6 ]
          (Util.Pool.map ~jobs:8 (fun x -> 2 * x) [ 1; 2; 3 ]));
    t "singleton list avoids domain spawn" (fun () ->
        let here = Domain.self () in
        let r =
          Util.Pool.map ~jobs:4
            (fun x ->
              check_b "on calling domain" true (Domain.self () = here);
              x * 10)
            [ 5 ]
        in
        Alcotest.(check (list int)) "result" [ 50 ] r);
    t "stress: 1000 small tasks across 4 domains" (fun () ->
        let xs = List.init 1000 Fun.id in
        let r = Util.Pool.map ~jobs:4 (fun x -> (x * 37) mod 1009) xs in
        Alcotest.(check (list int)) "matches List.map" (List.map (fun x -> (x * 37) mod 1009) xs) r;
        (* Tasks actually spread across domains: the pool reports its
           worker count, and results stay ordered regardless. *)
        check_i "pool size honors jobs" 4
          (let p = Util.Pool.create ~jobs:4 in
           let n = Util.Pool.size p in
           Util.Pool.shutdown p;
           n));
    t "pool rejects submit after shutdown" (fun () ->
        let p = Util.Pool.create ~jobs:2 in
        Util.Pool.shutdown p;
        Alcotest.check_raises "invalid" (Invalid_argument "Pool.submit: pool is shut down")
          (fun () -> Util.Pool.submit p (fun () -> ())));
    t "default_jobs respects GPUOPT_JOBS and stays >= 1" (fun () ->
        (* Can't mutate the environment portably from here; just pin the
           invariant that holds either way. *)
        check_b "positive" true (Util.Pool.default_jobs () >= 1));
  ]

(* The crash-isolated map the fault-tolerant measurement engine builds
   on: one raising thunk costs its own slot, never its neighbors'. *)
let map_result_tests =
  [
    t "one crashing item, everyone else completes" (fun () ->
        let r =
          Util.Pool.map_result ~jobs:4
            (fun x -> if x = 5 then raise (Boom x) else x * 2)
            (List.init 10 Fun.id)
        in
        check_i "all items resolved" 10 (List.length r);
        List.iteri
          (fun i o ->
            match o with
            | Ok v -> check_i "survivor value" (i * 2) v
            | Error (Boom n, _) ->
              check_i "crash is item 5" 5 i;
              check_i "payload" 5 n
            | Error (e, _) -> raise e)
          r);
    t "all-crash input yields all Errors, in order" (fun () ->
        let r = Util.Pool.map_result ~jobs:3 (fun x -> raise (Boom x)) [ 0; 1; 2; 3 ] in
        List.iteri
          (fun i o ->
            match o with
            | Error (Boom n, bt) ->
              check_i "order preserved" i n;
              (* The backtrace slot is a string either way; content
                 depends on whether recording is on. *)
              check_b "backtrace is a string" true (String.length bt >= 0)
            | _ -> Alcotest.fail "expected Error")
          r);
    t "jobs:1 map_result isolates without domains" (fun () ->
        let here = Domain.self () in
        let r =
          Util.Pool.map_result ~jobs:1
            (fun x ->
              check_b "on calling domain" true (Domain.self () = here);
              if x = 1 then failwith "mid" else x)
            [ 0; 1; 2 ]
        in
        match r with
        | [ Ok 0; Error (Failure m, _); Ok 2 ] when m = "mid" -> ()
        | _ -> Alcotest.fail "unexpected shape");
    t "map over map_result: fault-free results unwrap" (fun () ->
        Alcotest.(check (list int))
          "same as List.map" [ 0; 2; 4; 6 ]
          (Util.Pool.map_result ~jobs:2 (fun x -> 2 * x) [ 0; 1; 2; 3 ]
          |> List.map (function Ok v -> v | Error (e, _) -> raise e)));
  ]

(* Shutdown-path coverage: the pool must come down cleanly whatever the
   queue and workers were doing. *)
let shutdown_tests =
  [
    t "shutdown with workers idle on an empty queue" (fun () ->
        let p = Util.Pool.create ~jobs:3 in
        (* Workers are parked in Condition.wait; the broadcast must wake
           and end all three, and shutdown joins them. *)
        Util.Pool.shutdown p;
        check_b "returned" true true);
    t "shutdown drains queued tasks first" (fun () ->
        let p = Util.Pool.create ~jobs:2 in
        let done_count = Atomic.make 0 in
        for _ = 1 to 50 do
          Util.Pool.submit p (fun () -> Atomic.incr done_count)
        done;
        Util.Pool.shutdown p;
        check_i "all queued tasks ran" 50 (Atomic.get done_count));
    t "a raising task does not kill its worker" (fun () ->
        let p = Util.Pool.create ~jobs:1 in
        let done_count = Atomic.make 0 in
        (* With one worker, the raising task and its successors run on
           the same domain: if the exception killed it, the later tasks
           would never run and shutdown would hang on a dead join. *)
        Util.Pool.submit p (fun () -> raise (Boom 1));
        for _ = 1 to 10 do
          Util.Pool.submit p (fun () -> Atomic.incr done_count)
        done;
        Util.Pool.shutdown p;
        check_i "worker survived the raise" 10 (Atomic.get done_count));
    t "shutdown is idempotent" (fun () ->
        let p = Util.Pool.create ~jobs:2 in
        Util.Pool.shutdown p;
        Util.Pool.shutdown p;
        check_b "second shutdown is a no-op" true true);
  ]

let suite =
  [
    ("util.pool", pool_tests);
    ("util.pool.map_result", map_result_tests);
    ("util.pool.shutdown", shutdown_tests);
  ]
