(* Unit tests for the domain pool that backs parallel measurement.

   The tuner's determinism guarantee rests on [Pool.map] behaving as an
   order-preserving, exception-faithful [List.map]; these tests lock
   that contract down independently of the tuner. *)

let t name f = Alcotest.test_case name `Quick f
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

exception Boom of int

let pool_tests =
  [
    t "map preserves input order" (fun () ->
        let xs = List.init 100 Fun.id in
        Alcotest.(check (list int))
          "squares in order"
          (List.map (fun x -> x * x) xs)
          (Util.Pool.map ~jobs:4 (fun x -> x * x) xs));
    t "jobs:1 is exactly List.map" (fun () ->
        (* Sequential fallback: side effects happen in list order on
           the calling domain, with no worker spawned. *)
        let trace = ref [] in
        let here = Domain.self () in
        let r =
          Util.Pool.map ~jobs:1
            (fun x ->
              trace := x :: !trace;
              check_b "runs on the calling domain" true (Domain.self () = here);
              x + 1)
            [ 1; 2; 3; 4 ]
        in
        Alcotest.(check (list int)) "result" [ 2; 3; 4; 5 ] r;
        Alcotest.(check (list int)) "evaluation order" [ 4; 3; 2; 1 ] !trace);
    t "exception propagates to the caller" (fun () ->
        Alcotest.check_raises "raises Boom" (Boom 7) (fun () ->
            ignore (Util.Pool.map ~jobs:4 (fun x -> if x = 7 then raise (Boom x) else x)
                      (List.init 20 Fun.id))));
    t "first exception in input order wins" (fun () ->
        Alcotest.check_raises "raises the earliest" (Boom 3) (fun () ->
            ignore
              (Util.Pool.map ~jobs:4
                 (fun x -> if x >= 3 then raise (Boom x) else x)
                 (List.init 10 Fun.id))));
    t "empty list" (fun () ->
        check_i "no elements" 0 (List.length (Util.Pool.map ~jobs:4 Fun.id []));
        check_i "jobs:1 empty" 0 (List.length (Util.Pool.map ~jobs:1 Fun.id [])));
    t "jobs greater than list length" (fun () ->
        Alcotest.(check (list int))
          "three elements, eight jobs" [ 2; 4; 6 ]
          (Util.Pool.map ~jobs:8 (fun x -> 2 * x) [ 1; 2; 3 ]));
    t "singleton list avoids domain spawn" (fun () ->
        let here = Domain.self () in
        let r =
          Util.Pool.map ~jobs:4
            (fun x ->
              check_b "on calling domain" true (Domain.self () = here);
              x * 10)
            [ 5 ]
        in
        Alcotest.(check (list int)) "result" [ 50 ] r);
    t "stress: 1000 small tasks across 4 domains" (fun () ->
        let xs = List.init 1000 Fun.id in
        let r = Util.Pool.map ~jobs:4 (fun x -> (x * 37) mod 1009) xs in
        Alcotest.(check (list int)) "matches List.map" (List.map (fun x -> (x * 37) mod 1009) xs) r;
        (* Tasks actually spread across domains: the pool reports its
           worker count, and results stay ordered regardless. *)
        check_i "pool size honors jobs" 4
          (let p = Util.Pool.create ~jobs:4 in
           let n = Util.Pool.size p in
           Util.Pool.shutdown p;
           n));
    t "pool rejects submit after shutdown" (fun () ->
        let p = Util.Pool.create ~jobs:2 in
        Util.Pool.shutdown p;
        Alcotest.check_raises "invalid" (Invalid_argument "Pool.submit: pool is shut down")
          (fun () -> Util.Pool.submit p (fun () -> ())));
    t "default_jobs respects GPUOPT_JOBS and stays >= 1" (fun () ->
        (* Can't mutate the environment portably from here; just pin the
           invariant that holds either way. *)
        check_b "positive" true (Util.Pool.default_jobs () >= 1));
  ]

let suite = [ ("util.pool", pool_tests) ]
