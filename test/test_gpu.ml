(* Tests for the GPU substrate: machine model and occupancy, device
   memory, coalescing and bank-conflict analysis, SIMT execution
   (divergence, barriers, early exit), and first-order timing
   behaviour. *)

open Gpu
module I = Ptx.Instr

let t name f = Alcotest.test_case name `Quick f
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Arch / occupancy                                                    *)
(* ------------------------------------------------------------------ *)

let arch_tests =
  [
    t "paper worked example: 10 regs -> 3 blocks, 11 regs -> 2" (fun () ->
        let o k = (Arch.occupancy ~threads_per_block:256 ~regs_per_thread:k ~smem_per_block:4096 ()).blocks_per_sm in
        check_i "10 regs" 3 (o 10);
        check_i "11 regs" 2 (o 11));
    t "thread limit caps blocks" (fun () ->
        let o = Arch.occupancy ~threads_per_block:512 ~regs_per_thread:1 ~smem_per_block:0 () in
        check_i "1 block by threads" 1 o.blocks_per_sm);
    t "shared-memory limit caps blocks" (fun () ->
        let o = Arch.occupancy ~threads_per_block:64 ~regs_per_thread:1 ~smem_per_block:6000 () in
        check_i "2 blocks by smem" 2 o.blocks_per_sm);
    t "max eight blocks per SM" (fun () ->
        let o = Arch.occupancy ~threads_per_block:32 ~regs_per_thread:1 ~smem_per_block:0 () in
        check_i "8 blocks" 8 o.blocks_per_sm);
    t "too many registers -> invalid executable" (fun () ->
        let o = Arch.occupancy ~threads_per_block:256 ~regs_per_thread:33 ~smem_per_block:0 () in
        check_i "0 blocks" 0 o.blocks_per_sm;
        check_b "invalid" false (Arch.is_valid o));
    t "oversized block -> invalid" (fun () ->
        let o = Arch.occupancy ~threads_per_block:513 ~regs_per_thread:1 ~smem_per_block:0 () in
        check_b "invalid" false (Arch.is_valid o));
    t "warps per block round up" (fun () ->
        let o = Arch.occupancy ~threads_per_block:33 ~regs_per_thread:1 ~smem_per_block:0 () in
        check_i "2 warps" 2 o.warps_per_block);
    t "peak arithmetic matches the paper (388.8 GFLOPS)" (fun () ->
        check_b "peak" true (Float.abs (Arch.peak_gflops Arch.g80 -. 388.8) < 0.01));
    t "per-SM bandwidth is 4 bytes per cycle" (fun () ->
        check_b "bw" true (Float.abs (Arch.bytes_per_cycle_per_sm Arch.g80 -. 4.0) < 0.01));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"occupancy is antitone in register usage (qcheck)" ~count:300
         QCheck.(pair (int_range 1 40) (int_range 1 40))
         (fun (r1, r2) ->
           let o r =
             (Arch.occupancy ~threads_per_block:128 ~regs_per_thread:r ~smem_per_block:1024 ())
               .blocks_per_sm
           in
           if r1 > r2 then o r1 <= o r2 else true));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"occupancy never violates any limit (qcheck)" ~count:300
         QCheck.(triple (int_range 1 512) (int_range 0 64) (int_range 0 20000))
         (fun (tpb, regs, smem) ->
           let o = Arch.occupancy ~threads_per_block:tpb ~regs_per_thread:regs ~smem_per_block:smem () in
           let b = o.blocks_per_sm in
           b <= 8
           && b * tpb <= 768
           && b * regs * tpb <= 8192
           && (smem = 0 || b * smem <= 16384)));
  ]

(* ------------------------------------------------------------------ *)
(* Device memory                                                       *)
(* ------------------------------------------------------------------ *)

let device_tests =
  [
    t "alloc / copy roundtrip" (fun () ->
        let d = Device.create () in
        let b = Device.alloc d 16 in
        let src = Array.init 16 float_of_int in
        Device.to_device d b src;
        check_b "roundtrip" true (Device.of_device d b = src));
    t "buffers do not alias" (fun () ->
        let d = Device.create () in
        let a = Device.alloc d 8 and b = Device.alloc d 8 in
        Device.fill d a 1.0;
        Device.fill d b 2.0;
        check_b "a intact" true (Array.for_all (( = ) 1.0) (Device.of_device d a));
        check_b "b intact" true (Array.for_all (( = ) 2.0) (Device.of_device d b)));
    t "global memory grows on demand" (fun () ->
        let d = Device.create ~global_words:4 () in
        let b = Device.alloc d 100000 in
        Device.set d b 99999 42.0;
        check_b "grown" true (Device.get d b 99999 = 42.0));
    t "word access is bounds-checked" (fun () ->
        let d = Device.create () in
        let b = Device.alloc d 4 in
        check_b "raises" true
          (try
             ignore (Device.get d b 4);
             false
           with Invalid_argument _ -> true));
    t "constant bank enforces the 64KB architectural limit" (fun () ->
        let d = Device.create () in
        ignore (Device.alloc_const d 16000);
        check_b "raises" true
          (try
             ignore (Device.alloc_const d 1000);
             false
           with Failure _ -> true));
    t "byte-addressed raw access matches word access" (fun () ->
        let d = Device.create () in
        let b = Device.alloc d 4 in
        Device.set d b 2 7.5;
        check_b "read_global" true (Device.read_global d (b.base + 8) = 7.5));
  ]

(* ------------------------------------------------------------------ *)
(* Coalescing and bank conflicts (unit level)                          *)
(* ------------------------------------------------------------------ *)

let full = 0xFFFFFFFF

let coalesce_tests =
  [
    t "contiguous aligned half-warp -> one 64B transaction" (fun () ->
        let addrs = Array.init 32 (fun l -> l * 4) in
        check_b "half 0" true (Sim.coalesce addrs full 0 = (1, 64));
        check_b "half 1" true (Sim.coalesce addrs full 1 = (1, 64)));
    t "misaligned base breaks coalescing" (fun () ->
        let addrs = Array.init 32 (fun l -> 4 + (l * 4)) in
        check_b "uncoalesced" true (fst (Sim.coalesce addrs full 0) = 16));
    t "strided access breaks coalescing" (fun () ->
        let addrs = Array.init 32 (fun l -> l * 8) in
        check_b "uncoalesced" true (fst (Sim.coalesce addrs full 0) = 16));
    t "inactive lanes leave holes but keep the pattern coalesced" (fun () ->
        let addrs = Array.init 32 (fun l -> l * 4) in
        let mask = 0x0000FF0F in
        (* some lanes of half 0 inactive *)
        let tx, _ = Sim.coalesce addrs mask 0 in
        check_i "one tx" 1 tx);
    t "no active lanes -> no transaction" (fun () ->
        let addrs = Array.make 32 0 in
        check_b "zero" true (Sim.coalesce addrs 0 0 = (0, 0)));
    t "conflict-free shared access (consecutive words)" (fun () ->
        let addrs = Array.init 32 (fun l -> l * 4) in
        check_i "degree 1" 1 (Sim.bank_conflict_degree addrs full 0));
    t "same-address broadcast is conflict-free" (fun () ->
        let addrs = Array.make 32 256 in
        check_i "degree 1" 1 (Sim.bank_conflict_degree addrs full 0));
    t "stride-2 words give 2-way conflicts" (fun () ->
        let addrs = Array.init 32 (fun l -> l * 8) in
        check_i "degree 2" 2 (Sim.bank_conflict_degree addrs full 0));
    t "stride-16 words give 16-way conflicts" (fun () ->
        let addrs = Array.init 32 (fun l -> l * 64) in
        check_i "degree 16" 16 (Sim.bank_conflict_degree addrs full 0));
  ]

(* ------------------------------------------------------------------ *)
(* Execution: control flow, barriers, early exit                       *)
(* ------------------------------------------------------------------ *)

(* Helpers: compile a tiny KIR kernel and run it. *)
let run_kir ?(grid = (1, 1)) ?(block = (32, 1)) ~args k =
  let d = Device.create () in
  let ptx = Ptx.Opt.run (Kir.Lower.lower k) in
  let launch = { Sim.kernel = ptx; grid; block; args = args d } in
  ignore (Sim.run ~mode:Sim.Functional d launch);
  d

open Kir.Ast

let exec_tests =
  [
    t "divergent if assigns per-lane values" (fun () ->
        let k =
          {
            kname = "div";
            scalar_params = [];
            array_params = [ { aname = "O"; aspace = Global } ];
            shared_decls = [];
            local_decls = [];
            body =
              [
                If
                  ( Bin (Rem, tid_x, i 2) =: i 0,
                    [ Store ("O", tid_x, f 1.0) ],
                    [ Store ("O", tid_x, f 2.0) ] );
              ];
          }
        in
        let buf = ref None in
        let d =
          run_kir k ~args:(fun d ->
              let b = Device.alloc d 32 in
              buf := Some b;
              [ ("O", Sim.Buf b) ])
        in
        let out = Device.of_device d (Option.get !buf) in
        Array.iteri
          (fun l v -> check_b "lane" true (v = if l mod 2 = 0 then 1.0 else 2.0))
          out);
    t "divergent loop trip counts reconverge" (fun () ->
        (* each lane runs tid+1 iterations *)
        let k =
          {
            kname = "divloop";
            scalar_params = [];
            array_params = [ { aname = "O"; aspace = Global } ];
            shared_decls = [];
            local_decls = [];
            body =
              [
                Mut ("acc", S32, i 0);
                For
                  {
                    var = "j";
                    lo = i 0;
                    hi = tid_x +: i 1;
                    step = i 1;
                    trip = Some 16;
                    body = [ Assign ("acc", v "acc" +: i 1) ];
                  };
                Store ("O", tid_x, Un (ToF, v "acc"));
              ];
          }
        in
        let buf = ref None in
        let d =
          run_kir k ~args:(fun d ->
              let b = Device.alloc d 32 in
              buf := Some b;
              [ ("O", Sim.Buf b) ])
        in
        let out = Device.of_device d (Option.get !buf) in
        Array.iteri (fun l x -> check_b "trip" true (x = float_of_int (l + 1))) out);
    t "early return masks lanes out of later stores" (fun () ->
        let k =
          {
            kname = "ret";
            scalar_params = [];
            array_params = [ { aname = "O"; aspace = Global } ];
            shared_decls = [];
            local_decls = [];
            body =
              [
                If (tid_x >=: i 10, [ Return ], []);
                Store ("O", tid_x, f 5.0);
              ];
          }
        in
        let buf = ref None in
        let d =
          run_kir k ~args:(fun d ->
              let b = Device.alloc d 32 in
              buf := Some b;
              [ ("O", Sim.Buf b) ])
        in
        let out = Device.of_device d (Option.get !buf) in
        Array.iteri
          (fun l x -> check_b "masked" true (x = if l < 10 then 5.0 else 0.0))
          out);
    t "barrier orders shared-memory communication across warps" (fun () ->
        (* warp 1 reads what warp 0 wrote: only correct with a barrier *)
        let k =
          {
            kname = "barrier";
            scalar_params = [];
            array_params = [ { aname = "O"; aspace = Global } ];
            shared_decls = [ ("s", 64) ];
            local_decls = [];
            body =
              [
                Store ("s", tid_x, Un (ToF, tid_x) *: f 3.0);
                Sync;
                Store ("O", tid_x, Ld ("s", i 63 -: tid_x));
              ];
          }
        in
        let buf = ref None in
        let d =
          run_kir ~block:(64, 1) k ~args:(fun d ->
              let b = Device.alloc d 64 in
              buf := Some b;
              [ ("O", Sim.Buf b) ])
        in
        let out = Device.of_device d (Option.get !buf) in
        Array.iteri
          (fun l x -> check_b "cross-warp" true (x = float_of_int ((63 - l) * 3)))
          out);
    t "invalid launches are rejected" (fun () ->
        let d = Device.create () in
        let o = Device.alloc d 32 in
        let k =
          Kir.Lower.lower
            {
              kname = "nop";
              scalar_params = [];
              array_params = [ { aname = "O"; aspace = Global } ];
              shared_decls = [];
              local_decls = [];
              body = [ Store ("O", i 0, f 1.0) ];
            }
        in
        let bad block =
          try
            ignore
              (Sim.run d { Sim.kernel = k; grid = (1, 1); block; args = [ ("O", Sim.Buf o) ] });
            false
          with Sim.Launch_error _ -> true
        in
        check_b "too many threads" true (bad (1024, 1));
        check_b "empty block" true (bad (0, 1)));
    t "missing kernel argument is a launch error" (fun () ->
        let d = Device.create () in
        let k =
          Kir.Lower.lower
            {
              kname = "nop";
              scalar_params = [ ("n", S32) ];
              array_params = [];
              shared_decls = [];
              local_decls = [];
              body = [ Let ("x", S32, Param "n") ];
            }
        in
        check_b "raises" true
          (try
             ignore (Sim.run d { Sim.kernel = k; grid = (1, 1); block = (32, 1); args = [] });
             false
           with Sim.Launch_error _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Timing behaviour (first-order sanity)                               *)
(* ------------------------------------------------------------------ *)

(* A latency-bound kernel: a chain of dependent global loads. *)
let chase_kernel =
  {
    kname = "chase";
    scalar_params = [];
    array_params = [ { aname = "A"; aspace = Global }; { aname = "O"; aspace = Global } ];
    shared_decls = [];
    local_decls = [];
    body =
      [
        Mut ("acc", F32, f 0.0);
        for_ "t" (i 0) (i 16)
          [ Assign ("acc", v "acc" +: Ld ("A", (tid_x *: i 16) +: v "t")) ];
        Store ("O", tid_x, v "acc");
      ];
  }

let time_of ~grid ~block k =
  let d = Device.create () in
  let a = Device.alloc d 65536 and o = Device.alloc d 65536 in
  let ptx = Ptx.Opt.run (Kir.Lower.lower k) in
  let launch = { Sim.kernel = ptx; grid; block; args = [ ("A", Sim.Buf a); ("O", Sim.Buf o) ] } in
  (Sim.run ~mode:(Sim.Timing { max_blocks = 8 }) d launch).cycles

let timing_tests =
  [
    t "more resident warps hide latency (TLP)" (fun () ->
        (* One warp per SM vs eight: 8x the work should cost much less
           than 8x the cycles, because the extra warps hide the global
           latency that leaves a single warp stalled. *)
        let t_one_warp = time_of ~grid:(16, 1) ~block:(32, 1) chase_kernel in
        let t_eight_warps = time_of ~grid:(16, 1) ~block:(256, 1) chase_kernel in
        check_b "sublinear in work" true (t_eight_warps < 6.0 *. t_one_warp));
    t "uncoalesced access is slower than coalesced" (fun () ->
        let mk stride name =
          {
            kname = name;
            scalar_params = [];
            array_params = [ { aname = "A"; aspace = Global }; { aname = "O"; aspace = Global } ];
            shared_decls = [];
            local_decls = [];
            body =
              [
                Mut ("acc", F32, f 0.0);
                for_ "t" (i 0) (i 8)
                  [
                    Assign
                      ("acc", v "acc" +: Ld ("A", (tid_x *: i stride) +: (v "t" *: i 64)));
                  ];
                Store ("O", tid_x, v "acc");
              ];
          }
        in
        let t_co = time_of ~grid:(4, 1) ~block:(64, 1) (mk 1 "co") in
        let t_un = time_of ~grid:(4, 1) ~block:(64, 1) (mk 7 "unco") in
        check_b "coalesced wins" true (t_co < t_un));
    t "simulated cycles scale roughly linearly with grid size" (fun () ->
        let t1 = time_of ~grid:(32, 1) ~block:(64, 1) chase_kernel in
        let t2 = time_of ~grid:(64, 1) ~block:(64, 1) chase_kernel in
        let ratio = t2 /. t1 in
        check_b "~2x" true (ratio > 1.6 && ratio < 2.4));
    t "timing stats are well-formed" (fun () ->
        let d = Device.create () in
        let a = Device.alloc d 65536 and o = Device.alloc d 65536 in
        let ptx = Ptx.Opt.run (Kir.Lower.lower chase_kernel) in
        let s =
          Sim.run ~mode:(Sim.Timing { max_blocks = 4 }) d
            { Sim.kernel = ptx; grid = (64, 1); block = (64, 1); args = [ ("A", Sim.Buf a); ("O", Sim.Buf o) ] }
        in
        check_b "cycles > 0" true (s.cycles > 0.0);
        check_b "time consistent" true
          (Float.abs (s.time_s -. (s.cycles /. Arch.clock_hz Arch.g80)) < 1e-12);
        check_i "total blocks" 64 s.total_blocks;
        check_b "blocks simulated <= assigned" true (s.blocks_simulated <= 4);
        check_b "warp instrs > 0" true (s.warp_instrs > 0));
  ]

let suite =
  [
    ("gpu.arch", arch_tests);
    ("gpu.device", device_tests);
    ("gpu.coalesce", coalesce_tests);
    ("gpu.exec", exec_tests);
    ("gpu.timing", timing_tests);
  ]

(* ------------------------------------------------------------------ *)
(* More timing behaviour: bank conflicts, constant cache, SFU          *)
(* ------------------------------------------------------------------ *)

(* A kernel whose shared accesses stride by [stride] words. *)
let shared_stride_kernel stride =
  {
    kname = Printf.sprintf "sh%d" stride;
    scalar_params = [];
    array_params = [ { aname = "A"; aspace = Global }; { aname = "O"; aspace = Global } ];
    shared_decls = [ ("s", 4096) ];
    local_decls = [];
    body =
      [
        Store ("s", tid_x *: i stride, Un (ToF, tid_x));
        Sync;
        Mut ("acc", F32, f 0.0);
        for_ "t" (i 0) (i 64) [ Assign ("acc", v "acc" +: Ld ("s", tid_x *: i stride)) ];
        Store ("O", tid_x, v "acc");
      ];
  }

let const_kernel divergent =
  {
    kname = "cst";
    scalar_params = [];
    array_params =
      [ { aname = "T"; aspace = Const }; { aname = "A"; aspace = Global }; { aname = "O"; aspace = Global } ];
    shared_decls = [];
    local_decls = [];
    body =
      [
        Mut ("acc", F32, f 0.0);
        for_ "t" (i 0) (i 64)
          [
            Assign
              ("acc", v "acc" +: Ld ("T", if divergent then tid_x else v "t" %: i 16));
          ];
        Store ("O", tid_x, v "acc");
      ];
  }

let time_of2 ?(extra_const = false) ~grid ~block k =
  let d = Device.create () in
  let cbuf = Device.alloc_const d 64 in
  let a = Device.alloc d 65536 and o = Device.alloc d 65536 in
  let ptx = Ptx.Opt.run (Kir.Lower.lower k) in
  let args =
    [ ("A", Sim.Buf a); ("O", Sim.Buf o) ]
    @ if extra_const then [ ("T", Sim.Buf cbuf) ] else []
  in
  (Sim.run ~mode:(Sim.Timing { max_blocks = 4 }) d { Sim.kernel = ptx; grid; block; args }).cycles

let timing2_tests =
  [
    t "shared-memory bank conflicts slow execution" (fun () ->
        (* Enough warps that the SM is issue-bound; a 16-way conflict
           multiplies the loads' issue occupancy. *)
        let t1 = time_of2 ~grid:(16, 1) ~block:(256, 1) (shared_stride_kernel 1) in
        let t16 = time_of2 ~grid:(16, 1) ~block:(256, 1) (shared_stride_kernel 16) in
        check_b "16-way conflict much slower" true (t16 > 3.0 *. t1));
    t "divergent constant-cache addresses serialize" (fun () ->
        let uni = time_of2 ~extra_const:true ~grid:(16, 1) ~block:(64, 1) (const_kernel false) in
        let div = time_of2 ~extra_const:true ~grid:(16, 1) ~block:(64, 1) (const_kernel true) in
        check_b "divergent slower" true (div > 2.0 *. uni));
    t "SFU-heavy code is slower than equivalent MAD code" (fun () ->
        let mk use_sfu =
          {
            kname = "sfu";
            scalar_params = [];
            array_params = [ { aname = "A"; aspace = Global }; { aname = "O"; aspace = Global } ];
            shared_decls = [];
            local_decls = [];
            body =
              [
                Mut ("acc", F32, f 1.0);
                for_ "t" (i 0) (i 64)
                  [
                    Assign
                      ( "acc",
                        if use_sfu then Un (Rsqrt, v "acc" +: f 1.0)
                        else (v "acc" *: f 0.5) +: f 1.0 );
                  ];
                Store ("O", tid_x, v "acc");
              ];
          }
        in
        let t_mad = time_of2 ~grid:(16, 1) ~block:(256, 1) (mk false) in
        let t_sfu = time_of2 ~grid:(16, 1) ~block:(256, 1) (mk true) in
        check_b "sfu throughput lower" true (t_sfu > 1.5 *. t_mad));
    t "occupancy cliff is visible in time (the paper's 10 vs 11 regs story)" (fun () ->
        (* Same kernel launched with block sizes straddling the
           768-thread residency boundary: 256-thread blocks allow 3
           resident blocks (24 warps); 384-thread blocks only 2
           (24 warps) — but 512-thread blocks only 1 (16 warps), which
           hurts a latency-bound kernel. *)
        let t384 = time_of ~grid:(16, 1) ~block:(384, 1) chase_kernel in
        let t512 = time_of ~grid:(12, 1) ~block:(512, 1) chase_kernel in
        (* normalize per thread: 384*16 vs 512*12 threads = equal work *)
        check_b "fewer resident warps is no faster" true (t512 >= t384 *. 0.9));
  ]

let suite = suite @ [ ("gpu.timing2", timing2_tests) ]
