(* Integration tests: the full methodology end-to-end on reduced
   problems, cross-layer consistency (parser <-> printer <-> simulator,
   allocator rewriting, minicuda pipeline), and the headline claim on a
   small search space. *)

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f
let check_b = Alcotest.(check bool)

let integration_tests =
  [
    ts "methodology end-to-end: matmul tiny space, optimum on the curve" (fun () ->
        let cands = Apps.Matmul.candidates ~n:128 ~max_blocks:4 () in
        let r = Tuner.Search.run ~app_name:"matmul@128" cands in
        check_b "optimum on curve (2% equivalence)" true r.optimum_selected;
        check_b "substantial pruning" true (r.reduction > 0.5));
    ts "methodology end-to-end: cp reduced space" (fun () ->
        let cands = Apps.Cp.candidates ~npx:512 ~npy:32 ~natoms:32 ~max_blocks:4 () in
        let r = Tuner.Search.run ~app_name:"cp@small" cands in
        (* On a small grid, tail effects dominate; the chosen config
           must still be within a whisker of the optimum. *)
        check_b "selected within 10% of optimum" true
          (r.selected_best.time_s <= r.best.time_s *. 1.10));
    ts "regalloc rewriting preserves matmul results" (fun () ->
        let n = 32 in
        let cfg = { Apps.Matmul.tile = 16; rect = 2; unroll = 2; prefetch = false; spill = false } in
        let p = Apps.Matmul.setup ~n () in
        let ptx = (Apps.Matmul.compile ~n cfg).ptx in
        let launch = Apps.Matmul.launch_of p cfg ptx in
        ignore (Gpu.Sim.run ~mode:Gpu.Sim.Functional p.dev launch);
        let want = Gpu.Device.of_device p.dev p.c in
        (* Rewrite through the allocator's assignment and rerun. *)
        let ra = Ptx.Regalloc.allocate ptx in
        let rewritten = Ptx.Regalloc.apply ptx ra in
        Gpu.Device.fill p.dev p.c 0.0;
        ignore
          (Gpu.Sim.run ~mode:Gpu.Sim.Functional p.dev { launch with Gpu.Sim.kernel = rewritten });
        let got = Gpu.Device.of_device p.dev p.c in
        check_b "identical" true (got = want));
    ts "printer -> parser -> simulator agrees with direct simulation" (fun () ->
        let n = 32 in
        let cfg = { Apps.Matmul.tile = 8; rect = 1; unroll = 0; prefetch = true; spill = false } in
        let p = Apps.Matmul.setup ~n () in
        let ptx = (Apps.Matmul.compile ~n cfg).ptx in
        let launch = Apps.Matmul.launch_of p cfg ptx in
        ignore (Gpu.Sim.run ~mode:Gpu.Sim.Functional p.dev launch);
        let want = Gpu.Device.of_device p.dev p.c in
        let reparsed = Ptx.Parser.kernel_of_string (Ptx.Pp.kernel ptx) in
        Gpu.Device.fill p.dev p.c 0.0;
        ignore
          (Gpu.Sim.run ~mode:Gpu.Sim.Functional p.dev { launch with Gpu.Sim.kernel = reparsed });
        check_b "identical" true (Gpu.Device.of_device p.dev p.c = want));
    t "minicuda kernel runs through the tuner's static pipeline" (fun () ->
        let k =
          Minicuda.Parser.parse_one
            {|kernel scale(global float X, global float O, float a) {
                int gid = blockIdx_x * blockDim_x + threadIdx_x;
                O[gid] = a * X[gid];
              }|}
        in
        let cc = Tuner.Pipeline.lower_opt k in
        let c =
          Tuner.Candidate.make ~desc:"mcu" ~resource:cc.resource ~profile:cc.profile ~params:[] ~kernel:cc.ptx ~threads_per_block:128
            ~threads_total:1024
            ~run:(fun () -> 0.0)
            ()
        in
        check_b "valid" true c.valid;
        let m = Tuner.Metrics.of_candidate c in
        check_b "metrics finite" true (m.efficiency > 0.0 && m.utilization >= 0.0));
    t "bandwidth screen flags low-reuse kernels" (fun () ->
        (* A copy kernel moves 8 bytes per ~4 instructions: far over
           the 4 B/cycle/SM budget. *)
        let k =
          Minicuda.Parser.parse_one
            {|kernel copy(global float X, global float O) {
                int gid = blockIdx_x * blockDim_x + threadIdx_x;
                O[gid] = X[gid];
              }|}
        in
        let cc = Tuner.Pipeline.lower_opt k in
        let c =
          Tuner.Candidate.make ~desc:"copy" ~resource:cc.resource ~profile:cc.profile ~params:[] ~kernel:cc.ptx ~threads_per_block:128
            ~threads_total:1024
            ~run:(fun () -> 0.0)
            ()
        in
        check_b "bandwidth bound" true (Tuner.Metrics.bandwidth_bound c));
    t "compute-dense kernels pass the bandwidth screen" (fun () ->
        let cfg = { Apps.Cp.block_y = 8; tiling = 4; coalesce = true } in
        let ptx = (Apps.Cp.compile ~natoms:64 cfg).ptx in
        let c =
          Tuner.Candidate.make ~desc:"cp" ~params:[] ~kernel:ptx ~threads_per_block:128
            ~threads_total:4096
            ~run:(fun () -> 0.0)
            ()
        in
        check_b "not bandwidth bound" false (Tuner.Metrics.bandwidth_bound c));
  ]

let suite = [ ("integration", integration_tests) ]
