(* Integration battery for the tuning service: served sweeps must be
   bit-identical to direct [Search.run], a warm store answers without
   the simulator, chaos-faulted request streams degrade gracefully
   without poisoning the store, and no adversarial frame takes the
   daemon down — in-process through [Serve.handle_frame] and end-to-end
   over a real Unix-domain socket. *)

module P = Tuner.Proto
module S = Tuner.Serve

let t name f = Alcotest.test_case name `Quick f
let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let with_server (f : S.t -> string -> 'a) : 'a =
  let file = Filename.temp_file "gpuopt-serve-test-" ".store" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let store = Tuner.Store.open_ ~file () in
      Fun.protect
        ~finally:(fun () -> Tuner.Store.close store)
        (fun () -> f (S.create ~jobs:2 ~store (Apps.Serving.resolver ())) file))

let explore_reply server app : P.explore_reply =
  match S.handle server (P.Explore { app; scale = P.Quick; chaos = None; arch = None; predict = false; deadline_ms = None }) with
  | P.Explore_r x -> x
  | _ -> Alcotest.failf "%s: explore did not return Explore_r" app

let rows_of (ms : Tuner.Search.measured list) : (string * float) list =
  List.map (fun (m : Tuner.Search.measured) -> (m.cand.desc, m.time_s)) ms

let check_rows what expected (got : P.measured_row list) =
  Alcotest.(check int) (what ^ ": row count") (List.length expected) (List.length got);
  List.iter2
    (fun (desc, time) (r : P.measured_row) ->
      if desc <> r.m_desc || not (feq time r.m_time_s) then
        Alcotest.failf "%s: %s/%h vs served %s/%h" what desc time r.m_desc r.m_time_s)
    expected got

(* ------------------------------------------------------------------ *)
(* Served results vs direct Search.run                                 *)
(* ------------------------------------------------------------------ *)

let identity_tests =
  [
    t "cold served explore is bit-identical to direct Search.run" (fun () ->
        List.iter
          (fun app ->
            let e = Option.get (Apps.Registry.find app) in
            let direct = Tuner.Search.run ~jobs:2 ~app_name:app (e.quick_candidates ()) in
            with_server (fun server _ ->
                let x = explore_reply server app in
                Alcotest.(check int) "space size" direct.space_size x.x_space_size;
                check_rows (app ^ " exhaustive") (rows_of direct.exhaustive) x.x_exhaustive;
                check_rows (app ^ " best") (rows_of [ direct.best ]) [ x.x_best ];
                check_rows (app ^ " selected best")
                  (rows_of [ direct.selected_best ])
                  [ x.x_selected_best ];
                Alcotest.(check (list string)) "selected descs"
                  (List.map (fun ((c : Tuner.Candidate.t), _) -> c.desc) direct.selected)
                  x.x_selected;
                Alcotest.(check bool) "reduction bit-equal" true
                  (feq direct.reduction x.x_reduction);
                Alcotest.(check bool) "optimum flag" direct.optimum_selected
                  x.x_optimum_selected))
          [ "matmul"; "cp" ]);
    t "served tune agrees with direct tune" (fun () ->
        let e = Option.get (Apps.Registry.find "matmul") in
        let best, selected = Tuner.Search.tune ~jobs:2 ~app_name:"matmul" (e.quick_candidates ()) in
        with_server (fun server _ ->
            match S.handle server (P.Tune { app = "matmul"; scale = P.Quick; arch = None; deadline_ms = None }) with
            | P.Tune_r r ->
              Alcotest.(check string) "chosen desc" best.cand.desc r.t_chosen.m_desc;
              Alcotest.(check bool) "chosen time bit-equal" true
                (feq best.time_s r.t_chosen.m_time_s);
              Alcotest.(check (list string)) "selected"
                (List.map (fun ((c : Tuner.Candidate.t), _) -> c.desc) selected)
                r.t_selected
            | _ -> Alcotest.fail "tune did not return Tune_r"));
  ]

(* ------------------------------------------------------------------ *)
(* Warm cache and chaos degradation                                    *)
(* ------------------------------------------------------------------ *)

let cache_tests =
  [
    t "warm replay does zero new measurements" (fun () ->
        with_server (fun server _ ->
            let cold = explore_reply server "matmul" in
            Alcotest.(check int) "cold pays the simulator" cold.x_space_size cold.x_runs;
            let warm = explore_reply server "matmul" in
            Alcotest.(check int) "warm runs" 0 warm.x_runs;
            Alcotest.(check int) "warm store hits" warm.x_space_size warm.x_store_hits;
            check_rows "warm rows identical"
              (List.map (fun (r : P.measured_row) -> (r.m_desc, r.m_time_s)) cold.x_exhaustive)
              warm.x_exhaustive;
            (* the tune request over the same space is also free *)
            match S.handle server (P.Tune { app = "matmul"; scale = P.Quick; arch = None; deadline_ms = None }) with
            | P.Tune_r r -> Alcotest.(check int) "tune runs" 0 r.t_runs
            | _ -> Alcotest.fail "tune failed on a warm store"));
    t "a chaos-faulted stream degrades gracefully and never poisons the store" (fun () ->
        with_server (fun server _ ->
            let clean = explore_reply server "matmul" in
            (* chaos-injected request: per-request faults, response still
               well-formed, with each fault in the journal encoding *)
            let chaos =
              match
                S.handle server
                  (P.Explore
                     {
                       app = "matmul";
                       scale = P.Quick;
                       chaos = Some { ch_seed = 7; ch_count = 3 };
                       arch = None;
                       predict = false;
                       deadline_ms = None;
                     })
              with
              | P.Explore_r x -> x
              | _ -> Alcotest.fail "chaos explore did not return Explore_r"
            in
            Alcotest.(check int) "three faults reported" 3 (List.length chaos.x_faults);
            List.iter
              (fun (f : P.fault_row) ->
                match Tuner.Fault.of_journal f.f_fault with
                | Some _ -> ()
                | None -> Alcotest.failf "fault row not in journal encoding: %s" f.f_fault)
              chaos.x_faults;
            Alcotest.(check int) "chaos bypasses the store entirely" 0 chaos.x_store_hits;
            (* the store is unpoisoned: a clean replay is warm and equal *)
            let after = explore_reply server "matmul" in
            Alcotest.(check int) "clean replay after chaos: zero runs" 0 after.x_runs;
            check_rows "clean replay after chaos: rows identical"
              (List.map (fun (r : P.measured_row) -> (r.m_desc, r.m_time_s)) clean.x_exhaustive)
              after.x_exhaustive;
            (* impossible chaos (more faults than candidates) is a typed
               error, not a crash *)
            match
              S.handle server
                (P.Explore
                   {
                     app = "matmul";
                     scale = P.Quick;
                     chaos = Some { ch_seed = 1; ch_count = 1_000_000 };
                     arch = None;
                     predict = false;
                     deadline_ms = None;
                   })
            with
            | P.Error_r { e_code = P.Bad_request; _ } -> ()
            | _ -> Alcotest.fail "oversized chaos count not rejected as Bad_request"));
  ]

(* ------------------------------------------------------------------ *)
(* Adversarial requests through the frame handler                      *)
(* ------------------------------------------------------------------ *)

let handle_frame_tests =
  [
    t "unknown app, bad lint config, garbage frames: typed errors, no crash" (fun () ->
        with_server (fun server _ ->
            (match S.handle server (P.Tune { app = "nope"; scale = P.Quick; arch = None; deadline_ms = None }) with
            | P.Error_r { e_code = P.Unknown_app; e_msg } ->
              Alcotest.(check bool) "lists known apps" true
                (String.length e_msg > 0
                && Option.is_some
                     (String.index_opt e_msg 'm' (* matmul|cp|sad|mri *)))
            | _ -> Alcotest.fail "unknown app not typed");
            (match S.handle server (P.Lint { app = "matmul"; config = Some "no-such-config" }) with
            | P.Error_r { e_code = P.Bad_request; _ } -> ()
            | _ -> Alcotest.fail "bad lint config not typed");
            (match S.handle server (P.Lint { app = "matmul"; config = None }) with
            | P.Lint_r { l_report; l_errors } ->
              Alcotest.(check bool) "report nonempty" true (String.length l_report > 0);
              Alcotest.(check bool) "default config is clean" false l_errors
            | _ -> Alcotest.fail "lint failed");
            List.iter
              (fun garbage ->
                let reply = S.handle_frame server garbage in
                match P.decode_response reply with
                | Ok (P.Error_r { e_code = P.Protocol_error; _ }) -> ()
                | Ok _ -> Alcotest.failf "garbage %S produced a non-error reply" garbage
                | Error e ->
                  Alcotest.failf "error reply failed to decode: %s" (P.decode_error_to_string e))
              [
                "";
                "not json";
                "\x00\xff\xfe";
                {|{"type":"unknown-verb"}|};
                {|{"type":"tune","app":"matmul","scale":"sideways"}|};
                String.make 4096 '[';
              ]));
  ]

(* ------------------------------------------------------------------ *)
(* End-to-end over a Unix-domain socket                                *)
(* ------------------------------------------------------------------ *)

let socket_tests =
  [
    t "socket round-trip: serve, request, survive garbage, shut down" (fun () ->
        with_server (fun server _ ->
            let socket = Filename.temp_file "gpuopt-serve-test-" ".sock" in
            Fun.protect
              ~finally:(fun () -> try Sys.remove socket with Sys_error _ -> ())
              (fun () ->
                let daemon =
                  Domain.spawn (fun () ->
                      S.listen ~conn_workers:2 ~poll_s:0.05 server ~socket ())
                in
                Alcotest.(check bool) "daemon comes up" true (S.wait_ready ~socket ());
                (* several requests on one connection *)
                S.with_client ~socket (fun fd ->
                    (match S.rpc fd P.Ping with
                    | Ok P.Pong -> ()
                    | _ -> Alcotest.fail "ping failed");
                    match S.rpc fd (P.Explore { app = "matmul"; scale = P.Quick; chaos = None; arch = None; predict = false; deadline_ms = None }) with
                    | Ok (P.Explore_r x) ->
                      Alcotest.(check int) "cold sweep over the socket" x.x_space_size x.x_runs
                    | Ok _ -> Alcotest.fail "wrong reply type"
                    | Error e -> Alcotest.failf "explore rpc: %s" e);
                (* a poisoned connection draws a typed error and dies;
                   the daemon itself survives *)
                S.with_client ~socket (fun fd ->
                    let garbage = "\xFF\xFF\xFF\xFFnonsense" in
                    ignore (Unix.write_substring fd garbage 0 (String.length garbage) : int);
                    match S.read_frame fd with
                    | Ok payload -> (
                      match P.decode_response payload with
                      | Ok (P.Error_r { e_code = P.Protocol_error; _ }) -> ()
                      | _ -> Alcotest.fail "poisoned stream not answered with protocol error")
                    | Error e -> Alcotest.failf "no error reply before close: %s" e);
                (match S.call ~socket P.Stats with
                | Ok (P.Stats_r s) ->
                  Alcotest.(check bool) "daemon alive after garbage; errors counted" true
                    (s.sv_errors >= 1)
                | _ -> Alcotest.fail "stats failed after poisoned connection");
                (match S.call ~socket P.Shutdown with
                | Ok P.Bye -> ()
                | _ -> Alcotest.fail "shutdown not acknowledged");
                Domain.join daemon;
                Alcotest.(check bool) "socket unlinked after shutdown" false
                  (Sys.file_exists socket))));
  ]

(* ------------------------------------------------------------------ *)
(* Hardening: deadlines, overload shedding, wire faults, drain         *)
(* ------------------------------------------------------------------ *)

module CN = Tuner.Chaos.Net

let explore_req ?deadline_ms app : P.request =
  P.Explore
    { app; scale = P.Quick; chaos = None; arch = None; predict = false; deadline_ms }

let with_daemon ?(conn_workers = 2) ?(io_timeout_s = 30.0) ?max_queue ?retry_after_ms
    ?(on_sigterm = false) ?(ready = true) server (f : string -> 'a) : 'a =
  let socket = Filename.temp_file "gpuopt-serve-hard-" ".sock" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove socket with Sys_error _ -> ())
    (fun () ->
      let daemon =
        Domain.spawn (fun () ->
            S.listen ~conn_workers ~poll_s:0.05 ~io_timeout_s ?max_queue ?retry_after_ms
              ~on_sigterm server ~socket ())
      in
      Fun.protect
        ~finally:(fun () ->
          S.request_stop server;
          Domain.join daemon)
        (fun () ->
          if ready then
            Alcotest.(check bool) "daemon comes up" true (S.wait_ready ~socket ());
          f socket))

let hardening_tests =
  [
    t "deadline 0 on a cold sweep is typed; the warm store answers it anyway" (fun () ->
        with_server (fun server _ ->
            (match S.handle server (explore_req ~deadline_ms:0 "matmul") with
            | P.Error_r { e_code = P.Deadline_exceeded; _ } -> ()
            | _ -> Alcotest.fail "cold sweep under an expired deadline not typed");
            (* pay for the sweep once, then the same impossible deadline
               succeeds from the warm store — answering from memory does
               not miss a deadline *)
            let clean = explore_reply server "matmul" in
            match S.handle server (explore_req ~deadline_ms:0 "matmul") with
            | P.Explore_r x ->
              Alcotest.(check int) "warm deadline sweep: zero runs" 0 x.x_runs;
              check_rows "warm deadline sweep: rows bit-identical"
                (List.map (fun (r : P.measured_row) -> (r.m_desc, r.m_time_s)) clean.x_exhaustive)
                x.x_exhaustive
            | P.Error_r { e_code; e_msg } ->
              Alcotest.failf "warm sweep failed under deadline: %s: %s"
                (P.error_code_name e_code) e_msg
            | _ -> Alcotest.fail "warm sweep: wrong reply type"));
    t "tune under an expired deadline is typed too" (fun () ->
        with_server (fun server _ ->
            match
              S.handle server
                (P.Tune { app = "matmul"; scale = P.Quick; arch = None; deadline_ms = Some 0 })
            with
            | P.Error_r { e_code = P.Deadline_exceeded; _ } -> ()
            | _ -> Alcotest.fail "cold tune under an expired deadline not typed"));
    t "a full accept queue sheds with a typed overloaded reply, never a hang" (fun () ->
        with_server (fun server _ ->
            with_daemon ~conn_workers:1 ~max_queue:0 ~retry_after_ms:7 ~ready:false server
              (fun socket ->
                (* with max_queue 0 every connection sheds at the door *)
                let deadline = Unix.gettimeofday () +. 10.0 in
                let rec shed () =
                  match S.call ~socket P.Ping with
                  | Ok (P.Overloaded_r { o_retry_after_ms }) -> o_retry_after_ms
                  | _ when Unix.gettimeofday () < deadline ->
                    Unix.sleepf 0.05;
                    shed ()
                  | _ -> Alcotest.fail "no typed overloaded reply before timeout"
                in
                Alcotest.(check int) "shed carries the retry hint" 7 (shed ());
                (* a retrying client that never finds room still gets the
                   typed shed back, not an exception or a hang *)
                match S.call ~retries:2 ~retry_base_ms:5 ~socket P.Ping with
                | Ok (P.Overloaded_r _) -> ()
                | Ok _ -> Alcotest.fail "retried call got through a zero-length queue"
                | Error e -> Alcotest.failf "retried call errored instead of shedding: %s" e)));
    t "wire faults: torn frame, byte flip, slow loris, vanishing client — daemon survives"
      (fun () ->
        with_server (fun server _ ->
            with_daemon ~io_timeout_s:1.0 server (fun socket ->
                (* pay for one sweep so the reply to the vanishing client
                   below is a large frame written to a dead peer *)
                let before =
                  match S.call ~socket (explore_req "matmul") with
                  | Ok (P.Explore_r x) -> x
                  | _ -> Alcotest.fail "baseline explore failed"
                in
                let rng = Util.Rng.create 42 in
                let payload = P.encode_request P.Ping in
                List.iter
                  (fun f ->
                    let (_ : string) =
                      CN.strike ~loris_interval_s:0.2 ~loris_max_bytes:4 ~rng ~socket ~payload f
                    in
                    match S.call ~socket P.Ping with
                    | Ok P.Pong -> ()
                    | _ -> Alcotest.failf "daemon unresponsive after %s" (CN.fault_name f))
                  CN.all_faults;
                (* the client that dies between request and reply: a full
                   explore reply hits the closed socket (EPIPE); without
                   SIGPIPE ignored this kills the whole process *)
                let (_ : string) =
                  CN.strike ~rng ~socket
                    ~payload:(P.encode_request (explore_req "matmul"))
                    CN.Disconnect_mid_reply
                in
                (match S.call ~socket P.Ping with
                | Ok P.Pong -> ()
                | _ -> Alcotest.fail "daemon died writing a reply to a vanished client");
                (* and the warm results are still bit-identical *)
                match S.call ~socket (explore_req "matmul") with
                | Ok (P.Explore_r after) ->
                  Alcotest.(check int) "warm after assault: zero runs" 0 after.x_runs;
                  check_rows "warm after assault: rows bit-identical"
                    (List.map
                       (fun (r : P.measured_row) -> (r.m_desc, r.m_time_s))
                       before.x_exhaustive)
                    after.x_exhaustive
                | _ -> Alcotest.fail "post-assault explore failed")));
    t "SIGTERM drains gracefully: in-flight request finishes, listen returns" (fun () ->
        with_server (fun server _ ->
            with_daemon ~on_sigterm:true server (fun socket ->
                let client = Domain.spawn (fun () -> S.call ~socket (explore_req "matmul")) in
                Unix.sleepf 0.3;
                Unix.kill (Unix.getpid ()) Sys.sigterm;
                (match Domain.join client with
                | Ok (P.Explore_r _) -> ()
                | Ok _ -> Alcotest.fail "in-flight request: wrong reply type"
                | Error e -> Alcotest.failf "in-flight request dropped by the drain: %s" e);
                (* the drain must actually stop the daemon, not just the
                   connection: give it a moment, then verify *)
                let deadline = Unix.gettimeofday () +. 10.0 in
                while not (S.stopping server) && Unix.gettimeofday () < deadline do
                  Unix.sleepf 0.02
                done;
                Alcotest.(check bool) "stop flag raised by the handler" true
                  (S.stopping server));
            Sys.set_signal Sys.sigterm Sys.Signal_default));
  ]

let suite =
  [
    ( "serve",
      identity_tests @ cache_tests @ handle_frame_tests @ socket_tests @ hardening_tests );
  ]
