(* Test runner: aggregates the per-library suites.  `dune runtest`. *)

let () =
  Alcotest.run "gpuopt"
    (Test_util.suite @ Test_pool.suite @ Test_ptx.suite @ Test_gpu.suite @ Test_kir.suite
   @ Test_lang.suite @ Test_tuner.suite @ Test_fault.suite @ Test_pipeline.suite
   @ Test_apps.suite @ Test_integration.suite @ Test_analysis.suite @ Test_sim_golden.suite
   @ Test_proto.suite @ Test_store.suite @ Test_serve.suite @ Test_arch.suite
   @ Test_superopt.suite @ Test_predict.suite)
