(* Tests for the four applications: configuration spaces, kernel
   generation, functional correctness against the CPU references, and
   workload generators. *)

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

let workload_tests =
  [
    t "matrix generation is deterministic and in range" (fun () ->
        let a = Apps.Workload.matrix ~seed:3 16 in
        let b = Apps.Workload.matrix ~seed:3 16 in
        check_b "deterministic" true (a = b);
        check_b "range" true (Array.for_all (fun x -> x >= -1.0 && x < 1.0) a));
    t "frames shift their content with the motion offset" (fun () ->
        let w = 64 and h = 32 in
        let f0 = Apps.Workload.frame ~seed:1 ~width:w ~height:h ~shift_x:0 ~shift_y:0 () in
        let f1 = Apps.Workload.frame ~seed:1 ~width:w ~height:h ~shift_x:5 ~shift_y:0 () in
        (* away from borders, f1(x, y) = f0(x+5, y) *)
        let ok = ref true in
        for y = 0 to h - 1 do
          for x = 0 to w - 6 do
            if f1.((y * w) + x) <> f0.((y * w) + x + 5) then ok := false
          done
        done;
        check_b "pure translation" true !ok);
    t "frame values stay within pixel range" (fun () ->
        let f = Apps.Workload.frame ~seed:2 ~width:32 ~height:32 ~shift_x:0 ~shift_y:0 () in
        check_b "range" true (Array.for_all (fun x -> x >= 0.0 && x <= 255.0) f));
    t "atoms have the documented layout and ranges" (fun () ->
        let a = Apps.Workload.atoms ~seed:4 ~n:10 ~extent:5.0 () in
        check_i "length" 40 (Array.length a);
        for j = 0 to 9 do
          check_b "x" true (a.(4 * j) >= 0.0 && a.(4 * j) < 5.0);
          check_b "q" true (a.((4 * j) + 3) >= -2.0 && a.((4 * j) + 3) < 2.0)
        done);
    t "mri voxel grid is normalized" (fun () ->
        let xs, ys, zs = Apps.Workload.mri_voxels ~n:100 in
        check_b "range" true
          (Array.for_all (fun x -> x >= 0.0 && x < 1.0) xs
          && Array.for_all (fun x -> x >= 0.0 && x < 1.0) ys
          && Array.for_all (fun x -> x >= 0.0 && x < 1.0) zs));
  ]

(* ------------------------------------------------------------------ *)
(* Spaces                                                              *)
(* ------------------------------------------------------------------ *)

let unique_descs describe space =
  let descs = List.map describe (Tuner.Space.configs space) in
  List.length (List.sort_uniq compare descs) = List.length descs

let space_tests =
  [
    t "matmul space has 96 raw configurations" (fun () ->
        check_i "size" 96 (Tuner.Space.cardinality Apps.Matmul.space));
    t "cp space has 40 raw configurations" (fun () ->
        check_i "size" 40 (Tuner.Space.cardinality Apps.Cp.space));
    t "sad space has 648 raw configurations" (fun () ->
        check_i "size" 648 (Tuner.Space.cardinality Apps.Sad.space));
    t "mri space has exactly the paper's 175 configurations" (fun () ->
        check_i "size" 175 (Tuner.Space.cardinality Apps.Mri_fhd.space));
    t "descriptions are unique within each space" (fun () ->
        check_b "matmul" true (unique_descs Apps.Matmul.describe Apps.Matmul.space);
        check_b "cp" true (unique_descs Apps.Cp.describe Apps.Cp.space);
        check_b "sad" true (unique_descs Apps.Sad.describe Apps.Sad.space);
        check_b "mri" true (unique_descs Apps.Mri_fhd.describe Apps.Mri_fhd.space));
    t "every configuration compiles through the verified pipeline" (fun () ->
        (* [compile] runs per-stage verification by default, so this
           also asserts zero violations across three whole spaces. *)
        List.iter
          (fun c -> ignore (Apps.Matmul.compile ~n:64 c))
          (Tuner.Space.configs Apps.Matmul.space);
        List.iter
          (fun c -> ignore (Apps.Cp.compile ~natoms:8 c))
          (Tuner.Space.configs Apps.Cp.space);
        List.iter
          (fun c -> ignore (Apps.Mri_fhd.compile ~nsamples:4 ~nvox:840 c))
          (Tuner.Space.configs Apps.Mri_fhd.space));
  ]

(* ------------------------------------------------------------------ *)
(* Functional correctness vs CPU references                            *)
(* ------------------------------------------------------------------ *)

let correctness_tests =
  [
    ts "matmul: all optimization corners validate" (fun () ->
        List.iter
          (fun (tile, rect, unroll, prefetch, spill) ->
            let cfg = { Apps.Matmul.tile; rect; unroll; prefetch; spill } in
            check_b (Apps.Matmul.describe cfg) true (Apps.Matmul.validate ~n:64 cfg))
          [
            (8, 1, 1, false, false);
            (8, 4, 2, true, false);
            (16, 1, 0, false, true);
            (16, 2, 4, true, true);
            (16, 4, 0, true, false);
            (8, 2, 0, false, true);
          ]);
    ts "cp: coalesced and uncoalesced layouts validate" (fun () ->
        List.iter
          (fun (block_y, tiling, coalesce) ->
            let cfg = { Apps.Cp.block_y; tiling; coalesce } in
            check_b (Apps.Cp.describe cfg) true (Apps.Cp.validate cfg))
          [ (2, 1, true); (4, 2, false); (8, 8, true); (16, 4, false) ]);
    ts "sad: tilings and unrolls validate" (fun () ->
        List.iter
          (fun (tpb, tiling, u_vec, u_py, u_px) ->
            let cfg = { Apps.Sad.tpb; tiling; u_vec; u_py; u_px } in
            check_b (Apps.Sad.describe cfg) true (Apps.Sad.validate cfg))
          [ (32, 1, 1, 1, 1); (64, 2, 2, 4, 2); (96, 4, 4, 2, 4); (128, 4, 2, 1, 2) ]);
    ts "mri: block sizes, unrolls and voxel tilings validate" (fun () ->
        List.iter
          (fun (tpb, unroll, wpt) ->
            let cfg = { Apps.Mri_fhd.tpb; unroll; wpt } in
            check_b (Apps.Mri_fhd.describe cfg) true (Apps.Mri_fhd.validate cfg))
          [ (64, 1, 1); (96, 2, 5); (128, 8, 2); (256, 16, 7) ]);
  ]

(* ------------------------------------------------------------------ *)
(* Candidate characterization                                          *)
(* ------------------------------------------------------------------ *)

let candidate_tests =
  [
    ts "matmul candidates carry sane static data" (fun () ->
        let cands = Apps.Matmul.candidates ~n:64 ~max_blocks:2 () in
        check_i "count" 96 (List.length cands);
        List.iter
          (fun (c : Tuner.Candidate.t) ->
            check_b "instr > 0" true (c.profile.instr > 0.0);
            check_b "regions >= 1" true (c.profile.regions >= 1.0);
            check_b "regs > 0" true (c.resource.regs_per_thread > 0);
            if c.valid then
              check_b "occupancy consistent" true (c.occupancy.blocks_per_sm >= 1))
          cands);
    ts "cp: rsqrt makes SFU the dominant blocking class" (fun () ->
        let cands = Apps.Cp.candidates ~npx:256 ~npy:16 ~natoms:16 () in
        List.iter
          (fun (c : Tuner.Candidate.t) ->
            check_b "sfu events dominate" true (c.profile.sfu_events > c.profile.mem_bar_events))
          cands);
    ts "mri: voxel-tiling clusters leave metrics (nearly) unchanged" (fun () ->
        let cands = Apps.Mri_fhd.candidates ~nsamples:64 ~nvox:107520 ~max_blocks:1 () in
        let m d =
          List.find_map
            (fun (c : Tuner.Candidate.t) ->
              if c.desc = d then Some (Tuner.Metrics.of_candidate c) else None)
            cands
          |> Option.get
        in
        let a = m "tpb128/u4/w1" and b = m "tpb128/u4/w7" in
        check_b "eff within 1%" true
          (Float.abs ((a.efficiency /. b.efficiency) -. 1.0) < 0.01);
        check_b "util within 1%" true
          (Float.abs ((a.utilization /. b.utilization) -. 1.0) < 0.01));
    t "cpu model speedups have the paper's ordering structure" (fun () ->
        (* Using the paper's own problem scales, the model must place
           CP and MRI orders of magnitude above matmul/SAD. *)
        let mm = Apps.Cpu_model.matmul_seconds ~n:4096 /. 1.0 in
        check_b "mm positive" true (mm > 0.0);
        let cp = Apps.Cpu_model.cp_seconds ~interactions:1e9 in
        let mri = Apps.Cpu_model.mri_seconds ~interactions:1e9 in
        let sad = Apps.Cpu_model.sad_seconds ~absdiff_ops:1e9 in
        check_b "cp per-op > sad per-op" true (cp > sad);
        check_b "mri per-op > sad per-op" true (mri > sad));
  ]

let suite =
  [
    ("apps.workload", workload_tests);
    ("apps.spaces", space_tests);
    ("apps.correctness", correctness_tests);
    ("apps.candidates", candidate_tests);
  ]
