(* Tests for the paper's contribution: the efficiency/utilization
   metrics (Eqs. 1-2, including the paper's worked example), Pareto
   frontier extraction, and the pruned-search driver. *)

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let metrics_tests =
  [
    t "paper worked example (sec 4): matmul 4k, complete unroll" (fun () ->
        (* Instr = 15150, Regions = 769, Threads = 2^24, W_TB = 8,
           B_SM = 2  =>  Efficiency = 3.93e-12, Utilization ~ 227. *)
        let m =
          Tuner.Metrics.compute ~instr:15150.0 ~regions:769.0
            ~threads:(Float.pow 2.0 24.0) ~warps_per_block:8 ~blocks_per_sm:2
        in
        check_b "efficiency 3.93e-12" true
          (Float.abs ((m.efficiency /. 3.93e-12) -. 1.0) < 0.01);
        check_b "utilization ~227" true (Float.abs (m.utilization -. 227.0) < 1.0));
    t "efficiency halves when instructions double" (fun () ->
        let m i =
          (Tuner.Metrics.compute ~instr:i ~regions:10.0 ~threads:1000.0 ~warps_per_block:4
             ~blocks_per_sm:2)
            .efficiency
        in
        check_b "inverse" true (Float.abs ((m 100.0 /. m 200.0) -. 2.0) < 1e-9));
    t "utilization grows with independent warps" (fun () ->
        let u b =
          (Tuner.Metrics.compute ~instr:100.0 ~regions:10.0 ~threads:1.0 ~warps_per_block:4
             ~blocks_per_sm:b)
            .utilization
        in
        check_b "monotone" true (u 1 < u 2 && u 2 < u 4);
        (* bracket term: (4-1)/2 + (B-1)*4 *)
        check_b "B=1" true (Float.abs (u 1 -. (100.0 /. 10.0 *. 1.5)) < 1e-9);
        check_b "B=2" true (Float.abs (u 2 -. (100.0 /. 10.0 *. 5.5)) < 1e-9));
    t "degenerate inputs give zero, not exceptions" (fun () ->
        let m =
          Tuner.Metrics.compute ~instr:0.0 ~regions:0.0 ~threads:0.0 ~warps_per_block:0
            ~blocks_per_sm:0
        in
        check_b "finite" true (m.efficiency = 0.0 && m.utilization = 0.0));
    t "normalize scales each axis to max 1" (fun () ->
        let ms =
          Tuner.Metrics.
            [
              { efficiency = 1.0; utilization = 50.0 };
              { efficiency = 4.0; utilization = 200.0 };
            ]
        in
        match Tuner.Metrics.normalize ms with
        | [ a; b ] ->
          check_b "a" true (a.efficiency = 0.25 && a.utilization = 0.25);
          check_b "b" true (b.efficiency = 1.0 && b.utilization = 1.0)
        | _ -> Alcotest.fail "length");
  ]

(* ------------------------------------------------------------------ *)
(* Pareto                                                              *)
(* ------------------------------------------------------------------ *)

let pt x y = { Tuner.Pareto.x; y }
let coords (p : Tuner.Pareto.point) = (p.x, p.y)

let random_points seed n =
  let rng = Util.Rng.create seed in
  List.init n (fun _ -> pt (Util.Rng.float rng) (Util.Rng.float rng))

(* Duplicates force the cluster-survival paths of the frontier. *)
let random_points_with_dups seed n =
  let rng = Util.Rng.create seed in
  let grid () = float_of_int (Util.Rng.int rng 8) /. 8.0 in
  List.init n (fun _ -> pt (grid ()) (grid ()))

let shuffle seed xs =
  let rng = Util.Rng.create seed in
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = Util.Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let pareto_tests =
  [
    t "frontier of a staircase" (fun () ->
        let pts = [ pt 1.0 3.0; pt 2.0 2.0; pt 3.0 1.0; pt 1.5 1.5 ] in
        let f = Tuner.Pareto.frontier_points pts in
        check_i "three survive" 3 (List.length f);
        check_b "dominated point gone" true (not (List.mem (pt 1.5 1.5) f)));
    t "a single point is its own frontier" (fun () ->
        check_i "one" 1 (List.length (Tuner.Pareto.frontier_points [ pt 0.5 0.5 ])));
    t "identical points survive together (paper's clusters)" (fun () ->
        let pts = [ pt 1.0 1.0; pt 1.0 1.0; pt 1.0 1.0; pt 0.5 0.5 ] in
        check_i "cluster kept" 3 (List.length (Tuner.Pareto.frontier_points pts)));
    t "same x, lower y is dominated" (fun () ->
        let f = Tuner.Pareto.frontier_points [ pt 1.0 2.0; pt 1.0 1.0 ] in
        check_b "only the top" true (f = [ pt 1.0 2.0 ]));
    t "empty input" (fun () -> check_i "empty" 0 (List.length (Tuner.Pareto.frontier_points [])));
    t "result preserves input order" (fun () ->
        let pts = [ pt 3.0 1.0; pt 1.0 3.0; pt 2.0 2.0 ] in
        check_b "order" true (Tuner.Pareto.frontier_points pts = pts));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"frontier contains no dominated point (qcheck)" ~count:200
         QCheck.(int_range 0 100000)
         (fun seed ->
           let pts = random_points seed 60 in
           let f = Tuner.Pareto.frontier_points pts in
           List.for_all (fun p -> not (Tuner.Pareto.is_dominated coords f p)) f));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"every excluded point is dominated by the frontier (qcheck)"
         ~count:200
         QCheck.(int_range 0 100000)
         (fun seed ->
           let pts = random_points seed 60 in
           let f = Tuner.Pareto.frontier_points pts in
           List.for_all
             (fun p -> List.mem p f || Tuner.Pareto.is_dominated coords f p)
             pts));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"frontier includes the max of each axis (qcheck)" ~count:200
         QCheck.(int_range 0 100000)
         (fun seed ->
           let pts = random_points seed 40 in
           let f = Tuner.Pareto.frontier_points pts in
           let max_by proj =
             List.fold_left (fun a p -> if proj p > proj a then p else a) (List.hd pts) pts
           in
           List.exists (fun p -> p.Tuner.Pareto.x = (max_by (fun p -> p.Tuner.Pareto.x)).x) f
           && List.exists (fun p -> p.Tuner.Pareto.y = (max_by (fun p -> p.Tuner.Pareto.y)).y) f));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"quantized frontier is a superset of the exact one (qcheck)"
         ~count:200
         QCheck.(int_range 0 100000)
         (fun seed ->
           let pts = random_points seed 50 in
           let exact = Tuner.Pareto.frontier coords pts in
           let quant = Tuner.Pareto.frontier_quantized ~resolution:0.05 coords pts in
           List.for_all (fun p -> List.mem p quant) exact));
    (* Search-correctness properties (seeded through Util.Rng so every
       run explores the same point sets). *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"no kept point is dominated by ANY input point (qcheck)" ~count:300
         QCheck.(int_range 0 100000)
         (fun seed ->
           let pts = random_points_with_dups seed 50 in
           let f = Tuner.Pareto.frontier coords pts in
           List.for_all (fun p -> not (Tuner.Pareto.is_dominated coords pts p)) f));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"every dropped point is dominated by a kept point (qcheck)"
         ~count:300
         QCheck.(int_range 0 100000)
         (fun seed ->
           let pts = random_points_with_dups seed 50 in
           let f = Tuner.Pareto.frontier coords pts in
           (* Count multiplicity: a point kept k times leaves n-k drops. *)
           let count x xs = List.length (List.filter (( = ) x) xs) in
           List.for_all
             (fun p ->
               count p pts = count p f || Tuner.Pareto.is_dominated coords f p)
             pts));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"quantized frontier superset holds on clustered inputs (qcheck)"
         ~count:300
         QCheck.(int_range 0 100000)
         (fun seed ->
           let pts = random_points_with_dups seed 60 in
           let exact = Tuner.Pareto.frontier coords pts in
           let quant = Tuner.Pareto.frontier_quantized ~resolution:0.05 coords pts in
           List.for_all (fun p -> List.mem p quant) exact));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"frontier is invariant under input permutation (qcheck)" ~count:300
         QCheck.(int_range 0 100000)
         (fun seed ->
           let pts = random_points_with_dups seed 40 in
           let perm = shuffle (seed + 1) pts in
           let sorted l = List.sort compare l in
           sorted (Tuner.Pareto.frontier coords pts)
           = sorted (Tuner.Pareto.frontier coords perm)
           && sorted (Tuner.Pareto.frontier_quantized ~resolution:0.05 coords pts)
              = sorted (Tuner.Pareto.frontier_quantized ~resolution:0.05 coords perm)));
  ]

(* ------------------------------------------------------------------ *)
(* Search driver (on synthetic candidates)                             *)
(* ------------------------------------------------------------------ *)

(* Fabricate a candidate whose metrics and runtime we fully control:
   a one-block dummy kernel plus a closed-form run function. *)
let dummy_kernel =
  Ptx.Prog.make ~name:"dummy" ~params:[] ~smem_words:0 ~lmem_words:0
    [ Ptx.Prog.block "a" [] Ptx.Prog.Ret ]

let fake ~desc ~instr ~regions ~time : Tuner.Candidate.t =
  let base =
    Tuner.Candidate.make ~desc ~params:[] ~kernel:dummy_kernel ~threads_per_block:64
      ~threads_total:6400 ~run:(fun () -> time) ()
  in
  (* override the measured profile with the synthetic one *)
  { base with profile = { base.profile with instr; regions } }

let search_tests =
  [
    t "search keeps an optimum that sits on the frontier" (fun () ->
        (* efficiency ~ 1/instr; utilization ~ instr/regions * const.
           Make the fast config dominate on both axes. *)
        let cands =
          [
            fake ~desc:"good" ~instr:100.0 ~regions:10.0 ~time:1.0;
            fake ~desc:"bad" ~instr:400.0 ~regions:100.0 ~time:4.0;
            fake ~desc:"worse" ~instr:800.0 ~regions:400.0 ~time:8.0;
          ]
        in
        let r = Tuner.Search.run ~app_name:"synthetic" cands in
        check_b "optimum selected" true r.optimum_selected;
        check_b "exact" true r.optimum_exact;
        check_b "best is good" true (r.best.cand.desc = "good"));
    t "search reports reduction and eval-time bookkeeping" (fun () ->
        let cands =
          List.init 20 (fun k ->
              fake
                ~desc:(Printf.sprintf "c%d" k)
                ~instr:(100.0 +. float_of_int (k * 37 mod 200))
                ~regions:(10.0 +. float_of_int (k * 17 mod 50))
                ~time:(1.0 +. float_of_int k))
        in
        let r = Tuner.Search.run ~app_name:"synthetic" cands in
        check_i "space" 20 r.space_size;
        check_b "reduction in [0,1)" true (r.reduction >= 0.0 && r.reduction < 1.0);
        check_b "full eval time = sum" true
          (Float.abs (r.full_eval_time -. (20.0 +. (19.0 *. 20.0 /. 2.0))) < 1e-9);
        check_b "selected time <= full time" true (r.selected_eval_time <= r.full_eval_time));
    t "invalid candidates are excluded but counted" (fun () ->
        let invalid =
          Tuner.Candidate.make ~desc:"huge" ~params:[] ~kernel:dummy_kernel
            ~threads_per_block:1024 ~threads_total:1024
            ~run:(fun () -> 0.1)
            ()
        in
        check_b "flagged invalid" false invalid.valid;
        let r =
          Tuner.Search.run ~app_name:"synthetic"
            [ invalid; fake ~desc:"ok" ~instr:10.0 ~regions:2.0 ~time:1.0 ]
        in
        check_i "valid" 1 r.space_size;
        check_i "invalid" 1 r.invalid);
    t "tune measures only the selected subset" (fun () ->
        (* Atomic: measurement thunks may run on worker domains. *)
        let measured = Atomic.make 0 in
        let counting desc instr regions time =
          let c = fake ~desc ~instr ~regions ~time in
          {
            c with
            run =
              (fun () ->
                Atomic.incr measured;
                time);
          }
        in
        let cands =
          [
            counting "a" 100.0 10.0 1.0;
            counting "b" 1000.0 11.0 9.0;
            (* dominated on both axes *)
            counting "c" 400.0 300.0 5.0;
          ]
        in
        let best, selected = Tuner.Search.tune ~app_name:"synthetic" cands in
        check_b "fewer measurements than space" true (Atomic.get measured = List.length selected);
        check_b "picked the fast one" true (best.cand.desc = "a"));
    t "search measures each candidate exactly once (cache reuse)" (fun () ->
        (* Exhaustive sweep + Pareto subset + best lookups must all hit
           the same cache: one simulator run per candidate, total. *)
        let runs = Atomic.make 0 in
        let cands =
          List.init 12 (fun k ->
              let c =
                fake
                  ~desc:(Printf.sprintf "c%d" k)
                  ~instr:(100.0 +. float_of_int (k * 53 mod 300))
                  ~regions:(10.0 +. float_of_int (k * 29 mod 40))
                  ~time:(1.0 +. float_of_int (k * 7 mod 11))
              in
              { c with run = (fun () -> Atomic.incr runs; c.run ()) })
        in
        let r = Tuner.Search.run ~jobs:1 ~app_name:"synthetic" cands in
        check_i "one run per valid candidate" r.space_size (Atomic.get runs);
        (* The subset's times come from the cache, so summing them can
           never double-count. *)
        check_b "selected <= full" true (r.selected_eval_time <= r.full_eval_time));
    t "measurement cache miss raises instead of silently re-measuring" (fun () ->
        let a = fake ~desc:"a" ~instr:100.0 ~regions:10.0 ~time:1.0 in
        let b = fake ~desc:"b" ~instr:200.0 ~regions:20.0 ~time:2.0 in
        let engine = Tuner.Measure.create ~app_name:"synthetic" () in
        ignore (Tuner.Measure.measure_all ~jobs:1 engine [ a ]);
        check_b "hit" true (Tuner.Measure.time_exn engine a = 1.0);
        check_b "miss is an error" true
          (match Tuner.Measure.time_exn engine b with
          | (_ : float) -> false
          | exception Invalid_argument _ -> true);
        check_i "only one run happened" 1 (Tuner.Measure.runs engine));
    t "measure_all memoizes across calls and within a batch" (fun () ->
        let runs = Atomic.make 0 in
        let c =
          let c0 = fake ~desc:"dup" ~instr:100.0 ~regions:10.0 ~time:3.0 in
          { c0 with run = (fun () -> Atomic.incr runs; 3.0) }
        in
        let engine = Tuner.Measure.create ~app_name:"synthetic" () in
        let m1 = Tuner.Measure.measure_all ~jobs:2 engine [ c; c; c ] in
        let m2 = Tuner.Measure.measure_all ~jobs:2 engine [ c ] in
        check_i "one simulator run" 1 (Atomic.get runs);
        check_i "batch length preserved" 3 (List.length m1);
        check_b "same cached value" true
          (List.for_all (fun (m : Tuner.Search.measured) -> m.time_s = 3.0) (m1 @ m2)));
    ts "parallel search is deterministic: jobs:1 = jobs:4 on the SAD space" (fun () ->
        (* The hard requirement behind ~jobs: parallel and sequential
           runs must produce identical result records.  A reduced SAD
           problem keeps the space's full 648-configuration structure
           while staying test-sized. *)
        let cands = Apps.Sad.candidates ~w:32 ~h:16 ~sr:2 ~max_blocks:2 () in
        let r1 = Tuner.Search.run ~jobs:1 ~app_name:"sad-small" cands in
        let r4 = Tuner.Search.run ~jobs:4 ~app_name:"sad-small" cands in
        let descs ms = List.map (fun (m : Tuner.Search.measured) -> m.cand.desc) ms in
        let times ms = List.map (fun (m : Tuner.Search.measured) -> m.time_s) ms in
        let sel_descs sel = List.map (fun ((c : Tuner.Candidate.t), _) -> c.desc) sel in
        check_i "space_size" r1.space_size r4.space_size;
        check_i "invalid" r1.invalid r4.invalid;
        check_b "exhaustive order and times" true
          (descs r1.exhaustive = descs r4.exhaustive && times r1.exhaustive = times r4.exhaustive);
        check_b "best" true
          (r1.best.cand.desc = r4.best.cand.desc && r1.best.time_s = r4.best.time_s);
        check_b "full_eval_time" true (r1.full_eval_time = r4.full_eval_time);
        check_b "selected set and order" true (sel_descs r1.selected = sel_descs r4.selected);
        check_b "selected measurements (cached)" true
          (descs r1.selected_measured = descs r4.selected_measured
          && times r1.selected_measured = times r4.selected_measured);
        check_b "selected_best" true
          (r1.selected_best.cand.desc = r4.selected_best.cand.desc
          && r1.selected_best.time_s = r4.selected_best.time_s);
        check_b "selected_eval_time" true (r1.selected_eval_time = r4.selected_eval_time);
        check_b "reduction" true (r1.reduction = r4.reduction);
        check_b "optimum flags" true
          (r1.optimum_selected = r4.optimum_selected && r1.optimum_exact = r4.optimum_exact);
        (* And the pruned-only driver agrees with itself, too. *)
        let b1, s1 = Tuner.Search.tune ~jobs:1 ~app_name:"sad-small" cands in
        let b4, s4 = Tuner.Search.tune ~jobs:4 ~app_name:"sad-small" cands in
        check_b "tune best" true (b1.cand.desc = b4.cand.desc && b1.time_s = b4.time_s);
        check_b "tune selection" true (sel_descs s1 = sel_descs s4));
    t "candidate validity mirrors the paper's failure modes" (fun () ->
        let with_smem words =
          Tuner.Candidate.make ~desc:"s" ~params:[]
            ~kernel:
              (Ptx.Prog.make ~name:"d" ~params:[] ~smem_words:words ~lmem_words:0
                 [ Ptx.Prog.block "a" [] Ptx.Prog.Ret ])
            ~threads_per_block:64 ~threads_total:64
            ~run:(fun () -> 0.0)
            ()
        in
        check_b "smem overflow invalid" false (with_smem 5000).valid;
        check_b "modest smem valid" true (with_smem 100).valid);
  ]

(* ------------------------------------------------------------------ *)
(* Report rendering                                                    *)
(* ------------------------------------------------------------------ *)

let report_tests =
  [
    t "table aligns columns" (fun () ->
        let s = Tuner.Report.table [ "a"; "bb" ] [ [ "xxx"; "y" ]; [ "z"; "wwww" ] ] in
        let lines = String.split_on_char '\n' s in
        let widths = List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines in
        check_b "equal widths" true (List.length (List.sort_uniq compare widths) = 1));
    t "scatter marks frontier and optimum distinctly" (fun () ->
        let s =
          Tuner.Report.scatter
            [ (0.1, 0.9, Tuner.Report.Dot); (0.9, 0.1, Front); (0.99, 0.99, Best) ]
        in
        check_b "has dot" true (String.contains s '.');
        check_b "has front" true (String.contains s 'o');
        check_b "has best" true (String.contains s '*'));
    t "series plot renders without data loss at the edges" (fun () ->
        let s =
          Tuner.Report.series_plot ~x_name:"x" ~y_name:"y"
            [ ("s", [ (0.0, 0.0); (1.0, 1.0) ]) ]
        in
        check_b "nonempty" true (String.length s > 0));
    t "series plot copes with empty input" (fun () ->
        check_b "no data" true
          (Tuner.Report.series_plot ~x_name:"x" ~y_name:"y" [] = "(no data)\n"));
  ]

let suite =
  [
    ("tuner.metrics", metrics_tests);
    ("tuner.pareto", pareto_tests);
    ("tuner.search", search_tests);
    ("tuner.report", report_tests);
  ]
