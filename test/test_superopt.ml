(* Superoptimizer battery: the equivalence funnel (including the two
   miscompilations PR 1 fixed, pinned here as counterexamples the
   funnel must reproduce), window canonicalization, rule-database
   determinism and soundness under fresh random vectors, peephole
   application with translation validation, the golden-digest guarantee
   that the verified pass is a no-op on already-optimized kernels, the
   store's blob records, and the dead-store lint. *)

module W = Ptx.Window
module E = Ptx.Equiv
module P = Ptx.Patterns
module Ph = Ptx.Peephole
module So = Tuner.Superopt
open Ptx.Instr

let t name f = Alcotest.test_case name `Quick f
let qt = QCheck_alcotest.to_alcotest
let f32 i = Ptx.Reg.make Ptx.Reg.F32 i
let s32 i = Ptx.Reg.make Ptx.Reg.S32 i
let pred i = Ptx.Reg.make Ptx.Reg.Pred i

let check_verdict name expected got =
  let show = function
    | E.Equivalent tier -> "equivalent/" ^ E.tier_name tier
    | E.Refuted (tier, cx) ->
      Printf.sprintf "refuted/%s (%s)" (E.tier_name tier) (E.counterexample_to_string cx)
    | E.Unsupported r -> "unsupported: " ^ r
  in
  let tag v = match v with
    | E.Equivalent _ -> "equivalent"
    | E.Refuted _ -> "refuted"
    | E.Unsupported _ -> "unsupported"
  in
  if tag got <> expected then
    Alcotest.failf "%s: expected %s, got %s" name expected (show got)

(* The shared full rule database (discovered once; ~2s). *)
let db = lazy (So.discover ~jobs:1 ())

(* ------------------------------------------------------------------ *)
(* PR 1's miscompilations as funnel counterexamples                    *)
(* ------------------------------------------------------------------ *)

let counterexample_tests =
  [
    t "signed-zero fold: x + 0.0 -> x is refuted (PR 1 bug #1)" (fun () ->
        (* The original simplify folded [x + (+0.0)] to [x]; at
           x = -0.0 the sum is +0.0, not -0.0.  The funnel must find
           this in its quick tier — -0.0 is a fixed vector. *)
        let lhs = [ F2 (FAdd, f32 1, Reg (f32 0), Imm_f 0.0) ] in
        let rhs = [ Mov (f32 1, Reg (f32 0)) ] in
        (match E.check lhs rhs with
        | E.Refuted (E.Quick, cx) ->
          (* The counterexample is the signed zero itself. *)
          Alcotest.(check bool) "refuting input is -0.0" true
            (List.exists
               (fun (_, v) ->
                 match v with
                 | E.VF x -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float (-0.0))
                 | _ -> false)
               cx.E.cx_assign)
        | v -> check_verdict "x + 0.0 -> x" "refuted" v);
        (* The guarded fold PR 1 replaced it with is verified. *)
        check_verdict "x + -0.0 -> x" "equivalent"
          (E.check [ F2 (FAdd, f32 1, Reg (f32 0), Imm_f (-0.0)) ] rhs);
        check_verdict "x - 0.0 -> x" "equivalent"
          (E.check [ F2 (FSub, f32 1, Reg (f32 0), Imm_f 0.0) ] rhs);
        check_verdict "x - -0.0 -> x" "refuted"
          (E.check [ F2 (FSub, f32 1, Reg (f32 0), Imm_f (-0.0)) ] rhs));
    t "CSE self-clobbered key: d = d+d; e = d+d => e = d is refuted (PR 1 bug #2)" (fun () ->
        (* The original CSE recorded [d+d -> d] even when the
           instruction redefined its own key's operand, then "reused"
           the stale value: with d0 the input, the second d+d is 4*d0,
           not the redefined d (2*d0). *)
        let lhs =
          [
            F2 (FAdd, f32 0, Reg (f32 0), Reg (f32 0));
            F2 (FAdd, f32 1, Reg (f32 0), Reg (f32 0));
          ]
        in
        let rhs =
          [ F2 (FAdd, f32 0, Reg (f32 0), Reg (f32 0)); Mov (f32 1, Reg (f32 0)) ]
        in
        check_verdict "self-clobbered CSE reuse" "refuted" (E.check lhs rhs);
        (* And no rule with this shape can be in the database. *)
        let bad_lhs_key = W.key (W.canonicalize lhs) in
        List.iter
          (fun (r : P.rule) ->
            if W.key r.P.lhs = bad_lhs_key then
              Alcotest.(check bool)
                "any rule on d=d+d; e=d+d must not reduce e to a copy of d" false
                (W.equal_seq r.P.rhs (W.canonicalize rhs)))
          (Lazy.force db).So.rules);
  ]

(* ------------------------------------------------------------------ *)
(* The funnel's tiers                                                  *)
(* ------------------------------------------------------------------ *)

let funnel_tests =
  [
    t "predicate windows are decided exhaustively" (fun () ->
        match E.check [ P2 (PAnd, pred 1, Reg (pred 0), Reg (pred 0)) ]
                [ Mov (pred 1, Reg (pred 0)) ]
        with
        | E.Equivalent E.Exhaustive -> ()
        | v -> check_verdict "p && p -> p" "equivalent-exhaustive" v);
    t "closed windows are decided exhaustively" (fun () ->
        match E.check [ F2 (FAdd, f32 0, Imm_f 1.0, Imm_f 1.0) ] [ Mov (f32 0, Imm_f 2.0) ] with
        | E.Equivalent E.Exhaustive -> ()
        | v -> check_verdict "1+1 -> 2" "equivalent-exhaustive" v);
    t "float identities survive only as bounded claims" (fun () ->
        match E.check [ F2 (FMul, f32 1, Reg (f32 0), Imm_f 1.0) ] [ Mov (f32 1, Reg (f32 0)) ] with
        | E.Equivalent E.Bounded -> ()
        | v -> check_verdict "x*1 -> x" "equivalent-bounded" v);
    t "division by zero follows the simulator (0)" (fun () ->
        check_verdict "x/0 -> 0" "equivalent"
          (E.check [ I2 (IDiv, s32 1, Reg (s32 0), Imm_i 0) ] [ Mov (s32 1, Imm_i 0) ]));
    t "x*2 = x+x for f32 (bounded), but x*x != x+x" (fun () ->
        check_verdict "x*2 -> x+x" "equivalent"
          (E.check
             [ F2 (FMul, f32 1, Reg (f32 0), Imm_f 2.0) ]
             [ F2 (FAdd, f32 1, Reg (f32 0), Reg (f32 0)) ]);
        check_verdict "x*x -> x+x" "refuted"
          (E.check
             [ F2 (FMul, f32 1, Reg (f32 0), Reg (f32 0)) ]
             [ F2 (FAdd, f32 1, Reg (f32 0), Reg (f32 0)) ]));
    t "NaN payloads separate mad from mul+add only via rounding" (fun () ->
        (* fmad is unfused in the sim (round after the product), so
           mul-then-add IS mad; check the funnel agrees both ways. *)
        check_verdict "mad a,b,c ~ mul;add" "equivalent"
          (E.check
             [ Fmad (f32 3, Reg (f32 0), Reg (f32 1), Reg (f32 2)) ]
             [ F2 (FMul, f32 9, Reg (f32 0), Reg (f32 1));
               F2 (FAdd, f32 3, Reg (f32 9), Reg (f32 2)) ]
           |> function
           | E.Unsupported _ ->
             (* rhs defines f9 outside the lhs window: correctly
                unsupported as a *rule*; check the reverse direction. *)
             E.check
               [ F2 (FMul, f32 9, Reg (f32 0), Reg (f32 1));
                 F2 (FAdd, f32 3, Reg (f32 9), Reg (f32 2)) ]
               [ Fmad (f32 3, Reg (f32 0), Reg (f32 1), Reg (f32 2)) ]
           | v -> v));
    t "replacements reading new registers are unsupported" (fun () ->
        check_verdict "rhs reads outside window" "unsupported"
          (E.check [ Mov (f32 1, Imm_f 0.0) ] [ Mov (f32 1, Reg (f32 5)) ]));
    t "impure windows are unsupported" (fun () ->
        check_verdict "loads are not windows" "unsupported"
          (E.check
             [ Ld (Global, f32 0, { base = Reg (s32 0); offset = 0 }) ]
             [ Mov (f32 0, Imm_f 0.0) ]));
  ]

(* ------------------------------------------------------------------ *)
(* Window canonicalization                                             *)
(* ------------------------------------------------------------------ *)

let window_tests =
  [
    t "enumerated windows are canonical and unique" (fun () ->
        let ws = W.enumerate ~len:1 () @ W.enumerate ~vocab:W.pair_vocab ~len:2 () in
        Alcotest.(check bool) "nonempty" true (List.length ws > 500);
        List.iter
          (fun w -> Alcotest.(check bool) (W.key w ^ " canonical") true (W.is_canonical w))
          ws;
        let keys = List.map W.key ws in
        Alcotest.(check int) "no duplicates" (List.length keys)
          (List.length (List.sort_uniq compare keys)));
    qt
      (QCheck.Test.make ~name:"canonicalize is invariant under renaming (qcheck)" ~count:200
         QCheck.(int_range 0 1_000_000)
         (fun seed ->
           let ws = W.enumerate ~vocab:W.pair_vocab ~len:2 () in
           let w = List.nth ws (seed mod List.length ws) in
           (* Rename registers through an injective map and re-canonicalize. *)
           let shift = 1 + (seed mod 40) in
           let renamed =
             List.map
               (map_regs (fun r -> Ptx.Reg.make (Ptx.Reg.ty r) (Ptx.Reg.idx r + shift)))
               w
           in
           W.equal_seq (W.canonicalize renamed) w));
    t "renaming maps canonical windows back to concrete registers" (fun () ->
        let concrete =
          [ F2 (FAdd, f32 7, Reg (f32 3), Reg (f32 4)); F2 (FMul, f32 8, Reg (f32 7), Reg (f32 3)) ]
        in
        let canon = W.canonicalize concrete in
        let back =
          List.map
            (map_regs (fun r ->
                 match Ptx.Reg.Map.find_opt r (W.renaming concrete) with
                 | Some c -> c
                 | None -> r))
            canon
        in
        Alcotest.(check bool) "round trip" true (W.equal_seq back concrete));
  ]

(* ------------------------------------------------------------------ *)
(* The rule database                                                   *)
(* ------------------------------------------------------------------ *)

let eval_outputs (assign : (Ptx.Reg.t * E.value) list) (seq : t list) (outs : Ptx.Reg.t list) :
    E.value list =
  let c = E.make_ctx assign in
  E.run_seq c seq;
  List.map (E.reg_value c) outs

let db_tests =
  [
    t "bounded discovery harvests a usable database" (fun () ->
        let r = Lazy.force db in
        Alcotest.(check bool)
          (Printf.sprintf "%d rules >= 10" (List.length r.So.rules))
          true
          (List.length r.So.rules >= 10);
        (* Machine-checked equivalents of the hand-written Ptx.Opt
           folds are present... *)
        let has lhs rhs =
          List.exists
            (fun (ru : P.rule) -> W.key ru.P.lhs = lhs && W.key ru.P.rhs = rhs)
            r.So.rules
        in
        Alcotest.(check bool) "iadd identity" true
          (has "add.s32 %r1, %r0, 0;" "mov.s32 %r1, %r0;");
        Alcotest.(check bool) "fmul identity" true
          (has "mul.f32 %f1, %f0, 1.0;" "mov.f32 %f1, %f0;");
        Alcotest.(check bool) "guarded signed-zero identity" true
          (has "add.f32 %f1, %f0, -0.0;" "mov.f32 %f1, %f0;");
        Alcotest.(check bool) "imad a,1,0 identity" true
          (has "mad.s32 %r1, %r0, 1, 0;" "mov.s32 %r1, %r0;");
        (* ...and the unsound +0.0 fold is not. *)
        Alcotest.(check bool) "no unsound +0.0 fold" false
          (List.exists
             (fun (ru : P.rule) -> W.key ru.P.lhs = "add.f32 %f1, %f0, 0.0;")
             r.So.rules);
        (* Every rule is wellformed and carries a nonnegative win. *)
        List.iter
          (fun (ru : P.rule) ->
            Alcotest.(check bool) (P.to_line ru ^ " wellformed") true (P.wellformed ru))
          r.So.rules);
    t "database is bit-identical for jobs 1 vs jobs 4" (fun () ->
        (* Single-instruction windows keep this subsecond; the pool
           split is the same code path the full run uses. *)
        let a = So.discover ~jobs:1 ~max_len:1 () in
        let b = So.discover ~jobs:4 ~max_len:1 () in
        Alcotest.(check string) "serialized DBs equal" (P.to_string a.So.rules)
          (P.to_string b.So.rules);
        Alcotest.(check string) "digests equal" (P.digest a.So.rules) (P.digest b.So.rules));
    t "database round-trips through its text form" (fun () ->
        let rules = (Lazy.force db).So.rules in
        let reloaded = P.of_string (P.to_string rules) in
        Alcotest.(check int) "same cardinality" (List.length rules) (List.length reloaded);
        List.iter2
          (fun a b -> Alcotest.(check bool) (P.to_line a ^ " round-trips") true (P.equal_rule a b))
          rules reloaded;
        (* Corrupt lines are dropped, not misread. *)
        Alcotest.(check int) "garbage rejected" 0
          (List.length (P.of_string "p quick 4 garbage => more garbage\nnot a rule\n")));
    qt
      (QCheck.Test.make
         ~name:"soundness: no database rule is refutable by fresh random vectors (qcheck)"
         ~count:500
         QCheck.(int_range 0 1_000_000_000)
         (fun seed ->
           (* Fresh vectors, independent of the funnel's seeds: pick a
              rule and an input assignment from the QCheck seed and
              demand bitwise agreement on the rule's outputs. *)
           let rules = (Lazy.force db).So.rules in
           let r = List.nth rules (seed mod List.length rules) in
           let rng = Util.Rng.create seed in
           let assign =
             List.map (fun reg -> (reg, E.random_value rng (Ptx.Reg.ty reg))) (W.inputs r.P.lhs)
           in
           let outs = P.outputs r in
           List.for_all2 E.equal_value
             (eval_outputs assign r.P.lhs outs)
             (eval_outputs assign r.P.rhs outs)));
  ]

(* ------------------------------------------------------------------ *)
(* Peephole application and translation validation                     *)
(* ------------------------------------------------------------------ *)

let lowered_of (app : string) : Ptx.Prog.t * Tuner.Pipeline.compiled =
  let e = Option.get (Apps.Registry.find app) in
  match e.workbench () with
  | Error m -> Alcotest.fail m
  | Ok wb -> (Kir.Lower.lower wb.Apps.Workbench.wb_kernel, wb.Apps.Workbench.wb_compiled)

let apply_tests =
  [
    t "peephole rewrites matmul's raw lowering and validates" (fun () ->
        let rules = (Lazy.force db).So.rules in
        let before, _ = lowered_of "matmul" in
        let after, st = Ph.run_stats rules before in
        Alcotest.(check bool) "at least one window rewritten" true (st.Ph.matched >= 1);
        (match Ptx.Verify.check after with
        | Ok () -> ()
        | Error vs -> Alcotest.fail (Ptx.Verify.report vs));
        match E.validate before after with
        | Ok _ -> ()
        | Error m -> Alcotest.fail (E.mismatch_to_string m));
    t "peephole blocks rewrites whose clobbered register is live" (fun () ->
        (* d = a+a; e = d*d reduces the pair only if d is dead after;
           here d is stored afterwards, so the site must be skipped. *)
        let rule =
          {
            P.lhs =
              W.canonicalize
                [ F2 (FAdd, f32 1, Reg (f32 0), Reg (f32 0));
                  F2 (FMul, f32 2, Reg (f32 1), Reg (f32 1)) ];
            rhs = [];
            tier = E.Bounded;
            saved = 4;
          }
        in
        (* Build the rhs in the rule's canonical register names: the
           canonical lhs is add f1,f0,f0; mul f2,f1,f1 — replace with
           mul f9... keep it simple: rhs = the canonical mul of a
           doubled input computed with one mad. *)
        let canon = rule.P.lhs in
        let d_final = List.nth (W.defs canon) 1 in
        let input = List.hd (W.inputs canon) in
        let rule =
          { rule with P.rhs = [ Fmad (d_final, Reg input, Reg input, Reg input) ] }
        in
        (* (2a)*(2a) = 4a^2 vs mad a,a,a = a^2+a: NOT equivalent — this
           synthetic rule is deliberately wrong algebra, but the point
           here is liveness blocking, so bypass the funnel and check
           the application layer refuses when the clobber is live. *)
        let k =
          Ptx.Parser.kernel_of_string
            ".kernel t (.param .gbuf Out)\n.smem 0 .lmem 0\n{\nB0: .weight 1\n\
             add.f32 %f1, %f0, %f0;\nmul.f32 %f2, %f1, %f1;\n\
             st.global.f32 [$Out], %f1;\nst.global.f32 [$Out+4], %f2;\nret;\n}\n"
        in
        let k', st = Ph.run_stats [ rule ] k in
        Alcotest.(check int) "no rewrite fired" 0 st.Ph.matched;
        Alcotest.(check int) "the site was blocked by liveness" 1 st.Ph.blocked;
        Alcotest.(check string) "kernel unchanged" (Ptx.Pp.kernel k) (Ptx.Pp.kernel k'));
    t "Equiv.validate passes the existing Ptx.Opt pipeline on every app" (fun () ->
        List.iter
          (fun (e : Apps.Registry.entry) ->
            let lowered, _ = lowered_of e.name in
            let optimized = Ptx.Opt.run lowered in
            match E.validate lowered optimized with
            | Ok _ -> ()
            | Error m -> Alcotest.failf "%s: %s" e.name (E.mismatch_to_string m))
          Apps.Registry.all);
    t "Equiv.validate catches a dropped store and a wrong constant" (fun () ->
        let k s =
          Ptx.Parser.kernel_of_string
            (Printf.sprintf ".kernel t (.param .gbuf Out)\n.smem 0 .lmem 0\n{\nB0: .weight 1\n%sret;\n}\n" s)
        in
        let orig = k "mov.f32 %f0, 1.0;\nst.global.f32 [$Out], %f0;\n" in
        let wrong = k "mov.f32 %f0, 2.0;\nst.global.f32 [$Out], %f0;\n" in
        let dropped = k "mov.f32 %f0, 1.0;\n" in
        (match E.validate orig wrong with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "wrong constant not caught");
        match E.validate orig dropped with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "dropped store not caught");
    t "golden digests: appending the peephole pass changes no app candidate" (fun () ->
        (* The satellite guarantee: on already-optimized kernels the
           verified pass is an identity, so every golden digest (stores,
           checkpoints, sim goldens) is untouched by --rules. *)
        let rules = (Lazy.force db).So.rules in
        let extra = [ Tuner.Pipeline.peephole rules ] in
        List.iter
          (fun (e : Apps.Registry.entry) ->
            let plain = e.quick_candidates () in
            let with_rules = e.quick_candidates ~extra_ptx:extra () in
            List.iter2
              (fun (a : Tuner.Candidate.t) (b : Tuner.Candidate.t) ->
                Alcotest.(check string)
                  (Printf.sprintf "%s %s unchanged" e.name a.desc)
                  (Ptx.Pp.kernel a.kernel) (Ptx.Pp.kernel b.kernel))
              plain with_rules)
          Apps.Registry.all);
  ]

(* ------------------------------------------------------------------ *)
(* Store blobs and the cached database                                 *)
(* ------------------------------------------------------------------ *)

let with_tmp (f : string -> 'a) : 'a =
  let file = Filename.temp_file "gpuopt-superopt-test-" ".store" in
  Fun.protect ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ()) (fun () -> f file)

let store_tests =
  [
    t "blobs round-trip through the store file (newlines included)" (fun () ->
        with_tmp (fun file ->
            let key = Digest.to_hex (Digest.string "blob-test") in
            let content = "line one\nline two \"quoted\"\n\tlast" in
            let s = Tuner.Store.open_ ~file () in
            Tuner.Store.put_blob s ~key ~name:"test-blob" content;
            Alcotest.(check (option string)) "readback" (Some content)
              (Tuner.Store.get_blob s key);
            Alcotest.(check (option string)) "measurement view of a blob key" None
              (Option.map (fun _ -> "meas") (Tuner.Store.get s key));
            Tuner.Store.close s;
            let s2 = Tuner.Store.open_ ~file () in
            Alcotest.(check int) "no corrupt lines" 0
              (List.length (Tuner.Store.corrupt_entries s2));
            Alcotest.(check (option string)) "readback after reopen" (Some content)
              (Tuner.Store.get_blob s2 key);
            Tuner.Store.close s2));
    t "discover_cached reuses the stored database bit-for-bit" (fun () ->
        with_tmp (fun file ->
            let s = Tuner.Store.open_ ~file () in
            let cold = So.discover_cached ~store:s ~jobs:1 ~max_len:1 () in
            Alcotest.(check bool) "cold run not cached" false cold.So.cached;
            let warm = So.discover_cached ~store:s ~jobs:1 ~max_len:1 () in
            Alcotest.(check bool) "warm run cached" true warm.So.cached;
            Alcotest.(check string) "identical database" (P.to_string cold.So.rules)
              (P.to_string warm.So.rules);
            Tuner.Store.close s));
    t "database keys separate arch, semantics and bounds" (fun () ->
        let base = So.db_key () in
        Alcotest.(check bool) "arch changes the key" true
          (base <> So.db_key ~arch:(List.nth Gpu.Arch.archs 1) ());
        Alcotest.(check bool) "bounds change the key" true (base <> So.db_key ~max_len:1 ());
        Alcotest.(check bool) "sweep changes the key" true (base <> So.db_key ~sweep:64 ()));
  ]

(* ------------------------------------------------------------------ *)
(* Dead-store lint                                                     *)
(* ------------------------------------------------------------------ *)

let lint_tests =
  [
    t "dead_defs flags dead results and dead loads, spares live code" (fun () ->
        let k =
          Ptx.Parser.kernel_of_string
            ".kernel t (.param .gbuf Out)\n.smem 0 .lmem 0\n{\nB0: .weight 1\n\
             mov.f32 %f0, 1.0;\nadd.f32 %f1, %f0, %f0;\n\
             mul.f32 %f2, %f0, %f0;\nld.global.f32 %f3, [$Out];\n\
             st.global.f32 [$Out], %f1;\nret;\n}\n"
        in
        let dead = Ptx.Liveness.dead_defs k in
        let dead_regs =
          List.filter_map (fun (_, _, i) -> Option.map Ptx.Reg.to_string (def i)) dead
        in
        Alcotest.(check (list string)) "f2 (unused mul) and f3 (unused load)"
          [ "%f2"; "%f3" ] dead_regs);
    t "optimized app kernels have no dead stores" (fun () ->
        List.iter
          (fun (e : Apps.Registry.entry) ->
            let _, compiled = lowered_of e.name in
            Alcotest.(check int)
              (e.name ^ " optimized kernel clean")
              0
              (List.length (Ptx.Liveness.dead_defs compiled.Tuner.Pipeline.ptx)))
          Apps.Registry.all);
  ]

let suite =
  [
    ("superopt counterexamples", counterexample_tests);
    ("superopt funnel", funnel_tests);
    ("superopt windows", window_tests);
    ("superopt db", db_tests);
    ("superopt apply", apply_tests);
    ("superopt store", store_tests);
    ("superopt lint", lint_tests);
  ]
