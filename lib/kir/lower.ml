(* Lowering KIR to the PTX-like ISA.

   Expression-level codegen with mad fusion and [reg+imm] addressing
   (constant components of array indices fold into the memory operand's
   byte offset, so unrolled bodies share one base-address computation —
   the behaviour the paper highlights when reading -ptx dumps).

   Structured control flow maps to blocks with explicit reconvergence
   labels for the SIMT stack; every block carries its expected
   executions per thread (the [weight]), computed from static loop trip
   counts, which is what makes the paper's metrics computable without
   manual annotation. *)

open Ast
module I = Ptx.Instr
module R = Ptx.Reg

exception Lower_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Lower_error s)) fmt

let ptx_ty = function F32 -> R.F32 | S32 -> R.S32 | Bool -> R.Pred

let spec_to_ptx = function
  | TidX -> I.Tid_x
  | TidY -> I.Tid_y
  | BidX -> I.Ctaid_x
  | BidY -> I.Ctaid_y
  | BdimX -> I.Ntid_x
  | BdimY -> I.Ntid_y
  | GdimX -> I.Nctaid_x
  | GdimY -> I.Nctaid_y

(* A memory-access site: one KIR array load or store, identified by the
   position of the Ld/St instruction it lowered to.  The static
   analyzer ([Analysis]) re-walks the KIR in lowering order to pair
   each site with an affine index form, and the simulator's per-site
   dynamic counters are keyed by the same (label, index), so static
   predictions and dynamic counts can be diffed per site. *)
type site = {
  sid : int;  (* 0-based, in emission order *)
  s_array : string;
  s_space : I.space;
  s_kind : [ `Load | `Store ];
  s_label : string;  (* PTX block label the access lowered into *)
  s_index : int;  (* instruction index within that block's body *)
}

type st = {
  gen : R.Gen.t;
  tenv : Typecheck.env;  (* for expression typing during lowering *)
  regs : (string, R.t) Hashtbl.t;  (* variable -> register *)
  arrays : (string, I.space * I.operand (* base *)) Hashtbl.t;
  mutable label_counter : int;
  mutable cur_label : string;
  mutable cur_weight : float;
  mutable cur_body : I.t list;  (* reversed *)
  mutable done_blocks : Ptx.Prog.block list;  (* reversed *)
  mutable sites : site list;  (* reversed *)
  mutable next_sid : int;
}

let fresh_label st prefix =
  let n = st.label_counter in
  st.label_counter <- n + 1;
  Printf.sprintf "%s%d" prefix n

let emit st i = st.cur_body <- i :: st.cur_body

let finish st (term : Ptx.Prog.term) =
  st.done_blocks <-
    Ptx.Prog.
      { label = st.cur_label; weight = st.cur_weight; body = List.rev st.cur_body; term }
    :: st.done_blocks

let start st label weight =
  st.cur_label <- label;
  st.cur_weight <- weight;
  st.cur_body <- []

(* Must be called immediately before [emit]ing the Ld/St so the
   recorded instruction index matches the instruction's final position
   in the (unoptimized) block body. *)
let record_site st arr space kind =
  let s =
    {
      sid = st.next_sid;
      s_array = arr;
      s_space = space;
      s_kind = kind;
      s_label = st.cur_label;
      s_index = List.length st.cur_body;
    }
  in
  st.next_sid <- st.next_sid + 1;
  st.sites <- s :: st.sites

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let type_of st e = Typecheck.type_of_expr st.tenv e

let fop2_of = function
  | Add -> I.FAdd
  | Sub -> I.FSub
  | Mul -> I.FMul
  | Div -> I.FDiv
  | Min -> I.FMin
  | Max -> I.FMax
  | _ -> fail "not a float arithmetic operator"

let iop2_of = function
  | Add -> I.IAdd
  | Sub -> I.ISub
  | Mul -> I.IMul
  | Div -> I.IDiv
  | Rem -> I.IRem
  | Min -> I.IMin
  | Max -> I.IMax
  | And -> I.IAnd
  | Or -> I.IOr
  | Xor -> I.IXor
  | Shl -> I.IShl
  | Shr -> I.IShr
  | _ -> fail "not an integer operator"

let cmp_of = function
  | Eq -> I.CEq
  | Ne -> I.CNe
  | Lt -> I.CLt
  | Le -> I.CLe
  | Gt -> I.CGt
  | Ge -> I.CGe
  | _ -> fail "not a comparison"

let is_cmp = function Eq | Ne | Lt | Le | Gt | Ge -> true | _ -> false

(* Split an integer index expression into (dynamic part, constant
   addend); the constant becomes the memory operand's byte offset. *)
let rec split_const (e : expr) : expr option * int =
  match e with
  | Int c -> (None, c)
  | Bin (Add, a, b) -> (
    let da, ca = split_const a and db, cb = split_const b in
    match (da, db) with
    | None, d | d, None -> (d, ca + cb)
    | Some da', Some db' -> (Some (Bin (Add, da', db')), ca + cb))
  | Bin (Sub, a, Int c) ->
    let da, ca = split_const a in
    (da, ca - c)
  | _ -> (Some e, 0)

(* Lower an expression to an operand, emitting instructions as
   needed.  [into] forces the result into that register (used for
   bindings and assignments, enabling single-instruction accumulator
   updates like mad f_sum, a, b, f_sum). *)
let rec lower_expr ?into (st : st) (e : expr) : I.operand =
  let ty = type_of st e in
  let result (op : I.operand) : I.operand =
    match into with
    | None -> op
    | Some d ->
      emit st (I.Mov (d, op));
      I.Reg d
  in
  let dest () : R.t =
    match into with Some d -> d | None -> R.Gen.fresh st.gen (ptx_ty ty)
  in
  match e with
  | Int n -> result (I.Imm_i n)
  | Flt x -> result (I.Imm_f x)
  | Bool b -> result (I.Imm_i (if b then 1 else 0))
  | Var x -> (
    match Hashtbl.find_opt st.regs x with
    | Some r -> result (I.Reg r)
    | None -> fail "lower: unbound variable %S" x)
  | Param p -> result (I.Par p)
  | Special s -> result (I.Spec (spec_to_ptx s))
  | Select (c, a, b) ->
    let pc = lower_expr st c in
    let oa = lower_expr st a in
    let ob = lower_expr st b in
    let d = dest () in
    emit st (I.Selp (d, oa, ob, pc));
    I.Reg d
  | Un (op, a) -> (
    match op with
    | ToF ->
      let oa = lower_expr st a in
      let d = dest () in
      emit st (I.Cvt_i2f (d, oa));
      I.Reg d
    | ToI ->
      let oa = lower_expr st a in
      let d = dest () in
      emit st (I.Cvt_f2i (d, oa));
      I.Reg d
    | Not ->
      let oa = lower_expr st a in
      let d = dest () in
      emit st (I.Pnot (d, oa));
      I.Reg d
    | Neg when ty = S32 ->
      let oa = lower_expr st a in
      let d = dest () in
      emit st (I.I2 (I.ISub, d, I.Imm_i 0, oa));
      I.Reg d
    | Abs when ty = S32 ->
      let oa = lower_expr st a in
      let neg = R.Gen.fresh st.gen R.S32 in
      emit st (I.I2 (I.ISub, neg, I.Imm_i 0, oa));
      let d = dest () in
      emit st (I.I2 (I.IMax, d, oa, I.Reg neg));
      I.Reg d
    | Neg | Abs | Sqrt | Rsqrt | Rcp | Sin | Cos ->
      let fop =
        match op with
        | Neg -> I.FNeg
        | Abs -> I.FAbs
        | Sqrt -> I.FSqrt
        | Rsqrt -> I.FRsqrt
        | Rcp -> I.FRcp
        | Sin -> I.FSin
        | Cos -> I.FCos
        | _ -> assert false
      in
      let oa = lower_expr st a in
      let d = dest () in
      emit st (I.F1 (fop, d, oa));
      I.Reg d)
  | Bin (op, a, b) when is_cmp op ->
    let ta = type_of st a in
    let oa = lower_expr st a in
    let ob = lower_expr st b in
    let d = dest () in
    emit st (I.Setp (cmp_of op, ptx_ty ta, d, oa, ob));
    I.Reg d
  | Bin (LAnd, a, b) ->
    let oa = lower_expr st a in
    let ob = lower_expr st b in
    let d = dest () in
    emit st (I.P2 (I.PAnd, d, oa, ob));
    I.Reg d
  | Bin (LOr, a, b) ->
    let oa = lower_expr st a in
    let ob = lower_expr st b in
    let d = dest () in
    emit st (I.P2 (I.POr, d, oa, ob));
    I.Reg d
  | Bin (Add, Bin (Mul, ma, mb), c) | Bin (Add, c, Bin (Mul, ma, mb)) ->
    (* mad fusion *)
    let oma = lower_expr st ma in
    let omb = lower_expr st mb in
    let oc = lower_expr st c in
    let d = dest () in
    emit st (if ty = F32 then I.Fmad (d, oma, omb, oc) else I.Imad (d, oma, omb, oc));
    I.Reg d
  | Bin (op, a, b) ->
    let oa = lower_expr st a in
    let ob = lower_expr st b in
    let d = dest () in
    emit st (if ty = F32 then I.F2 (fop2_of op, d, oa, ob) else I.I2 (iop2_of op, d, oa, ob));
    I.Reg d
  | Ld (arr, idx) ->
    let space, addr = lower_address st arr idx in
    let d = dest () in
    record_site st arr space `Load;
    emit st (I.Ld (space, d, addr));
    I.Reg d

(* Byte-address computation for array element [idx]:
   constant components fold into the operand offset; a dynamic
   component costs one mad.s32 (index*4 + base). *)
and lower_address (st : st) (arr : string) (idx : expr) : I.space * I.addr =
  let space, base =
    match Hashtbl.find_opt st.arrays arr with
    | Some sb -> sb
    | None -> fail "lower: unknown array %S" arr
  in
  let dyn, c = split_const idx in
  match dyn with
  | None -> (
    match base with
    | I.Imm_i b -> (space, { I.base = I.Imm_i (b + (4 * c)); offset = 0 })
    | _ -> (space, { I.base; offset = 4 * c }))
  | Some d ->
    let od = lower_expr st d in
    let r = R.Gen.fresh st.gen R.S32 in
    emit st (I.Imad (r, od, I.Imm_i 4, base));
    (space, { I.base = I.Reg r; offset = 4 * c })

(* Lower a boolean expression into a predicate *register* (terminators
   need one). *)
let lower_pred (st : st) (e : expr) : R.t =
  match lower_expr st e with
  | I.Reg r when R.ty r = R.Pred -> r
  | op ->
    let d = R.Gen.fresh st.gen R.Pred in
    emit st (I.Mov (d, op));
    d

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* Register the variable type in the lowering type-environment. *)
let declare st x ty mut = Hashtbl.replace st.tenv.Typecheck.vars x (ty, mut)

(* Lower a statement list within weight [w]; returns false if control
   cannot fall through (the list ended in Return). *)
let rec lower_stmts (st : st) (w : float) (ss : stmt list) : bool =
  match ss with
  | [] -> true
  | s :: rest -> (
    match s with
    | Let (x, ty, e) | Mut (x, ty, e) ->
      let d = R.Gen.fresh st.gen (ptx_ty ty) in
      Hashtbl.replace st.regs x d;
      declare st x ty (match s with Mut _ -> true | _ -> false);
      ignore (lower_expr ~into:d st e);
      lower_stmts st w rest
    | Assign (x, e) ->
      let d =
        match Hashtbl.find_opt st.regs x with
        | Some r -> r
        | None -> fail "lower: assignment to unbound %S" x
      in
      ignore (lower_expr ~into:d st e);
      lower_stmts st w rest
    | Store (arr, idx, value) ->
      let ov = lower_expr st value in
      let space, addr = lower_address st arr idx in
      record_site st arr space `Store;
      emit st (I.St (space, addr, ov));
      lower_stmts st w rest
    | Sync ->
      emit st I.Bar;
      lower_stmts st w rest
    | Return ->
      finish st Ptx.Prog.Ret;
      (* Anything after Return is unreachable; a fresh dead block keeps
         the structure well-formed if a generator ever emits such
         code. *)
      if rest <> [] then begin
        start st (fresh_label st "DEAD") 0.0;
        ignore (lower_stmts st 0.0 rest)
      end;
      false
    | If (c, t, e) ->
      let p = lower_pred st c in
      let l_then = fresh_label st "THEN" in
      let l_else = if e = [] then None else Some (fresh_label st "ELSE") in
      let l_end = fresh_label st "ENDIF" in
      let if_false = match l_else with Some l -> l | None -> l_end in
      finish st (Ptx.Prog.Br { pred = p; negate = false; if_true = l_then; if_false; reconv = l_end });
      start st l_then w;
      let t_falls = lower_stmts st w t in
      if t_falls then finish st (Ptx.Prog.Jump l_end);
      (match l_else with
      | Some l ->
        start st l w;
        let e_falls = lower_stmts st w e in
        if e_falls then finish st (Ptx.Prog.Jump l_end)
      | None -> ());
      start st l_end w;
      lower_stmts st w rest
    | For l ->
      let trip =
        match static_trip l with
        | Some t -> float_of_int t
        | None -> 1.0 (* metrics degrade gracefully; execution is exact *)
      in
      let step =
        match l.step with Int s -> s | _ -> fail "lower: loop step must be a literal"
      in
      (* Evaluate bounds in the preheader. *)
      let o_lo = lower_expr st l.lo in
      let o_hi = lower_expr st l.hi in
      (* Materialize a stable bound register if dynamic (an operand of
         Imm/Par kind is already stable). *)
      let r_i = R.Gen.fresh st.gen R.S32 in
      Hashtbl.replace st.regs l.var r_i;
      declare st l.var S32 true;
      emit st (I.Mov (r_i, o_lo));
      let l_hdr = fresh_label st "LOOP" in
      let l_body = fresh_label st "BODY" in
      let l_exit = fresh_label st "EXIT" in
      finish st (Ptx.Prog.Jump l_hdr);
      (* Header: executes trip+1 times per entry. *)
      start st l_hdr (w *. (trip +. 1.0));
      let p = R.Gen.fresh st.gen R.Pred in
      emit st (I.Setp (I.CLt, R.S32, p, I.Reg r_i, o_hi));
      finish st
        (Ptx.Prog.Br { pred = p; negate = false; if_true = l_body; if_false = l_exit; reconv = l_exit });
      start st l_body (w *. trip);
      let falls = lower_stmts st (w *. trip) l.body in
      if falls then begin
        emit st (I.I2 (I.IAdd, r_i, I.Reg r_i, I.Imm_i step));
        finish st (Ptx.Prog.Jump l_hdr)
      end;
      start st l_exit w;
      lower_stmts st w rest)

(* ------------------------------------------------------------------ *)
(* Kernel                                                              *)
(* ------------------------------------------------------------------ *)

(* Lower a KIR kernel to unoptimized PTX, also returning the table of
   memory-access sites in emission order.  The (label, index) keys are
   only valid against the *unoptimized* program returned here — the
   PTX optimizer may move or delete instructions. *)
let lower_with_sites (k : kernel) : Ptx.Prog.t * site list =
  Typecheck.check k;
  let tenv = Typecheck.env_of_kernel k in
  let st =
    {
      gen = R.Gen.create ();
      tenv;
      regs = Hashtbl.create 32;
      arrays = Hashtbl.create 8;
      label_counter = 0;
      cur_label = "ENTRY";
      cur_weight = 1.0;
      cur_body = [];
      done_blocks = [];
      sites = [];
      next_sid = 0;
    }
  in
  (* Array bases: parameters resolve at launch; shared/local arrays get
     a static layout. *)
  List.iter
    (fun (a : array_param) ->
      Hashtbl.replace st.arrays a.aname (space_to_ptx a.aspace, I.Par a.aname))
    k.array_params;
  let smem_words =
    List.fold_left
      (fun off (name, words) ->
        Hashtbl.replace st.arrays name (I.Shared, I.Imm_i (off * 4));
        off + words)
      0 k.shared_decls
  in
  let lmem_words =
    List.fold_left
      (fun off (name, words) ->
        Hashtbl.replace st.arrays name (I.Local, I.Imm_i (off * 4));
        off + words)
      0 k.local_decls
  in
  let falls = lower_stmts st 1.0 k.body in
  if falls then finish st Ptx.Prog.Ret;
  let params =
    List.map (fun (name, ty) ->
        Ptx.Prog.{ pname = name; pty = (match ty with F32 -> PF32 | S32 -> PS32 | Bool -> PS32) })
      k.scalar_params
    @ List.map
        (fun (a : array_param) -> Ptx.Prog.{ pname = a.aname; pty = PBuf (space_to_ptx a.aspace) })
        k.array_params
  in
  let prog =
    Ptx.Prog.validate
      (Ptx.Prog.make ~name:k.kname ~params ~smem_words ~lmem_words (List.rev st.done_blocks))
  in
  (prog, List.rev st.sites)

let lower (k : kernel) : Ptx.Prog.t = fst (lower_with_sites k)
