(* Deliberate kernel mutations for exercising the static analyzer:
   dropping a barrier introduces a shared-memory race, transposing a
   store's thread indices introduces bank conflicts.  Used by
   `gpuopt lint --mutate` and the analysis tests. *)

open Ast

exception Mutate_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Mutate_error s)) fmt

(* Remove the [index]-th Sync (0-based, in depth-first statement
   order) from the kernel body. *)
let drop_sync ~index (k : kernel) : kernel =
  let count = ref 0 in
  let rec stmts ss = List.filter_map stmt ss
  and stmt s =
    match s with
    | Sync ->
      let n = !count in
      incr count;
      if n = index then None else Some s
    | For l -> Some (For { l with body = stmts l.body })
    | If (c, t, e) -> Some (If (c, stmts t, stmts e))
    | Let _ | Mut _ | Assign _ | Store _ | Return -> Some s
  in
  let body = stmts k.body in
  if !count <= index then
    fail "drop_sync: kernel %s has only %d barrier(s), cannot drop #%d" k.kname !count index;
  { k with body }

(* Stretch the bound of the [index]-th For loop (0-based, depth-first)
   to [iters] iterations: with a bound in the billions the kernel is a
   livelock for all practical purposes, which is exactly what the
   simulator's watchdog budget exists to catch.  Used by the chaos
   harness to fabricate non-terminating candidates and by the watchdog
   tests. *)
let runaway_loop ?(index = 0) ~iters (k : kernel) : kernel =
  if iters < 1 then fail "runaway_loop: iters must be >= 1 (got %d)" iters;
  let count = ref 0 in
  let rec stmts ss = List.map stmt ss
  and stmt s =
    match s with
    | For l ->
      let n = !count in
      incr count;
      if n = index then For { l with lo = Int 0; hi = Int iters; step = Int 1; trip = None }
      else For { l with body = stmts l.body }
    | If (c, t, e) -> If (c, stmts t, stmts e)
    | Let _ | Mut _ | Assign _ | Store _ | Sync | Return -> s
  in
  let body = stmts k.body in
  if !count <= index then
    fail "runaway_loop: kernel %s has only %d loop(s), cannot stretch #%d" k.kname !count index;
  { k with body }

(* Swap tid.x and tid.y inside the *index* expression of every store
   to [array].  On a square-tiled kernel this turns a conflict-free
   row-major shared store into a column-major one (16-way banked). *)
let transpose_store ~array (k : kernel) : kernel =
  let swap =
    map_expr (function
      | Special TidX -> Special TidY
      | Special TidY -> Special TidX
      | e -> e)
  in
  let hits = ref 0 in
  let rec stmts ss = List.map stmt ss
  and stmt s =
    match s with
    | Store (a, idx, v) when String.equal a array ->
      incr hits;
      Store (a, swap idx, v)
    | For l -> For { l with body = stmts l.body }
    | If (c, t, e) -> If (c, stmts t, stmts e)
    | Let _ | Mut _ | Assign _ | Store _ | Sync | Return -> s
  in
  let body = stmts k.body in
  if !hits = 0 then fail "transpose_store: kernel %s has no store to %S" k.kname array;
  { k with body }
