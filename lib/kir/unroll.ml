(* Loop unrolling (paper section 3.1, third category: dynamic
   instruction count reduction; Figure 2(c) is the complete unroll).

   [by ~factor] unrolls loops marked with the given selector by
   [factor]; [complete] fully unrolls a loop with a static trip count,
   substituting literal induction values — which is what lets the
   PTX-level optimizer fold array indices into [reg+imm] addressing and
   erase the induction arithmetic entirely. *)

open Ast

(* Which loops to transform.  [Named] selects exactly one loop label
   and *fails loudly* ([No_such_loop]) when no loop matches, so renaming
   a loop in a kernel generator cannot silently disable its unrolling —
   the failure mode string-prefix predicates used to have.  [Pred]
   keeps the old open-ended behaviour for callers that genuinely want
   it (matching zero loops is then not an error). *)
type selector = All | Named of string | Pred of (string -> bool)

exception No_such_loop of string

let () =
  Printexc.register_printer (function
    | No_such_loop name -> Some (Printf.sprintf "Kir.Unroll.No_such_loop %S" name)
    | _ -> None)

let selects (sel : selector) (var : string) : bool =
  match sel with All -> true | Named n -> String.equal n var | Pred p -> p var

(* Replicate [body] [factor] times inside a wider-stepping loop, with
   binder renaming so replicated bindings stay unique.  Any remainder
   iterations run in an epilogue loop. *)
let unroll_loop (l : loop) (factor : int) : stmt list =
  if factor <= 1 then [ For l ]
  else
    match (static_trip l, l.step) with
    | Some trip, Int step ->
      let main_iters = trip / factor in
      let remainder = trip - (main_iters * factor) in
      let copy k =
        let renamed = rename_binders (Printf.sprintf "#u%d" k) l.body in
        (* The copy's induction value is var + k*step. *)
        if k = 0 then renamed
        else subst_var l.var (Bin (Add, Var l.var, Int (k * step))) renamed
      in
      let main =
        if main_iters = 0 then []
        else
          [
            For
              {
                l with
                hi = Bin (Add, l.lo, Int (main_iters * factor * step));
                step = Int (factor * step);
                trip = Some main_iters;
                body = List.concat (List.init factor copy);
              };
          ]
      in
      let epilogue =
        if remainder = 0 then []
        else
          [
            For
              {
                l with
                lo = Bin (Add, l.lo, Int (main_iters * factor * step));
                trip = Some remainder;
                body = rename_binders "#ue" l.body;
              };
          ]
      in
      main @ epilogue
    | _ ->
      (* Without a static trip count the transformation is still legal
         with a guarded epilogue, but none of our kernels need it. *)
      [ For l ]

(* Fully unroll: replace the loop by [trip] renamed copies with the
   induction variable bound to a literal in each. *)
let complete_loop (l : loop) : stmt list =
  match (static_trip l, l.lo, l.step) with
  | Some trip, Int lo, Int step ->
    List.concat
      (List.init trip (fun k ->
           let renamed = rename_binders (Printf.sprintf "#c%d" k) l.body in
           Let (l.var ^ Printf.sprintf "#c%d" k, S32, Int (lo + (k * step)))
           :: subst_var l.var (Var (l.var ^ Printf.sprintf "#c%d" k)) renamed))
  | _ -> [ For l ]

(* Apply [f] to every loop whose variable satisfies [select], outermost
   first (the produced statements are not re-visited). *)
let rec transform_loops (select : string -> bool) (f : loop -> stmt list) (ss : stmt list) :
    stmt list =
  List.concat_map
    (fun s ->
      match s with
      | For l when select l.var -> f { l with body = transform_loops select f l.body }
      | For l -> [ For { l with body = transform_loops select f l.body } ]
      | If (c, t, e) ->
        [ If (c, transform_loops select f t, transform_loops select f e) ]
      | _ -> [ s ])
    ss

(* Unroll loops chosen by [select] by [factor]; [factor = 0] means
   complete unrolling.  A [Named] selector that matches no loop raises
   [No_such_loop]. *)
let apply ?(select = All) ~factor (k : kernel) : kernel =
  let f l = if factor = 0 then complete_loop l else unroll_loop l factor in
  let matched = ref false in
  let sel var =
    let hit = selects select var in
    if hit then matched := true;
    hit
  in
  let body = transform_loops sel f k.body in
  (match select with
  | Named name when not !matched -> raise (No_such_loop name)
  | All | Named _ | Pred _ -> ());
  { k with body }
