(* Fixed-size work-stealing domain pool.

   Measurement of a candidate configuration is by far the most
   expensive step of the tuner (it drives the cycle-approximate
   simulator), and measurements are independent of each other, so they
   parallelize across OCaml 5 domains.  The pool owns [jobs] worker
   domains pulling tasks from a shared mutex/condition-protected queue;
   [map] is the bulk operation the tuner uses. *)

type t

(* Spawn a pool of [jobs] worker domains ([jobs >= 1]). *)
val create : jobs:int -> t

(* Number of worker domains. *)
val size : t -> int

(* Enqueue a task.  An exception escaping a task is swallowed by the
   worker loop — the worker survives and takes the next task ([map] and
   [map_result] wrap user functions, so results are never lost this
   way).  Raises [Invalid_argument] after [shutdown]. *)
val submit : t -> (unit -> unit) -> unit

(* Stop the workers and join them.  Safe in every queue/worker state:

   - with workers idle on an empty queue (the common case), the
     broadcast wakes them out of [Condition.wait] and each exits;
   - with tasks still queued, workers drain the queue first — [stop]
     only ends a worker once it finds the queue empty;
   - after a task raised mid-queue, the worker that ran it is still
     alive (task exceptions never escape the worker loop), so the join
     cannot hang on a dead domain.

   Idempotent: a second [shutdown] joins an empty worker list. *)
val shutdown : t -> unit

(* Worker count used when [?jobs] is omitted: the [GPUOPT_JOBS]
   environment variable if set to a positive integer, otherwise
   [Domain.recommended_domain_count () - 1], and never less than 1. *)
val default_jobs : unit -> int

(* [map ~jobs f xs] is [List.map f xs] computed by [jobs] worker
   domains.  Guarantees:

   - the result preserves input order;
   - [jobs:1] (or a singleton/empty list) does not spawn any domain and
     is literally [List.map f xs], so single-core behavior is
     bit-identical to the sequential code;
   - if any application of [f] raises, the first exception in input
     order is re-raised in the caller after all tasks settle;
   - [jobs] larger than the list length spawns only as many workers as
     there are elements. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(* Crash-isolated [map]: each item resolves to [Ok (f x)] or, if that
   application raised, [Error (exn, backtrace)] — the backtrace string
   is whatever [Printexc.get_backtrace] captured at the raise site
   (empty unless backtrace recording is on).  One crashing thunk costs
   exactly its own slot: every other item still completes, order is
   preserved, and the pool shuts down cleanly.  This is the primitive
   the tuner's fault-tolerant measurement engine builds on. *)
val map_result : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, exn * string) result list
