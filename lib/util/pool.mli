(* Fixed-size work-stealing domain pool.

   Measurement of a candidate configuration is by far the most
   expensive step of the tuner (it drives the cycle-approximate
   simulator), and measurements are independent of each other, so they
   parallelize across OCaml 5 domains.  The pool owns [jobs] worker
   domains pulling tasks from a shared mutex/condition-protected queue;
   [map] is the bulk operation the tuner uses. *)

type t

(* Spawn a pool of [jobs] worker domains ([jobs >= 1]). *)
val create : jobs:int -> t

(* Number of worker domains. *)
val size : t -> int

(* Enqueue a task.  Tasks must not raise: an escaping exception kills
   the worker silently ([map] wraps user functions so this cannot
   happen).  Raises [Invalid_argument] after [shutdown]. *)
val submit : t -> (unit -> unit) -> unit

(* Drain the queue, stop the workers and join them.  Idempotent. *)
val shutdown : t -> unit

(* Worker count used when [?jobs] is omitted: the [GPUOPT_JOBS]
   environment variable if set to a positive integer, otherwise
   [Domain.recommended_domain_count () - 1], and never less than 1. *)
val default_jobs : unit -> int

(* [map ~jobs f xs] is [List.map f xs] computed by [jobs] worker
   domains.  Guarantees:

   - the result preserves input order;
   - [jobs:1] (or a singleton/empty list) does not spawn any domain and
     is literally [List.map f xs], so single-core behavior is
     bit-identical to the sequential code;
   - if any application of [f] raises, the first exception in input
     order is re-raised in the caller after all tasks settle;
   - [jobs] larger than the list length spawns only as many workers as
     there are elements. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
