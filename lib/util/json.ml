(* Minimal JSON: the wire format of the tuning service.

   The repository deliberately depends only on the libraries baked into
   the toolchain image, so the serve layer carries its own JSON instead
   of pulling in yojson.  The subset is exactly what the protocol
   needs — null, booleans, integers, floats, strings, arrays, objects —
   with two properties the protocol tests rely on:

   - [of_string] is total: any byte string produces either a value or a
     descriptive [Error]; adversarial input (unterminated strings,
     deep nesting, garbage bytes) can never raise or overflow the
     stack, because nesting depth is bounded explicitly;
   - strings round-trip byte-exactly, including control characters and
     non-UTF-8 bytes (escaped as \u00XX on output, so the encoded form
     stays printable ASCII whenever the input is).

   Exact float transport is NOT done through JSON number literals
   (decimal printing is lossy); the protocol layer encodes times as
   hexadecimal-float strings instead.  [Float] exists so that numeric
   literals in hand-written or foreign JSON still parse. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to (b : Buffer.t) (s : string) : unit =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec print_to (b : Buffer.t) (v : t) : unit =
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    (* Only used for foreign values; protocol floats travel as strings.
       Infinities and NaN have no JSON literal: encode as null would
       lose them, so use the string spelling [float_of_string] accepts. *)
    if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
    else escape_to b (Printf.sprintf "%h" f)
  | Str s -> escape_to b s
  | List vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        print_to b v)
      vs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_to b k;
        Buffer.add_char b ':';
        print_to b v)
      fields;
    Buffer.add_char b '}'

let to_string (v : t) : string =
  let b = Buffer.create 256 in
  print_to b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string * int  (* reason, byte position *)

let default_max_depth = 512

let of_string ?(max_depth = default_max_depth) (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let bad reason = raise (Bad (reason, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
      | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> bad (Printf.sprintf "expected %C, found %C" c c')
    | None -> bad (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else bad (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then bad "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> bad (Printf.sprintf "bad \\u escape %S" h)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then bad "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
        if !pos >= n then bad "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          (* Code points <= 0xFF decode to the raw byte (this is what the
             printer emits); larger BMP points become UTF-8 bytes. *)
          let c = hex4 () in
          if c <= 0xFF then Buffer.add_char b (Char.chr c)
          else if c <= 0x7FF then begin
            Buffer.add_char b (Char.chr (0xC0 lor (c lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (c lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F)))
          end
        | e -> bad (Printf.sprintf "bad escape \\%C" e));
        loop ())
      | c -> Buffer.add_char b c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> bad (Printf.sprintf "bad number %S" lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
        (* Integer literal too large for the int type: keep the value. *)
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> bad (Printf.sprintf "bad number %S" lit))
  in
  let rec parse_value depth =
    if depth > max_depth then bad (Printf.sprintf "nesting deeper than %d" max_depth);
    skip_ws ();
    match peek () with
    | None -> bad "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elems () =
          items := parse_value (depth + 1) :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems ()
          | Some ']' -> advance ()
          | Some c -> bad (Printf.sprintf "expected ',' or ']', found %C" c)
          | None -> bad "unterminated array"
        in
        elems ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | Some c -> bad (Printf.sprintf "expected ',' or '}', found %C" c)
          | None -> bad "unterminated object"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some c -> bad (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos < n then bad "trailing bytes after value";
    v
  with
  | v -> Ok v
  | exception Bad (reason, p) -> Error (Printf.sprintf "JSON error at byte %d: %s" p reason)

(* ------------------------------------------------------------------ *)
(* Accessors (shape-checking helpers for decoders)                     *)
(* ------------------------------------------------------------------ *)

let member (k : string) (v : t) : t option =
  match v with Obj fields -> List.assoc_opt k fields | _ -> None
