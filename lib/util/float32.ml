(* IEEE binary32 semantics on top of OCaml's binary64 floats.

   Every kernel-visible arithmetic result is rounded through binary32 so
   that simulated GPU outputs are bit-comparable with a binary32 CPU
   reference implementation.  Rounding uses the round-trip through
   [Int32.bits_of_float], which performs round-to-nearest-even exactly as
   a hardware f32 unit would for values in range. *)

type t = float

(* The [@inline] annotations matter: simulator lane loops apply these
   per thread, and without inlining the (non-flambda) compiler boxes
   every float crossing the call — inlined, the round-trip compiles to
   unboxed bit-level moves. *)
let[@inline] round (x : float) : float = Int32.float_of_bits (Int32.bits_of_float x)

let[@inline] add a b = round (a +. b)
let[@inline] sub a b = round (a -. b)
let[@inline] mul a b = round (a *. b)
let[@inline] div a b = round (a /. b)

(* The G80 multiply-add is not fused: it rounds the product before the
   addition, matching [mul] followed by [add]. *)
let[@inline] mad a b c = add (mul a b) c

let[@inline] neg a = -.a
let abs = Float.abs
let[@inline] min a b = if a < b || Float.is_nan b then a else b
let[@inline] max a b = if a > b || Float.is_nan b then a else b
let[@inline] sqrt x = round (Float.sqrt x)
let[@inline] rsqrt x = round (1.0 /. Float.sqrt x)
let[@inline] rcp x = round (1.0 /. x)
let[@inline] sin x = round (Float.sin x)
let[@inline] cos x = round (Float.cos x)
let exp x = round (Float.exp x)
let log x = round (Float.log x)

let[@inline] of_int i = round (float_of_int i)
let to_int (x : float) : int = int_of_float x

let of_bits (b : int32) : float = Int32.float_of_bits b
let to_bits (x : float) : int32 = Int32.bits_of_float x

let equal_bits a b = Int32.equal (to_bits a) (to_bits b)

(* Relative comparison used by application-level validation: simulated
   kernels and CPU references may legally reassociate reductions. *)
let close ?(rtol = 1e-4) ?(atol = 1e-5) a b =
  Float.abs (a -. b) <= atol +. (rtol *. Float.abs b)
