(* Fixed-size domain pool over a shared work queue.

   Workers steal the next task from a single queue under a mutex, so
   load balances itself whatever the per-task cost distribution — the
   property that matters for the tuner, where simulated measurement
   time varies by an order of magnitude across configurations. *)

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;  (* signalled on submit and on shutdown *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;  (* set once by [create]; workers never read it *)
}

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.stop do
    Condition.wait pool.nonempty pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* stopping *)
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    (try task () with _ -> ());
    worker_loop pool
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
    }
  in
  pool.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = List.length pool.workers

let submit pool task =
  Mutex.lock pool.mutex;
  if pool.stop then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task pool.queue;
  Condition.signal pool.nonempty;
  Mutex.unlock pool.mutex

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers

let default_jobs () =
  let recommended = max 1 (Domain.recommended_domain_count () - 1) in
  match Sys.getenv_opt "GPUOPT_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | _ -> recommended)
  | None -> recommended

(* Apply [f] once per item, capturing any escaping exception (with its
   backtrace, when recording is on) as that item's [Error] instead of
   letting it poison the pool or abort the batch: one crashing thunk
   costs exactly its own slot.  Workers and the queue always drain, so
   the pool shuts down cleanly whatever the failure pattern. *)
let map_result ?jobs (f : 'a -> 'b) (xs : 'a list) : ('b, exn * string) result list =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.map_result: jobs must be >= 1";
  let wrap x =
    try Ok (f x)
    with e ->
      let bt = Printexc.get_backtrace () in
      Error (e, bt)
  in
  let n = List.length xs in
  if jobs = 1 || n <= 1 then List.map wrap xs
  else begin
    let input = Array.of_list xs in
    let out = Array.make n None in
    let remaining = ref n in
    let all_done = Condition.create () in
    let done_mutex = Mutex.create () in
    let pool = create ~jobs:(min jobs n) in
    Array.iteri
      (fun i x ->
        submit pool (fun () ->
            out.(i) <- Some (wrap x);
            Mutex.lock done_mutex;
            decr remaining;
            if !remaining = 0 then Condition.signal all_done;
            Mutex.unlock done_mutex))
      input;
    Mutex.lock done_mutex;
    while !remaining > 0 do
      Condition.wait all_done done_mutex
    done;
    Mutex.unlock done_mutex;
    shutdown pool;
    Array.to_list (Array.map (function Some r -> r | None -> assert false) out)
  end

let map ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  if jobs = 1 || List.length xs <= 1 then List.map f xs
  else begin
    let results = map_result ~jobs f xs in
    (* Re-raise the first failure in input order, deterministically. *)
    List.iter (function Error (e, _) -> raise e | Ok _ -> ()) results;
    List.map (function Ok v -> v | Error _ -> assert false) results
  end
