(* Static prediction of shared-memory bank-conflict degree (the target
   arch's bank count, half-warp granularity, same-address broadcast)
   and constant-cache serialization per access site.  As with
   [Coalesce], the predictor folds the simulator's own conflict rule —
   with the same bank geometry — over the enumerated executions, so
   the replay counts agree exactly with the dynamic counters on every
   registry machine. *)

type prediction = {
  b_execs : int;  (* warp executions with a non-empty mask *)
  b_replays : int;  (* Σ (degree - 1): extra issue slots *)
  b_min_degree : int;  (* best / worst per-execution degree *)
  b_max_degree : int;
}

(* Warp-level conflict degree, exactly as the simulator charges it:
   shared memory takes the max over the two half-warps; the constant
   cache serializes over distinct addresses of the whole warp. *)
let degree_of ?(banks = Gpu.Sim.g80_banks) (space : Kir.Ast.space) ~addrs ~mask : int =
  match space with
  | Kir.Ast.Const ->
    let distinct = Hashtbl.create 8 in
    for l = 0 to 31 do
      if mask land (1 lsl l) <> 0 then Hashtbl.replace distinct addrs.(l) ()
    done;
    max 1 (Hashtbl.length distinct)
  | _ ->
    max
      (Gpu.Sim.bank_conflict_degree ~banks addrs mask 0)
      (Gpu.Sim.bank_conflict_degree ~banks addrs mask 1)

let predict (env : Access.launch_env) (site : Access.info) : prediction =
  let init = { b_execs = 0; b_replays = 0; b_min_degree = max_int; b_max_degree = 0 } in
  let p =
    Access.fold_execs env site ~init ~f:(fun acc ~addrs ~mask ->
        let deg = degree_of ~banks:env.Access.e_banks site.Access.i_space ~addrs ~mask in
        {
          b_execs = acc.b_execs + 1;
          b_replays = acc.b_replays + (deg - 1);
          b_min_degree = min acc.b_min_degree deg;
          b_max_degree = max acc.b_max_degree deg;
        })
  in
  if p.b_execs = 0 then { p with b_min_degree = 0 } else p

let conflict_free (p : prediction) : bool = p.b_execs = 0 || p.b_max_degree <= 1
