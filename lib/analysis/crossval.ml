(* Cross-validation harness: run the analyzer's per-site predictions
   against the simulator's per-site dynamic counters on the same
   launch, and diff them site by site.

   The simulator runs the *raw* lowering (the program
   [Kir.Lower.lower_with_sites] returns), so the (label, index) keys
   of the site table identify exactly the instructions the static
   analysis reasoned about.  Functional mode executes every block of
   the grid, matching the enumeration engine's coverage, so agreement
   on affine-analyzable sites must be exact — any difference is a bug
   in one of the two models.  ⊤ sites are listed with their dynamic
   counts but carry no prediction. *)

type counters = { execs : int; tx : int; bytes : int; replays : int }

type site_diff = {
  d_site : Kir.Lower.site;
  d_desc : string;  (* rendered provenance *)
  d_static : (counters, string) result;  (* Error = ⊤ reason *)
  d_dynamic : counters;
}

type t = {
  cv_name : string;
  cv_sites : site_diff list;
  cv_total : int;
  cv_checked : int;  (* affine-analyzable sites compared *)
  cv_top : int;  (* ⊤ sites (reported, not compared) *)
  cv_mismatches : int;
}

let exact (d : site_diff) : bool =
  match d.d_static with Error _ -> true | Ok s -> s = d.d_dynamic

(* Static prediction normalized per space: off-chip spaces predict
   transactions and bytes, on-chip spaces predict replays. *)
let static_counters (env : Access.launch_env) (info : Access.info) : (counters, string) result =
  match Access.analyzable info with
  | Error r -> Error r
  | Ok () -> (
    try
      match info.Access.i_space with
      | Kir.Ast.Global | Kir.Ast.Local ->
        let p = Coalesce.predict env info in
        Ok { execs = p.Coalesce.p_execs; tx = p.Coalesce.p_tx; bytes = p.Coalesce.p_bytes; replays = 0 }
      | Kir.Ast.Shared | Kir.Ast.Const ->
        let p = Bank.predict env info in
        Ok { execs = p.Bank.b_execs; tx = 0; bytes = 0; replays = p.Bank.b_replays }
    with Access.Unpredictable r -> Error r)

let run ~(dev : Gpu.Device.t) (inp : Lint.input) : t =
  let ptx, lsites = Kir.Lower.lower_with_sites inp.Lint.li_kernel in
  let params = Lint.int_params inp in
  let infos =
    Access.sites_of ~block:inp.Lint.li_block ~grid:inp.Lint.li_grid ~params inp.Lint.li_kernel
  in
  if List.length lsites <> List.length infos then
    failwith "Analysis.Crossval: walker out of sync with the lowering";
  let env = Lint.launch_env inp in
  (* Execute on a clone: cross-validation must not clobber the
     caller's device memory. *)
  let stats =
    Gpu.Sim.run ~mode:Gpu.Sim.Functional ~arch:inp.Lint.li_arch (Gpu.Device.clone dev)
      {
        Gpu.Sim.kernel = ptx;
        grid = inp.Lint.li_grid;
        block = inp.Lint.li_block;
        args = inp.Lint.li_args;
      }
  in
  let dyn : (string * int, counters) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (sc : Gpu.Sim.site_counter) ->
      Hashtbl.replace dyn
        (sc.Gpu.Sim.sc_label, sc.Gpu.Sim.sc_index)
        {
          execs = sc.Gpu.Sim.sc_execs;
          tx = sc.Gpu.Sim.sc_tx;
          bytes = sc.Gpu.Sim.sc_bytes;
          replays = sc.Gpu.Sim.sc_replays;
        })
    stats.Gpu.Sim.site_counters;
  let sites =
    List.map2
      (fun (ls : Kir.Lower.site) (info : Access.info) ->
        let dynamic =
          match Hashtbl.find_opt dyn (ls.Kir.Lower.s_label, ls.Kir.Lower.s_index) with
          | Some c -> c
          | None ->
            failwith
              (Printf.sprintf "Analysis.Crossval: no dynamic counter for site %s+%d"
                 ls.Kir.Lower.s_label ls.Kir.Lower.s_index)
        in
        let loop_name = Access.loop_namer info in
        let desc =
          Printf.sprintf "%s %s[%s] @%s+%d"
            (Lint.kind_str info.Access.i_kind)
            info.Access.i_array
            (Affine.to_string ~loop_name info.Access.i_index)
            ls.Kir.Lower.s_label ls.Kir.Lower.s_index
        in
        { d_site = ls; d_desc = desc; d_static = static_counters env info; d_dynamic = dynamic })
      lsites infos
  in
  let checked = List.length (List.filter (fun d -> Result.is_ok d.d_static) sites) in
  let top = List.length sites - checked in
  let mismatches = List.length (List.filter (fun d -> not (exact d)) sites) in
  {
    cv_name = inp.Lint.li_name;
    cv_sites = sites;
    cv_total = List.length sites;
    cv_checked = checked;
    cv_top = top;
    cv_mismatches = mismatches;
  }

let render (r : t) : string =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "%s: %d sites — %d checked, %d ⊤, %d mismatch%s\n" r.cv_name r.cv_total r.cv_checked
    r.cv_top r.cv_mismatches
    (if r.cv_mismatches = 1 then "" else "es");
  List.iter
    (fun d ->
      let { execs; tx; bytes; replays } = d.d_dynamic in
      match d.d_static with
      | Error why ->
        pf "  [⊤   ] %-48s dyn: %d execs %d tx %d B %d replays (%s)\n" d.d_desc execs tx bytes
          replays why
      | Ok s ->
        let tag = if s = d.d_dynamic then "ok  " else "DIFF" in
        pf "  [%s] %-48s static: %d execs %d tx %d B %d replays | dynamic: %d execs %d tx %d B %d replays\n"
          tag d.d_desc s.execs s.tx s.bytes s.replays execs tx bytes replays)
    r.cv_sites;
  Buffer.contents buf
