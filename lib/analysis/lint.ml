(* The analyzer front end: pair every access site of a kernel (as
   recorded by [Kir.Lower.lower_with_sites]) with its affine analysis
   ([Access]), classify it with the coalescing/bank predictors, run
   the race detector, and render the result with kernel/loop/access
   provenance.  This is what `gpuopt lint`, the Pipeline analysis
   stage and the bench lint exhibit all consume. *)

module A = Affine

type input = {
  li_name : string;  (* display name (app or kernel) *)
  li_kernel : Kir.Ast.kernel;  (* post-KIR-pass source *)
  li_grid : int * int;
  li_block : int * int;
  li_args : (string * Gpu.Sim.arg) list;
  li_arch : Gpu.Arch.t;  (* machine whose geometry the predictors use *)
}

type verdict =
  | Coalesced of Coalesce.prediction
  | Uncoalesced of Coalesce.prediction
  | Bank_clean of Bank.prediction
  | Bank_conflict of Bank.prediction
  | Broadcast of Bank.prediction  (* constant cache, no serialization *)
  | Serialized of Bank.prediction  (* constant cache, distinct addresses *)
  | Opaque of string  (* ⊤: reported, never validated *)

type site_report = {
  sr_site : Kir.Lower.site;  (* (label, index) provenance *)
  sr_info : Access.info;  (* affine form, guards, loops *)
  sr_verdict : verdict;
}

type report = {
  r_name : string;
  r_grid : int * int;
  r_block : int * int;
  r_sites : site_report list;
  r_races : Races.report;
  r_divergent : string list;
  r_warnings : string list;  (* rendered warning lines *)
}

(* Integer scalar arguments, for folding Param into the affine domain
   and for the race detector's evaluator. *)
let int_params (inp : input) : (string * int) list =
  List.filter_map (fun (n, a) -> match a with Gpu.Sim.I v -> Some (n, v) | _ -> None) inp.li_args

(* Byte base addresses: buffers from the launch arguments, shared and
   local arrays from the same static layout the lowering assigns. *)
let launch_env (inp : input) : Access.launch_env =
  let bases : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (a : Kir.Ast.array_param) ->
      match List.assoc_opt a.aname inp.li_args with
      | Some (Gpu.Sim.Buf b) -> Hashtbl.replace bases a.aname b.Gpu.Device.base
      | _ -> ())
    inp.li_kernel.array_params;
  ignore
    (List.fold_left
       (fun off (name, words) ->
         Hashtbl.replace bases name (off * 4);
         off + words)
       0 inp.li_kernel.shared_decls);
  List.iter (fun (name, _) -> Hashtbl.replace bases name 0) inp.li_kernel.local_decls;
  {
    Access.e_grid = inp.li_grid;
    e_block = inp.li_block;
    e_base =
      (fun n ->
        match Hashtbl.find_opt bases n with
        | Some b -> b
        | None -> raise (Access.Unpredictable (Printf.sprintf "no base address for array %s" n)));
    e_banks = inp.li_arch.Gpu.Arch.shared_banks;
  }

let kind_str = function `Load -> "load" | `Store -> "store"

let space_str = function
  | Kir.Ast.Global -> "global"
  | Kir.Ast.Shared -> "shared"
  | Kir.Ast.Const -> "const"
  | Kir.Ast.Local -> "local"

(* "load As[8·tid.y + k] (loop k, loop tb) @BODY5+0" *)
let site_desc (sr : site_report) : string =
  let info = sr.sr_info in
  let loop_name = Access.loop_namer info in
  let loops =
    match info.Access.i_loop_names with
    | [] -> ""
    | ns -> Printf.sprintf " (loop %s)" (String.concat ", loop " ns)
  in
  let guards =
    match info.Access.i_guards with
    | [] -> ""
    | gs ->
      Printf.sprintf " when %s"
        (String.concat " && " (List.map (Access.guard_to_string ~loop_name) gs))
  in
  Printf.sprintf "%s %s %s[%s]%s%s @%s+%d" (space_str info.Access.i_space)
    (kind_str info.Access.i_kind) info.Access.i_array
    (A.to_string ~loop_name info.Access.i_index)
    loops guards sr.sr_site.Kir.Lower.s_label sr.sr_site.Kir.Lower.s_index

let verdict_str (v : verdict) : string =
  match v with
  | Coalesced p ->
    Printf.sprintf "coalesced (%d execs, %d tx, %d B)" p.Coalesce.p_execs p.Coalesce.p_tx
      p.Coalesce.p_bytes
  | Uncoalesced p ->
    Printf.sprintf "UNCOALESCED (%d execs, %d tx, %d B; worst half-warp %d tx)"
      p.Coalesce.p_execs p.Coalesce.p_tx p.Coalesce.p_bytes p.Coalesce.p_max_half_tx
  | Bank_clean p -> Printf.sprintf "conflict-free (%d execs, 0 replays)" p.Bank.b_execs
  | Bank_conflict p ->
    Printf.sprintf "BANK CONFLICTS (%d execs, %d replays; worst degree %d)" p.Bank.b_execs
      p.Bank.b_replays p.Bank.b_max_degree
  | Broadcast p -> Printf.sprintf "broadcast (%d execs, 0 replays)" p.Bank.b_execs
  | Serialized p ->
    Printf.sprintf "SERIALIZED const access (%d execs, %d replays; worst degree %d)"
      p.Bank.b_execs p.Bank.b_replays p.Bank.b_max_degree
  | Opaque why -> Printf.sprintf "⊤ not analyzable: %s" why

let is_warning = function
  | Uncoalesced _ | Bank_conflict _ | Serialized _ -> true
  | Coalesced _ | Bank_clean _ | Broadcast _ | Opaque _ -> false

let analyze ?races_max_blocks (inp : input) : report =
  let _ptx, lsites = Kir.Lower.lower_with_sites inp.li_kernel in
  let params = int_params inp in
  let infos =
    Access.sites_of ~block:inp.li_block ~grid:inp.li_grid ~params inp.li_kernel
  in
  if List.length lsites <> List.length infos then
    failwith
      (Printf.sprintf
         "Analysis.Lint: walker out of sync with the lowering (%d sites lowered, %d walked)"
         (List.length lsites) (List.length infos));
  let env = launch_env inp in
  let sites =
    List.map2
      (fun (ls : Kir.Lower.site) (info : Access.info) ->
        if
          ls.Kir.Lower.s_array <> info.Access.i_array
          || ls.Kir.Lower.s_kind <> info.Access.i_kind
          || ls.Kir.Lower.s_space <> Kir.Ast.space_to_ptx info.Access.i_space
        then
          failwith
            (Printf.sprintf
               "Analysis.Lint: walker out of sync with the lowering at site %d (%s %s vs %s %s)"
               ls.Kir.Lower.sid
               (kind_str ls.Kir.Lower.s_kind)
               ls.Kir.Lower.s_array
               (kind_str info.Access.i_kind)
               info.Access.i_array);
        let verdict =
          match Access.analyzable info with
          | Error r -> Opaque r
          | Ok () -> (
            try
              match info.Access.i_space with
              | Kir.Ast.Global | Kir.Ast.Local ->
                let p = Coalesce.predict env info in
                if Coalesce.coalesced p then Coalesced p else Uncoalesced p
              | Kir.Ast.Shared ->
                let p = Bank.predict env info in
                if Bank.conflict_free p then Bank_clean p else Bank_conflict p
              | Kir.Ast.Const ->
                let p = Bank.predict env info in
                if Bank.conflict_free p then Broadcast p else Serialized p
            with Access.Unpredictable r -> Opaque r)
        in
        { sr_site = ls; sr_info = info; sr_verdict = verdict })
      lsites infos
  in
  let races =
    Races.check ?max_blocks:races_max_blocks
      {
        Races.rc_kernel = inp.li_kernel;
        rc_grid = inp.li_grid;
        rc_block = inp.li_block;
        rc_params = params;
      }
  in
  let divergent = Races.tid_dependent_barriers inp.li_kernel in
  let warnings =
    List.filter_map
      (fun sr -> if is_warning sr.sr_verdict then Some (site_desc sr ^ ": " ^ verdict_str sr.sr_verdict) else None)
      sites
    @ List.map
        (fun (f : Races.finding) ->
          Printf.sprintf
            "shared-memory race on %s[%d] in barrier interval %d (block %d,%d): %s by thread %d vs %s by thread %d"
            f.Races.f_array f.Races.f_index f.Races.f_interval (fst f.Races.f_block)
            (snd f.Races.f_block) f.Races.f_access1 f.Races.f_tid1 f.Races.f_access2
            f.Races.f_tid2)
        races.Races.findings
    @ (match races.Races.incomplete with
      | Some why -> [ Printf.sprintf "race analysis incomplete: %s" why ]
      | None -> [])
    @ divergent
  in
  {
    r_name = inp.li_name;
    r_grid = inp.li_grid;
    r_block = inp.li_block;
    r_sites = sites;
    r_races = races;
    r_divergent = divergent;
    r_warnings = warnings;
  }

(* Correctness findings (as opposed to performance warnings). *)
let has_errors (r : report) : bool =
  r.r_races.Races.findings <> [] || r.r_divergent <> []

let top_sites (r : report) : site_report list =
  List.filter (fun sr -> match sr.sr_verdict with Opaque _ -> true | _ -> false) r.r_sites

let render (r : report) : string =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let gx, gy = r.r_grid and bx, by = r.r_block in
  pf "%s: grid %dx%d, block %dx%d — %d access sites (%d not affine-analyzable)\n" r.r_name gx
    gy bx by (List.length r.r_sites)
    (List.length (top_sites r));
  List.iter
    (fun sr -> pf "  [%2d] %s\n       %s\n" sr.sr_site.Kir.Lower.sid (site_desc sr) (verdict_str sr.sr_verdict))
    r.r_sites;
  (match r.r_races.Races.findings with
  | [] -> (
    match r.r_races.Races.incomplete with
    | None -> pf "  races: none (all %d blocks checked)\n" (gx * gy)
    | Some why -> pf "  races: analysis incomplete — %s\n" why)
  | fs ->
    List.iter
      (fun (f : Races.finding) ->
        pf "  RACE on %s[%d], barrier interval %d, block (%d,%d): %s (thread %d) vs %s (thread %d)\n"
          f.Races.f_array f.Races.f_index f.Races.f_interval (fst f.Races.f_block)
          (snd f.Races.f_block) f.Races.f_access1 f.Races.f_tid1 f.Races.f_access2 f.Races.f_tid2)
      fs);
  List.iter (fun d -> pf "  DIVERGENT BARRIER: %s\n" d) r.r_divergent;
  Buffer.contents buf

(* One line for dashboards: "matmul: 7 sites, 0 ⊤, 2 warnings, race-free". *)
let summary (r : report) : string =
  Printf.sprintf "%s: %d sites, %d ⊤, %d warning%s, %s" r.r_name (List.length r.r_sites)
    (List.length (top_sites r))
    (List.length r.r_warnings)
    (if List.length r.r_warnings = 1 then "" else "s")
    (if r.r_races.Races.findings = [] && r.r_divergent = [] then "race-free"
     else "RACES/DIVERGENCE FOUND")
