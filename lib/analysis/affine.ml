(* The abstract domain of the static memory analyzer: integer affine
   forms

       c0 + c1·tid.x + c2·tid.y + c3·bid.x + c4·bid.y + Σ ci·loop_i

   over the thread/block indices and the enclosing loop counters, with
   a ⊤ element for everything the domain cannot represent (data-
   dependent indices, inexact division, non-constant min/max, ...).
   ⊤ carries the reason it arose, so lint reports can say *why* a site
   is not analyzable instead of silently dropping it.

   Every non-⊤ form is exact, not an approximation: evaluating it at a
   concrete (tid, bid, loop) assignment gives precisely the value the
   interpreter and the simulator compute.  That is what licenses the
   cross-validation harness to demand bit-exact agreement with the
   simulator's dynamic counters on non-⊤ sites. *)

type term =
  | TidX
  | TidY
  | BidX
  | BidY
  | Loop of int  (* unique id of one loop *instance* in the walk *)

type t =
  | Affine of { c0 : int; terms : (term * int) list }
      (* [terms] sorted by [compare_term], coefficients non-zero *)
  | Top of string  (* why the value fell out of the domain *)

let compare_term (a : term) (b : term) = compare a b

let const c = Affine { c0 = c; terms = [] }
let of_term t = Affine { c0 = 0; terms = [ (t, 1) ] }
let top why = Top why

let as_const = function Affine { c0; terms = [] } -> Some c0 | _ -> None
let is_top = function Top _ -> true | Affine _ -> false
let top_reason = function Top why -> Some why | Affine _ -> None

(* Merge two sorted coefficient lists, adding coefficients of equal
   terms and dropping zeros. *)
let rec merge a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (ta, ca) :: ra, (tb, cb) :: rb ->
    let c = compare_term ta tb in
    if c < 0 then (ta, ca) :: merge ra b
    else if c > 0 then (tb, cb) :: merge a rb
    else
      let s = ca + cb in
      if s = 0 then merge ra rb else (ta, s) :: merge ra rb

let add x y =
  match (x, y) with
  | Top w, _ | _, Top w -> Top w
  | Affine a, Affine b -> Affine { c0 = a.c0 + b.c0; terms = merge a.terms b.terms }

let neg = function
  | Top w -> Top w
  | Affine a -> Affine { c0 = -a.c0; terms = List.map (fun (t, c) -> (t, -c)) a.terms }

let sub x y = add x (neg y)

let scale k = function
  | Top w -> Top w
  | Affine _ when k = 0 -> const 0
  | Affine a -> Affine { c0 = k * a.c0; terms = List.map (fun (t, c) -> (t, k * c)) a.terms }

(* Multiplication stays in the domain only when one side is constant. *)
let mul x y =
  match (as_const x, as_const y) with
  | Some k, _ -> scale k y
  | _, Some k -> scale k x
  | None, None -> top "non-affine product"

(* Division by a constant is exact iff it divides every coefficient
   (then v = d·q holds identically, for any assignment).  Matches the
   simulator's convention that division by zero yields 0. *)
let div x y =
  match (x, as_const y) with
  | _, Some 0 -> const 0
  | Affine a, Some d
    when a.c0 mod d = 0 && List.for_all (fun (_, c) -> c mod d = 0) a.terms ->
    Affine { c0 = a.c0 / d; terms = List.map (fun (t, c) -> (t, c / d)) a.terms }
  | _, _ -> top "inexact division"

let rem x y =
  match (as_const x, as_const y) with
  | Some a, Some b -> const (if b = 0 then 0 else a mod b)
  | _ -> top "non-constant remainder"

let imin x y =
  match (as_const x, as_const y) with
  | Some a, Some b -> const (min a b)
  | _ -> top "non-constant min"

let imax x y =
  match (as_const x, as_const y) with
  | Some a, Some b -> const (max a b)
  | _ -> top "non-constant max"

(* Bit operations: constant-fold only. *)
let bitop op x y =
  match (as_const x, as_const y) with
  | Some a, Some b -> const (op a b)
  | _ -> top "non-constant bit operation"

(* True when the form does not depend on the thread index — every lane
   of a warp computes the same value (e.g. loop bounds must be uniform
   for the per-warp trip count to be well defined). *)
let uniform = function
  | Top _ -> false
  | Affine a -> List.for_all (fun (t, _) -> t <> TidX && t <> TidY) a.terms

(* Evaluate at a concrete assignment.  [loop] maps a loop id to its
   current counter value. *)
let eval ~tid_x ~tid_y ~bid_x ~bid_y ~(loop : int -> int) (x : t) : int option =
  match x with
  | Top _ -> None
  | Affine a ->
    Some
      (List.fold_left
         (fun acc (t, c) ->
           let v =
             match t with
             | TidX -> tid_x
             | TidY -> tid_y
             | BidX -> bid_x
             | BidY -> bid_y
             | Loop i -> loop i
           in
           acc + (c * v))
         a.c0 a.terms)

(* Rendering: "16·tid.y + tid.x + 8" style; [loop_name] maps loop ids
   back to source loop-variable names. *)
let to_string ?(loop_name = fun i -> Printf.sprintf "L%d" i) (x : t) : string =
  match x with
  | Top why -> "⊤ (" ^ why ^ ")"
  | Affine { c0; terms } ->
    let term_str (t, c) =
      let name =
        match t with
        | TidX -> "tid.x"
        | TidY -> "tid.y"
        | BidX -> "bid.x"
        | BidY -> "bid.y"
        | Loop i -> loop_name i
      in
      if c = 1 then name
      else if c = -1 then "-" ^ name
      else Printf.sprintf "%d·%s" c name
    in
    let parts = List.map term_str terms @ (if c0 <> 0 then [ string_of_int c0 ] else []) in
    let parts = if parts = [] then [ "0" ] else parts in
    String.concat " + " parts
