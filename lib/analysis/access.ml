(* The access walker: an abstract interpretation of a KIR kernel that
   derives, for every array load/store, an [Affine] index form, the
   affine guards under which the access executes, and the enclosing
   analyzable loops — in *exactly* the order [Kir.Lower] emits the
   corresponding Ld/St instructions, so position i in the result pairs
   with position i of [Kir.Lower.lower_with_sites]'s site table (and
   therefore with the simulator's per-site dynamic counters).

   Mirroring the lowering order is load-bearing: the walker reuses
   [Kir.Lower.split_const] on index expressions and replicates the
   mad-fusion pattern of [lower_expr] (whose second alternative lowers
   the addend *after* the product, i.e. not in syntactic order).

   The second half of the module is the enumeration engine
   [fold_execs]: it replays every warp-level execution of a site that
   the simulator would perform — blocks × warps × loop iterations —
   computing per-lane byte addresses from the affine form and the
   active mask from the guards.  The coalescing/bank predictors fold
   the simulator's own [Gpu.Sim.coalesce] / [bank_conflict_degree]
   over it, which is what makes static predictions bit-exact. *)

open Kir.Ast
module A = Affine

(* A branch condition reduced to an affine comparison; the lane is
   active iff (a `op` b) xor [g_not]. *)
type guard = { g_op : Kir.Ast.bin; g_not : bool; g_a : A.t; g_b : A.t }

(* One analyzable enclosing loop: uniform affine bounds (no tid
   terms — every lane of a warp agrees on the trip count) and a
   positive constant step. *)
type loop_ctx = { lid : int; lname : string; l_lo : A.t; l_hi : A.t; l_step : int }

type info = {
  i_sid : int;
  i_array : string;
  i_space : Kir.Ast.space;
  i_kind : [ `Load | `Store ];
  i_index : A.t;  (* element (word) index *)
  i_guards : guard list;  (* outermost first *)
  i_loops : loop_ctx list;  (* outermost first *)
  i_loop_names : string list;  (* all enclosing loops, for provenance *)
  i_dead : bool;  (* statically unreachable (after Return) *)
  i_unpred : string option;  (* context made the site non-analyzable *)
}

(* A site is analyzable when its context is clean and its index stayed
   in the affine domain (guards are affine by construction). *)
let analyzable (i : info) : (unit, string) result =
  match i.i_unpred with
  | Some r -> Error r
  | None -> (
    match A.top_reason i.i_index with Some r -> Error r | None -> Ok ())

(* ------------------------------------------------------------------ *)
(* Walker                                                              *)
(* ------------------------------------------------------------------ *)

type wst = {
  block : int * int;
  grid : int * int;
  params : (string * int) list;  (* integer scalar arguments *)
  spaces : (string, Kir.Ast.space) Hashtbl.t;
  env : (string, A.t) Hashtbl.t;  (* flat, like the lowering's *)
  mutable acc : info list;  (* reversed *)
  mutable next_sid : int;
  mutable next_lid : int;
}

type wctx = {
  guards : guard list;  (* innermost first *)
  loops : loop_ctx list;  (* innermost first *)
  loop_names : string list;  (* innermost first *)
  dead : bool;
  unpred : string option;  (* first reason, if any *)
}

let with_unpred ctx reason =
  match ctx.unpred with Some _ -> ctx | None -> { ctx with unpred = Some reason }

let is_cmp = function Eq | Ne | Lt | Le | Gt | Ge -> true | _ -> false

let negate_guard g = { g with g_not = not g.g_not }

let invalidate w vars reason = List.iter (fun x -> Hashtbl.replace w.env x (A.top reason)) vars

let rec has_return ss =
  List.exists
    (fun s ->
      match s with
      | Return -> true
      | For l -> has_return l.body
      | If (_, t, e) -> has_return t || has_return e
      | Let _ | Mut _ | Assign _ | Store _ | Sync -> false)
    ss

(* Abstractly evaluate [e], recording a site for every array load, in
   the order [Kir.Lower.lower_expr] emits them. *)
let rec expr_aff (w : wst) (ctx : wctx) (e : expr) : A.t =
  match e with
  | Int n -> A.const n
  | Flt _ -> A.top "float value"
  | Bool _ -> A.top "boolean value"
  | Var x -> (
    match Hashtbl.find_opt w.env x with
    | Some v -> v
    | None -> A.top (Printf.sprintf "unbound variable %s" x))
  | Param p -> (
    match List.assoc_opt p w.params with
    | Some v -> A.const v
    | None -> A.top (Printf.sprintf "non-integer parameter %s" p))
  | Special TidX -> A.of_term A.TidX
  | Special TidY -> A.of_term A.TidY
  | Special BidX -> A.of_term A.BidX
  | Special BidY -> A.of_term A.BidY
  | Special BdimX -> A.const (fst w.block)
  | Special BdimY -> A.const (snd w.block)
  | Special GdimX -> A.const (fst w.grid)
  | Special GdimY -> A.const (snd w.grid)
  | Select (c, a, b) ->
    ignore (expr_aff w ctx c);
    ignore (expr_aff w ctx a);
    ignore (expr_aff w ctx b);
    A.top "select"
  | Un (op, a) -> (
    let va = expr_aff w ctx a in
    match op with Neg -> A.neg va | _ -> A.top "unary operator")
  | Bin (op, a, b) when is_cmp op ->
    ignore (expr_aff w ctx a);
    ignore (expr_aff w ctx b);
    A.top "comparison"
  | Bin ((LAnd | LOr), a, b) ->
    ignore (expr_aff w ctx a);
    ignore (expr_aff w ctx b);
    A.top "boolean operator"
  | Bin (Add, Bin (Mul, ma, mb), c) | Bin (Add, c, Bin (Mul, ma, mb)) ->
    (* mad fusion: lower_expr walks ma, mb, c in this order even when
       [c] comes first syntactically (second alternative). *)
    let va = expr_aff w ctx ma in
    let vb = expr_aff w ctx mb in
    let vc = expr_aff w ctx c in
    A.add (A.mul va vb) vc
  | Bin (op, a, b) -> (
    let va = expr_aff w ctx a in
    let vb = expr_aff w ctx b in
    match op with
    | Add -> A.add va vb
    | Sub -> A.sub va vb
    | Mul -> A.mul va vb
    | Div -> A.div va vb
    | Rem -> A.rem va vb
    | Min -> A.imin va vb
    | Max -> A.imax va vb
    | And -> A.bitop ( land ) va vb
    | Or -> A.bitop ( lor ) va vb
    | Xor -> A.bitop ( lxor ) va vb
    | Shl -> A.bitop ( lsl ) va vb
    | Shr -> A.bitop ( asr ) va vb
    | Eq | Ne | Lt | Le | Gt | Ge | LAnd | LOr -> assert false)
  | Ld (arr, idx) ->
    record_access w ctx arr idx `Load;
    A.top (Printf.sprintf "value loaded from %s" arr)

(* Record one access site.  The index is normalized through the same
   [split_const] the lowering applies, both so any loads inside the
   index are walked in emission order and so the affine form equals
   dyn + const exactly as the addressing code computes it. *)
and record_access (w : wst) (ctx : wctx) (arr : string) (idx : expr) (kind : [ `Load | `Store ]) :
    unit =
  let dyn, c = Kir.Lower.split_const idx in
  let vdyn = match dyn with None -> A.const 0 | Some d -> expr_aff w ctx d in
  let v = A.add vdyn (A.const c) in
  let space =
    match Hashtbl.find_opt w.spaces arr with
    | Some s -> s
    | None -> failwith (Printf.sprintf "Analysis.Access: unknown array %S" arr)
  in
  let site =
    {
      i_sid = w.next_sid;
      i_array = arr;
      i_space = space;
      i_kind = kind;
      i_index = v;
      i_guards = List.rev ctx.guards;
      i_loops = List.rev ctx.loops;
      i_loop_names = List.rev ctx.loop_names;
      i_dead = ctx.dead;
      i_unpred = ctx.unpred;
    }
  in
  w.next_sid <- w.next_sid + 1;
  w.acc <- site :: w.acc

(* Walk a branch condition (recording any load sites exactly as
   [lower_pred] would) and reduce it to a guard if it is a single
   affine comparison. *)
let guard_of (w : wst) (ctx : wctx) (c : expr) : guard option =
  match c with
  | Bin (op, a, b) when is_cmp op ->
    let va = expr_aff w ctx a in
    let vb = expr_aff w ctx b in
    if A.is_top va || A.is_top vb then None
    else Some { g_op = op; g_not = false; g_a = va; g_b = vb }
  | _ ->
    ignore (expr_aff w ctx c);
    None

(* Walk statements; returns false if the list cannot fall through. *)
let rec walk_stmts (w : wst) (ctx : wctx) (ss : stmt list) : bool =
  match ss with
  | [] -> true
  | s :: rest -> (
    match s with
    | Let (x, _, e) | Mut (x, _, e) ->
      let v = expr_aff w ctx e in
      Hashtbl.replace w.env x v;
      walk_stmts w ctx rest
    | Assign (x, e) ->
      let v = expr_aff w ctx e in
      Hashtbl.replace w.env x v;
      walk_stmts w ctx rest
    | Store (arr, idx, value) ->
      (* value first, then address: the lowering's emission order *)
      ignore (expr_aff w ctx value);
      record_access w ctx arr idx `Store;
      walk_stmts w ctx rest
    | Sync -> walk_stmts w ctx rest
    | Return ->
      if rest <> [] then ignore (walk_stmts w { ctx with dead = true } rest);
      false
    | If (c, t, e) ->
      let g = guard_of w ctx c in
      let ctx_t, ctx_e =
        match g with
        | Some g0 ->
          ( { ctx with guards = g0 :: ctx.guards },
            { ctx with guards = negate_guard g0 :: ctx.guards } )
        | None ->
          let tainted = with_unpred ctx "non-affine branch condition" in
          (tainted, tainted)
      in
      let t_falls = walk_stmts w ctx_t t in
      let e_falls = walk_stmts w ctx_e e in
      (* A value assigned or bound under the branch is path-dependent
         after it. *)
      invalidate w (assigned_vars t (assigned_vars e [])) "assigned under a branch";
      invalidate w (bound_vars t (bound_vars e [])) "bound under a branch";
      let ctx_rest =
        if t_falls && e_falls then ctx
        else if (not t_falls) && not e_falls then { ctx with dead = true }
        else
          (* One side returned: survivors are the lanes that took the
             falling side. *)
          match g with
          | Some g0 ->
            let keep = if t_falls then g0 else negate_guard g0 in
            { ctx with guards = keep :: ctx.guards }
          | None -> with_unpred ctx "early exit under a non-affine condition"
      in
      walk_stmts w ctx_rest rest
    | For l ->
      let step = match l.step with Int s -> s | _ -> 0 in
      (* Bounds evaluate in the preheader, before the loop var binds. *)
      let v_lo = expr_aff w ctx l.lo in
      let v_hi = expr_aff w ctx l.hi in
      (* Anything assigned in the body is iteration-dependent from the
         body's point of view (and after the loop). *)
      invalidate w (assigned_vars l.body []) "assigned in a loop";
      let lid = w.next_lid in
      w.next_lid <- lid + 1;
      let ok = step > 0 && A.uniform v_lo && A.uniform v_hi in
      let ctx_body =
        if ok then begin
          Hashtbl.replace w.env l.var (A.of_term (A.Loop lid));
          {
            ctx with
            loops = { lid; lname = l.var; l_lo = v_lo; l_hi = v_hi; l_step = step } :: ctx.loops;
            loop_names = l.var :: ctx.loop_names;
          }
        end
        else begin
          let reason =
            if step <= 0 then "non-constant loop step"
            else if not (A.uniform v_lo && A.uniform v_hi) then
              if A.is_top v_lo || A.is_top v_hi then "non-affine loop bounds"
              else "thread-dependent loop bounds"
            else "unanalyzable loop"
          in
          Hashtbl.replace w.env l.var (A.top reason);
          { (with_unpred ctx reason) with loop_names = l.var :: ctx.loop_names }
        end
      in
      ignore (walk_stmts w ctx_body l.body);
      Hashtbl.replace w.env l.var (A.top "loop counter after loop");
      let ctx_after =
        if has_return l.body then with_unpred ctx "early exit inside a loop" else ctx
      in
      walk_stmts w ctx_after rest)

(* Derive the access-site table of [k] for a concrete launch shape.
   [params] must give the integer scalar arguments (others are treated
   as ⊤, which only matters if they flow into an index). *)
let sites_of ~(block : int * int) ~(grid : int * int) ~(params : (string * int) list)
    (k : kernel) : info list =
  let spaces = Hashtbl.create 8 in
  List.iter (fun (a : array_param) -> Hashtbl.replace spaces a.aname a.aspace) k.array_params;
  List.iter (fun (n, _) -> Hashtbl.replace spaces n Kir.Ast.Shared) k.shared_decls;
  List.iter (fun (n, _) -> Hashtbl.replace spaces n Kir.Ast.Local) k.local_decls;
  let w =
    {
      block;
      grid;
      params;
      spaces;
      env = Hashtbl.create 32;
      acc = [];
      next_sid = 0;
      next_lid = 0;
    }
  in
  let ctx = { guards = []; loops = []; loop_names = []; dead = false; unpred = None } in
  ignore (walk_stmts w ctx k.body);
  List.rev w.acc

(* ------------------------------------------------------------------ *)
(* Enumeration engine                                                  *)
(* ------------------------------------------------------------------ *)

exception Unpredictable of string

type launch_env = {
  e_grid : int * int;
  e_block : int * int;
  e_base : string -> int;  (* array name -> base *byte* address *)
  e_banks : int;  (* shared-memory banks of the target arch (16 on G80) *)
}

let eval_exn aff ~tid_x ~tid_y ~bid_x ~bid_y ~loop =
  match A.eval ~tid_x ~tid_y ~bid_x ~bid_y ~loop aff with
  | Some v -> v
  | None -> raise (Unpredictable "⊤ form in enumeration")

let cmp_holds op a b =
  match op with
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b
  | Eq -> a = b
  | Ne -> a <> b
  | _ -> assert false

(* Fold [f] over every warp-level execution of [site] the simulator
   performs with a non-empty active mask: blocks × warps × enclosing
   loop iterations.  [addrs] holds per-lane byte addresses (valid only
   for lanes set in [mask]; the array is reused between calls).
   Raises [Unpredictable] if the site is not analyzable. *)
let fold_execs (env : launch_env) (site : info) ~(init : 'a)
    ~(f : 'a -> addrs:int array -> mask:int -> 'a) : 'a =
  (match analyzable site with Error r -> raise (Unpredictable r) | Ok () -> ());
  if site.i_dead then init
  else begin
    let gx, gy = env.e_grid in
    let bx, by = env.e_block in
    let tpb = bx * by in
    let nwarps = (tpb + 31) / 32 in
    let base = env.e_base site.i_array in
    let addrs = Array.make 32 0 in
    let loop_vals : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let lookup lid =
      match Hashtbl.find_opt loop_vals lid with
      | Some v -> v
      | None -> raise (Unpredictable "loop counter out of scope")
    in
    let acc = ref init in
    for bid_y = 0 to gy - 1 do
      for bid_x = 0 to gx - 1 do
        for wid = 0 to nwarps - 1 do
          let lanes = min 32 (tpb - (wid * 32)) in
          let rec iterate = function
            | [] ->
              let mask = ref 0 in
              for l = 0 to lanes - 1 do
                let lin = (wid * 32) + l in
                let tid_x = lin mod bx in
                let tid_y = lin / bx mod by in
                let active =
                  List.for_all
                    (fun g ->
                      let va = eval_exn g.g_a ~tid_x ~tid_y ~bid_x ~bid_y ~loop:lookup in
                      let vb = eval_exn g.g_b ~tid_x ~tid_y ~bid_x ~bid_y ~loop:lookup in
                      cmp_holds g.g_op va vb <> g.g_not)
                    site.i_guards
                in
                if active then begin
                  mask := !mask lor (1 lsl l);
                  addrs.(l) <-
                    base + (4 * eval_exn site.i_index ~tid_x ~tid_y ~bid_x ~bid_y ~loop:lookup)
                end
              done;
              if !mask <> 0 then acc := f !acc ~addrs ~mask:!mask
            | lc :: rest ->
              (* Bounds are uniform: any lane agrees; use lane (0,0). *)
              let lo = eval_exn lc.l_lo ~tid_x:0 ~tid_y:0 ~bid_x ~bid_y ~loop:lookup in
              let hi = eval_exn lc.l_hi ~tid_x:0 ~tid_y:0 ~bid_x ~bid_y ~loop:lookup in
              let v = ref lo in
              while !v < hi do
                Hashtbl.replace loop_vals lc.lid !v;
                iterate rest;
                v := !v + lc.l_step
              done;
              Hashtbl.remove loop_vals lc.lid
          in
          iterate site.i_loops
        done
      done
    done;
    !acc
  end

(* ------------------------------------------------------------------ *)
(* Rendering helpers                                                   *)
(* ------------------------------------------------------------------ *)

(* Loop-id -> name map of a site, for rendering its affine forms. *)
let loop_namer (site : info) : int -> string =
  fun lid ->
   match List.find_opt (fun lc -> lc.lid = lid) site.i_loops with
   | Some lc -> lc.lname
   | None -> Printf.sprintf "L%d" lid

let guard_to_string ?loop_name (g : guard) : string =
  let op =
    match (g.g_op, g.g_not) with
    | Lt, false | Ge, true -> "<"
    | Le, false | Gt, true -> "<="
    | Gt, false | Le, true -> ">"
    | Ge, false | Lt, true -> ">="
    | Eq, false | Ne, true -> "=="
    | Ne, false | Eq, true -> "!="
    | _ -> assert false
  in
  Printf.sprintf "%s %s %s" (A.to_string ?loop_name g.g_a) op (A.to_string ?loop_name g.g_b)
