(* Barrier-interval shared-memory race detection.

   Each block body is partitioned at Sync into intervals, numbered by
   a per-thread barrier counter.  Provided no barrier is divergent
   (checked structurally by [tid_dependent_barriers]), all threads of
   a block agree on interval numbering, and two shared-memory accesses
   can be concurrent iff they fall in the same interval.  A race is a
   write and another access to the same element, in the same interval,
   by two distinct threads.

   Detection is by concrete per-thread execution of the KIR at the
   launch shape under analysis: every thread of every block is run
   through a small evaluator (integer/boolean values exact, floats and
   loaded data abstracted to "unknown"), and its shared accesses are
   logged per (array, element, interval).  This handles Div/Rem/Min/
   Max and thread-dependent loop bounds that fall outside the affine
   domain; only genuinely data-dependent indices or branches abort
   the analysis (reported as incomplete, never silently ignored). *)

open Kir.Ast

type input = {
  rc_kernel : kernel;
  rc_grid : int * int;
  rc_block : int * int;
  rc_params : (string * int) list;
}

type finding = {
  f_array : string;
  f_index : int;  (* element *)
  f_interval : int;  (* barrier interval *)
  f_block : int * int;
  f_tid1 : int;  (* linear tids of the two conflicting threads *)
  f_tid2 : int;
  f_access1 : string;  (* "store As[(tid.y * 8) + tid.x]" — the write *)
  f_access2 : string;
}

type report = {
  findings : finding list;  (* deduplicated by access-site pair *)
  incomplete : string option;  (* evaluator left the concrete domain *)
}

(* ------------------------------------------------------------------ *)
(* Expression rendering (provenance strings)                           *)
(* ------------------------------------------------------------------ *)

let spec_str = function
  | TidX -> "tid.x"
  | TidY -> "tid.y"
  | BidX -> "bid.x"
  | BidY -> "bid.y"
  | BdimX -> "bdim.x"
  | BdimY -> "bdim.y"
  | GdimX -> "gdim.x"
  | GdimY -> "gdim.y"

let bin_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Min -> "min"
  | Max -> "max"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | LAnd -> "&&"
  | LOr -> "||"

let un_str = function
  | Neg -> "-"
  | Abs -> "abs"
  | Sqrt -> "sqrt"
  | Rsqrt -> "rsqrt"
  | Rcp -> "rcp"
  | Sin -> "sin"
  | Cos -> "cos"
  | Not -> "!"
  | ToF -> "float"
  | ToI -> "int"

let rec pp_expr = function
  | Int n -> string_of_int n
  | Flt x -> Printf.sprintf "%g" x
  | Bool b -> string_of_bool b
  | Var x -> x
  | Param p -> p
  | Special s -> spec_str s
  | Bin ((Min | Max) as op, a, b) -> Printf.sprintf "%s(%s, %s)" (bin_str op) (pp_expr a) (pp_expr b)
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (pp_expr a) (bin_str op) (pp_expr b)
  | Un (op, a) -> Printf.sprintf "%s(%s)" (un_str op) (pp_expr a)
  | Ld (arr, idx) -> Printf.sprintf "%s[%s]" arr (pp_expr idx)
  | Select (c, a, b) -> Printf.sprintf "(%s ? %s : %s)" (pp_expr c) (pp_expr a) (pp_expr b)

(* ------------------------------------------------------------------ *)
(* Concrete per-thread evaluation                                      *)
(* ------------------------------------------------------------------ *)

type v = VI of int | VB of bool | VUnk

exception Thread_exit
exception Incomplete of string

let incomplete fmt = Printf.ksprintf (fun s -> raise (Incomplete s)) fmt

type tstate = {
  grid : int * int;
  block : int * int;
  params : (string * int) list;
  shared : (string, unit) Hashtbl.t;  (* names of shared arrays *)
  env : (string, v) Hashtbl.t;
  mutable sync : int;  (* barrier-interval counter *)
  bid : int * int;
  tid : int * int;
  (* log one shared access: write? array element interval site *)
  log : write:bool -> string -> int -> int -> string -> unit;
}

let rec eval (st : tstate) (e : expr) : v =
  match e with
  | Int n -> VI n
  | Flt _ -> VUnk
  | Bool b -> VB b
  | Var x -> ( match Hashtbl.find_opt st.env x with Some v -> v | None -> VUnk)
  | Param p -> (
    match List.assoc_opt p st.params with Some n -> VI n | None -> VUnk)
  | Special TidX -> VI (fst st.tid)
  | Special TidY -> VI (snd st.tid)
  | Special BidX -> VI (fst st.bid)
  | Special BidY -> VI (snd st.bid)
  | Special BdimX -> VI (fst st.block)
  | Special BdimY -> VI (snd st.block)
  | Special GdimX -> VI (fst st.grid)
  | Special GdimY -> VI (snd st.grid)
  | Select (c, a, b) -> (
    (* Both sides evaluate (lowering emits selp), so both log. *)
    let vc = eval st c in
    let va = eval st a in
    let vb = eval st b in
    match vc with VB true -> va | VB false -> vb | _ -> VUnk)
  | Un (op, a) -> (
    let va = eval st a in
    match (op, va) with
    | Neg, VI n -> VI (-n)
    | Abs, VI n -> VI (abs n)
    | Not, VB b -> VB (not b)
    | _ -> VUnk)
  | Bin (op, a, b) -> (
    let va = eval st a in
    let vb = eval st b in
    match (op, va, vb) with
    | (Eq | Ne | Lt | Le | Gt | Ge), VI x, VI y ->
      let c = compare x y in
      VB
        (match op with
        | Eq -> c = 0
        | Ne -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
        | _ -> assert false)
    | Eq, VB x, VB y -> VB (x = y)
    | Ne, VB x, VB y -> VB (x <> y)
    | LAnd, VB x, VB y -> VB (x && y)
    | LOr, VB x, VB y -> VB (x || y)
    | Add, VI x, VI y -> VI (x + y)
    | Sub, VI x, VI y -> VI (x - y)
    | Mul, VI x, VI y -> VI (x * y)
    | Div, VI x, VI y -> VI (if y = 0 then 0 else x / y)
    | Rem, VI x, VI y -> VI (if y = 0 then 0 else x mod y)
    | Min, VI x, VI y -> VI (min x y)
    | Max, VI x, VI y -> VI (max x y)
    | And, VI x, VI y -> VI (x land y)
    | Or, VI x, VI y -> VI (x lor y)
    | Xor, VI x, VI y -> VI (x lxor y)
    | Shl, VI x, VI y -> VI (x lsl y)
    | Shr, VI x, VI y -> VI (x asr y)
    | _ -> VUnk)
  | Ld (arr, idx) ->
    let vi = eval st idx in
    if Hashtbl.mem st.shared arr then begin
      match vi with
      | VI i -> st.log ~write:false arr i st.sync (Printf.sprintf "load %s[%s]" arr (pp_expr idx))
      | _ -> incomplete "data-dependent shared index in load %s[%s]" arr (pp_expr idx)
    end;
    VUnk

let max_loop_iters = 1_000_000

let rec exec_stmts (st : tstate) (ss : stmt list) : unit = List.iter (exec_stmt st) ss

and exec_stmt (st : tstate) (s : stmt) : unit =
  match s with
  | Let (x, _, e) | Mut (x, _, e) | Assign (x, e) ->
    let v = eval st e in
    Hashtbl.replace st.env x v
  | Store (arr, idx, value) ->
    ignore (eval st value);
    let vi = eval st idx in
    if Hashtbl.mem st.shared arr then begin
      match vi with
      | VI i -> st.log ~write:true arr i st.sync (Printf.sprintf "store %s[%s]" arr (pp_expr idx))
      | _ -> incomplete "data-dependent shared index in store %s[%s]" arr (pp_expr idx)
    end
  | Sync -> st.sync <- st.sync + 1
  | Return -> raise Thread_exit
  | If (c, t, e) -> (
    match eval st c with
    | VB true -> exec_stmts st t
    | VB false -> exec_stmts st e
    | _ -> incomplete "data-dependent branch on %s" (pp_expr c))
  | For l -> (
    let step = match l.step with Int s when s > 0 -> s | _ -> incomplete "non-literal loop step" in
    match (eval st l.lo, eval st l.hi) with
    | VI lo, VI hi ->
      let v = ref lo in
      let iters = ref 0 in
      while !v < hi do
        incr iters;
        if !iters > max_loop_iters then incomplete "loop %s exceeds iteration budget" l.var;
        Hashtbl.replace st.env l.var (VI !v);
        exec_stmts st l.body;
        v := !v + step
      done;
      Hashtbl.replace st.env l.var (VI !v)
    | _ -> incomplete "data-dependent bounds of loop %s" l.var)

(* ------------------------------------------------------------------ *)
(* Per-block race check                                                *)
(* ------------------------------------------------------------------ *)

(* Accesses logged for one (array, element, interval) cell.  Lists are
   capped, but an access by a tid not yet recorded is always kept, so
   a cross-thread overlap can never be evicted away. *)
type cell = { mutable writes : (int * string) list; mutable reads : (int * string) list }

let cell_add lst tid site =
  if List.length lst < 4 || (List.length lst < 16 && not (List.exists (fun (t, _) -> t = tid) lst))
  then (tid, site) :: lst
  else lst

(* Run all threads of block (bx, by); append deduplicated findings. *)
let check_block (inp : input) (bx : int) (by : int) (seen : (string, unit) Hashtbl.t)
    (findings : finding list ref) : unit =
  let bdx, bdy = inp.rc_block in
  let shared = Hashtbl.create 4 in
  List.iter (fun (n, _) -> Hashtbl.replace shared n ()) inp.rc_kernel.shared_decls;
  let cells : (string * int * int, cell) Hashtbl.t = Hashtbl.create 256 in
  for ty = 0 to bdy - 1 do
    for tx = 0 to bdx - 1 do
      let lin = (ty * bdx) + tx in
      let log ~write arr i interval site =
        let key = (arr, i, interval) in
        let c =
          match Hashtbl.find_opt cells key with
          | Some c -> c
          | None ->
            let c = { writes = []; reads = [] } in
            Hashtbl.replace cells key c;
            c
        in
        if write then c.writes <- cell_add c.writes lin site
        else c.reads <- cell_add c.reads lin site
      in
      let st =
        {
          grid = inp.rc_grid;
          block = inp.rc_block;
          params = inp.rc_params;
          shared;
          env = Hashtbl.create 32;
          sync = 0;
          bid = (bx, by);
          tid = (tx, ty);
          log;
        }
      in
      try exec_stmts st inp.rc_kernel.body with Thread_exit -> ()
    done
  done;
  Hashtbl.iter
    (fun (arr, i, interval) c ->
      let report (t1, s1) (t2, s2) =
        let key = Printf.sprintf "%s|%s|%s" arr s1 s2 in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          findings :=
            {
              f_array = arr;
              f_index = i;
              f_interval = interval;
              f_block = (bx, by);
              f_tid1 = t1;
              f_tid2 = t2;
              f_access1 = s1;
              f_access2 = s2;
            }
            :: !findings
        end
      in
      List.iter
        (fun (t1, s1) ->
          (* write/write *)
          (match List.find_opt (fun (t2, _) -> t2 <> t1) c.writes with
          | Some (t2, s2) -> report (t1, s1) (t2, s2)
          | None -> ());
          (* write/read *)
          match List.find_opt (fun (t2, _) -> t2 <> t1) c.reads with
          | Some (t2, s2) -> report (t1, s1) (t2, s2)
          | None -> ())
        c.writes)
    cells

(* Check every block of the launch (or the first [max_blocks]).  The
   result is deduplicated by conflicting access-site pair. *)
let check ?max_blocks (inp : input) : report =
  if inp.rc_kernel.shared_decls = [] then { findings = []; incomplete = None }
  else begin
    let gx, gy = inp.rc_grid in
    let coords = List.init (gx * gy) (fun i -> (i mod gx, i / gx)) in
    let coords =
      match max_blocks with
      | Some n -> List.filteri (fun i _ -> i < n) coords
      | None -> coords
    in
    let seen = Hashtbl.create 16 in
    let findings = ref [] in
    try
      List.iter (fun (bx, by) -> check_block inp bx by seen findings) coords;
      { findings = List.rev !findings; incomplete = None }
    with Incomplete why -> { findings = List.rev !findings; incomplete = Some why }
  end

(* ------------------------------------------------------------------ *)
(* Divergent (tid-dependent) barriers                                  *)
(* ------------------------------------------------------------------ *)

(* Structural taint check at the KIR level, complementing Ptx.Verify's
   PTX-level check: a Sync under a tid-tainted condition, or inside a
   loop with tid-tainted bounds, is executed a thread-dependent number
   of times — undefined behaviour on the hardware.  Loaded values are
   conservatively tainted. *)
let tid_dependent_barriers (k : kernel) : string list =
  let tainted_vars : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec tainted (e : expr) : bool =
    match e with
    | Special (TidX | TidY) -> true
    | Special _ | Int _ | Flt _ | Bool _ | Param _ -> false
    | Var x -> Hashtbl.mem tainted_vars x
    | Ld _ -> true
    | Un (_, a) -> tainted a
    | Bin (_, a, b) -> tainted a || tainted b
    | Select (c, a, b) -> tainted c || tainted a || tainted b
  in
  let out = ref [] in
  let rec walk (ctx : string list) (ss : stmt list) : unit =
    List.iter
      (fun s ->
        match s with
        | Let (x, _, e) | Mut (x, _, e) | Assign (x, e) ->
          if tainted e then Hashtbl.replace tainted_vars x ()
        | Store _ | Return -> ()
        | Sync ->
          if ctx <> [] then
            out :=
              Printf.sprintf "barrier under tid-dependent control: %s"
                (String.concat " inside " ctx)
              :: !out
        | If (c, t, e) ->
          let ctx' = if tainted c then Printf.sprintf "if (%s)" (pp_expr c) :: ctx else ctx in
          walk ctx' t;
          walk ctx' e
        | For l ->
          let bounds_tainted = tainted l.lo || tainted l.hi || tainted l.step in
          if bounds_tainted then Hashtbl.replace tainted_vars l.var ();
          let ctx' =
            if bounds_tainted then
              Printf.sprintf "for %s in [%s, %s)" l.var (pp_expr l.lo) (pp_expr l.hi) :: ctx
            else ctx
          in
          walk ctx' l.body)
      ss
  in
  walk [] k.body;
  List.rev !out
