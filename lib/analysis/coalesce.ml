(* Static prediction of global/local-memory transaction counts per
   access site, by folding the simulator's own half-warp coalescing
   rule ([Gpu.Sim.coalesce], G80 §2.1 semantics) over every execution
   the enumeration engine replays.  Because both sides run the same
   coalescing function over the same addresses, agreement with the
   dynamic counters is exact, not approximate. *)

type prediction = {
  p_execs : int;  (* warp executions with a non-empty mask *)
  p_tx : int;  (* total memory transactions *)
  p_bytes : int;  (* total bytes moved (64B per transaction) *)
  p_min_half_tx : int;  (* best / worst half-warp transaction count *)
  p_max_half_tx : int;  (* (over halves with at least one active lane) *)
}

let predict (env : Access.launch_env) (site : Access.info) : prediction =
  let halves_of ~addrs ~mask acc =
    let step acc half =
      let tx, by = Gpu.Sim.coalesce addrs mask half in
      if tx = 0 then acc
      else
        {
          acc with
          p_tx = acc.p_tx + tx;
          p_bytes = (acc.p_bytes + if tx = 1 then by else 64 * tx);
          p_min_half_tx = min acc.p_min_half_tx tx;
          p_max_half_tx = max acc.p_max_half_tx tx;
        }
    in
    step (step acc 0) 1
  in
  let local_halves ~mask acc =
    let halves =
      (if mask land 0xFFFF <> 0 then 1 else 0) + if mask land 0xFFFF0000 <> 0 then 1 else 0
    in
    {
      acc with
      p_tx = acc.p_tx + halves;
      p_bytes = acc.p_bytes + (64 * halves);
      p_min_half_tx = min acc.p_min_half_tx 1;
      p_max_half_tx = max acc.p_max_half_tx 1;
    }
  in
  let init = { p_execs = 0; p_tx = 0; p_bytes = 0; p_min_half_tx = max_int; p_max_half_tx = 0 } in
  let p =
    Access.fold_execs env site ~init ~f:(fun acc ~addrs ~mask ->
        let acc = { acc with p_execs = acc.p_execs + 1 } in
        match site.Access.i_space with
        | Kir.Ast.Local -> local_halves ~mask acc
        | _ -> halves_of ~addrs ~mask acc)
  in
  if p.p_execs = 0 then { p with p_min_half_tx = 0 } else p

(* Fully coalesced: every executed half-warp collapsed to one
   transaction. *)
let coalesced (p : prediction) : bool = p.p_execs = 0 || p.p_max_half_tx <= 1
