(* MRI-FHD: computation of the image-specific vector F^H d used in
   non-Cartesian 3-D MRI reconstruction (Stone et al.; the paper's
   Figure 6(b) and Table 4 row 4).

   For every voxel x the kernel accumulates, over all k-space samples,
     re(x) += rRe_k * cos(arg) - rIm_k * sin(arg)
     im(x) += rIm_k * cos(arg) + rRe_k * sin(arg)
   with arg = 2*pi * (kx*x + ky*y + kz*z).  Sample data lives in
   constant memory; sin/cos run on the SFUs, so like CP this kernel's
   long-latency behaviour inside the loop is SFU work.

   Configuration axes (Table 4 row 4: "block size, unroll factor, work
   per kernel invocation"):
   - [tpb]:    threads per block in {64, 96, 128, 192, 256};
   - [unroll]: sample-loop unroll factor in {1, 2, 4, 8, 16};
   - [wpt]:    voxels processed sequentially per thread, in {1..7}.
               The paper's third axis splits the same total work across
               kernel invocations; sequential voxel tiling is the
               in-simulator equivalent with the same metric signature —
               per-thread work scales by [wpt] while the thread count
               scales by 1/[wpt], leaving both Efficiency and
               Utilization unchanged.  This produces the paper's
               clusters of seven metric-identical configurations
               (Figure 6(b)).

   5 * 5 * 7 = 175 raw configurations, the paper's exact space size. *)

open Kir.Ast

type config = { tpb : int; unroll : int; wpt : int }

let space : config Tuner.Space.t =
  let open Tuner.Space in
  let+ tpb = ints ~name:"block" [ 64; 96; 128; 192; 256 ]
  and+ unroll = ints ~name:"unroll" [ 1; 2; 4; 8; 16 ]
  and+ wpt = ints ~name:"work/thread" [ 1; 2; 3; 4; 5; 6; 7 ] in
  { tpb; unroll; wpt }

let describe (c : config) = Printf.sprintf "tpb%d/u%d/w%d" c.tpb c.unroll c.wpt

(* One optimization axis changes the pass schedule: the sample-loop
   unroll, selected by exact loop label. *)
let schedule (c : config) : Tuner.Pipeline.schedule =
  let open Tuner.Pipeline in
  {
    kir_passes =
      (if c.unroll <> 1 then
         [
           kir_pass
             (Printf.sprintf "unroll(k,%d)" c.unroll)
             (Kir.Unroll.apply ~select:(Kir.Unroll.Named "k") ~factor:c.unroll);
         ]
       else []);
    ptx_passes = default_ptx_passes;
  }

let two_pi = Util.Float32.round (2.0 *. Float.pi)

(* Sample layout in constant memory: [kx; ky; kz; re; im] per sample.
   Voxel coordinates are three global arrays; outputs two global
   arrays. *)
let kernel ~nsamples ~nvox (c : config) : kernel =
  let base =
    {
      kname = "mri_" ^ String.map (function '/' -> '_' | ch -> ch) (describe c);
      scalar_params = [];
      array_params =
        [
          { aname = "samp"; aspace = Const };
          { aname = "vx"; aspace = Global };
          { aname = "vy"; aspace = Global };
          { aname = "vz"; aspace = Global };
          { aname = "outre"; aspace = Global };
          { aname = "outim"; aspace = Global };
        ];
      shared_decls = [];
      local_decls = [];
      body =
        [
          Let ("tid", S32, (bid_x *: i c.tpb) +: tid_x);
          (* The grid is padded up to a whole number of blocks; excess
             threads exit before touching memory. *)
          If (v "tid" >=: i (nvox / c.wpt), [ Return ], []);
          for_ "w" (i 0) (i c.wpt)
            [
              Let ("voxel", S32, (v "w" *: i (nvox / c.wpt)) +: v "tid");
              Let ("x", F32, Ld ("vx", v "voxel"));
              Let ("y", F32, Ld ("vy", v "voxel"));
              Let ("z", F32, Ld ("vz", v "voxel"));
              Mut ("re", F32, f 0.0);
              Mut ("im", F32, f 0.0);
              for_ "k" (i 0) (i nsamples)
                [
                  Let ("kx", F32, Ld ("samp", v "k" *: i 5));
                  Let ("ky", F32, Ld ("samp", (v "k" *: i 5) +: i 1));
                  Let ("kz", F32, Ld ("samp", (v "k" *: i 5) +: i 2));
                  Let ("sre", F32, Ld ("samp", (v "k" *: i 5) +: i 3));
                  Let ("sim", F32, Ld ("samp", (v "k" *: i 5) +: i 4));
                  Let
                    ( "arg",
                      F32,
                      f two_pi
                      *: ((v "kx" *: v "x") +: ((v "ky" *: v "y") +: (v "kz" *: v "z"))) );
                  Let ("ca", F32, Un (Cos, v "arg"));
                  Let ("sa", F32, Un (Sin, v "arg"));
                  Assign ("re", v "re" +: ((v "sre" *: v "ca") -: (v "sim" *: v "sa")));
                  Assign ("im", v "im" +: ((v "sim" *: v "ca") +: (v "sre" *: v "sa")));
                ];
              Store ("outre", v "voxel", v "re");
              Store ("outim", v "voxel", v "im");
            ];
        ];
    }
  in
  base

(* ------------------------------------------------------------------ *)
(* Host-side problem                                                   *)
(* ------------------------------------------------------------------ *)

type problem = {
  nsamples : int;
  nvox : int;
  dev : Gpu.Device.t;
  samp : Gpu.Device.buffer;
  vx : Gpu.Device.buffer;
  vy : Gpu.Device.buffer;
  vz : Gpu.Device.buffer;
  outre : Gpu.Device.buffer;
  outim : Gpu.Device.buffer;
  hsamp : float array;
  hvx : float array;
  hvy : float array;
  hvz : float array;
}

let default_nsamples = 64

(* 107520 = 420 * 256: divisible by every wpt in 1..7 and large enough
   that even the smallest grids (wpt = 7, 256-thread blocks) still give
   every SM several blocks, so cluster members differ only through real
   machine effects. *)
let default_nvox = 107520

let setup ?(nsamples = default_nsamples) ?(nvox = default_nvox) ?(seed = 19) () : problem =
  let dev = Gpu.Device.create ~global_words:(8 * nvox) () in
  let samp = Gpu.Device.alloc_const dev (5 * nsamples) in
  let vx = Gpu.Device.alloc dev nvox in
  let vy = Gpu.Device.alloc dev nvox in
  let vz = Gpu.Device.alloc dev nvox in
  let outre = Gpu.Device.alloc dev nvox in
  let outim = Gpu.Device.alloc dev nvox in
  let hsamp = Workload.mri_samples ~seed ~n:nsamples () in
  let hvx, hvy, hvz = Workload.mri_voxels ~n:nvox in
  Gpu.Device.to_device dev samp hsamp;
  Gpu.Device.to_device dev vx hvx;
  Gpu.Device.to_device dev vy hvy;
  Gpu.Device.to_device dev vz hvz;
  { nsamples; nvox; dev; samp; vx; vy; vz; outre; outim; hsamp; hvx; hvy; hvz }

(* Launch geometry and arguments, independent of the compiled kernel —
   the static analyzer consumes these before any PTX exists. *)
let launch_shape (p : problem) (c : config) : (int * int) * (int * int) =
  let threads = p.nvox / c.wpt in
  ((Util.Stats.cdiv threads c.tpb, 1), (c.tpb, 1))

let args_of (p : problem) : (string * Gpu.Sim.arg) list =
  [
    ("samp", Gpu.Sim.Buf p.samp);
    ("vx", Gpu.Sim.Buf p.vx);
    ("vy", Gpu.Sim.Buf p.vy);
    ("vz", Gpu.Sim.Buf p.vz);
    ("outre", Gpu.Sim.Buf p.outre);
    ("outim", Gpu.Sim.Buf p.outim);
  ]

let launch_of (p : problem) (c : config) (k : Ptx.Prog.t) : Gpu.Sim.launch =
  let grid, block = launch_shape p c in
  { Gpu.Sim.kernel = k; grid; block; args = args_of p }

let analysis_input_of ?(arch = Gpu.Arch.g80) (p : problem) (c : config) :
    Tuner.Pipeline.analysis_input =
  let grid, block = launch_shape p c in
  { Tuner.Pipeline.an_grid = grid; an_block = block; an_args = args_of p; an_arch = arch }

let compile ?(nsamples = default_nsamples) ?(nvox = default_nvox) ?verify ?hook ?analyze
    (c : config) : Tuner.Pipeline.compiled =
  Tuner.Pipeline.compile ?verify ?hook ?analyze (schedule c) (kernel ~nsamples ~nvox c)

let candidates ?(arch = Gpu.Arch.g80) ?extra_ptx ?(nsamples = default_nsamples)
    ?(nvox = default_nvox) ?(max_blocks = 3) () : Tuner.Candidate.t list =
  let p = setup ~nsamples ~nvox () in
  Tuner.Pipeline.candidates_of_space ~arch ?extra_ptx ~space ~describe ~schedule
    ~kernel:(fun cfg -> kernel ~nsamples ~nvox cfg)
    ~threads_per_block:(fun cfg -> cfg.tpb)
    ~threads_total:(fun cfg -> Util.Stats.cdiv (nvox / cfg.wpt) cfg.tpb * cfg.tpb)
    ~run:(fun cfg ptx () ->
      (* Private device clone: thunks may run on concurrent domains. *)
      let dev = Gpu.Device.clone p.dev in
      (Gpu.Sim.run ~mode:(Gpu.Sim.Timing { max_blocks }) ~arch dev (launch_of p cfg ptx)).time_s)
    ()

(* Single-thread CPU reference. *)
let cpu_reference (p : problem) : float array * float array =
  let module F = Util.Float32 in
  let re = Array.make p.nvox 0.0 and im = Array.make p.nvox 0.0 in
  for vo = 0 to p.nvox - 1 do
    let x = p.hvx.(vo) and y = p.hvy.(vo) and z = p.hvz.(vo) in
    let are = ref 0.0 and aim = ref 0.0 in
    for k = 0 to p.nsamples - 1 do
      let kx = p.hsamp.(5 * k) and ky = p.hsamp.((5 * k) + 1) and kz = p.hsamp.((5 * k) + 2) in
      let sre = p.hsamp.((5 * k) + 3) and sim = p.hsamp.((5 * k) + 4) in
      let arg = F.mul two_pi (F.add (F.mul kx x) (F.add (F.mul ky y) (F.mul kz z))) in
      let ca = F.cos arg and sa = F.sin arg in
      are := F.add !are (F.sub (F.mul sre ca) (F.mul sim sa));
      aim := F.add !aim (F.add (F.mul sim ca) (F.mul sre sa))
    done;
    re.(vo) <- !are;
    im.(vo) <- !aim
  done;
  (re, im)

let validate ?(nsamples = 16) ?(nvox = 840) (cfg : config) : bool =
  let p = setup ~nsamples ~nvox () in
  let ptx = (compile ~nsamples ~nvox cfg).ptx in
  ignore (Gpu.Sim.run ~mode:Gpu.Sim.Functional p.dev (launch_of p cfg ptx));
  let got_re = Gpu.Device.of_device p.dev p.outre in
  let got_im = Gpu.Device.of_device p.dev p.outim in
  let want_re, want_im = cpu_reference p in
  let ok = ref true in
  Array.iteri
    (fun idx g -> if not (Util.Float32.close ~rtol:1e-3 ~atol:1e-3 g want_re.(idx)) then ok := false)
    got_re;
  Array.iteri
    (fun idx g -> if not (Util.Float32.close ~rtol:1e-3 ~atol:1e-3 g want_im.(idx)) then ok := false)
    got_im;
  !ok

(* (voxel, sample) interactions for Table 3 accounting. *)
let interactions (p : problem) = float_of_int (p.nvox * p.nsamples)
