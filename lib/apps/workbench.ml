(* Quick-scale analysis workbenches: one per application, bundling a
   small staged problem, a chosen configuration compiled through the
   pipeline's analyze stage, and the launch geometry the analyzer
   reasoned about.  `gpuopt lint`, the bench harness's lint exhibit and
   the cross-validation tests all start from here, so they agree on
   problem sizes by construction.

   The problems are deliberately tiny (the matmul validation size, the
   apps' own quick/smoke sizes): cross-validation replays every block
   of the grid in the functional simulator, so the workbench scale is
   what bounds its cost. *)

type t = {
  wb_app : string;  (* registry name *)
  wb_config : string;  (* configuration description *)
  wb_dev : Gpu.Device.t;  (* device holding the staged buffers *)
  wb_kernel : Kir.Ast.kernel;  (* post-KIR-pass source, as analyzed *)
  wb_grid : int * int;
  wb_block : int * int;
  wb_args : (string * Gpu.Sim.arg) list;
  wb_arch : Gpu.Arch.t;  (* machine the analysis ran against *)
  wb_compiled : Tuner.Pipeline.compiled;  (* lint = Some _ *)
}

let lint_input ?name (wb : t) : Analysis.Lint.input =
  {
    Analysis.Lint.li_name =
      (match name with Some n -> n | None -> Printf.sprintf "%s %s" wb.wb_app wb.wb_config);
    li_kernel = wb.wb_kernel;
    li_grid = wb.wb_grid;
    li_block = wb.wb_block;
    li_args = wb.wb_args;
    li_arch = wb.wb_arch;
  }

(* The lint report the pipeline's analyze stage produced. *)
let lint (wb : t) : Analysis.Lint.report =
  match wb.wb_compiled.Tuner.Pipeline.lint with
  | Some r -> { r with Analysis.Lint.r_name = Printf.sprintf "%s %s" wb.wb_app wb.wb_config }
  | None -> Analysis.Lint.analyze (lint_input wb)

(* Re-analyze a mutated variant of the workbench kernel (dropped
   barrier, transposed store, ...) under the same launch. *)
let lint_mutant (wb : t) (mutate : Kir.Ast.kernel -> Kir.Ast.kernel) : Analysis.Lint.report =
  Analysis.Lint.analyze
    { (lint_input wb ~name:(Printf.sprintf "%s %s (mutant)" wb.wb_app wb.wb_config)) with
      Analysis.Lint.li_kernel = mutate wb.wb_kernel
    }

(* Diff static predictions against the simulator's per-site counters;
   [?mutate] cross-validates a mutated kernel instead. *)
let crossval ?mutate (wb : t) : Analysis.Crossval.t =
  let inp = lint_input wb in
  let inp =
    match mutate with
    | None -> inp
    | Some f -> { inp with Analysis.Lint.li_kernel = f wb.wb_kernel }
  in
  Analysis.Crossval.run ~dev:wb.wb_dev inp

(* ------------------------------------------------------------------ *)
(* Reduced launch shapes                                               *)
(* ------------------------------------------------------------------ *)

(* One definition of each app's reduced problem shape, shared by the
   lint workbenches below, the registry's reduced candidate builders,
   and the predictor's successive-halving race ([Tuner.Prune]).  The
   consumers must agree on these sizes — the race's store entries are
   keyed by the reduced space digest, and the analyzer's
   cross-validation replays the same launch — so the shapes live here
   once instead of drifting across call sites.

   The shapes are chosen for ordering fidelity, not just speed: the
   race only works if the reduced shape ranks candidates the way the
   full problem does.  That forces one rule — shrink the *sequential*
   dimension each thread iterates over (matrix extent, atoms per
   point, search positions, samples per voxel) and keep the *parallel*
   grid and the per-SM block cap at full scale.  Shrinking the grid
   instead leaves wide-work-per-thread configurations under-populated
   on the machine, and their relative order inverts: at 3360 voxels
   MRI's true optimum (192 threads, 7 voxels per thread) launches too
   few blocks to cover the SMs and ranks 160th of 175; at the full
   107520 voxels with only 16 samples it ranks 1st. *)
module Reduced = struct
  let matmul_n = 128
  let matmul_max_blocks = 8
  let cp_npx = Cp.default_npx
  let cp_npy = Cp.default_npy
  let cp_natoms = 8
  let cp_max_blocks = 8
  let sad_w = 48
  let sad_h = 32
  let sad_sr = 8
  let sad_max_blocks = 8
  let mri_nsamples = 16
  let mri_nvox = Mri_fhd.default_nvox
  let mri_max_blocks = 3

  (* shapes only; the candidate builders follow the Smoke module *)

  (* The same optimization spaces, compiled at the shapes above. *)
  let matmul ?arch ?extra_ptx () =
    Matmul.candidates ?arch ?extra_ptx ~n:matmul_n ~max_blocks:matmul_max_blocks ()

  let cp ?arch ?extra_ptx () =
    Cp.candidates ?arch ?extra_ptx ~npx:cp_npx ~npy:cp_npy ~natoms:cp_natoms
      ~max_blocks:cp_max_blocks ()

  let sad ?arch ?extra_ptx () =
    Sad.candidates ?arch ?extra_ptx ~w:sad_w ~h:sad_h ~sr:sad_sr ~max_blocks:sad_max_blocks ()

  let mri ?arch ?extra_ptx () =
    Mri_fhd.candidates ?arch ?extra_ptx ~nsamples:mri_nsamples ~nvox:mri_nvox
      ~max_blocks:mri_max_blocks ()
end

(* The quick smoke-test scale: the smallest problems the whole space
   can be swept at in well under a second, for the test suite and
   `--scale quick` sanity runs.  Deliberately NOT the [Reduced] race
   shapes above — smoke optimizes for sweep speed and tolerates a
   shuffled ranking, the race cannot. *)
module Smoke = struct
  let matmul_n = 64
  let matmul_max_blocks = 2
  let cp_npx = 256
  let cp_npy = 16
  let cp_natoms = 16
  let cp_max_blocks = 2
  let sad_w = 32
  let sad_h = 16
  let sad_sr = 2
  let sad_max_blocks = 2
  let mri_nsamples = 8
  let mri_nvox = 3360
  let mri_max_blocks = 1

  let matmul ?arch ?extra_ptx () =
    Matmul.candidates ?arch ?extra_ptx ~n:matmul_n ~max_blocks:matmul_max_blocks ()

  let cp ?arch ?extra_ptx () =
    Cp.candidates ?arch ?extra_ptx ~npx:cp_npx ~npy:cp_npy ~natoms:cp_natoms
      ~max_blocks:cp_max_blocks ()

  let sad ?arch ?extra_ptx () =
    Sad.candidates ?arch ?extra_ptx ~w:sad_w ~h:sad_h ~sr:sad_sr ~max_blocks:sad_max_blocks ()

  let mri ?arch ?extra_ptx () =
    Mri_fhd.candidates ?arch ?extra_ptx ~nsamples:mri_nsamples ~nvox:mri_nvox
      ~max_blocks:mri_max_blocks ()
end

(* ------------------------------------------------------------------ *)
(* Per-app builders                                                    *)
(* ------------------------------------------------------------------ *)

let resolve (type c) (space : c Tuner.Space.t) (describe : c -> string) (config : string option)
    : (c, string) result =
  match config with
  | None -> Ok (List.hd (Tuner.Space.configs space))
  | Some d -> (
    match Tuner.Space.find ~describe space d with
    | Some c -> Ok c
    | None -> Error (Printf.sprintf "no configuration %S" d))

let matmul ?(n = Reduced.matmul_n) ?arch ?config () : (t, string) result =
  Result.map
    (fun cfg ->
      let p = Matmul.setup ~n () in
      let ai = Matmul.analysis_input_of ?arch p cfg in
      let c = Matmul.compile ~n ~analyze:ai cfg in
      {
        wb_app = "matmul";
        wb_config = Matmul.describe cfg;
        wb_dev = p.Matmul.dev;
        wb_kernel = c.Tuner.Pipeline.source;
        wb_grid = ai.Tuner.Pipeline.an_grid;
        wb_block = ai.Tuner.Pipeline.an_block;
        wb_args = ai.Tuner.Pipeline.an_args;
        wb_arch = ai.Tuner.Pipeline.an_arch;
        wb_compiled = c;
      })
    (resolve Matmul.space Matmul.describe config)

let cp ?(npx = Reduced.cp_npx) ?(npy = Reduced.cp_npy) ?(natoms = Reduced.cp_natoms) ?arch
    ?config () : (t, string) result =
  Result.map
    (fun cfg ->
      let p = Cp.setup ~npx ~npy ~natoms () in
      let ai = Cp.analysis_input_of ?arch p cfg in
      let c = Cp.compile ~natoms ~analyze:ai cfg in
      {
        wb_app = "cp";
        wb_config = Cp.describe cfg;
        wb_dev = p.Cp.dev;
        wb_kernel = c.Tuner.Pipeline.source;
        wb_grid = ai.Tuner.Pipeline.an_grid;
        wb_block = ai.Tuner.Pipeline.an_block;
        wb_args = ai.Tuner.Pipeline.an_args;
        wb_arch = ai.Tuner.Pipeline.an_arch;
        wb_compiled = c;
      })
    (resolve Cp.space Cp.describe config)

let sad ?(w = Reduced.sad_w) ?(h = Reduced.sad_h) ?(sr = Reduced.sad_sr) ?arch ?config () :
    (t, string) result =
  Result.map
    (fun cfg ->
      let p = Sad.setup ~w ~h ~sr () in
      let ai = Sad.analysis_input_of ?arch p cfg in
      let c = Sad.compile ~w ~h ~sr ~analyze:ai cfg in
      {
        wb_app = "sad";
        wb_config = Sad.describe cfg;
        wb_dev = p.Sad.dev;
        wb_kernel = c.Tuner.Pipeline.source;
        wb_grid = ai.Tuner.Pipeline.an_grid;
        wb_block = ai.Tuner.Pipeline.an_block;
        wb_args = ai.Tuner.Pipeline.an_args;
        wb_arch = ai.Tuner.Pipeline.an_arch;
        wb_compiled = c;
      })
    (resolve Sad.space Sad.describe config)

let mri ?(nsamples = Reduced.mri_nsamples) ?(nvox = Reduced.mri_nvox) ?arch ?config () :
    (t, string) result =
  Result.map
    (fun cfg ->
      let p = Mri_fhd.setup ~nsamples ~nvox () in
      let ai = Mri_fhd.analysis_input_of ?arch p cfg in
      let c = Mri_fhd.compile ~nsamples ~nvox ~analyze:ai cfg in
      {
        wb_app = "mri";
        wb_config = Mri_fhd.describe cfg;
        wb_dev = p.Mri_fhd.dev;
        wb_kernel = c.Tuner.Pipeline.source;
        wb_grid = ai.Tuner.Pipeline.an_grid;
        wb_block = ai.Tuner.Pipeline.an_block;
        wb_args = ai.Tuner.Pipeline.an_args;
        wb_arch = ai.Tuner.Pipeline.an_arch;
        wb_compiled = c;
      })
    (resolve Mri_fhd.space Mri_fhd.describe config)

(* Smoke-shape workbenches: the same apps at the [Smoke] problem
   sizes, for sweep-heavy test batteries (golden digests, crossval)
   where functional-mode cost at the full-grid [Reduced] shapes would
   dominate the suite.  The lint entry points above stay on [Reduced],
   shared with the halving race. *)
let smoke_matmul ?arch ?config () = matmul ~n:Smoke.matmul_n ?arch ?config ()

let smoke_cp ?arch ?config () =
  cp ~npx:Smoke.cp_npx ~npy:Smoke.cp_npy ~natoms:Smoke.cp_natoms ?arch ?config ()

let smoke_sad ?arch ?config () = sad ~w:Smoke.sad_w ~h:Smoke.sad_h ~sr:Smoke.sad_sr ?arch ?config ()
let smoke_mri ?arch ?config () = mri ~nsamples:Smoke.mri_nsamples ~nvox:Smoke.mri_nvox ?arch ?config ()
