(* Quick-scale analysis workbenches: one per application, bundling a
   small staged problem, a chosen configuration compiled through the
   pipeline's analyze stage, and the launch geometry the analyzer
   reasoned about.  `gpuopt lint`, the bench harness's lint exhibit and
   the cross-validation tests all start from here, so they agree on
   problem sizes by construction.

   The problems are deliberately tiny (the matmul validation size, the
   apps' own quick/smoke sizes): cross-validation replays every block
   of the grid in the functional simulator, so the workbench scale is
   what bounds its cost. *)

type t = {
  wb_app : string;  (* registry name *)
  wb_config : string;  (* configuration description *)
  wb_dev : Gpu.Device.t;  (* device holding the staged buffers *)
  wb_kernel : Kir.Ast.kernel;  (* post-KIR-pass source, as analyzed *)
  wb_grid : int * int;
  wb_block : int * int;
  wb_args : (string * Gpu.Sim.arg) list;
  wb_arch : Gpu.Arch.t;  (* machine the analysis ran against *)
  wb_compiled : Tuner.Pipeline.compiled;  (* lint = Some _ *)
}

let lint_input ?name (wb : t) : Analysis.Lint.input =
  {
    Analysis.Lint.li_name =
      (match name with Some n -> n | None -> Printf.sprintf "%s %s" wb.wb_app wb.wb_config);
    li_kernel = wb.wb_kernel;
    li_grid = wb.wb_grid;
    li_block = wb.wb_block;
    li_args = wb.wb_args;
    li_arch = wb.wb_arch;
  }

(* The lint report the pipeline's analyze stage produced. *)
let lint (wb : t) : Analysis.Lint.report =
  match wb.wb_compiled.Tuner.Pipeline.lint with
  | Some r -> { r with Analysis.Lint.r_name = Printf.sprintf "%s %s" wb.wb_app wb.wb_config }
  | None -> Analysis.Lint.analyze (lint_input wb)

(* Re-analyze a mutated variant of the workbench kernel (dropped
   barrier, transposed store, ...) under the same launch. *)
let lint_mutant (wb : t) (mutate : Kir.Ast.kernel -> Kir.Ast.kernel) : Analysis.Lint.report =
  Analysis.Lint.analyze
    { (lint_input wb ~name:(Printf.sprintf "%s %s (mutant)" wb.wb_app wb.wb_config)) with
      Analysis.Lint.li_kernel = mutate wb.wb_kernel
    }

(* Diff static predictions against the simulator's per-site counters;
   [?mutate] cross-validates a mutated kernel instead. *)
let crossval ?mutate (wb : t) : Analysis.Crossval.t =
  let inp = lint_input wb in
  let inp =
    match mutate with
    | None -> inp
    | Some f -> { inp with Analysis.Lint.li_kernel = f wb.wb_kernel }
  in
  Analysis.Crossval.run ~dev:wb.wb_dev inp

(* ------------------------------------------------------------------ *)
(* Per-app builders                                                    *)
(* ------------------------------------------------------------------ *)

let resolve (type c) (space : c Tuner.Space.t) (describe : c -> string) (config : string option)
    : (c, string) result =
  match config with
  | None -> Ok (List.hd (Tuner.Space.configs space))
  | Some d -> (
    match Tuner.Space.find ~describe space d with
    | Some c -> Ok c
    | None -> Error (Printf.sprintf "no configuration %S" d))

let matmul ?arch ?config () : (t, string) result =
  Result.map
    (fun cfg ->
      let n = 64 in
      let p = Matmul.setup ~n () in
      let ai = Matmul.analysis_input_of ?arch p cfg in
      let c = Matmul.compile ~n ~analyze:ai cfg in
      {
        wb_app = "matmul";
        wb_config = Matmul.describe cfg;
        wb_dev = p.Matmul.dev;
        wb_kernel = c.Tuner.Pipeline.source;
        wb_grid = ai.Tuner.Pipeline.an_grid;
        wb_block = ai.Tuner.Pipeline.an_block;
        wb_args = ai.Tuner.Pipeline.an_args;
        wb_arch = ai.Tuner.Pipeline.an_arch;
        wb_compiled = c;
      })
    (resolve Matmul.space Matmul.describe config)

let cp ?arch ?config () : (t, string) result =
  Result.map
    (fun cfg ->
      let natoms = 16 in
      let p = Cp.setup ~npx:256 ~npy:16 ~natoms () in
      let ai = Cp.analysis_input_of ?arch p cfg in
      let c = Cp.compile ~natoms ~analyze:ai cfg in
      {
        wb_app = "cp";
        wb_config = Cp.describe cfg;
        wb_dev = p.Cp.dev;
        wb_kernel = c.Tuner.Pipeline.source;
        wb_grid = ai.Tuner.Pipeline.an_grid;
        wb_block = ai.Tuner.Pipeline.an_block;
        wb_args = ai.Tuner.Pipeline.an_args;
        wb_arch = ai.Tuner.Pipeline.an_arch;
        wb_compiled = c;
      })
    (resolve Cp.space Cp.describe config)

let sad ?arch ?config () : (t, string) result =
  Result.map
    (fun cfg ->
      let w = 32 and h = 16 and sr = 2 in
      let p = Sad.setup ~w ~h ~sr () in
      let ai = Sad.analysis_input_of ?arch p cfg in
      let c = Sad.compile ~w ~h ~sr ~analyze:ai cfg in
      {
        wb_app = "sad";
        wb_config = Sad.describe cfg;
        wb_dev = p.Sad.dev;
        wb_kernel = c.Tuner.Pipeline.source;
        wb_grid = ai.Tuner.Pipeline.an_grid;
        wb_block = ai.Tuner.Pipeline.an_block;
        wb_args = ai.Tuner.Pipeline.an_args;
        wb_arch = ai.Tuner.Pipeline.an_arch;
        wb_compiled = c;
      })
    (resolve Sad.space Sad.describe config)

let mri ?arch ?config () : (t, string) result =
  Result.map
    (fun cfg ->
      let nsamples = 8 and nvox = 3360 in
      let p = Mri_fhd.setup ~nsamples ~nvox () in
      let ai = Mri_fhd.analysis_input_of ?arch p cfg in
      let c = Mri_fhd.compile ~nsamples ~nvox ~analyze:ai cfg in
      {
        wb_app = "mri";
        wb_config = Mri_fhd.describe cfg;
        wb_dev = p.Mri_fhd.dev;
        wb_kernel = c.Tuner.Pipeline.source;
        wb_grid = ai.Tuner.Pipeline.an_grid;
        wb_block = ai.Tuner.Pipeline.an_block;
        wb_args = ai.Tuner.Pipeline.an_args;
        wb_arch = ai.Tuner.Pipeline.an_arch;
        wb_compiled = c;
      })
    (resolve Mri_fhd.space Mri_fhd.describe config)
