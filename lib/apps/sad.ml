(* SAD: sums of absolute differences for MPEG motion estimation (the
   paper's Figure 4 full-space exploration and Figure 6(d)).

   For every 4x4 pixel macroblock of the current frame and every
   candidate motion vector in a square search window of the reference
   frame, compute
     sad(mb, v) = sum over 16 pixels |cur(p) - ref(p + v)|.

   Organization: one thread block per macroblock; its threads cover the
   candidate vectors, [tiling] vectors per thread.  Following the
   paper's blanket rule ("use of shared memory and caches to improve
   data locality for reused values ... we apply this optimization
   unconditionally", section 3.1), both the macroblock's 16
   current-frame pixels and the (mb + 2*sr)^2 reference search window
   are staged in shared memory; the remaining global traffic (window
   staging + result stores) is modest, which still leaves SAD the least
   GPU-friendly of the four applications (Table 3: 5.51x over the
   optimized scalar CPU baseline).

   Configuration axes (Table 4 row 3: "per-thread tiling, unroll factor
   (3 loops), work per block"):
   - [tpb]:    threads per block in {32, 64, ..., 384} — the work per
               block axis and Figure 4's x axis;
   - [tiling]: candidate vectors per thread in {1, 2, 4};
   - [u_vec]:  unroll of the per-thread vector loop (factors <= tiling);
   - [u_py], [u_px]: unroll of the two 4-iteration pixel loops, in
               {1, 2, 4} each.

   The raw cross product (with u_vec <= tiling) has 12*6*9 = 648
   points; configurations whose threads exceed the candidate count or
   whose resources do not fit are invalid. *)

open Kir.Ast

type config = { tpb : int; tiling : int; u_vec : int; u_py : int; u_px : int }

let space : config Tuner.Space.t =
  let open Tuner.Space in
  (let+ tpb =
     ints ~name:"threads/block" [ 32; 64; 96; 128; 160; 192; 224; 256; 288; 320; 352; 384 ]
   and+ tiling = ints ~name:"tiling" [ 1; 2; 4 ]
   and+ u_vec = ints ~name:"unroll vec" [ 1; 2; 4 ]
   and+ u_py = ints ~name:"unroll py" [ 1; 2; 4 ]
   and+ u_px = ints ~name:"unroll px" [ 1; 2; 4 ] in
   { tpb; tiling; u_vec; u_py; u_px })
  |> filter ~name:"u_vec <= tiling" (fun c -> c.u_vec <= c.tiling)

let describe (c : config) =
  Printf.sprintf "tpb%d/t%d/uv%d/uy%d/ux%d" c.tpb c.tiling c.u_vec c.u_py c.u_px

(* The three unrolls as named-loop passes.  The loops are selected by
   exact label — "px" and "py" used to be matched by string *prefix*,
   which a rename could silently defeat; [Named] raises instead.  The
   pixel loops are unrolled innermost-first (px, then py) so the py
   copies replicate already-unrolled px bodies, then the per-thread
   vector loop "t". *)
let schedule (c : config) : Tuner.Pipeline.schedule =
  let open Tuner.Pipeline in
  let unroll label factor =
    if factor = 1 then []
    else
      [
        kir_pass
          (Printf.sprintf "unroll(%s,%d)" label factor)
          (Kir.Unroll.apply ~select:(Kir.Unroll.Named label) ~factor);
      ]
  in
  {
    kir_passes = unroll "px" c.u_px @ unroll "py" c.u_py @ unroll "t" c.u_vec;
    ptx_passes = default_ptx_passes;
  }

(* Search geometry: vectors dx, dy in [-sr, sr), i.e. (2*sr)^2
   candidates per macroblock. *)
let mb = 4

(* Generate the kernel for frame dimensions (w, h) and search radius
   [sr].  Grid: (number of macroblocks, chunks of candidate vectors).
   Block: [tpb] threads in x. *)
let kernel ~w ~h ~sr (c : config) : kernel =
  let side = 2 * sr in
  let nvec = side * side in
  let mbx = w / mb in
  let win = mb + (2 * sr) in
  (* window side: candidate origins span [c-sr, c+sr), plus mb pixels *)
  let base =
    {
      kname = "sad_" ^ String.map (function '/' -> '_' | ch -> ch) (describe c);
      scalar_params = [];
      array_params =
        [
          { aname = "cur"; aspace = Global };
          { aname = "reff"; aspace = Global };
          { aname = "sads"; aspace = Global };
        ];
      shared_decls = [ ("curs", mb * mb); ("wins", win * win) ];
      local_decls = [];
      body =
        [
          (* Macroblock coordinates from the x grid index. *)
          Let ("mbx", S32, Bin (Rem, bid_x, i mbx));
          Let ("mby", S32, bid_x /: i mbx);
          Let ("cx", S32, v "mbx" *: i mb);
          Let ("cy", S32, v "mby" *: i mb);
          (* Stage the current macroblock in shared memory. *)
          If
            ( tid_x <: i (mb * mb),
              [
                Store
                  ( "curs",
                    tid_x,
                    Ld ("cur", ((v "cy" +: (tid_x /: i mb)) *: i w) +: (v "cx" +: Bin (Rem, tid_x, i mb))) );
              ],
              [] );
          (* Stage the reference search window cooperatively.  Border
             positions clamp into the frame; consumers never index the
             out-of-frame cells (their own coordinates are clamped the
             same way). *)
          For
            {
              var = "s";
              lo = tid_x;
              hi = i (win * win);
              step = i c.tpb;
              trip = Some (Util.Stats.cdiv (win * win) c.tpb);
              body =
                [
                  Let ("wy", S32, v "s" /: i win);
                  Let ("wx", S32, Bin (Rem, v "s", i win));
                  Let ("gy", S32, Bin (Max, i 0, Bin (Min, (v "cy" -: i sr) +: v "wy", i (h - 1))));
                  Let ("gx", S32, Bin (Max, i 0, Bin (Min, (v "cx" -: i sr) +: v "wx", i (w - 1))));
                  Store ("wins", (v "wy" *: i win) +: v "wx", Ld ("reff", (v "gy" *: i w) +: v "gx"));
                ];
            };
          Sync;
          (* First candidate vector index handled by this thread. *)
          Let ("v0", S32, ((bid_y *: i c.tpb) +: tid_x) *: i c.tiling);
          If (v "v0" >=: i nvec, [ Return ], []);
          for_ "t" (i 0) (i c.tiling)
            [
              Let ("vidx", S32, v "v0" +: v "t");
              Let ("dx", S32, Bin (Rem, v "vidx", i side) -: i sr);
              Let ("dy", S32, (v "vidx" /: i side) -: i sr);
              (* Clamp the candidate origin against the frame borders,
                 then rebase into window coordinates. *)
              Let ("rx", S32, Bin (Max, i 0, Bin (Min, v "cx" +: v "dx", i (w - mb))) -: (v "cx" -: i sr));
              Let ("ry", S32, Bin (Max, i 0, Bin (Min, v "cy" +: v "dy", i (h - mb))) -: (v "cy" -: i sr));
              Mut ("acc", F32, f 0.0);
              for_ "py" (i 0) (i mb)
                [
                  for_ "px" (i 0) (i mb)
                    [
                      Let ("cv", F32, Ld ("curs", (v "py" *: i mb) +: v "px"));
                      Let
                        ( "rv",
                          F32,
                          Ld ("wins", ((v "ry" +: v "py") *: i win) +: (v "rx" +: v "px")) );
                      Assign ("acc", v "acc" +: Un (Abs, v "cv" -: v "rv"));
                    ];
                ];
              Store ("sads", (bid_x *: i nvec) +: v "vidx", v "acc");
            ];
        ];
    }
  in
  base

(* ------------------------------------------------------------------ *)
(* Host-side problem                                                   *)
(* ------------------------------------------------------------------ *)

type problem = {
  w : int;
  h : int;
  sr : int;
  dev : Gpu.Device.t;
  cur : Gpu.Device.buffer;
  reff : Gpu.Device.buffer;
  sads : Gpu.Device.buffer;
  hcur : float array;
  href : float array;
}

(* QCIF frames, as in the paper; reduced search radius keeps full-space
   simulation tractable (the paper likewise used smaller-than-typical
   inputs). *)
let default_w = 176
let default_h = 144
let default_sr = 8

let setup ?(w = default_w) ?(h = default_h) ?(sr = default_sr) ?(seed = 17) () : problem =
  let mbs = w / mb * (h / mb) in
  let nvec = 4 * sr * sr in
  let dev = Gpu.Device.create ~global_words:((2 * w * h) + (mbs * nvec)) () in
  let cur = Gpu.Device.alloc dev (w * h) in
  let reff = Gpu.Device.alloc dev (w * h) in
  let sads = Gpu.Device.alloc dev (mbs * nvec) in
  let hcur = Workload.frame ~seed ~width:w ~height:h ~shift_x:0 ~shift_y:0 () in
  let href = Workload.frame ~seed ~width:w ~height:h ~shift_x:3 ~shift_y:(-2) () in
  Gpu.Device.to_device dev cur hcur;
  Gpu.Device.to_device dev reff href;
  { w; h; sr; dev; cur; reff; sads; hcur; href }

(* Launch geometry and arguments, independent of the compiled kernel —
   the static analyzer consumes these before any PTX exists. *)
let launch_shape (p : problem) (c : config) : (int * int) * (int * int) =
  let mbs = p.w / mb * (p.h / mb) in
  let nvec = 4 * p.sr * p.sr in
  let chunks = Util.Stats.cdiv nvec (c.tpb * c.tiling) in
  ((mbs, chunks), (c.tpb, 1))

let args_of (p : problem) : (string * Gpu.Sim.arg) list =
  [ ("cur", Gpu.Sim.Buf p.cur); ("reff", Gpu.Sim.Buf p.reff); ("sads", Gpu.Sim.Buf p.sads) ]

let launch_of (p : problem) (c : config) (k : Ptx.Prog.t) : Gpu.Sim.launch =
  let grid, block = launch_shape p c in
  { Gpu.Sim.kernel = k; grid; block; args = args_of p }

let analysis_input_of ?(arch = Gpu.Arch.g80) (p : problem) (c : config) :
    Tuner.Pipeline.analysis_input =
  let grid, block = launch_shape p c in
  { Tuner.Pipeline.an_grid = grid; an_block = block; an_args = args_of p; an_arch = arch }

let compile ?(w = default_w) ?(h = default_h) ?(sr = default_sr) ?verify ?hook ?analyze
    (c : config) : Tuner.Pipeline.compiled =
  Tuner.Pipeline.compile ?verify ?hook ?analyze (schedule c) (kernel ~w ~h ~sr c)

let candidates ?(arch = Gpu.Arch.g80) ?extra_ptx ?(w = default_w) ?(h = default_h)
    ?(sr = default_sr) ?(max_blocks = 8) () : Tuner.Candidate.t list =
  let p = setup ~w ~h ~sr () in
  let nvec = 4 * sr * sr in
  let mbs = w / mb * (h / mb) in
  Tuner.Pipeline.candidates_of_space ~arch ?extra_ptx ~space ~describe ~schedule
    ~kernel:(fun cfg -> kernel ~w ~h ~sr cfg)
    ~threads_per_block:(fun cfg -> cfg.tpb)
    ~threads_total:(fun cfg -> mbs * Util.Stats.cdiv nvec (cfg.tpb * cfg.tiling) * cfg.tpb)
    ~run:(fun cfg ptx () ->
      (* Private device clone: thunks may run on concurrent domains. *)
      let dev = Gpu.Device.clone p.dev in
      (Gpu.Sim.run ~mode:(Gpu.Sim.Timing { max_blocks }) ~arch dev (launch_of p cfg ptx)).time_s)
    ()

(* Single-thread CPU reference. *)
let cpu_reference (p : problem) : float array =
  let mbx = p.w / mb and mby = p.h / mb in
  let side = 2 * p.sr in
  let nvec = side * side in
  let out = Array.make (mbx * mby * nvec) 0.0 in
  for bi = 0 to (mbx * mby) - 1 do
    let cx = bi mod mbx * mb and cy = bi / mbx * mb in
    for vi = 0 to nvec - 1 do
      let dx = (vi mod side) - p.sr and dy = (vi / side) - p.sr in
      let rx = max 0 (min (cx + dx) (p.w - mb)) in
      let ry = max 0 (min (cy + dy) (p.h - mb)) in
      let acc = ref 0.0 in
      for py = 0 to mb - 1 do
        for px = 0 to mb - 1 do
          let cv = p.hcur.(((cy + py) * p.w) + cx + px) in
          let rv = p.href.(((ry + py) * p.w) + rx + px) in
          acc := Util.Float32.add !acc (Util.Float32.abs (Util.Float32.sub cv rv))
        done
      done;
      out.((bi * nvec) + vi) <- !acc
    done
  done;
  out

let validate ?(w = 32) ?(h = 16) ?(sr = 4) (cfg : config) : bool =
  let p = setup ~w ~h ~sr () in
  let ptx = (compile ~w ~h ~sr cfg).ptx in
  ignore (Gpu.Sim.run ~mode:Gpu.Sim.Functional p.dev (launch_of p cfg ptx));
  let got = Gpu.Device.of_device p.dev p.sads in
  let want = cpu_reference p in
  let ok = ref true in
  Array.iteri (fun idx g -> if not (Util.Float32.close g want.(idx)) then ok := false) got;
  !ok

(* Pixel-difference operations for Table 3 accounting. *)
let absdiff_ops (p : problem) =
  float_of_int (p.w / mb * (p.h / mb) * 4 * p.sr * p.sr * mb * mb)
