(* Dense matrix multiplication — the paper's running example
   (Figure 2 kernels, Figure 3 performance, Figure 6(a), Table 4).

   Configuration axes (Table 4 row 1: "tile/block size, rectangular
   tile dimension, unroll factor, prefetching, register spilling"):

   - [tile]:     8 or 16 — the square output tile computed by a block
                 (block = tile x tile threads, Figure 2(a));
   - [rect]:     1, 2 or 4 — rectangular thread-level tiling: each
                 thread computes [rect] output elements, consuming
                 [rect] B-tiles per A-tile (Figure 2(b));
   - [unroll]:   1, 2, 4 or 0 (= complete) on the inner k-loop
                 (Figure 2(c));
   - [prefetch]: software-pipeline the tile loop's global loads
                 (Figure 2(d));
   - [spill]:    proactively spill one accumulator to local memory.

   2*3*4*2*2 = 96 raw points; configurations whose register demand
   leaves no room for a single block are invalid executables, exactly
   as in the paper's Figure 3 (prefetch at the highest register
   pressure point). *)

open Kir.Ast

type config = { tile : int; rect : int; unroll : int; prefetch : bool; spill : bool }

let space : config Tuner.Space.t =
  let open Tuner.Space in
  let+ tile = axis ~name:"tile" ~show:(fun t -> Printf.sprintf "%dx%d" t t) [ 8; 16 ]
  and+ rect = axis ~name:"rect" ~show:(fun r -> Printf.sprintf "1x%d" r) [ 1; 2; 4 ]
  and+ unroll =
    axis ~name:"unroll"
      ~show:(fun u -> if u = 0 then "complete" else string_of_int u)
      [ 1; 2; 4; 0 ]
  and+ prefetch = bools ~name:"prefetch" [ false; true ]
  and+ spill = bools ~name:"spill" [ false; true ] in
  { tile; rect; unroll; prefetch; spill }

let describe (c : config) =
  Printf.sprintf "%dx%d/1x%d/u%s%s%s" c.tile c.tile c.rect
    (if c.unroll = 0 then "C" else string_of_int c.unroll)
    (if c.prefetch then "/pf" else "")
    (if c.spill then "/sp" else "")

(* The optimization configuration as a pass schedule: unroll the inner
   k-loop, then software-pipeline the tile loop's loads, then spill the
   first accumulator — the order the paper applies them in. *)
let schedule (c : config) : Tuner.Pipeline.schedule =
  let open Tuner.Pipeline in
  {
    kir_passes =
      (if c.unroll <> 1 then
         [
           kir_pass
             (Printf.sprintf "unroll(k,%s)"
                (if c.unroll = 0 then "complete" else string_of_int c.unroll))
             (Kir.Unroll.apply ~select:(Kir.Unroll.Named "k") ~factor:c.unroll);
         ]
       else [])
      @ (if c.prefetch then [ kir_pass "prefetch" (fun k -> fst (Kir.Prefetch.apply k)) ]
         else [])
      @ (if c.spill then [ kir_pass "spill(sum0)" (Kir.Spill.apply ~vars:[ "sum0" ]) ] else []);
    ptx_passes = default_ptx_passes;
  }

(* The baseline KIR kernel for a (tile, rect) shape: block (tile x
   tile); each thread accumulates [rect] outputs whose columns are
   [col + r*tile].  Shared tiles: As[tile][tile], Bs[tile][tile*rect]. *)
let kernel ~n (c : config) : kernel =
  let t = c.tile and r = c.rect in
  let sums = List.init r (fun j -> Printf.sprintf "sum%d" j) in
  let base =
    {
      kname = "mm_" ^ String.map (function '/' -> '_' | ch -> ch) (describe c);
      scalar_params = [];
      array_params =
        [
          { aname = "A"; aspace = Global };
          { aname = "B"; aspace = Global };
          { aname = "C"; aspace = Global };
        ];
      shared_decls = [ ("As", t * t); ("Bs", t * t * r) ];
      local_decls = [];
      body =
        [ Let ("row", S32, (bid_y *: i t) +: tid_y); Let ("col0", S32, (bid_x *: i (t * r)) +: tid_x) ]
        @ List.map (fun s -> Mut (s, F32, f 0.0)) sums
        @ [
            for_ "tb" (i 0) (i (n / t))
              ((* cooperative loads: one A element, [rect] B elements *)
               Let ("a", F32, Ld ("A", (v "row" *: i n) +: ((v "tb" *: i t) +: tid_x))
               )
               :: List.concat
                    (List.init r (fun j ->
                         [
                           Let
                             ( Printf.sprintf "b%d" j,
                               F32,
                               Ld
                                 ( "B",
                                   ((v "tb" *: i t) +: tid_y) *: i n
                                   +: (v "col0" +: i (j * t)) ) );
                         ]))
               @ [ Store ("As", (tid_y *: i t) +: tid_x, v "a") ]
               @ List.init r (fun j ->
                     Store
                       ( "Bs",
                         (tid_y *: i (t * r)) +: (tid_x +: i (j * t)),
                         v (Printf.sprintf "b%d" j) ))
               @ [
                   Sync;
                   for_ "k" (i 0) (i t)
                     (Let ("av", F32, Ld ("As", (tid_y *: i t) +: v "k"))
                     :: List.map
                          (fun j ->
                            Assign
                              ( Printf.sprintf "sum%d" j,
                                v (Printf.sprintf "sum%d" j)
                                +: (v "av"
                                   *: Ld ("Bs", (v "k" *: i (t * r)) +: (tid_x +: i (j * t)))) ))
                          (List.init r Fun.id));
                   Sync;
                 ]);
          ]
        @ List.init r (fun j ->
              Store
                ( "C",
                  (v "row" *: i n) +: (v "col0" +: i (j * t)),
                  v (Printf.sprintf "sum%d" j) ));
    }
  in
  base

(* ------------------------------------------------------------------ *)
(* Host-side problem                                                   *)
(* ------------------------------------------------------------------ *)

type problem = {
  n : int;
  dev : Gpu.Device.t;
  a : Gpu.Device.buffer;
  b : Gpu.Device.buffer;
  c : Gpu.Device.buffer;
  ha : float array;
  hb : float array;
}

let default_n = 512

let setup ?(n = default_n) ?(seed = 11) () : problem =
  let dev = Gpu.Device.create ~global_words:(4 * n * n) () in
  let a = Gpu.Device.alloc dev (n * n) in
  let b = Gpu.Device.alloc dev (n * n) in
  let c = Gpu.Device.alloc dev (n * n) in
  let ha = Workload.matrix ~seed n in
  let hb = Workload.matrix ~seed:(seed + 1) n in
  Gpu.Device.to_device dev a ha;
  Gpu.Device.to_device dev b hb;
  { n; dev; a; b; c; ha; hb }

(* Launch geometry and arguments, independent of the compiled kernel —
   the static analyzer consumes these before any PTX exists. *)
let launch_shape (p : problem) (cfg : config) : (int * int) * (int * int) =
  ((p.n / (cfg.tile * cfg.rect), p.n / cfg.tile), (cfg.tile, cfg.tile))

let args_of (p : problem) : (string * Gpu.Sim.arg) list =
  [ ("A", Gpu.Sim.Buf p.a); ("B", Gpu.Sim.Buf p.b); ("C", Gpu.Sim.Buf p.c) ]

let launch_of (p : problem) (cfg : config) (k : Ptx.Prog.t) : Gpu.Sim.launch =
  let grid, block = launch_shape p cfg in
  { Gpu.Sim.kernel = k; grid; block; args = args_of p }

let analysis_input_of ?(arch = Gpu.Arch.g80) (p : problem) (cfg : config) :
    Tuner.Pipeline.analysis_input =
  let grid, block = launch_shape p cfg in
  { Tuner.Pipeline.an_grid = grid; an_block = block; an_args = args_of p; an_arch = arch }

(* The one compile entry point: [schedule c] applied to the base kernel
   through the verified pipeline. *)
let compile ?(n = default_n) ?verify ?hook ?analyze (c : config) : Tuner.Pipeline.compiled =
  Tuner.Pipeline.compile ?verify ?hook ?analyze (schedule c) (kernel ~n c)

(* Build the full candidate list for the tuner: compile every
   configuration through the pipeline, characterize it statically, and
   provide a simulated measurement thunk. *)
let candidates ?(arch = Gpu.Arch.g80) ?extra_ptx ?(n = default_n) ?(max_blocks = 12) () :
    Tuner.Candidate.t list =
  let p = setup ~n () in
  Tuner.Pipeline.candidates_of_space ~arch ?extra_ptx ~space ~describe ~schedule
    ~kernel:(fun cfg -> kernel ~n cfg)
    ~threads_per_block:(fun cfg -> cfg.tile * cfg.tile)
    ~threads_total:(fun cfg -> n / cfg.rect * n)
    ~run:(fun cfg ptx () ->
      (* Run against a private clone of the staged device: measurement
         thunks may execute on concurrent domains (Search ~jobs). *)
      let dev = Gpu.Device.clone p.dev in
      (Gpu.Sim.run ~mode:(Gpu.Sim.Timing { max_blocks }) ~arch dev (launch_of p cfg ptx)).time_s)
    ()

(* Single-thread CPU reference (binary32 semantics, same accumulation
   order as the kernel: k-major). *)
let cpu_reference ~n (ha : float array) (hb : float array) : float array =
  let out = Array.make (n * n) 0.0 in
  for row = 0 to n - 1 do
    for col = 0 to n - 1 do
      let s = ref 0.0 in
      for k = 0 to n - 1 do
        s := Util.Float32.mad ha.((row * n) + k) hb.((k * n) + col) !s
      done;
      out.((row * n) + col) <- !s
    done
  done;
  out

(* Functional validation of one configuration against the reference.
   Compiles through the same pipeline as [candidates], so the validated
   kernel can never diverge from the measured one. *)
let validate ?(n = 64) (cfg : config) : bool =
  let p = setup ~n () in
  let ptx = (compile ~n cfg).ptx in
  ignore (Gpu.Sim.run ~mode:Gpu.Sim.Functional p.dev (launch_of p cfg ptx));
  let got = Gpu.Device.of_device p.dev p.c in
  let want = cpu_reference ~n p.ha p.hb in
  let ok = ref true in
  Array.iteri (fun idx g -> if not (Util.Float32.close g want.(idx)) then ok := false) got;
  !ok

(* Useful work for Table 3: 2*N^3 flops. *)
let flops ~n = 2.0 *. (float_of_int n ** 3.0)
