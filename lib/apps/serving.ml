(* The registry-backed resolver for the tuning service.

   [Tuner.Serve] deliberately knows nothing about concrete
   applications; this module closes the loop, mapping the wire
   protocol's (app, scale) names onto [Registry] entries.  Everything a
   request needs repeatedly is memoized here, once per process:

   - the candidate list for each (app, scale) — building candidates
     compiles the whole space, which must happen once, not per request;
   - the content address of every candidate in the space — the store
     key digests rendered PTX, and re-rendering it on each of thousands
     of warm requests would dwarf the actual lookup.

   The memo tables are filled under a lock and read-only afterwards, so
   connection-worker domains share them freely. *)

let scale_candidates (e : Registry.entry) ~(arch : Gpu.Arch.t) (scale : Tuner.Proto.scale) :
    Tuner.Candidate.t list =
  match scale with
  | Tuner.Proto.Quick -> e.quick_candidates ~arch ()
  | Tuner.Proto.Bench -> e.bench_candidates ~arch ()
  | Tuner.Proto.Full -> e.candidates ~arch ()

let unknown_app app =
  ( Tuner.Proto.Unknown_app,
    Printf.sprintf "unknown app %S (expected %s)" app (String.concat "|" Registry.names) )

let unknown_arch arch =
  ( Tuner.Proto.Bad_request,
    Printf.sprintf "unknown arch %S (expected %s)" arch
      (String.concat "|" Gpu.Arch.names) )

let resolver () : Tuner.Serve.resolver =
  let cache : (string, Tuner.Serve.resolved_space) Hashtbl.t = Hashtbl.create 16 in
  let cache_lock = Mutex.create () in
  let rv_space ~app ~scale ~arch:arch_name =
    match (Registry.find app, Gpu.Arch.find arch_name) with
    | None, _ -> Error (unknown_app app)
    | _, None -> Error (unknown_arch arch_name)
    | Some e, Some arch ->
      let arch_d = Tuner.Store.arch_digest ~arch () in
      let scale_n = Tuner.Proto.scale_name scale in
      let memo_key = app ^ "/" ^ scale_n ^ "/" ^ arch_name in
      Mutex.protect cache_lock (fun () ->
          match Hashtbl.find_opt cache memo_key with
          | Some sp -> Ok sp
          | None ->
            let cands = scale_candidates e ~arch scale in
            let descs =
              List.filter_map
                (fun (c : Tuner.Candidate.t) -> if c.valid then Some c.desc else None)
                cands
            in
            (* Same space digest as the direct [Search.bind_store] path:
               arch distinctness lives in [arch_d], so served and direct
               sweeps share warm store entries per arch. *)
            let space = Tuner.Store.space_digest ~app_name:app ~scale:scale_n descs in
            let keys = Hashtbl.create (List.length cands) in
            List.iter
              (fun (c : Tuner.Candidate.t) ->
                Hashtbl.replace keys c.desc
                  (Tuner.Store.candidate_key ~arch:arch_d ~space c))
              cands;
            let sp_store_key (c : Tuner.Candidate.t) =
              match Hashtbl.find_opt keys c.desc with
              | Some k -> k
              | None -> Tuner.Store.candidate_key ~arch:arch_d ~space c
            in
            (* The reduced race space is the registry's reduced builder
               on the same arch — the shared [Workbench.Reduced] shapes,
               so served predict-explores race exactly what the CLI and
               the lint workbenches use.  A quick space already is a
               reduced shape, so it races against itself. *)
            let sp_reduced =
              match scale with
              | Tuner.Proto.Quick -> lazy cands
              | Tuner.Proto.Bench | Tuner.Proto.Full -> lazy (e.reduced_candidates ~arch ())
            in
            let sp = { Tuner.Serve.sp_cands = cands; sp_store_key; sp_reduced } in
            Hashtbl.replace cache memo_key sp;
            Ok sp)
  in
  let rv_lint ~app ~config =
    match Registry.find app with
    | None -> Error (unknown_app app)
    | Some e -> (
      match e.workbench ?config () with
      | Error msg -> Error (Tuner.Proto.Bad_request, msg)
      | Ok wb ->
        let report = Workbench.lint wb in
        Ok (Analysis.Lint.render report, Analysis.Lint.has_errors report))
  in
  { Tuner.Serve.rv_apps = Registry.names; rv_space; rv_lint }
