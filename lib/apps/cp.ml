(* CP: coulombic potential over a 2-D grid slice (the paper's Figure 5
   and Figure 6(c); derived from the "Unroll8y" kernel of Stone et al.,
   accelerating molecular modeling).

   Each thread computes the electric potential at [tiling] grid points:
     V(p) = sum_j q_j / |p - atom_j|
   with atom data resident in constant memory and the reciprocal
   square root on the SFUs.  The kernel's inner loop touches no
   off-chip memory, so SFU instructions are the long-latency behaviour
   the Utilization metric regions on (paper section 4).

   Configuration axes (Table 4 row 2: "block size, per-thread tiling,
   coalescing of output"):
   - [block]:    threads per block, (16, by) with by in {2,4,8,16};
   - [tiling]:   results per thread along x, in {1,2,4,8,16}
                 (Figure 5's x axis);
   - [coalesce]: output layout — coalesced configurations have each
                 thread write points strided by the block width, so a
                 half-warp's stores land in one 64B segment;
                 uncoalesced ones give each thread [tiling] adjacent
                 points.

   4*5*2 = 40 raw points; high-tiling configurations whose register
   demand exceeds what 256-thread blocks can occupy become invalid,
   leaving a space of about the paper's 38. *)

open Kir.Ast

type config = { block_y : int; tiling : int; coalesce : bool }

let space : config Tuner.Space.t =
  let open Tuner.Space in
  let+ block_y = axis ~name:"block" ~show:(Printf.sprintf "16x%d") [ 2; 4; 8; 16 ]
  and+ tiling = ints ~name:"tiling" [ 1; 2; 4; 8; 16 ]
  and+ coalesce = bools ~name:"coalesced" [ true; false ] in
  { block_y; tiling; coalesce }

let block_x = 16

let describe (c : config) =
  Printf.sprintf "b16x%d/t%d%s" c.block_y c.tiling (if c.coalesce then "/co" else "/unco")

(* Every configuration axis changes the generated kernel, not a KIR
   pass, so the schedule is the bare default pipeline. *)
let schedule (_ : config) : Tuner.Pipeline.schedule = Tuner.Pipeline.default_schedule

(* Atom data layout in constant memory: [x; y; z; q] per atom.  The
   grid slice lies at z = z0 with unit spacing scaled by [1/scale]. *)
let kernel ~natoms (c : config) : kernel =
  let t = c.tiling in
  let sums = List.init t (fun j -> Printf.sprintf "pot%d" j) in
  (* Point x-coordinates per accumulator.  Coalesced: thread [tid_x]
     covers x0 + j*16 (strided by the block width, so a half-warp's
     stores are contiguous).  Uncoalesced: each thread owns [tiling]
     adjacent points x0 + j. *)
  let x_off j = if c.coalesce then j * block_x else j in
  let xs_expr j = v "x0" +: i (x_off j) in
  let out_index j = (v "row" *: Param "npx") +: (v "x0" +: i (x_off j)) in
  {
    kname = "cp_" ^ String.map (function '/' -> '_' | ch -> ch) (describe c);
    scalar_params = [ ("npx", S32); ("scale", F32); ("z0", F32) ];
    array_params = [ { aname = "atoms"; aspace = Const }; { aname = "V"; aspace = Global } ];
    shared_decls = [];
    local_decls = [];
    body =
      [
        Let ("row", S32, (bid_y *: i c.block_y) +: tid_y);
        Let ("xbase", S32, bid_x *: i (block_x * t));
        Let
          ( "x0",
            S32,
            if c.coalesce then v "xbase" +: tid_x else v "xbase" +: (tid_x *: i t) );
        Let ("py", F32, Un (ToF, v "row") *: Param "scale");
      ]
      @ List.concat
          (List.init t (fun j ->
               [ Let (Printf.sprintf "px%d" j, F32, Un (ToF, xs_expr j) *: Param "scale") ]))
      @ List.map (fun s -> Mut (s, F32, f 0.0)) sums
      @ [
          for_ "j" (i 0) (i natoms)
            ([
               Let ("ax", F32, Ld ("atoms", v "j" *: i 4));
               Let ("ay", F32, Ld ("atoms", (v "j" *: i 4) +: i 1));
               Let ("az", F32, Ld ("atoms", (v "j" *: i 4) +: i 2));
               Let ("aq", F32, Ld ("atoms", (v "j" *: i 4) +: i 3));
               Let ("dy", F32, v "py" -: v "ay");
               Let ("dz", F32, Param "z0" -: v "az");
               Let ("dyz2", F32, (v "dy" *: v "dy") +: (v "dz" *: v "dz"));
             ]
            @ List.concat
                (List.init t (fun j ->
                     let dx = Printf.sprintf "dx%d" j in
                     let r2 = Printf.sprintf "r2_%d" j in
                     [
                       Let (dx, F32, v (Printf.sprintf "px%d" j) -: v "ax");
                       Let (r2, F32, (v dx *: v dx) +: v "dyz2");
                       Assign
                         ( Printf.sprintf "pot%d" j,
                           v (Printf.sprintf "pot%d" j) +: (v "aq" *: Un (Rsqrt, v r2)) );
                     ])));
        ]
      @ List.concat
          (List.init t (fun j ->
               [ Store ("V", out_index j, v (Printf.sprintf "pot%d" j)) ]));
  }

(* ------------------------------------------------------------------ *)
(* Host-side problem                                                   *)
(* ------------------------------------------------------------------ *)

type problem = {
  npx : int;  (* grid points in x *)
  npy : int;
  natoms : int;
  scale : float;
  z0 : float;
  dev : Gpu.Device.t;
  atoms : Gpu.Device.buffer;
  out : Gpu.Device.buffer;
  hatoms : float array;
}

let default_npx = 2048
let default_npy = 128
let default_natoms = 128

let setup ?(npx = default_npx) ?(npy = default_npy) ?(natoms = default_natoms) ?(seed = 13) ()
    : problem =
  let dev = Gpu.Device.create ~global_words:(2 * npx * npy) () in
  let atoms_buf = Gpu.Device.alloc_const dev (4 * natoms) in
  let out = Gpu.Device.alloc dev (npx * npy) in
  let scale = Util.Float32.round 0.1 in
  let hatoms = Workload.atoms ~seed ~n:natoms ~extent:(float_of_int npx *. scale) () in
  Gpu.Device.to_device dev atoms_buf hatoms;
  { npx; npy; natoms; scale; z0 = Util.Float32.round 0.5; dev; atoms = atoms_buf; out; hatoms }

(* Launch geometry and arguments, independent of the compiled kernel —
   the static analyzer consumes these before any PTX exists. *)
let launch_shape (p : problem) (c : config) : (int * int) * (int * int) =
  ((p.npx / (block_x * c.tiling), p.npy / c.block_y), (block_x, c.block_y))

let args_of (p : problem) : (string * Gpu.Sim.arg) list =
  [
    ("npx", Gpu.Sim.I p.npx);
    ("scale", Gpu.Sim.F p.scale);
    ("z0", Gpu.Sim.F p.z0);
    ("atoms", Gpu.Sim.Buf p.atoms);
    ("V", Gpu.Sim.Buf p.out);
  ]

let launch_of (p : problem) (c : config) (k : Ptx.Prog.t) : Gpu.Sim.launch =
  let grid, block = launch_shape p c in
  { Gpu.Sim.kernel = k; grid; block; args = args_of p }

let analysis_input_of ?(arch = Gpu.Arch.g80) (p : problem) (c : config) :
    Tuner.Pipeline.analysis_input =
  let grid, block = launch_shape p c in
  { Tuner.Pipeline.an_grid = grid; an_block = block; an_args = args_of p; an_arch = arch }

let compile ?(natoms = default_natoms) ?verify ?hook ?analyze (c : config) : Tuner.Pipeline.compiled =
  Tuner.Pipeline.compile ?verify ?hook ?analyze (schedule c) (kernel ~natoms c)

let candidates ?(arch = Gpu.Arch.g80) ?extra_ptx ?(npx = default_npx) ?(npy = default_npy)
    ?(natoms = default_natoms) ?(max_blocks = 8) () : Tuner.Candidate.t list =
  let p = setup ~npx ~npy ~natoms () in
  Tuner.Pipeline.candidates_of_space ~arch ?extra_ptx ~space ~describe ~schedule
    ~kernel:(fun cfg -> kernel ~natoms cfg)
    ~threads_per_block:(fun cfg -> block_x * cfg.block_y)
    ~threads_total:(fun cfg -> npx / cfg.tiling * npy)
    ~run:(fun cfg ptx () ->
      (* Private device clone: thunks may run on concurrent domains. *)
      let dev = Gpu.Device.clone p.dev in
      (Gpu.Sim.run ~mode:(Gpu.Sim.Timing { max_blocks }) ~arch dev (launch_of p cfg ptx)).time_s)
    ()

(* Single-thread CPU reference: the same math with sqrt+divide (the SFU
   rsqrt shortcut is a GPU feature). *)
let cpu_reference (p : problem) : float array =
  let out = Array.make (p.npx * p.npy) 0.0 in
  for row = 0 to p.npy - 1 do
    for x = 0 to p.npx - 1 do
      let py = Util.Float32.mul (Util.Float32.of_int row) p.scale in
      let px = Util.Float32.mul (Util.Float32.of_int x) p.scale in
      let s = ref 0.0 in
      for j = 0 to p.natoms - 1 do
        let ax = p.hatoms.(4 * j) in
        let ay = p.hatoms.((4 * j) + 1) in
        let az = p.hatoms.((4 * j) + 2) in
        let aq = p.hatoms.((4 * j) + 3) in
        let dx = Util.Float32.sub px ax in
        let dy = Util.Float32.sub py ay in
        let dz = Util.Float32.sub p.z0 az in
        let r2 =
          Util.Float32.add
            (Util.Float32.mul dx dx)
            (Util.Float32.add (Util.Float32.mul dy dy) (Util.Float32.mul dz dz))
        in
        s := Util.Float32.add !s (Util.Float32.mul aq (Util.Float32.rsqrt r2))
      done;
      out.((row * p.npx) + x) <- !s
    done
  done;
  out

let validate ?(npx = 256) ?(npy = 16) ?(natoms = 32) (cfg : config) : bool =
  let p = setup ~npx ~npy ~natoms () in
  let ptx = (compile ~natoms cfg).ptx in
  ignore (Gpu.Sim.run ~mode:Gpu.Sim.Functional p.dev (launch_of p cfg ptx));
  let got = Gpu.Device.of_device p.dev p.out in
  let want = cpu_reference p in
  let ok = ref true in
  Array.iteri
    (fun idx g -> if not (Util.Float32.close ~rtol:1e-3 ~atol:1e-3 g want.(idx)) then ok := false)
    got;
  !ok

(* Pairwise interactions for Table 3 accounting. *)
let interactions (p : problem) = float_of_int (p.npx * p.npy * p.natoms)
