(* The application registry: every benchmark the repository reproduces,
   described uniformly so the CLI and the bench harness can enumerate
   them generically instead of hard-coding one match per app.

   Each entry erases the app's config type behind closures: the space
   metadata (axes, constraints, cardinality) for `gpuopt inspect`, the
   candidate builders at three problem sizes (full paper-scale,
   quick smoke-test, bench harness), and a by-description compile
   entry point that drives the traced pipeline. *)

type entry = {
  name : string;  (* CLI name, e.g. "matmul" *)
  display : string;  (* report heading, e.g. "Matrix Multiplication" *)
  title : string;  (* one-line description *)
  axes : Tuner.Space.axis_info list;
  constraints : string list;
  cardinality : int;  (* after validity constraints; Table 4 *)
  configs : string list Lazy.t;  (* all descriptions, enumeration order *)
  candidates :
    ?arch:Gpu.Arch.t -> ?extra_ptx:Tuner.Pipeline.ptx_pass list -> unit -> Tuner.Candidate.t list;
      (* paper-scale problem; [extra_ptx] appends passes (e.g. the
         verified peephole leg) to every candidate's schedule *)
  quick_candidates :
    ?arch:Gpu.Arch.t -> ?extra_ptx:Tuner.Pipeline.ptx_pass list -> unit -> Tuner.Candidate.t list;
      (* tiny smoke-test problem ([Workbench.Smoke]) *)
  reduced_candidates :
    ?arch:Gpu.Arch.t -> ?extra_ptx:Tuner.Pipeline.ptx_pass list -> unit -> Tuner.Candidate.t list;
      (* the shared reduced race/lint shape ([Workbench.Reduced]):
         sequential work cut down, parallel grid at full scale, so the
         predictor's halving race ranks candidates faithfully *)
  bench_candidates :
    ?arch:Gpu.Arch.t -> ?extra_ptx:Tuner.Pipeline.ptx_pass list -> unit -> Tuner.Candidate.t list;
      (* bench-harness problem *)
  compile :
    ?verify:bool ->
    ?hook:(Tuner.Pipeline.stat -> unit) ->
    ?analyze:Tuner.Pipeline.analysis_input ->
    string ->
    (Tuner.Pipeline.compiled, string) result;
      (* compile one configuration, selected by its description *)
  workbench : ?arch:Gpu.Arch.t -> ?config:string -> unit -> (Workbench.t, string) result;
      (* quick-scale problem + compiled default (or named) config, for
         the static analyzer and its cross-validation harness *)
}

let entry (type c) ~name ~display ~title ~(space : c Tuner.Space.t) ~(describe : c -> string)
    ~(compile :
        ?verify:bool ->
        ?hook:(Tuner.Pipeline.stat -> unit) ->
        ?analyze:Tuner.Pipeline.analysis_input ->
        c ->
        Tuner.Pipeline.compiled) ~workbench ~candidates ~quick ~reduced ~bench () : entry =
  {
    name;
    display;
    title;
    axes = Tuner.Space.axes space;
    constraints = Tuner.Space.constraints space;
    cardinality = Tuner.Space.cardinality space;
    configs = lazy (List.map describe (Tuner.Space.configs space));
    candidates;
    quick_candidates = quick;
    reduced_candidates = reduced;
    bench_candidates = bench;
    compile =
      (fun ?verify ?hook ?analyze desc ->
        match Tuner.Space.find ~describe space desc with
        | Some cfg -> Ok (compile ?verify ?hook ?analyze cfg)
        | None -> Error (Printf.sprintf "%s: no configuration %S" name desc));
    workbench;
  }

let matmul =
  entry ~name:"matmul" ~display:"Matrix Multiplication"
    ~title:"dense matrix multiplication (paper's running example, Figure 3)" ~space:Matmul.space
    ~describe:Matmul.describe
    ~compile:(fun ?verify ?hook ?analyze c -> Matmul.compile ?verify ?hook ?analyze c)
    ~workbench:(fun ?arch ?config () -> Workbench.matmul ?arch ?config ())
    ~candidates:(fun ?arch ?extra_ptx () -> Matmul.candidates ?arch ?extra_ptx ())
    ~quick:(fun ?arch ?extra_ptx () -> Workbench.Smoke.matmul ?arch ?extra_ptx ())
    ~reduced:(fun ?arch ?extra_ptx () -> Workbench.Reduced.matmul ?arch ?extra_ptx ())
    ~bench:(fun ?arch ?extra_ptx () -> Matmul.candidates ?arch ?extra_ptx ~n:256 ~max_blocks:8 ())
    ()

let cp =
  entry ~name:"cp" ~display:"CP" ~title:"coulombic potential over a grid slice (Figure 5)"
    ~space:Cp.space ~describe:Cp.describe
    ~compile:(fun ?verify ?hook ?analyze c -> Cp.compile ?verify ?hook ?analyze c)
    ~workbench:(fun ?arch ?config () -> Workbench.cp ?arch ?config ())
    ~candidates:(fun ?arch ?extra_ptx () -> Cp.candidates ?arch ?extra_ptx ())
    ~quick:(fun ?arch ?extra_ptx () -> Workbench.Smoke.cp ?arch ?extra_ptx ())
    ~reduced:(fun ?arch ?extra_ptx () -> Workbench.Reduced.cp ?arch ?extra_ptx ())
    ~bench:(fun ?arch ?extra_ptx () -> Cp.candidates ?arch ?extra_ptx ())
    ()

let sad =
  entry ~name:"sad" ~display:"SAD" ~title:"sums of absolute differences for motion estimation (Figure 4)"
    ~space:Sad.space ~describe:Sad.describe
    ~compile:(fun ?verify ?hook ?analyze c -> Sad.compile ?verify ?hook ?analyze c)
    ~workbench:(fun ?arch ?config () -> Workbench.sad ?arch ?config ())
    ~candidates:(fun ?arch ?extra_ptx () -> Sad.candidates ?arch ?extra_ptx ())
    ~quick:(fun ?arch ?extra_ptx () -> Workbench.Smoke.sad ?arch ?extra_ptx ())
    ~reduced:(fun ?arch ?extra_ptx () -> Workbench.Reduced.sad ?arch ?extra_ptx ())
    ~bench:(fun ?arch ?extra_ptx () -> Sad.candidates ?arch ?extra_ptx ())
    ()

let mri_fhd =
  entry ~name:"mri" ~display:"MRI-FHD" ~title:"F^H d for non-Cartesian MRI reconstruction (Figure 6(b))"
    ~space:Mri_fhd.space ~describe:Mri_fhd.describe
    ~compile:(fun ?verify ?hook ?analyze c -> Mri_fhd.compile ?verify ?hook ?analyze c)
    ~workbench:(fun ?arch ?config () -> Workbench.mri ?arch ?config ())
    ~candidates:(fun ?arch ?extra_ptx () -> Mri_fhd.candidates ?arch ?extra_ptx ())
    ~quick:(fun ?arch ?extra_ptx () -> Workbench.Smoke.mri ?arch ?extra_ptx ())
    ~reduced:(fun ?arch ?extra_ptx () -> Workbench.Reduced.mri ?arch ?extra_ptx ())
    ~bench:(fun ?arch ?extra_ptx () -> Mri_fhd.candidates ?arch ?extra_ptx ())
    ()

(* Enumeration order is the paper's Table 4 order. *)
let all = [ matmul; cp; sad; mri_fhd ]
let names = List.map (fun e -> e.name) all
let find n = List.find_opt (fun e -> String.equal e.name n) all
