(* Model-driven search: find the optimum while fully simulating only a
   slice of the space.

   The paper's methodology measures the Pareto subset of two static
   metrics (74-98% pruning, Table 4).  This module goes further with a
   three-rung successive-halving race:

     rung 0  predict   rank the WHOLE space with the [Predict] ridge
                       model, fit on a small seeded probe set that is
                       measured at full scale (and is part of the
                       final answer pool);
     rung 1  race      measure the space at the REDUCED launch shape
                       (the same quick scales the lint workbenches
                       use — [Apps.Workbench.Reduced]), which costs a
                       fraction of a full simulation per candidate;
                       [pl_race_frac] < 1 admits only the top
                       predicted slice, trading safety for speed;
     rung 2  simulate  fully simulate only the race's survivors — most
                       survivor slots go to the fastest-at-reduced-
                       shape candidates, with up to two reserved for
                       the model's own top predictions, so a reduced
                       shape that mis-ranks an outlier the model
                       understands still loses gracefully.

   Only rung 0's probes and rung 2's survivors touch the full-scale
   simulator, so the full-simulation count is structurally bounded by
   the budget — it is a property of the schedule, not of cache or
   store state, and the reported pruning ratio is identical on warm
   and cold runs.

   Determinism: the probe set comes from a [Util.Rng] stream seeded by
   a digest of the app name and the space's descs (no wall clock, no
   global [Random]); measurement order never affects simulated times
   ([Measure.measure_outcomes] preserves input order); ranking sorts
   are stable with index tie-breaks.  The outcome — model digest,
   ranking, winner — is therefore bit-identical for every [?jobs]
   value. *)

type plan = {
  pl_budget_frac : float;  (* full-simulation budget, fraction of the valid space *)
  pl_probe_frac : float;  (* fraction of that budget spent on the probe/fit set *)
  pl_race_frac : float;  (* fraction of the space admitted to the reduced-scale race *)
  pl_lambda : float;  (* ridge regularization *)
}

let default_plan =
  { pl_budget_frac = 0.10; pl_probe_frac = 0.4; pl_race_frac = 1.0; pl_lambda = 1e-2 }

(* Everything the racing stage needs beyond the candidate list itself:
   the same space compiled at the reduced launch shape, and the
   verified peephole database feeding the rule-win feature (empty is
   fine: the feature reads zero). *)
type spec = {
  sp_plan : plan;
  sp_reduced : Candidate.t list;
  sp_rules : Ptx.Patterns.rule list;
}

let spec ?(plan = default_plan) ?(rules = []) ~(reduced : Candidate.t list) () : spec =
  { sp_plan = plan; sp_reduced = reduced; sp_rules = rules }

type outcome = {
  pr_total : int;  (* valid candidates in the space *)
  pr_budget : int;  (* full-simulation budget, in candidates *)
  pr_probes : string list;  (* probe descs, selection order *)
  pr_raced : int;  (* candidates raced at the reduced shape *)
  pr_reduced_missing : int;  (* raced candidates with no valid reduced twin *)
  pr_survivors : string list;  (* race survivors, fully simulated *)
  pr_simulated : int;  (* distinct candidates fully simulated (probes + survivors) *)
  pr_winner : Measure.measured;  (* fastest fully-simulated candidate *)
  pr_ranked : (string * float) list;  (* desc, predicted seconds; rung-0 rank order *)
  pr_model : Predict.model;
  pr_residuals : (string * float * float) list;
      (* desc, predicted s, measured s — every fully simulated point,
         space order; journaled to the store for later refits *)
}

(* 1-based rung-0 rank of a desc (how early prediction alone would have
   tried it); None if the desc is not in the space. *)
let rank_of (o : outcome) (desc : string) : int option =
  let rec go i = function
    | [] -> None
    | (d, _) :: tl -> if String.equal d desc then Some i else go (i + 1) tl
  in
  go 1 o.pr_ranked

let recovered (o : outcome) ~(best : Measure.measured) : bool =
  o.pr_winner.Measure.time_s <= best.Measure.time_s

(* Seed for probe selection: a pure function of the app and the space,
   so reruns (and every jobs value) draw the same probes. *)
let probe_seed ~(app_name : string) (descs : string list) : int =
  let d = Digest.string (String.concat "\n" (app_name :: "predict-v1" :: descs)) in
  Int64.to_int (Bytes.get_int64_be (Bytes.of_string d) 0)

(* First [k] elements of a seeded shuffle of [xs]. *)
let sample ~seed k (xs : 'a list) : 'a list =
  let a = Array.of_list xs in
  let rng = Util.Rng.create seed in
  for i = Array.length a - 1 downto 1 do
    let j = Util.Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list (Array.sub a 0 (min k (Array.length a)))

(* Bind the reduced-scale engine to the store under the REDUCED space
   digest, so every race of the same space — warm daemon, CLI, bench —
   shares entries (mirrors [Search.bind_store], which lives above this
   module). *)
let bind_reduced_store engine ~app_name ~(scale : string) (reduced : Candidate.t list) store :
    unit =
  match (store, reduced) with
  | None, _ | _, [] -> ()
  | Some st, c0 :: _ ->
    let arch = Store.arch_digest ~arch:c0.Candidate.arch () in
    let descs =
      List.filter_map
        (fun (c : Candidate.t) -> if c.valid then Some c.desc else None)
        reduced
    in
    let space = Store.space_digest ~app_name ~scale descs in
    Measure.attach_store engine ~store:st ~key:(fun c -> Store.candidate_key ~arch ~space c)

(* Store key for the model + residual journal blob: the full space's
   content address tagged with the feature version, so a refit on a
   warm store overwrites nothing from other spaces and the blob
   invalidates itself when the features change. *)
let blob_key ~(app_name : string) ~(scale : string) (valid : Candidate.t list) : string =
  match valid with
  | [] -> Digest.to_hex (Digest.string "predict-empty")
  | c0 :: _ ->
    let arch = Store.arch_digest ~arch:c0.Candidate.arch () in
    let space =
      Store.space_digest ~app_name ~scale (List.map (fun (c : Candidate.t) -> c.desc) valid)
    in
    Digest.to_hex (Digest.string (String.concat "|" [ arch; space; "predict-v1" ]))

let blob_content (o : outcome) : string =
  String.concat "\n"
    (Predict.to_lines o.pr_model
    @ List.map
        (fun (d, p, m) ->
          Printf.sprintf "residual %S %s %s" d (Hexfloat.to_string p) (Hexfloat.to_string m))
        o.pr_residuals)
  ^ "\n"

(* The race itself.  [engine] is the FULL-scale measurement engine —
   the caller owns its store binding, and an engine that already holds
   exhaustive measurements (the explore comparison path) answers the
   probe and survivor requests from cache, so the structural counts in
   the outcome stay honest either way.  [store] additionally backs the
   reduced-scale race and receives the residual journal. *)
let run ?jobs ?store ?(reduced_scale = "reduced") ?(store_scale = "full") ?cancel
    ~(engine : Measure.t) ~(app_name : string) (s : spec) (cands : Candidate.t list) : outcome
    =
  let plan = s.sp_plan in
  let valid = List.filter (fun (c : Candidate.t) -> c.valid) cands in
  let n = List.length valid in
  if n = 0 then invalid_arg (app_name ^ ": no valid configuration to prune");
  let budget =
    min n (max 3 (int_of_float (Float.floor (plan.pl_budget_frac *. float_of_int n))))
  in
  let nprobe =
    max 2 (min (budget - 1) (int_of_float (Float.round (plan.pl_probe_frac *. float_of_int budget))))
  in
  let nprobe = min nprobe n in
  let descs = List.map (fun (c : Candidate.t) -> c.desc) valid in
  (* rung 0a: probe.  Probes are full-scale measurements and count
     against the budget; their times both fit the model and compete for
     the final answer. *)
  let probes = sample ~seed:(probe_seed ~app_name descs) nprobe valid in
  let probe_outcomes = Measure.measure_outcomes ?jobs ?cancel engine probes in
  let probe_ok =
    List.filter_map
      (fun ((c : Candidate.t), o) -> match o with Ok t -> Some (c, t) | Error _ -> None)
      probe_outcomes
  in
  (* rung 0b: fit + rank the whole space. *)
  let features =
    List.map (fun (c : Candidate.t) -> (c, Predict.of_candidate ~rules:s.sp_rules c)) valid
  in
  let feat_of =
    let tbl = Hashtbl.create (2 * n) in
    List.iter (fun ((c : Candidate.t), f) -> Hashtbl.replace tbl c.desc f) features;
    fun (c : Candidate.t) -> Hashtbl.find tbl c.desc
  in
  let model =
    Predict.fit ~lambda:plan.pl_lambda
      (List.filter_map
         (fun ((c : Candidate.t), t) ->
           if t > 0.0 then Some (feat_of c, Float.log t) else None)
         probe_ok)
  in
  let ranked =
    (* stable: equal predictions keep space order *)
    List.stable_sort
      (fun (_, a, i) (_, b, j) -> if a = b then compare i j else compare a b)
      (List.mapi (fun i (c, f) -> (c, Predict.predict model f, i)) features)
    |> List.map (fun ((c : Candidate.t), p, _) -> (c, Float.exp p))
  in
  (* rung 1: race the top predicted slice at the reduced shape.  A
     candidate without a valid reduced twin (validity can differ across
     shapes) cannot be raced; it keeps its prediction-order position
     AFTER every raced candidate, so the race can only promote. *)
  let probe_descs = List.map (fun (c : Candidate.t) -> c.desc) probes in
  let is_probe d = List.mem d probe_descs in
  let nrace =
    min n (max budget (int_of_float (Float.ceil (plan.pl_race_frac *. float_of_int n))))
  in
  let raced = List.filteri (fun i _ -> i < nrace) ranked in
  let twin =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (c : Candidate.t) -> if c.valid then Hashtbl.replace tbl c.desc c)
      s.sp_reduced;
    fun (c : Candidate.t) -> Hashtbl.find_opt tbl c.desc
  in
  let rengine = Measure.create ~app_name () in
  bind_reduced_store rengine ~app_name ~scale:reduced_scale s.sp_reduced store;
  let with_twin =
    List.filter_map (fun ((c : Candidate.t), _) -> Option.map (fun r -> (c, r)) (twin c)) raced
  in
  let reduced_times =
    let outs = Measure.measure_outcomes ?jobs ?cancel rengine (List.map snd with_twin) in
    let tbl = Hashtbl.create 64 in
    List.iter2
      (fun ((c : Candidate.t), _) (_, o) ->
        match o with Ok t -> Hashtbl.replace tbl c.desc t | Error _ -> ())
      with_twin outs;
    tbl
  in
  let missing =
    List.length (List.filter (fun ((c : Candidate.t), _) -> not (Hashtbl.mem reduced_times c.desc)) raced)
  in
  (* rung 2: fill the survivor slots that remain in the budget next to
     the probes.  Most slots go by reduced-shape time (sort key
     (reduced time, rung-0 rank); un-raceable candidates sort as +inf
     reduced time, i.e. by prediction alone).  When more than two
     slots exist, up to two are reserved for the model's best
     predictions among the rest — an ensemble pick, so neither fidelity
     has to be right alone. *)
  let nsurv = max 1 (budget - List.length probes) in
  let npred = min 2 (max 0 (nsurv - 2)) in
  let contenders =
    List.filteri (fun _ ((c : Candidate.t), _) -> not (is_probe c.desc)) raced
    |> List.mapi (fun i ((c : Candidate.t), _) ->
           let rt =
             match Hashtbl.find_opt reduced_times c.desc with
             | Some t -> t
             | None -> Float.infinity
           in
           (c, rt, i))
  in
  let by_reduced =
    List.stable_sort
      (fun (_, a, i) (_, b, j) -> if a = b then compare i j else compare a b)
      contenders
    |> List.filteri (fun i _ -> i < nsurv - npred)
    |> List.map (fun (c, _, _) -> c)
  in
  let taken = List.map (fun (c : Candidate.t) -> c.desc) by_reduced in
  let by_predicted =
    (* [contenders] carries rung-0 rank as its index: lower i = better
       predicted, so space order within the race is already encoded. *)
    List.stable_sort (fun (_, _, i) (_, _, j) -> compare i j) contenders
    |> List.filter (fun ((c : Candidate.t), _, _) -> not (List.mem c.desc taken))
    |> List.filteri (fun i _ -> i < npred)
    |> List.map (fun (c, _, _) -> c)
  in
  let survivors = by_reduced @ by_predicted in
  let survivor_outcomes = Measure.measure_outcomes ?jobs ?cancel engine survivors in
  let survivor_ok =
    List.filter_map
      (fun ((c : Candidate.t), o) -> match o with Ok t -> Some (c, t) | Error _ -> None)
      survivor_outcomes
  in
  (* The answer pool, in space order so time ties settle on the earlier
     candidate regardless of which rung admitted it. *)
  let pool_tbl = Hashtbl.create 64 in
  List.iter
    (fun ((c : Candidate.t), t) -> Hashtbl.replace pool_tbl c.desc (c, t))
    (probe_ok @ survivor_ok);
  let pool =
    List.filter_map (fun (c : Candidate.t) -> Hashtbl.find_opt pool_tbl c.desc) valid
  in
  if pool = [] then
    invalid_arg (app_name ^ ": every probed and raced configuration faulted");
  let winner =
    match Util.Stats.argmin (fun (_, t) -> t) pool with
    | Some (c, t) -> { Measure.cand = c; time_s = t }
    | None -> assert false
  in
  let outcome =
    {
      pr_total = n;
      pr_budget = budget;
      pr_probes = probe_descs;
      pr_raced = List.length raced;
      pr_reduced_missing = missing;
      pr_survivors = List.map (fun (c : Candidate.t) -> c.desc) survivors;
      pr_simulated = List.length probes + List.length survivors;
      pr_winner = winner;
      pr_ranked = List.map (fun ((c : Candidate.t), p) -> (c.desc, p)) ranked;
      pr_model = model;
      pr_residuals =
        List.map
          (fun ((c : Candidate.t), t) -> (c.desc, Float.exp (Predict.predict model (feat_of c)), t))
          pool;
    }
  in
  (match store with
  | None -> ()
  | Some st ->
    (* Journal the model and its predicted-vs-measured residuals as a
       store blob keyed by the space's content address: a warm store
       re-answers every probe from disk, so the refit costs nothing,
       and the journal documents what the model believed when it did. *)
    Store.put_blob st
      ~key:(blob_key ~app_name ~scale:store_scale valid)
      ~name:("predict/" ^ app_name) (blob_content outcome));
  outcome
