(* The unified compile-and-characterize pipeline.

   Every kernel in the repository — app candidates, single-config
   validation runs, minicuda files from the CLI — flows through
   [compile]: named KIR passes, lowering, named PTX passes, then the
   static characterization (resources, execution profile) the paper's
   metrics consume.  One entry point means the kernel the tuner
   *measures* is always the kernel it *characterized*.

   Between stages the pipeline verifies its own output (on by default):
   [Kir.Typecheck.check] after every KIR pass, [Ptx.Verify.check] after
   lowering and after every PTX pass.  A pass that corrupts the program
   raises [Pass_failed] naming the stage, instead of the corruption
   surfacing later as a wrong simulation result.

   Per-stage statistics (static size before/after, registers, wall
   time) are emitted through an optional [hook]; with no hook nothing
   is computed, so the bulk candidate builds pay only for verification.
   `gpuopt inspect --trace` and the bench harness's `trace` exhibit
   print these. *)

type layer = Kir | Lower | Ptx | Analyze | Characterize

let layer_name = function
  | Kir -> "kir"
  | Lower -> "lower"
  | Ptx -> "ptx"
  | Analyze -> "analyze"
  | Characterize -> "characterize"

type stat = {
  stage : string;  (* pass name; fixpoint rounds are suffixed "#n" *)
  layer : layer;
  size_before : int;  (* static size: KIR statements or PTX instructions *)
  size_after : int;
  regs : int;  (* allocated registers/thread after this stage (0 for KIR) *)
  elapsed_s : float;
  notes : string list;  (* per-stage diagnostics (the analyze stage's lints) *)
}

type kir_pass = { kp_name : string; kp_fn : Kir.Ast.kernel -> Kir.Ast.kernel }

type ptx_pass =
  | Ptx_pass of { pp_name : string; pp_fn : Ptx.Prog.t -> Ptx.Prog.t }
  | Fixpoint of {
      fp_name : string;
      max_rounds : int;
      fp_passes : (string * (Ptx.Prog.t -> Ptx.Prog.t)) list;
    }

let kir_pass name fn = { kp_name = name; kp_fn = fn }
let ptx_pass name fn = Ptx_pass { pp_name = name; pp_fn = fn }
let fixpoint ?(max_rounds = 8) name passes =
  Fixpoint { fp_name = name; max_rounds; fp_passes = passes }

type schedule = { kir_passes : kir_pass list; ptx_passes : ptx_pass list }

(* The standard PTX leg: copy-prop → cse → dce iterated to a fixed
   point, bounded — the exact composition (and termination test) of
   [Ptx.Opt.run], so scheduling the passes individually produces
   byte-identical kernels. *)
let default_ptx_passes =
  [
    fixpoint "opt"
      [ ("copy-prop", Ptx.Opt.propagate); ("cse", Ptx.Opt.cse); ("dce", Ptx.Opt.dce) ];
  ]

let default_schedule = { kir_passes = []; ptx_passes = default_ptx_passes }

(* The verified-peephole leg: apply a superoptimizer rule database as an
   ordinary named PTX pass, so it runs under the same per-stage
   [Ptx.Verify.check] as every hand-written pass. *)
let peephole (rules : Ptx.Patterns.rule list) : ptx_pass =
  ptx_pass "peephole" (Ptx.Peephole.run rules)

type compiled = {
  source : Kir.Ast.kernel;  (* the KIR actually lowered, after KIR passes *)
  ptx : Ptx.Prog.t;  (* the optimized kernel the simulator runs *)
  resource : Ptx.Resource.t;
  profile : Ptx.Count.profile;
  lint : Analysis.Lint.report option;  (* filled by the analyze stage *)
}

(* Launch geometry for the static memory-access analyzer: the affine
   analysis is per-launch (grid, block, argument bases), not
   per-kernel, so callers that want the analyze stage must say what
   launch they are compiling for. *)
type analysis_input = {
  an_grid : int * int;
  an_block : int * int;
  an_args : (string * Gpu.Sim.arg) list;
  an_arch : Gpu.Arch.t;  (* machine whose geometry the predictors use *)
}

(* The historical name; the exception itself lives in [Fault] (with its
   printer) so the fault classifier can match on it without a
   dependency cycle through the report layer. *)
exception Pass_failed = Fault.Pass_failed

(* Static size of a KIR body, for the trace. *)
let rec stmt_count (ss : Kir.Ast.stmt list) : int =
  List.fold_left
    (fun acc (s : Kir.Ast.stmt) ->
      acc
      +
      match s with
      | Kir.Ast.For l -> 1 + stmt_count l.body
      | Kir.Ast.If (_, a, b) -> 1 + stmt_count a + stmt_count b
      | _ -> 1)
    0 ss

let kir_size (k : Kir.Ast.kernel) = stmt_count k.body

let compile ?(verify = true) ?hook ?analyze (sched : schedule) (kernel : Kir.Ast.kernel) : compiled =
  let emit stat = match hook with Some f -> f stat | None -> () in
  let timed f x =
    let t0 = Unix.gettimeofday () in
    let y = f x in
    (y, Unix.gettimeofday () -. t0)
  in
  (* Registers are only computed when someone is watching the trace:
     allocation costs a liveness fixpoint per stage. *)
  let regs_of p = if Option.is_none hook then 0 else (Ptx.Regalloc.allocate p).reg_count in
  let typecheck stage k =
    if verify then
      try Kir.Typecheck.check k
      with Kir.Typecheck.Type_error msg -> raise (Pass_failed { stage; reason = msg })
  in
  let verify_ptx stage p =
    if verify then
      match Ptx.Verify.check p with
      | Ok () -> ()
      | Error vs -> raise (Pass_failed { stage; reason = Ptx.Verify.report vs })
  in
  typecheck "input" kernel;
  let kir =
    List.fold_left
      (fun k { kp_name; kp_fn } ->
        let before = kir_size k in
        let k', dt = timed kp_fn k in
        typecheck kp_name k';
        emit
          {
            stage = kp_name;
            layer = Kir;
            size_before = before;
            size_after = kir_size k';
            regs = 0;
            elapsed_s = dt;
            notes = [];
          };
        k')
      kernel sched.kir_passes
  in
  let ksize = kir_size kir in
  let ptx0, dt = timed Kir.Lower.lower kir in
  verify_ptx "lower" ptx0;
  emit
    {
      stage = "lower";
      layer = Lower;
      size_before = ksize;
      size_after = Ptx.Prog.static_size ptx0;
      regs = regs_of ptx0;
      elapsed_s = dt;
      notes = [];
    };
  let run_one layer name p fn =
    let before = Ptx.Prog.static_size p in
    let p', dt = timed fn p in
    emit
      {
        stage = name;
        layer;
        size_before = before;
        size_after = Ptx.Prog.static_size p';
        regs = regs_of p';
        elapsed_s = dt;
        notes = [];
      };
    p'
  in
  let apply_ptx p = function
    | Ptx_pass { pp_name; pp_fn } ->
      let p' = run_one Ptx pp_name p pp_fn in
      verify_ptx pp_name p';
      p'
    | Fixpoint { fp_name; max_rounds; fp_passes } ->
      (* Same termination rule as [Ptx.Opt.run]: stop when a whole round
         leaves the kernel unchanged, bounded by [max_rounds]. *)
      let rec go p n round =
        if n = 0 then p
        else
          let p' =
            List.fold_left
              (fun p (name, fn) -> run_one Ptx (Printf.sprintf "%s#%d" name round) p fn)
              p fp_passes
          in
          if Ptx.Prog.static_size p' = Ptx.Prog.static_size p && p' = p then p
          else go p' (n - 1) (round + 1)
      in
      let p' = go p max_rounds 1 in
      verify_ptx fp_name p';
      p'
  in
  let ptx = List.fold_left apply_ptx ptx0 sched.ptx_passes in
  (* Static memory-access analysis of the (post-KIR-pass) source the
     lowering consumed: affine per-site transaction / bank-conflict
     prediction plus the shared-memory race check, reported through the
     hook as the stage's notes. *)
  let lint =
    match analyze with
    | None -> None
    | Some a ->
      let t0 = Unix.gettimeofday () in
      let r =
        Analysis.Lint.analyze
          {
            Analysis.Lint.li_name = kernel.Kir.Ast.kname;
            li_kernel = kir;
            li_grid = a.an_grid;
            li_block = a.an_block;
            li_args = a.an_args;
            li_arch = a.an_arch;
          }
      in
      let nsites = List.length r.Analysis.Lint.r_sites in
      emit
        {
          stage = "analyze";
          layer = Analyze;
          size_before = nsites;
          size_after = nsites;
          regs = 0;
          elapsed_s = Unix.gettimeofday () -. t0;
          notes = r.Analysis.Lint.r_warnings;
        };
      Some r
  in
  let t0 = Unix.gettimeofday () in
  let resource = Ptx.Resource.of_kernel ptx in
  let profile = Ptx.Count.profile_of ptx in
  emit
    {
      stage = "characterize";
      layer = Characterize;
      size_before = Ptx.Prog.static_size ptx;
      size_after = Ptx.Prog.static_size ptx;
      regs = resource.regs_per_thread;
      elapsed_s = Unix.gettimeofday () -. t0;
      notes = [];
    };
  { source = kir; ptx; resource; profile; lint }

(* Fault-surfacing wrapper around [compile]: a verifier rejection or a
   raising pass becomes a classified [Fault.t] instead of an exception,
   so callers building candidates in bulk can record one bad config and
   keep compiling the rest. *)
let try_compile ?verify ?hook ?analyze (sched : schedule) (kernel : Kir.Ast.kernel) :
    (compiled, Fault.t) result =
  try Ok (compile ?verify ?hook ?analyze sched kernel)
  with e ->
    let bt = Printexc.get_backtrace () in
    Error (Fault.classify ~backtrace:bt e)

(* Lower + standard PTX optimization, no KIR passes: the entry point
   for already-configured kernels (minicuda files, examples). *)
let lower_opt ?verify ?hook ?analyze (k : Kir.Ast.kernel) : compiled =
  compile ?verify ?hook ?analyze default_schedule k

(* Compile every point of a space into a characterized candidate.  The
   parameter lists come from the space's axes, the kernel and schedule
   from the per-config closures; enumeration order is the space's.
   [?arch] is the machine the candidates target — it sets occupancy,
   validity and the metrics' machine terms, and the [run] closure must
   launch on the same machine (the apps thread it into [Gpu.Sim.run]). *)
let candidates_of_space ?verify ?hook ?arch ?(extra_ptx : ptx_pass list = [])
    ~(space : 'a Space.t) ~(describe : 'a -> string) ~(kernel : 'a -> Kir.Ast.kernel)
    ~(schedule : 'a -> schedule) ~(threads_per_block : 'a -> int) ~(threads_total : 'a -> int)
    ~(run : 'a -> Ptx.Prog.t -> unit -> float) () : Candidate.t list =
  List.map
    (fun (cfg, params) ->
      let sched = schedule cfg in
      let sched = { sched with ptx_passes = sched.ptx_passes @ extra_ptx } in
      let c = compile ?verify ?hook sched (kernel cfg) in
      Candidate.make ?arch ~desc:(describe cfg) ~params ~kernel:c.ptx ~resource:c.resource
        ~profile:c.profile
        ~threads_per_block:(threads_per_block cfg)
        ~threads_total:(threads_total cfg) ~run:(run cfg c.ptx) ())
    (Space.elements space)

(* Render a hook's collected stats as a report table; stage notes (the
   analyze stage's lint warnings) follow as indented lines. *)
let trace_table (stats : stat list) : string =
  Report.table
    [ "Stage"; "Layer"; "Size"; "Regs"; "Time" ]
    (List.map
       (fun s ->
         [
           s.stage;
           layer_name s.layer;
           (if s.size_before = s.size_after then string_of_int s.size_after
            else Printf.sprintf "%d -> %d" s.size_before s.size_after);
           (match s.layer with Kir | Analyze -> "-" | _ -> string_of_int s.regs);
           Printf.sprintf "%.2f ms" (s.elapsed_s *. 1000.0);
         ])
       stats)
  ^ String.concat ""
      (List.concat_map
         (fun s -> List.map (fun n -> Printf.sprintf "  %s: %s\n" s.stage n) s.notes)
         stats)
