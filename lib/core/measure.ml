(* Measurement engine: the expensive step of the paper's methodology,
   made parallel, memoized, fault-tolerant and resumable.

   Measuring a configuration means driving the cycle-approximate SM
   simulator through the candidate's [run] thunk — exactly the cost the
   pruning methodology exists to avoid paying for the whole space.  The
   engine adds four things on top of calling the thunk directly:

   - a per-application memoizing cache keyed by the candidate's [desc],
     so any candidate is simulated at most once per engine no matter
     how many passes (exhaustive sweep, Pareto subset, reports) ask for
     its time;
   - parallel bulk measurement over a [Util.Pool] of domains, with
     per-candidate host wall-time bookkeeping;
   - crash isolation: a thunk that throws (pass bug, launch rejection,
     simulator trap, watchdog abort) is recorded in the cache as a
     [Fault.t] — measured-as-failed exactly once, so retries are
     deterministic and one bad candidate cannot poison the sweep;
   - an optional checkpoint journal: every settled outcome (time or
     fault) is appended to a file as it lands, and a fresh engine can
     reload the journal to skip finished work, so an interrupted
     multi-hour sweep resumes where it stopped;
   - an optional content-addressed result store ([Store]): before
     paying for the simulator, the engine asks the store for the
     candidate's key, and every outcome it does pay for is written
     back — so across engines, processes and serving sessions, no
     (kernel x space x arch) point is ever measured twice.

   Determinism: simulated times depend only on the candidate itself
   (each [run] thunk operates on private state — see the domain-safety
   audit in DESIGN.md), and [Pool.map_result] preserves input order, so
   the results are identical whatever [jobs] is. *)

type measured = { cand : Candidate.t; time_s : float }

(* What one measurement settled to: the simulated seconds, or the
   classified fault that ended it. *)
type outcome = (float, Fault.t) result

(* Raised out of [measure_outcomes] when the journal's entry budget ran
   out mid-sweep (the harness's stand-in for a kill): the journal holds
   exactly the budgeted number of outcomes and a rerun against the same
   file resumes from them. *)
exception Interrupted of { file : string; journaled : int }

let () =
  Printexc.register_printer (function
    | Interrupted { file; journaled } ->
      Some
        (Printf.sprintf "Tuner.Measure.Interrupted(journal %s holds %d outcomes)" file journaled)
    | _ -> None)

type journal = {
  j_file : string;
  j_oc : out_channel;
  mutable j_remaining : int;  (* entries the budget still allows *)
  mutable j_written : int;  (* entries appended by this engine *)
  mutable j_interrupted : bool;  (* budget exhausted: abort the sweep *)
}

(* A shared result store bound to this engine: where to look before
   running the simulator, and how to derive a candidate's
   content-addressed key. *)
type store_binding = { sb_store : Store.t; sb_key : Candidate.t -> string }

type t = {
  app_name : string;
  lock : Mutex.t;  (* guards every field below *)
  cache : (string, outcome) Hashtbl.t;  (* desc -> settled outcome *)
  host : (string, float) Hashtbl.t;  (* desc -> host seconds spent measuring *)
  mutable runs : int;  (* simulator invocations actually performed *)
  mutable hits : int;  (* measurements answered from the cache *)
  mutable store_hits : int;  (* ...of which answered by the result store *)
  mutable store_misses : int;  (* store consulted, simulator paid anyway *)
  mutable journal : journal option;
  mutable store : store_binding option;
}

let create ~app_name () =
  {
    app_name;
    lock = Mutex.create ();
    cache = Hashtbl.create 64;
    host = Hashtbl.create 64;
    runs = 0;
    hits = 0;
    store_hits = 0;
    store_misses = 0;
    journal = None;
    store = None;
  }

(* Bind a content-addressed result store.  [key] derives a candidate's
   store key (see [Store.candidate_key]); the caller fixes the arch and
   space digests so the engine never recomputes them per candidate. *)
let attach_store t ~(store : Store.t) ~(key : Candidate.t -> string) : unit =
  Mutex.protect t.lock (fun () ->
      if t.store <> None then invalid_arg "Measure.attach_store: store already attached";
      t.store <- Some { sb_store = store; sb_key = key })

(* ------------------------------------------------------------------ *)
(* Checkpoint journal                                                  *)
(* ------------------------------------------------------------------ *)

(* Journal layout (plain text, one record per line):

     gpuopt-journal v1
     app <application name>
     key <space key: digest of the candidate list>
     ok <desc %S> <time, Hexfloat encoding>
     fault <desc %S> <Fault.to_journal encoding>

   Times round-trip exactly through the hexadecimal float format, so a
   resumed sweep is bit-identical to an uninterrupted one.  The header
   is validated on load: a journal written for another app, another
   space (different key) or another format version is rejected loudly
   instead of silently corrupting the resumed results. *)

let journal_magic = "gpuopt-journal v1"

let journal_entry desc (o : outcome) : string =
  match o with
  | Ok time_s -> Printf.sprintf "ok %S %s" desc (Hexfloat.to_string time_s)
  | Error f -> Printf.sprintf "fault %S %s" desc (Fault.to_journal f)

let parse_entry (file : string) (lineno : int) (line : string) : string * outcome =
  let bad reason =
    failwith
      (Printf.sprintf "Measure: corrupt journal %s, line %d (%s): %S" file lineno reason line)
  in
  match String.index_opt line ' ' with
  | None -> bad "no record tag"
  | Some i -> (
    match String.sub line 0 i with
    | "ok" -> (
      match
        try Some (Scanf.sscanf line "ok %S %s" (fun desc t -> (desc, t)))
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
      with
      | None -> bad "unparseable ok record"
      | Some (desc, t) -> (
        match Hexfloat.of_string_opt t with
        | Some time -> (desc, Ok time)
        | None -> bad "unparseable ok record"))
    | "fault" -> (
      match
        try Some (Scanf.sscanf line "fault %S %n" (fun desc n -> (desc, n)))
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
      with
      | None -> bad "unparseable fault record"
      | Some (desc, ofs) -> (
        let rest = String.sub line ofs (String.length line - ofs) in
        match Fault.of_journal rest with
        | Some f -> (desc, Error f)
        | None -> bad "unparseable fault payload"))
    | tag -> bad (Printf.sprintf "unknown record tag %S" tag))

(* Attach a checkpoint journal to the engine.  If [file] exists, its
   header is validated against this engine's app name and the caller's
   [key] (reject loudly on any mismatch — a stale journal must never
   leak measurements into the wrong sweep) and its entries seed the
   cache; the file is then opened for append.  [stop_after] bounds how
   many *new* outcomes this engine may journal before the sweep aborts
   with [Interrupted] — the test harness's deterministic stand-in for
   killing a long sweep partway.  Returns the number of entries
   loaded. *)
let checkpoint ?(stop_after = max_int) t ~(file : string) ~(key : string) : int =
  if stop_after < 0 then invalid_arg "Measure.checkpoint: stop_after must be >= 0";
  Mutex.protect t.lock (fun () ->
      if t.journal <> None then invalid_arg "Measure.checkpoint: journal already attached";
      let loaded = ref 0 in
      let exists = Sys.file_exists file && (Unix.stat file).Unix.st_size > 0 in
      if exists then begin
        let ic = open_in file in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let line lineno what =
              match In_channel.input_line ic with
              | Some l -> l
              | None ->
                failwith
                  (Printf.sprintf "Measure: truncated journal %s: missing %s (line %d)" file what
                     lineno)
            in
            let magic = line 1 "format line" in
            if magic <> journal_magic then
              failwith
                (Printf.sprintf
                   "Measure: journal %s has format %S, expected %S — refusing a stale or foreign \
                    journal"
                   file magic journal_magic);
            let app_line = line 2 "app line" in
            if app_line <> "app " ^ t.app_name then
              failwith
                (Printf.sprintf "Measure: journal %s is for %S, not app %S" file app_line
                   t.app_name);
            let key_line = line 3 "key line" in
            if key_line <> "key " ^ key then
              failwith
                (Printf.sprintf
                   "Measure: journal %s was written for a different candidate space (%s, expected \
                    key %s) — delete it or pass the matching space"
                   file key_line key);
            let lineno = ref 3 in
            let rec entries () =
              match In_channel.input_line ic with
              | None -> ()
              | Some "" -> entries ()
              | Some l ->
                incr lineno;
                let desc, o = parse_entry file !lineno l in
                Hashtbl.replace t.cache desc o;
                incr loaded;
                entries ()
            in
            entries ())
      end;
      let oc =
        open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 file
      in
      if not exists then begin
        output_string oc (journal_magic ^ "\n");
        output_string oc ("app " ^ t.app_name ^ "\n");
        output_string oc ("key " ^ key ^ "\n");
        flush oc
      end;
      t.journal <-
        Some { j_file = file; j_oc = oc; j_remaining = stop_after; j_written = 0; j_interrupted = false };
      !loaded)

(* Detach and close the journal (flushes).  Safe without one. *)
let close_journal t =
  Mutex.protect t.lock (fun () ->
      match t.journal with
      | None -> ()
      | Some j ->
        (try close_out j.j_oc with Sys_error _ -> ());
        t.journal <- None)

(* ------------------------------------------------------------------ *)
(* Cache lookups                                                       *)
(* ------------------------------------------------------------------ *)

let cached t (c : Candidate.t) : outcome option =
  Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.cache c.desc)

(* Settled outcome of an already-measured candidate.  The cache is the
   single source of truth: asking for a candidate that was never passed
   through [measure_outcomes] is a caller bug (it would otherwise
   silently re-run the simulator and double-count evaluation time), so
   a miss raises — naming the app and the candidate's config key, since
   an anonymous failure is useless in a parallel sweep log. *)
let find_exn t (c : Candidate.t) : outcome =
  match Hashtbl.find_opt t.cache c.desc with
  | Some o -> o
  | None ->
    invalid_arg
      (Printf.sprintf "Measure.time_exn: %s: candidate %S was never measured" t.app_name c.desc)

let outcome_exn t (c : Candidate.t) : outcome =
  Mutex.protect t.lock (fun () ->
      let o = find_exn t c in
      t.hits <- t.hits + 1;
      o)

(* Cached simulated seconds of a successfully measured candidate; a
   candidate that was measured-as-failed raises with its fault. *)
let time_exn t (c : Candidate.t) : float =
  match outcome_exn t c with
  | Ok ts -> ts
  | Error f ->
    invalid_arg
      (Printf.sprintf "Measure.time_exn: %s: candidate %S faulted: %s" t.app_name c.desc
         (Fault.to_string f))

(* ------------------------------------------------------------------ *)
(* Bulk measurement                                                    *)
(* ------------------------------------------------------------------ *)

(* Record one settled outcome under the lock: cache, bookkeeping, the
   journal and the result store (as attached).  When the journal budget
   is exhausted the outcome is *discarded* — not cached, not journaled,
   not stored — and the engine flips to interrupted, exactly as if the
   process had been killed between two appends.  [store_key] is the
   candidate's content address, computed by the worker off the lock. *)
let record t desc ?(store_key : string option) (o : outcome) (host_s : float) : unit =
  Mutex.protect t.lock (fun () ->
      match t.journal with
      | Some j when j.j_interrupted -> ()
      | Some j when j.j_remaining = 0 -> j.j_interrupted <- true
      | journal ->
        Hashtbl.replace t.cache desc o;
        Hashtbl.replace t.host desc host_s;
        t.runs <- t.runs + 1;
        (match (t.store, store_key) with
        | Some sb, Some key -> Store.put sb.sb_store ~key ~desc o
        | _ -> ());
        (match journal with
        | None -> ()
        | Some j ->
          j.j_remaining <- j.j_remaining - 1;
          j.j_written <- j.j_written + 1;
          output_string j.j_oc (journal_entry desc o ^ "\n");
          flush j.j_oc))

let interrupted t =
  Mutex.protect t.lock (fun () ->
      match t.journal with Some j -> j.j_interrupted | None -> false)

(* Measure every candidate of [cands], in parallel over [jobs] domains
   (default [Pool.default_jobs ()]), skipping those already settled in
   the cache (including those loaded from a checkpoint journal, and
   those settled as faults).  Returns one (candidate, outcome) pair per
   input, in input order.

   [?cancel] is a cooperative cancellation token checked between
   candidates, exactly like the journal-budget abort: once it trips,
   remaining thunks skip the simulator, and if any requested outcome is
   still unsettled the sweep aborts with [Cancel.Cancelled].  Already
   settled outcomes (cache, journal, store) still answer, so an expired
   deadline over warm data completes instead of failing. *)
let measure_outcomes ?jobs ?cancel t (cands : Candidate.t list) : (Candidate.t * outcome) list =
  (* Decide what actually needs the simulator before spawning workers;
     duplicates within one batch collapse to a single run, and the
     result store (when attached) settles candidates any client has
     ever measured without touching the simulator. *)
  let store_binding = Mutex.protect t.lock (fun () -> t.store) in
  let from_store (c : Candidate.t) : outcome option =
    match store_binding with
    | None -> None
    | Some sb -> Store.get sb.sb_store (sb.sb_key c)
  in
  let to_run =
    Mutex.protect t.lock (fun () ->
        let batch = Hashtbl.create 16 in
        List.filter
          (fun (c : Candidate.t) ->
            if Hashtbl.mem t.cache c.desc || Hashtbl.mem batch c.desc then begin
              t.hits <- t.hits + 1;
              false
            end
            else
              match from_store c with
              | Some o ->
                Hashtbl.replace t.cache c.desc o;
                t.hits <- t.hits + 1;
                t.store_hits <- t.store_hits + 1;
                false
              | None ->
                if store_binding <> None then t.store_misses <- t.store_misses + 1;
                Hashtbl.replace batch c.desc ();
                true)
          cands)
  in
  let cancelled () =
    match cancel with Some cl -> Cancel.cancelled cl | None -> false
  in
  let results =
    Util.Pool.map_result ?jobs
      (fun (c : Candidate.t) ->
        (* Once the journal budget killed the sweep — or the caller's
           cancellation token tripped — remaining thunks skip the
           simulator: their outcomes would be discarded or unwanted. *)
        if interrupted t || cancelled () then ()
        else begin
          (* The content address digests the candidate's PTX: compute it
             on the worker, off the engine lock. *)
          let store_key = Option.map (fun sb -> sb.sb_key c) store_binding in
          let t0 = Unix.gettimeofday () in
          let o = Fault.run_candidate c in
          record t c.desc ?store_key o (Unix.gettimeofday () -. t0)
        end)
      to_run
  in
  (* [Fault.run_candidate] classifies everything a thunk can raise, so
     an [Error] here means the engine itself failed (journal I/O, a
     corrupt cache): that is not a per-candidate fault — re-raise. *)
  List.iter (function Error (e, _) -> raise e | Ok () -> ()) results;
  (match Mutex.protect t.lock (fun () -> t.journal) with
  | Some j when j.j_interrupted -> raise (Interrupted { file = j.j_file; journaled = j.j_written })
  | _ -> ());
  (* A tripped token with outstanding work is a typed abort; with every
     outcome already settled it is a no-op (warm answers are free). *)
  if
    cancelled ()
    && Mutex.protect t.lock (fun () ->
           List.exists (fun (c : Candidate.t) -> not (Hashtbl.mem t.cache c.desc)) cands)
  then raise Cancel.Cancelled;
  Mutex.protect t.lock (fun () ->
      (* Re-read through the cache (not the worker results) so
         duplicates and previously settled candidates resolve
         uniformly. *)
      List.map (fun (c : Candidate.t) -> (c, find_exn t c)) cands)

(* The historical strict interface: measure everything, re-raising the
   first fault in input order as [Fault.Fail] (the pre-fault-tolerance
   abort semantics; also what `--fail-fast` restores).  Returns one
   [measured] per input, in input order. *)
let measure_all ?jobs t (cands : Candidate.t list) : measured list =
  List.map
    (fun ((c : Candidate.t), o) ->
      match o with
      | Ok time_s -> { cand = c; time_s }
      | Error fault -> raise (Fault.Fail { desc = c.desc; fault }))
    (measure_outcomes ?jobs t cands)

(* Bookkeeping accessors. *)
let runs t = Mutex.protect t.lock (fun () -> t.runs)
let hits t = Mutex.protect t.lock (fun () -> t.hits)
let store_hits t = Mutex.protect t.lock (fun () -> t.store_hits)
let store_misses t = Mutex.protect t.lock (fun () -> t.store_misses)

(* Total host wall-clock seconds spent inside [run] thunks.  Under
   parallel measurement this is the summed per-worker time, which can
   exceed elapsed time. *)
let host_time t =
  Mutex.protect t.lock (fun () -> Hashtbl.fold (fun _ s acc -> acc +. s) t.host 0.0)

(* Host seconds per measured candidate, sorted slowest-first. *)
let per_candidate_host t : (string * float) list =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun desc s acc -> (desc, s) :: acc) t.host []
      |> List.sort (fun (_, a) (_, b) -> compare b a))
