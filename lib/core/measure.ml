(* Measurement engine: the expensive step of the paper's methodology,
   made parallel and memoized.

   Measuring a configuration means driving the cycle-approximate SM
   simulator through the candidate's [run] thunk — exactly the cost the
   pruning methodology exists to avoid paying for the whole space.  The
   engine adds two things on top of calling the thunk directly:

   - a per-application memoizing cache keyed by the candidate's [desc],
     so any candidate is simulated at most once per engine no matter
     how many passes (exhaustive sweep, Pareto subset, reports) ask for
     its time;
   - parallel bulk measurement over a [Util.Pool] of domains, with
     per-candidate host wall-time bookkeeping.

   Determinism: simulated times depend only on the candidate itself
   (each [run] thunk operates on private state — see the domain-safety
   audit in DESIGN.md), and [Pool.map] preserves input order, so the
   results are identical whatever [jobs] is. *)

type measured = { cand : Candidate.t; time_s : float }

type t = {
  app_name : string;
  lock : Mutex.t;  (* guards every field below *)
  cache : (string, float) Hashtbl.t;  (* desc -> simulated seconds *)
  host : (string, float) Hashtbl.t;  (* desc -> host seconds spent measuring *)
  mutable runs : int;  (* simulator invocations actually performed *)
  mutable hits : int;  (* measurements answered from the cache *)
}

let create ~app_name () =
  {
    app_name;
    lock = Mutex.create ();
    cache = Hashtbl.create 64;
    host = Hashtbl.create 64;
    runs = 0;
    hits = 0;
  }

let cached t (c : Candidate.t) : float option =
  Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.cache c.desc)

(* Cached time of an already-measured candidate.  The cache is the
   single source of truth: asking for a candidate that was never passed
   through [measure_all] is a caller bug (it would otherwise silently
   re-run the simulator and double-count evaluation time), so a miss
   raises instead of re-measuring. *)
let find_exn t (c : Candidate.t) : float =
  match Hashtbl.find_opt t.cache c.desc with
  | Some ts -> ts
  | None ->
    invalid_arg
      (Printf.sprintf "Measure.time_exn: %s: candidate %S was never measured" t.app_name c.desc)

let time_exn t (c : Candidate.t) : float =
  Mutex.protect t.lock (fun () ->
      let ts = find_exn t c in
      t.hits <- t.hits + 1;
      ts)

(* Measure every candidate of [cands], in parallel over [jobs] domains
   (default [Pool.default_jobs ()]), skipping those already in the
   cache.  Returns one [measured] per input, in input order. *)
let measure_all ?jobs t (cands : Candidate.t list) : measured list =
  (* Decide what actually needs the simulator before spawning workers;
     duplicates within one batch collapse to a single run. *)
  let to_run =
    Mutex.protect t.lock (fun () ->
        let batch = Hashtbl.create 16 in
        List.filter
          (fun (c : Candidate.t) ->
            if Hashtbl.mem t.cache c.desc || Hashtbl.mem batch c.desc then begin
              t.hits <- t.hits + 1;
              false
            end
            else begin
              Hashtbl.replace batch c.desc ();
              true
            end)
          cands)
  in
  let timed =
    Util.Pool.map ?jobs
      (fun (c : Candidate.t) ->
        let t0 = Unix.gettimeofday () in
        let time_s = c.run () in
        (c.desc, time_s, Unix.gettimeofday () -. t0))
      to_run
  in
  Mutex.protect t.lock (fun () ->
      List.iter
        (fun (desc, time_s, host_s) ->
          Hashtbl.replace t.cache desc time_s;
          Hashtbl.replace t.host desc host_s;
          t.runs <- t.runs + 1)
        timed;
      (* Re-read through the cache (not [timed]) so duplicates and
         previously cached candidates resolve uniformly. *)
      List.map (fun (c : Candidate.t) -> { cand = c; time_s = find_exn t c }) cands)

(* Bookkeeping accessors. *)
let runs t = Mutex.protect t.lock (fun () -> t.runs)
let hits t = Mutex.protect t.lock (fun () -> t.hits)

(* Total host wall-clock seconds spent inside [run] thunks.  Under
   parallel measurement this is the summed per-worker time, which can
   exceed elapsed time. *)
let host_time t =
  Mutex.protect t.lock (fun () -> Hashtbl.fold (fun _ s acc -> acc +. s) t.host 0.0)

(* Host seconds per measured candidate, sorted slowest-first. *)
let per_candidate_host t : (string * float) list =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun desc s acc -> (desc, s) :: acc) t.host []
      |> List.sort (fun (_, a) (_, b) -> compare b a))
