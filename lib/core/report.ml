(* Rendering of the paper's tables and figures as text.

   Tables are aligned ASCII; figures are terminal scatter/line plots.
   These feed both the benchmark harness (which regenerates every table
   and figure of the paper) and the CLI. *)

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)
(* ------------------------------------------------------------------ *)

(* Render rows with left-aligned columns padded to the widest cell. *)
let table ?(sep = "  ") (header : string list) (rows : string list list) : string =
  let all = header :: rows in
  let ncols = List.fold_left (fun a r -> max a (List.length r)) 0 all in
  let width = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> width.(i) <- max width.(i) (String.length cell)) row)
    all;
  let render_row row =
    let cells =
      List.mapi
        (fun i cell -> cell ^ String.make (width.(i) - String.length cell) ' ')
        row
    in
    String.concat sep cells
  in
  let rule =
    String.concat sep (Array.to_list (Array.map (fun w -> String.make w '-') width))
  in
  String.concat "\n" (render_row header :: rule :: List.map render_row rows) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Scatter plot (Figure 6 style)                                       *)
(* ------------------------------------------------------------------ *)

type mark = Dot | Front | Best

(* Plot points in [0,1]^2; '.' = configuration, 'o' = Pareto-optimal,
   '*' = true optimum. *)
let scatter ?(width = 64) ?(height = 20) ?(xlabel = "efficiency") ?(ylabel = "utilization")
    (points : (float * float * mark) list) : string =
  let grid = Array.make_matrix height width ' ' in
  let plot (x, y, m) =
    let cx = Util.Stats.clamp 0 (width - 1) (int_of_float (x *. float_of_int (width - 1))) in
    let cy = Util.Stats.clamp 0 (height - 1) (int_of_float (y *. float_of_int (height - 1))) in
    let row = height - 1 - cy in
    let ch = match m with Dot -> '.' | Front -> 'o' | Best -> '*' in
    (* Never overwrite a more important mark. *)
    let rank c = match c with '*' -> 3 | 'o' -> 2 | '.' -> 1 | _ -> 0 in
    if rank ch > rank grid.(row).(cx) then grid.(row).(cx) <- ch
  in
  List.iter plot points;
  let buf = Buffer.create (width * height) in
  Buffer.add_string buf (Printf.sprintf "%s ^\n" ylabel);
  Array.iter
    (fun row ->
      Buffer.add_string buf "  |";
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf ("  +" ^ String.make width '-' ^ "> " ^ xlabel ^ "\n");
  Buffer.add_string buf "  legend: . config   o Pareto-optimal subset   * optimum\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Line/series plot (Figure 4/5 style)                                 *)
(* ------------------------------------------------------------------ *)

(* Plot one or more named series over a shared x axis; y is auto-scaled.
   Each series gets a distinct character. *)
let series_plot ?(width = 64) ?(height = 18) ~(x_name : string) ~(y_name : string)
    (series : (string * (float * float) list) list) : string =
  let all_pts = List.concat_map snd series in
  if all_pts = [] then "(no data)\n"
  else begin
    let xs = List.map fst all_pts and ys = List.map snd all_pts in
    let xmin = List.fold_left Float.min Float.infinity xs in
    let xmax = List.fold_left Float.max Float.neg_infinity xs in
    let ymin = List.fold_left Float.min Float.infinity ys in
    let ymax = List.fold_left Float.max Float.neg_infinity ys in
    let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
    let yspan = if ymax > ymin then ymax -. ymin else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    let chars = [| '+'; 'x'; 'o'; '#'; '@'; '%'; '&'; '=' |] in
    List.iteri
      (fun si (_, pts) ->
        let ch = chars.(si mod Array.length chars) in
        List.iter
          (fun (x, y) ->
            let cx =
              Util.Stats.clamp 0 (width - 1)
                (int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1)))
            in
            let cy =
              Util.Stats.clamp 0 (height - 1)
                (int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1)))
            in
            grid.(height - 1 - cy).(cx) <- ch)
          pts)
      series;
    let buf = Buffer.create (width * height) in
    Buffer.add_string buf (Printf.sprintf "%s (%.3g .. %.3g) ^\n" y_name ymin ymax);
    Array.iter
      (fun row ->
        Buffer.add_string buf "  |";
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf
      (Printf.sprintf "  +%s> %s (%.3g .. %.3g)\n" (String.make width '-') x_name xmin xmax);
    List.iteri
      (fun si (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf "  %c = %s\n" chars.(si mod Array.length chars) name))
      series;
    Buffer.contents buf
  end

(* ------------------------------------------------------------------ *)
(* Figure 6 for one application                                        *)
(* ------------------------------------------------------------------ *)

let figure6 (r : Search.result) : string =
  let ms = List.map snd r.all in
  let norm = Metrics.normalize ms in
  let selected_descs =
    List.map (fun ((c : Candidate.t), _) -> c.desc) r.selected
  in
  let best_desc = r.best.cand.desc in
  let points =
    List.map2
      (fun ((c : Candidate.t), _) (m : Metrics.t) ->
        let mark =
          if String.equal c.desc best_desc then Best
          else if List.mem c.desc selected_descs then Front
          else Dot
        in
        (m.efficiency, m.utilization, mark))
      r.all norm
  in
  scatter points

(* One row of Table 4. *)
let table4_row (r : Search.result) : string list =
  [
    r.app_name;
    string_of_int r.space_size;
    Printf.sprintf "%.3f s" r.full_eval_time;
    string_of_int (List.length r.selected);
    Printf.sprintf "%.0f%%" (r.reduction *. 100.0);
    Printf.sprintf "%.3f s" r.selected_eval_time;
    (if r.optimum_selected then "yes" else "NO");
  ]

let table4_header =
  [
    "Kernel";
    "Configurations";
    "Evaluation time";
    "Selected";
    "Space reduction";
    "Selected eval time";
    "Optimum on curve";
  ]

(* ------------------------------------------------------------------ *)
(* Pruning-ratio table (model-driven race vs Pareto vs exhaustive)     *)
(* ------------------------------------------------------------------ *)

let prune_header =
  [
    "Kernel";
    "Space";
    "Probes";
    "Raced";
    "Full sims";
    "Simulated";
    "Pareto";
    "Opt rank";
    "Recovered";
  ]

(* One row per app: how much of the space the model-driven race fully
   simulated, side by side with the paper methodology's own Pareto
   reduction on the same space, plus where the true optimum sat in the
   prediction-only ranking.  Requires [r.prune = Some _]. *)
let prune_row (r : Search.result) : string list =
  match r.prune with
  | None -> invalid_arg (r.app_name ^ ": no prune outcome to report")
  | Some o ->
    [
      r.app_name;
      string_of_int o.Prune.pr_total;
      string_of_int (List.length o.Prune.pr_probes);
      string_of_int o.Prune.pr_raced;
      string_of_int o.Prune.pr_simulated;
      Printf.sprintf "%.1f%%"
        (100.0 *. float_of_int o.Prune.pr_simulated /. float_of_int o.Prune.pr_total);
      Printf.sprintf "%.1f%%" (100.0 *. (1.0 -. r.reduction));
      (match Prune.rank_of o r.best.cand.desc with
      | Some k -> Printf.sprintf "%d/%d" k o.Prune.pr_total
      | None -> "-");
      (if Prune.recovered o ~best:r.best then "yes" else "NO");
    ]

let prune_table (r : Search.result) : string = table prune_header [ prune_row r ]

(* ------------------------------------------------------------------ *)
(* Fault table                                                         *)
(* ------------------------------------------------------------------ *)

(* One row per measured-as-failed candidate: the config, the fault's
   short tag, and the first line of its description (a crash backtrace
   belongs in a log, not a table cell). *)
let fault_table (faults : (Candidate.t * Fault.t) list) : string =
  let first_line s = match String.index_opt s '\n' with
    | None -> s
    | Some i -> String.sub s 0 i
  in
  table
    [ "Config"; "Fault"; "Detail" ]
    (List.map
       (fun ((c : Candidate.t), f) -> [ c.desc; Fault.tag f; first_line (Fault.to_string f) ])
       faults)

(* ------------------------------------------------------------------ *)
(* Per-arch winner table                                               *)
(* ------------------------------------------------------------------ *)

(* One row per machine model of a cross-arch sweep: the pruned
   search's choice and the true optimum on that machine, with the
   space statistics that explain why they differ across machines
   (validity and occupancy shift with the limits). *)
let arch_winner_table (rs : Search.arch_result list) : string =
  table
    [ "Arch"; "Valid"; "Invalid"; "Selected"; "Pruned winner"; "Time"; "True optimum"; "Time" ]
    (List.map
       (fun ({ ar_arch; ar_result = r } : Search.arch_result) ->
         [
           ar_arch.Gpu.Arch.name;
           string_of_int r.space_size;
           string_of_int r.invalid;
           string_of_int (List.length r.selected);
           r.selected_best.cand.desc;
           Printf.sprintf "%.4f ms" (r.selected_best.time_s *. 1000.0);
           r.best.cand.desc;
           Printf.sprintf "%.4f ms" (r.best.time_s *. 1000.0);
         ])
       rs)
