(* Persistent content-addressed measurement store.

   The paper's premise is that exhaustively measuring an optimization
   space is too expensive to repeat; PR 5's checkpoint journal let one
   interrupted sweep resume, and this module generalizes it into the
   tuning service's shared cache: any measurement performed once — by
   any client, in any session — is answered from disk forever after.

   Content addressing.  An entry's key is a digest of everything that
   determines the simulated time:

     key = md5( arch digest | space digest | kernel digest )

   - the *arch digest* fixes the machine model (every limit and latency
     of [Gpu.Arch] the simulator consumes);
   - the *space digest* fixes the measurement problem: application,
     problem scale, and the full candidate-desc list (two scales of the
     same app share descs but not times, so the scale tag is part of
     the digest);
   - the *kernel digest* fixes the candidate itself: its compiled PTX
     text, its launch geometry and its config key.

   Change any of the three and the key changes, so a store can hold
   entries for many apps, scales and architectures side by side without
   any possibility of cross-talk.

   Durability.  The file is append-only: one header line, then one
   record per settled measurement, each carrying an md5 checksum of its
   payload.  Appends go through a single [output_string] + flush under
   the store lock, so concurrent writers from any number of domains
   interleave whole records.  On load, a record whose checksum or
   payload fails to parse is *rejected loudly and skipped* — corruption
   costs re-measuring the damaged entries, never a wrong answer and
   never the rest of the store.  Times round-trip exactly through the
   %h hexadecimal float format, as in the PR-5 journals. *)

type outcome = (float, Fault.t) result

let magic = "gpuopt-store v1"

(* ------------------------------------------------------------------ *)
(* Digests                                                             *)
(* ------------------------------------------------------------------ *)

let hex (s : string) : string = Digest.to_hex (Digest.string s)

(* The full machine description, in a fixed order.  Two processes
   disagreeing on any of these must not share measurements.

   The first 18 elements are exactly the fields (and order) the store
   hashed before the machine model became a value, evaluated on the
   arch's own record; the remaining fields of [Gpu.Arch.t] follow as
   tagged extension entries, appended only when they differ from the
   G80's values.  G80 store keys are therefore bit-identical to every
   store written before the registry existed, while any two arches
   that differ anywhere in the record — a single latency included —
   hash differently. *)
let arch_digest ?(arch = Gpu.Arch.g80) () : string =
  let l = arch.Gpu.Arch.limits and lat = arch.Gpu.Arch.latencies in
  let legacy =
    [
      "arch";
      string_of_int l.num_sms;
      string_of_int l.max_threads_per_sm;
      string_of_int l.max_blocks_per_sm;
      string_of_int l.regs_per_sm;
      string_of_int l.smem_per_sm;
      string_of_int l.max_threads_per_block;
      string_of_int arch.shared_banks;
      Printf.sprintf "%h" arch.clock_ghz;
      Printf.sprintf "%h" arch.global_bandwidth_gbs;
      string_of_int lat.issue;
      string_of_int lat.alu;
      string_of_int lat.sfu;
      string_of_int lat.sfu_issue;
      string_of_int lat.shared;
      string_of_int lat.global;
      string_of_int lat.coalesced_tx;
      string_of_int arch.scoreboard_depth;
    ]
  in
  let g = Gpu.Arch.g80 in
  let ext tag v default = if v = default then [] else [ Printf.sprintf "%s=%d" tag v ] in
  let extensions =
    ext "warp" l.warp_size g.limits.warp_size
    @ ext "sps" l.sps_per_sm g.limits.sps_per_sm
    @ ext "sfus" l.sfus_per_sm g.limits.sfus_per_sm
    @ ext "const_hit" lat.const_hit g.latencies.const_hit
    @ ext "uncoalesced_tx" lat.uncoalesced_tx g.latencies.uncoalesced_tx
    @ ext "flops" arch.flops_per_sm_per_cycle g.flops_per_sm_per_cycle
  in
  hex (String.concat "," (legacy @ extensions))

(* The measurement problem: which app, at which problem scale, over
   which candidate set.  [scale] distinguishes e.g. the quick and the
   paper-scale matmul spaces, whose descs coincide but whose simulated
   times do not. *)
let space_digest ~(app_name : string) ~(scale : string) (descs : string list) : string =
  hex (String.concat "\n" ("space" :: app_name :: scale :: descs))

(* The candidate itself: compiled code plus launch geometry.  The PTX
   text pins every instruction the simulator will execute; the thread
   counts pin the grid the run thunk launches. *)
let kernel_digest (c : Candidate.t) : string =
  hex
    (String.concat "\n"
       [
         "kernel";
         c.desc;
         string_of_int c.threads_per_block;
         string_of_int c.threads_total;
         Ptx.Pp.kernel c.kernel;
       ])

let key ~(arch : string) ~(space : string) ~(kernel : string) : string =
  hex (String.concat "|" [ arch; space; kernel ])

let candidate_key ~(arch : string) ~(space : string) (c : Candidate.t) : string =
  key ~arch ~space ~kernel:(kernel_digest c)

(* ------------------------------------------------------------------ *)
(* Record payloads                                                     *)
(* ------------------------------------------------------------------ *)

(* Payload format (everything after the key and the checksum):
     ok <desc %S> <time, Hexfloat encoding>
     fault <desc %S> <Fault.to_journal>
     blob <name %S> <content %S>
   The desc/name is carried for human inspection of the store file; the
   key alone addresses the entry.  A blob is an opaque string artifact
   (e.g. a superoptimizer rule database) stored under the same
   content-addressed, checksummed record discipline as measurements;
   [%S] escaping keeps arbitrary content — newlines included — on one
   record line. *)

(* An entry is either a settled measurement or an opaque blob. *)
type entry = Meas of string * outcome  (* desc, outcome *) | Blob of string * string
(* name, content *)

let payload_of (desc : string) (o : outcome) : string =
  match o with
  | Ok time_s -> Printf.sprintf "ok %S %s" desc (Hexfloat.to_string time_s)
  | Error f -> Printf.sprintf "fault %S %s" desc (Fault.to_journal f)

let payload_of_blob ~(name : string) (content : string) : string =
  Printf.sprintf "blob %S %S" name content

let payload_to (payload : string) : (string * outcome) option =
  match String.index_opt payload ' ' with
  | None -> None
  | Some i -> (
    match String.sub payload 0 i with
    | "ok" -> (
      match
        try Some (Scanf.sscanf payload "ok %S %s" (fun desc t -> (desc, t)))
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
      with
      | None -> None
      | Some (desc, t) -> (
        match Hexfloat.of_string_opt t with
        | Some time -> Some (desc, Ok time)
        | None -> None))
    | "fault" -> (
      match
        try Some (Scanf.sscanf payload "fault %S %n" (fun desc n -> (desc, n)))
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
      with
      | None -> None
      | Some (desc, ofs) -> (
        let rest = String.sub payload ofs (String.length payload - ofs) in
        match Fault.of_journal rest with Some f -> Some (desc, Error f) | None -> None))
    | _ -> None)

let entry_of_payload (payload : string) : entry option =
  if String.length payload >= 5 && String.sub payload 0 5 = "blob " then
    match
      try Some (Scanf.sscanf payload "blob %S %S" (fun name content -> (name, content)))
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
    with
    | Some (name, content) -> Some (Blob (name, content))
    | None -> None
  else Option.map (fun (desc, o) -> Meas (desc, o)) (payload_to payload)

(* ------------------------------------------------------------------ *)
(* The store                                                           *)
(* ------------------------------------------------------------------ *)

type corrupt_line = { cl_line : int; cl_reason : string }

type t = {
  file : string;
  durable : bool;  (* fsync every append before releasing the lock *)
  lock : Mutex.t;  (* guards every mutable field and the channel *)
  index : (string, entry) Hashtbl.t;  (* key -> measurement or blob *)
  mutable oc : out_channel option;  (* None after [close] *)
  mutable corrupt : corrupt_line list;  (* rejected records, load order *)
  mutable loaded : int;  (* entries accepted from the existing file *)
}

(* A record line: "e <key 32 hex> <md5(payload) 32 hex> <payload>". *)
let record_line (key : string) (payload : string) : string =
  Printf.sprintf "e %s %s %s\n" key (Digest.to_hex (Digest.string payload)) payload

let parse_record (line : string) : (string * entry, string) result =
  let fail reason = Error reason in
  if String.length line < 2 || String.sub line 0 2 <> "e " then fail "unknown record tag"
  else if String.length line < 2 + 32 + 1 + 32 + 1 then fail "short record"
  else
    let key = String.sub line 2 32 in
    let sum = String.sub line 35 32 in
    if line.[34] <> ' ' || line.[67] <> ' ' then fail "malformed record framing"
    else
      let payload = String.sub line 68 (String.length line - 68) in
      let is_hex s = String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s in
      if not (is_hex key && is_hex sum) then fail "malformed digest"
      else if Digest.to_hex (Digest.string payload) <> sum then
        fail "checksum mismatch (bit rot or torn write)"
      else
        match entry_of_payload payload with
        | Some e -> Ok (key, e)
        | None -> fail "unparseable payload"

(* Open (creating if absent) the store at [file].  An existing file's
   header must match [magic] exactly — a foreign or stale-format file is
   refused with [Failure] rather than silently rewritten.  Damaged
   records are skipped and reported through [corrupt_entries]; when two
   valid records share a key (two writers raced to measure the same
   point), the later one wins — both hold the same deterministic
   outcome, so the choice is cosmetic.

   [?durable] makes every append fsync before its lock drops: a store
   killed at any instant — `kill -9` mid-append included — reopens with
   every *completed* put intact, at the price of one disk sync per new
   measurement (amortized to nothing once the space is warm).  Without
   it appends are still atomic-per-record on load (the checksum rejects
   a torn tail) but the OS may lose recently buffered records on a
   crash. *)
let open_ ?(durable = false) ~(file : string) () : t =
  let t =
    {
      file;
      durable;
      lock = Mutex.create ();
      index = Hashtbl.create 256;
      oc = None;
      corrupt = [];
      loaded = 0;
    }
  in
  let exists = Sys.file_exists file && (Unix.stat file).Unix.st_size > 0 in
  if exists then begin
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        (match In_channel.input_line ic with
        | Some m when m = magic -> ()
        | Some m ->
          failwith
            (Printf.sprintf "Store: %s has header %S, expected %S — refusing a foreign file" file
               m magic)
        | None -> failwith (Printf.sprintf "Store: %s: missing header" file));
        let lineno = ref 1 in
        let rec loop () =
          match In_channel.input_line ic with
          | None -> ()
          | Some "" ->
            incr lineno;
            loop ()
          | Some line ->
            incr lineno;
            (match parse_record line with
            | Ok (key, e) ->
              Hashtbl.replace t.index key e;
              t.loaded <- t.loaded + 1
            | Error reason ->
              t.corrupt <- { cl_line = !lineno; cl_reason = reason } :: t.corrupt);
            loop ()
        in
        loop ())
  end;
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 file in
  if not exists then begin
    output_string oc (magic ^ "\n");
    flush oc;
    if durable then Unix.fsync (Unix.descr_of_out_channel oc)
  end;
  t.oc <- Some oc;
  t.corrupt <- List.rev t.corrupt;
  t

let corrupt_entries t : corrupt_line list = Mutex.protect t.lock (fun () -> t.corrupt)
let loaded t : int = Mutex.protect t.lock (fun () -> t.loaded)
let entries t : int = Mutex.protect t.lock (fun () -> Hashtbl.length t.index)
let file t : string = t.file

let get t (key : string) : outcome option =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.index key with Some (Meas (_, o)) -> Some o | _ -> None)

let get_blob t (key : string) : string option =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.index key with Some (Blob (_, c)) -> Some c | _ -> None)

let mem t (key : string) : bool = Mutex.protect t.lock (fun () -> Hashtbl.mem t.index key)

(* Record one settled outcome: index plus one appended record, flushed
   before the lock drops (atomic with respect to every other writer on
   this handle).  A key already present is left untouched — outcomes
   are deterministic, so the first write is as good as any. *)
let put_entry t ~(key : string) ~(payload : string) (e : entry) : unit =
  Mutex.protect t.lock (fun () ->
      if not (Hashtbl.mem t.index key) then begin
        (match t.oc with
        | None -> invalid_arg "Store.put: store is closed"
        | Some oc ->
          output_string oc (record_line key payload);
          flush oc;
          (* Durable appends reach the disk before the lock drops: a
             crash after this point cannot lose the record, a crash
             before it leaves at worst a torn tail the checksum rejects
             on reload. *)
          if t.durable then Unix.fsync (Unix.descr_of_out_channel oc));
        Hashtbl.replace t.index key e
      end)

let put t ~(key : string) ~(desc : string) (o : outcome) : unit =
  put_entry t ~key ~payload:(payload_of desc o) (Meas (desc, o))

(* Record an opaque artifact under [key]; same first-write-wins
   discipline as measurements. *)
let put_blob t ~(key : string) ~(name : string) (content : string) : unit =
  put_entry t ~key ~payload:(payload_of_blob ~name content) (Blob (name, content))

let close t : unit =
  Mutex.protect t.lock (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        (try close_out oc with Sys_error _ -> ());
        t.oc <- None)

(* ------------------------------------------------------------------ *)
(* Offline maintenance: fsck and compaction                            *)
(* ------------------------------------------------------------------ *)

(* What a scan of the file found.  [fs_reclaimable] counts the bytes
   occupied by lines a compaction would drop: corrupt records,
   duplicate keys (the first valid record wins, matching [put_entry]'s
   first-write-wins discipline) and blank lines. *)
type fsck_report = {
  fs_file : string;
  fs_bytes : int;  (* file size scanned *)
  fs_records : int;  (* non-blank lines after the header *)
  fs_valid : int;  (* distinct keys with a valid record *)
  fs_duplicates : int;  (* valid records whose key already appeared *)
  fs_corrupt : corrupt_line list;  (* rejected records, file order *)
  fs_reclaimable : int;  (* bytes compaction would reclaim *)
}

(* Scan [file] without touching it.  The header is validated exactly as
   [open_] does; the per-line verdicts reuse [parse_record], so fsck
   and load can never disagree about which records are good.  Returns
   the report plus the surviving record lines (first valid line per
   key, file order) for [compact] to rewrite. *)
let scan ~(file : string) : fsck_report * string list =
  let size = (Unix.stat file).Unix.st_size in
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      (match In_channel.input_line ic with
      | Some m when m = magic -> ()
      | Some m ->
        failwith
          (Printf.sprintf "Store: %s has header %S, expected %S — refusing a foreign file" file m
             magic)
      | None -> failwith (Printf.sprintf "Store: %s: missing header" file));
      let seen = Hashtbl.create 256 in
      let keep = ref [] in
      let records = ref 0 and valid = ref 0 and dups = ref 0 and reclaim = ref 0 in
      let corrupt = ref [] in
      let lineno = ref 1 in
      let rec loop () =
        match In_channel.input_line ic with
        | None -> ()
        | Some "" ->
          incr lineno;
          incr reclaim;  (* the blank line's newline *)
          loop ()
        | Some line ->
          incr lineno;
          incr records;
          (match parse_record line with
          | Ok (key, _) ->
            if Hashtbl.mem seen key then begin
              incr dups;
              reclaim := !reclaim + String.length line + 1
            end
            else begin
              Hashtbl.replace seen key ();
              incr valid;
              keep := line :: !keep
            end
          | Error reason ->
            corrupt := { cl_line = !lineno; cl_reason = reason } :: !corrupt;
            reclaim := !reclaim + String.length line + 1);
          loop ()
      in
      loop ();
      ( {
          fs_file = file;
          fs_bytes = size;
          fs_records = !records;
          fs_valid = !valid;
          fs_duplicates = !dups;
          fs_corrupt = List.rev !corrupt;
          fs_reclaimable = !reclaim;
        },
        List.rev !keep ))

let fsck ~(file : string) : fsck_report = fst (scan ~file)

(* Rewrite [file] down to its valid, deduplicated records: write header
   + survivors to a temp file in the same directory, fsync it, and
   rename it over the original (atomic on POSIX — a crash mid-compact
   leaves either the old file or the new one, never a mix).  Returns
   the scan report and the bytes actually reclaimed.  The store must
   not be open for writing elsewhere during compaction. *)
let compact ~(file : string) : fsck_report * int =
  let report, keep = scan ~file in
  let tmp = file ^ ".compact" in
  let oc = open_out_gen [ Open_creat; Open_trunc; Open_wronly ] 0o644 tmp in
  (try
     output_string oc (magic ^ "\n");
     List.iter
       (fun line ->
         output_string oc line;
         output_char oc '\n')
       keep;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  let new_size = (Unix.stat tmp).Unix.st_size in
  Sys.rename tmp file;
  (report, report.fs_bytes - new_size)
