(* Cooperative cancellation for long-running sweeps.

   A token is a thread-safe flag plus an optional absolute wall-clock
   deadline.  [Measure.measure_outcomes] polls it between candidates —
   the same seam the checkpoint journal's budget abort uses — so a
   cancelled sweep stops paying for the simulator at the next candidate
   boundary and aborts with the typed [Cancelled] exception.  Nothing
   is ever *un*-measured: every outcome settled before the token
   tripped is cached (and journaled/stored as attached), so a retried
   request resumes from them.

   Determinism: a token that never trips is invisible — it changes no
   measured value and no ordering.  A token that does trip only decides
   *how far* a sweep got, never what any completed measurement reads;
   this is the property that makes deadline-bounded serving safe on top
   of the content-addressed store. *)

type t = {
  lock : Mutex.t;
  mutable flag : bool;  (* explicit [cancel] was called *)
  deadline : float option;  (* absolute [Unix.gettimeofday] cutoff *)
}

(* Raised out of a sweep whose token tripped while measurements were
   still outstanding.  A sweep whose work was already settled (warm
   cache, warm store) completes normally even on an expired token —
   answering from memory does not miss a deadline. *)
exception Cancelled

let () =
  Printexc.register_printer (function
    | Cancelled -> Some "Tuner.Cancel.Cancelled"
    | _ -> None)

let create ?deadline () : t = { lock = Mutex.create (); flag = false; deadline }

(* Token that trips [ms] milliseconds from now (immediately for
   [ms <= 0] — an already-expired deadline cancels all new work). *)
let with_deadline_ms (ms : int) : t =
  create ~deadline:(Unix.gettimeofday () +. (float_of_int ms /. 1000.0)) ()

let cancel (t : t) : unit = Mutex.protect t.lock (fun () -> t.flag <- true)

let cancelled (t : t) : bool =
  Mutex.protect t.lock (fun () -> t.flag)
  || match t.deadline with None -> false | Some d -> Unix.gettimeofday () >= d
