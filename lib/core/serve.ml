(* The tuning service: a long-running daemon that answers tune / explore
   / lint requests over the [Proto] wire protocol, backed by the
   content-addressed result store ([Store]).

   The paper's premise is that exhaustive measurement is too expensive
   to repeat; the daemon makes that operational.  Every measurement a
   request triggers lands in the store, so any client asking about the
   same (kernel x space x arch) point — in this process or the next —
   is answered from disk.  A warm request over an already-measured
   space touches the simulator zero times.

   Layering.  This module knows nothing about the concrete applications:
   a [resolver], built by the binary from [Apps.Registry], maps an
   (app, scale) pair to its candidate list and a memoized store-key
   function.  Everything below the resolver is the existing machinery —
   [Search] for the sweeps, [Measure] (with the store bound) for
   memoized parallel measurement over [Util.Pool] domains, [Chaos] for
   fault injection, [Fault] for the taxonomy.

   Batching and sharding.  Connections are accepted by a select loop
   and fanned out to a small pool of connection-worker domains; each
   request's measurements are then sharded across [Util.Pool] worker
   domains by [Measure.measure_outcomes] exactly as in the CLI, with
   duplicate candidates collapsed per batch and already-known points
   answered from the store before any worker spawns (a fully warm batch
   costs no domain at all, see [Util.Pool.map_result]).

   Chaos-flagged requests deliberately BYPASS the store: an injected
   fault is a property of the injection, not of the candidate, and
   recording it under the candidate's content address would poison
   every later honest request ("store poisoning").

   Robustness: [handle_frame] is total.  Unparseable frames and
   malformed messages produce [Error_r Protocol_error]; unknown apps
   and unsatisfiable parameters produce typed errors; a handler crash
   is caught and answered as [Server_error].  No input bytes can take
   the daemon down. *)

(* ------------------------------------------------------------------ *)
(* Resolver: the daemon's view of the application registry             *)
(* ------------------------------------------------------------------ *)

type resolved_space = {
  sp_cands : Candidate.t list;
  sp_store_key : Candidate.t -> string;
      (* memoized content address for this (app, scale, arch) space, so
         a request does not re-render PTX to digest the space *)
  sp_reduced : Candidate.t list Lazy.t;
      (* the app's reduced-shape (quick) space on the same arch — the
         racing rung of a predict-flagged explore; lazy because most
         requests never ask for it *)
}

type resolver = {
  rv_apps : string list;  (* known application names, for error text *)
  rv_space :
    app:string ->
    scale:Proto.scale ->
    arch:string ->
    (resolved_space, Proto.error_code * string) result;
      (* [arch] is a registry machine name; an unknown one is a
         [Bad_request] naming the known models *)
  rv_lint :
    app:string -> config:string option -> (string * bool, Proto.error_code * string) result;
      (* lint report text and whether it contains errors *)
}

(* Requests that omit the arch field target the default machine. *)
let default_arch_name = Gpu.Arch.g80.Gpu.Arch.name

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type t = {
  store : Store.t;
  resolver : resolver;
  jobs : int option;  (* measurement worker domains per request *)
  lock : Mutex.t;
  mutable requests : int;
  mutable errors : int;
  mutable runs : int;  (* simulator measurements performed *)
  mutable store_hits : int;
  mutable store_misses : int;
  stop : bool Atomic.t;
      (* set by a Shutdown request or a SIGTERM; atomic (not under
         [lock]) so the signal handler installed by [listen
         ~on_sigterm:true] can flip it without risking a deadlock on a
         mutex the interrupted thread holds *)
}

let create ?jobs ~(store : Store.t) (resolver : resolver) : t =
  {
    store;
    resolver;
    jobs;
    lock = Mutex.create ();
    requests = 0;
    errors = 0;
    runs = 0;
    store_hits = 0;
    store_misses = 0;
    stop = Atomic.make false;
  }

let stopping t = Atomic.get t.stop
let request_stop t = Atomic.set t.stop true

let note_engine t (e : Search.engine_stats) : unit =
  Mutex.protect t.lock (fun () ->
      t.runs <- t.runs + e.measure_runs;
      t.store_hits <- t.store_hits + e.store_hits;
      t.store_misses <- t.store_misses + e.store_misses)

let stats t : Proto.server_stats =
  let entries = Store.entries t.store in
  Mutex.protect t.lock (fun () ->
      {
        Proto.sv_requests = t.requests;
        sv_errors = t.errors;
        sv_runs = t.runs;
        sv_store_hits = t.store_hits;
        sv_store_misses = t.store_misses;
        sv_store_entries = entries;
      })

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let row_of_measured (m : Search.measured) : Proto.measured_row =
  { Proto.m_desc = m.cand.desc; m_time_s = m.time_s }

let descs_of sel = List.map (fun ((c : Candidate.t), _) -> c.desc) sel

let handle_tune t ~app ~scale ~(arch : string option) ~(cancel : Cancel.t option) :
    Proto.response =
  let arch = Option.value arch ~default:default_arch_name in
  match t.resolver.rv_space ~app ~scale ~arch with
  | Error (e_code, e_msg) -> Error_r { e_code; e_msg }
  | Ok sp ->
    let r =
      Search.tune_full ?jobs:t.jobs ?cancel ~store:t.store ~store_key:sp.sp_store_key
        ~app_name:app sp.sp_cands
    in
    note_engine t r.tune_engine;
    Tune_r
      {
        t_app = app;
        t_arch = arch;
        t_space_size = r.tune_space_size;
        t_chosen = row_of_measured r.chosen;
        t_selected = descs_of r.considered;
        t_runs = r.tune_engine.measure_runs;
        t_store_hits = r.tune_engine.store_hits;
      }

let handle_explore t ~app ~scale ~(chaos : Proto.chaos_spec option) ~(arch : string option)
    ~(predict : bool) ~(cancel : Cancel.t option) : Proto.response =
  let arch = Option.value arch ~default:default_arch_name in
  match t.resolver.rv_space ~app ~scale ~arch with
  | Error (e_code, e_msg) -> Error_r { e_code; e_msg }
  | Ok sp ->
    let r =
      match chaos with
      | None ->
        (* The model-driven race runs on the server's default plan with
           no rule database: rule discovery is a per-store artifact and
           pulling it in here would make replies depend on superopt
           state.  Probes and survivors flow through the same
           store-bound engine as the exhaustive sweep, so a warm store
           answers the race for free. *)
        let pspec =
          if predict then
            Some (Prune.spec ~reduced:(Lazy.force sp.sp_reduced) ())
          else None
        in
        Search.run ?jobs:t.jobs ?cancel ?predict:pspec ~store:t.store
          ~store_key:sp.sp_store_key ~app_name:app sp.sp_cands
      | Some { ch_seed; ch_count } ->
        (* Injected faults are synthetic: measuring them through the
           store would record them under healthy candidates' content
           addresses.  Chaos sweeps therefore run store-less (and
           ignore [predict]: a race over injected faults would compare
           synthetic times). *)
        let cands, _injections = Chaos.inject ~seed:ch_seed ~count:ch_count sp.sp_cands in
        Search.run ?jobs:t.jobs ?cancel ~app_name:app cands
    in
    note_engine t r.engine;
    Explore_r
      {
        x_app = app;
        x_arch = arch;
        x_space_size = r.space_size;
        x_invalid = r.invalid;
        x_best = row_of_measured r.best;
        x_selected_best = row_of_measured r.selected_best;
        x_selected = descs_of r.selected;
        x_exhaustive = List.map row_of_measured r.exhaustive;
        x_reduction = r.reduction;
        x_optimum_selected = r.optimum_selected;
        x_faults =
          List.map
            (fun ((c : Candidate.t), f) ->
              { Proto.f_desc = c.desc; f_fault = Fault.to_journal f })
            r.faults;
        x_runs = r.engine.measure_runs;
        x_store_hits = r.engine.store_hits;
        x_prune =
          (match r.prune with
          | None -> None
          | Some o ->
            Some
              {
                Proto.p_total = o.Prune.pr_total;
                p_probes = List.length o.Prune.pr_probes;
                p_raced = o.Prune.pr_raced;
                p_simulated = o.Prune.pr_simulated;
                p_winner = row_of_measured o.Prune.pr_winner;
                p_rank = Option.value (Prune.rank_of o r.best.cand.desc) ~default:0;
                p_recovered = Prune.recovered o ~best:r.best;
                p_model = Predict.digest o.Prune.pr_model;
              });
      }

(* Dispatch one decoded request.  Total: anything the machinery throws
   settles as a typed error response.  A request carrying [deadline_ms]
   runs under a [Cancel] token; a sweep the token aborts answers with
   the typed [Deadline_exceeded] error rather than the generic server
   error — clients can tell "too slow" from "broken".  A warm sweep
   never trips the token (every point answers from cache/store), so a
   deadline only cuts off work that would actually run the simulator. *)
let handle t (req : Proto.request) : Proto.response =
  Mutex.protect t.lock (fun () -> t.requests <- t.requests + 1);
  let resp =
    try
      match req with
      | Proto.Ping -> Proto.Pong
      | Proto.Stats -> Stats_r (stats t)
      | Proto.Shutdown ->
        request_stop t;
        Bye
      | Proto.Tune { app; scale; arch; deadline_ms } ->
        let cancel = Option.map Cancel.with_deadline_ms deadline_ms in
        handle_tune t ~app ~scale ~arch ~cancel
      | Proto.Explore { app; scale; chaos; arch; predict; deadline_ms } ->
        let cancel = Option.map Cancel.with_deadline_ms deadline_ms in
        handle_explore t ~app ~scale ~chaos ~arch ~predict ~cancel
      | Proto.Lint { app; config } -> (
        match t.resolver.rv_lint ~app ~config with
        | Ok (l_report, l_errors) -> Lint_r { l_report; l_errors }
        | Error (e_code, e_msg) -> Error_r { e_code; e_msg })
    with
    | Cancel.Cancelled ->
      Error_r
        {
          e_code = Deadline_exceeded;
          e_msg = "deadline expired before the sweep settled; completed measurements are stored";
        }
    | Invalid_argument msg -> Error_r { e_code = Bad_request; e_msg = msg }
    | e -> Error_r { e_code = Server_error; e_msg = Printexc.to_string e }
  in
  (match resp with
  | Error_r _ -> Mutex.protect t.lock (fun () -> t.errors <- t.errors + 1)
  | _ -> ());
  resp

(* One frame in, one frame payload out — the seam the protocol tests
   drive without a socket. *)
let handle_frame t (payload : string) : string =
  match Proto.decode_request payload with
  | Ok req -> Proto.encode_response (handle t req)
  | Error de ->
    Mutex.protect t.lock (fun () ->
        t.requests <- t.requests + 1;
        t.errors <- t.errors + 1);
    Proto.encode_response
      (Error_r { e_code = Protocol_error; e_msg = Proto.decode_error_to_string de })

(* ------------------------------------------------------------------ *)
(* Socket plumbing                                                     *)
(* ------------------------------------------------------------------ *)

(* A client that vanishes between request and reply turns the reply
   write into a SIGPIPE, which by default kills the whole process.
   Ignoring it downgrades the signal to the EPIPE error the write paths
   already handle.  Idempotent; called by [listen] and exposed for
   client-side binaries (their request writes can race a daemon
   restart). *)
let ignore_sigpipe () : unit =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let rec write_all fd (s : string) pos len =
  if len > 0 then begin
    match Unix.write_substring fd s pos len with
    | n -> write_all fd s (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s pos len
  end

let send_frame fd (payload : string) : unit =
  let f = Proto.frame payload in
  write_all fd f 0 (String.length f)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* [Unix.read] with uniform EINTR handling: a signal landing mid-read
   (SIGCHLD from a forked bench daemon, a profiler tick) retries
   instead of masquerading as a closed connection.  This matches the
   accept loop's EINTR treatment. *)
let rec read_retry fd chunk pos len : int =
  match Unix.read fd chunk pos len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd chunk pos len

(* Wait until [fd] is readable or [deadline] (absolute) passes, in
   small select slices so the wait notices a server stop promptly. *)
let wait_readable ~(stop : unit -> bool) ~(deadline : float) fd :
    [ `Readable | `Timeout | `Stop ] =
  let slice_s = 0.1 in
  let rec loop () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then `Timeout
    else
      (* Data already in flight wins over a stop: a request sent before
         the drain began still deserves its reply. *)
      match Unix.select [ fd ] [] [] (Float.min slice_s remaining) with
      | [], _, _ -> if stop () then `Stop else loop ()
      | _ -> `Readable
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> if stop () then `Stop else loop ()
  in
  loop ()

(* Serve one connection until the peer closes it (or poisons the
   stream).  Frames are answered in order; an oversized length prefix
   is unrecoverable — the offset of the next frame is unknowable — so
   it draws one final protocol error and the connection drops.

   Reads are bounded by a per-frame deadline: each complete frame buys
   the client another [io_timeout_s] to deliver the next one.  The
   deadline is NOT reset by partial reads, so a slow-loris client
   dripping one byte per interval cannot pin a worker domain — it is
   cut off [io_timeout_s] after its frame started, however steadily it
   drips.  The wait also aborts when the server is stopping, so
   graceful drain is bounded by the in-flight [handle] calls, not by
   clients holding connections open. *)
let serve_connection ?(io_timeout_s = 30.0) t fd : unit =
  let chunk = Bytes.create 65536 in
  let buf = ref "" in
  let closed = ref false in
  let frame_deadline = ref (Unix.gettimeofday () +. io_timeout_s) in
  while not !closed do
    match Proto.peek_frame !buf ~pos:0 with
    | `Frame (payload, next) ->
      buf := String.sub !buf next (String.length !buf - next);
      let reply = handle_frame t payload in
      (try send_frame fd reply with Unix.Unix_error _ -> closed := true);
      (* During a drain, finish at a frame boundary: requests already
         on the wire were answered above; a chatty client cannot hold
         the drain open by sending more. *)
      if stopping t then closed := true;
      frame_deadline := Unix.gettimeofday () +. io_timeout_s
    | `Error fe ->
      Mutex.protect t.lock (fun () -> t.errors <- t.errors + 1);
      (try
         send_frame fd
           (Proto.encode_response
              (Error_r { e_code = Protocol_error; e_msg = Proto.frame_error_to_string fe }))
       with Unix.Unix_error _ -> ());
      closed := true
    | `Need _ -> (
      match wait_readable ~stop:(fun () -> stopping t) ~deadline:!frame_deadline fd with
      | `Timeout | `Stop -> closed := true
      | `Readable -> (
        match read_retry fd chunk 0 (Bytes.length chunk) with
        | 0 -> closed := true  (* EOF; a truncated tail has no one to answer *)
        | n -> buf := !buf ^ Bytes.sub_string chunk 0 n
        | exception Unix.Unix_error _ -> closed := true))
  done;
  close_quietly fd

(* Accept loop: bind a Unix-domain socket, fan connections out to
   [conn_workers] domains, stop when a Shutdown request flips the flag
   (checked every [poll_s] via select timeout).  Returns once every
   worker has drained.

   Admission control: the accept queue is bounded at [max_queue].  A
   connection arriving while the queue is full is answered immediately
   with a typed [Overloaded_r { retry_after_ms }] frame and closed —
   load sheds at the door with an explicit signal the client can back
   off on, instead of piling up connections until memory or patience
   runs out.

   [on_sigterm] installs a SIGTERM handler that flips the stop flag:
   the accept loop closes, queued connections finish their in-flight
   frames (idle waits abort, see [serve_connection]), workers drain,
   and [listen] returns — a graceful drain rather than mid-sweep
   death.  Off by default so library users (tests, benches that manage
   their own signals) keep process-global state untouched. *)
let listen ?(conn_workers = 4) ?(backlog = 64) ?(poll_s = 0.2) ?(max_queue = 128)
    ?(io_timeout_s = 30.0) ?(retry_after_ms = 200) ?(on_sigterm = false) t
    ~(socket : string) () : unit =
  ignore_sigpipe ();
  if on_sigterm && not Sys.win32 then
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> request_stop t));
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX socket);
  Unix.listen sock backlog;
  let q : Unix.file_descr Queue.t = Queue.create () in
  let qlock = Mutex.create () in
  let qcond = Condition.create () in
  (* Next connection to serve; None once the stop flag is up and the
     queue has drained. *)
  let pop () : Unix.file_descr option =
    Mutex.lock qlock;
    let rec wait () =
      if not (Queue.is_empty q) then begin
        let fd = Queue.pop q in
        Mutex.unlock qlock;
        Some fd
      end
      else if stopping t then begin
        Mutex.unlock qlock;
        None
      end
      else begin
        Condition.wait qcond qlock;
        wait ()
      end
    in
    wait ()
  in
  (* Best-effort shed: one Overloaded frame, then close.  The client
     may already be gone — every failure path just drops the fd. *)
  let shed fd =
    (try send_frame fd (Proto.encode_response (Overloaded_r { o_retry_after_ms = retry_after_ms }))
     with Unix.Unix_error _ | Sys_error _ -> ());
    close_quietly fd
  in
  let workers =
    List.init (max 1 conn_workers) (fun _ ->
        Domain.spawn (fun () ->
            let rec loop () =
              match pop () with
              | None -> ()
              | Some fd ->
                serve_connection ~io_timeout_s t fd;
                loop ()
            in
            loop ()))
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock qlock;
      Condition.broadcast qcond;
      Mutex.unlock qlock;
      List.iter Domain.join workers;
      (* Whatever is still queued after the drain gets the shed reply
         rather than a silent close. *)
      Mutex.protect qlock (fun () ->
          Queue.iter shed q;
          Queue.clear q);
      close_quietly sock;
      try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () ->
      while not (stopping t) do
        match Unix.select [ sock ] [] [] poll_s with
        | [], _, _ -> ()
        | _ -> (
          match Unix.accept sock with
          | fd, _ ->
            let overloaded =
              Mutex.protect qlock (fun () ->
                  if Queue.length q >= max_queue then true
                  else begin
                    Queue.push fd q;
                    Condition.signal qcond;
                    false
                  end)
            in
            if overloaded then shed fd
          | exception Unix.Unix_error _ -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done)

(* ------------------------------------------------------------------ *)
(* Client side                                                         *)
(* ------------------------------------------------------------------ *)

let connect ~(socket : string) : Unix.file_descr =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     close_quietly fd;
     raise e);
  fd

let read_frame fd : (string, string) result =
  let chunk = Bytes.create 65536 in
  let rec loop buf =
    match Proto.peek_frame buf ~pos:0 with
    | `Frame (payload, _) -> Ok payload
    | `Error fe -> Error (Proto.frame_error_to_string fe)
    | `Need need -> (
      match read_retry fd chunk 0 (Bytes.length chunk) with
      | 0 -> (
        match Proto.at_eof ~pending:(String.length buf) ~need with
        | Some fe -> Error (Proto.frame_error_to_string fe)
        | None -> Error "connection closed before any reply")
      | n -> loop (buf ^ Bytes.sub_string chunk 0 n))
  in
  loop ""

(* One request/response exchange on an open connection.  A failed send
   still drains the socket first: a server that answered-and-closed
   before our write landed (an overload shed at the door) left its
   reply buffered in the socket, and that typed reply beats a generic
   transport error. *)
let rpc fd (req : Proto.request) : (Proto.response, string) result =
  let decode payload =
    match Proto.decode_response payload with
    | Ok r -> Ok r
    | Error de -> Error (Proto.decode_error_to_string de)
  in
  match send_frame fd (Proto.encode_request req) with
  | exception Unix.Unix_error (e, _, _) -> (
    match read_frame fd with
    | Ok payload -> decode payload
    | Error _ -> Error ("send: " ^ Unix.error_message e))
  | () -> (
    match read_frame fd with
    | Error _ as e -> e
    | Ok payload -> decode payload)

let with_client ~(socket : string) (f : Unix.file_descr -> 'a) : 'a =
  let fd = connect ~socket in
  Fun.protect ~finally:(fun () -> close_quietly fd) (fun () -> f fd)

let call_once ~(socket : string) (req : Proto.request) : (Proto.response, string) result =
  match with_client ~socket (fun fd -> rpc fd req) with
  | r -> r
  | exception Unix.Unix_error (e, _, _) -> Error ("connect: " ^ Unix.error_message e)

(* Connect, exchange one message, disconnect.  Connection failures
   settle as [Error] — callers polling a daemon that is still coming up
   rely on this.

   [retries] > 0 adds client resilience: transport errors (refused
   connect, dropped connection, torn reply) and typed [Overloaded_r]
   sheds are retried with jittered exponential backoff.  Retrying is
   safe because requests are read-only or idempotent: a tune/explore
   that half-ran before the wire died left its measurements under
   content-addressed keys, so the retry completes from the store rather
   than repeating work.  The jitter stream is seeded from the request
   itself — the same call sequence backs off identically run to run,
   keeping benches deterministic.  An [Overloaded_r] reply's
   [retry_after_ms] floors the backoff for that attempt; with no
   retries left it is returned as-is so the caller sees the typed
   shed. *)
let call ?(retries = 0) ?(retry_base_ms = 50) ~(socket : string) (req : Proto.request) :
    (Proto.response, string) result =
  if retries <= 0 then call_once ~socket req
  else begin
    let rng = Util.Rng.create (Hashtbl.hash (socket, Proto.encode_request req, retries)) in
    let backoff attempt ~(floor_ms : int) =
      let base = retry_base_ms * (1 lsl min attempt 10) in
      let jittered = base + Util.Rng.int rng (max 1 base) in
      Unix.sleepf (float_of_int (max floor_ms jittered) /. 1000.0)
    in
    let rec go attempt =
      match call_once ~socket req with
      | Ok (Proto.Overloaded_r { o_retry_after_ms }) as r ->
        if attempt >= retries then r
        else begin
          backoff attempt ~floor_ms:o_retry_after_ms;
          go (attempt + 1)
        end
      | Ok _ as r -> r
      | Error _ as r ->
        if attempt >= retries then r
        else begin
          backoff attempt ~floor_ms:0;
          go (attempt + 1)
        end
    in
    go 0
  end

(* Poll until the daemon answers a ping (bounded); used by everything
   that forks a server and must not race its bind. *)
let wait_ready ?(timeout_s = 10.0) ~(socket : string) () : bool =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec loop () =
    match call ~socket Proto.Ping with
    | Ok Proto.Pong -> true
    | _ ->
      if Unix.gettimeofday () >= deadline then false
      else begin
        (try ignore (Unix.select [] [] [] 0.05)
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        loop ()
      end
  in
  loop ()
