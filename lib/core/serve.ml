(* The tuning service: a long-running daemon that answers tune / explore
   / lint requests over the [Proto] wire protocol, backed by the
   content-addressed result store ([Store]).

   The paper's premise is that exhaustive measurement is too expensive
   to repeat; the daemon makes that operational.  Every measurement a
   request triggers lands in the store, so any client asking about the
   same (kernel x space x arch) point — in this process or the next —
   is answered from disk.  A warm request over an already-measured
   space touches the simulator zero times.

   Layering.  This module knows nothing about the concrete applications:
   a [resolver], built by the binary from [Apps.Registry], maps an
   (app, scale) pair to its candidate list and a memoized store-key
   function.  Everything below the resolver is the existing machinery —
   [Search] for the sweeps, [Measure] (with the store bound) for
   memoized parallel measurement over [Util.Pool] domains, [Chaos] for
   fault injection, [Fault] for the taxonomy.

   Batching and sharding.  Connections are accepted by a select loop
   and fanned out to a small pool of connection-worker domains; each
   request's measurements are then sharded across [Util.Pool] worker
   domains by [Measure.measure_outcomes] exactly as in the CLI, with
   duplicate candidates collapsed per batch and already-known points
   answered from the store before any worker spawns (a fully warm batch
   costs no domain at all, see [Util.Pool.map_result]).

   Chaos-flagged requests deliberately BYPASS the store: an injected
   fault is a property of the injection, not of the candidate, and
   recording it under the candidate's content address would poison
   every later honest request ("store poisoning").

   Robustness: [handle_frame] is total.  Unparseable frames and
   malformed messages produce [Error_r Protocol_error]; unknown apps
   and unsatisfiable parameters produce typed errors; a handler crash
   is caught and answered as [Server_error].  No input bytes can take
   the daemon down. *)

(* ------------------------------------------------------------------ *)
(* Resolver: the daemon's view of the application registry             *)
(* ------------------------------------------------------------------ *)

type resolved_space = {
  sp_cands : Candidate.t list;
  sp_store_key : Candidate.t -> string;
      (* memoized content address for this (app, scale, arch) space, so
         a request does not re-render PTX to digest the space *)
  sp_reduced : Candidate.t list Lazy.t;
      (* the app's reduced-shape (quick) space on the same arch — the
         racing rung of a predict-flagged explore; lazy because most
         requests never ask for it *)
}

type resolver = {
  rv_apps : string list;  (* known application names, for error text *)
  rv_space :
    app:string ->
    scale:Proto.scale ->
    arch:string ->
    (resolved_space, Proto.error_code * string) result;
      (* [arch] is a registry machine name; an unknown one is a
         [Bad_request] naming the known models *)
  rv_lint :
    app:string -> config:string option -> (string * bool, Proto.error_code * string) result;
      (* lint report text and whether it contains errors *)
}

(* Requests that omit the arch field target the default machine. *)
let default_arch_name = Gpu.Arch.g80.Gpu.Arch.name

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type t = {
  store : Store.t;
  resolver : resolver;
  jobs : int option;  (* measurement worker domains per request *)
  lock : Mutex.t;
  mutable requests : int;
  mutable errors : int;
  mutable runs : int;  (* simulator measurements performed *)
  mutable store_hits : int;
  mutable store_misses : int;
  mutable stop : bool;  (* set by a Shutdown request *)
}

let create ?jobs ~(store : Store.t) (resolver : resolver) : t =
  {
    store;
    resolver;
    jobs;
    lock = Mutex.create ();
    requests = 0;
    errors = 0;
    runs = 0;
    store_hits = 0;
    store_misses = 0;
    stop = false;
  }

let stopping t = Mutex.protect t.lock (fun () -> t.stop)
let request_stop t = Mutex.protect t.lock (fun () -> t.stop <- true)

let note_engine t (e : Search.engine_stats) : unit =
  Mutex.protect t.lock (fun () ->
      t.runs <- t.runs + e.measure_runs;
      t.store_hits <- t.store_hits + e.store_hits;
      t.store_misses <- t.store_misses + e.store_misses)

let stats t : Proto.server_stats =
  let entries = Store.entries t.store in
  Mutex.protect t.lock (fun () ->
      {
        Proto.sv_requests = t.requests;
        sv_errors = t.errors;
        sv_runs = t.runs;
        sv_store_hits = t.store_hits;
        sv_store_misses = t.store_misses;
        sv_store_entries = entries;
      })

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let row_of_measured (m : Search.measured) : Proto.measured_row =
  { Proto.m_desc = m.cand.desc; m_time_s = m.time_s }

let descs_of sel = List.map (fun ((c : Candidate.t), _) -> c.desc) sel

let handle_tune t ~app ~scale ~(arch : string option) : Proto.response =
  let arch = Option.value arch ~default:default_arch_name in
  match t.resolver.rv_space ~app ~scale ~arch with
  | Error (e_code, e_msg) -> Error_r { e_code; e_msg }
  | Ok sp ->
    let r =
      Search.tune_full ?jobs:t.jobs ~store:t.store ~store_key:sp.sp_store_key ~app_name:app
        sp.sp_cands
    in
    note_engine t r.tune_engine;
    Tune_r
      {
        t_app = app;
        t_arch = arch;
        t_space_size = r.tune_space_size;
        t_chosen = row_of_measured r.chosen;
        t_selected = descs_of r.considered;
        t_runs = r.tune_engine.measure_runs;
        t_store_hits = r.tune_engine.store_hits;
      }

let handle_explore t ~app ~scale ~(chaos : Proto.chaos_spec option) ~(arch : string option)
    ~(predict : bool) : Proto.response =
  let arch = Option.value arch ~default:default_arch_name in
  match t.resolver.rv_space ~app ~scale ~arch with
  | Error (e_code, e_msg) -> Error_r { e_code; e_msg }
  | Ok sp ->
    let r =
      match chaos with
      | None ->
        (* The model-driven race runs on the server's default plan with
           no rule database: rule discovery is a per-store artifact and
           pulling it in here would make replies depend on superopt
           state.  Probes and survivors flow through the same
           store-bound engine as the exhaustive sweep, so a warm store
           answers the race for free. *)
        let pspec =
          if predict then
            Some (Prune.spec ~reduced:(Lazy.force sp.sp_reduced) ())
          else None
        in
        Search.run ?jobs:t.jobs ?predict:pspec ~store:t.store ~store_key:sp.sp_store_key
          ~app_name:app sp.sp_cands
      | Some { ch_seed; ch_count } ->
        (* Injected faults are synthetic: measuring them through the
           store would record them under healthy candidates' content
           addresses.  Chaos sweeps therefore run store-less (and
           ignore [predict]: a race over injected faults would compare
           synthetic times). *)
        let cands, _injections = Chaos.inject ~seed:ch_seed ~count:ch_count sp.sp_cands in
        Search.run ?jobs:t.jobs ~app_name:app cands
    in
    note_engine t r.engine;
    Explore_r
      {
        x_app = app;
        x_arch = arch;
        x_space_size = r.space_size;
        x_invalid = r.invalid;
        x_best = row_of_measured r.best;
        x_selected_best = row_of_measured r.selected_best;
        x_selected = descs_of r.selected;
        x_exhaustive = List.map row_of_measured r.exhaustive;
        x_reduction = r.reduction;
        x_optimum_selected = r.optimum_selected;
        x_faults =
          List.map
            (fun ((c : Candidate.t), f) ->
              { Proto.f_desc = c.desc; f_fault = Fault.to_journal f })
            r.faults;
        x_runs = r.engine.measure_runs;
        x_store_hits = r.engine.store_hits;
        x_prune =
          (match r.prune with
          | None -> None
          | Some o ->
            Some
              {
                Proto.p_total = o.Prune.pr_total;
                p_probes = List.length o.Prune.pr_probes;
                p_raced = o.Prune.pr_raced;
                p_simulated = o.Prune.pr_simulated;
                p_winner = row_of_measured o.Prune.pr_winner;
                p_rank = Option.value (Prune.rank_of o r.best.cand.desc) ~default:0;
                p_recovered = Prune.recovered o ~best:r.best;
                p_model = Predict.digest o.Prune.pr_model;
              });
      }

(* Dispatch one decoded request.  Total: anything the machinery throws
   settles as a typed error response. *)
let handle t (req : Proto.request) : Proto.response =
  Mutex.protect t.lock (fun () -> t.requests <- t.requests + 1);
  let resp =
    try
      match req with
      | Proto.Ping -> Proto.Pong
      | Proto.Stats -> Stats_r (stats t)
      | Proto.Shutdown ->
        request_stop t;
        Bye
      | Proto.Tune { app; scale; arch } -> handle_tune t ~app ~scale ~arch
      | Proto.Explore { app; scale; chaos; arch; predict } ->
        handle_explore t ~app ~scale ~chaos ~arch ~predict
      | Proto.Lint { app; config } -> (
        match t.resolver.rv_lint ~app ~config with
        | Ok (l_report, l_errors) -> Lint_r { l_report; l_errors }
        | Error (e_code, e_msg) -> Error_r { e_code; e_msg })
    with
    | Invalid_argument msg -> Error_r { e_code = Bad_request; e_msg = msg }
    | e -> Error_r { e_code = Server_error; e_msg = Printexc.to_string e }
  in
  (match resp with
  | Error_r _ -> Mutex.protect t.lock (fun () -> t.errors <- t.errors + 1)
  | _ -> ());
  resp

(* One frame in, one frame payload out — the seam the protocol tests
   drive without a socket. *)
let handle_frame t (payload : string) : string =
  match Proto.decode_request payload with
  | Ok req -> Proto.encode_response (handle t req)
  | Error de ->
    Mutex.protect t.lock (fun () ->
        t.requests <- t.requests + 1;
        t.errors <- t.errors + 1);
    Proto.encode_response
      (Error_r { e_code = Protocol_error; e_msg = Proto.decode_error_to_string de })

(* ------------------------------------------------------------------ *)
(* Socket plumbing                                                     *)
(* ------------------------------------------------------------------ *)

let rec write_all fd (s : string) pos len =
  if len > 0 then begin
    let n = Unix.write_substring fd s pos len in
    write_all fd s (pos + n) (len - n)
  end

let send_frame fd (payload : string) : unit =
  let f = Proto.frame payload in
  write_all fd f 0 (String.length f)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Serve one connection until the peer closes it (or poisons the
   stream).  Frames are answered in order; an oversized length prefix
   is unrecoverable — the offset of the next frame is unknowable — so
   it draws one final protocol error and the connection drops. *)
let serve_connection t fd : unit =
  let chunk = Bytes.create 65536 in
  let buf = ref "" in
  let closed = ref false in
  while not !closed do
    match Proto.peek_frame !buf ~pos:0 with
    | `Frame (payload, next) ->
      buf := String.sub !buf next (String.length !buf - next);
      let reply = handle_frame t payload in
      (try send_frame fd reply with Unix.Unix_error _ -> closed := true)
    | `Error fe ->
      Mutex.protect t.lock (fun () -> t.errors <- t.errors + 1);
      (try
         send_frame fd
           (Proto.encode_response
              (Error_r { e_code = Protocol_error; e_msg = Proto.frame_error_to_string fe }))
       with Unix.Unix_error _ -> ());
      closed := true
    | `Need _ -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> closed := true  (* EOF; a truncated tail has no one to answer *)
      | n -> buf := !buf ^ Bytes.sub_string chunk 0 n
      | exception Unix.Unix_error _ -> closed := true)
  done;
  close_quietly fd

(* Accept loop: bind a Unix-domain socket, fan connections out to
   [conn_workers] domains, stop when a Shutdown request flips the flag
   (checked every [poll_s] via select timeout).  Returns once every
   worker has drained. *)
let listen ?(conn_workers = 4) ?(backlog = 64) ?(poll_s = 0.2) t ~(socket : string) () : unit
    =
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX socket);
  Unix.listen sock backlog;
  let q : Unix.file_descr Queue.t = Queue.create () in
  let qlock = Mutex.create () in
  let qcond = Condition.create () in
  (* Next connection to serve; None once the stop flag is up and the
     queue has drained. *)
  let pop () : Unix.file_descr option =
    Mutex.lock qlock;
    let rec wait () =
      if not (Queue.is_empty q) then begin
        let fd = Queue.pop q in
        Mutex.unlock qlock;
        Some fd
      end
      else if stopping t then begin
        Mutex.unlock qlock;
        None
      end
      else begin
        Condition.wait qcond qlock;
        wait ()
      end
    in
    wait ()
  in
  let workers =
    List.init (max 1 conn_workers) (fun _ ->
        Domain.spawn (fun () ->
            let rec loop () =
              match pop () with
              | None -> ()
              | Some fd ->
                serve_connection t fd;
                loop ()
            in
            loop ()))
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock qlock;
      Condition.broadcast qcond;
      Mutex.unlock qlock;
      List.iter Domain.join workers;
      close_quietly sock;
      try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () ->
      while not (stopping t) do
        match Unix.select [ sock ] [] [] poll_s with
        | [], _, _ -> ()
        | _ -> (
          match Unix.accept sock with
          | fd, _ ->
            Mutex.lock qlock;
            Queue.push fd q;
            Condition.signal qcond;
            Mutex.unlock qlock
          | exception Unix.Unix_error _ -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done)

(* ------------------------------------------------------------------ *)
(* Client side                                                         *)
(* ------------------------------------------------------------------ *)

let connect ~(socket : string) : Unix.file_descr =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     close_quietly fd;
     raise e);
  fd

let read_frame fd : (string, string) result =
  let chunk = Bytes.create 65536 in
  let rec loop buf =
    match Proto.peek_frame buf ~pos:0 with
    | `Frame (payload, _) -> Ok payload
    | `Error fe -> Error (Proto.frame_error_to_string fe)
    | `Need need -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> (
        match Proto.at_eof ~pending:(String.length buf) ~need with
        | Some fe -> Error (Proto.frame_error_to_string fe)
        | None -> Error "connection closed before any reply")
      | n -> loop (buf ^ Bytes.sub_string chunk 0 n))
  in
  loop ""

(* One request/response exchange on an open connection. *)
let rpc fd (req : Proto.request) : (Proto.response, string) result =
  match send_frame fd (Proto.encode_request req) with
  | exception Unix.Unix_error (e, _, _) -> Error ("send: " ^ Unix.error_message e)
  | () -> (
    match read_frame fd with
    | Error _ as e -> e
    | Ok payload -> (
      match Proto.decode_response payload with
      | Ok r -> Ok r
      | Error de -> Error (Proto.decode_error_to_string de)))

let with_client ~(socket : string) (f : Unix.file_descr -> 'a) : 'a =
  let fd = connect ~socket in
  Fun.protect ~finally:(fun () -> close_quietly fd) (fun () -> f fd)

(* Connect, exchange one message, disconnect.  Connection failures
   settle as [Error] — callers polling a daemon that is still coming up
   rely on this. *)
let call ~(socket : string) (req : Proto.request) : (Proto.response, string) result =
  match with_client ~socket (fun fd -> rpc fd req) with
  | r -> r
  | exception Unix.Unix_error (e, _, _) -> Error ("connect: " ^ Unix.error_message e)

(* Poll until the daemon answers a ping (bounded); used by everything
   that forks a server and must not race its bind. *)
let wait_ready ?(timeout_s = 10.0) ~(socket : string) () : bool =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec loop () =
    match call ~socket Proto.Ping with
    | Ok Proto.Pong -> true
    | _ ->
      if Unix.gettimeofday () >= deadline then false
      else begin
        ignore (Unix.select [] [] [] 0.05);
        loop ()
      end
  in
  loop ()
