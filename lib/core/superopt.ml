(* The tiered superoptimizer: discover a verified peephole rule
   database for the PTX ISA.

   Discovery enumerates short canonical windows ([Ptx.Window]), guesses
   cheaper single-instruction replacements, and pushes each candidate
   pair through the [Ptx.Equiv] funnel: quick fixed vectors, then the
   adversarial bounded sweep, with exhaustive proof on enumerable
   domains.  A rule is admitted only if it survives the funnel *and*
   wins under the target machine's issue latencies — the same
   [Gpu.Arch.latencies] the simulator charges, so "cheaper" here is
   cheaper on the machine being tuned, not in instruction count.

   Determinism: windows are enumerated in a fixed order, per-window work
   is farmed over [Util.Pool.map] (order-preserving, jobs-invariant),
   and every random sweep is seeded from the candidate pair's own text.
   The resulting database is therefore bit-identical for any [--jobs],
   which is what lets CI pin its digest.

   Caching: the database is an ordinary blob in [Store], keyed on the
   arch digest, the evaluator's semantics version and the discovery
   parameters.  Change the machine, the evaluator's meaning, or the
   search bounds and the key changes; nothing can ever serve rules
   verified under different semantics. *)

type funnel = {
  fn_lhs : int;  (* windows enumerated *)
  fn_pairs : int;  (* candidate pairs that beat the cost filter *)
  fn_quick : int;  (* rejected by the quick fixed vectors *)
  fn_bounded : int;  (* rejected by the adversarial bounded sweep *)
  fn_exhaustive : int;  (* rejected by exhaustive enumeration *)
  fn_unsupported : int;  (* outside the funnel's quantification *)
  fn_passed : int;  (* verified equivalent (best-per-window kept) *)
}

let empty_funnel =
  {
    fn_lhs = 0;
    fn_pairs = 0;
    fn_quick = 0;
    fn_bounded = 0;
    fn_exhaustive = 0;
    fn_unsupported = 0;
    fn_passed = 0;
  }

let add_funnel a b =
  {
    fn_lhs = a.fn_lhs + b.fn_lhs;
    fn_pairs = a.fn_pairs + b.fn_pairs;
    fn_quick = a.fn_quick + b.fn_quick;
    fn_bounded = a.fn_bounded + b.fn_bounded;
    fn_exhaustive = a.fn_exhaustive + b.fn_exhaustive;
    fn_unsupported = a.fn_unsupported + b.fn_unsupported;
    fn_passed = a.fn_passed + b.fn_passed;
  }

type result = {
  rules : Ptx.Patterns.rule list;
  funnel : funnel;
  elapsed_s : float;
  cached : bool;  (* answered from the store, funnel counters empty *)
}

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

(* Issue cost of one instruction, in SP cycles per warp: the simulator
   charges [sfu_issue] for transcendental F1 ops and [issue] for
   everything else, and that asymmetry (16 vs 4 on the G80) is exactly
   what makes rsqrt-fusion-style rules profitable. *)
let instr_cycles (arch : Gpu.Arch.t) (i : Ptx.Instr.t) : int =
  let lat = arch.Gpu.Arch.latencies in
  if Ptx.Instr.is_sfu i then lat.Gpu.Arch.sfu_issue else lat.Gpu.Arch.issue

let seq_cycles (arch : Gpu.Arch.t) (seq : Ptx.Instr.t list) : int =
  List.fold_left (fun acc i -> acc + instr_cycles arch i) 0 seq

(* Strict-improvement order: cycles, then static size, then non-mov
   count, then total operand reads.  The later components admit rules
   that win no cycles but strictly simplify (fmad a,1,c -> add; selp
   with equal arms -> mov), which downstream passes then exploit. *)
let cost_key (arch : Gpu.Arch.t) (seq : Ptx.Instr.t list) : int * int * int * int =
  let non_mov =
    List.length (List.filter (function Ptx.Instr.Mov _ -> false | _ -> true) seq)
  in
  let reads = List.fold_left (fun acc i -> acc + List.length (Ptx.Instr.operands i)) 0 seq in
  (seq_cycles arch seq, List.length seq, non_mov, reads)

(* ------------------------------------------------------------------ *)
(* Discovery                                                           *)
(* ------------------------------------------------------------------ *)

(* Verify one window: try every cost-improving rewrite, keep the
   cheapest survivor.  Returns the rule (if any) plus this window's
   funnel counters. *)
let superopt_window ~(arch : Gpu.Arch.t) ~(sweep : int) (lhs : Ptx.Instr.t list) :
    Ptx.Patterns.rule option * funnel =
  let counters = ref { empty_funnel with fn_lhs = 1 } in
  let bump f = counters := f !counters in
  (* A closed window computes constants; feed its folded outputs to the
     rewrite generator so const-fold rules are expressible. *)
  let extra_fimms, extra_iimms =
    if Ptx.Window.inputs lhs <> [] then ([], [])
    else
      match Ptx.Equiv.eval_window [] lhs with
      | outs ->
        ( List.filter_map (function _, Ptx.Equiv.VF x -> Some x | _ -> None) outs,
          List.filter_map (function _, Ptx.Equiv.VI x -> Some x | _ -> None) outs )
      | exception Ptx.Equiv.Stuck _ -> ([], [])
  in
  let lhs_cost = cost_key arch lhs in
  let candidates =
    Ptx.Window.rewrites ~extra_fimms ~extra_iimms lhs
    |> List.filter (fun rhs -> cost_key arch rhs < lhs_cost)
  in
  let survivors =
    List.filter_map
      (fun rhs ->
        bump (fun c -> { c with fn_pairs = c.fn_pairs + 1 });
        match Ptx.Equiv.check ~sweep lhs rhs with
        | Ptx.Equiv.Equivalent tier -> Some (rhs, tier)
        | Ptx.Equiv.Refuted (Ptx.Equiv.Quick, _) ->
          bump (fun c -> { c with fn_quick = c.fn_quick + 1 });
          None
        | Ptx.Equiv.Refuted (Ptx.Equiv.Bounded, _) ->
          bump (fun c -> { c with fn_bounded = c.fn_bounded + 1 });
          None
        | Ptx.Equiv.Refuted (Ptx.Equiv.Exhaustive, _) ->
          bump (fun c -> { c with fn_exhaustive = c.fn_exhaustive + 1 });
          None
        | Ptx.Equiv.Unsupported _ ->
          bump (fun c -> { c with fn_unsupported = c.fn_unsupported + 1 });
          None)
      candidates
  in
  let best =
    List.fold_left
      (fun acc (rhs, tier) ->
        match acc with
        | None -> Some (rhs, tier)
        | Some (rhs0, _) -> if cost_key arch rhs < cost_key arch rhs0 then Some (rhs, tier) else acc)
      None survivors
  in
  match best with
  | None -> (None, !counters)
  | Some (rhs, tier) -> (
    let saved = max 0 (seq_cycles arch lhs - seq_cycles arch rhs) in
    let rule = { Ptx.Patterns.lhs; rhs; tier; saved } in
    (* Admission requires a bitwise serialization round trip: a rule
       whose constants the text format cannot carry exactly (NaN
       payloads, say) must not enter the database, where reloading it
       would mean applying a different rewrite than the one verified. *)
    match Ptx.Patterns.of_line_opt (Ptx.Patterns.to_line rule) with
    | Some rule' when Ptx.Patterns.equal_rule rule rule' ->
      bump (fun c -> { c with fn_passed = c.fn_passed + 1 });
      (Some rule, !counters)
    | _ -> (None, !counters))

let discover ?(jobs = 1) ?(arch = Gpu.Arch.g80) ?(max_len = 2) ?(sweep = 128) () : result =
  let t0 = Unix.gettimeofday () in
  let lhss =
    Ptx.Window.enumerate ~len:1 ()
    @ (if max_len >= 2 then Ptx.Window.enumerate ~vocab:Ptx.Window.pair_vocab ~len:2 () else [])
  in
  let results = Util.Pool.map ~jobs (superopt_window ~arch ~sweep) lhss in
  let rules = List.filter_map fst results in
  let funnel = List.fold_left (fun acc (_, c) -> add_funnel acc c) empty_funnel results in
  { rules; funnel; elapsed_s = Unix.gettimeofday () -. t0; cached = false }

(* ------------------------------------------------------------------ *)
(* Store caching                                                       *)
(* ------------------------------------------------------------------ *)

let blob_name = "ptx-rules"

let db_key ?arch ?(max_len = 2) ?(sweep = 128) () : string =
  Store.hex
    (String.concat "|"
       [
         blob_name;
         Store.arch_digest ?arch ();
         Ptx.Equiv.semantics_version;
         string_of_int max_len;
         string_of_int sweep;
       ])

let discover_cached ?store ?(jobs = 1) ?(arch = Gpu.Arch.g80) ?(max_len = 2) ?(sweep = 128) () :
    result =
  match store with
  | None -> discover ~jobs ~arch ~max_len ~sweep ()
  | Some st -> (
    let key = db_key ~arch ~max_len ~sweep () in
    match Store.get_blob st key with
    | Some content ->
      { rules = Ptx.Patterns.of_string content; funnel = empty_funnel; elapsed_s = 0.0; cached = true }
    | None ->
      let r = discover ~jobs ~arch ~max_len ~sweep () in
      Store.put_blob st ~key ~name:blob_name (Ptx.Patterns.to_string r.rules);
      r)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let funnel_table (f : funnel) : string =
  Report.table
    [ "Stage"; "Count" ]
    [
      [ "windows enumerated"; string_of_int f.fn_lhs ];
      [ "pairs past cost filter"; string_of_int f.fn_pairs ];
      [ "rejected: quick vectors"; string_of_int f.fn_quick ];
      [ "rejected: bounded sweep"; string_of_int f.fn_bounded ];
      [ "rejected: exhaustive"; string_of_int f.fn_exhaustive ];
      [ "unsupported"; string_of_int f.fn_unsupported ];
      [ "rules admitted"; string_of_int f.fn_passed ];
    ]

let tier_counts (rules : Ptx.Patterns.rule list) : int * int * int =
  List.fold_left
    (fun (q, b, e) (r : Ptx.Patterns.rule) ->
      match r.Ptx.Patterns.tier with
      | Ptx.Equiv.Quick -> (q + 1, b, e)
      | Ptx.Equiv.Bounded -> (q, b + 1, e)
      | Ptx.Equiv.Exhaustive -> (q, b, e + 1))
    (0, 0, 0) rules
