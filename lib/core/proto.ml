(* Wire protocol of the tuning service: framing and typed messages.

   A connection carries a sequence of frames, each a 4-byte big-endian
   unsigned length followed by that many bytes of JSON.  The module is
   pure — framing works over strings and positions, messages encode to
   and decode from JSON text — so every protocol property (round-trip,
   rejection of truncated or oversized or garbage input) is unit-testable
   without a socket, and the daemon's network loop reduces to "read
   bytes, call a total function".

   Decoding is total: any input produces either a message or a typed
   error ([frame_error] / [decode_error]), never an exception.  That is
   the daemon's first line of defense — a malicious or confused client
   must not be able to crash or hang the server with bytes alone.

   Floats (simulated seconds, reduction fractions) travel as
   hexadecimal-float strings ("0x1.8p-3"), not JSON numbers: the store
   and the bit-identical-replay guarantees need exact round-trips, and
   decimal number printing is lossy.  [Hexfloat] spells the encoding —
   %h for everything finite plus the infinities, raw IEEE bits for NaN
   payloads ("nan#7ff8000000000001"). *)

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

(* Frames above this are rejected before any allocation: a stray or
   hostile length prefix must not make the server allocate gigabytes. *)
let default_max_frame = 16 * 1024 * 1024

type frame_error =
  | Oversized of { frame_len : int; max_len : int }
  | Truncated of { have : int; want : int }
      (* the stream ended inside a frame: [want] more bytes were due *)

let frame_error_to_string = function
  | Oversized { frame_len; max_len } ->
    Printf.sprintf "oversized frame: %d bytes declared, limit %d" frame_len max_len
  | Truncated { have; want } ->
    Printf.sprintf "truncated frame: %d byte(s) present, %d more expected" have want

let frame (payload : string) : string =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xFF);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xFF);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 b 3 (n land 0xFF);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

(* Declared length of the frame starting at [pos]; needs 4 bytes. *)
let frame_len (buf : string) ~(pos : int) : int =
  (Char.code buf.[pos] lsl 24)
  lor (Char.code buf.[pos + 1] lsl 16)
  lor (Char.code buf.[pos + 2] lsl 8)
  lor Char.code buf.[pos + 3]

(* Examine [buf] from [pos]:
   - [`Frame (payload, next)]: one complete frame; resume at [next];
   - [`Need k]: the buffer ends cleanly but [k] more bytes are needed
     to complete the frame in progress (k = 4 when no header has
     started) — feed more input and retry;
   - [`Error]: the declared length exceeds [max_len]; the stream is
     unrecoverable from here. *)
let peek_frame ?(max_len = default_max_frame) (buf : string) ~(pos : int) :
    [ `Frame of string * int | `Need of int | `Error of frame_error ] =
  let n = String.length buf in
  if pos + 4 > n then `Need (pos + 4 - n)
  else
    let len = frame_len buf ~pos in
    if len > max_len then `Error (Oversized { frame_len = len; max_len })
    else if pos + 4 + len > n then `Need (pos + 4 + len - n)
    else `Frame (String.sub buf (pos + 4) len, pos + 4 + len)

(* [`Need k] describes an incomplete stream; a closed connection turns
   it into the terminal [Truncated] error (or a clean end at k = 4 with
   nothing buffered). *)
let at_eof ~(pending : int) ~(need : int) : frame_error option =
  if pending = 0 && need = 4 then None else Some (Truncated { have = pending; want = need })

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)
(* ------------------------------------------------------------------ *)

type scale = Quick | Bench | Full

let scale_name = function Quick -> "quick" | Bench -> "bench" | Full -> "full"
let scale_of_name = function
  | "quick" -> Some Quick
  | "bench" -> Some Bench
  | "full" -> Some Full
  | _ -> None

type chaos_spec = { ch_seed : int; ch_count : int }

(* [arch] names a registry machine model ([Gpu.Arch.find]); [None]
   means the default G80, and is what pre-registry clients send — the
   field is simply absent from their frames. *)
type request =
  | Ping
  | Stats  (* server counters *)
  | Shutdown
  | Tune of { app : string; scale : scale; arch : string option; deadline_ms : int option }
      (* the paper's methodology: measure only the Pareto subset *)
  | Explore of {
      app : string;
      scale : scale;
      chaos : chaos_spec option;
      arch : string option;
      predict : bool;
          (* also run the model-driven race (PR 9); absent on the wire
             for pre-predictor clients, which decodes as [false] *)
      deadline_ms : int option;
          (* give up after this many milliseconds of server-side work
             and answer [Deadline_exceeded]; absent (pre-hardening
             clients) means no deadline *)
    }
      (* exhaustive vs pruned sweep; [chaos] injects seeded faults *)
  | Lint of { app : string; config : string option }

(* One measurement, with the simulated seconds carried exactly. *)
type measured_row = { m_desc : string; m_time_s : float }

(* One per-candidate fault, in the journal encoding ([Fault.to_journal]).
   Kept as a string at this layer so the protocol stays pure. *)
type fault_row = { f_desc : string; f_fault : string }

(* Summary of one model-driven race ([Prune.outcome]), flattened to
   what a client can print: how much was simulated, what won, and where
   the true optimum sat in the prediction-only ranking.  [p_rank] is
   1-based; 0 means the optimum never entered the ranking (it was
   invalid or the space was empty). *)
type prune_row = {
  p_total : int;  (* valid configurations ranked *)
  p_probes : int;  (* measured to fit the predictor *)
  p_raced : int;  (* raced at the reduced shape *)
  p_simulated : int;  (* fully simulated: probes + survivors *)
  p_winner : measured_row;
  p_rank : int;
  p_recovered : bool;  (* winner matches the exhaustive optimum's time *)
  p_model : string;  (* fitted-model digest, the bit-identity pin *)
}

type tune_reply = {
  t_app : string;
  t_arch : string;  (* registry name the measurements were taken on *)
  t_space_size : int;
  t_chosen : measured_row;
  t_selected : string list;  (* Pareto-selected descs, space order *)
  t_runs : int;  (* simulator measurements this request paid for *)
  t_store_hits : int;  (* measurements answered by the result store *)
}

type explore_reply = {
  x_app : string;
  x_arch : string;  (* registry name the measurements were taken on *)
  x_space_size : int;
  x_invalid : int;
  x_best : measured_row;
  x_selected_best : measured_row;
  x_selected : string list;
  x_exhaustive : measured_row list;  (* every survivor, space order *)
  x_reduction : float;
  x_optimum_selected : bool;
  x_faults : fault_row list;
  x_runs : int;
  x_store_hits : int;
  x_prune : prune_row option;  (* present iff the request asked [predict] *)
}

type server_stats = {
  sv_requests : int;  (* requests handled, this process *)
  sv_errors : int;  (* requests answered with an error *)
  sv_runs : int;  (* simulator measurements performed *)
  sv_store_hits : int;  (* measurements answered by the store *)
  sv_store_misses : int;  (* store-backed measurements that had to run *)
  sv_store_entries : int;  (* entries resident in the store *)
}

type error_code =
  | Unknown_app
  | Bad_request  (* well-formed protocol, unsatisfiable content *)
  | Protocol_error  (* unparseable frame or message *)
  | Server_error  (* the handler itself failed *)
  | Deadline_exceeded  (* the request's deadline_ms expired mid-work *)

let error_code_name = function
  | Unknown_app -> "unknown-app"
  | Bad_request -> "bad-request"
  | Protocol_error -> "protocol-error"
  | Server_error -> "server-error"
  | Deadline_exceeded -> "deadline-exceeded"

let error_code_of_name = function
  | "unknown-app" -> Some Unknown_app
  | "bad-request" -> Some Bad_request
  | "protocol-error" -> Some Protocol_error
  | "server-error" -> Some Server_error
  | "deadline-exceeded" -> Some Deadline_exceeded
  | _ -> None

type response =
  | Pong
  | Bye  (* shutdown acknowledged *)
  | Stats_r of server_stats
  | Tune_r of tune_reply
  | Explore_r of explore_reply
  | Lint_r of { l_report : string; l_errors : bool }
  | Error_r of { e_code : error_code; e_msg : string }
  | Overloaded_r of { o_retry_after_ms : int }
      (* the accept queue shed this connection; retry after the hinted
         backoff — safe, because content-addressed store keys make
         every request idempotent *)

type decode_error =
  | Bad_json of string  (* not JSON at all *)
  | Bad_message of string  (* JSON of the wrong shape *)

let decode_error_to_string = function
  | Bad_json msg -> "bad JSON: " ^ msg
  | Bad_message msg -> "bad message: " ^ msg

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let jfloat (f : float) : Util.Json.t = Str (Hexfloat.to_string f)
let jrow (r : measured_row) : Util.Json.t =
  Obj [ ("desc", Str r.m_desc); ("time", jfloat r.m_time_s) ]
let jfault (r : fault_row) : Util.Json.t =
  Obj [ ("desc", Str r.f_desc); ("fault", Str r.f_fault) ]
let jprune (p : prune_row) : Util.Json.t =
  Obj
    [
      ("total", Int p.p_total);
      ("probes", Int p.p_probes);
      ("raced", Int p.p_raced);
      ("simulated", Int p.p_simulated);
      ("winner", jrow p.p_winner);
      ("rank", Int p.p_rank);
      ("recovered", Bool p.p_recovered);
      ("model", Str p.p_model);
    ]

let encode_request (r : request) : string =
  let open Util.Json in
  let v =
    match r with
    | Ping -> Obj [ ("type", Str "ping") ]
    | Stats -> Obj [ ("type", Str "stats") ]
    | Shutdown -> Obj [ ("type", Str "shutdown") ]
    | Tune { app; scale; arch; deadline_ms } ->
      Obj
        ([ ("type", Str "tune"); ("app", Str app); ("scale", Str (scale_name scale)) ]
        @ (match arch with None -> [] | Some a -> [ ("arch", Str a) ])
        @ match deadline_ms with None -> [] | Some ms -> [ ("deadline_ms", Int ms) ])
    | Explore { app; scale; chaos; arch; predict; deadline_ms } ->
      Obj
        ([ ("type", Str "explore"); ("app", Str app); ("scale", Str (scale_name scale)) ]
        @ (match arch with None -> [] | Some a -> [ ("arch", Str a) ])
        @ (if predict then [ ("predict", Bool true) ] else [])
        @ (match deadline_ms with None -> [] | Some ms -> [ ("deadline_ms", Int ms) ])
        @
        match chaos with
        | None -> []
        | Some { ch_seed; ch_count } ->
          [ ("chaos", Obj [ ("seed", Int ch_seed); ("count", Int ch_count) ]) ])
    | Lint { app; config } ->
      Obj
        ([ ("type", Str "lint"); ("app", Str app) ]
        @ match config with None -> [] | Some c -> [ ("config", Str c) ])
  in
  to_string v

let encode_response (r : response) : string =
  let open Util.Json in
  let v =
    match r with
    | Pong -> Obj [ ("type", Str "pong") ]
    | Bye -> Obj [ ("type", Str "bye") ]
    | Stats_r s ->
      Obj
        [
          ("type", Str "stats");
          ("requests", Int s.sv_requests);
          ("errors", Int s.sv_errors);
          ("runs", Int s.sv_runs);
          ("store_hits", Int s.sv_store_hits);
          ("store_misses", Int s.sv_store_misses);
          ("store_entries", Int s.sv_store_entries);
        ]
    | Tune_r t ->
      Obj
        [
          ("type", Str "tune");
          ("app", Str t.t_app);
          ("arch", Str t.t_arch);
          ("space_size", Int t.t_space_size);
          ("chosen", jrow t.t_chosen);
          ("selected", List (List.map (fun d -> Str d) t.t_selected));
          ("runs", Int t.t_runs);
          ("store_hits", Int t.t_store_hits);
        ]
    | Explore_r x ->
      Obj
        ([
          ("type", Str "explore");
          ("app", Str x.x_app);
          ("arch", Str x.x_arch);
          ("space_size", Int x.x_space_size);
          ("invalid", Int x.x_invalid);
          ("best", jrow x.x_best);
          ("selected_best", jrow x.x_selected_best);
          ("selected", List (List.map (fun d -> Str d) x.x_selected));
          ("exhaustive", List (List.map jrow x.x_exhaustive));
          ("reduction", jfloat x.x_reduction);
          ("optimum_selected", Bool x.x_optimum_selected);
          ("faults", List (List.map jfault x.x_faults));
          ("runs", Int x.x_runs);
          ("store_hits", Int x.x_store_hits);
        ]
        @ match x.x_prune with None -> [] | Some p -> [ ("prune", jprune p) ])
    | Lint_r { l_report; l_errors } ->
      Obj [ ("type", Str "lint"); ("report", Str l_report); ("errors", Bool l_errors) ]
    | Error_r { e_code; e_msg } ->
      Obj [ ("type", Str "error"); ("code", Str (error_code_name e_code)); ("msg", Str e_msg) ]
    | Overloaded_r { o_retry_after_ms } ->
      Obj [ ("type", Str "overloaded"); ("retry_after_ms", Int o_retry_after_ms) ]
  in
  to_string v

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

exception Shape of string

let shape fmt = Printf.ksprintf (fun msg -> raise (Shape msg)) fmt

let str_field (v : Util.Json.t) (k : string) : string =
  match Util.Json.member k v with
  | Some (Str s) -> s
  | Some _ -> shape "field %S is not a string" k
  | None -> shape "missing field %S" k

let int_field (v : Util.Json.t) (k : string) : int =
  match Util.Json.member k v with
  | Some (Int i) -> i
  | Some _ -> shape "field %S is not an integer" k
  | None -> shape "missing field %S" k

let bool_field (v : Util.Json.t) (k : string) : bool =
  match Util.Json.member k v with
  | Some (Bool b) -> b
  | Some _ -> shape "field %S is not a boolean" k
  | None -> shape "missing field %S" k

let float_field (v : Util.Json.t) (k : string) : float =
  match Util.Json.member k v with
  | Some (Str s) -> (
    match Hexfloat.of_string_opt s with
    | Some f -> f
    | None -> shape "field %S is not a hexadecimal float" k)
  | Some _ -> shape "field %S is not a float-carrying string" k
  | None -> shape "missing field %S" k

let list_field (v : Util.Json.t) (k : string) : Util.Json.t list =
  match Util.Json.member k v with
  | Some (List l) -> l
  | Some _ -> shape "field %S is not an array" k
  | None -> shape "missing field %S" k

let scale_field (v : Util.Json.t) : scale =
  let s = str_field v "scale" in
  match scale_of_name s with Some sc -> sc | None -> shape "unknown scale %S" s

let row_of (v : Util.Json.t) : measured_row =
  { m_desc = str_field v "desc"; m_time_s = float_field v "time" }

let fault_of (v : Util.Json.t) : fault_row =
  { f_desc = str_field v "desc"; f_fault = str_field v "fault" }

let str_item = function
  | Util.Json.Str s -> s
  | _ -> shape "array item is not a string"

(* Optional string field — absent means [None], non-string is a shape
   error (used for the arch name and the lint config). *)
let opt_str_field (v : Util.Json.t) (k : string) : string option =
  match Util.Json.member k v with
  | None -> None
  | Some (Str s) -> Some s
  | Some _ -> shape "field %S is not a string" k

(* Reply-side arch name: replies from pre-registry servers carry no
   arch field and are, by construction, G80 measurements. *)
let arch_field (v : Util.Json.t) : string =
  match opt_str_field v "arch" with Some a -> a | None -> "g80"

(* Optional boolean flag — absent means [false] (used for [predict],
   which pre-predictor clients never send). *)
let flag_field (v : Util.Json.t) (k : string) : bool =
  match Util.Json.member k v with
  | None -> false
  | Some (Bool b) -> b
  | Some _ -> shape "field %S is not a boolean" k

(* Optional integer field — absent means [None] (used for
   [deadline_ms], which pre-hardening clients never send). *)
let opt_int_field (v : Util.Json.t) (k : string) : int option =
  match Util.Json.member k v with
  | None -> None
  | Some (Int i) -> Some i
  | Some _ -> shape "field %S is not an integer" k

let prune_of (v : Util.Json.t) : prune_row =
  let winner =
    match Util.Json.member "winner" v with
    | Some w -> row_of w
    | None -> shape "missing field \"winner\""
  in
  {
    p_total = int_field v "total";
    p_probes = int_field v "probes";
    p_raced = int_field v "raced";
    p_simulated = int_field v "simulated";
    p_winner = winner;
    p_rank = int_field v "rank";
    p_recovered = bool_field v "recovered";
    p_model = str_field v "model";
  }

let decode (what : string) (of_json : Util.Json.t -> 'a) (text : string) :
    ('a, decode_error) result =
  match Util.Json.of_string text with
  | Error msg -> Error (Bad_json msg)
  | Ok v -> (
    match of_json v with
    | m -> Ok m
    | exception Shape msg -> Error (Bad_message (what ^ ": " ^ msg)))

let request_of_json (v : Util.Json.t) : request =
  match str_field v "type" with
  | "ping" -> Ping
  | "stats" -> Stats
  | "shutdown" -> Shutdown
  | "tune" ->
    Tune
      {
        app = str_field v "app";
        scale = scale_field v;
        arch = opt_str_field v "arch";
        deadline_ms = opt_int_field v "deadline_ms";
      }
  | "explore" ->
    let chaos =
      match Util.Json.member "chaos" v with
      | None -> None
      | Some c -> Some { ch_seed = int_field c "seed"; ch_count = int_field c "count" }
    in
    Explore
      {
        app = str_field v "app";
        scale = scale_field v;
        chaos;
        arch = opt_str_field v "arch";
        predict = flag_field v "predict";
        deadline_ms = opt_int_field v "deadline_ms";
      }
  | "lint" -> Lint { app = str_field v "app"; config = opt_str_field v "config" }
  | t -> shape "unknown request type %S" t

let response_of_json (v : Util.Json.t) : response =
  match str_field v "type" with
  | "pong" -> Pong
  | "bye" -> Bye
  | "stats" ->
    Stats_r
      {
        sv_requests = int_field v "requests";
        sv_errors = int_field v "errors";
        sv_runs = int_field v "runs";
        sv_store_hits = int_field v "store_hits";
        sv_store_misses = int_field v "store_misses";
        sv_store_entries = int_field v "store_entries";
      }
  | "tune" ->
    let chosen =
      match Util.Json.member "chosen" v with
      | Some c -> row_of c
      | None -> shape "missing field \"chosen\""
    in
    Tune_r
      {
        t_app = str_field v "app";
        t_arch = arch_field v;
        t_space_size = int_field v "space_size";
        t_chosen = chosen;
        t_selected = List.map str_item (list_field v "selected");
        t_runs = int_field v "runs";
        t_store_hits = int_field v "store_hits";
      }
  | "explore" ->
    let sub k =
      match Util.Json.member k v with Some c -> row_of c | None -> shape "missing field %S" k
    in
    Explore_r
      {
        x_app = str_field v "app";
        x_arch = arch_field v;
        x_space_size = int_field v "space_size";
        x_invalid = int_field v "invalid";
        x_best = sub "best";
        x_selected_best = sub "selected_best";
        x_selected = List.map str_item (list_field v "selected");
        x_exhaustive = List.map row_of (list_field v "exhaustive");
        x_reduction = float_field v "reduction";
        x_optimum_selected = bool_field v "optimum_selected";
        x_faults = List.map fault_of (list_field v "faults");
        x_runs = int_field v "runs";
        x_store_hits = int_field v "store_hits";
        x_prune =
          (match Util.Json.member "prune" v with None -> None | Some p -> Some (prune_of p));
      }
  | "lint" -> Lint_r { l_report = str_field v "report"; l_errors = bool_field v "errors" }
  | "error" ->
    let code_s = str_field v "code" in
    let e_code =
      match error_code_of_name code_s with
      | Some c -> c
      | None -> shape "unknown error code %S" code_s
    in
    Error_r { e_code; e_msg = str_field v "msg" }
  | "overloaded" -> Overloaded_r { o_retry_after_ms = int_field v "retry_after_ms" }
  | t -> shape "unknown response type %S" t

let decode_request : string -> (request, decode_error) result = decode "request" request_of_json
let decode_response : string -> (response, decode_error) result =
  decode "response" response_of_json
