(* The paper's static performance metrics (section 4).

   Efficiency (Eq. 1):   1 / (Instr * Threads)
   Utilization (Eq. 2):  (Instr / Regions) * [ (W_TB - 1)/2 + (B_SM - 1) * W_TB ]

   Worked example from the paper (complete-unroll 4k x 4k matmul):
   Instr = 15150, Regions = 769, Threads = 2^24, W_TB = 8, B_SM = 2
   =>  Efficiency = 3.93e-12, Utilization ~ 227.
   That exact computation is a unit test.

   The metrics assume global-memory bandwidth is not the limiting
   factor; [bandwidth_bound] is the paper's quick screen for when that
   assumption fails and the Pareto front should be read with care. *)

type t = { efficiency : float; utilization : float }

let compute ~instr ~regions ~threads ~warps_per_block ~blocks_per_sm : t =
  let w_tb = float_of_int warps_per_block in
  let b_sm = float_of_int blocks_per_sm in
  let efficiency = if instr <= 0.0 || threads <= 0.0 then 0.0 else 1.0 /. (instr *. threads) in
  let independent_warps = ((w_tb -. 1.0) /. 2.0) +. ((b_sm -. 1.0) *. w_tb) in
  let utilization = if regions <= 0.0 then 0.0 else instr /. regions *. independent_warps in
  { efficiency; utilization }

let of_candidate (c : Candidate.t) : t =
  compute ~instr:c.profile.instr ~regions:c.profile.regions
    ~threads:(float_of_int c.threads_total) ~warps_per_block:c.occupancy.warps_per_block
    ~blocks_per_sm:c.occupancy.blocks_per_sm

(* Bandwidth screen (section 4): estimated bytes per cycle demanded of
   off-chip memory when compute resources run at full tilt.  With all
   SMs issuing one warp-instruction per [issue] cycles, a kernel whose
   dynamic instruction stream transfers [global_bytes] bytes over
   [instr] instructions demands
       bytes/cycle/SM = global_bytes/thread / (instr/thread) * warp / issue
   against the arch's sustainable bytes/cycle/SM (4 on the G80 at
   32 threads per 4-cycle issue).  Both sides come from the
   candidate's own arch, so the screen is meaningful on every registry
   machine, not just the G80. *)
let demanded_bytes_per_cycle_per_sm (c : Candidate.t) : float =
  if c.profile.instr <= 0.0 then 0.0
  else
    c.profile.global_bytes /. c.profile.instr
    *. float_of_int c.arch.Gpu.Arch.limits.warp_size
    /. float_of_int c.arch.Gpu.Arch.latencies.issue

let bandwidth_bound ?budget (c : Candidate.t) : bool =
  let budget =
    match budget with Some b -> b | None -> Gpu.Arch.bytes_per_cycle_per_sm c.arch
  in
  demanded_bytes_per_cycle_per_sm c > budget

(* Normalize a list of metric points so each axis has maximum 1 (the
   paper's Figure 6 presentation). *)
let normalize (ms : t list) : t list =
  let max_e = List.fold_left (fun a m -> Float.max a m.efficiency) 0.0 ms in
  let max_u = List.fold_left (fun a m -> Float.max a m.utilization) 0.0 ms in
  let d v m = if m <= 0.0 then 0.0 else v /. m in
  List.map (fun m -> { efficiency = d m.efficiency max_e; utilization = d m.utilization max_u }) ms
