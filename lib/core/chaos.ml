(* Chaos-injection harness for the fault-tolerant tuner.

   The fault tolerance layer ([Fault], [Measure], [Search]) claims that
   a sweep survives misbehaving candidates: crashes are isolated,
   runaway kernels are cut off by the simulator watchdog, corrupt
   passes surface as verifier rejections, and the search still finds
   the optimum among the survivors.  This module *manufactures* those
   misbehaviors deterministically so the claim is testable: given a
   seed and a count, it picks victims from a candidate list and
   replaces their measurement thunks with realistic failures, leaving
   descs, parameters and static metrics untouched (so the Pareto
   geometry of the space is exactly the fault-free one).

   Three failure modes, cycled over the victims:

   - [Throw]:        the thunk raises [Injected] — a stand-in for any
                     bug escaping a measurement worker;
   - [Runaway]:      the thunk really runs the simulator on a kernel
                     whose loop bound was stretched to a billion
                     iterations ([Kir.Mutate.runaway_loop]); only the
                     watchdog budget ends it;
   - [Corrupt_pass]: the thunk compiles through a pass that appends an
                     assignment to an undeclared variable, which the
                     pipeline's per-stage typecheck rejects.

   `gpuopt chaos` drives this over a real application space and checks
   that every injected fault is reported, that the surviving search
   still selects the true optimum, and that checkpoint/resume across a
   simulated kill reproduces the uninterrupted result. *)

type kind = Throw | Runaway | Corrupt_pass

let kind_name = function
  | Throw -> "throw"
  | Runaway -> "runaway"
  | Corrupt_pass -> "corrupt-pass"

(* What [Throw] victims raise: deliberately not an exception the
   classifier knows, so it exercises the [Worker_crash] catch-all. *)
exception Injected of { desc : string }

let () =
  Printexc.register_printer (function
    | Injected { desc } -> Some (Printf.sprintf "Tuner.Chaos.Injected(%s)" desc)
    | _ -> None)

type injection = {
  inj_index : int;  (* position in the candidate list *)
  inj_desc : string;  (* the victim's config key *)
  inj_kind : kind;
}

(* ------------------------------------------------------------------ *)
(* The injected failure thunks                                         *)
(* ------------------------------------------------------------------ *)

(* A minimal self-contained kernel: accumulate in a register, store one
   word.  The loop variable is *not* used for addressing, so stretching
   the loop bound cannot cause out-of-bounds device accesses — the only
   way the stretched version ends is the watchdog. *)
let tiny_kernel : Kir.Ast.kernel =
  let open Kir.Ast in
  {
    kname = "chaos_tiny";
    scalar_params = [];
    array_params = [ { aname = "out"; aspace = Global } ];
    shared_decls = [];
    local_decls = [];
    body =
      [
        Mut ("acc", F32, f 0.0);
        for_ "it" (i 0) (i 4) [ Assign ("acc", v "acc" +: f 1.0) ];
        Store ("out", i 0, v "acc");
      ];
  }

(* Genuinely run the simulator on a livelocked kernel under a small
   explicit budget: a real watchdog abort, end to end, without paying
   for the (generous) default budget.  Compiled per call — the kernel
   is a handful of statements, and per-call compilation keeps the thunk
   safe to run on any worker domain. *)
let runaway_time () : float =
  let stretched = Kir.Mutate.runaway_loop ~iters:1_000_000_000 tiny_kernel in
  let c = Pipeline.lower_opt stretched in
  let dev = Gpu.Device.create ~global_words:4 () in
  let out = Gpu.Device.alloc dev 1 in
  let launch =
    { Gpu.Sim.kernel = c.ptx; grid = (1, 1); block = (32, 1); args = [ ("out", Gpu.Sim.Buf out) ] }
  in
  (Gpu.Sim.run ~mode:(Gpu.Sim.Timing { max_blocks = 1 }) ~budget:100_000 dev launch).time_s

(* Compile through a pass that corrupts its kernel: the appended
   assignment targets a variable no scope declares, so the pipeline's
   post-pass typecheck rejects the stage ([Pipeline.Pass_failed], which
   classifies as [Verify_rejected]). *)
let corrupt_pass_time () : float =
  let corrupt (k : Kir.Ast.kernel) =
    { k with Kir.Ast.body = k.Kir.Ast.body @ [ Kir.Ast.Assign ("chaos_undefined", Kir.Ast.Flt 0.0) ] }
  in
  let sched =
    {
      Pipeline.kir_passes = [ Pipeline.kir_pass "chaos-corrupt" corrupt ];
      ptx_passes = Pipeline.default_ptx_passes;
    }
  in
  let (_ : Pipeline.compiled) = Pipeline.compile sched tiny_kernel in
  0.0

let faulty_run (k : kind) ~(desc : string) : unit -> float =
  match k with
  | Throw -> fun () -> raise (Injected { desc })
  | Runaway -> runaway_time
  | Corrupt_pass -> corrupt_pass_time

(* The fault each kind settles to, for checking reports: the tag a
   classified injection of this kind must carry. *)
let expected_tag = function
  | Throw -> "crash"
  | Runaway -> "watchdog"
  | Corrupt_pass -> "verify"

(* ------------------------------------------------------------------ *)
(* Injection                                                           *)
(* ------------------------------------------------------------------ *)

(* Replace the measurement thunks of [count] distinct valid candidates
   (chosen by a seeded shuffle, so a given seed always picks the same
   victims) with failures, cycling through the three kinds.  Only the
   [run] thunk changes: desc, params, kernel and static profile are the
   victim's own, so metrics and the Pareto frontier are unaffected.
   Returns the modified list (input order) and the injections in list
   order.

   [?avoid] excludes descs from the victim pool.  Faults that miss the
   Pareto-selected subset provably leave the pruned search's selection
   unchanged (dominance only loses witnesses, and the frontier's
   extreme points fix the quantization grid), so `gpuopt chaos` passes
   the fault-free run's selected descs here to make its strict
   selection checks assertable; the QCheck properties inject anywhere
   and condition on the hit. *)
let inject ~(seed : int) ~(count : int) ?(avoid : string list = []) (cands : Candidate.t list) :
    Candidate.t list * injection list =
  if count < 0 then invalid_arg "Chaos.inject: count must be >= 0";
  let valid_idx =
    List.mapi
      (fun i (c : Candidate.t) -> (i, c.valid && not (List.mem c.desc avoid)))
      cands
    |> List.filter_map (fun (i, ok) -> if ok then Some i else None)
  in
  if count > List.length valid_idx then
    invalid_arg
      (Printf.sprintf "Chaos.inject: %d fault(s) requested but only %d eligible candidate(s)"
         count (List.length valid_idx));
  let a = Array.of_list valid_idx in
  let rng = Util.Rng.create seed in
  for i = Array.length a - 1 downto 1 do
    let j = Util.Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  let victims = List.sort compare (Array.to_list (Array.sub a 0 count)) in
  let kinds = [| Throw; Runaway; Corrupt_pass |] in
  let injections =
    List.mapi
      (fun rank idx ->
        let c = List.nth cands idx in
        { inj_index = idx; inj_desc = c.Candidate.desc; inj_kind = kinds.(rank mod 3) })
      victims
  in
  let by_index = List.map (fun inj -> (inj.inj_index, inj)) injections in
  let cands' =
    List.mapi
      (fun i (c : Candidate.t) ->
        match List.assoc_opt i by_index with
        | None -> c
        | Some inj -> { c with run = faulty_run inj.inj_kind ~desc:c.desc })
      cands
  in
  (cands', injections)

(* ------------------------------------------------------------------ *)
(* Wire-level chaos: misbehaving clients for the tuning daemon         *)
(* ------------------------------------------------------------------ *)

(* Where [inject] manufactures faulty *candidates*, [Net] manufactures
   faulty *clients*: seeded strikes against a live daemon socket that
   exercise every way a peer can misbehave on the wire.  Each strike is
   a complete connect-misbehave-disconnect episode; the daemon's
   contract is that none of them crash it, hang a connection worker
   past its I/O timeout, or corrupt the reply stream of well-behaved
   clients running concurrently.  The `chaos_net` bench drives these
   between honest requests and asserts availability.

   The module speaks raw [Unix] sockets on purpose — routing strikes
   through [Serve]'s client helpers would let the client library's own
   robustness (retries, EINTR handling) soften the blow. *)
module Net = struct
  type fault =
    | Torn_frame  (* send a strict prefix of a frame, then close *)
    | Byte_flip  (* flip one payload byte, then await the verdict *)
    | Slow_loris  (* drip bytes slower than the server's I/O timeout *)
    | Disconnect_mid_reply  (* valid request, vanish before the reply *)

  let fault_name = function
    | Torn_frame -> "torn-frame"
    | Byte_flip -> "byte-flip"
    | Slow_loris -> "slow-loris"
    | Disconnect_mid_reply -> "disconnect-mid-reply"

  let all_faults = [ Torn_frame; Byte_flip; Slow_loris; Disconnect_mid_reply ]

  (* Seeded strike schedule: same seed, same faults in the same order. *)
  let plan ~(seed : int) ~(count : int) : fault list =
    if count < 0 then invalid_arg "Chaos.Net.plan: count must be >= 0";
    let rng = Util.Rng.create seed in
    List.init count (fun _ -> List.nth all_faults (Util.Rng.int rng (List.length all_faults)))

  let connect ~(socket : string) : Unix.file_descr =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX socket)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd

  let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

  let rec write_all fd (s : string) pos len =
    if len > 0 then begin
      match Unix.write_substring fd s pos len with
      | n -> write_all fd s (pos + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s pos len
    end

  (* Wait up to [timeout_s] for the server's reaction to a strike:
     a complete reply frame, a close, or silence. *)
  let await_reaction ?(timeout_s = 10.0) fd : [ `Reply of string | `Closed | `Silent ] =
    let chunk = Bytes.create 65536 in
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec loop buf =
      match Proto.peek_frame buf ~pos:0 with
      | `Frame (payload, _) -> `Reply payload
      | `Error _ -> `Closed  (* a garbled reply counts as a dead stream *)
      | `Need _ ->
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then `Silent
        else (
          match Unix.select [ fd ] [] [] remaining with
          | [], _, _ -> `Silent
          | _ -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> `Closed
            | n -> loop (buf ^ Bytes.sub_string chunk 0 n)
            | exception Unix.Unix_error _ -> `Closed)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop buf)
    in
    loop ""

  (* Execute one strike against [socket], carrying [payload] (an
     encoded request) as ammunition.  Returns a short note describing
     what the server was observed to do — the bench logs it and then
     independently verifies the daemon still answers pings.  Never
     raises on wire errors: the server dropping us mid-strike is a
     legitimate (often the desired) reaction. *)
  let strike ?(loris_interval_s = 0.3) ?(loris_max_bytes = 8) ~(rng : Util.Rng.t)
      ~(socket : string) ~(payload : string) (f : fault) : string =
    let frame = Proto.frame payload in
    let flen = String.length frame in
    match f with
    | Torn_frame ->
      (* The server is left holding a partial frame; its only correct
         move is to wait, time out, and drop the connection. *)
      let n = 1 + Util.Rng.int rng (flen - 1) in
      let fd = connect ~socket in
      (try write_all fd frame 0 n with Unix.Unix_error _ -> ());
      close_quietly fd;
      Printf.sprintf "tore frame after %d/%d bytes" n flen
    | Byte_flip ->
      (* Corrupt one byte of the JSON payload (the length prefix stays
         honest, so the server reads a complete frame and must answer
         with a typed protocol/validation error, not die parsing). *)
      let b = Bytes.of_string frame in
      let pos = 4 + Util.Rng.int rng (flen - 4) in
      let bit = Util.Rng.int rng 8 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      let fd = connect ~socket in
      let reaction =
        try
          write_all fd (Bytes.to_string b) 0 flen;
          await_reaction fd
        with Unix.Unix_error _ -> `Closed
      in
      close_quietly fd;
      Printf.sprintf "flipped bit %d of byte %d: %s" bit pos
        (match reaction with
        | `Reply _ -> "typed error reply"
        | `Closed -> "connection dropped"
        | `Silent -> "no reaction")
    | Slow_loris ->
      (* Drip bytes slower than the server's I/O timeout.  A hardened
         server cuts us off (write fails or read sees EOF) instead of
         pinning a worker for the full frame. *)
      let fd = connect ~socket in
      let sent = ref 0 in
      (try
         while !sent < min loris_max_bytes flen do
           write_all fd frame !sent 1;
           incr sent;
           Unix.sleepf loris_interval_s
         done
       with Unix.Unix_error _ -> ());
      let reaction = await_reaction ~timeout_s:2.0 fd in
      close_quietly fd;
      Printf.sprintf "dripped %d bytes at %.1fs intervals: %s" !sent loris_interval_s
        (match reaction with
        | `Reply _ -> "unexpected reply"
        | `Closed -> "server cut the connection"
        | `Silent -> "still waiting at probe end")
    | Disconnect_mid_reply ->
      (* A complete, valid request — then vanish.  The server's reply
         write hits a dead peer (EPIPE); with SIGPIPE ignored this
         must be a non-event. *)
      let fd = connect ~socket in
      (try write_all fd frame 0 flen with Unix.Unix_error _ -> ());
      close_quietly fd;
      "sent full request, closed before reading reply"
end
