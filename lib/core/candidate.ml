(* An optimization configuration, compiled and characterized.

   This is the unit the paper's methodology manipulates: one point of
   the optimization space, together with everything the static pipeline
   can know about it — the compiled PTX, its `-cubin`-style resource
   usage, its statically estimated execution profile, and its occupancy.
   Measuring its actual (simulated) runtime is deliberately a thunk:
   the whole point of the paper is to avoid calling it for most
   configurations. *)

type t = {
  desc : string;  (* short human-readable description, e.g. "16x16/1x4/u4/pf" *)
  params : (string * string) list;  (* axis name -> value, for reports *)
  kernel : Ptx.Prog.t;  (* optimized PTX *)
  arch : Gpu.Arch.t;  (* machine model this candidate targets *)
  threads_per_block : int;
  threads_total : int;  (* the metric's Threads term *)
  profile : Ptx.Count.profile;
  resource : Ptx.Resource.t;
  occupancy : Gpu.Arch.occupancy;  (* on [arch] *)
  valid : bool;  (* compiles and at least one block fits an SM *)
  invalid_reason : string option;
  run : unit -> float;  (* simulated execution time, seconds (expensive) *)
}

(* Characterize a compiled kernel; [run] must produce the simulated
   wall-clock the paper would obtain from a real execution — on the
   same [arch] the occupancy and validity are judged against.  When
   the pipeline already characterized the kernel, pass [?resource] and
   [?profile] to avoid recomputing them. *)
let make ?(arch = Gpu.Arch.g80) ~desc ~params ~kernel ?resource ?profile ~threads_per_block
    ~threads_total ~run () : t =
  let resource =
    match resource with Some r -> r | None -> Ptx.Resource.of_kernel kernel
  in
  let profile = match profile with Some p -> p | None -> Ptx.Count.profile_of kernel in
  let occupancy =
    Gpu.Arch.occupancy ~arch ~threads_per_block ~regs_per_thread:resource.regs_per_thread
      ~smem_per_block:resource.smem_bytes_per_block ()
  in
  let valid, invalid_reason =
    if threads_per_block > arch.limits.max_threads_per_block then
      (false, Some (Printf.sprintf "block exceeds %d threads" arch.limits.max_threads_per_block))
    else if resource.smem_bytes_per_block > arch.limits.smem_per_sm then
      (false, Some (Printf.sprintf "shared memory exceeds %dKB" (arch.limits.smem_per_sm / 1024)))
    else if not (Gpu.Arch.is_valid occupancy) then
      (false, Some (Printf.sprintf "invalid executable: 0 blocks fit (%s)" occupancy.limiter))
    else (true, None)
  in
  {
    desc;
    params;
    kernel;
    arch;
    threads_per_block;
    threads_total;
    profile;
    resource;
    occupancy;
    valid;
    invalid_reason;
    run;
  }

let pp fmt (c : t) =
  Format.fprintf fmt "%s [regs=%d smem=%dB B_SM=%d instr=%.0f regions=%.0f]%s" c.desc
    c.resource.regs_per_thread c.resource.smem_bytes_per_block c.occupancy.blocks_per_sm
    c.profile.instr c.profile.regions
    (if c.valid then "" else " INVALID")
