(* The tuner's error taxonomy.

   The paper's methodology is only meaningful over the *whole* space:
   Table 4's pruning fractions and the "optimum stays selected" claim
   are computed across every valid configuration, so a single candidate
   that throws — a pass bug, a verifier rejection, a kernel the
   simulator traps on, generated code that never terminates — must be
   a recorded outcome, not a sweep-killing exception.  Real autotuners
   (ATLAS-style search, OpenTuner) treat per-candidate failure and
   timeout as normal results; this module gives those outcomes a
   structured type and a single exception-to-fault classification that
   the measurement engine, the search driver and the reports share.

   A fault always carries enough context to act on from a parallel
   sweep log: the compilation stage or pass that failed, the reason,
   and (for crashes) the raised exception with its backtrace. *)

(* Raised by [Pipeline] when a pass corrupts its kernel (the stage's
   verifier rejected the output) or a verifier itself finds the input
   ill-formed.  Defined here, below [Pipeline], so the classifier can
   match on it without a dependency cycle through the report layer;
   [Pipeline.Pass_failed] re-exports it under the historical name. *)
exception Pass_failed of { stage : string; reason : string }

type t =
  | Compile_error of { stage : string; reason : string }
      (* a pass or the lowering raised while building the kernel *)
  | Verify_rejected of { stage : string; reason : string }
      (* the pipeline's per-stage verification rejected a pass output *)
  | Launch_error of { reason : string }
      (* the simulator refused the launch (geometry, resources) *)
  | Sim_trap of { reason : string }
      (* the simulated kernel trapped: deadlock, out-of-bounds access *)
  | Watchdog_exceeded of { issued : int; budget : int }
      (* the launch blew its warp-instruction budget: runaway kernel *)
  | Worker_crash of { exn_name : string; backtrace : string }
      (* anything else that escaped a measurement thunk *)

(* Raised instead of recording the fault when the caller asked for
   fail-fast behavior (the pre-fault-tolerance abort semantics). *)
exception Fail of { desc : string; fault : t }

(* Short tag for table rows and log grepping. *)
let tag = function
  | Compile_error _ -> "compile"
  | Verify_rejected _ -> "verify"
  | Launch_error _ -> "launch"
  | Sim_trap _ -> "trap"
  | Watchdog_exceeded _ -> "watchdog"
  | Worker_crash _ -> "crash"

let to_string = function
  | Compile_error { stage; reason } -> Printf.sprintf "compile error in %s: %s" stage reason
  | Verify_rejected { stage; reason } ->
    Printf.sprintf "verifier rejected output of %s: %s" stage reason
  | Launch_error { reason } -> Printf.sprintf "launch error: %s" reason
  | Sim_trap { reason } -> Printf.sprintf "simulator trap: %s" reason
  | Watchdog_exceeded { issued; budget } ->
    Printf.sprintf "watchdog: %d warp instructions issued, budget %d" issued budget
  | Worker_crash { exn_name; backtrace } ->
    if backtrace = "" then Printf.sprintf "worker crash: %s" exn_name
    else Printf.sprintf "worker crash: %s\n%s" exn_name backtrace

let () =
  Printexc.register_printer (function
    | Pass_failed { stage; reason } ->
      Some (Printf.sprintf "Tuner.Pipeline.Pass_failed(%s: %s)" stage reason)
    | Fail { desc; fault } ->
      Some (Printf.sprintf "Tuner.Fault.Fail(%s: %s)" desc (to_string fault))
    | _ -> None)

(* Map an exception that escaped a compile or measurement thunk to its
   fault.  [backtrace] is kept only for the [Worker_crash] catch-all:
   the structured cases already name their origin. *)
let classify ~(backtrace : string) (e : exn) : t =
  match e with
  | Pass_failed { stage; reason } -> Verify_rejected { stage; reason }
  | Kir.Typecheck.Type_error msg -> Compile_error { stage = "typecheck"; reason = msg }
  | Kir.Lower.Lower_error msg -> Compile_error { stage = "lower"; reason = msg }
  | Kir.Mutate.Mutate_error msg -> Compile_error { stage = "mutate"; reason = msg }
  | Kir.Unroll.No_such_loop msg -> Compile_error { stage = "unroll"; reason = msg }
  | Gpu.Sim.Launch_error msg -> Launch_error { reason = msg }
  | Gpu.Sim.Watchdog { issued; budget } -> Watchdog_exceeded { issued; budget }
  | Failure msg -> Sim_trap { reason = msg }
  | Invalid_argument msg -> Sim_trap { reason = "invalid argument: " ^ msg }
  | e -> Worker_crash { exn_name = Printexc.to_string e; backtrace }

(* Run a candidate's measurement thunk, surfacing a fault instead of a
   raw exception.  This is the per-candidate unit of crash isolation
   the measurement engine applies on every worker domain. *)
let run_candidate (c : Candidate.t) : (float, t) result =
  try Ok (c.Candidate.run ())
  with e ->
    let bt = Printexc.get_backtrace () in
    Error (classify ~backtrace:bt e)

(* ------------------------------------------------------------------ *)
(* Journal encoding                                                    *)
(* ------------------------------------------------------------------ *)

(* One-line, versioned-by-the-journal-header encoding for the
   measurement checkpoint file.  [Worker_crash] backtraces are process
   memory addresses and are deliberately dropped: a resumed sweep
   reports the crash, not a stale stack. *)
let to_journal = function
  | Compile_error { stage; reason } -> Printf.sprintf "compile %S %S" stage reason
  | Verify_rejected { stage; reason } -> Printf.sprintf "verify %S %S" stage reason
  | Launch_error { reason } -> Printf.sprintf "launch %S" reason
  | Sim_trap { reason } -> Printf.sprintf "trap %S" reason
  | Watchdog_exceeded { issued; budget } -> Printf.sprintf "watchdog %d %d" issued budget
  | Worker_crash { exn_name; backtrace = _ } -> Printf.sprintf "crash %S" exn_name

let of_journal (s : string) : t option =
  try
    match String.index_opt s ' ' with
    | None -> None
    | Some i ->
      Some
        (match String.sub s 0 i with
        | "compile" -> Scanf.sscanf s "compile %S %S" (fun stage reason -> Compile_error { stage; reason })
        | "verify" -> Scanf.sscanf s "verify %S %S" (fun stage reason -> Verify_rejected { stage; reason })
        | "launch" -> Scanf.sscanf s "launch %S" (fun reason -> Launch_error { reason })
        | "trap" -> Scanf.sscanf s "trap %S" (fun reason -> Sim_trap { reason })
        | "watchdog" ->
          Scanf.sscanf s "watchdog %d %d" (fun issued budget -> Watchdog_exceeded { issued; budget })
        | "crash" -> Scanf.sscanf s "crash %S" (fun exn_name -> Worker_crash { exn_name; backtrace = "" })
        | _ -> raise Exit)
  with Exit | Scanf.Scan_failure _ | Failure _ | End_of_file -> None
