(* Exact textual float encoding shared by the wire protocol, the
   result store and the checkpoint journal.

   [%h] hex-floats round-trip every finite float and both infinities
   bit-for-bit, and [float_of_string] even preserves a NaN's sign
   ("-nan") — but every NaN *payload* collapses to the canonical quiet
   NaN: OCaml's own [Float.nan] is 0x7ff8000000000001, which prints as
   "nan" and reads back as 0x7ff8000000000000.  "Bit-exact" is this
   repo's testable equality (served results vs direct search, resumed
   sweeps vs uninterrupted ones), so NaNs are carried with their raw
   IEEE-754 bits spelled out instead: "nan#7ff8000000000001".  Plain
   "nan"/"-nan" (foreign writers, hand-edited files) still parse, to
   the canonical quiet NaN of that sign. *)

let to_string (f : float) : string =
  if Float.is_nan f then Printf.sprintf "nan#%Lx" (Int64.bits_of_float f)
  else Printf.sprintf "%h" f

let of_string_opt (s : string) : float option =
  let n = String.length s in
  if n > 4 && String.sub s 0 4 = "nan#" then
    match Int64.of_string_opt ("0x" ^ String.sub s 4 (n - 4)) with
    | Some bits ->
      let f = Int64.float_of_bits bits in
      (* refuse "nan#" wrapping of a non-NaN bit pattern: there is
         exactly one spelling of every value *)
      if Float.is_nan f then Some f else None
    | None -> None
  else float_of_string_opt s
