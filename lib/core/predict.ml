(* Static performance features and a ridge-regression runtime predictor.

   The paper prunes with two hand-derived metrics (Eqs. 1-2).  This
   module generalizes them: every quantity the static pipeline already
   knows about a candidate — the dynamic instruction profile, the
   instruction-class mix, occupancy, resource usage, the bandwidth
   screen, and the superoptimizer's statically-expected cycle wins —
   becomes one coordinate of a feature vector, and a cheap ridge
   regression fit on a handful of measured probe points maps that
   vector to a predicted log-runtime.  [Prune] ranks the whole space by
   these predictions and simulates only a slice of it.

   Everything here is deterministic: features are pure functions of the
   candidate, and the fit is a fixed-pivot Gaussian elimination over
   the normal equations — no iterative solver, no data-dependent
   convergence, so the model is bit-identical for every [--jobs] and on
   warm and cold stores alike.  The model serializes through
   [Hexfloat], the repo's exact float encoding, and its digest is the
   value the determinism tests and CI pin. *)

(* Feature names double as the report vocabulary: [of_candidate]
   produces the coordinates in exactly this order. *)
let feature_names : string list =
  [
    "log_instr";  (* log1p dynamic instructions per thread *)
    "log_regions";  (* log1p regions (inter-barrier spans) *)
    "instr_per_region";  (* the utilization metric's Instr/Regions term *)
    "mem_fraction";  (* memory instructions / instructions *)
    "sfu_fraction";  (* SFU instructions / instructions *)
    "gbytes_per_instr";  (* off-chip bytes demanded per instruction *)
    "barriers";  (* dynamic barriers per thread *)
    "warps_per_block";  (* W_TB *)
    "blocks_per_sm";  (* B_SM *)
    "independent_warps";  (* Eq. 2's bracket: (W_TB-1)/2 + (B_SM-1)*W_TB *)
    "log_threads";  (* log1p total threads *)
    "threads_per_block";
    "regs_per_thread";
    "log_smem_bytes";  (* log1p shared memory per block *)
    "log_efficiency";  (* log of Eq. 1 *)
    "log_utilization";  (* log1p of Eq. 2 *)
    "demand_bytes_cycle";  (* bandwidth screen's demanded B/cy/SM *)
    "bandwidth_bound";  (* 0/1: demand exceeds the arch's budget *)
  ]
  @ List.map (fun c -> "class_" ^ c) Ptx.Count.class_order
  @ [
      "peephole_matched";  (* rule-DB windows that fire on the kernel *)
      "peephole_saved_cy";  (* weighted cycle win of those rewrites *)
    ]

let dim = List.length feature_names

(* The feature vector of one candidate.  [rules] is the verified
   peephole database whose statically-expected wins become the last two
   coordinates ([Ptx.Peephole.run_stats] exposes the weighted
   saved-cycles sum, so no windows are re-enumerated here); with no
   database those coordinates are zero. *)
let of_candidate ?(rules = []) (c : Candidate.t) : float array =
  let p = c.profile in
  let m = Metrics.of_candidate c in
  let o = c.occupancy in
  let instr = Float.max p.instr 1.0 in
  let w_tb = float_of_int o.Gpu.Arch.warps_per_block in
  let b_sm = float_of_int o.Gpu.Arch.blocks_per_sm in
  let classes = Ptx.Count.class_breakdown c.kernel in
  let dyn_total =
    List.fold_left (fun a (r : Ptx.Count.class_row) -> a +. r.dynamic_count) 0.0 classes
  in
  let class_frac name =
    match List.find_opt (fun (r : Ptx.Count.class_row) -> r.class_name = name) classes with
    | Some r when dyn_total > 0.0 -> r.dynamic_count /. dyn_total
    | _ -> 0.0
  in
  let ph_matched, ph_saved =
    if rules = [] then (0.0, 0.0)
    else
      let _, st = Ptx.Peephole.run_stats rules c.kernel in
      (float_of_int st.Ptx.Peephole.matched, st.Ptx.Peephole.saved_cycles)
  in
  Array.of_list
    ([
       log1p p.instr;
       log1p p.regions;
       instr /. Float.max p.regions 1.0;
       Ptx.Count.mem_fraction p;
       p.sfu /. instr;
       p.global_bytes /. instr;
       p.barriers;
       w_tb;
       b_sm;
       ((w_tb -. 1.0) /. 2.0) +. ((b_sm -. 1.0) *. w_tb);
       log1p (float_of_int c.threads_total);
       float_of_int c.threads_per_block;
       float_of_int c.resource.Ptx.Resource.regs_per_thread;
       log1p (float_of_int c.resource.Ptx.Resource.smem_bytes_per_block);
       (if m.Metrics.efficiency > 0.0 then log m.Metrics.efficiency else 0.0);
       log1p m.Metrics.utilization;
       Metrics.demanded_bytes_per_cycle_per_sm c;
       (if Metrics.bandwidth_bound c then 1.0 else 0.0);
     ]
    @ List.map class_frac Ptx.Count.class_order
    @ [ ph_matched; ph_saved ])

(* ------------------------------------------------------------------ *)
(* Ridge regression                                                    *)
(* ------------------------------------------------------------------ *)

type model = {
  md_mu : float array;  (* per-feature training mean *)
  md_sigma : float array;  (* per-feature training stddev (1.0 when constant) *)
  md_w : float array;  (* weights over standardized features *)
  md_b : float;  (* intercept: mean log-runtime of the probes *)
  md_lambda : float;
  md_rows : int;  (* probe points the fit saw *)
}

(* Solve A x = b by Gaussian elimination with partial pivoting.  The
   pivot is the max-|a| row with the LOWEST index on ties, so the
   elimination order — and therefore every rounding — is a pure
   function of the inputs. *)
let solve (a : float array array) (b : float array) : float array =
  let n = Array.length b in
  for col = 0 to n - 1 do
    let piv = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs a.(r).(col) > Float.abs a.(!piv).(col) then piv := r
    done;
    if !piv <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!piv);
      a.(!piv) <- tmp;
      let tb = b.(col) in
      b.(col) <- b.(!piv);
      b.(!piv) <- tb
    end;
    let d = a.(col).(col) in
    (* the ridge term keeps the diagonal away from zero, but guard the
       degenerate no-data case anyway *)
    if Float.abs d > 0.0 then
      for r = col + 1 to n - 1 do
        let f = a.(r).(col) /. d in
        if f <> 0.0 then begin
          for k = col to n - 1 do
            a.(r).(k) <- a.(r).(k) -. (f *. a.(col).(k))
          done;
          b.(r) <- b.(r) -. (f *. b.(col))
        end
      done
  done;
  let x = Array.make n 0.0 in
  for r = n - 1 downto 0 do
    let s = ref b.(r) in
    for k = r + 1 to n - 1 do
      s := !s -. (a.(r).(k) *. x.(k))
    done;
    x.(r) <- (if Float.abs a.(r).(r) > 0.0 then !s /. a.(r).(r) else 0.0)
  done;
  x

(* Fit on (features, log-runtime) rows.  Standardizing first makes one
   lambda meaningful across features with wildly different scales
   (barrier counts vs log-efficiency); the ridge term then handles
   probe sets smaller than the feature dimension, which is the normal
   regime — the whole point is fitting on very few measurements. *)
let fit ?(lambda = 1e-2) (rows : (float array * float) list) : model =
  let n = List.length rows in
  let mu = Array.make dim 0.0 and sigma = Array.make dim 1.0 in
  if n = 0 then { md_mu = mu; md_sigma = sigma; md_w = Array.make dim 0.0; md_b = 0.0; md_lambda = lambda; md_rows = 0 }
  else begin
    let fn = float_of_int n in
    List.iter (fun (x, _) -> Array.iteri (fun j v -> mu.(j) <- mu.(j) +. v) x) rows;
    Array.iteri (fun j v -> mu.(j) <- v /. fn) mu;
    let var = Array.make dim 0.0 in
    List.iter
      (fun (x, _) ->
        Array.iteri (fun j v -> var.(j) <- var.(j) +. ((v -. mu.(j)) ** 2.0)) x)
      rows;
    Array.iteri
      (fun j v ->
        let s = Float.sqrt (v /. fn) in
        sigma.(j) <- (if s > 1e-12 then s else 1.0))
      var;
    let ybar = List.fold_left (fun a (_, y) -> a +. y) 0.0 rows /. fn in
    let z (x : float array) j = (x.(j) -. mu.(j)) /. sigma.(j) in
    (* normal equations over standardized features and centered y *)
    let a = Array.make_matrix dim dim 0.0 in
    let b = Array.make dim 0.0 in
    List.iter
      (fun (x, y) ->
        let yc = y -. ybar in
        for j = 0 to dim - 1 do
          let zj = z x j in
          b.(j) <- b.(j) +. (zj *. yc);
          for k = j to dim - 1 do
            a.(j).(k) <- a.(j).(k) +. (zj *. z x k)
          done
        done)
      rows;
    for j = 0 to dim - 1 do
      for k = 0 to j - 1 do
        a.(j).(k) <- a.(k).(j)
      done;
      a.(j).(j) <- a.(j).(j) +. (lambda *. fn)
    done;
    let w = solve a b in
    { md_mu = mu; md_sigma = sigma; md_w = w; md_b = ybar; md_lambda = lambda; md_rows = n }
  end

(* Predicted log-runtime of a feature vector. *)
let predict (m : model) (x : float array) : float =
  let s = ref m.md_b in
  for j = 0 to dim - 1 do
    s := !s +. (m.md_w.(j) *. ((x.(j) -. m.md_mu.(j)) /. m.md_sigma.(j)))
  done;
  !s

(* Predicted runtime in seconds. *)
let predict_s (m : model) (x : float array) : float = Float.exp (predict m x)

(* Weights in report order, largest |standardized weight| first. *)
let weight_table (m : model) : (string * float) list =
  List.sort
    (fun (_, a) (_, b) -> compare (Float.abs b) (Float.abs a))
    (List.mapi (fun j name -> (name, m.md_w.(j))) feature_names)

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let magic = "gpuopt-predict v1"

let row_line tag (a : float array) : string =
  tag ^ " " ^ String.concat " " (Array.to_list (Array.map Hexfloat.to_string a))

let to_lines (m : model) : string list =
  [
    magic;
    Printf.sprintf "dim %d rows %d lambda %s b %s" dim m.md_rows
      (Hexfloat.to_string m.md_lambda) (Hexfloat.to_string m.md_b);
    row_line "mu" m.md_mu;
    row_line "sigma" m.md_sigma;
    row_line "w" m.md_w;
  ]

let parse_row tag (line : string) : float array option =
  match String.split_on_char ' ' line with
  | t :: vals when t = tag && List.length vals = dim -> (
    let parsed = List.filter_map Hexfloat.of_string_opt vals in
    if List.length parsed = dim then Some (Array.of_list parsed) else None)
  | _ -> None

let of_lines (lines : string list) : model option =
  match lines with
  | m :: header :: mu :: sigma :: w :: _ when m = magic -> (
    match String.split_on_char ' ' header with
    | [ "dim"; d; "rows"; rows; "lambda"; l; "b"; b ]
      when int_of_string_opt d = Some dim -> (
      match
        ( int_of_string_opt rows,
          Hexfloat.of_string_opt l,
          Hexfloat.of_string_opt b,
          parse_row "mu" mu,
          parse_row "sigma" sigma,
          parse_row "w" w )
      with
      | Some md_rows, Some md_lambda, Some md_b, Some md_mu, Some md_sigma, Some md_w ->
        Some { md_mu; md_sigma; md_w; md_b; md_lambda; md_rows }
      | _ -> None)
    | _ -> None)
  | _ -> None

(* The value the bit-identity checks compare: every coefficient spelled
   exactly ([Hexfloat] round-trips all finite floats), digested. *)
let digest (m : model) : string =
  Digest.to_hex (Digest.string (String.concat "\n" (to_lines m)))
