(* Exhaustive vs Pareto-pruned search over an optimization space
   (the paper's section 5 experiment, producing Table 4's rows).

   Exhaustive search runs every valid configuration and finds the true
   optimum.  Pruned search computes the two static metrics for every
   valid configuration (cheap: compile-only), keeps the Pareto-optimal
   subset, and runs only those.  The headline claims this reproduces:
   the optimum stays inside the selected subset, and the selected
   subset is a small fraction of the space.

   Fault tolerance: a candidate whose measurement faults (pass bug,
   launch rejection, simulator trap, watchdog abort — see [Fault]) is
   recorded in [result.faults] and excluded from the survivors; every
   statistic, the Pareto subset and both optima are computed over the
   survivors.  A fault-free sweep produces exactly the pre-fault-
   tolerance result with [faults = []].  [~fail_fast:true] restores the
   historical semantics: the first fault in candidate order aborts the
   sweep as [Fault.Fail]. *)

type measured = Measure.measured = { cand : Candidate.t; time_s : float }

(* Where the search's host time went: how often the measurement engine
   actually paid for the simulator versus answering from its cache, and
   the simulator work performed (from [Gpu.Sim]'s global counters, so
   parallel worker domains are included). *)
type engine_stats = {
  measure_runs : int;  (* simulator measurements actually performed *)
  measure_hits : int;  (* measurement requests answered from the cache *)
  measure_host_s : float;  (* summed host seconds inside [run] thunks *)
  sim_launches : int;  (* simulator launches during the search *)
  sim_warp_instrs : int;  (* warp instructions those launches issued *)
  store_hits : int;  (* answered from the content-addressed store *)
  store_misses : int;  (* store consulted but had to simulate *)
}

type result = {
  app_name : string;
  space_size : int;  (* valid configurations *)
  invalid : int;  (* configurations rejected at compile/launch time *)
  faults : (Candidate.t * Fault.t) list;  (* measured-as-failed, in space order *)
  all : (Candidate.t * Metrics.t) list;  (* valid ones with their metrics *)
  exhaustive : measured list;  (* every surviving config, measured *)
  best : measured;  (* the true optimum among survivors *)
  full_eval_time : float;  (* Table 4 "evaluation time" *)
  selected : (Candidate.t * Metrics.t) list;  (* Pareto-optimal subset *)
  selected_measured : measured list;
  selected_best : measured;  (* best within the subset *)
  selected_eval_time : float;  (* Table 4 "selected evaluation time" *)
  reduction : float;  (* fraction of the space pruned away *)
  optimum_selected : bool;
      (* headline: did pruning keep the optimum (up to measurement
         equivalence — the paper's own MRI clusters treat <= 5.4%
         differences as "identical or nearly identical"; we use 2%)? *)
  optimum_exact : bool;  (* strict version: the argmin itself selected *)
  engine : engine_stats;  (* measurement-engine and simulator counters *)
  prune : Prune.outcome option;
      (* the model-driven race's outcome when [?predict] was given:
         what a budget-bounded search would have simulated and chosen,
         measured against this result's exhaustive ground truth *)
}

let measure (c : Candidate.t) : measured = { cand = c; time_s = c.run () }

(* The machine model a candidate list targets.  Candidate lists are
   homogeneous in arch (a sweep is per machine; [run_archs] builds one
   list per registry entry), so the first candidate speaks for all. *)
let arch_of (cands : Candidate.t list) : Gpu.Arch.t =
  match cands with c :: _ -> c.arch | [] -> Gpu.Arch.g80

(* Identity of a candidate space, for checkpoint journals: an app name
   plus the descs of its valid configurations, digested — with the
   arch name mixed in when the space targets a non-default machine, so
   a G80 journal can never resume a wide32 sweep.  G80 spaces hash
   exactly as they did before the machine model became a value, so
   existing journals stay resumable. *)
let space_key ~(app_name : string) (cands : Candidate.t list) : string =
  let descs =
    List.filter_map (fun (c : Candidate.t) -> if c.valid then Some c.desc else None) cands
  in
  let arch = arch_of cands in
  let tagged =
    if arch.Gpu.Arch.name = Gpu.Arch.g80.Gpu.Arch.name then app_name :: descs
    else app_name :: ("arch:" ^ arch.Gpu.Arch.name) :: descs
  in
  Digest.to_hex (Digest.string (String.concat "\n" tagged))

(* Bind a content-addressed result store to a measurement engine.  The
   key function defaults to [Store.candidate_key] over the current
   architecture and this candidate space ([store_scale] tags the
   problem scale — quick and paper-scale spaces share descs but not
   simulated times, see [Store.space_digest]).  Callers that issue many
   sweeps over the same space (the serve daemon) pass a memoized
   [store_key] instead, so the space digest is not recomputed per
   request. *)
let bind_store engine ~(app_name : string) (cands : Candidate.t list) ~store ~store_key
    ~store_scale : unit =
  match store with
  | None -> ()
  | Some st ->
    let key =
      match store_key with
      | Some k -> k
      | None ->
        let arch = Store.arch_digest ~arch:(arch_of cands) () in
        let scale = Option.value store_scale ~default:"full" in
        let descs =
          List.filter_map
            (fun (c : Candidate.t) -> if c.valid then Some c.desc else None)
            cands
        in
        let space = Store.space_digest ~app_name ~scale descs in
        fun c -> Store.candidate_key ~arch ~space c
    in
    Measure.attach_store engine ~store:st ~key

(* [?jobs] is the number of measurement worker domains (default: the
   GPUOPT_JOBS environment variable, else cores - 1, min 1 — see
   [Util.Pool.default_jobs]).  The result is identical for every value
   of [jobs]: measurement order does not affect simulated times, and
   all orderings in [result] follow the input candidate order.

   [?checkpoint] attaches a measurement journal: settled outcomes are
   appended to the file as they land, and a rerun with the same file
   (same app, same space) skips them.  [?checkpoint_budget] bounds how
   many new outcomes may be journaled before the sweep aborts with
   [Measure.Interrupted] — the deterministic stand-in for killing a
   long sweep, used by the resume tests and `gpuopt chaos`.

   [?store] attaches the persistent content-addressed store: points it
   already holds are answered without the simulator, and new
   measurements are appended for every later client (see [bind_store]
   for [?store_key] / [?store_scale]).

   [?predict] additionally runs the model-driven race ([Prune.run])
   against the same engine.  Because the exhaustive sweep has already
   filled the cache, the race's probe and survivor measurements cost
   nothing extra here — its structural counts still report what a
   budget-only run would have simulated.  [?budget_frac] overrides the
   spec's full-simulation budget.

   [?cancel] is a cooperative cancellation token checked between
   candidates ([Cancel], [Measure.measure_outcomes]): a sweep whose
   token trips with measurements still outstanding aborts with
   [Cancel.Cancelled] instead of holding its worker; outcomes settled
   before the trip stay cached/journaled/stored for the retry. *)
let run ?jobs ?(fail_fast = false) ?checkpoint ?checkpoint_budget ?store ?store_key
    ?store_scale ?predict ?budget_frac ?cancel ~(app_name : string) (cands : Candidate.t list)
    : result =
  let valid, invalid = List.partition (fun (c : Candidate.t) -> c.valid) cands in
  if valid = [] then invalid_arg (app_name ^ ": no valid configuration in the space");
  let all = List.map (fun c -> (c, Metrics.of_candidate c)) valid in
  let wi0 = Gpu.Sim.warp_instrs_issued () and launches0 = Gpu.Sim.sim_runs () in
  let engine = Measure.create ~app_name () in
  bind_store engine ~app_name cands ~store ~store_key ~store_scale;
  (match checkpoint with
  | None -> ()
  | Some file ->
    ignore
      (Measure.checkpoint ?stop_after:checkpoint_budget engine ~file
         ~key:(space_key ~app_name cands)
        : int));
  Fun.protect
    ~finally:(fun () -> Measure.close_journal engine)
    (fun () ->
      (* Exhaustive exploration: measure everything; faults settle as
         recorded outcomes instead of killing the sweep. *)
      let outcomes = Measure.measure_outcomes ?jobs ?cancel engine valid in
      let faults =
        List.filter_map
          (fun (c, o) -> match o with Error f -> Some (c, f) | Ok _ -> None)
          outcomes
      in
      (if fail_fast then
         match faults with
         | ((c : Candidate.t), fault) :: _ -> raise (Fault.Fail { desc = c.desc; fault })
         | [] -> ());
      let exhaustive =
        List.filter_map
          (fun ((c : Candidate.t), o) ->
            match o with Ok time_s -> Some { cand = c; time_s } | Error _ -> None)
          outcomes
      in
      if exhaustive = [] then
        invalid_arg
          (Printf.sprintf "%s: every configuration in the space faulted (%d fault(s))" app_name
             (List.length faults));
      let best =
        match Util.Stats.argmin (fun m -> m.time_s) exhaustive with
        | Some b -> b
        | None -> assert false
      in
      let full_eval_time = List.fold_left (fun a m -> a +. m.time_s) 0.0 exhaustive in
      (* Pruned exploration over the survivors: Pareto subset on
         (efficiency, utilization) at the paper's plot resolution
         (metric-indistinguishable clusters survive whole, as in
         Figure 6(b)).  With no faults this is the whole valid space —
         the pre-fault-tolerance behavior, bit for bit. *)
      let survivors =
        match faults with
        | [] -> all
        | _ ->
          let dead = List.map (fun ((c : Candidate.t), _) -> c.desc) faults in
          List.filter (fun ((c : Candidate.t), _) -> not (List.mem c.desc dead)) all
      in
      let selected =
        Pareto.frontier_quantized
          (fun (_, m) -> Metrics.(m.efficiency, m.utilization))
          survivors
      in
      (* The Pareto subset re-reads the exhaustive measurements from the
         cache; [time_exn] asserts the hit.  A miss would mean a selected
         candidate escaped the exhaustive sweep — the old ad-hoc table
         silently re-measured in that case, double-counting
         [selected_eval_time]. *)
      let selected_measured =
        List.map (fun (c, _) -> { cand = c; time_s = Measure.time_exn engine c }) selected
      in
      let selected_best =
        match Util.Stats.argmin (fun m -> m.time_s) selected_measured with
        | Some b -> b
        | None -> assert false
      in
      let selected_eval_time =
        List.fold_left (fun a m -> a +. m.time_s) 0.0 selected_measured
      in
      let space_size = List.length valid in
      let n_survivors = List.length exhaustive in
      let n_sel = List.length selected in
      let prune =
        match predict with
        | None -> None
        | Some (spec : Prune.spec) ->
          let spec =
            match budget_frac with
            | None -> spec
            | Some f ->
              { spec with Prune.sp_plan = { spec.Prune.sp_plan with Prune.pl_budget_frac = f } }
          in
          Some (Prune.run ?jobs ?store ?store_scale ?cancel ~engine ~app_name spec valid)
      in
      {
        app_name;
        space_size;
        invalid = List.length invalid;
        faults;
        all;
        exhaustive;
        best;
        full_eval_time;
        selected;
        selected_measured;
        selected_best;
        selected_eval_time;
        reduction = 1.0 -. (float_of_int n_sel /. float_of_int n_survivors);
        optimum_selected = selected_best.time_s <= best.time_s *. 1.02;
        optimum_exact =
          List.exists
            (fun ((c : Candidate.t), _) -> String.equal c.desc best.cand.desc)
            selected;
        engine =
          {
            measure_runs = Measure.runs engine;
            measure_hits = Measure.hits engine;
            measure_host_s = Measure.host_time engine;
            sim_launches = Gpu.Sim.sim_runs () - launches0;
            sim_warp_instrs = Gpu.Sim.warp_instrs_issued () - wi0;
            store_hits = Measure.store_hits engine;
            store_misses = Measure.store_misses engine;
          };
        prune;
      })

(* Pruned-only search: what a user of the methodology actually runs —
   compile + metrics for the whole space, measurement only for the
   Pareto subset.  The chosen configuration skips faulted subset
   members (the choice is over the survivors). *)
type tuned = {
  chosen : measured;  (* fastest surviving Pareto-selected config *)
  considered : (Candidate.t * Metrics.t) list;  (* the Pareto subset *)
  tune_space_size : int;  (* valid configurations in the space *)
  tune_engine : engine_stats;
}

let tune_full ?jobs ?store ?store_key ?store_scale ?cancel ~(app_name : string)
    (cands : Candidate.t list) : tuned =
  let valid = List.filter (fun (c : Candidate.t) -> c.valid) cands in
  if valid = [] then invalid_arg (app_name ^ ": no valid configuration in the space");
  let all = List.map (fun c -> (c, Metrics.of_candidate c)) valid in
  let selected =
    Pareto.frontier_quantized (fun (_, m) -> Metrics.(m.efficiency, m.utilization)) all
  in
  let wi0 = Gpu.Sim.warp_instrs_issued () and launches0 = Gpu.Sim.sim_runs () in
  let engine = Measure.create ~app_name () in
  bind_store engine ~app_name cands ~store ~store_key ~store_scale;
  let outcomes = Measure.measure_outcomes ?jobs ?cancel engine (List.map fst selected) in
  let measured =
    List.filter_map
      (fun ((c : Candidate.t), o) ->
        match o with Ok time_s -> Some { cand = c; time_s } | Error _ -> None)
      outcomes
  in
  match Util.Stats.argmin (fun m -> m.time_s) measured with
  | Some best ->
    {
      chosen = best;
      considered = selected;
      tune_space_size = List.length valid;
      tune_engine =
        {
          measure_runs = Measure.runs engine;
          measure_hits = Measure.hits engine;
          measure_host_s = Measure.host_time engine;
          sim_launches = Gpu.Sim.sim_runs () - launches0;
          sim_warp_instrs = Gpu.Sim.warp_instrs_issued () - wi0;
          store_hits = Measure.store_hits engine;
          store_misses = Measure.store_misses engine;
        };
    }
  | None -> invalid_arg (app_name ^ ": every selected configuration faulted")

let tune ?jobs ~(app_name : string) (cands : Candidate.t list) :
    measured * (Candidate.t * Metrics.t) list =
  let r = tune_full ?jobs ~app_name cands in
  (r.chosen, r.considered)

(* ------------------------------------------------------------------ *)
(* Cross-arch sweeps                                                   *)
(* ------------------------------------------------------------------ *)

(* One registry machine's sweep within a cross-arch run. *)
type arch_result = { ar_arch : Gpu.Arch.t; ar_result : result }

(* Sweep one app across several machine models: the arch is a genuine
   enumerable axis ([Space.axis] over the registry values), and each
   point of that axis runs the full exhaustive-vs-pruned search on
   candidates compiled *for that machine* — occupancy, validity,
   metrics and simulated times all come from the arch the candidate
   carries.  Each arch gets its own measurement engine (the engine's
   memo key is the candidate desc, which repeats across arches) and
   its own store keys (the arch digest differs), so distinct machines
   can never exchange measurements.  Archs run sequentially in
   registry order; [?jobs] parallelizes within each arch's sweep, so
   results are bit-identical for every jobs value. *)
let run_archs ?jobs ?fail_fast ?store ?store_scale ~(app_name : string)
    ~(archs : Gpu.Arch.t list) (candidates_of : Gpu.Arch.t -> Candidate.t list) :
    arch_result list =
  if archs = [] then invalid_arg (app_name ^ ": empty arch list");
  let axis = Space.axis ~name:"arch" ~show:(fun (a : Gpu.Arch.t) -> a.name) archs in
  List.map
    (fun (arch : Gpu.Arch.t) ->
      let cands = candidates_of arch in
      (match List.find_opt (fun (c : Candidate.t) -> c.arch.name <> arch.name) cands with
      | Some c ->
        invalid_arg
          (Printf.sprintf "%s: candidate %s targets arch %s inside the %s sweep" app_name
             c.desc c.arch.name arch.name)
      | None -> ());
      let r = run ?jobs ?fail_fast ?store ?store_scale ~app_name cands in
      { ar_arch = arch; ar_result = r })
    (Space.configs axis)

(* The per-arch winner table's raw rows: (arch, pruned-search choice,
   true optimum) per machine. *)
let winners (rs : arch_result list) : (Gpu.Arch.t * measured * measured) list =
  List.map (fun r -> (r.ar_arch, r.ar_result.selected_best, r.ar_result.best)) rs
