(* Typed optimization spaces.

   The paper's method starts from a finite cross product of named
   optimization parameters, minus the points a validity predicate rules
   out (Table 4's "search space" column).  This module makes that
   structure first-class: an ['a t] is an exact enumeration of
   configurations together with, per configuration, the (axis, value)
   parameter list the reports key on, plus the axis metadata and the
   names of the validity constraints applied.

   Spaces are built applicatively:

     let+ tile = axis ~name:"tile" ~show [ 8; 16 ]
     and+ rect = axis ~name:"rect" ~show [ 1; 2; 4 ] in
     { tile; rect }

   Enumeration order is load-bearing — Pareto pruning and the reports
   preserve candidate order — and is row-major: the first axis varies
   slowest, the last fastest, exactly like the nested loops the apps
   used to hand-write.  [filter] removes points without reordering the
   survivors. *)

type axis_info = { axis_name : string; axis_values : string list }

type 'a t = {
  elems : ('a * (string * string) list) list;  (* row-major; params in axis order *)
  axes : axis_info list;
  constraints : string list;  (* names of the filters applied *)
}

let axis ~name ~(show : 'a -> string) (values : 'a list) : 'a t =
  {
    elems = List.map (fun v -> (v, [ (name, show v) ])) values;
    axes = [ { axis_name = name; axis_values = List.map show values } ];
    constraints = [];
  }

let ints ~name values = axis ~name ~show:string_of_int values
let bools ~name values = axis ~name ~show:string_of_bool values
let return x = { elems = [ (x, []) ]; axes = []; constraints = [] }
let map f t = { t with elems = List.map (fun (v, ps) -> (f v, ps)) t.elems }

(* Cartesian product, row-major: [a]'s order is outer, [b]'s inner. *)
let product (a : 'a t) (b : 'b t) : ('a * 'b) t =
  {
    elems =
      List.concat_map
        (fun (x, px) -> List.map (fun (y, py) -> ((x, y), px @ py)) b.elems)
        a.elems;
    axes = a.axes @ b.axes;
    constraints = a.constraints @ b.constraints;
  }

let ( let+ ) t f = map f t
let ( and+ ) = product

(* Validity predicate, recorded by name so reports and docs can say
   which constraints shaped the space. *)
let filter ~name pred (t : 'a t) : 'a t =
  {
    t with
    elems = List.filter (fun (v, _) -> pred v) t.elems;
    constraints = t.constraints @ [ name ];
  }

let elements t = t.elems
let configs t = List.map fst t.elems
let cardinality t = List.length t.elems

(* Size of the unconstrained cross product (what cardinality would be
   with no [filter]). *)
let raw_cardinality t =
  List.fold_left (fun acc a -> acc * List.length a.axis_values) 1 t.axes

let axes t = t.axes
let constraints t = t.constraints

let find ~describe t desc =
  List.find_opt (fun (c, _) -> String.equal (describe c) desc) t.elems |> Option.map fst
