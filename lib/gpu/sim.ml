(* Cycle-approximate simulator for the GeForce 8800 SM.

   Models the first-order mechanisms that the paper's optimization
   space exercises (section 2.1/2.2):

   - warps of 32 threads issuing SIMD over 8 SPs (4 cycles per issue);
   - zero-overhead warp interleaving: any ready warp from any resident
     block may issue next; the SM stalls only when no warp is ready;
   - an in-order per-warp scoreboard: an instruction waits until its
     source registers' ready-cycles have passed (register RAW latency
     hides behind other warps or behind independent instructions of the
     same warp — the ILP that unrolling/prefetching create);
   - global memory latency plus a per-SM bandwidth channel with
     half-warp coalescing (contiguous 64B-aligned accesses become one
     transaction; anything else one transaction per active lane);
   - shared-memory bank conflicts (16 banks, conflict degree multiplies
     issue occupancy) and single-ported constant-cache broadcast;
   - barrier semantics parking warps until all live warps of the block
     arrive;
   - block residency limited by occupancy (B_SM), with finished blocks
     replaced from the pending queue.

   Execution is functional as well as timed: instructions compute real
   binary32 values against device memory, so the same engine validates
   kernel outputs and measures performance.  Large grids are simulated
   for a bounded number of blocks on one representative SM and
   extrapolated linearly (the paper observes linear scaling in input
   size). *)

open Ptx

exception Launch_error of string

let launch_error fmt = Printf.ksprintf (fun s -> raise (Launch_error s)) fmt

type arg = I of int | F of float | Buf of Device.buffer

type launch = {
  kernel : Prog.t;
  grid : int * int;  (* blocks in x, y *)
  block : int * int;  (* threads in x, y *)
  args : (string * arg) list;
}

type mode =
  | Functional  (* execute every block; no occupancy requirement *)
  | Timing of { max_blocks : int }  (* cap simulated blocks on the measured SM *)

(* Dynamic counters for one memory instruction (Ld/St), identified by
   its (block label, body index) in the launched program.  [sc_tx] and
   [sc_bytes] accumulate for off-chip spaces (global/local); [sc_replays]
   accumulates serialization beyond the first issue slot for on-chip
   spaces (shared bank conflicts, constant-cache non-broadcast). *)
type site_counter = {
  sc_label : string;
  sc_index : int;
  sc_space : Instr.space;
  mutable sc_execs : int;  (* warp executions with a non-empty mask *)
  mutable sc_tx : int;
  mutable sc_bytes : int;
  mutable sc_replays : int;
}

type stats = {
  cycles : float;  (* extrapolated kernel cycles *)
  time_s : float;  (* cycles / 1.35 GHz *)
  total_blocks : int;
  blocks_simulated : int;
  warp_instrs : int;  (* issued in the simulated portion *)
  gmem_transactions : int;
  gmem_bytes : int;
  bank_conflict_extra : int;  (* extra issue cycles lost to conflicts *)
  occupancy : Arch.occupancy;
  regs_per_thread : int;
  site_counters : site_counter list;  (* per Ld/St, in program order *)
}

(* ------------------------------------------------------------------ *)
(* Compiled kernel form                                                *)
(* ------------------------------------------------------------------ *)

type cterm =
  | CJump of int
  | CBr of { pred : Reg.t; negate : bool; if_true : int; if_false : int; reconv : int }
  | CRet

type cblock = { body : Instr.t array; cterm : cterm }

type pval = Pint of int | Pflt of float

type ckernel = {
  blocks : cblock array;
  nf : int;  (* register-file sizes per class *)
  nr : int;
  np : int;
  params : (string, pval) Hashtbl.t;
  smem_words : int;
  lmem_words : int;
}

let compile_kernel (k : Prog.t) (args : (string * arg) list) : ckernel =
  let idx = Prog.block_index k in
  let find l =
    match Hashtbl.find_opt idx l with
    | Some i -> i
    | None -> launch_error "unknown block label %S" l
  in
  let blocks =
    Array.of_list
      (List.map
         (fun (b : Prog.block) ->
           let cterm =
             match b.term with
             | Prog.Jump l -> CJump (find l)
             | Prog.Ret -> CRet
             | Prog.Br { pred; negate; if_true; if_false; reconv } ->
               CBr
                 {
                   pred;
                   negate;
                   if_true = find if_true;
                   if_false = find if_false;
                   reconv = find reconv;
                 }
           in
           { body = Array.of_list b.body; cterm })
         k.blocks)
  in
  let nf = ref 0 and nr = ref 0 and np = ref 0 in
  Reg.Set.iter
    (fun r ->
      match Reg.ty r with
      | Reg.F32 -> nf := max !nf (Reg.idx r + 1)
      | Reg.S32 -> nr := max !nr (Reg.idx r + 1)
      | Reg.Pred -> np := max !np (Reg.idx r + 1))
    (Prog.all_regs k);
  let params = Hashtbl.create 8 in
  List.iter
    (fun (p : Prog.param) ->
      match List.assoc_opt p.pname args with
      | None -> launch_error "missing kernel argument %S" p.pname
      | Some (I i) -> Hashtbl.replace params p.pname (Pint i)
      | Some (F f) -> Hashtbl.replace params p.pname (Pflt f)
      | Some (Buf b) -> Hashtbl.replace params p.pname (Pint b.Device.base))
    k.params;
  {
    blocks;
    nf = !nf;
    nr = !nr;
    np = !np;
    params;
    smem_words = k.smem_words;
    lmem_words = k.lmem_words;
  }

(* ------------------------------------------------------------------ *)
(* Warp and block state                                                *)
(* ------------------------------------------------------------------ *)

type frame = { mutable bi : int; mutable off : int; rpc : int; mask : int }

type block_st = {
  cta_x : int;
  cta_y : int;
  shared : float array;
  local : float array;  (* per-thread local memory, thread-major *)
  mutable arrived : int;  (* warps waiting at the barrier *)
  mutable live_warps : int;
  mutable warps : warp list;  (* filled after creation *)
}

and warp = {
  wid : int;
  valid_mask : int;
  fregs : float array;  (* reg-major: fregs.(r * 32 + lane) *)
  iregs : int array;
  pregs : bool array;
  f_ready : int array;  (* per-register operand ready cycle *)
  i_ready : int array;
  p_ready : int array;
  mutable stack : frame list;
  mutable exited : int;
  mutable wake : int;
  mutable at_barrier : bool;
  mutable finished : bool;
  pending : int array;  (* completion cycles of in-flight long-latency ops *)
  mutable n_pending : int;
  blk : block_st;
}

let full_mask = 0xFFFFFFFF

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go (m land full_mask) 0

(* ------------------------------------------------------------------ *)
(* SM state                                                            *)
(* ------------------------------------------------------------------ *)

type sm = {
  mutable issue_free : int;  (* next cycle the issue pipe is free *)
  mutable mem_free : int;  (* next cycle the memory channel is free *)
  mutable n_warp_instrs : int;
  mutable n_tx : int;
  mutable n_bytes : int;
  mutable conflict_extra : int;
}

type ctx = {
  dev : Device.t;
  ck : ckernel;
  lat : Arch.latencies;
  bdim_x : int;
  bdim_y : int;
  gdim_x : int;
  gdim_y : int;
  timing : bool;
  sm : sm;
  sites : site_counter option array array;  (* sites.(bi).(off) *)
}

(* ------------------------------------------------------------------ *)
(* Operand evaluation                                                  *)
(* ------------------------------------------------------------------ *)

let spec_int ctx (w : warp) lane (s : Instr.special) : int =
  let lin = (w.wid * 32) + lane in
  match s with
  | Instr.Tid_x -> lin mod ctx.bdim_x
  | Instr.Tid_y -> lin / ctx.bdim_x mod ctx.bdim_y
  | Instr.Tid_z -> lin / (ctx.bdim_x * ctx.bdim_y)
  | Instr.Ntid_x -> ctx.bdim_x
  | Instr.Ntid_y -> ctx.bdim_y
  | Instr.Ntid_z -> 1
  | Instr.Ctaid_x -> w.blk.cta_x
  | Instr.Ctaid_y -> w.blk.cta_y
  | Instr.Nctaid_x -> ctx.gdim_x
  | Instr.Nctaid_y -> ctx.gdim_y

let param_int ctx name =
  match Hashtbl.find_opt ctx.ck.params name with
  | Some (Pint i) -> i
  | Some (Pflt _) -> launch_error "parameter %S used in integer context" name
  | None -> launch_error "unbound parameter %S" name

let param_flt ctx name =
  match Hashtbl.find_opt ctx.ck.params name with
  | Some (Pflt f) -> f
  | Some (Pint i) -> float_of_int i
  | None -> launch_error "unbound parameter %S" name

let eval_i ctx w lane (o : Instr.operand) : int =
  match o with
  | Instr.Reg r ->
    if Reg.ty r <> Reg.S32 then launch_error "register %s in integer context" (Reg.to_string r);
    w.iregs.((Reg.idx r * 32) + lane)
  | Instr.Imm_i i -> i
  | Instr.Imm_f _ -> launch_error "float immediate in integer context"
  | Instr.Spec s -> spec_int ctx w lane s
  | Instr.Par p -> param_int ctx p

let eval_f ctx w lane (o : Instr.operand) : float =
  match o with
  | Instr.Reg r ->
    if Reg.ty r <> Reg.F32 then launch_error "register %s in float context" (Reg.to_string r);
    w.fregs.((Reg.idx r * 32) + lane)
  | Instr.Imm_f f -> f
  | Instr.Imm_i i -> float_of_int i
  | Instr.Spec s -> float_of_int (spec_int ctx w lane s)
  | Instr.Par p -> param_flt ctx p

let eval_p _ctx w lane (o : Instr.operand) : bool =
  match o with
  | Instr.Reg r ->
    if Reg.ty r <> Reg.Pred then launch_error "register %s in predicate context" (Reg.to_string r);
    w.pregs.((Reg.idx r * 32) + lane)
  | Instr.Imm_i i -> i <> 0
  | _ -> launch_error "bad operand in predicate context"

(* Ready-cycle of an operand (0 for immediates/params/specials). *)
let operand_ready (w : warp) (o : Instr.operand) : int =
  match o with
  | Instr.Reg r -> (
    let i = Reg.idx r in
    match Reg.ty r with
    | Reg.F32 -> w.f_ready.(i)
    | Reg.S32 -> w.i_ready.(i)
    | Reg.Pred -> w.p_ready.(i))
  | _ -> 0

let set_ready (w : warp) (r : Reg.t) (c : int) =
  let i = Reg.idx r in
  match Reg.ty r with
  | Reg.F32 -> w.f_ready.(i) <- c
  | Reg.S32 -> w.i_ready.(i) <- c
  | Reg.Pred -> w.p_ready.(i) <- c

(* ------------------------------------------------------------------ *)
(* Memory access timing                                                *)
(* ------------------------------------------------------------------ *)

(* Half-warp coalescing, G80 rules: one 64-byte transaction iff the
   k-th active lane of the half-warp reads the k-th word of a 64-byte
   aligned segment; otherwise one 32-byte transaction per active lane.
   Returns (transactions, bytes). *)
let coalesce (addrs : int array) (mask : int) (half : int) : int * int =
  let lo = half * 16 in
  let n_active = ref 0 in
  let ok = ref true in
  let seg_base = ref min_int in
  for l = lo to lo + 15 do
    if mask land (1 lsl l) <> 0 then begin
      incr n_active;
      let expect_base = addrs.(l) - (4 * (l - lo)) in
      if !seg_base = min_int then seg_base := expect_base
      else if !seg_base <> expect_base then ok := false
    end
  done;
  if !n_active = 0 then (0, 0)
  else if !ok && !seg_base land 63 = 0 then (1, 64)
  else (!n_active, 32 * !n_active)

(* Charge [tx] transactions to the SM memory channel starting no
   earlier than [c]; returns the cycle the last transaction completes
   its channel occupancy. *)
let charge_channel ctx c ~tx ~bytes ~tx_cost =
  let sm = ctx.sm in
  sm.n_tx <- sm.n_tx + tx;
  sm.n_bytes <- sm.n_bytes + bytes;
  if not ctx.timing then c
  else begin
    sm.mem_free <- max sm.mem_free c + (tx * tx_cost);
    sm.mem_free
  end

(* Shared-memory conflict degree over a half-warp: the maximum number
   of *distinct* addresses hitting one of the 16 banks (same-address
   lanes broadcast). *)
let bank_conflict_degree (addrs : int array) (mask : int) (half : int) : int =
  let lo = half * 16 in
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let per_bank = Array.make 16 0 in
  for l = lo to lo + 15 do
    if mask land (1 lsl l) <> 0 then begin
      let a = addrs.(l) in
      if not (Hashtbl.mem seen a) then begin
        Hashtbl.replace seen a ();
        let bank = a lsr 2 land 15 in
        per_bank.(bank) <- per_bank.(bank) + 1
      end
    end
  done;
  Array.fold_left max 1 per_bank

(* ------------------------------------------------------------------ *)
(* Instruction execution                                               *)
(* ------------------------------------------------------------------ *)

(* Execute instruction [ins] for warp [w] with active mask [mask],
   issuing at cycle [c].  [sc] is the per-site counter when [ins] is a
   memory access.  Returns the number of cycles the instruction
   occupies the issue pipe. *)
let exec_instr ctx (w : warp) (mask : int) (c : int) (sc : site_counter option) (ins : Instr.t) :
    int =
  let lat = ctx.lat in
  let count_tx tx bytes =
    match sc with
    | Some s ->
      s.sc_execs <- s.sc_execs + 1;
      s.sc_tx <- s.sc_tx + tx;
      s.sc_bytes <- s.sc_bytes + bytes
    | None -> ()
  in
  let count_replays deg =
    match sc with
    | Some s ->
      s.sc_execs <- s.sc_execs + 1;
      s.sc_replays <- s.sc_replays + (deg - 1)
    | None -> ()
  in
  let fidx r lane = (Reg.idx r * 32) + lane in
  let for_lanes f =
    for lane = 0 to 31 do
      if mask land (1 lsl lane) <> 0 then f lane
    done
  in
  let write_f d lane v = w.fregs.(fidx d lane) <- v in
  let write_i d lane v = w.iregs.(fidx d lane) <- v in
  let write_p d lane v = w.pregs.(fidx d lane) <- v in
  let alu_done d = set_ready w d (c + lat.alu) in
  match ins with
  | Instr.Mov (d, a) ->
    (match Reg.ty d with
    | Reg.F32 -> for_lanes (fun l -> write_f d l (eval_f ctx w l a))
    | Reg.S32 -> for_lanes (fun l -> write_i d l (eval_i ctx w l a))
    | Reg.Pred -> for_lanes (fun l -> write_p d l (eval_p ctx w l a)));
    alu_done d;
    lat.issue
  | Instr.F2 (op, d, a, b) ->
    let f =
      match op with
      | Instr.FAdd -> Util.Float32.add
      | Instr.FSub -> Util.Float32.sub
      | Instr.FMul -> Util.Float32.mul
      | Instr.FDiv -> Util.Float32.div
      | Instr.FMin -> Util.Float32.min
      | Instr.FMax -> Util.Float32.max
    in
    for_lanes (fun l -> write_f d l (f (eval_f ctx w l a) (eval_f ctx w l b)));
    alu_done d;
    lat.issue
  | Instr.F1 (op, d, a) ->
    let f =
      match op with
      | Instr.FNeg -> Util.Float32.neg
      | Instr.FAbs -> Util.Float32.abs
      | Instr.FSqrt -> Util.Float32.sqrt
      | Instr.FRsqrt -> Util.Float32.rsqrt
      | Instr.FRcp -> Util.Float32.rcp
      | Instr.FSin -> Util.Float32.sin
      | Instr.FCos -> Util.Float32.cos
      | Instr.FEx2 -> fun x -> Util.Float32.round (Float.pow 2.0 x)
      | Instr.FLg2 -> fun x -> Util.Float32.round (Float.log x /. Float.log 2.0)
    in
    for_lanes (fun l -> write_f d l (f (eval_f ctx w l a)));
    if Instr.is_sfu_op op then begin
      set_ready w d (c + lat.sfu);
      lat.sfu_issue
    end
    else begin
      alu_done d;
      lat.issue
    end
  | Instr.Fmad (d, a, b, cc) ->
    for_lanes (fun l ->
        write_f d l (Util.Float32.mad (eval_f ctx w l a) (eval_f ctx w l b) (eval_f ctx w l cc)));
    alu_done d;
    lat.issue
  | Instr.I2 (op, d, a, b) ->
    let f =
      match op with
      | Instr.IAdd -> ( + )
      | Instr.ISub -> ( - )
      | Instr.IMul -> ( * )
      | Instr.IDiv -> fun a b -> if b = 0 then 0 else a / b
      | Instr.IRem -> fun a b -> if b = 0 then 0 else a mod b
      | Instr.IMin -> min
      | Instr.IMax -> max
      | Instr.IAnd -> ( land )
      | Instr.IOr -> ( lor )
      | Instr.IXor -> ( lxor )
      | Instr.IShl -> ( lsl )
      | Instr.IShr -> ( asr )
    in
    for_lanes (fun l -> write_i d l (f (eval_i ctx w l a) (eval_i ctx w l b)));
    alu_done d;
    lat.issue
  | Instr.Imad (d, a, b, cc) ->
    for_lanes (fun l ->
        write_i d l ((eval_i ctx w l a * eval_i ctx w l b) + eval_i ctx w l cc));
    alu_done d;
    lat.issue
  | Instr.Cvt_f2i (d, a) ->
    for_lanes (fun l -> write_i d l (int_of_float (eval_f ctx w l a)));
    alu_done d;
    lat.issue
  | Instr.Cvt_i2f (d, a) ->
    for_lanes (fun l -> write_f d l (Util.Float32.of_int (eval_i ctx w l a)));
    alu_done d;
    lat.issue
  | Instr.Setp (cmp, ty, d, a, b) ->
    let test c = match cmp with
      | Instr.CEq -> c = 0
      | Instr.CNe -> c <> 0
      | Instr.CLt -> c < 0
      | Instr.CLe -> c <= 0
      | Instr.CGt -> c > 0
      | Instr.CGe -> c >= 0
    in
    (match ty with
    | Reg.F32 ->
      for_lanes (fun l ->
          write_p d l (test (Float.compare (eval_f ctx w l a) (eval_f ctx w l b))))
    | Reg.S32 | Reg.Pred ->
      for_lanes (fun l -> write_p d l (test (compare (eval_i ctx w l a) (eval_i ctx w l b)))));
    alu_done d;
    lat.issue
  | Instr.Selp (d, a, b, p) ->
    (match Reg.ty d with
    | Reg.F32 ->
      for_lanes (fun l ->
          write_f d l (if eval_p ctx w l p then eval_f ctx w l a else eval_f ctx w l b))
    | Reg.S32 ->
      for_lanes (fun l ->
          write_i d l (if eval_p ctx w l p then eval_i ctx w l a else eval_i ctx w l b))
    | Reg.Pred ->
      for_lanes (fun l ->
          write_p d l (if eval_p ctx w l p then eval_p ctx w l a else eval_p ctx w l b)));
    alu_done d;
    lat.issue
  | Instr.Pnot (d, a) ->
    for_lanes (fun l -> write_p d l (not (eval_p ctx w l a)));
    alu_done d;
    lat.issue
  | Instr.P2 (op, d, a, b) ->
    let f =
      match op with
      | Instr.PAnd -> ( && )
      | Instr.POr -> ( || )
      | Instr.PXor -> ( <> )
    in
    for_lanes (fun l -> write_p d l (f (eval_p ctx w l a) (eval_p ctx w l b)));
    alu_done d;
    lat.issue
  | Instr.Ld (space, d, { base; offset }) ->
    let addrs = Array.make 32 0 in
    for_lanes (fun l -> addrs.(l) <- eval_i ctx w l base + offset);
    (match space with
    | Instr.Global ->
      for_lanes (fun l ->
          let v = Device.read_global ctx.dev addrs.(l) in
          match Reg.ty d with
          | Reg.F32 -> w.fregs.(fidx d l) <- v
          | Reg.S32 -> w.iregs.(fidx d l) <- int_of_float v
          | Reg.Pred -> w.pregs.(fidx d l) <- v <> 0.0);
      let tx0, by0 = coalesce addrs mask 0 in
      let tx1, by1 = coalesce addrs mask 1 in
      count_tx (tx0 + tx1)
        ((if tx0 = 1 then by0 else 64 * tx0) + if tx1 = 1 then by1 else 64 * tx1);
      let cost0 = if tx0 = 1 then ctx.lat.coalesced_tx else ctx.lat.uncoalesced_tx in
      let cost1 = if tx1 = 1 then ctx.lat.coalesced_tx else ctx.lat.uncoalesced_tx in
      let done0 = charge_channel ctx (c + lat.issue) ~tx:tx0 ~bytes:(if tx0 = 1 then by0 else 64 * tx0) ~tx_cost:cost0 in
      let done1 = charge_channel ctx done0 ~tx:tx1 ~bytes:(if tx1 = 1 then by1 else 64 * tx1) ~tx_cost:cost1 in
      set_ready w d (done1 + lat.global);
      lat.issue
    | Instr.Shared ->
      let sh = w.blk.shared in
      for_lanes (fun l ->
          let wi = addrs.(l) lsr 2 in
          if wi < 0 || wi >= Array.length sh then
            launch_error "shared load out of bounds (addr %d)" addrs.(l);
          let v = sh.(wi) in
          match Reg.ty d with
          | Reg.F32 -> w.fregs.(fidx d l) <- v
          | Reg.S32 -> w.iregs.(fidx d l) <- int_of_float v
          | Reg.Pred -> w.pregs.(fidx d l) <- v <> 0.0);
      let deg = max (bank_conflict_degree addrs mask 0) (bank_conflict_degree addrs mask 1) in
      count_replays deg;
      ctx.sm.conflict_extra <- ctx.sm.conflict_extra + ((deg - 1) * lat.issue);
      set_ready w d (c + lat.shared);
      lat.issue * deg
    | Instr.Const ->
      let distinct = Hashtbl.create 8 in
      for_lanes (fun l ->
          Hashtbl.replace distinct addrs.(l) ();
          let v = Device.read_const ctx.dev addrs.(l) in
          match Reg.ty d with
          | Reg.F32 -> w.fregs.(fidx d l) <- v
          | Reg.S32 -> w.iregs.(fidx d l) <- int_of_float v
          | Reg.Pred -> w.pregs.(fidx d l) <- v <> 0.0);
      let deg = max 1 (Hashtbl.length distinct) in
      count_replays deg;
      set_ready w d (c + lat.const_hit);
      lat.issue * deg
    | Instr.Local ->
      (* Local memory is off-chip but laid out interleaved per thread,
         so hardware coalesces it; model as one 64B tx per half-warp. *)
      let lm = w.blk.local in
      for_lanes (fun l ->
          let tid = (w.wid * 32) + l in
          let wi = (tid * ctx.ck.lmem_words) + (addrs.(l) lsr 2) in
          if addrs.(l) lsr 2 >= ctx.ck.lmem_words then
            launch_error "local load out of bounds (addr %d)" addrs.(l);
          let v = lm.(wi) in
          match Reg.ty d with
          | Reg.F32 -> w.fregs.(fidx d l) <- v
          | Reg.S32 -> w.iregs.(fidx d l) <- int_of_float v
          | Reg.Pred -> w.pregs.(fidx d l) <- v <> 0.0);
      let halves = (if mask land 0xFFFF <> 0 then 1 else 0) + if mask land 0xFFFF0000 <> 0 then 1 else 0 in
      count_tx halves (64 * halves);
      let done_ =
        charge_channel ctx (c + lat.issue) ~tx:halves ~bytes:(64 * halves)
          ~tx_cost:ctx.lat.coalesced_tx
      in
      set_ready w d (done_ + lat.global);
      lat.issue)
  | Instr.St (space, { base; offset }, v) ->
    let addrs = Array.make 32 0 in
    for_lanes (fun l -> addrs.(l) <- eval_i ctx w l base + offset);
    let value l =
      match v with
      | Instr.Reg r when Reg.ty r = Reg.S32 -> float_of_int (eval_i ctx w l v)
      | Instr.Reg _ | Instr.Imm_f _ -> eval_f ctx w l v
      | Instr.Imm_i i -> float_of_int i
      | Instr.Spec s -> float_of_int (spec_int ctx w l s)
      | Instr.Par p -> param_flt ctx p
    in
    (match space with
    | Instr.Global ->
      for_lanes (fun l -> Device.write_global ctx.dev addrs.(l) (value l));
      let tx0, by0 = coalesce addrs mask 0 in
      let tx1, by1 = coalesce addrs mask 1 in
      count_tx (tx0 + tx1)
        ((if tx0 = 1 then by0 else 64 * tx0) + if tx1 = 1 then by1 else 64 * tx1);
      let cost0 = if tx0 = 1 then ctx.lat.coalesced_tx else ctx.lat.uncoalesced_tx in
      let cost1 = if tx1 = 1 then ctx.lat.coalesced_tx else ctx.lat.uncoalesced_tx in
      let done0 = charge_channel ctx (c + lat.issue) ~tx:tx0 ~bytes:(if tx0 = 1 then by0 else 64 * tx0) ~tx_cost:cost0 in
      ignore (charge_channel ctx done0 ~tx:tx1 ~bytes:(if tx1 = 1 then by1 else 64 * tx1) ~tx_cost:cost1);
      lat.issue
    | Instr.Shared ->
      let sh = w.blk.shared in
      for_lanes (fun l ->
          let wi = addrs.(l) lsr 2 in
          if wi < 0 || wi >= Array.length sh then
            launch_error "shared store out of bounds (addr %d)" addrs.(l);
          sh.(wi) <- value l);
      let deg = max (bank_conflict_degree addrs mask 0) (bank_conflict_degree addrs mask 1) in
      count_replays deg;
      ctx.sm.conflict_extra <- ctx.sm.conflict_extra + ((deg - 1) * lat.issue);
      lat.issue * deg
    | Instr.Const -> launch_error "stores to constant memory are not allowed"
    | Instr.Local ->
      let lm = w.blk.local in
      for_lanes (fun l ->
          let tid = (w.wid * 32) + l in
          if addrs.(l) lsr 2 >= ctx.ck.lmem_words then
            launch_error "local store out of bounds (addr %d)" addrs.(l);
          lm.((tid * ctx.ck.lmem_words) + (addrs.(l) lsr 2)) <- value l);
      let halves = (if mask land 0xFFFF <> 0 then 1 else 0) + if mask land 0xFFFF0000 <> 0 then 1 else 0 in
      count_tx halves (64 * halves);
      ignore
        (charge_channel ctx (c + lat.issue) ~tx:halves ~bytes:(64 * halves)
           ~tx_cost:ctx.lat.coalesced_tx);
      lat.issue)
  | Instr.Bar ->
    (* Handled by the scheduler (needs block-wide state); executing it
       here is a bug. *)
    assert false

(* ------------------------------------------------------------------ *)
(* SIMT control flow                                                   *)
(* ------------------------------------------------------------------ *)

let effective_mask (w : warp) (f : frame) = f.mask land lnot w.exited land w.valid_mask

(* Pop frames whose pc reached their reconvergence point or whose lanes
   have all exited. *)
let rec normalize (w : warp) =
  match w.stack with
  | [] -> w.finished <- true
  | f :: rest ->
    if effective_mask w f = 0 || (f.off = 0 && f.bi = f.rpc && f.rpc >= 0) then begin
      w.stack <- rest;
      normalize w
    end

(* Execute the terminator of the current block for warp [w]. *)
let exec_term ctx (w : warp) (f : frame) (mask : int) (c : int) : int =
  let ck = ctx.ck in
  (match ck.blocks.(f.bi).cterm with
  | CJump target ->
    f.bi <- target;
    f.off <- 0;
    normalize w
  | CRet ->
    w.exited <- w.exited lor mask;
    w.stack <- List.tl w.stack;
    normalize w
  | CBr { pred; negate; if_true; if_false; reconv } ->
    let taken = ref 0 in
    for lane = 0 to 31 do
      if mask land (1 lsl lane) <> 0 then
        let p = eval_p ctx w lane (Instr.Reg pred) in
        if p <> negate then taken := !taken lor (1 lsl lane)
    done;
    let not_taken = mask land lnot !taken in
    if not_taken = 0 then begin
      f.bi <- if_true;
      f.off <- 0;
      normalize w
    end
    else if !taken = 0 then begin
      f.bi <- if_false;
      f.off <- 0;
      normalize w
    end
    else begin
      (* Divergence: current frame becomes the continuation at the
         reconvergence point; the two sides run first (taken on top). *)
      f.bi <- reconv;
      f.off <- 0;
      w.stack <-
        { bi = if_true; off = 0; rpc = reconv; mask = !taken }
        :: { bi = if_false; off = 0; rpc = reconv; mask = not_taken }
        :: w.stack;
      (* The continuation frame must not be popped by the pc = rpc rule,
         which only triggers for frames with rpc >= 0 — the pushed
         side frames.  [f] keeps its own rpc. *)
      normalize w
    end);
  ignore c;
  ctx.lat.issue

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

(* Scoreboard-depth bookkeeping: a warp may track only
   [Arch.scoreboard_depth] outstanding long-latency results; issuing
   another long-latency instruction first waits for the oldest to
   retire. *)
let drop_retired (w : warp) (c : int) =
  let k = ref 0 in
  for idx = 0 to w.n_pending - 1 do
    if w.pending.(idx) > c then begin
      w.pending.(!k) <- w.pending.(idx);
      incr k
    end
  done;
  w.n_pending <- !k

(* Earliest cycle at which a slot frees (the minimum pending time). *)
let earliest_slot (w : warp) =
  let m = ref max_int in
  for idx = 0 to w.n_pending - 1 do
    if w.pending.(idx) < !m then m := w.pending.(idx)
  done;
  !m

let record_pending (w : warp) (completion : int) =
  if w.n_pending < Array.length w.pending then begin
    w.pending.(w.n_pending) <- completion;
    w.n_pending <- w.n_pending + 1
  end

let is_long_latency (i : Instr.t) =
  Instr.is_long_latency_mem i || Instr.is_sfu i

(* Next instruction of a warp: either a body instruction or the
   terminator of the current block. *)
let next_instr ctx (w : warp) : [ `Body of Instr.t | `Term ] =
  let f = List.hd w.stack in
  let b = ctx.ck.blocks.(f.bi) in
  if f.off < Array.length b.body then `Body b.body.(f.off) else `Term

(* Earliest cycle warp [w] could issue its next instruction, given its
   scoreboard (ignores the SM issue pipe). *)
let warp_earliest ctx (w : warp) : int =
  if not ctx.timing then w.wake
  else
    match next_instr ctx w with
    | `Term ->
      let f = List.hd w.stack in
      let rdy =
        match ctx.ck.blocks.(f.bi).cterm with
        | CBr { pred; _ } -> operand_ready w (Instr.Reg pred)
        | CJump _ | CRet -> 0
      in
      max w.wake rdy
    | `Body ins ->
      let e =
        List.fold_left (fun acc o ->
            match o with Instr.Reg _ -> max acc (operand_ready w o) | _ -> acc)
          w.wake (Instr.operands ins)
      in
      if is_long_latency ins then begin
        drop_retired w e;
        if w.n_pending >= Array.length w.pending then max e (earliest_slot w) else e
      end
      else e

(* Issue one instruction for warp [w] at cycle [c].  Returns the
   number of cycles the instruction occupies the issue pipe (which
   throttles both this warp and, via the scheduler, the whole SM —
   SFU ops, bank conflicts and divergent constant accesses all
   serialize here). *)
let issue ctx (w : warp) (c : int) : int =
  let f = List.hd w.stack in
  let mask = effective_mask w f in
  ctx.sm.n_warp_instrs <- ctx.sm.n_warp_instrs + 1;
  match next_instr ctx w with
  | `Term ->
    let cost = exec_term ctx w f mask c in
    w.wake <- c + cost;
    cost
  | `Body Instr.Bar ->
    f.off <- f.off + 1;
    w.at_barrier <- true;
    w.blk.arrived <- w.blk.arrived + 1;
    if w.blk.arrived >= w.blk.live_warps then begin
      (* All live warps arrived: release everyone. *)
      w.blk.arrived <- 0;
      List.iter
        (fun w' ->
          if not w'.finished then begin
            w'.at_barrier <- false;
            w'.wake <- max w'.wake (c + ctx.lat.issue)
          end)
        w.blk.warps
    end;
    ctx.lat.issue
  | `Body ins ->
    let sc =
      let row = ctx.sites.(f.bi) in
      if f.off < Array.length row then row.(f.off) else None
    in
    let cost = exec_instr ctx w mask c sc ins in
    f.off <- f.off + 1;
    w.wake <- c + cost;
    if ctx.timing && is_long_latency ins then begin
      drop_retired w c;
      (match Instr.def ins with
      | Some d -> record_pending w (operand_ready w (Instr.Reg d))
      | None -> ())
    end;
    cost

(* ------------------------------------------------------------------ *)
(* Launch                                                              *)
(* ------------------------------------------------------------------ *)

let make_block ctx (cta_x : int) (cta_y : int) (start_cycle : int) : block_st =
  let ck = ctx.ck in
  let tpb = ctx.bdim_x * ctx.bdim_y in
  let n_warps = Util.Stats.cdiv tpb 32 in
  let blk =
    {
      cta_x;
      cta_y;
      shared = Array.make (max 1 ck.smem_words) 0.0;
      local = (if ck.lmem_words > 0 then Array.make (tpb * ck.lmem_words) 0.0 else [||]);
      arrived = 0;
      live_warps = n_warps;
      warps = [];
    }
  in
  let warps =
    List.init n_warps (fun wid ->
        let lanes = min 32 (tpb - (wid * 32)) in
        let valid_mask = if lanes = 32 then full_mask else (1 lsl lanes) - 1 in
        {
          wid;
          valid_mask;
          fregs = Array.make (max 1 ck.nf * 32) 0.0;
          iregs = Array.make (max 1 ck.nr * 32) 0;
          pregs = Array.make (max 1 ck.np * 32) false;
          f_ready = Array.make (max 1 ck.nf) 0;
          i_ready = Array.make (max 1 ck.nr) 0;
          p_ready = Array.make (max 1 ck.np) 0;
          stack = [ { bi = 0; off = 0; rpc = -1; mask = full_mask } ];
          exited = 0;
          wake = start_cycle;
          at_barrier = false;
          finished = false;
          pending = Array.make Arch.scoreboard_depth 0;
          n_pending = 0;
          blk;
        })
  in
  blk.warps <- warps;
  blk

(* Run [block_coords] through one SM with at most [b_sm] resident
   blocks; returns the cycle the last block finishes. *)
let run_sm ctx (block_coords : (int * int) list) (b_sm : int) : int =
  let pending = ref block_coords in
  let resident : warp list ref = ref [] in
  let resident_blocks = ref 0 in
  let finish_cycle = ref 0 in
  let admit c =
    while !resident_blocks < b_sm && !pending <> [] do
      match !pending with
      | [] -> ()
      | (bx, by) :: rest ->
        pending := rest;
        let blk = make_block ctx bx by c in
        incr resident_blocks;
        resident := !resident @ blk.warps
    done
  in
  admit 0;
  let continue_ = ref (!resident <> []) in
  while !continue_ do
    (* Pick the runnable warp with the smallest earliest-issue cycle. *)
    let best = ref None in
    List.iter
      (fun w ->
        if (not w.finished) && not w.at_barrier then begin
          let e = warp_earliest ctx w in
          match !best with
          | Some (_, e') when e' <= e -> ()
          | _ -> best := Some (w, e)
        end)
      !resident;
    (match !best with
    | None ->
      if List.exists (fun w -> not w.finished) !resident then
        failwith "Sim: deadlock — all live warps waiting at a barrier"
      else continue_ := false
    | Some (w, e) ->
      let c = if ctx.timing then max e ctx.sm.issue_free else e in
      let cost = issue ctx w c in
      if ctx.timing then ctx.sm.issue_free <- c + cost;
      if w.finished then begin
        let blk = w.blk in
        blk.live_warps <- blk.live_warps - 1;
        (* A warp exiting while others wait at the barrier can now
           satisfy it. *)
        if blk.live_warps > 0 && blk.arrived >= blk.live_warps then begin
          blk.arrived <- 0;
          List.iter
            (fun w' ->
              if not w'.finished then begin
                w'.at_barrier <- false;
                w'.wake <- max w'.wake (c + ctx.lat.issue)
              end)
            blk.warps
        end;
        if blk.live_warps = 0 then begin
          finish_cycle := max !finish_cycle (c + ctx.lat.issue);
          resident := List.filter (fun w' -> w'.blk != blk) !resident;
          decr resident_blocks;
          admit (c + ctx.lat.issue)
        end
      end;
      if !resident = [] && !pending = [] then continue_ := false);
    if ctx.timing then finish_cycle := max !finish_cycle ctx.sm.issue_free
  done;
  !finish_cycle

let default_max_blocks = 24

(* Launch a kernel.  In [Timing] mode, simulates the blocks assigned to
   one representative SM (capped) and extrapolates; in [Functional]
   mode executes every block of the grid. *)
let run ?(mode = Functional) ?(limits = Arch.g80) ?(latencies = Arch.g80_latencies)
    (dev : Device.t) (l : launch) : stats =
  let gx, gy = l.grid in
  let bx, by = l.block in
  let tpb = bx * by in
  if gx <= 0 || gy <= 0 then launch_error "empty grid (%d x %d)" gx gy;
  if tpb <= 0 then launch_error "empty block (%d x %d)" bx by;
  if tpb > limits.Arch.max_threads_per_block then
    launch_error "block of %d threads exceeds the %d-thread limit" tpb
      limits.Arch.max_threads_per_block;
  if l.kernel.Prog.smem_words * 4 > limits.Arch.smem_per_sm then
    launch_error "shared memory (%d bytes) exceeds per-SM capacity" (l.kernel.Prog.smem_words * 4);
  let resource = Ptx.Resource.of_kernel l.kernel in
  let occ =
    Arch.occupancy ~limits ~threads_per_block:tpb ~regs_per_thread:resource.regs_per_thread
      ~smem_per_block:resource.smem_bytes_per_block ()
  in
  let timing = match mode with Timing _ -> true | Functional -> false in
  if timing && not (Arch.is_valid occ) then
    launch_error "invalid executable: 0 blocks fit an SM (%s limited)" occ.limiter;
  let ck = compile_kernel l.kernel l.args in
  let sm =
    { issue_free = 0; mem_free = 0; n_warp_instrs = 0; n_tx = 0; n_bytes = 0; conflict_extra = 0 }
  in
  let site_rows =
    List.map
      (fun (b : Prog.block) ->
        Array.of_list
          (List.mapi
             (fun i (ins : Instr.t) ->
               match ins with
               | Instr.Ld (sp, _, _) | Instr.St (sp, _, _) ->
                 Some
                   {
                     sc_label = b.label;
                     sc_index = i;
                     sc_space = sp;
                     sc_execs = 0;
                     sc_tx = 0;
                     sc_bytes = 0;
                     sc_replays = 0;
                   }
               | _ -> None)
             b.body))
      l.kernel.Prog.blocks
  in
  let site_counters = List.concat_map (fun row -> List.filter_map Fun.id (Array.to_list row)) site_rows in
  let ctx =
    {
      dev;
      ck;
      lat = latencies;
      bdim_x = bx;
      bdim_y = by;
      gdim_x = gx;
      gdim_y = gy;
      timing;
      sm;
      sites = Array.of_list site_rows;
    }
  in
  let total_blocks = gx * gy in
  let all_coords =
    List.init total_blocks (fun i -> (i mod gx, i / gx))
  in
  match mode with
  | Functional ->
    (* Execute every block; blocks are independent, so one at a time. *)
    List.iter (fun coord -> ignore (run_sm ctx [ coord ] 1)) all_coords;
    {
      cycles = 0.0;
      time_s = 0.0;
      total_blocks;
      blocks_simulated = total_blocks;
      warp_instrs = sm.n_warp_instrs;
      gmem_transactions = sm.n_tx;
      gmem_bytes = sm.n_bytes;
      bank_conflict_extra = sm.conflict_extra;
      occupancy = occ;
      regs_per_thread = resource.regs_per_thread;
      site_counters;
    }
  | Timing { max_blocks } ->
    (* Blocks are distributed round-robin over SMs; simulate SM 0's
       share, capped, and extrapolate. *)
    let assigned =
      List.filteri (fun i _ -> i mod limits.Arch.num_sms = 0) all_coords
    in
    let n_assigned = List.length assigned in
    let n_sim = min n_assigned (max 1 max_blocks) in
    (* Simulate whole residency waves where possible: a trailing
       partial wave under-fills the SM and, in a small sample, biases
       the linear extrapolation upward far more than the real run's
       single tail wave does. *)
    let n_sim =
      if n_sim >= occ.blocks_per_sm && n_sim < n_assigned then
        n_sim / occ.blocks_per_sm * occ.blocks_per_sm
      else n_sim
    in
    let simulated = List.filteri (fun i _ -> i < n_sim) assigned in
    let cycles_sim = run_sm ctx simulated occ.blocks_per_sm in
    let scale = float_of_int n_assigned /. float_of_int n_sim in
    let cycles = float_of_int cycles_sim *. scale in
    {
      cycles;
      time_s = cycles /. Arch.clock_hz;
      total_blocks;
      blocks_simulated = n_sim;
      warp_instrs = sm.n_warp_instrs;
      gmem_transactions = sm.n_tx;
      gmem_bytes = sm.n_bytes;
      bank_conflict_extra = sm.conflict_extra;
      occupancy = occ;
      regs_per_thread = resource.regs_per_thread;
      site_counters;
    }
