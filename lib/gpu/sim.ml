(* Cycle-approximate simulator for the GeForce 8800 SM.

   Models the first-order mechanisms that the paper's optimization
   space exercises (section 2.1/2.2):

   - warps of 32 threads issuing SIMD over 8 SPs (4 cycles per issue);
   - zero-overhead warp interleaving: any ready warp from any resident
     block may issue next; the SM stalls only when no warp is ready;
   - an in-order per-warp scoreboard: an instruction waits until its
     source registers' ready-cycles have passed (register RAW latency
     hides behind other warps or behind independent instructions of the
     same warp — the ILP that unrolling/prefetching create);
   - global memory latency plus a per-SM bandwidth channel with
     half-warp coalescing (contiguous 64B-aligned accesses become one
     transaction; anything else one transaction per active lane);
   - shared-memory bank conflicts (16 banks, conflict degree multiplies
     issue occupancy) and single-ported constant-cache broadcast;
   - barrier semantics parking warps until all live warps of the block
     arrive;
   - block residency limited by occupancy (B_SM), with finished blocks
     replaced from the pending queue.

   Execution is functional as well as timed: instructions compute real
   binary32 values against device memory, so the same engine validates
   kernel outputs and measures performance.  Large grids are simulated
   for a bounded number of blocks on one representative SM and
   extrapolated linearly (the paper observes linear scaling in input
   size).

   The execution core is compiled, not interpretive: [compile_kernel]
   pre-decodes every instruction into a record of closures with operand
   accessors, write paths and latency classes resolved once per launch,
   so the per-issue path performs no instruction-set dispatch, no
   operand validation and no allocation.  The scheduler keeps runnable
   warps in a min-heap keyed by earliest-issue cycle (see [run_sm]);
   a linear-scan reference scheduler is retained behind [?scheduler]
   for differential testing.  Both produce bit-identical statistics. *)

open Ptx

exception Launch_error of string

let launch_error fmt = Printf.ksprintf (fun s -> raise (Launch_error s)) fmt

(* Watchdog: a launch whose generated code never terminates (a broken
   unroll bound, a mutated loop) would otherwise spin the simulator
   forever.  [run ?budget] caps the warp instructions one launch may
   issue; exceeding the cap aborts the launch with [Watchdog] instead
   of hanging the sweep.  The budget is a limit on simulator work, not
   a timing input: a launch that stays under it produces bit-identical
   statistics whatever the cap. *)
exception Watchdog of { issued : int; budget : int }

let () =
  Printexc.register_printer (function
    | Watchdog { issued; budget } ->
      Some
        (Printf.sprintf "Gpu.Sim.Watchdog(issued %d warp instructions, budget %d)" issued budget)
    | _ -> None)

(* Default budget = warps simulated x this per-warp cap.  The cap is
   process-wide (settable, or via GPUOPT_WATCHDOG_PER_WARP) so harnesses
   can tighten it without threading a parameter through every caller;
   the default leaves real kernels orders of magnitude of headroom —
   the heaviest app kernel in the repo issues ~2e4 instructions per
   warp. *)
let default_watchdog_per_warp = 1_000_000

let watchdog_per_warp_cap =
  Atomic.make
    (match Sys.getenv_opt "GPUOPT_WATCHDOG_PER_WARP" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with Some n when n > 0 -> n | _ -> default_watchdog_per_warp)
    | None -> default_watchdog_per_warp)

let watchdog_per_warp () = Atomic.get watchdog_per_warp_cap

let set_watchdog_per_warp n =
  if n < 1 then invalid_arg "Sim.set_watchdog_per_warp: cap must be >= 1";
  Atomic.set watchdog_per_warp_cap n

(* The G80's bank count, the historical default of the standalone
   [bank_conflict_degree] entry point (the launch path reads the count
   from its [Arch.t] instead). *)
let g80_banks = 16

type arg = I of int | F of float | Buf of Device.buffer

type launch = {
  kernel : Prog.t;
  grid : int * int;  (* blocks in x, y *)
  block : int * int;  (* threads in x, y *)
  args : (string * arg) list;
}

type mode =
  | Functional  (* execute every block; no occupancy requirement *)
  | Timing of { max_blocks : int }  (* cap simulated blocks on the measured SM *)

(* Warp scheduler selection.  [Heap] is the production scheduler: a
   min-heap of runnable warps keyed by (earliest issue cycle, admission
   order).  [Scan] is the pre-heap reference — a linear scan over the
   resident warps per issue — kept for differential testing; both are
   bit-identical in every statistic. *)
type scheduler = Heap | Scan

(* Dynamic counters for one memory instruction (Ld/St), identified by
   its (block label, body index) in the launched program.  [sc_tx] and
   [sc_bytes] accumulate for off-chip spaces (global/local); [sc_replays]
   accumulates serialization beyond the first issue slot for on-chip
   spaces (shared bank conflicts, constant-cache non-broadcast). *)
type site_counter = {
  sc_label : string;
  sc_index : int;
  sc_space : Instr.space;
  mutable sc_execs : int;  (* warp executions with a non-empty mask *)
  mutable sc_tx : int;
  mutable sc_bytes : int;
  mutable sc_replays : int;
}

type stats = {
  cycles : float;  (* extrapolated kernel cycles *)
  time_s : float;  (* cycles / arch clock *)
  total_blocks : int;
  blocks_simulated : int;
  warp_instrs : int;  (* issued in the simulated portion *)
  gmem_transactions : int;
  gmem_bytes : int;
  bank_conflict_extra : int;  (* extra issue cycles lost to conflicts *)
  occupancy : Arch.occupancy;
  regs_per_thread : int;
  site_counters : site_counter list;  (* per Ld/St, in program order *)
}

(* ------------------------------------------------------------------ *)
(* Process-wide throughput counters                                    *)
(* ------------------------------------------------------------------ *)

(* Cumulative over all launches in the process, across domains; callers
   (the tuner's sweep statistics, the perf bench) snapshot deltas to
   derive warp-instructions-per-second against their own wall clock. *)
let instrs_issued_total = Atomic.make 0
let runs_total = Atomic.make 0
let warp_instrs_issued () = Atomic.get instrs_issued_total
let sim_runs () = Atomic.get runs_total

(* ------------------------------------------------------------------ *)
(* Warp and block state                                                *)
(* ------------------------------------------------------------------ *)

type block_st = {
  cta_x : int;
  cta_y : int;
  shared : float array;
  local : float array;  (* per-thread local memory, thread-major *)
  mutable arrived : int;  (* warps waiting at the barrier *)
  mutable live_warps : int;
  mutable warps : warp array;  (* filled after creation *)
}

and warp = {
  wid : int;
  seq : int;  (* admission order on the SM; the scheduler tie-break *)
  valid_mask : int;
  fregs : float array;  (* reg-major: fregs.(r * 32 + lane) *)
  iregs : int array;
  pregs : bool array;
  f_ready : int array;  (* per-register operand ready cycle *)
  i_ready : int array;
  p_ready : int array;
  (* Divergence stack, array-backed: frame [i] is (s_bi, s_off, s_rpc,
     s_mask).(i); the top of stack is index [sp], -1 when empty. *)
  mutable s_bi : int array;
  mutable s_off : int array;
  mutable s_rpc : int array;
  mutable s_mask : int array;
  mutable sp : int;
  mutable exited : int;
  mutable wake : int;
  mutable at_barrier : bool;
  mutable finished : bool;
  mutable in_heap : bool;
  pending : int array;  (* completion cycles of in-flight long-latency ops *)
  mutable n_pending : int;
  blk : block_st;
}

let full_mask = 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* SM state                                                            *)
(* ------------------------------------------------------------------ *)

type sm = {
  mutable issue_free : int;  (* next cycle the issue pipe is free *)
  mutable mem_free : int;  (* next cycle the memory channel is free *)
  mutable n_warp_instrs : int;
  mutable n_tx : int;
  mutable n_bytes : int;
  mutable conflict_extra : int;
}

(* Per-launch environment: device, launch geometry, and the scratch
   buffers of the memory path.  [addrs] and [per_bank] are reused by
   every memory access of the launch, so the hot path allocates
   nothing; each launch owns its env, keeping parallel domains safe. *)
type env = {
  dev : Device.t;
  arch : Arch.t;
  lat : Arch.latencies;  (* = arch.latencies, kept flat for the hot path *)
  bdim_x : int;
  bdim_y : int;
  gdim_x : int;
  gdim_y : int;
  timing : bool;
  sm : sm;
  budget : int;  (* watchdog: max warp instructions this launch may issue *)
  addrs : int array;  (* 32 lane addresses of the access in flight *)
  per_bank : int array;  (* arch.shared_banks counters *)
}

(* ------------------------------------------------------------------ *)
(* Memory access timing                                                *)
(* ------------------------------------------------------------------ *)

(* Half-warp coalescing, G80 rules: one 64-byte transaction iff the
   k-th active lane of the half-warp reads the k-th word of a 64-byte
   aligned segment; otherwise one 32-byte transaction per active lane.
   Packed result: (transactions lsl 16) lor bytes — the hot path calls
   this form so no tuple is allocated per access. *)
let coalesce_packed (addrs : int array) (mask : int) (half : int) : int =
  let lo = half * 16 in
  let n_active = ref 0 in
  let ok = ref true in
  let seg_base = ref min_int in
  for l = lo to lo + 15 do
    if mask land (1 lsl l) <> 0 then begin
      incr n_active;
      let expect_base = addrs.(l) - (4 * (l - lo)) in
      if !seg_base = min_int then seg_base := expect_base
      else if !seg_base <> expect_base then ok := false
    end
  done;
  if !n_active = 0 then 0
  else if !ok && !seg_base land 63 = 0 then (1 lsl 16) lor 64
  else (!n_active lsl 16) lor (32 * !n_active)

(* Tupled form of [coalesce_packed]: (transactions, bytes). *)
let coalesce (addrs : int array) (mask : int) (half : int) : int * int =
  let p = coalesce_packed addrs mask half in
  (p lsr 16, p land 0xFFFF)

(* Charge [tx] transactions to the SM memory channel starting no
   earlier than [c]; returns the cycle the last transaction completes
   its channel occupancy. *)
let charge_channel env c ~tx ~bytes ~tx_cost =
  let sm = env.sm in
  sm.n_tx <- sm.n_tx + tx;
  sm.n_bytes <- sm.n_bytes + bytes;
  if not env.timing then c
  else begin
    sm.mem_free <- max sm.mem_free c + (tx * tx_cost);
    sm.mem_free
  end

(* Shared-memory conflict degree over a half-warp: the maximum number
   of *distinct* addresses hitting one of the banks (same-address lanes
   broadcast).  [per_bank] is caller-provided scratch, one counter per
   bank (its length, a power of two, IS the bank count); distinctness
   is a pairwise check over the at most 16 active lanes, so no table
   is allocated. *)
let bank_degree (per_bank : int array) (addrs : int array) (mask : int) (half : int) : int =
  let lo = half * 16 in
  Array.fill per_bank 0 (Array.length per_bank) 0;
  let deg = ref 1 in
  for l = lo to lo + 15 do
    if mask land (1 lsl l) <> 0 then begin
      let a = addrs.(l) in
      let dup = ref false in
      for m = lo to l - 1 do
        if (not !dup) && mask land (1 lsl m) <> 0 && addrs.(m) = a then dup := true
      done;
      if not !dup then begin
        let bank = a lsr 2 land (Array.length per_bank - 1) in
        per_bank.(bank) <- per_bank.(bank) + 1;
        if per_bank.(bank) > !deg then deg := per_bank.(bank)
      end
    end
  done;
  !deg

let bank_conflict_degree ?(banks = g80_banks) (addrs : int array) (mask : int) (half : int) :
    int =
  bank_degree (Array.make banks 0) addrs mask half

(* Distinct addresses among active lanes of the whole warp (constant
   cache broadcast: one issue slot per distinct address). *)
let distinct_addresses (addrs : int array) (mask : int) : int =
  let n = ref 0 in
  for l = 0 to 31 do
    if mask land (1 lsl l) <> 0 then begin
      let a = addrs.(l) in
      let dup = ref false in
      for m = 0 to l - 1 do
        if (not !dup) && mask land (1 lsl m) <> 0 && addrs.(m) = a then dup := true
      done;
      if not !dup then incr n
    end
  done;
  !n

(* ------------------------------------------------------------------ *)
(* Compiled kernel form                                                *)
(* ------------------------------------------------------------------ *)

(* One pre-decoded instruction.  Everything static is resolved at
   compile time: operand accessors (register-file offsets, parameter
   values, special-register formulas), the destination write path, the
   latency class and, for memory accesses, the per-site counter.  The
   issue loop only consults these fields. *)
type dinstr = {
  d_ready : warp -> int;  (* max source-register ready cycle *)
  d_exec : warp -> int -> int -> int;  (* w mask c -> issue-pipe cost *)
  d_long : bool;  (* occupies a scoreboard slot (global/local Ld, SFU) *)
  d_barrier : bool;
  d_def_ready : warp -> int;  (* destination ready cycle, read post-exec *)
}

type dterm =
  | DJump of int
  | DRet
  | DBr of { p_idx : int; p_off : int; negate : bool; if_true : int; if_false : int; reconv : int }

type dblock = { dbody : dinstr array; dterm : dterm }

type pval = Pint of int | Pflt of float

(* Operand source descriptors, resolved once at decode: a register-file
   offset, a constant folded from immediates and parameters, or — for
   special registers only — a generic accessor.  The readers below are
   small enough for the non-flambda inliner, so lane loops touch the
   register files and constants directly: no per-lane closure calls,
   and float values stay unboxed through the arithmetic. *)
type fsrc = FR of int | FK of float | FG of (warp -> int -> float)
type isrc = IR of int | IK of int | IG of (warp -> int -> int)
type psrc = PR of int | PK of bool

let[@inline] get_i (s : isrc) (ir : int array) (w : warp) (l : int) : int =
  match s with IR o -> ir.(o + l) | IK k -> k | IG g -> g w l

let[@inline] get_p (s : psrc) (pr : bool array) (l : int) : bool =
  match s with PR o -> pr.(o + l) | PK k -> k

(* Materialize a float source into a flat 32-lane buffer: a single
   unboxed block copy for registers, a fill for constants; only special
   registers take the per-lane path.  Arithmetic loops then read and
   write float arrays exclusively, which the compiler keeps unboxed. *)
let fill_f (s : fsrc) (fr : float array) (w : warp) (mask : int) (dst : float array) : unit =
  match s with
  | FR o -> Array.blit fr o dst 0 32
  | FK k -> Array.fill dst 0 32 k
  | FG g ->
    for l = 0 to 31 do
      if mask land (1 lsl l) <> 0 then dst.(l) <- g w l
    done

(* Load write-back: store a float memory value into the destination
   register class. *)
let[@inline] put_ld (ty : Reg.ty) (fr : float array) (ir : int array) (pr : bool array)
    (doff : int) (l : int) (v : float) : unit =
  match ty with
  | Reg.F32 -> fr.(doff + l) <- v
  | Reg.S32 -> ir.(doff + l) <- int_of_float v
  | Reg.Pred -> pr.(doff + l) <- v <> 0.0

(* Same-module binary32 rounding, identical to [Util.Float32.round] by
   construction.  The non-flambda compiler does not inline across
   modules, and a non-inlined float call boxes its arguments and result
   on every lane; spelled here, the round-trip compiles to unboxed
   bit-level moves and the lane loops allocate nothing. *)
let[@inline] f32 (x : float) : float = Int32.float_of_bits (Int32.bits_of_float x)

(* The ALU operator semantics, spelled as inline functions over unboxed
   floats (binary32 semantics as in [Util.Float32]).  The operator is a
   constant constructor, so the per-lane dispatch is a jump table. *)
let[@inline] fbin (op : Instr.fop2) (x : float) (y : float) : float =
  match op with
  | Instr.FAdd -> f32 (x +. y)
  | Instr.FSub -> f32 (x -. y)
  | Instr.FMul -> f32 (x *. y)
  | Instr.FDiv -> f32 (x /. y)
  | Instr.FMin -> if x < y || y <> y then x else y
  | Instr.FMax -> if x > y || y <> y then x else y

let[@inline] funop (op : Instr.fop1) (x : float) : float =
  match op with
  | Instr.FNeg -> -.x
  | Instr.FAbs -> Float.abs x
  | Instr.FSqrt -> f32 (Float.sqrt x)
  | Instr.FRsqrt -> f32 (1.0 /. Float.sqrt x)
  | Instr.FRcp -> f32 (1.0 /. x)
  | Instr.FSin -> f32 (Float.sin x)
  | Instr.FCos -> f32 (Float.cos x)
  | Instr.FEx2 -> f32 (Float.pow 2.0 x)
  | Instr.FLg2 -> f32 (Float.log x /. Float.log 2.0)

let[@inline] ctest (cmp : Instr.cmp) (c : int) : bool =
  match cmp with
  | Instr.CEq -> c = 0
  | Instr.CNe -> c <> 0
  | Instr.CLt -> c < 0
  | Instr.CLe -> c <= 0
  | Instr.CGt -> c > 0
  | Instr.CGe -> c >= 0

(* Float setp uses IEEE comparison semantics, as the hardware's
   unordered-operand rules demand: any comparison with NaN is false
   except ne, which is true.  (Float.compare is a *total* order that
   sorts NaN below everything — using it here made the simulator
   disagree with [Kir.Interp] on NaN, the divergence documented and
   excluded in the golden tests until this fix.)  OCaml's polymorphic
   comparisons specialize to exactly IEEE on floats. *)
let[@inline] ftest (cmp : Instr.cmp) (x : float) (y : float) : bool =
  match cmp with
  | Instr.CEq -> x = y
  | Instr.CNe -> x <> y
  | Instr.CLt -> x < y
  | Instr.CLe -> x <= y
  | Instr.CGt -> x > y
  | Instr.CGe -> x >= y

(* Stored value as its float memory representation: a float source, or
   an S32 register-file offset converted lane-wise. *)
type vsrc = VF of fsrc | VI of int

let fill_v (s : vsrc) (fr : float array) (ir : int array) (w : warp) (mask : int)
    (dst : float array) : unit =
  match s with
  | VF f -> fill_f f fr w mask dst
  | VI o ->
    for l = 0 to 31 do
      if mask land (1 lsl l) <> 0 then dst.(l) <- float_of_int ir.(o + l)
    done

type ckernel = {
  dblocks : dblock array;
  nf : int;  (* register-file sizes per class *)
  nr : int;
  np : int;
  smem_words : int;
  lmem_words : int;
}

(* ------------------------------------------------------------------ *)
(* Pre-decode                                                          *)
(* ------------------------------------------------------------------ *)

let no_def : warp -> int = fun _ -> 0

(* Compile [k] against the launch environment: resolve labels,
   parameters and operand classes once, turning each instruction into a
   [dinstr].  All operand/type validation happens here, at launch time,
   instead of on the execution path. *)
let compile_kernel (env : env) (k : Prog.t) (args : (string * arg) list)
    (site_rows : site_counter option array array) : ckernel =
  let lat = env.lat in
  let idx = Prog.block_index k in
  let find l =
    match Hashtbl.find_opt idx l with
    | Some i -> i
    | None -> launch_error "unknown block label %S" l
  in
  let nf, nr, np = Prog.regfile_sizes k in
  let params : (string, pval) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (p : Prog.param) ->
      match List.assoc_opt p.pname args with
      | None -> launch_error "missing kernel argument %S" p.pname
      | Some (I i) -> Hashtbl.replace params p.pname (Pint i)
      | Some (F f) -> Hashtbl.replace params p.pname (Pflt f)
      | Some (Buf b) -> Hashtbl.replace params p.pname (Pint b.Device.base))
    k.params;
  let param_int name =
    match Hashtbl.find_opt params name with
    | Some (Pint i) -> i
    | Some (Pflt _) -> launch_error "parameter %S used in integer context" name
    | None -> launch_error "unbound parameter %S" name
  in
  let param_flt name =
    match Hashtbl.find_opt params name with
    | Some (Pflt f) -> f
    | Some (Pint i) -> float_of_int i
    | None -> launch_error "unbound parameter %S" name
  in
  let bdx = env.bdim_x and bdy = env.bdim_y in
  let spec_int (s : Instr.special) : warp -> int -> int =
    match s with
    | Instr.Tid_x -> fun w lane -> ((w.wid * 32) + lane) mod bdx
    | Instr.Tid_y -> fun w lane -> ((w.wid * 32) + lane) / bdx mod bdy
    | Instr.Tid_z -> fun w lane -> ((w.wid * 32) + lane) / (bdx * bdy)
    | Instr.Ntid_x -> fun _ _ -> bdx
    | Instr.Ntid_y -> fun _ _ -> bdy
    | Instr.Ntid_z -> fun _ _ -> 1
    | Instr.Ctaid_x -> fun w _ -> w.blk.cta_x
    | Instr.Ctaid_y -> fun w _ -> w.blk.cta_y
    | Instr.Nctaid_x -> fun _ _ -> env.gdim_x
    | Instr.Nctaid_y -> fun _ _ -> env.gdim_y
  in
  let isrc_of (o : Instr.operand) : isrc =
    match o with
    | Instr.Reg r ->
      if Reg.ty r <> Reg.S32 then
        launch_error "register %s in integer context" (Reg.to_string r);
      IR (Reg.idx r * 32)
    | Instr.Imm_i i -> IK i
    | Instr.Imm_f _ -> launch_error "float immediate in integer context"
    | Instr.Spec s -> IG (spec_int s)
    | Instr.Par p -> IK (param_int p)
  in
  let fsrc_of (o : Instr.operand) : fsrc =
    match o with
    | Instr.Reg r ->
      if Reg.ty r <> Reg.F32 then
        launch_error "register %s in float context" (Reg.to_string r);
      FR (Reg.idx r * 32)
    | Instr.Imm_f f -> FK f
    | Instr.Imm_i i -> FK (float_of_int i)
    | Instr.Spec s ->
      let g = spec_int s in
      FG (fun w lane -> float_of_int (g w lane))
    | Instr.Par p -> FK (param_flt p)
  in
  let psrc_of (o : Instr.operand) : psrc =
    match o with
    | Instr.Reg r ->
      if Reg.ty r <> Reg.Pred then
        launch_error "register %s in predicate context" (Reg.to_string r);
      PR (Reg.idx r * 32)
    | Instr.Imm_i i -> PK (i <> 0)
    | _ -> launch_error "bad operand in predicate context"
  in
  (* Per-launch lane buffers for [fill_f].  One set suffices: an
     instruction materializes its sources, computes, and writes back
     before the next issues; each launch owns its own compile. *)
  let va = Array.make 32 0.0 and vb = Array.make 32 0.0 and vc = Array.make 32 0.0 in
  (* Ready-cycle accessor of one register, and of an operand list
     (immediates/params/specials are always ready). *)
  let reg_ready (r : Reg.t) : warp -> int =
    let i = Reg.idx r in
    match Reg.ty r with
    | Reg.F32 -> fun w -> w.f_ready.(i)
    | Reg.S32 -> fun w -> w.i_ready.(i)
    | Reg.Pred -> fun w -> w.p_ready.(i)
  in
  let ready_of (ops : Instr.operand list) : warp -> int =
    let fs =
      List.filter_map (function Instr.Reg r -> Some (reg_ready r) | _ -> None) ops
    in
    match fs with
    | [] -> no_def
    | [ f ] -> f
    | [ f; g ] -> fun w -> max (f w) (g w)
    | [ f; g; h ] -> fun w -> max (f w) (max (g w) (h w))
    | fs -> fun w -> List.fold_left (fun acc f -> max acc (f w)) 0 fs
  in
  let set_ready (r : Reg.t) : warp -> int -> unit =
    let i = Reg.idx r in
    match Reg.ty r with
    | Reg.F32 -> fun w c -> w.f_ready.(i) <- c
    | Reg.S32 -> fun w c -> w.i_ready.(i) <- c
    | Reg.Pred -> fun w c -> w.p_ready.(i) <- c
  in
  (* ALU-class instruction: occupies one issue slot, result ready after
     the SP pipeline RAW latency. *)
  let alu ops d (body : warp -> int -> unit) : dinstr =
    let sr = set_ready d in
    {
      d_ready = ready_of ops;
      d_exec =
        (fun w mask c ->
          body w mask;
          sr w (c + lat.alu);
          lat.issue);
      d_long = false;
      d_barrier = false;
      d_def_ready = no_def;
    }
  in
  (* Site-counter updaters, resolved per decoded memory instruction. *)
  let count_tx (sc : site_counter option) : int -> int -> unit =
    match sc with
    | Some s ->
      fun tx bytes ->
        s.sc_execs <- s.sc_execs + 1;
        s.sc_tx <- s.sc_tx + tx;
        s.sc_bytes <- s.sc_bytes + bytes
    | None -> fun _ _ -> ()
  in
  let count_replays (sc : site_counter option) : int -> unit =
    match sc with
    | Some s ->
      fun deg ->
        s.sc_execs <- s.sc_execs + 1;
        s.sc_replays <- s.sc_replays + (deg - 1)
    | None -> fun _ -> ()
  in
  let lmem_words = k.lmem_words in
  let decode_instr (sc : site_counter option) (ins : Instr.t) : dinstr =
    match ins with
    | Instr.Mov (d, a) -> (
      let doff = Reg.idx d * 32 in
      match Reg.ty d with
      | Reg.F32 -> (
        match fsrc_of a with
        | FR o ->
          alu [ a ] d (fun w mask ->
              let fr = w.fregs in
              for l = 0 to 31 do
                if mask land (1 lsl l) <> 0 then fr.(doff + l) <- fr.(o + l)
              done)
        | FK k ->
          alu [ a ] d (fun w mask ->
              let fr = w.fregs in
              for l = 0 to 31 do
                if mask land (1 lsl l) <> 0 then fr.(doff + l) <- k
              done)
        | FG g ->
          alu [ a ] d (fun w mask ->
              let fr = w.fregs in
              for l = 0 to 31 do
                if mask land (1 lsl l) <> 0 then fr.(doff + l) <- g w l
              done))
      | Reg.S32 ->
        let a' = isrc_of a in
        alu [ a ] d (fun w mask ->
            let ir = w.iregs in
            for l = 0 to 31 do
              if mask land (1 lsl l) <> 0 then ir.(doff + l) <- get_i a' ir w l
            done)
      | Reg.Pred ->
        let a' = psrc_of a in
        alu [ a ] d (fun w mask ->
            let pr = w.pregs in
            for l = 0 to 31 do
              if mask land (1 lsl l) <> 0 then pr.(doff + l) <- get_p a' pr l
            done))
    | Instr.F2 (op, d, a, b) -> (
      let a' = fsrc_of a and b' = fsrc_of b in
      let doff = Reg.idx d * 32 in
      (* Register and constant operands read their sources in the loop;
         only special-register operands go through the fill buffers. *)
      match (a', b') with
      | FR ao, FR bo ->
        alu [ a; b ] d (fun w mask ->
            let fr = w.fregs in
            for l = 0 to 31 do
              if mask land (1 lsl l) <> 0 then
                fr.(doff + l) <- fbin op fr.(ao + l) fr.(bo + l)
            done)
      | FR ao, FK y ->
        alu [ a; b ] d (fun w mask ->
            let fr = w.fregs in
            for l = 0 to 31 do
              if mask land (1 lsl l) <> 0 then fr.(doff + l) <- fbin op fr.(ao + l) y
            done)
      | FK x, FR bo ->
        alu [ a; b ] d (fun w mask ->
            let fr = w.fregs in
            for l = 0 to 31 do
              if mask land (1 lsl l) <> 0 then fr.(doff + l) <- fbin op x fr.(bo + l)
            done)
      | _ ->
        alu [ a; b ] d (fun w mask ->
            let fr = w.fregs in
            fill_f a' fr w mask va;
            fill_f b' fr w mask vb;
            for l = 0 to 31 do
              if mask land (1 lsl l) <> 0 then fr.(doff + l) <- fbin op va.(l) vb.(l)
            done))
    | Instr.F1 (op, d, a) ->
      let a' = fsrc_of a in
      let doff = Reg.idx d * 32 in
      let body =
        match a' with
        | FR ao ->
          fun w mask ->
            let fr = w.fregs in
            for l = 0 to 31 do
              if mask land (1 lsl l) <> 0 then fr.(doff + l) <- funop op fr.(ao + l)
            done
        | _ ->
          fun w mask ->
            let fr = w.fregs in
            fill_f a' fr w mask va;
            for l = 0 to 31 do
              if mask land (1 lsl l) <> 0 then fr.(doff + l) <- funop op va.(l)
            done
      in
      if Instr.is_sfu_op op then begin
        let sr = set_ready d in
        {
          d_ready = ready_of [ a ];
          d_exec =
            (fun w mask c ->
              body w mask;
              sr w (c + lat.sfu);
              lat.sfu_issue);
          d_long = true;
          d_barrier = false;
          d_def_ready = reg_ready d;
        }
      end
      else alu [ a ] d body
    | Instr.Fmad (d, a, b, cc) -> (
      let a' = fsrc_of a and b' = fsrc_of b and c' = fsrc_of cc in
      let doff = Reg.idx d * 32 in
      (* The G80 MAD is unfused: round the product, then the sum. *)
      match (a', b', c') with
      | FR ao, FR bo, FR co ->
        alu [ a; b; cc ] d (fun w mask ->
            let fr = w.fregs in
            for l = 0 to 31 do
              if mask land (1 lsl l) <> 0 then
                fr.(doff + l) <- f32 (f32 (fr.(ao + l) *. fr.(bo + l)) +. fr.(co + l))
            done)
      | _ ->
        alu [ a; b; cc ] d (fun w mask ->
            let fr = w.fregs in
            fill_f a' fr w mask va;
            fill_f b' fr w mask vb;
            fill_f c' fr w mask vc;
            for l = 0 to 31 do
              if mask land (1 lsl l) <> 0 then
                fr.(doff + l) <- f32 (f32 (va.(l) *. vb.(l)) +. vc.(l))
            done))
    | Instr.I2 (op, d, a, b) ->
      let a' = isrc_of a and b' = isrc_of b in
      let doff = Reg.idx d * 32 in
      alu [ a; b ] d (fun w mask ->
          let ir = w.iregs in
          for l = 0 to 31 do
            if mask land (1 lsl l) <> 0 then begin
              let x = get_i a' ir w l and y = get_i b' ir w l in
              ir.(doff + l) <-
                (match op with
                | Instr.IAdd -> x + y
                | Instr.ISub -> x - y
                | Instr.IMul -> x * y
                | Instr.IDiv -> if y = 0 then 0 else x / y
                | Instr.IRem -> if y = 0 then 0 else x mod y
                | Instr.IMin -> min x y
                | Instr.IMax -> max x y
                | Instr.IAnd -> x land y
                | Instr.IOr -> x lor y
                | Instr.IXor -> x lxor y
                | Instr.IShl -> x lsl y
                | Instr.IShr -> x asr y)
            end
          done)
    | Instr.Imad (d, a, b, cc) ->
      let a' = isrc_of a and b' = isrc_of b and c' = isrc_of cc in
      let doff = Reg.idx d * 32 in
      alu [ a; b; cc ] d (fun w mask ->
          let ir = w.iregs in
          for l = 0 to 31 do
            if mask land (1 lsl l) <> 0 then
              ir.(doff + l) <- (get_i a' ir w l * get_i b' ir w l) + get_i c' ir w l
          done)
    | Instr.Cvt_f2i (d, a) -> (
      let a' = fsrc_of a in
      let doff = Reg.idx d * 32 in
      match a' with
      | FR ao ->
        alu [ a ] d (fun w mask ->
            let fr = w.fregs and ir = w.iregs in
            for l = 0 to 31 do
              if mask land (1 lsl l) <> 0 then ir.(doff + l) <- int_of_float fr.(ao + l)
            done)
      | _ ->
        alu [ a ] d (fun w mask ->
            let fr = w.fregs and ir = w.iregs in
            fill_f a' fr w mask va;
            for l = 0 to 31 do
              if mask land (1 lsl l) <> 0 then ir.(doff + l) <- int_of_float va.(l)
            done))
    | Instr.Cvt_i2f (d, a) ->
      let a' = isrc_of a in
      let doff = Reg.idx d * 32 in
      alu [ a ] d (fun w mask ->
          let fr = w.fregs and ir = w.iregs in
          for l = 0 to 31 do
            if mask land (1 lsl l) <> 0 then
              fr.(doff + l) <- f32 (float_of_int (get_i a' ir w l))
          done)
    | Instr.Setp (cmp, ty, d, a, b) -> (
      let doff = Reg.idx d * 32 in
      match ty with
      | Reg.F32 -> (
        let a' = fsrc_of a and b' = fsrc_of b in
        match (a', b') with
        | FR ao, FR bo ->
          alu [ a; b ] d (fun w mask ->
              let fr = w.fregs and pr = w.pregs in
              for l = 0 to 31 do
                if mask land (1 lsl l) <> 0 then
                  pr.(doff + l) <- ftest cmp fr.(ao + l) fr.(bo + l)
              done)
        | FR ao, FK y ->
          alu [ a; b ] d (fun w mask ->
              let fr = w.fregs and pr = w.pregs in
              for l = 0 to 31 do
                if mask land (1 lsl l) <> 0 then
                  pr.(doff + l) <- ftest cmp fr.(ao + l) y
              done)
        | _ ->
          alu [ a; b ] d (fun w mask ->
              let fr = w.fregs and pr = w.pregs in
              fill_f a' fr w mask va;
              fill_f b' fr w mask vb;
              for l = 0 to 31 do
                if mask land (1 lsl l) <> 0 then
                  pr.(doff + l) <- ftest cmp va.(l) vb.(l)
              done))
      | Reg.S32 | Reg.Pred ->
        let a' = isrc_of a and b' = isrc_of b in
        alu [ a; b ] d (fun w mask ->
            let ir = w.iregs and pr = w.pregs in
            for l = 0 to 31 do
              if mask land (1 lsl l) <> 0 then
                pr.(doff + l) <- ctest cmp (compare (get_i a' ir w l) (get_i b' ir w l))
            done))
    | Instr.Selp (d, a, b, p) -> (
      let p' = psrc_of p in
      let doff = Reg.idx d * 32 in
      match Reg.ty d with
      | Reg.F32 ->
        let a' = fsrc_of a and b' = fsrc_of b in
        alu [ a; b; p ] d (fun w mask ->
            let fr = w.fregs and pr = w.pregs in
            fill_f a' fr w mask va;
            fill_f b' fr w mask vb;
            for l = 0 to 31 do
              if mask land (1 lsl l) <> 0 then
                fr.(doff + l) <- (if get_p p' pr l then va.(l) else vb.(l))
            done)
      | Reg.S32 ->
        let a' = isrc_of a and b' = isrc_of b in
        alu [ a; b; p ] d (fun w mask ->
            let ir = w.iregs and pr = w.pregs in
            for l = 0 to 31 do
              if mask land (1 lsl l) <> 0 then
                ir.(doff + l) <-
                  (if get_p p' pr l then get_i a' ir w l else get_i b' ir w l)
            done)
      | Reg.Pred ->
        let a' = psrc_of a and b' = psrc_of b in
        alu [ a; b; p ] d (fun w mask ->
            let pr = w.pregs in
            for l = 0 to 31 do
              if mask land (1 lsl l) <> 0 then
                pr.(doff + l) <- (if get_p p' pr l then get_p a' pr l else get_p b' pr l)
            done))
    | Instr.Pnot (d, a) ->
      let a' = psrc_of a in
      let doff = Reg.idx d * 32 in
      alu [ a ] d (fun w mask ->
          let pr = w.pregs in
          for l = 0 to 31 do
            if mask land (1 lsl l) <> 0 then pr.(doff + l) <- not (get_p a' pr l)
          done)
    | Instr.P2 (op, d, a, b) ->
      let a' = psrc_of a and b' = psrc_of b in
      let doff = Reg.idx d * 32 in
      alu [ a; b ] d (fun w mask ->
          let pr = w.pregs in
          for l = 0 to 31 do
            if mask land (1 lsl l) <> 0 then begin
              let x = get_p a' pr l and y = get_p b' pr l in
              pr.(doff + l) <-
                (match op with
                | Instr.PAnd -> x && y
                | Instr.POr -> x || y
                | Instr.PXor -> x <> y)
            end
          done)
    | Instr.Ld (space, d, { base; offset }) -> (
      let base' = isrc_of base in
      let ready = ready_of [ base ] in
      let dty = Reg.ty d in
      let doff = Reg.idx d * 32 in
      let sr = set_ready d in
      let tx = count_tx sc and replays = count_replays sc in
      match space with
      | Instr.Global ->
        {
          d_ready = ready;
          d_long = true;
          d_barrier = false;
          d_def_ready = reg_ready d;
          d_exec =
            (fun w mask c ->
              let fr = w.fregs and ir = w.iregs and pr = w.pregs in
              let addrs = env.addrs in
              let g = env.dev.Device.glob in
              let glen = Array.length g in
              for l = 0 to 31 do
                if mask land (1 lsl l) <> 0 then begin
                  let a = get_i base' ir w l + offset in
                  addrs.(l) <- a;
                  (* Bounds check mirrors [Device.read_global]; the out-of-
                     range path re-enters it for the identical exception. *)
                  let wi = a lsr 2 in
                  let v =
                    if wi < 0 || wi >= glen then Device.read_global env.dev a else g.(wi)
                  in
                  put_ld dty fr ir pr doff l v
                end
              done;
              let p0 = coalesce_packed addrs mask 0 in
              let tx0 = p0 lsr 16 and by0 = p0 land 0xFFFF in
              let p1 = coalesce_packed addrs mask 1 in
              let tx1 = p1 lsr 16 and by1 = p1 land 0xFFFF in
              tx (tx0 + tx1)
                ((if tx0 = 1 then by0 else 64 * tx0) + if tx1 = 1 then by1 else 64 * tx1);
              let cost0 = if tx0 = 1 then lat.coalesced_tx else lat.uncoalesced_tx in
              let cost1 = if tx1 = 1 then lat.coalesced_tx else lat.uncoalesced_tx in
              let done0 =
                charge_channel env (c + lat.issue) ~tx:tx0
                  ~bytes:(if tx0 = 1 then by0 else 64 * tx0)
                  ~tx_cost:cost0
              in
              let done1 =
                charge_channel env done0 ~tx:tx1
                  ~bytes:(if tx1 = 1 then by1 else 64 * tx1)
                  ~tx_cost:cost1
              in
              sr w (done1 + lat.global);
              lat.issue);
        }
      | Instr.Shared ->
        {
          d_ready = ready;
          d_long = false;
          d_barrier = false;
          d_def_ready = no_def;
          d_exec =
            (fun w mask c ->
              let fr = w.fregs and ir = w.iregs and pr = w.pregs in
              let addrs = env.addrs in
              let sh = w.blk.shared in
              let n = Array.length sh in
              for l = 0 to 31 do
                if mask land (1 lsl l) <> 0 then begin
                  let a = get_i base' ir w l + offset in
                  addrs.(l) <- a;
                  let wi = a lsr 2 in
                  if wi < 0 || wi >= n then
                    launch_error "shared load out of bounds (addr %d)" a;
                  put_ld dty fr ir pr doff l sh.(wi)
                end
              done;
              let deg =
                max (bank_degree env.per_bank addrs mask 0) (bank_degree env.per_bank addrs mask 1)
              in
              replays deg;
              env.sm.conflict_extra <- env.sm.conflict_extra + ((deg - 1) * lat.issue);
              sr w (c + lat.shared);
              lat.issue * deg);
        }
      | Instr.Const ->
        {
          d_ready = ready;
          d_long = false;
          d_barrier = false;
          d_def_ready = no_def;
          d_exec =
            (fun w mask c ->
              let fr = w.fregs and ir = w.iregs and pr = w.pregs in
              let addrs = env.addrs in
              let cst = env.dev.Device.cst in
              let clen = Array.length cst in
              for l = 0 to 31 do
                if mask land (1 lsl l) <> 0 then begin
                  let a = get_i base' ir w l + offset in
                  addrs.(l) <- a;
                  let wi = a lsr 2 in
                  let v =
                    if wi < 0 || wi >= clen then Device.read_const env.dev a else cst.(wi)
                  in
                  put_ld dty fr ir pr doff l v
                end
              done;
              let deg = max 1 (distinct_addresses addrs mask) in
              replays deg;
              sr w (c + lat.const_hit);
              lat.issue * deg);
        }
      | Instr.Local ->
        (* Local memory is off-chip but laid out interleaved per thread,
           so hardware coalesces it; model as one 64B tx per half-warp. *)
        {
          d_ready = ready;
          d_long = true;
          d_barrier = false;
          d_def_ready = reg_ready d;
          d_exec =
            (fun w mask c ->
              let fr = w.fregs and ir = w.iregs and pr = w.pregs in
              let addrs = env.addrs in
              let lm = w.blk.local in
              for l = 0 to 31 do
                if mask land (1 lsl l) <> 0 then begin
                  let a = get_i base' ir w l + offset in
                  addrs.(l) <- a;
                  let tid = (w.wid * 32) + l in
                  let wi = (tid * lmem_words) + (a lsr 2) in
                  if a lsr 2 >= lmem_words then
                    launch_error "local load out of bounds (addr %d)" a;
                  put_ld dty fr ir pr doff l lm.(wi)
                end
              done;
              let halves =
                (if mask land 0xFFFF <> 0 then 1 else 0)
                + if mask land 0xFFFF0000 <> 0 then 1 else 0
              in
              tx halves (64 * halves);
              let done_ =
                charge_channel env (c + lat.issue) ~tx:halves ~bytes:(64 * halves)
                  ~tx_cost:lat.coalesced_tx
              in
              sr w (done_ + lat.global);
              lat.issue);
        })
    | Instr.St (space, { base; offset }, v) -> (
      let base' = isrc_of base in
      let ready = ready_of [ base; v ] in
      (* Stored value as the float memory representation. *)
      let v' : vsrc =
        match v with
        | Instr.Reg r when Reg.ty r = Reg.S32 -> VI (Reg.idx r * 32)
        | Instr.Reg _ | Instr.Imm_f _ -> VF (fsrc_of v)
        | Instr.Imm_i i -> VF (FK (float_of_int i))
        | Instr.Spec s ->
          let g = spec_int s in
          VF (FG (fun w l -> float_of_int (g w l)))
        | Instr.Par p -> VF (FK (param_flt p))
      in
      let tx = count_tx sc and replays = count_replays sc in
      match space with
      | Instr.Global ->
        {
          d_ready = ready;
          d_long = false;
          d_barrier = false;
          d_def_ready = no_def;
          d_exec =
            (fun w mask c ->
              let fr = w.fregs and ir = w.iregs in
              let addrs = env.addrs in
              fill_v v' fr ir w mask va;
              let g = env.dev.Device.glob in
              let glen = Array.length g in
              for l = 0 to 31 do
                if mask land (1 lsl l) <> 0 then begin
                  let a = get_i base' ir w l + offset in
                  addrs.(l) <- a;
                  let wi = a lsr 2 in
                  if wi < 0 || wi >= glen then Device.write_global env.dev a va.(l)
                  else g.(wi) <- va.(l)
                end
              done;
              let p0 = coalesce_packed addrs mask 0 in
              let tx0 = p0 lsr 16 and by0 = p0 land 0xFFFF in
              let p1 = coalesce_packed addrs mask 1 in
              let tx1 = p1 lsr 16 and by1 = p1 land 0xFFFF in
              tx (tx0 + tx1)
                ((if tx0 = 1 then by0 else 64 * tx0) + if tx1 = 1 then by1 else 64 * tx1);
              let cost0 = if tx0 = 1 then lat.coalesced_tx else lat.uncoalesced_tx in
              let cost1 = if tx1 = 1 then lat.coalesced_tx else lat.uncoalesced_tx in
              let done0 =
                charge_channel env (c + lat.issue) ~tx:tx0
                  ~bytes:(if tx0 = 1 then by0 else 64 * tx0)
                  ~tx_cost:cost0
              in
              ignore
                (charge_channel env done0 ~tx:tx1
                   ~bytes:(if tx1 = 1 then by1 else 64 * tx1)
                   ~tx_cost:cost1);
              lat.issue);
        }
      | Instr.Shared ->
        {
          d_ready = ready;
          d_long = false;
          d_barrier = false;
          d_def_ready = no_def;
          d_exec =
            (fun w mask _c ->
              let fr = w.fregs and ir = w.iregs in
              let addrs = env.addrs in
              fill_v v' fr ir w mask va;
              let sh = w.blk.shared in
              let n = Array.length sh in
              for l = 0 to 31 do
                if mask land (1 lsl l) <> 0 then begin
                  let a = get_i base' ir w l + offset in
                  addrs.(l) <- a;
                  let wi = a lsr 2 in
                  if wi < 0 || wi >= n then
                    launch_error "shared store out of bounds (addr %d)" a;
                  sh.(wi) <- va.(l)
                end
              done;
              let deg =
                max (bank_degree env.per_bank addrs mask 0) (bank_degree env.per_bank addrs mask 1)
              in
              replays deg;
              env.sm.conflict_extra <- env.sm.conflict_extra + ((deg - 1) * lat.issue);
              lat.issue * deg);
        }
      | Instr.Const -> launch_error "stores to constant memory are not allowed"
      | Instr.Local ->
        {
          d_ready = ready;
          d_long = false;
          d_barrier = false;
          d_def_ready = no_def;
          d_exec =
            (fun w mask c ->
              let fr = w.fregs and ir = w.iregs in
              let addrs = env.addrs in
              fill_v v' fr ir w mask va;
              let lm = w.blk.local in
              for l = 0 to 31 do
                if mask land (1 lsl l) <> 0 then begin
                  let a = get_i base' ir w l + offset in
                  addrs.(l) <- a;
                  let tid = (w.wid * 32) + l in
                  if a lsr 2 >= lmem_words then
                    launch_error "local store out of bounds (addr %d)" a;
                  lm.((tid * lmem_words) + (a lsr 2)) <- va.(l)
                end
              done;
              let halves =
                (if mask land 0xFFFF <> 0 then 1 else 0)
                + if mask land 0xFFFF0000 <> 0 then 1 else 0
              in
              tx halves (64 * halves);
              ignore
                (charge_channel env (c + lat.issue) ~tx:halves ~bytes:(64 * halves)
                   ~tx_cost:lat.coalesced_tx);
              lat.issue);
        })
    | Instr.Bar ->
      {
        d_ready = no_def;
        d_exec = (fun _ _ _ -> assert false);  (* handled by the scheduler *)
        d_long = false;
        d_barrier = true;
        d_def_ready = no_def;
      }
  in
  let dblocks =
    Array.of_list
      (List.mapi
         (fun bi (b : Prog.block) ->
           let row = site_rows.(bi) in
           let dterm =
             match b.term with
             | Prog.Jump l -> DJump (find l)
             | Prog.Ret -> DRet
             | Prog.Br { pred; negate; if_true; if_false; reconv } ->
               if Reg.ty pred <> Reg.Pred then
                 launch_error "register %s in predicate context" (Reg.to_string pred);
               DBr
                 {
                   p_idx = Reg.idx pred;
                   p_off = Reg.idx pred * 32;
                   negate;
                   if_true = find if_true;
                   if_false = find if_false;
                   reconv = find reconv;
                 }
           in
           let dbody =
             Array.of_list
               (List.mapi
                  (fun i ins ->
                    decode_instr (if i < Array.length row then row.(i) else None) ins)
                  b.body)
           in
           { dbody; dterm })
         k.blocks)
  in
  { dblocks; nf; nr; np; smem_words = k.smem_words; lmem_words }

(* ------------------------------------------------------------------ *)
(* SIMT control flow                                                   *)
(* ------------------------------------------------------------------ *)

let top_mask (w : warp) = w.s_mask.(w.sp) land lnot w.exited land w.valid_mask

let push_frame (w : warp) ~bi ~off ~rpc ~mask =
  let n = w.sp + 1 in
  if n >= Array.length w.s_bi then begin
    let cap = 2 * Array.length w.s_bi in
    let grow a = Array.append a (Array.make (cap - Array.length a) 0) in
    w.s_bi <- grow w.s_bi;
    w.s_off <- grow w.s_off;
    w.s_rpc <- grow w.s_rpc;
    w.s_mask <- grow w.s_mask
  end;
  w.s_bi.(n) <- bi;
  w.s_off.(n) <- off;
  w.s_rpc.(n) <- rpc;
  w.s_mask.(n) <- mask;
  w.sp <- n

(* Pop frames whose pc reached their reconvergence point or whose lanes
   have all exited. *)
let rec normalize (w : warp) =
  if w.sp < 0 then w.finished <- true
  else begin
    let sp = w.sp in
    if
      top_mask w = 0
      || (w.s_off.(sp) = 0 && w.s_bi.(sp) = w.s_rpc.(sp) && w.s_rpc.(sp) >= 0)
    then begin
      w.sp <- sp - 1;
      normalize w
    end
  end

(* Execute the terminator of the current block for warp [w]. *)
let exec_term (env : env) (ck : ckernel) (w : warp) (mask : int) : int =
  let sp = w.sp in
  (match ck.dblocks.(w.s_bi.(sp)).dterm with
  | DJump target ->
    w.s_bi.(sp) <- target;
    w.s_off.(sp) <- 0;
    normalize w
  | DRet ->
    w.exited <- w.exited lor mask;
    w.sp <- sp - 1;
    normalize w
  | DBr { p_off; negate; if_true; if_false; reconv; _ } ->
    let taken = ref 0 in
    for lane = 0 to 31 do
      if mask land (1 lsl lane) <> 0 then
        if w.pregs.(p_off + lane) <> negate then taken := !taken lor (1 lsl lane)
    done;
    let not_taken = mask land lnot !taken in
    if not_taken = 0 then begin
      w.s_bi.(sp) <- if_true;
      w.s_off.(sp) <- 0;
      normalize w
    end
    else if !taken = 0 then begin
      w.s_bi.(sp) <- if_false;
      w.s_off.(sp) <- 0;
      normalize w
    end
    else begin
      (* Divergence: current frame becomes the continuation at the
         reconvergence point (keeping its own rpc, so the pc = rpc pop
         rule does not fire on it); the two sides run first (taken on
         top). *)
      w.s_bi.(sp) <- reconv;
      w.s_off.(sp) <- 0;
      push_frame w ~bi:if_false ~off:0 ~rpc:reconv ~mask:not_taken;
      push_frame w ~bi:if_true ~off:0 ~rpc:reconv ~mask:!taken;
      normalize w
    end);
  env.lat.issue

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

(* Scoreboard-depth bookkeeping: a warp may track only the arch's
   scoreboard depth of outstanding long-latency results; issuing
   another long-latency instruction first waits for the oldest to
   retire. *)
let drop_retired (w : warp) (c : int) =
  let k = ref 0 in
  for idx = 0 to w.n_pending - 1 do
    if w.pending.(idx) > c then begin
      w.pending.(!k) <- w.pending.(idx);
      incr k
    end
  done;
  w.n_pending <- !k

(* Earliest cycle at which a slot frees (the minimum pending time). *)
let earliest_slot (w : warp) =
  let m = ref max_int in
  for idx = 0 to w.n_pending - 1 do
    if w.pending.(idx) < !m then m := w.pending.(idx)
  done;
  !m

let record_pending (w : warp) (completion : int) =
  if w.n_pending < Array.length w.pending then begin
    w.pending.(w.n_pending) <- completion;
    w.n_pending <- w.n_pending + 1
  end

(* Earliest cycle warp [w] could issue its next instruction, given its
   scoreboard (ignores the SM issue pipe).  This only reads and
   monotonically updates per-warp state, so the heap scheduler may call
   it lazily — only when the warp surfaces at the top. *)
let warp_earliest (env : env) (ck : ckernel) (w : warp) : int =
  if not env.timing then w.wake
  else begin
    let sp = w.sp in
    let db = ck.dblocks.(w.s_bi.(sp)) in
    let off = w.s_off.(sp) in
    if off >= Array.length db.dbody then
      match db.dterm with
      | DBr { p_idx; _ } -> max w.wake w.p_ready.(p_idx)
      | DJump _ | DRet -> w.wake
    else begin
      let di = db.dbody.(off) in
      let e = max w.wake (di.d_ready w) in
      if di.d_long then begin
        drop_retired w e;
        if w.n_pending >= Array.length w.pending then max e (earliest_slot w) else e
      end
      else e
    end
  end

(* Issue one instruction for warp [w] at cycle [c].  Returns the number
   of cycles the instruction occupies the issue pipe (which throttles
   both this warp and, via the scheduler, the whole SM — SFU ops, bank
   conflicts and divergent constant accesses all serialize here).
   [release] is called when a barrier completes, with the block and the
   completion cycle, after all parked warps have been woken. *)
let issue (env : env) (ck : ckernel) ~(release : block_st -> int -> unit) (w : warp) (c : int) :
    int =
  let sp = w.sp in
  let mask = top_mask w in
  env.sm.n_warp_instrs <- env.sm.n_warp_instrs + 1;
  if env.sm.n_warp_instrs > env.budget then
    raise (Watchdog { issued = env.sm.n_warp_instrs; budget = env.budget });
  let db = ck.dblocks.(w.s_bi.(sp)) in
  let off = w.s_off.(sp) in
  if off >= Array.length db.dbody then begin
    let cost = exec_term env ck w mask in
    w.wake <- c + cost;
    cost
  end
  else begin
    let di = db.dbody.(off) in
    if di.d_barrier then begin
      w.s_off.(sp) <- off + 1;
      w.at_barrier <- true;
      w.blk.arrived <- w.blk.arrived + 1;
      if w.blk.arrived >= w.blk.live_warps then
        (* All live warps arrived: release everyone. *)
        release w.blk c;
      env.lat.issue
    end
    else begin
      let cost = di.d_exec w mask c in
      w.s_off.(sp) <- off + 1;
      w.wake <- c + cost;
      if env.timing && di.d_long then begin
        drop_retired w c;
        record_pending w (di.d_def_ready w)
      end;
      cost
    end
  end

(* ------------------------------------------------------------------ *)
(* Launch                                                              *)
(* ------------------------------------------------------------------ *)

let make_block (env : env) (ck : ckernel) ~(seq : int ref) (cta_x : int) (cta_y : int)
    (start_cycle : int) : block_st =
  let tpb = env.bdim_x * env.bdim_y in
  let n_warps = Util.Stats.cdiv tpb 32 in
  let blk =
    {
      cta_x;
      cta_y;
      shared = Array.make (max 1 ck.smem_words) 0.0;
      local = (if ck.lmem_words > 0 then Array.make (tpb * ck.lmem_words) 0.0 else [||]);
      arrived = 0;
      live_warps = n_warps;
      warps = [||];
    }
  in
  blk.warps <-
    Array.init n_warps (fun wid ->
        let lanes = min 32 (tpb - (wid * 32)) in
        let valid_mask = if lanes = 32 then full_mask else (1 lsl lanes) - 1 in
        let s = !seq in
        incr seq;
        {
          wid;
          seq = s;
          valid_mask;
          fregs = Array.make (max 1 ck.nf * 32) 0.0;
          iregs = Array.make (max 1 ck.nr * 32) 0;
          pregs = Array.make (max 1 ck.np * 32) false;
          f_ready = Array.make (max 1 ck.nf) 0;
          i_ready = Array.make (max 1 ck.nr) 0;
          p_ready = Array.make (max 1 ck.np) 0;
          s_bi = Array.make 4 0;
          s_off = Array.make 4 0;
          s_rpc = [| -1; 0; 0; 0 |];
          s_mask = [| full_mask; 0; 0; 0 |];
          sp = 0;
          exited = 0;
          wake = start_cycle;
          at_barrier = false;
          finished = false;
          in_heap = false;
          pending = Array.make env.arch.Arch.scoreboard_depth 0;
          n_pending = 0;
          blk;
        });
  blk

(* Binary min-heap of runnable warps, ordered lexicographically by
   (key, admission seq).  Keys are lower bounds on a warp's true
   earliest-issue cycle (a warp's earliest only grows between its own
   issues), so [run_sm] pops, recomputes the exact value, and either
   issues or reinserts — the classic lazy priority queue.  Entries are
   unique per warp ([in_heap]), so the (key, seq) order is total and
   pop order is deterministic. *)
type wheap = {
  mutable hkey : int array;
  mutable hw : warp array;
  mutable hn : int;
}

let heap_swap h i j =
  let k = h.hkey.(i) and w = h.hw.(i) in
  h.hkey.(i) <- h.hkey.(j);
  h.hw.(i) <- h.hw.(j);
  h.hkey.(j) <- k;
  h.hw.(j) <- w

let heap_less h i j =
  h.hkey.(i) < h.hkey.(j) || (h.hkey.(i) = h.hkey.(j) && h.hw.(i).seq < h.hw.(j).seq)

let heap_push (h : wheap) (key : int) (w : warp) =
  if h.hn = Array.length h.hw then begin
    let cap = max 8 (2 * Array.length h.hw) in
    let nk = Array.make cap 0 and nw = Array.make cap w in
    Array.blit h.hkey 0 nk 0 h.hn;
    Array.blit h.hw 0 nw 0 h.hn;
    h.hkey <- nk;
    h.hw <- nw
  end;
  let i = ref h.hn in
  h.hkey.(!i) <- key;
  h.hw.(!i) <- w;
  h.hn <- h.hn + 1;
  w.in_heap <- true;
  while !i > 0 && heap_less h !i ((!i - 1) / 2) do
    heap_swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let heap_pop (h : wheap) : warp =
  let w = h.hw.(0) in
  h.hn <- h.hn - 1;
  if h.hn > 0 then begin
    h.hkey.(0) <- h.hkey.(h.hn);
    h.hw.(0) <- h.hw.(h.hn);
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < h.hn && heap_less h l !s then s := l;
      if r < h.hn && heap_less h r !s then s := r;
      if !s = !i then continue_ := false
      else begin
        heap_swap h !i !s;
        i := !s
      end
    done
  end;
  w.in_heap <- false;
  w

(* Run [block_coords] through one SM with at most [b_sm] resident
   blocks; returns the cycle the last block finishes. *)
let run_sm (env : env) (ck : ckernel) ~(scheduler : scheduler)
    (block_coords : (int * int) list) (b_sm : int) : int =
  let lat = env.lat in
  let pending_blocks = ref block_coords in
  let resident_blocks = ref 0 in
  let finish_cycle = ref 0 in
  let seq = ref 0 in
  let n_unfinished = ref 0 in
  (* Warp wake-up on barrier completion: reset the arrival count and
     wake every live warp of the block (including the warp that issued
     the completing Bar). *)
  let base_release (blk : block_st) (c : int) =
    blk.arrived <- 0;
    Array.iter
      (fun w' ->
        if not w'.finished then begin
          w'.at_barrier <- false;
          w'.wake <- max w'.wake (c + lat.issue)
        end)
      blk.warps
  in
  (* Bookkeeping shared by both schedulers after warp [w] issued at
     cycle [c] with issue-pipe cost [cost]; [retire] removes a finished
     block's warps from the scheduler structure, [admit] brings in
     pending blocks.  Returns true while the SM still has work. *)
  let post_issue ~(release : block_st -> int -> unit) ~(retire : block_st -> unit)
      ~(admit : int -> unit) (w : warp) (c : int) (cost : int) =
    if env.timing then env.sm.issue_free <- c + cost;
    if w.finished then begin
      decr n_unfinished;
      let blk = w.blk in
      blk.live_warps <- blk.live_warps - 1;
      (* A warp exiting while others wait at the barrier can now
         satisfy it. *)
      if blk.live_warps > 0 && blk.arrived >= blk.live_warps then release blk c;
      if blk.live_warps = 0 then begin
        finish_cycle := max !finish_cycle (c + lat.issue);
        retire blk;
        decr resident_blocks;
        admit (c + lat.issue)
      end
    end;
    if env.timing then finish_cycle := max !finish_cycle env.sm.issue_free
  in
  (match scheduler with
  | Heap ->
    let heap = { hkey = Array.make 0 0; hw = [||]; hn = 0 } in
    let release blk c =
      base_release blk c;
      Array.iter
        (fun w' ->
          if (not w'.finished) && (not w'.at_barrier) && not w'.in_heap then
            heap_push heap w'.wake w')
        blk.warps
    in
    let admit c =
      while !resident_blocks < b_sm && !pending_blocks <> [] do
        match !pending_blocks with
        | [] -> ()
        | (bx, by) :: rest ->
          pending_blocks := rest;
          let blk = make_block env ck ~seq bx by c in
          incr resident_blocks;
          n_unfinished := !n_unfinished + Array.length blk.warps;
          Array.iter (fun w -> heap_push heap w.wake w) blk.warps
      done
    in
    let retire (_ : block_st) = () (* finished warps are never in the heap *) in
    admit 0;
    while heap.hn > 0 do
      let w = heap_pop heap in
      let e = warp_earliest env ck w in
      if
        heap.hn > 0
        && not
             (e < heap.hkey.(0) || (e = heap.hkey.(0) && w.seq < heap.hw.(0).seq))
      then
        (* Another warp may be earlier: reinsert with the exact key and
           look again.  Keys only grow, so this terminates. *)
        heap_push heap e w
      else begin
        let c = if env.timing then max e env.sm.issue_free else e in
        let cost = issue env ck ~release w c in
        if (not w.finished) && (not w.at_barrier) && not w.in_heap then
          heap_push heap w.wake w;
        post_issue ~release ~retire ~admit w c cost
      end
    done;
    if !n_unfinished > 0 then failwith "Sim: deadlock — all live warps waiting at a barrier"
  | Scan ->
    (* Reference scheduler: pick the runnable warp with the smallest
       earliest-issue cycle by scanning the resident array in admission
       order (ties resolve to the lowest admission seq, exactly the
       heap's order). *)
    let rv = ref [||] in
    let rn = ref 0 in
    let push w =
      if !rn = Array.length !rv then begin
        let cap = max 8 (2 * Array.length !rv) in
        let nv = Array.make cap w in
        Array.blit !rv 0 nv 0 !rn;
        rv := nv
      end;
      !rv.(!rn) <- w;
      incr rn
    in
    let release = base_release in
    let admit c =
      while !resident_blocks < b_sm && !pending_blocks <> [] do
        match !pending_blocks with
        | [] -> ()
        | (bx, by) :: rest ->
          pending_blocks := rest;
          let blk = make_block env ck ~seq bx by c in
          incr resident_blocks;
          n_unfinished := !n_unfinished + Array.length blk.warps;
          Array.iter push blk.warps
      done
    in
    let retire (blk : block_st) =
      (* In-place compaction preserving admission order. *)
      let k = ref 0 in
      for i = 0 to !rn - 1 do
        let w = !rv.(i) in
        if w.blk != blk then begin
          !rv.(!k) <- w;
          incr k
        end
      done;
      rn := !k
    in
    admit 0;
    let continue_ = ref (!rn > 0) in
    while !continue_ do
      let best_w = ref None in
      let best_e = ref 0 in
      for i = 0 to !rn - 1 do
        let w = !rv.(i) in
        if (not w.finished) && not w.at_barrier then begin
          let e = warp_earliest env ck w in
          match !best_w with
          | Some _ when !best_e <= e -> ()
          | _ ->
            best_w := Some w;
            best_e := e
        end
      done;
      (match !best_w with
      | None ->
        if !n_unfinished > 0 then
          failwith "Sim: deadlock — all live warps waiting at a barrier"
        else continue_ := false
      | Some w ->
        let e = !best_e in
        let c = if env.timing then max e env.sm.issue_free else e in
        let cost = issue env ck ~release w c in
        post_issue ~release ~retire ~admit w c cost;
        if !rn = 0 && !pending_blocks = [] then continue_ := false)
    done);
  !finish_cycle

let default_max_blocks = 24

(* Launch a kernel.  In [Timing] mode, simulates the blocks assigned to
   one representative SM (capped) and extrapolates; in [Functional]
   mode executes every block of the grid. *)
let run ?(mode = Functional) ?(arch = Arch.g80) ?(scheduler = Heap) ?budget (dev : Device.t)
    (l : launch) : stats =
  let limits = arch.Arch.limits in
  (* The execution core is structurally 32-wide: lane loops, the full
     mask and the half-warp memory rules all assume warps of 32.  All
     registry machines share that width; reject anything else rather
     than silently mis-simulate. *)
  if limits.Arch.warp_size <> 32 then
    launch_error "arch %S has warp size %d; the simulator is 32-wide" arch.Arch.name
      limits.Arch.warp_size;
  if arch.Arch.shared_banks land (arch.Arch.shared_banks - 1) <> 0 || arch.Arch.shared_banks <= 0
  then
    launch_error "arch %S has %d shared banks; bank interleaving needs a power of two"
      arch.Arch.name arch.Arch.shared_banks;
  let gx, gy = l.grid in
  let bx, by = l.block in
  let tpb = bx * by in
  if gx <= 0 || gy <= 0 then launch_error "empty grid (%d x %d)" gx gy;
  if tpb <= 0 then launch_error "empty block (%d x %d)" bx by;
  if tpb > limits.Arch.max_threads_per_block then
    launch_error "block of %d threads exceeds the %d-thread limit" tpb
      limits.Arch.max_threads_per_block;
  if l.kernel.Prog.smem_words * 4 > limits.Arch.smem_per_sm then
    launch_error "shared memory (%d bytes) exceeds per-SM capacity" (l.kernel.Prog.smem_words * 4);
  let resource = Ptx.Resource.of_kernel l.kernel in
  let occ =
    Arch.occupancy ~arch ~threads_per_block:tpb ~regs_per_thread:resource.regs_per_thread
      ~smem_per_block:resource.smem_bytes_per_block ()
  in
  let timing = match mode with Timing _ -> true | Functional -> false in
  if timing && not (Arch.is_valid occ) then
    launch_error "invalid executable: 0 blocks fit an SM (%s limited)" occ.limiter;
  let sm =
    { issue_free = 0; mem_free = 0; n_warp_instrs = 0; n_tx = 0; n_bytes = 0; conflict_extra = 0 }
  in
  (* Watchdog budget: explicit cap, or derived from the launch shape —
     simulated warps times the per-warp cap (never below one warp's
     worth, so degenerate launches keep headroom). *)
  let budget =
    match budget with
    | Some b ->
      if b < 1 then launch_error "watchdog budget must be >= 1 (got %d)" b;
      b
    | None ->
      let warps_per_block = (tpb + 31) / 32 in
      let blocks_accounted =
        match mode with
        | Functional -> gx * gy
        | Timing { max_blocks } -> min (gx * gy) (max 1 max_blocks)
      in
      max 1 (warps_per_block * blocks_accounted) * watchdog_per_warp ()
  in
  let env =
    {
      dev;
      arch;
      lat = arch.Arch.latencies;
      bdim_x = bx;
      bdim_y = by;
      gdim_x = gx;
      gdim_y = gy;
      timing;
      sm;
      budget;
      addrs = Array.make 32 0;
      per_bank = Array.make arch.Arch.shared_banks 0;
    }
  in
  let site_rows =
    List.map
      (fun (b : Prog.block) ->
        Array.of_list
          (List.mapi
             (fun i (ins : Instr.t) ->
               match ins with
               | Instr.Ld (sp, _, _) | Instr.St (sp, _, _) ->
                 Some
                   {
                     sc_label = b.label;
                     sc_index = i;
                     sc_space = sp;
                     sc_execs = 0;
                     sc_tx = 0;
                     sc_bytes = 0;
                     sc_replays = 0;
                   }
               | _ -> None)
             b.body))
      l.kernel.Prog.blocks
  in
  let site_counters =
    List.concat_map (fun row -> List.filter_map Fun.id (Array.to_list row)) site_rows
  in
  let ck = compile_kernel env l.kernel l.args (Array.of_list site_rows) in
  let total_blocks = gx * gy in
  let all_coords = List.init total_blocks (fun i -> (i mod gx, i / gx)) in
  let note_run () =
    ignore (Atomic.fetch_and_add instrs_issued_total sm.n_warp_instrs);
    Atomic.incr runs_total
  in
  match mode with
  | Functional ->
    (* Execute every block; blocks are independent, so one at a time. *)
    List.iter (fun coord -> ignore (run_sm env ck ~scheduler [ coord ] 1)) all_coords;
    note_run ();
    {
      cycles = 0.0;
      time_s = 0.0;
      total_blocks;
      blocks_simulated = total_blocks;
      warp_instrs = sm.n_warp_instrs;
      gmem_transactions = sm.n_tx;
      gmem_bytes = sm.n_bytes;
      bank_conflict_extra = sm.conflict_extra;
      occupancy = occ;
      regs_per_thread = resource.regs_per_thread;
      site_counters;
    }
  | Timing { max_blocks } ->
    (* Blocks are distributed round-robin over SMs; simulate SM 0's
       share, capped, and extrapolate. *)
    let assigned = List.filteri (fun i _ -> i mod limits.Arch.num_sms = 0) all_coords in
    let n_assigned = List.length assigned in
    let n_sim = min n_assigned (max 1 max_blocks) in
    (* Simulate whole residency waves where possible: a trailing
       partial wave under-fills the SM and, in a small sample, biases
       the linear extrapolation upward far more than the real run's
       single tail wave does. *)
    let n_sim =
      if n_sim >= occ.blocks_per_sm && n_sim < n_assigned then
        n_sim / occ.blocks_per_sm * occ.blocks_per_sm
      else n_sim
    in
    let simulated = List.filteri (fun i _ -> i < n_sim) assigned in
    let cycles_sim = run_sm env ck ~scheduler simulated occ.blocks_per_sm in
    note_run ();
    let scale = float_of_int n_assigned /. float_of_int n_sim in
    let cycles = float_of_int cycles_sim *. scale in
    {
      cycles;
      time_s = cycles /. Arch.clock_hz arch;
      total_blocks;
      blocks_simulated = n_sim;
      warp_instrs = sm.n_warp_instrs;
      gmem_transactions = sm.n_tx;
      gmem_bytes = sm.n_bytes;
      bank_conflict_extra = sm.conflict_extra;
      occupancy = occ;
      regs_per_thread = resource.regs_per_thread;
      site_counters;
    }
