(* Machine-model registry.

   The paper computes everything — occupancy cliffs, Eq.1/Eq.2
   metrics, the Pareto frontier — against one machine, the GeForce
   8800 GTX (Tables 1-2, section 2.1).  This module makes that machine
   a *value*: [t] packages the resource limits, the latency model, the
   shared-memory bank and coalescing geometry, and the clock/bandwidth
   figures, and a small named registry supplies at least three points
   so sweeps can ask "which configuration wins per machine" instead of
   "what is fast on a G80".

   [g80] carries the paper's numbers verbatim (worked example in
   section 2.2: 256 threads/block, 10 regs/thread, 4KB smem/block ->
   3 blocks/SM; raising to 11 regs -> 2 blocks/SM), and every default
   in the system is [g80], so historical digests, store keys and
   golden simulator results are bit-identical to the pre-registry
   code. *)

(* ------------------------------------------------------------------ *)
(* Table 2: resource constraints                                       *)
(* ------------------------------------------------------------------ *)

type limits = {
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  regs_per_sm : int;  (* 32-bit registers *)
  smem_per_sm : int;  (* bytes *)
  max_threads_per_block : int;
  warp_size : int;
  num_sms : int;
  sps_per_sm : int;
  sfus_per_sm : int;
}

(* ------------------------------------------------------------------ *)
(* Latency model (cycles)                                              *)
(* ------------------------------------------------------------------ *)

type latencies = {
  issue : int;  (* cycles a warp occupies the issue pipe: 32 threads / 8 SPs *)
  sfu_issue : int;  (* SFU ops issue at quarter rate: 32 threads / 2 SFUs / 4 *)
  alu : int;  (* register RAW latency of SP pipeline *)
  sfu : int;
  shared : int;
  const_hit : int;
  global : int;  (* Table 1: 200-300 cycles; we use the midpoint *)
  coalesced_tx : int;  (* channel occupancy of one 64B transaction at 4 B/cycle *)
  uncoalesced_tx : int;
      (* channel occupancy of one un-coalesced access: the G80 memory
         controller issues a full 64B transaction per straggler lane,
         wasting ~94% of the fetched bytes for a 4B read *)
}

(* ------------------------------------------------------------------ *)
(* The machine model                                                   *)
(* ------------------------------------------------------------------ *)

type t = {
  name : string;  (* registry key, as accepted by --arch *)
  display : string;
  limits : limits;
  latencies : latencies;
  scoreboard_depth : int;
      (* per-warp long-latency results in flight before issue stalls:
         what makes thread-level parallelism necessary once a warp's
         own ILP exceeds the window — the paper's Figure 5 story *)
  shared_banks : int;  (* power of two; word-interleaved *)
  clock_ghz : float;
  global_bandwidth_gbs : float;
  flops_per_sm_per_cycle : int;  (* for the peak-GFLOPS headline *)
}

let g80 : t =
  {
    name = "g80";
    display = "GeForce 8800 GTX (paper Tables 1-2)";
    limits =
      {
        max_threads_per_sm = 768;
        max_blocks_per_sm = 8;
        regs_per_sm = 8192;
        smem_per_sm = 16384;
        max_threads_per_block = 512;
        warp_size = 32;
        num_sms = 16;
        sps_per_sm = 8;
        sfus_per_sm = 2;
      };
    latencies =
      {
        issue = 4;
        sfu_issue = 16;
        alu = 24;
        sfu = 36;
        shared = 36;
        const_hit = 8;
        global = 250;
        coalesced_tx = 16;
        uncoalesced_tx = 16;
      };
    scoreboard_depth = 6;
    shared_banks = 16;
    clock_ghz = 1.35;
    global_bandwidth_gbs = 86.4;
    flops_per_sm_per_cycle = 18;
  }

(* A wide/modern point in the spirit of a Fermi-class part: 32 banks,
   a 4x register file, single-cycle issue, deeper scoreboard, but a
   longer way to DRAM.  Occupancy cliffs land at different block
   shapes than on the G80, so tuned winners legitimately differ. *)
let wide32 : t =
  {
    name = "wide32";
    display = "wide modern SM (32 banks, 32K regs)";
    limits =
      {
        max_threads_per_sm = 1536;
        max_blocks_per_sm = 8;
        regs_per_sm = 32768;
        smem_per_sm = 49152;
        max_threads_per_block = 1024;
        warp_size = 32;
        num_sms = 14;
        sps_per_sm = 32;
        sfus_per_sm = 4;
      };
    latencies =
      {
        issue = 1;
        sfu_issue = 8;
        alu = 18;
        sfu = 28;
        shared = 26;
        const_hit = 6;
        global = 400;
        coalesced_tx = 8;
        uncoalesced_tx = 8;
      };
    scoreboard_depth = 10;
    shared_banks = 32;
    clock_ghz = 1.15;
    global_bandwidth_gbs = 144.0;
    flops_per_sm_per_cycle = 64;
  }

(* An extreme low-resource point in the spirit of an FPGA soft GPU:
   two tiny SMs, a 2K-register file, 4 shared banks, slow issue but a
   short, fully on-board path to memory.  Most large block shapes do
   not even launch here, so the per-arch winner table genuinely
   disagrees with the discrete GPUs. *)
let fpga_soft : t =
  {
    name = "fpga_soft";
    display = "FPGA soft GPU (2 SMs, 2K regs, 4 banks)";
    limits =
      {
        max_threads_per_sm = 256;
        max_blocks_per_sm = 4;
        regs_per_sm = 2048;
        smem_per_sm = 8192;
        max_threads_per_block = 256;
        warp_size = 32;
        num_sms = 2;
        sps_per_sm = 4;
        sfus_per_sm = 1;
      };
    latencies =
      {
        issue = 8;
        sfu_issue = 32;
        alu = 12;
        sfu = 64;
        shared = 12;
        const_hit = 4;
        global = 60;
        coalesced_tx = 32;
        uncoalesced_tx = 32;
      };
    scoreboard_depth = 2;
    shared_banks = 4;
    clock_ghz = 0.15;
    global_bandwidth_gbs = 0.6;
    flops_per_sm_per_cycle = 8;
  }

(* The registry, in presentation order.  [g80] first: it is the
   default everywhere and the machine all golden results pin. *)
let archs : t list = [ g80; wide32; fpga_soft ]
let names : string list = List.map (fun a -> a.name) archs
let find (name : string) : t option = List.find_opt (fun a -> a.name = name) archs

(* ------------------------------------------------------------------ *)
(* Derived figures                                                     *)
(* ------------------------------------------------------------------ *)

let clock_hz (a : t) : float = a.clock_ghz *. 1e9

(* Peak: G80 = 16 SM * 18 FLOP/SM/cycle * 1.35 GHz = 388.8 GFLOPS. *)
let peak_gflops (a : t) : float =
  float_of_int (a.limits.num_sms * a.flops_per_sm_per_cycle) *. a.clock_ghz

(* Off-chip bytes each SM can consume per cycle: the G80's 86.4 GB/s
   at 1.35 GHz over 16 SMs is 4 bytes. *)
let bytes_per_cycle_per_sm (a : t) : float =
  a.global_bandwidth_gbs *. 1e9 /. clock_hz a /. float_of_int a.limits.num_sms

(* Legacy alias: the paper's latency table, i.e. [g80.latencies]. *)
let g80_latencies : latencies = g80.latencies

(* ------------------------------------------------------------------ *)
(* Table 1: properties of GeForce 8800 memories (for reports)          *)
(* ------------------------------------------------------------------ *)

type memory_row = {
  mem_name : string;
  location : string;
  size : string;
  latency : string;
  read_only : bool;
  description : string;
}

let memories : memory_row list =
  [
    {
      mem_name = "Global";
      location = "off-chip";
      size = "768MB total";
      latency = "200-300 cycles";
      read_only = false;
      description =
        "Large DRAM; all data resides here at kernel start; coalesced when a \
         half-warp accesses contiguous elements";
    };
    {
      mem_name = "Shared";
      location = "on-chip";
      size = "16KB per SM";
      latency = "~register latency";
      read_only = false;
      description = "Per-block scratchpad organized into 16 banks";
    };
    {
      mem_name = "Constant";
      location = "on-chip cache";
      size = "64KB total";
      latency = "~register latency";
      read_only = true;
      description = "8KB cache per SM; single-ported, broadcast on same address";
    };
    {
      mem_name = "Texture";
      location = "on-chip cache";
      size = "up to global";
      latency = ">100 cycles";
      read_only = true;
      description = "16KB cache per two SMs; 2D locality (modeled as cached global)";
    };
    {
      mem_name = "Local";
      location = "off-chip";
      size = "up to global";
      latency = "same as global";
      read_only = false;
      description = "Register spilling space";
    };
  ]

(* ------------------------------------------------------------------ *)
(* Occupancy                                                           *)
(* ------------------------------------------------------------------ *)

type occupancy = {
  blocks_per_sm : int;  (* the paper's B_SM; 0 means the launch is invalid *)
  warps_per_block : int;  (* the paper's W_TB *)
  warps_per_sm : int;
  threads_per_sm : int;
  limiter : string;  (* which resource bound B_SM *)
}

(* B_SM as computed in section 4 of the paper: the maximum number of
   blocks, up to the per-SM block limit, whose combined threads,
   registers and shared memory fit the per-SM limits. *)
let occupancy ?(arch = g80) ~threads_per_block ~regs_per_thread ~smem_per_block () : occupancy =
  let limits = arch.limits in
  let warps_per_block = Util.Stats.cdiv threads_per_block limits.warp_size in
  if threads_per_block <= 0 || threads_per_block > limits.max_threads_per_block then
    {
      blocks_per_sm = 0;
      warps_per_block;
      warps_per_sm = 0;
      threads_per_sm = 0;
      limiter = "threads per block";
    }
  else begin
    let by_threads = limits.max_threads_per_sm / threads_per_block in
    let by_regs =
      if regs_per_thread <= 0 then limits.max_blocks_per_sm
      else limits.regs_per_sm / (regs_per_thread * threads_per_block)
    in
    let by_smem =
      if smem_per_block <= 0 then limits.max_blocks_per_sm else limits.smem_per_sm / smem_per_block
    in
    let b =
      List.fold_left min limits.max_blocks_per_sm [ by_threads; by_regs; by_smem ]
    in
    let limiter =
      if b = limits.max_blocks_per_sm then "max blocks"
      else if b = by_regs && by_regs <= by_threads && by_regs <= by_smem then "registers"
      else if b = by_smem && by_smem <= by_threads then "shared memory"
      else "threads"
    in
    let b = max b 0 in
    {
      blocks_per_sm = b;
      warps_per_block;
      warps_per_sm = b * warps_per_block;
      threads_per_sm = b * threads_per_block;
      limiter;
    }
  end

let is_valid o = o.blocks_per_sm > 0
