(* The GeForce 8800 GTX machine description.

   Encodes Table 1 (memories), Table 2 (resource constraints) and the
   microarchitectural parameters of section 2.1 of the paper, plus the
   occupancy calculation that the paper performs from `-cubin` output
   (worked example in section 2.2: 256 threads/block, 10 regs/thread,
   4KB smem/block -> 3 blocks/SM; raising to 11 regs -> 2 blocks/SM). *)

(* ------------------------------------------------------------------ *)
(* Table 2: constraints of GeForce 8800 and CUDA                       *)
(* ------------------------------------------------------------------ *)

type limits = {
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  regs_per_sm : int;  (* 32-bit registers *)
  smem_per_sm : int;  (* bytes *)
  max_threads_per_block : int;
  warp_size : int;
  num_sms : int;
  sps_per_sm : int;
  sfus_per_sm : int;
}

let g80 : limits =
  {
    max_threads_per_sm = 768;
    max_blocks_per_sm = 8;
    regs_per_sm = 8192;
    smem_per_sm = 16384;
    max_threads_per_block = 512;
    warp_size = 32;
    num_sms = 16;
    sps_per_sm = 8;
    sfus_per_sm = 2;
  }

(* Shared memory is organized into 16 banks, interleaved by 32-bit
   word (section 2.1); half-warp accesses conflict when distinct
   addresses map to the same bank. *)
let shared_banks = 16

let clock_ghz = 1.35
let clock_hz = clock_ghz *. 1e9

(* Peak: 16 SM * 18 FLOP/SM/cycle * 1.35 GHz = 388.8 GFLOPS. *)
let peak_gflops = float_of_int (g80.num_sms * 18) *. clock_ghz

(* 86.4 GB/s of off-chip bandwidth; per SM per cycle that is
   86.4e9 / 1.35e9 / 16 = 4 bytes. *)
let global_bandwidth_gbs = 86.4
let bytes_per_cycle_per_sm = global_bandwidth_gbs *. 1e9 /. clock_hz /. float_of_int g80.num_sms

(* ------------------------------------------------------------------ *)
(* Latency model (cycles)                                              *)
(* ------------------------------------------------------------------ *)

type latencies = {
  issue : int;  (* cycles a warp occupies the issue pipe: 32 threads / 8 SPs *)
  sfu_issue : int;  (* SFU ops issue at quarter rate: 32 threads / 2 SFUs / 4 *)
  alu : int;  (* register RAW latency of SP pipeline *)
  sfu : int;
  shared : int;
  const_hit : int;
  global : int;  (* Table 1: 200-300 cycles; we use the midpoint *)
  coalesced_tx : int;  (* channel occupancy of one 64B transaction at 4 B/cycle *)
  uncoalesced_tx : int;
      (* channel occupancy of one un-coalesced access: the G80 memory
         controller issues a full 64B transaction per straggler lane,
         wasting ~94% of the fetched bytes for a 4B read *)
}

(* Per-warp scoreboard depth: how many long-latency results (global
   loads, SFU ops) a warp may have in flight before further issue of
   such instructions stalls.  The G80 tracked a small fixed number of
   outstanding operands per warp; this is what makes thread-level
   parallelism (other warps) necessary once a warp's own instruction-
   level parallelism exceeds the window — the utilization story of the
   paper's Figure 5. *)
let scoreboard_depth = 6

let g80_latencies : latencies =
  {
    issue = 4;
    sfu_issue = 16;
    alu = 24;
    sfu = 36;
    shared = 36;
    const_hit = 8;
    global = 250;
    coalesced_tx = 16;
    uncoalesced_tx = 16;
  }

(* ------------------------------------------------------------------ *)
(* Table 1: properties of GeForce 8800 memories (for reports)          *)
(* ------------------------------------------------------------------ *)

type memory_row = {
  mem_name : string;
  location : string;
  size : string;
  latency : string;
  read_only : bool;
  description : string;
}

let memories : memory_row list =
  [
    {
      mem_name = "Global";
      location = "off-chip";
      size = "768MB total";
      latency = "200-300 cycles";
      read_only = false;
      description =
        "Large DRAM; all data resides here at kernel start; coalesced when a \
         half-warp accesses contiguous elements";
    };
    {
      mem_name = "Shared";
      location = "on-chip";
      size = "16KB per SM";
      latency = "~register latency";
      read_only = false;
      description = "Per-block scratchpad organized into 16 banks";
    };
    {
      mem_name = "Constant";
      location = "on-chip cache";
      size = "64KB total";
      latency = "~register latency";
      read_only = true;
      description = "8KB cache per SM; single-ported, broadcast on same address";
    };
    {
      mem_name = "Texture";
      location = "on-chip cache";
      size = "up to global";
      latency = ">100 cycles";
      read_only = true;
      description = "16KB cache per two SMs; 2D locality (modeled as cached global)";
    };
    {
      mem_name = "Local";
      location = "off-chip";
      size = "up to global";
      latency = "same as global";
      read_only = false;
      description = "Register spilling space";
    };
  ]

(* ------------------------------------------------------------------ *)
(* Occupancy                                                           *)
(* ------------------------------------------------------------------ *)

type occupancy = {
  blocks_per_sm : int;  (* the paper's B_SM; 0 means the launch is invalid *)
  warps_per_block : int;  (* the paper's W_TB *)
  warps_per_sm : int;
  threads_per_sm : int;
  limiter : string;  (* which resource bound B_SM *)
}

(* B_SM as computed in section 4 of the paper: the maximum number of
   blocks, up to 8, whose combined threads, registers and shared memory
   fit the per-SM limits. *)
let occupancy ?(limits = g80) ~threads_per_block ~regs_per_thread ~smem_per_block () : occupancy
    =
  let warps_per_block = Util.Stats.cdiv threads_per_block limits.warp_size in
  if threads_per_block <= 0 || threads_per_block > limits.max_threads_per_block then
    {
      blocks_per_sm = 0;
      warps_per_block;
      warps_per_sm = 0;
      threads_per_sm = 0;
      limiter = "threads per block";
    }
  else begin
    let by_threads = limits.max_threads_per_sm / threads_per_block in
    let by_regs =
      if regs_per_thread <= 0 then limits.max_blocks_per_sm
      else limits.regs_per_sm / (regs_per_thread * threads_per_block)
    in
    let by_smem =
      if smem_per_block <= 0 then limits.max_blocks_per_sm else limits.smem_per_sm / smem_per_block
    in
    let b =
      List.fold_left min limits.max_blocks_per_sm [ by_threads; by_regs; by_smem ]
    in
    let limiter =
      if b = limits.max_blocks_per_sm then "max blocks"
      else if b = by_regs && by_regs <= by_threads && by_regs <= by_smem then "registers"
      else if b = by_smem && by_smem <= by_threads then "shared memory"
      else "threads"
    in
    let b = max b 0 in
    {
      blocks_per_sm = b;
      warps_per_block;
      warps_per_sm = b * warps_per_block;
      threads_per_sm = b * threads_per_block;
      limiter;
    }
  end

let is_valid o = o.blocks_per_sm > 0
