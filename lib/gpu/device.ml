(* Device memory and the host-side API.

   Plays the role of the CUDA runtime's memory management: the host
   allocates device buffers, copies data in and out, and passes buffer
   base addresses as kernel arguments.  Addresses are byte addresses
   (all accesses are 32-bit and must be 4-byte aligned); storage is a
   word-indexed float array per memory space.  Integer data stored to
   memory round-trips through [float_of_int], which is exact for the
   magnitudes any of our kernels use (< 2^53). *)

type buffer = {
  space : Ptx.Instr.space;
  base : int;  (* byte address *)
  words : int;  (* length in 32-bit words *)
}

type t = {
  mutable glob : float array;  (* global memory, word-indexed *)
  mutable glob_brk : int;  (* allocation high-water mark, words *)
  mutable cst : float array;  (* constant memory *)
  mutable cst_brk : int;
  const_capacity : int;  (* constant-bank capacity in bytes (Table 1: 64KB on G80) *)
}

let create ?(global_words = 1 lsl 16) ?(const_words = 1 lsl 14) ?(const_capacity = 65536) () =
  {
    glob = Array.make global_words 0.0;
    glob_brk = 0;
    cst = Array.make const_words 0.0;
    cst_brk = 0;
    const_capacity;
  }

let grow arr needed =
  let n = Array.length arr in
  if needed <= n then arr
  else begin
    let n' = max needed (2 * n) in
    let a' = Array.make n' 0.0 in
    Array.blit arr 0 a' 0 n;
    a'
  end

(* Allocate [words] 32-bit words of global memory; returns the buffer
   whose [base] is passed to kernels as a pointer argument. *)
let alloc t words =
  if words < 0 then invalid_arg "Device.alloc: negative size";
  t.glob <- grow t.glob (t.glob_brk + words);
  let b = { space = Ptx.Instr.Global; base = t.glob_brk * 4; words } in
  t.glob_brk <- t.glob_brk + words;
  b

(* Allocate in the constant bank (capacity enforced; Table 1: 64KB). *)
let alloc_const t words =
  if words < 0 then invalid_arg "Device.alloc_const: negative size";
  if (t.cst_brk + words) * 4 > t.const_capacity then
    failwith
      (Printf.sprintf "Device.alloc_const: constant memory exhausted (%dKB)"
         (t.const_capacity / 1024));
  t.cst <- grow t.cst (t.cst_brk + words);
  let b = { space = Ptx.Instr.Const; base = t.cst_brk * 4; words } in
  t.cst_brk <- t.cst_brk + words;
  b

(* Deep copy: a private memory image with the same buffer addresses.
   Buffers allocated on the original remain valid on the clone, so a
   staged problem can be cloned per measurement and kernels launched on
   the clones from concurrent domains without sharing mutable state. *)
let clone t =
  {
    glob = Array.copy t.glob;
    glob_brk = t.glob_brk;
    cst = Array.copy t.cst;
    cst_brk = t.cst_brk;
    const_capacity = t.const_capacity;
  }

let check_bounds (b : buffer) i =
  if i < 0 || i >= b.words then
    invalid_arg (Printf.sprintf "Device: word index %d out of bounds for buffer of %d words" i b.words)

(* Host <-> device copies (cudaMemcpy analogues). *)

let to_device t (b : buffer) (src : float array) =
  if Array.length src > b.words then invalid_arg "Device.to_device: source larger than buffer";
  let arr = match b.space with Ptx.Instr.Const -> t.cst | _ -> t.glob in
  Array.blit src 0 arr (b.base / 4) (Array.length src)

let of_device t (b : buffer) : float array =
  let arr = match b.space with Ptx.Instr.Const -> t.cst | _ -> t.glob in
  Array.sub arr (b.base / 4) b.words

let set t (b : buffer) i v =
  check_bounds b i;
  let arr = match b.space with Ptx.Instr.Const -> t.cst | _ -> t.glob in
  arr.(b.base / 4 + i) <- v

let get t (b : buffer) i =
  check_bounds b i;
  let arr = match b.space with Ptx.Instr.Const -> t.cst | _ -> t.glob in
  arr.(b.base / 4 + i)

let fill t (b : buffer) v =
  let arr = match b.space with Ptx.Instr.Const -> t.cst | _ -> t.glob in
  Array.fill arr (b.base / 4) b.words v

(* Raw word access by byte address, used by the executor. *)

let read_global t (byte_addr : int) : float =
  let w = byte_addr lsr 2 in
  if w < 0 || w >= Array.length t.glob then
    invalid_arg (Printf.sprintf "Device.read_global: address %d out of range" byte_addr)
  else t.glob.(w)

let write_global t (byte_addr : int) (v : float) : unit =
  let w = byte_addr lsr 2 in
  if w < 0 || w >= Array.length t.glob then
    invalid_arg (Printf.sprintf "Device.write_global: address %d out of range" byte_addr)
  else t.glob.(w) <- v

let read_const t (byte_addr : int) : float =
  let w = byte_addr lsr 2 in
  if w < 0 || w >= Array.length t.cst then
    invalid_arg (Printf.sprintf "Device.read_const: address %d out of range" byte_addr)
  else t.cst.(w)
