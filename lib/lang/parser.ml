(* Recursive-descent parser and elaborator for minicuda.

   minicuda is a small CUDA-C-shaped concrete syntax that elaborates
   directly into KIR; it exists so kernels can be written and read as
   text (see examples/kernels/*.mcu).  Grammar sketch:

     kernel mm(global float A, const float T, int n, float alpha) {
       shared float As[256];
       float sum = 0.0f;
       #pragma unroll 4
       for (int k = 0; k < 16; k++) { sum += As[k] * alpha; }
       __syncthreads();
       if (threadIdx_x < n) { A[threadIdx_x] = sum; }
     }

   Built-in identifiers: threadIdx_x/y, blockIdx_x/y, blockDim_x/y,
   gridDim_x/y.  Built-in functions: sqrtf, rsqrtf, rcpf, sinf, cosf,
   fabsf, minf/maxf (float), mini/maxi (int), float(int), int(float).
   `#pragma unroll [n]` (n omitted = complete) and `#pragma trip n`
   attach to the following for-loop.  Declarations are mutable;
   mixed-type arithmetic requires explicit float()/int() casts (the KIR
   typechecker enforces this after elaboration). *)

open Kir.Ast

exception Error of { line : int; msg : string }

let err line fmt = Printf.ksprintf (fun msg -> raise (Error { line; msg })) fmt

type state = {
  toks : (Token.t * int) array;
  mutable pos : int;
  (* collected kernel-level declarations *)
  mutable scalars : (string * ty) list;
  mutable arrays : array_param list;
  mutable shared : (string * int) list;
  mutable locals : (string * int) list;
  mutable unrolls : (string * int) list;  (* loop var -> factor *)
}

let peek st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let t = next st in
  if t <> tok then
    err (line st) "expected %s, got %s" (Token.to_string tok) (Token.to_string t)

let ident st =
  match next st with
  | Token.IDENT s -> s
  | t -> err (line st) "expected identifier, got %s" (Token.to_string t)

let int_lit st =
  match next st with
  | Token.INT_LIT i -> i
  | t -> err (line st) "expected integer literal, got %s" (Token.to_string t)

let specials =
  [
    ("threadIdx_x", TidX);
    ("threadIdx_y", TidY);
    ("blockIdx_x", BidX);
    ("blockIdx_y", BidY);
    ("blockDim_x", BdimX);
    ("blockDim_y", BdimY);
    ("gridDim_x", GdimX);
    ("gridDim_y", GdimY);
  ]

let builtin1 =
  [
    ("sqrtf", Sqrt);
    ("rsqrtf", Rsqrt);
    ("rcpf", Rcp);
    ("sinf", Sin);
    ("cosf", Cos);
    ("fabsf", Abs);
    ("absi", Abs);
    ("float", ToF);
    ("int", ToI);
  ]

let builtin2 = [ ("minf", Min); ("maxf", Max); ("mini", Min); ("maxi", Max) ]

(* Is [name] an array (parameter or shared/local declaration)? *)
let is_array st name =
  List.exists (fun (a : array_param) -> String.equal a.aname name) st.arrays
  || List.mem_assoc name st.shared
  || List.mem_assoc name st.locals

let is_scalar_param st name = List.mem_assoc name st.scalars

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                   *)
(* ------------------------------------------------------------------ *)

let rec expr st : expr = ternary st

and ternary st =
  let c = logic_or st in
  if peek st = Token.QUESTION then begin
    advance st;
    let a = expr st in
    expect st Token.COLON;
    let b = ternary st in
    Select (c, a, b)
  end
  else c

and logic_or st =
  let rec go acc =
    if peek st = Token.OROR then begin
      advance st;
      go (Bin (LOr, acc, logic_and st))
    end
    else acc
  in
  go (logic_and st)

and logic_and st =
  let rec go acc =
    if peek st = Token.ANDAND then begin
      advance st;
      go (Bin (LAnd, acc, equality st))
    end
    else acc
  in
  go (equality st)

and equality st =
  let rec go acc =
    match peek st with
    | Token.EQEQ ->
      advance st;
      go (Bin (Eq, acc, relational st))
    | Token.NEQ ->
      advance st;
      go (Bin (Ne, acc, relational st))
    | _ -> acc
  in
  go (relational st)

and relational st =
  let rec go acc =
    match peek st with
    | Token.LT ->
      advance st;
      go (Bin (Lt, acc, additive st))
    | Token.LE ->
      advance st;
      go (Bin (Le, acc, additive st))
    | Token.GT ->
      advance st;
      go (Bin (Gt, acc, additive st))
    | Token.GE ->
      advance st;
      go (Bin (Ge, acc, additive st))
    | _ -> acc
  in
  go (additive st)

and additive st =
  let rec go acc =
    match peek st with
    | Token.PLUS ->
      advance st;
      go (Bin (Add, acc, multiplicative st))
    | Token.MINUS ->
      advance st;
      go (Bin (Sub, acc, multiplicative st))
    | _ -> acc
  in
  go (multiplicative st)

and multiplicative st =
  let rec go acc =
    match peek st with
    | Token.STAR ->
      advance st;
      go (Bin (Mul, acc, unary st))
    | Token.SLASH ->
      advance st;
      go (Bin (Div, acc, unary st))
    | Token.PERCENT ->
      advance st;
      go (Bin (Rem, acc, unary st))
    | _ -> acc
  in
  go (unary st)

and unary st =
  match peek st with
  | Token.MINUS ->
    advance st;
    Un (Neg, unary st)
  | Token.BANG ->
    advance st;
    Un (Not, unary st)
  | _ -> primary st

and primary st =
  match next st with
  | Token.INT_LIT i -> Int i
  | Token.FLOAT_LIT f -> Flt f
  | Token.TRUE -> Bool true
  | Token.FALSE -> Bool false
  | Token.LPAREN ->
    let e = expr st in
    expect st Token.RPAREN;
    e
  | Token.INT ->
    (* int(e) cast *)
    expect st Token.LPAREN;
    let e = expr st in
    expect st Token.RPAREN;
    Un (ToI, e)
  | Token.FLOAT ->
    expect st Token.LPAREN;
    let e = expr st in
    expect st Token.RPAREN;
    Un (ToF, e)
  | Token.IDENT name -> (
    match peek st with
    | Token.LBRACKET ->
      advance st;
      let idx = expr st in
      expect st Token.RBRACKET;
      if not (is_array st name) then err (line st) "%s is not an array" name;
      Ld (name, idx)
    | Token.LPAREN -> (
      advance st;
      match List.assoc_opt name builtin1 with
      | Some op ->
        let a = expr st in
        expect st Token.RPAREN;
        Un (op, a)
      | None -> (
        match List.assoc_opt name builtin2 with
        | Some op ->
          let a = expr st in
          expect st Token.COMMA;
          let b = expr st in
          expect st Token.RPAREN;
          Bin (op, a, b)
        | None -> err (line st) "unknown function %s" name))
    | _ -> (
      match List.assoc_opt name specials with
      | Some s -> Special s
      | None -> if is_scalar_param st name then Param name else Var name))
  | t -> err (line st) "expected expression, got %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let scalar_ty st =
  match next st with
  | Token.FLOAT -> F32
  | Token.INT -> S32
  | Token.BOOL -> Bool
  | t -> err (line st) "expected a type, got %s" (Token.to_string t)

let rec block st : stmt list =
  if peek st = Token.LBRACE then begin
    advance st;
    let rec go acc =
      if peek st = Token.RBRACE then begin
        advance st;
        List.rev acc
      end
      else go (List.rev_append (stmt st) acc)
    in
    go []
  end
  else stmt st

and stmt st : stmt list =
  match peek st with
  | Token.SHARED | Token.LOCAL ->
    let kind = next st in
    expect st Token.FLOAT;
    let name = ident st in
    expect st Token.LBRACKET;
    let size = int_lit st in
    expect st Token.RBRACKET;
    expect st Token.SEMI;
    (match kind with
    | Token.SHARED -> st.shared <- st.shared @ [ (name, size) ]
    | _ -> st.locals <- st.locals @ [ (name, size) ]);
    []
  | Token.FLOAT | Token.INT | Token.BOOL ->
    let ty = scalar_ty st in
    let name = ident st in
    expect st Token.ASSIGN;
    let e = expr st in
    expect st Token.SEMI;
    [ Mut (name, ty, e) ]
  | Token.SYNCTHREADS ->
    advance st;
    expect st Token.LPAREN;
    expect st Token.RPAREN;
    expect st Token.SEMI;
    [ Sync ]
  | Token.RETURN ->
    advance st;
    expect st Token.SEMI;
    [ Return ]
  | Token.IF ->
    advance st;
    expect st Token.LPAREN;
    let c = expr st in
    expect st Token.RPAREN;
    let then_ = block st in
    let else_ =
      if peek st = Token.ELSE then begin
        advance st;
        block st
      end
      else []
    in
    [ If (c, then_, else_) ]
  | Token.UNROLL _ | Token.TRIP _ -> pragma_for st
  | Token.FOR -> for_loop st None None
  | Token.IDENT name -> (
    advance st;
    match next st with
    | Token.ASSIGN ->
      let e = expr st in
      expect st Token.SEMI;
      [ Assign (name, e) ]
    | Token.PLUS_EQ ->
      let e = expr st in
      expect st Token.SEMI;
      [ Assign (name, Bin (Add, Var name, e)) ]
    | Token.LBRACKET -> (
      let idx = expr st in
      expect st Token.RBRACKET;
      match next st with
      | Token.ASSIGN ->
        let e = expr st in
        expect st Token.SEMI;
        [ Store (name, idx, e) ]
      | Token.PLUS_EQ ->
        let e = expr st in
        expect st Token.SEMI;
        [ Store (name, idx, Bin (Add, Ld (name, idx), e)) ]
      | t -> err (line st) "expected = or += after index, got %s" (Token.to_string t))
    | t -> err (line st) "unexpected %s after identifier" (Token.to_string t))
  | t -> err (line st) "expected statement, got %s" (Token.to_string t)

and pragma_for st : stmt list =
  let rec gather unroll trip =
    match peek st with
    | Token.UNROLL n ->
      advance st;
      gather (Some n) trip
    | Token.TRIP n ->
      advance st;
      gather unroll (Some n)
    | Token.FOR -> for_loop st unroll trip
    | t -> err (line st) "pragma must precede a for loop, got %s" (Token.to_string t)
  in
  gather None None

and for_loop st (unroll : int option) (trip : int option) : stmt list =
  expect st Token.FOR;
  expect st Token.LPAREN;
  expect st Token.INT;
  let var = ident st in
  expect st Token.ASSIGN;
  let lo = expr st in
  expect st Token.SEMI;
  let v2 = ident st in
  if v2 <> var then err (line st) "loop condition must test %s" var;
  expect st Token.LT;
  let hi = expr st in
  expect st Token.SEMI;
  let v3 = ident st in
  if v3 <> var then err (line st) "loop update must assign %s" var;
  let step =
    match next st with
    | Token.PLUS_EQ -> int_lit st
    | Token.PLUS -> (
      (* i++ lexes as PLUS PLUS *)
      match next st with
      | Token.PLUS -> 1
      | t -> err (line st) "expected ++ or += in loop update, got %s" (Token.to_string t))
    | Token.ASSIGN ->
      (* i = i + k *)
      let v4 = ident st in
      if v4 <> var then err (line st) "loop update must be %s = %s + k" var var;
      expect st Token.PLUS;
      int_lit st
    | t -> err (line st) "expected loop update, got %s" (Token.to_string t)
  in
  expect st Token.RPAREN;
  let body = block st in
  (match unroll with
  | Some n ->
    if List.mem_assoc var st.unrolls then
      err (line st) "duplicate #pragma unroll for loop variable %s" var;
    st.unrolls <- (var, n) :: st.unrolls
  | None -> ());
  [ For { var; lo; hi; step = Int step; trip; body } ]

(* ------------------------------------------------------------------ *)
(* Kernels                                                             *)
(* ------------------------------------------------------------------ *)

let param st =
  match next st with
  | Token.GLOBAL ->
    expect st Token.FLOAT;
    let name = ident st in
    st.arrays <- st.arrays @ [ { aname = name; aspace = Global } ]
  | Token.CONST ->
    expect st Token.FLOAT;
    let name = ident st in
    st.arrays <- st.arrays @ [ { aname = name; aspace = Const } ]
  | Token.FLOAT ->
    let name = ident st in
    st.scalars <- st.scalars @ [ (name, F32) ]
  | Token.INT ->
    let name = ident st in
    st.scalars <- st.scalars @ [ (name, S32) ]
  | t -> err (line st) "expected parameter, got %s" (Token.to_string t)

let kernel st : kernel =
  expect st Token.KERNEL;
  let name = ident st in
  st.scalars <- [];
  st.arrays <- [];
  st.shared <- [];
  st.locals <- [];
  st.unrolls <- [];
  expect st Token.LPAREN;
  (if peek st = Token.RPAREN then advance st
   else
     let rec go () =
       param st;
       match next st with
       | Token.COMMA -> go ()
       | Token.RPAREN -> ()
       | t -> err (line st) "expected , or ), got %s" (Token.to_string t)
     in
     go ());
  let body = block st in
  let k =
    {
      kname = name;
      scalar_params = st.scalars;
      array_params = st.arrays;
      shared_decls = st.shared;
      local_decls = st.locals;
      body;
    }
  in
  (* Apply #pragma unroll as real transformations, innermost pragma
     collected last so application order does not matter for distinct
     loop variables. *)
  let k =
    List.fold_left
      (fun k (var, factor) -> Kir.Unroll.apply ~select:(Kir.Unroll.Named var) ~factor k)
      k st.unrolls
  in
  Kir.Typecheck.check k;
  k

(* Parse a whole source file: one or more kernels. *)
let parse (src : string) : kernel list =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0; scalars = []; arrays = []; shared = []; locals = []; unrolls = [] } in
  let rec go acc =
    if peek st = Token.EOF then List.rev acc else go (kernel st :: acc)
  in
  go []

let parse_one (src : string) : kernel =
  match parse src with
  | [ k ] -> k
  | ks -> err 0 "expected exactly one kernel, found %d" (List.length ks)

let parse_file (path : string) : kernel list =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse src
