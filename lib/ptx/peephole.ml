(* Apply a verified rule database to a kernel.

   Matching is purely structural: a window of [List.length r.lhs]
   consecutive instructions matches when its canonical form equals the
   rule's lhs bitwise.  The replacement instantiates the rhs through
   the inverse renaming (canonical slot -> concrete register), which is
   injective by construction of [Window.canonicalize].

   Soundness at a site needs one extra fact the rule itself cannot
   carry: any register the lhs defines but the rhs does not
   ([Patterns.clobbers]) must be dead after the window.  We compute
   liveness once on the input kernel and consult it at each candidate
   site.  Replacements never introduce new uses (rhs inputs are a
   subset of lhs inputs, rule wellformedness), so deadness judged on
   the original block remains valid as rewriting proceeds
   left-to-right: liveness after position j depends only on the
   not-yet-rewritten suffix and the block's live-out. *)

open Instr

let instantiate (renaming : Reg.t Reg.Map.t) (seq : t list) : t list =
  List.map
    (map_regs (fun r -> match Reg.Map.find_opt r renaming with Some r' -> r' | None -> r))
    seq

(* Try rule [r] at the front of [window] (already exactly rule-length).
   Returns the concrete replacement on a match. *)
let apply_rule (r : Patterns.rule) (window : t list) : t list option =
  if not (Window.is_pure window) then None
  else
    let canon = Window.canonicalize window in
    if not (Window.equal_seq canon r.Patterns.lhs) then None
    else
      let renaming = Window.renaming window in
      Some (instantiate renaming r.Patterns.rhs)

(* Concrete clobbered registers at a site: lhs-defined, rhs-dropped,
   mapped through the site's renaming. *)
let site_clobbers (r : Patterns.rule) (window : t list) : Reg.t list =
  let renaming = Window.renaming window in
  List.map
    (fun d -> match Reg.Map.find_opt d renaming with Some c -> c | None -> d)
    (Patterns.clobbers r)

type stats = {
  matched : int;
  blocked : int;
  saved_cycles : float;
      (* sum over fired sites of block weight x the rule's [saved]
         issue-cycle win: the statically expected per-thread cycle
         saving of the whole rewrite, usable as a cost signal without
         re-enumerating windows *)
}

let empty_stats = { matched = 0; blocked = 0; saved_cycles = 0.0 }

let run_stats (rules : Patterns.rule list) (k : Prog.t) : Prog.t * stats =
  let rules = List.filter Patterns.wellformed rules in
  (* Matching is a hash lookup, not a scan over the database: a window
     matches rule [r] iff its canonical key equals [Window.key r.lhs],
     so indexing the rules by that key makes each site O(window
     lengths), which is what keeps a thousand-rule database usable
     inside the tuner's inner loop.  First rule per key wins, matching
     the old in-order scan; longer windows are still preferred over a
     one-instruction rewrite of their prefix by trying lengths
     longest-first. *)
  let index : (string, Patterns.rule) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun (r : Patterns.rule) ->
      let key = Window.key r.Patterns.lhs in
      if not (Hashtbl.mem index key) then Hashtbl.add index key r)
    rules;
  let lengths =
    List.sort_uniq
      (fun a b -> compare b a)
      (List.map (fun (r : Patterns.rule) -> List.length r.Patterns.lhs) rules)
  in
  if rules = [] then (k, empty_stats)
  else begin
    let cfg = Cfg.of_kernel k in
    let live = Liveness.compute cfg in
    let stats = ref empty_stats in
    let blocks =
      List.mapi
        (fun bi (b : Prog.block) ->
          let after = Liveness.live_after_each live cfg bi in
          let body = Array.of_list b.Prog.body in
          let n = Array.length body in
          let out = ref [] in
          let j = ref 0 in
          while !j < n do
            let here = !j in
            let fired =
              List.find_map
                (fun len ->
                  if here + len > n then None
                  else
                    let window = Array.to_list (Array.sub body here len) in
                    if not (Window.is_pure window) then None
                    else
                      match Hashtbl.find_opt index (Window.key (Window.canonicalize window)) with
                      | None -> None
                      | Some r -> (
                        match apply_rule r window with
                        | None -> None
                        | Some repl ->
                          let live_after = after.(here + len - 1) in
                          let clobbered_live =
                            List.exists
                              (fun c -> Reg.Set.mem c live_after)
                              (site_clobbers r window)
                          in
                          if clobbered_live then begin
                            stats := { !stats with blocked = !stats.blocked + 1 };
                            None
                          end
                          else Some (repl, len, r)))
                lengths
            in
            match fired with
            | Some (repl, len, r) ->
              stats :=
                {
                  !stats with
                  matched = !stats.matched + 1;
                  saved_cycles =
                    !stats.saved_cycles +. (b.Prog.weight *. float_of_int r.Patterns.saved);
                };
              List.iter (fun i -> out := i :: !out) repl;
              j := here + len
            | None ->
              out := body.(here) :: !out;
              incr j
          done;
          { b with Prog.body = List.rev !out })
        k.Prog.blocks
    in
    ({ k with Prog.blocks }, !stats)
  end

let run (rules : Patterns.rule list) (k : Prog.t) : Prog.t = fst (run_stats rules k)
