(* Canonicalized straight-line instruction windows.

   The superoptimizer reasons about *windows*: short sequences of pure
   ALU instructions with registers renamed to a canonical first-
   occurrence numbering, so that [add %f9, %f3, %f3] and
   [add %f1, %f0, %f0] are the same window.  This module provides the
   canonical form, the structural queries the equivalence checker and
   the peephole matcher share, and the bounded enumerators that feed
   rule discovery (the z80-optimizer's "enumerate targets" stage).

   Windows never contain memory operations, barriers, or ambient
   operands ([Spec]/[Par]): a rule must hold for *every* value of its
   input registers, and those operand classes smuggle in context the
   quantification cannot see. *)

open Instr

(* ------------------------------------------------------------------ *)
(* Bitwise structural equality                                         *)
(* ------------------------------------------------------------------ *)

(* Float immediates compare by bits: OCaml's polymorphic (=) identifies
   0.0 with -0.0 and fails on NaN — the exact confusions the signed-zero
   miscompile of PR 1 exploited.  Everything else is float-free and
   compares structurally. *)
let equal_operand (a : operand) (b : operand) : bool =
  match (a, b) with
  | Imm_f x, Imm_f y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Imm_f _, _ | _, Imm_f _ -> false
  | _ -> a = b

let equal_instr (a : t) (b : t) : bool =
  (* Replacing every operand with a fixed token leaves opcode, type
     tags, destination and addressing offset — all float-free — for the
     structural compare; the operands then compare bitwise. *)
  let strip i = map_uses (fun _ -> Imm_i 0) i in
  strip a = strip b && List.for_all2 equal_operand (operands a) (operands b)

let equal_seq (a : t list) (b : t list) : bool = List.equal equal_instr a b

(* Deterministic text key of a window (Pp round-trips floats). *)
let key (seq : t list) : string = String.concat " " (List.map Pp.instr seq)

(* ------------------------------------------------------------------ *)
(* Structural queries                                                  *)
(* ------------------------------------------------------------------ *)

(* Registers read before any write inside the window, in first-use
   order: the window's inputs, the variables a rule quantifies over. *)
let inputs (seq : t list) : Reg.t list =
  let defined = ref Reg.Set.empty and seen = ref Reg.Set.empty in
  let ins = ref [] in
  List.iter
    (fun i ->
      List.iter
        (fun r ->
          if not (Reg.Set.mem r !defined) && not (Reg.Set.mem r !seen) then begin
            seen := Reg.Set.add r !seen;
            ins := r :: !ins
          end)
        (uses i);
      match def i with Some d -> defined := Reg.Set.add d !defined | None -> ())
    seq;
  List.rev !ins

(* Registers written by the window, in definition order, once each. *)
let defs (seq : t list) : Reg.t list =
  let seen = ref Reg.Set.empty in
  List.filter_map
    (fun i ->
      match def i with
      | Some d when not (Reg.Set.mem d !seen) ->
        seen := Reg.Set.add d !seen;
        Some d
      | _ -> None)
    seq

let pure_instr (i : t) : bool =
  (match i with Ld _ | St _ | Bar -> false | _ -> true)
  && List.for_all (function Spec _ | Par _ -> false | _ -> true) (operands i)

let is_pure (seq : t list) : bool = seq <> [] && List.for_all pure_instr seq

(* ------------------------------------------------------------------ *)
(* Canonical form                                                      *)
(* ------------------------------------------------------------------ *)

(* Occurrence order of registers: per instruction, uses left-to-right,
   then the destination.  The canonical renaming numbers each class by
   first occurrence in this order. *)
let occurrence_order (seq : t list) : Reg.t list =
  List.concat_map (fun i -> uses i @ (match def i with Some d -> [ d ] | None -> [])) seq

let renaming_tbl (seq : t list) : Reg.t Reg.Tbl.t =
  let tbl = Reg.Tbl.create 8 in
  let gen = Reg.Gen.create () in
  List.iter
    (fun r -> if not (Reg.Tbl.mem tbl r) then Reg.Tbl.add tbl r (Reg.Gen.fresh gen (Reg.ty r)))
    (occurrence_order seq);
  tbl

let canonicalize (seq : t list) : t list =
  let tbl = renaming_tbl seq in
  List.map (map_regs (fun r -> Reg.Tbl.find tbl r)) seq

(* The inverse map, canonical register -> concrete register, used by the
   peephole matcher to instantiate a rule's replacement.  The renaming
   is a bijection on the window's registers, so the inverse is total on
   them. *)
let renaming (seq : t list) : Reg.t Reg.Map.t =
  Reg.Tbl.fold (fun concrete canon acc -> Reg.Map.add canon concrete acc) (renaming_tbl seq)
    Reg.Map.empty

let is_canonical (seq : t list) : bool = equal_seq (canonicalize seq) seq

(* ------------------------------------------------------------------ *)
(* Enumeration                                                         *)
(* ------------------------------------------------------------------ *)

(* The instruction vocabulary a discovery run draws from.  Smaller
   vocabularies keep longer windows tractable; the defaults are sized so
   a bounded run finishes in seconds. *)
type vocab = {
  fops2 : fop2 list;
  fops1 : fop1 list;
  iops2 : iop2 list;
  cmps : cmp list;
  pops2 : pop2 list;
  mads : bool;  (* Fmad / Imad *)
  selp : bool;
  cvt : bool;
  pnot : bool;
  movs : bool;  (* pointless on the left-hand side, essential on the right *)
  fimms : float list;
  iimms : int list;
}

let default_vocab =
  {
    fops2 = [ FAdd; FSub; FMul; FDiv; FMin; FMax ];
    (* sin/cos have no algebraic identities worth the enumeration cost *)
    fops1 = [ FNeg; FAbs; FSqrt; FRsqrt; FRcp; FEx2; FLg2 ];
    iops2 = [ IAdd; ISub; IMul; IDiv; IRem; IMin; IMax; IAnd; IOr; IXor; IShl; IShr ];
    cmps = [ CEq; CNe; CLt; CGe ];
    pops2 = [ PAnd; POr; PXor ];
    mads = true;
    selp = true;
    cvt = true;
    pnot = true;
    movs = false;
    (* 4 is the word-size scale every lowered address computation
       carries (mad.s32 r, r, 4, 0), so rules over it fire on real
       kernels, not just synthetic windows. *)
    fimms = [ 0.0; -0.0; 1.0; 2.0 ];
    iimms = [ 0; 1; 2; 4 ];
  }

(* Chained pairs explode combinatorially, so the length-2 enumerator
   uses a reduced vocabulary: the fusable arithmetic core, tiny
   immediate pools, no predicates. *)
let pair_vocab =
  {
    default_vocab with
    fops2 = [ FAdd; FSub; FMul ];
    fops1 = [];
    iops2 = [ IAdd; ISub; IMul ];
    cmps = [];
    pops2 = [];
    mads = false;
    selp = false;
    cvt = false;
    pnot = false;
    fimms = [ 1.0 ];
    iimms = [ 1; 2 ];
  }

(* Every single instruction over the given operand pools, destinations
   chosen per class by [dest].  Deterministic order: instruction class,
   then operator, then operand pools left-to-right. *)
let raw_instrs (v : vocab) ~(fpool : operand list) ~(ipool : operand list)
    ~(ppool : operand list) ~(dest : Reg.ty -> Reg.t) : t list =
  let pairs pool f = List.concat_map (fun a -> List.map (fun b -> f a b) pool) pool in
  let triples pool f =
    List.concat_map (fun a -> List.concat_map (fun b -> List.map (fun c -> f a b c) pool) pool) pool
  in
  let movs =
    if not v.movs then []
    else
      List.map (fun a -> Mov (dest Reg.F32, a)) fpool
      @ List.map (fun a -> Mov (dest Reg.S32, a)) ipool
      @ List.map (fun a -> Mov (dest Reg.Pred, a)) ppool
  in
  movs
  @ List.concat_map (fun o -> pairs fpool (fun a b -> F2 (o, dest Reg.F32, a, b))) v.fops2
  @ List.concat_map (fun o -> List.map (fun a -> F1 (o, dest Reg.F32, a)) fpool) v.fops1
  @ (if v.mads then triples fpool (fun a b c -> Fmad (dest Reg.F32, a, b, c)) else [])
  @ List.concat_map (fun o -> pairs ipool (fun a b -> I2 (o, dest Reg.S32, a, b))) v.iops2
  @ (if v.mads then triples ipool (fun a b c -> Imad (dest Reg.S32, a, b, c)) else [])
  @ (if v.cvt then
       List.map (fun a -> Cvt_f2i (dest Reg.S32, a)) fpool
       @ List.map (fun a -> Cvt_i2f (dest Reg.F32, a)) ipool
     else [])
  @ List.concat_map
      (fun c ->
        pairs fpool (fun a b -> Setp (c, Reg.F32, dest Reg.Pred, a, b))
        @ pairs ipool (fun a b -> Setp (c, Reg.S32, dest Reg.Pred, a, b)))
      v.cmps
  @ (if v.selp then
       List.concat_map
         (fun p ->
           pairs fpool (fun a b -> Selp (dest Reg.F32, a, b, p))
           @ pairs ipool (fun a b -> Selp (dest Reg.S32, a, b, p)))
         ppool
     else [])
  @ (if v.pnot then List.map (fun a -> Pnot (dest Reg.Pred, a)) ppool else [])
  @ List.concat_map (fun o -> pairs ppool (fun a b -> P2 (o, dest Reg.Pred, a, b))) v.pops2

let dedup (ws : t list list) : t list list =
  let seen = Hashtbl.create 256 in
  List.filter
    (fun w ->
      let k = key w in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    ws

let imm_f x = Imm_f x
let imm_i x = Imm_i x

(* Enumerate canonical windows of [len] (1 or 2) instructions.  The
   result is deduplicated and its order is a pure function of the
   vocabulary — discovery determinism rests on this. *)
let enumerate ?(vocab = default_vocab) ~(len : int) () : t list list =
  let reg ty i = Reg (Reg.make ty i) in
  let fpool = [ reg Reg.F32 0; reg Reg.F32 1 ] @ List.map imm_f vocab.fimms in
  let ipool = [ reg Reg.S32 0; reg Reg.S32 1 ] @ List.map imm_i vocab.iimms in
  let ppool = [ reg Reg.Pred 0; reg Reg.Pred 1; Imm_i 0; Imm_i 1 ] in
  (* High destination indices keep generated destinations clear of the
     operand registers; canonicalization renumbers everything. *)
  let dest1 ty = Reg.make ty 9 in
  let singles = raw_instrs vocab ~fpool ~ipool ~ppool ~dest:dest1 in
  match len with
  | 1 -> dedup (List.map (fun i -> canonicalize [ i ]) singles)
  | 2 ->
    dedup
      (List.concat_map
         (fun i1 ->
           match def i1 with
           | None -> []
           | Some d1 ->
             let extend pool ty = if Reg.ty d1 = ty then Reg d1 :: pool else pool in
             let seconds =
               raw_instrs vocab ~fpool:(extend fpool Reg.F32) ~ipool:(extend ipool Reg.S32)
                 ~ppool:(extend ppool Reg.Pred)
                 ~dest:(fun ty -> Reg.make ty 8)
             in
             List.filter_map
               (fun i2 ->
                 (* Only chained pairs: the second instruction must read
                    the first's destination, else the pair is two
                    independent length-1 windows. *)
                 if List.exists (Reg.equal d1) (uses i2) then Some (canonicalize [ i1; i2 ])
                 else None)
               seconds)
         singles)
  | n -> invalid_arg (Printf.sprintf "Window.enumerate: unsupported length %d" n)

(* Candidate replacements for [lhs]: all single instructions over the
   window's *input* registers (plus the vocabulary's immediates and any
   caller-supplied constants, e.g. the folded value of a closed window),
   defining the window's final destination.  The caller filters by cost
   and runs the equivalence funnel; anything surviving both is a rule. *)
let rewrites ?(vocab = { default_vocab with movs = true; mads = true })
    ?(extra_fimms = []) ?(extra_iimms = []) (lhs : t list) : t list list =
  match List.rev (List.filter_map def lhs) with
  | [] -> []
  | d_last :: _ ->
    let ins = inputs lhs in
    let of_ty ty = List.filter_map (fun r -> if Reg.ty r = ty then Some (Reg r) else None) ins in
    let fpool = of_ty Reg.F32 @ List.map imm_f (vocab.fimms @ extra_fimms) in
    let ipool = of_ty Reg.S32 @ List.map imm_i (vocab.iimms @ extra_iimms) in
    let ppool = of_ty Reg.Pred @ [ Imm_i 0; Imm_i 1 ] in
    (* The replacement must define exactly the window's final value;
       generators for other classes get a sacrificial destination and
       are filtered out. *)
    let dest ty = if ty = Reg.ty d_last then d_last else Reg.make ty 98 in
    raw_instrs vocab ~fpool ~ipool ~ppool ~dest
    |> List.filter (fun i -> match def i with Some d -> Reg.equal d d_last | None -> false)
    |> List.map (fun i -> [ i ])
