(* Equivalence checking for PTX instruction windows: the funnel.

   Modeled on the z80-optimizer's QuickCheck -> MidCheck ->
   ExhaustiveCheck pipeline (SNIPPETS.md §1–3), adapted to this ISA:

   - *Quick*: a handful of fixed test vectors screens candidate
     rewrites; almost everything wrong dies here for the cost of a few
     evaluations.
   - *Bounded*: survivors face an adversarial sweep — the full cross
     product of a corpus of cursed values (NaN payloads, signed zeros,
     infinities, denormals, INT_MIN) for windows of up to two inputs,
     plus a seeded random sweep biased toward the same corpus.  A rule
     that survives is *believed*, not proved.
   - *Exhaustive*: windows whose live-in domain is small enough to
     enumerate completely — all-predicate inputs, or closed (constant)
     windows — are decided, and the resulting rule carries a proof.

   The evaluator mirrors [Gpu.Sim]'s per-lane semantics exactly — the
   same [Instr.*_fn] operator tables, the same IEEE float compares, the
   same integer division-by-zero convention — so "equivalent" here
   means "indistinguishable to the simulator".  Values compare by bits
   ([Int64.bits_of_float]): 0.0 and -0.0 are different values, NaN
   equals NaN of the same payload.

   The same evaluator, extended with a memory log and ambient operands,
   doubles as a translation validator for whole [Ptx.Opt] passes
   ([validate]). *)

open Instr

(* ------------------------------------------------------------------ *)
(* Values and contexts                                                 *)
(* ------------------------------------------------------------------ *)

type value = VF of float | VI of int | VP of bool

let equal_value (a : value) (b : value) : bool =
  match (a, b) with
  | VF x, VF y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | VI x, VI y -> x = y
  | VP x, VP y -> x = y
  | _ -> false

let value_to_string = function
  | VF x -> Printf.sprintf "%h" x
  | VI i -> string_of_int i
  | VP b -> if b then "true" else "false"

(* The evaluator got a program it cannot give meaning to (type-confused
   operand, read of an undefined register).  Verified kernels never
   trigger this; it mirrors [Gpu.Sim]'s launch errors. *)
exception Stuck of string

let stuck fmt = Printf.ksprintf (fun m -> raise (Stuck m)) fmt

type ctx = {
  regs : value Reg.Tbl.t;
  ambient : operand -> value option;  (* [Spec]/[Par] valuation *)
  mem : (space * int, float) Hashtbl.t;
  mem_init : space -> int -> float;  (* deterministic initial memory *)
  mutable stores : (space * int * float) list;  (* most recent first *)
  mutable bars : int;
}

let no_ambient : operand -> value option = fun _ -> None

let make_ctx ?(ambient = no_ambient) ?(mem_init = fun _ _ -> 0.0) (assign : (Reg.t * value) list)
    : ctx =
  let regs = Reg.Tbl.create 16 in
  List.iter (fun (r, v) -> Reg.Tbl.replace regs r v) assign;
  { regs; ambient; mem = Hashtbl.create 16; mem_init; stores = []; bars = 0 }

let reg_value (c : ctx) (r : Reg.t) : value =
  match Reg.Tbl.find_opt c.regs r with
  | Some v -> v
  | None -> stuck "read of undefined register %s" (Reg.to_string r)

(* Operand evaluation in a typed context, exactly as the simulator's
   launch-time [isrc_of]/[fsrc_of]/[psrc_of] resolve operands. *)
let eval_f (c : ctx) (o : operand) : float =
  match o with
  | Reg r -> (
    if Reg.ty r <> Reg.F32 then stuck "register %s in float context" (Reg.to_string r);
    match reg_value c r with VF x -> x | _ -> stuck "non-float value in %s" (Reg.to_string r))
  | Imm_f f -> f
  | Imm_i i -> float_of_int i
  | Spec _ | Par _ -> (
    match c.ambient o with
    | Some (VF x) -> x
    | Some (VI i) -> float_of_int i
    | _ -> stuck "ambient operand %s has no valuation" (Pp.operand o))

let eval_i (c : ctx) (o : operand) : int =
  match o with
  | Reg r -> (
    if Reg.ty r <> Reg.S32 then stuck "register %s in integer context" (Reg.to_string r);
    match reg_value c r with VI x -> x | _ -> stuck "non-integer value in %s" (Reg.to_string r))
  | Imm_i i -> i
  | Imm_f _ -> stuck "float immediate in integer context"
  | Spec _ | Par _ -> (
    match c.ambient o with
    | Some (VI i) -> i
    | _ -> stuck "ambient operand %s has no integer valuation" (Pp.operand o))

let eval_p (c : ctx) (o : operand) : bool =
  match o with
  | Reg r -> (
    if Reg.ty r <> Reg.Pred then stuck "register %s in predicate context" (Reg.to_string r);
    match reg_value c r with VP x -> x | _ -> stuck "non-predicate value in %s" (Reg.to_string r))
  | Imm_i i -> i <> 0
  | _ -> stuck "bad operand in predicate context"

(* Float setp uses IEEE unordered-comparison semantics, as [Gpu.Sim]
   does (any comparison with NaN is false except ne). *)
let ftest (cmp : cmp) (x : float) (y : float) : bool =
  match cmp with
  | CEq -> x = y
  | CNe -> x <> y
  | CLt -> x < y
  | CLe -> x <= y
  | CGt -> x > y
  | CGe -> x >= y

let set (c : ctx) (d : Reg.t) (v : value) : unit = Reg.Tbl.replace c.regs d v

let addr_of (c : ctx) ({ base; offset } : addr) : int = eval_i c base + offset

let load (c : ctx) (sp : space) (a : int) : float =
  match Hashtbl.find_opt c.mem (sp, a) with
  | Some v -> v
  | None ->
    let v = c.mem_init sp a in
    Hashtbl.replace c.mem (sp, a) v;
    v

let step (c : ctx) (i : t) : unit =
  match i with
  | Mov (d, a) -> (
    match Reg.ty d with
    | Reg.F32 -> set c d (VF (eval_f c a))
    | Reg.S32 -> set c d (VI (eval_i c a))
    | Reg.Pred -> set c d (VP (eval_p c a)))
  | F2 (op, d, a, b) -> set c d (VF (fop2_fn op (eval_f c a) (eval_f c b)))
  | F1 (op, d, a) -> set c d (VF (fop1_fn op (eval_f c a)))
  | Fmad (d, a, b, cc) ->
    set c d (VF (Util.Float32.mad (eval_f c a) (eval_f c b) (eval_f c cc)))
  | I2 (op, d, a, b) -> set c d (VI (iop2_fn op (eval_i c a) (eval_i c b)))
  | Imad (d, a, b, cc) -> set c d (VI ((eval_i c a * eval_i c b) + eval_i c cc))
  | Cvt_f2i (d, a) -> set c d (VI (int_of_float (eval_f c a)))
  | Cvt_i2f (d, a) -> set c d (VF (Util.Float32.of_int (eval_i c a)))
  | Setp (cmp, Reg.F32, d, a, b) -> set c d (VP (ftest cmp (eval_f c a) (eval_f c b)))
  | Setp (cmp, (Reg.S32 | Reg.Pred), d, a, b) ->
    set c d (VP (cmp_fn cmp (compare (eval_i c a) (eval_i c b))))
  | Selp (d, a, b, p) -> (
    let take = eval_p c p in
    match Reg.ty d with
    | Reg.F32 ->
      let x = eval_f c a and y = eval_f c b in
      set c d (VF (if take then x else y))
    | Reg.S32 ->
      let x = eval_i c a and y = eval_i c b in
      set c d (VI (if take then x else y))
    | Reg.Pred ->
      let x = eval_p c a and y = eval_p c b in
      set c d (VP (if take then x else y)))
  | Pnot (d, a) -> set c d (VP (not (eval_p c a)))
  | P2 (op, d, a, b) -> set c d (VP (pop2_fn op (eval_p c a) (eval_p c b)))
  | Ld (sp, d, a) -> (
    let v = load c sp (addr_of c a) in
    match Reg.ty d with
    | Reg.F32 -> set c d (VF v)
    | Reg.S32 -> set c d (VI (int_of_float v))
    | Reg.Pred -> stuck "predicate load")
  | St (sp, a, v) ->
    let x =
      match Pp.operand_ty v with
      | Reg.F32 -> eval_f c v
      | Reg.S32 -> float_of_int (eval_i c v)
      | Reg.Pred -> stuck "predicate store"
    in
    let ad = addr_of c a in
    Hashtbl.replace c.mem (sp, ad) x;
    c.stores <- (sp, ad, x) :: c.stores
  | Bar -> c.bars <- c.bars + 1

let run_seq (c : ctx) (seq : t list) : unit = List.iter (step c) seq

(* Evaluate a pure window under [assign]; returns the final value of
   each defined register.  Used by discovery to fold closed windows. *)
let eval_window (assign : (Reg.t * value) list) (seq : t list) : (Reg.t * value) list =
  let c = make_ctx assign in
  run_seq c seq;
  List.map (fun d -> (d, reg_value c d)) (Window.defs seq)

(* ------------------------------------------------------------------ *)
(* Test-vector corpora                                                 *)
(* ------------------------------------------------------------------ *)

let f32_bits b = Util.Float32.of_bits b

(* Quick screen: a few values per class, chosen so single-input windows
   see every one of them — signed zeros and NaN included, so the
   classic signed-zero identity dies in the first eight evaluations. *)
let quick_floats =
  [| 1.0; -2.0; 0.0; -0.0; 0.5; infinity; neg_infinity; f32_bits 0x7fc00000l |]

let quick_ints = [| 0; 1; -1; 2; 7; -8; 0x7fffffff; -0x80000000 |]
let quick_preds = [| true; false |]

(* Adversarial corpus: the values float folklore says will find you. *)
let adversarial_floats =
  [|
    0.0;
    -0.0;
    1.0;
    -1.0;
    2.0;
    0.5;
    -0.5;
    1.5;
    infinity;
    neg_infinity;
    f32_bits 0x7fc00000l (* canonical quiet NaN *);
    f32_bits 0x7fc00001l (* NaN payload *);
    f32_bits 0xffc12345l (* negative NaN, another payload *);
    f32_bits 0x00000001l (* smallest denormal *);
    f32_bits 0x807fffffl (* largest-magnitude negative denormal *);
    f32_bits 0x00800000l (* smallest normal *);
    f32_bits 0x7f7fffffl (* FLT_MAX *);
    f32_bits 0x3f7fffffl (* just under 1.0 *);
  |]

let adversarial_ints =
  [| 0; 1; -1; 2; 3; 31; 32; 63; 64; 100; -7; 0x7fffffff; -0x80000000; max_int; min_int |]

let random_value (rng : Util.Rng.t) (ty : Reg.ty) : value =
  match ty with
  | Reg.F32 -> (
    match Util.Rng.int rng 4 with
    | 0 -> VF adversarial_floats.(Util.Rng.int rng (Array.length adversarial_floats))
    | 1 -> VF (Util.Float32.of_bits (Int32.of_int (Util.Rng.int rng (1 lsl 32))))
    | _ ->
      (* Unit-scale band: full random mantissa, exponent in
         [2^-31, 2^4].  Uniform bit patterns almost never land here
         (the exponent byte is uniform over 256 values), yet this is
         where rounding interacts with the vocabulary's unit-scale
         immediates — the near-miss associativity rewrites
         ((x+1)+x vs 2x+1) are refutable only on this band. *)
      let sign = if Util.Rng.int rng 2 = 0 then 0l else Int32.min_int in
      let e = 96 + Util.Rng.int rng 36 in
      let m = Util.Rng.int rng (1 lsl 23) in
      VF (Util.Float32.of_bits Int32.(logor sign (logor (shift_left (of_int e) 23) (of_int m)))))
  | Reg.S32 -> (
    match Util.Rng.int rng 3 with
    | 0 -> VI adversarial_ints.(Util.Rng.int rng (Array.length adversarial_ints))
    | 1 -> VI (Util.Rng.int rng (1 lsl 32) - (1 lsl 31))
    | _ -> VI (Util.Rng.int rng 65 - 32) (* small, shift- and divisor-sized *))
  | Reg.Pred -> VP (Util.Rng.int rng 2 = 0)

(* One f32 ulp either side of a finite constant. *)
let nudge32 (x : float) (up : bool) : float =
  let b = Util.Float32.to_bits x in
  let towards_zero = (b >= 0l) <> up in
  if Int32.equal b 0l || Int32.equal b Int32.min_int then
    Util.Float32.of_bits (if up then 1l else Int32.logor Int32.min_int 1l)
  else Util.Float32.of_bits (Int32.add b (if towards_zero then -1l else 1l))

(* The immediates of the pair under test, folded into the bounded
   corpus.  A window mentioning the constant c is exactly the window
   whose behaviour can pivot at c — setp.eq %r0, c is constant-false
   on any corpus that misses c — so folklore values alone stop being
   adversarial the moment the vocabulary grows a new immediate. *)
let immediate_values (seqs : t list list) : float list * int list =
  let fs = ref [] and is_ = ref [] in
  List.iter
    (List.iter (fun i ->
         List.iter
           (function
             | Imm_f x ->
               if Float.is_finite x then
                 fs := nudge32 x false :: nudge32 x true :: Float.neg x :: x :: !fs
             | Imm_i c -> is_ := (c + 1) :: (c - 1) :: c :: !is_
             | Reg _ | Par _ | Spec _ -> ())
           (operands i)))
    seqs;
  (List.sort_uniq compare (List.rev !fs), List.sort_uniq compare (List.rev !is_))

let corpus_values ?(extra_floats = []) ?(extra_ints = []) (ty : Reg.ty) : value list =
  match ty with
  | Reg.F32 ->
    Array.to_list (Array.map (fun x -> VF x) adversarial_floats)
    @ List.map (fun x -> VF x) extra_floats
  | Reg.S32 ->
    Array.to_list (Array.map (fun x -> VI x) adversarial_ints)
    @ List.map (fun x -> VI x) extra_ints
  | Reg.Pred -> [ VP true; VP false ]

(* ------------------------------------------------------------------ *)
(* The funnel                                                          *)
(* ------------------------------------------------------------------ *)

type tier = Quick | Bounded | Exhaustive

let tier_name = function Quick -> "quick" | Bounded -> "bounded" | Exhaustive -> "exhaustive"

let tier_of_name = function
  | "quick" -> Some Quick
  | "bounded" -> Some Bounded
  | "exhaustive" -> Some Exhaustive
  | _ -> None

type counterexample = {
  cx_assign : (Reg.t * value) list;  (* the refuting input vector *)
  cx_reg : Reg.t;  (* first output register that disagrees *)
  cx_lhs : value;
  cx_rhs : value;
}

let counterexample_to_string (cx : counterexample) : string =
  Printf.sprintf "%s: %s gives %s vs %s"
    (String.concat ", "
       (List.map (fun (r, v) -> Printf.sprintf "%s=%s" (Reg.to_string r) (value_to_string v))
          cx.cx_assign))
    (Reg.to_string cx.cx_reg) (value_to_string cx.cx_lhs) (value_to_string cx.cx_rhs)

type verdict =
  | Equivalent of tier  (* [Exhaustive]: proved; [Bounded]: survived the sweep *)
  | Refuted of tier * counterexample  (* the tier that found the counterexample *)
  | Unsupported of string  (* the funnel does not quantify over this window *)

(* Seed derived from the pair's text: vectors depend only on the rewrite
   under test, never on enumeration order or worker count. *)
let pair_seed (lhs : t list) (rhs : t list) : int =
  let d = Digest.string (Window.key lhs ^ " => " ^ Window.key rhs) in
  let v = ref 0 in
  String.iteri (fun i ch -> if i < 7 then v := (!v lsl 8) lor Char.code ch) d;
  !v

let check ?(sweep = 128) ?seed (lhs : t list) (rhs : t list) : verdict =
  if not (Window.is_pure lhs && Window.is_pure rhs) then
    Unsupported "window has memory, barrier or ambient operands"
  else
    let lhs_defs = Window.defs lhs in
    let outs = Window.defs rhs in
    let mem_reg rs r = List.exists (Reg.equal r) rs in
    if outs = [] then Unsupported "replacement defines nothing"
    else if not (List.for_all (mem_reg lhs_defs) outs) then
      Unsupported "replacement defines registers outside the window"
    else if
      (* The final value of the window must be among the compared
         outputs, else the "rule" forgets the window's result. *)
      not
        (match List.rev (List.filter_map def lhs) with
        | last :: _ -> mem_reg outs last
        | [] -> false)
    then Unsupported "replacement drops the window's final destination"
    else
      let ins = Window.inputs lhs in
      if not (List.for_all (mem_reg ins) (Window.inputs rhs)) then
        Unsupported "replacement reads registers the window does not"
      else
        let try_vector tier assign =
          let outputs seq =
            let c = make_ctx assign in
            run_seq c seq;
            List.map (reg_value c) outs
          in
          let a = outputs lhs and b = outputs rhs in
          let rec first3 rs xs ys =
            match (rs, xs, ys) with
            | r :: rs', x :: xs', y :: ys' ->
              if equal_value x y then first3 rs' xs' ys'
              else Some (Refuted (tier, { cx_assign = assign; cx_reg = r; cx_lhs = x; cx_rhs = y }))
            | _ -> None
          in
          first3 outs a b
        in
        let rec sweep_vectors tier = function
          | [] -> None
          | v :: rest -> (
            match try_vector tier v with Some r -> Some r | None -> sweep_vectors tier rest)
        in
        (* Tier 1: quick fixed vectors. *)
        let nq = Array.length quick_floats in
        let quick_vecs =
          List.init nq (fun j ->
              List.mapi
                (fun i r ->
                  ( r,
                    match Reg.ty r with
                    | Reg.F32 -> VF quick_floats.((j + i) mod nq)
                    | Reg.S32 -> VI quick_ints.((j + i) mod Array.length quick_ints)
                    | Reg.Pred -> VP quick_preds.((j + i) mod 2) ))
                ins)
        in
        match sweep_vectors Quick quick_vecs with
        | Some r -> r
        | None -> (
          (* Tier 3 short-circuit: domains small enough to enumerate are
             decided outright. *)
          let exhaustive_domain =
            List.for_all (fun r -> Reg.ty r = Reg.Pred) ins && List.length ins <= 10
          in
          if exhaustive_domain then begin
            let rec all_assign = function
              | [] -> [ [] ]
              | r :: rest ->
                let tails = all_assign rest in
                List.concat_map (fun t -> [ (r, VP false) :: t; (r, VP true) :: t ]) tails
            in
            match sweep_vectors Exhaustive (all_assign ins) with
            | Some r -> r
            | None -> Equivalent Exhaustive
          end
          else
            (* Tier 2: adversarial corpus cross product (narrow windows)
               plus a seeded random sweep.  The corpus includes the
               pair's own immediates and their neighbours. *)
            let extra_floats, extra_ints = immediate_values [ lhs; rhs ] in
            let corpus = corpus_values ~extra_floats ~extra_ints in
            let explicit =
              match ins with
              | [ r ] -> List.map (fun v -> [ (r, v) ]) (corpus (Reg.ty r))
              | [ r; s ] ->
                List.concat_map
                  (fun v -> List.map (fun w -> [ (r, v); (s, w) ]) (corpus (Reg.ty s)))
                  (corpus (Reg.ty r))
              | _ -> []
            in
            let rng =
              Util.Rng.create (match seed with Some s -> s | None -> pair_seed lhs rhs)
            in
            let random =
              List.init sweep (fun _ -> List.map (fun r -> (r, random_value rng (Reg.ty r))) ins)
            in
            match sweep_vectors Bounded (explicit @ random) with
            | Some r -> r
            | None -> Equivalent Bounded)

(* ------------------------------------------------------------------ *)
(* Translation validation of whole kernels                             *)
(* ------------------------------------------------------------------ *)

(* [validate orig trans] replays every block of both kernels as
   straight-line per-thread code under common random register, ambient
   and memory valuations, and demands bitwise agreement on the store
   log, the barrier count, and every register the *translated* kernel
   may still read downstream (its per-block live-out).  Registers the
   transformation legitimately deleted — a copy-propagated temporary
   whose def DCE removed — are exactly the ones absent from the
   translated kernel's live-out, so they are not compared (under a
   common seeding they would trivially, and wrongly, mismatch).  This
   is the per-block translation validator for the
   block-structure-preserving [Ptx.Opt] passes and the peephole pass:
   it cannot prove a transformation, but it puts the same adversarial
   machinery behind "this pass did not change my kernel's meaning" as
   behind the rule database. *)

type mismatch = { m_label : string; m_vector : int; m_reason : string }

let mismatch_to_string (m : mismatch) : string =
  Printf.sprintf "block %S, vector %d: %s" m.m_label m.m_vector m.m_reason

let space_code = function Global -> 1 | Shared -> 2 | Const -> 3 | Local -> 4

let validate ?(vectors = 12) ?(seed = 1337) (orig : Prog.t) (trans : Prog.t) :
    (int, mismatch) result =
  let labels k = List.map (fun (b : Prog.block) -> b.Prog.label) k.Prog.blocks in
  if labels orig <> labels trans then
    Error { m_label = "<kernel>"; m_vector = 0; m_reason = "block structure differs" }
  else begin
    let live_out k =
      let cfg = Cfg.of_kernel k in
      let live = Liveness.compute cfg in
      let tbl = Hashtbl.create 16 in
      List.iteri
        (fun i (b : Prog.block) -> Hashtbl.replace tbl b.Prog.label live.Liveness.live_out.(i))
        k.Prog.blocks;
      tbl
    in
    let out_t = live_out trans in
    let universe = Reg.Set.union (Prog.all_regs orig) (Prog.all_regs trans) in
    let specials = List.map (fun s -> Spec s) all_specials in
    let exception Found of mismatch in
    try
      for vec = 0 to vectors - 1 do
        let rng = Util.Rng.create ((seed * 1000003) + vec) in
        let assign =
          Reg.Set.fold (fun r acc -> (r, random_value rng (Reg.ty r)) :: acc) universe []
        in
        (* Ambient valuation: small non-negative specials, typed params
           (buffer bases word-aligned). *)
        let ambient_tbl = Hashtbl.create 16 in
        List.iter
          (fun o -> Hashtbl.replace ambient_tbl (Pp.operand o) (VI (Util.Rng.int rng 8)))
          specials;
        List.iter
          (fun (p : Prog.param) ->
            let v =
              match p.Prog.pty with
              | Prog.PF32 -> VF (Util.Float32.of_int (Util.Rng.int rng 17 - 8))
              | Prog.PS32 -> VI (Util.Rng.int rng 64)
              | Prog.PBuf _ -> VI (Util.Rng.int rng 64 * 4)
            in
            Hashtbl.replace ambient_tbl (Pp.operand (Par p.Prog.pname)) v)
          orig.Prog.params;
        let ambient o = Hashtbl.find_opt ambient_tbl (Pp.operand o) in
        let mem_init sp a =
          let r = Util.Rng.create ((seed * 7919) + (space_code sp * 104729) + a) in
          Util.Float32.of_int (Util.Rng.int r 2001 - 1000)
        in
        List.iter2
          (fun (bo : Prog.block) (bt : Prog.block) ->
            let fail reason =
              raise (Found { m_label = bo.Prog.label; m_vector = vec; m_reason = reason })
            in
            if bo.Prog.term <> bt.Prog.term then fail "terminator differs";
            let run body =
              let c = make_ctx ~ambient ~mem_init assign in
              (try run_seq c body with Stuck m -> fail ("stuck: " ^ m));
              c
            in
            let co = run bo.Prog.body and ct = run bt.Prog.body in
            if co.bars <> ct.bars then
              fail (Printf.sprintf "barrier count %d vs %d" co.bars ct.bars);
            let stores c = List.rev c.stores in
            let eq_store (s1, a1, v1) (s2, a2, v2) =
              s1 = s2 && a1 = a2 && Int64.equal (Int64.bits_of_float v1) (Int64.bits_of_float v2)
            in
            if not (List.equal eq_store (stores co) (stores ct)) then fail "store log differs";
            let outs =
              try Hashtbl.find out_t bt.Prog.label with Not_found -> Reg.Set.empty
            in
            Reg.Set.iter
              (fun r ->
                let vo = try Some (reg_value co r) with Stuck _ -> None in
                let vt = try Some (reg_value ct r) with Stuck _ -> None in
                match (vo, vt) with
                | Some a, Some b when equal_value a b -> ()
                | None, None -> ()
                | _ ->
                  fail
                    (Printf.sprintf "live-out %s: %s vs %s" (Reg.to_string r)
                       (match vo with Some v -> value_to_string v | None -> "<undef>")
                       (match vt with Some v -> value_to_string v | None -> "<undef>")))
              outs)
          orig.Prog.blocks trans.Prog.blocks
      done;
      Ok vectors
    with Found m -> Error m
  end

(* Version tag of the evaluator semantics and funnel parameters; part of
   the rule database's store key, so a semantics change can never reuse
   rules verified under the old meaning. *)
let semantics_version = "ptx-equiv-v2"
