(* Kernels of the PTX-like ISA: parameter lists, memory footprints and a
   list of basic blocks with explicit terminators.

   Each block carries a [weight]: the expected number of executions per
   thread, derived from loop trip counts during lowering.  This is the
   machine-checked analogue of the paper's manual loop-trip annotation
   of PTX dumps, and is what [Count] consumes to estimate dynamic
   instruction counts statically. *)

(* Kernel parameter kinds.  A buffer parameter carries a byte address
   into the corresponding memory space at launch time. *)
type ptype =
  | PF32  (* scalar f32 *)
  | PS32  (* scalar s32 *)
  | PBuf of Instr.space  (* base address of an array in [space] *)

type param = { pname : string; pty : ptype }

type term =
  | Jump of string
  | Br of {
      pred : Reg.t;
      negate : bool;  (* branch taken when predicate is [not negate] *)
      if_true : string;
      if_false : string;
      reconv : string;  (* immediate post-dominator: SIMT reconvergence point *)
    }
  | Ret

type block = { label : string; weight : float; body : Instr.t list; term : term }

type t = {
  name : string;
  params : param list;
  smem_words : int;  (* statically declared shared memory, 32-bit words per block *)
  lmem_words : int;  (* per-thread local (spill) memory, 32-bit words *)
  blocks : block list;
}

let block ?(weight = 1.0) label body term = { label; weight; body; term }

let make ~name ~params ~smem_words ~lmem_words blocks =
  { name; params; smem_words; lmem_words; blocks }

(* ------------------------------------------------------------------ *)

let term_successors = function
  | Jump l -> [ l ]
  | Br { if_true; if_false; _ } -> [ if_true; if_false ]
  | Ret -> []

let term_uses = function Br { pred; _ } -> [ pred ] | Jump _ | Ret -> []

let map_term_regs f = function
  | Br b -> Br { b with pred = f b.pred }
  | (Jump _ | Ret) as t -> t

let find_block t label =
  match List.find_opt (fun b -> String.equal b.label label) t.blocks with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Prog.find_block: no block %S in %s" label t.name)

let block_index t =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i b -> Hashtbl.replace tbl b.label i) t.blocks;
  tbl

let param_names t = List.map (fun p -> p.pname) t.params

let find_param t name =
  match List.find_opt (fun p -> String.equal p.pname name) t.params with
  | Some p -> Some p.pty
  | None -> None

(* All registers mentioned anywhere in the kernel. *)
let all_regs t =
  let set = ref Reg.Set.empty in
  let add r = set := Reg.Set.add r !set in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          (match Instr.def i with Some d -> add d | None -> ());
          List.iter add (Instr.uses i))
        b.body;
      List.iter add (term_uses b.term))
    t.blocks;
  !set

(* Structural sanity checks: every control-flow target exists, labels
   are unique, the entry block is first, and reconvergence labels are
   real blocks.  Raises [Invalid_argument] describing the first
   violation. *)
let validate t =
  if t.blocks = [] then invalid_arg "Prog.validate: kernel has no blocks";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun b ->
      if Hashtbl.mem seen b.label then
        invalid_arg (Printf.sprintf "Prog.validate: duplicate label %S" b.label);
      Hashtbl.replace seen b.label ())
    t.blocks;
  let check_label where l =
    if not (Hashtbl.mem seen l) then
      invalid_arg (Printf.sprintf "Prog.validate: %s refers to unknown block %S" where l)
  in
  List.iter
    (fun b ->
      List.iter (check_label (Printf.sprintf "terminator of %S" b.label)) (term_successors b.term);
      match b.term with
      | Br { reconv; _ } -> check_label (Printf.sprintf "reconvergence of %S" b.label) reconv
      | Jump _ | Ret -> ())
    t.blocks;
  (* Parameter names must be unique. *)
  let pseen = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if Hashtbl.mem pseen p.pname then
        invalid_arg (Printf.sprintf "Prog.validate: duplicate parameter %S" p.pname);
      Hashtbl.replace pseen p.pname ())
    t.params;
  (* Every [Par] operand must name a declared parameter. *)
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          List.iter
            (function
              | Instr.Par name ->
                if not (Hashtbl.mem pseen name) then
                  invalid_arg
                    (Printf.sprintf "Prog.validate: use of undeclared parameter %S" name)
              | _ -> ())
            (Instr.operands i))
        b.body)
    t.blocks;
  t

(* Number of static instructions (bodies + terminators). *)
let static_size t =
  List.fold_left (fun acc b -> acc + List.length b.body + 1) 0 t.blocks

(* Register-file sizes per class: one more than the highest register
   index mentioned anywhere, so simulators can lay registers out as
   flat per-class arrays (decode helper). *)
let regfile_sizes t : int * int * int =
  let nf = ref 0 and nr = ref 0 and np = ref 0 in
  Reg.Set.iter
    (fun r ->
      match Reg.ty r with
      | Reg.F32 -> nf := max !nf (Reg.idx r + 1)
      | Reg.S32 -> nr := max !nr (Reg.idx r + 1)
      | Reg.Pred -> np := max !np (Reg.idx r + 1))
    (all_regs t);
  (!nf, !nr, !np)
