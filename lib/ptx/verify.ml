(* Kernel verification between pipeline stages.

   [Prog.validate] raises on the first structural error; this module
   instead *collects* violations, and adds the semantic checks a pass
   manager wants after every transformation:

   - structure: blocks exist, labels are unique, every terminator and
     reconvergence target names a real block, parameters are unique and
     every [Par] operand is declared;
   - def-before-use: a forward must-defined dataflow over the CFG (meet
     is intersection over predecessors, the entry starts empty); any
     register read before every path defines it is a violation.  The
     lowered code is SSA-ish — mutable KIR variables become a single
     register reassigned in place — so this catches the classic broken
     pass that renames a definition and strands its uses;
   - barrier placement: [Bar] must not execute in a divergent region.
     A branch is divergent only when its predicate is *tid-tainted*
     (computed transitively from the [%tid.*] specials); for such a
     branch, every block reachable from either target without passing
     the reconvergence point is divergent, and a barrier there would
     deadlock threads that took the other side.  Uniform branches (loop
     trip counts, block-level guards) may contain barriers freely.

   The taint analysis is flow-insensitive over registers and does not
   track taint through memory, so it can miss divergence laundered
   through shared memory; it never flags a uniform branch. *)

type violation = { where : string; what : string }

let violation where fmt = Printf.ksprintf (fun what -> { where; what }) fmt
let to_string v = Printf.sprintf "[%s] %s" v.where v.what
let pp fmt v = Format.pp_print_string fmt (to_string v)
let report vs = String.concat "; " (List.map to_string vs)

(* ------------------------------------------------------------------ *)
(* Structural checks (the collected-violation mirror of Prog.validate) *)
(* ------------------------------------------------------------------ *)

let structural (k : Prog.t) : violation list =
  let out = ref [] in
  let add v = out := v :: !out in
  if k.blocks = [] then add (violation "kernel" "kernel has no blocks");
  let labels = Hashtbl.create 16 in
  List.iter
    (fun (b : Prog.block) ->
      if Hashtbl.mem labels b.label then add (violation b.label "duplicate block label")
      else Hashtbl.replace labels b.label ())
    k.blocks;
  let check_label where what l =
    if not (Hashtbl.mem labels l) then
      add (violation where "%s targets unknown block %S" what l)
  in
  List.iter
    (fun (b : Prog.block) ->
      match b.term with
      | Prog.Jump l -> check_label b.label "jump" l
      | Prog.Br { if_true; if_false; reconv; _ } ->
        check_label b.label "branch (taken)" if_true;
        check_label b.label "branch (fall-through)" if_false;
        check_label b.label "reconvergence point" reconv
      | Prog.Ret -> ())
    k.blocks;
  let pseen = Hashtbl.create 8 in
  List.iter
    (fun (p : Prog.param) ->
      if Hashtbl.mem pseen p.pname then
        add (violation "kernel" "duplicate parameter %S" p.pname)
      else Hashtbl.replace pseen p.pname ())
    k.params;
  List.iter
    (fun (b : Prog.block) ->
      List.iter
        (fun i ->
          List.iter
            (function
              | Instr.Par name when not (Hashtbl.mem pseen name) ->
                add (violation b.label "references undeclared parameter %S" name)
              | _ -> ())
            (Instr.operands i))
        b.body)
    k.blocks;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Def-before-use: forward must-defined dataflow                       *)
(* ------------------------------------------------------------------ *)

let def_before_use (k : Prog.t) : violation list =
  let cfg = Cfg.of_kernel k in
  let n = Cfg.num_blocks cfg in
  let universe = Prog.all_regs k in
  let defs =
    Array.init n (fun bi ->
        List.fold_left
          (fun s i -> match Instr.def i with Some d -> Reg.Set.add d s | None -> s)
          Reg.Set.empty (Cfg.block cfg bi).body)
  in
  (* in(entry) = empty; in(b) = ∩ over preds p of (in(p) ∪ defs(p)).
     Non-entry blocks start at ⊤ so loop back-edges do not erase
     definitions from the preheader.  Unreachable blocks keep ⊤: dead
     code is not this check's business. *)
  let inb = Array.make n universe in
  if n > 0 then inb.(0) <- Reg.Set.empty;
  let preds = Cfg.preds cfg in
  let changed = ref true in
  while !changed do
    changed := false;
    for bi = 1 to n - 1 do
      match preds.(bi) with
      | [] -> ()
      | p :: rest ->
        let meet =
          List.fold_left
            (fun acc q -> Reg.Set.inter acc (Reg.Set.union inb.(q) defs.(q)))
            (Reg.Set.union inb.(p) defs.(p))
            rest
        in
        if not (Reg.Set.equal meet inb.(bi)) then begin
          inb.(bi) <- meet;
          changed := true
        end
    done
  done;
  let out = ref [] in
  for bi = 0 to n - 1 do
    let b = Cfg.block cfg bi in
    let defined = ref inb.(bi) in
    List.iter
      (fun i ->
        List.iter
          (fun r ->
            if not (Reg.Set.mem r !defined) then
              out := violation b.label "use of undefined register %s" (Reg.to_string r) :: !out)
          (Instr.uses i);
        match Instr.def i with Some d -> defined := Reg.Set.add d !defined | None -> ())
      b.body;
    List.iter
      (fun r ->
        if not (Reg.Set.mem r !defined) then
          out := violation b.label "branch predicate %s undefined" (Reg.to_string r) :: !out)
      (Prog.term_uses b.term)
  done;
  List.sort_uniq compare (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Barrier placement under SIMT divergence                             *)
(* ------------------------------------------------------------------ *)

(* Registers whose value can differ between threads of a block:
   transitive closure from the [%tid.*] specials.  Loads propagate the
   taint of their address (the loaded value varies when the address
   does). *)
let tid_tainted (k : Prog.t) : Reg.Set.t =
  let tainted = ref Reg.Set.empty in
  let op_tainted = function
    | Instr.Reg r -> Reg.Set.mem r !tainted
    | Instr.Spec (Instr.Tid_x | Instr.Tid_y | Instr.Tid_z) -> true
    | _ -> false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Prog.block) ->
        List.iter
          (fun i ->
            match Instr.def i with
            | Some d when not (Reg.Set.mem d !tainted) ->
              if List.exists op_tainted (Instr.operands i) then begin
                tainted := Reg.Set.add d !tainted;
                changed := true
              end
            | _ -> ())
          b.body)
      k.blocks
  done;
  !tainted

let barrier_placement (k : Prog.t) : violation list =
  let cfg = Cfg.of_kernel k in
  let tainted = tid_tainted k in
  let out = ref [] in
  List.iter
    (fun (b : Prog.block) ->
      match b.term with
      | Prog.Br { pred; if_true; if_false; reconv; _ } when Reg.Set.mem pred tainted ->
        let stop = Cfg.index cfg reconv in
        let visited = Array.make (Cfg.num_blocks cfg) false in
        let rec dfs bi =
          if bi <> stop && not visited.(bi) then begin
            visited.(bi) <- true;
            let blk = Cfg.block cfg bi in
            if List.exists Instr.is_barrier blk.body then
              out :=
                violation blk.label
                  "barrier inside divergent region of thread-dependent branch at %S" b.label
                :: !out;
            List.iter dfs (Cfg.succs cfg).(bi)
          end
        in
        dfs (Cfg.index cfg if_true);
        dfs (Cfg.index cfg if_false)
      | _ -> ())
    k.blocks;
  List.sort_uniq compare (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(* Structural violations gate the rest: the dataflow checks need a
   well-formed CFG to run at all. *)
let check (k : Prog.t) : (unit, violation list) result =
  match structural k with
  | _ :: _ as vs -> Error vs
  | [] -> (
    match def_before_use k @ barrier_placement k with
    | [] -> Ok ()
    | vs -> Error vs)

exception Invalid of string * violation list

let () =
  Printexc.register_printer (function
    | Invalid (stage, vs) ->
      Some (Printf.sprintf "Ptx.Verify.Invalid(%s: %s)" stage (report vs))
    | _ -> None)

let check_exn ~stage (k : Prog.t) : unit =
  match check k with Ok () -> () | Error vs -> raise (Invalid (stage, vs))
