(* Classic backward liveness dataflow over the CFG.

   [live_out b] = union of [live_in] of successors;
   [live_in b]  = use(b) ∪ (live_out(b) \ def(b)).

   Used by dead-code elimination and by the linear-scan register
   allocator (whose register counts feed the occupancy model, the
   paper's `-cubin` analogue). *)

type t = { live_in : Reg.Set.t array; live_out : Reg.Set.t array }

(* Per-block (use, def) sets: [use] holds registers read before any
   write inside the block, [def] holds registers written. *)
let block_use_def (b : Prog.block) : Reg.Set.t * Reg.Set.t =
  let use = ref Reg.Set.empty and def = ref Reg.Set.empty in
  let see_uses rs = List.iter (fun r -> if not (Reg.Set.mem r !def) then use := Reg.Set.add r !use) rs in
  List.iter
    (fun i ->
      see_uses (Instr.uses i);
      match Instr.def i with Some d -> def := Reg.Set.add d !def | None -> ())
    b.body;
  see_uses (Prog.term_uses b.term);
  (!use, !def)

let compute (cfg : Cfg.t) : t =
  let n = Cfg.num_blocks cfg in
  let use = Array.make n Reg.Set.empty in
  let def = Array.make n Reg.Set.empty in
  for i = 0 to n - 1 do
    let u, d = block_use_def (Cfg.block cfg i) in
    use.(i) <- u;
    def.(i) <- d
  done;
  let live_in = Array.make n Reg.Set.empty in
  let live_out = Array.make n Reg.Set.empty in
  (* Iterate to a fixed point; postorder makes backward flow converge
     in few passes. *)
  let order = List.rev (Cfg.reverse_postorder cfg) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun i ->
        let out =
          List.fold_left
            (fun acc s -> Reg.Set.union acc live_in.(s))
            Reg.Set.empty (Cfg.succs cfg).(i)
        in
        let inn = Reg.Set.union use.(i) (Reg.Set.diff out def.(i)) in
        if not (Reg.Set.equal out live_out.(i)) then begin
          live_out.(i) <- out;
          changed := true
        end;
        if not (Reg.Set.equal inn live_in.(i)) then begin
          live_in.(i) <- inn;
          changed := true
        end)
      order
  done;
  { live_in; live_out }

(* Walk a block backwards producing, for each instruction position, the
   set of registers live *after* that instruction.  Used by DCE and by
   the allocator's interval construction. *)
let live_after_each (t : t) (cfg : Cfg.t) (i : int) : Reg.Set.t array =
  let b = Cfg.block cfg i in
  let body = Array.of_list b.body in
  let n = Array.length body in
  let after = Array.make n Reg.Set.empty in
  let live = ref (Reg.Set.union t.live_out.(i) (Reg.Set.of_list (Prog.term_uses b.term))) in
  (* The terminator reads its predicate, so anything the terminator
     uses is live after the last body instruction. *)
  for j = n - 1 downto 0 do
    after.(j) <- !live;
    (match Instr.def body.(j) with Some d -> live := Reg.Set.remove d !live | None -> ());
    List.iter (fun r -> live := Reg.Set.add r !live) (Instr.uses body.(j))
  done;
  after

(* Dead-store lint: every instruction whose defined register is dead on
   every path out of its position.  DCE would delete these — so on an
   optimized kernel the list is empty, and a nonempty answer on a
   hand-written kernel means wasted issue slots (or a dropped result).
   Memory and barrier effects have no defined register and are never
   reported; a dead [Ld] *is* reported (its load still costs cycles,
   but its result does not flow anywhere). *)
let dead_defs (k : Prog.t) : (string * int * Instr.t) list =
  let cfg = Cfg.of_kernel k in
  let live = compute cfg in
  let out = ref [] in
  List.iteri
    (fun bi (b : Prog.block) ->
      let after = live_after_each live cfg bi in
      List.iteri
        (fun j i ->
          match Instr.def i with
          | Some d when not (Reg.Set.mem d after.(j)) -> out := (b.label, j, i) :: !out
          | _ -> ())
        b.body)
    k.blocks;
  List.rev !out
