(* The PTX-like instruction set.

   A deliberately small RISC-style virtual ISA covering the instruction
   classes that matter to the paper's metrics and to the G80 timing
   model: single-precision ALU/MAD ops, SFU transcendentals, integer
   ALU/MAD, predicate ops, typed memory accesses over the four CUDA
   spaces, and the block-wide barrier.  Control flow lives in block
   terminators ([Prog.term]), not here. *)

(* Per-thread special values, read-only (CUDA's threadIdx / blockIdx /
   blockDim / gridDim). *)
type special =
  | Tid_x
  | Tid_y
  | Tid_z
  | Ntid_x
  | Ntid_y
  | Ntid_z
  | Ctaid_x
  | Ctaid_y
  | Nctaid_x
  | Nctaid_y

type operand =
  | Reg of Reg.t
  | Imm_f of float
  | Imm_i of int
  | Spec of special
  | Par of string  (* kernel parameter, by name; reads hit the constant cache *)

(* Binary f32 ops executed on the SP MAD units. *)
type fop2 = FAdd | FSub | FMul | FDiv | FMin | FMax

(* Unary f32 ops.  [FSqrt]..[FLg2] execute on the SFUs. *)
type fop1 = FNeg | FAbs | FSqrt | FRsqrt | FRcp | FSin | FCos | FEx2 | FLg2

type iop2 = IAdd | ISub | IMul | IDiv | IRem | IMin | IMax | IAnd | IOr | IXor | IShl | IShr

type cmp = CEq | CNe | CLt | CLe | CGt | CGe

type pop2 = PAnd | POr | PXor

(* The CUDA memory spaces visible to a kernel. *)
type space = Global | Shared | Const | Local

(* A memory operand: [base] evaluates to a byte address, [offset] is a
   constant byte displacement ([reg+imm] addressing — the addressing
   mode that makes unrolled loops cheap, cf. paper section 2.3). *)
type addr = { base : operand; offset : int }

type t =
  | Mov of Reg.t * operand
  | F2 of fop2 * Reg.t * operand * operand
  | F1 of fop1 * Reg.t * operand
  | Fmad of Reg.t * operand * operand * operand  (* d = a*b + c, unfused *)
  | I2 of iop2 * Reg.t * operand * operand
  | Imad of Reg.t * operand * operand * operand
  | Cvt_f2i of Reg.t * operand  (* truncating conversion *)
  | Cvt_i2f of Reg.t * operand
  | Setp of cmp * Reg.ty * Reg.t * operand * operand
  | Selp of Reg.t * operand * operand * operand  (* d = p ? a : b *)
  | Pnot of Reg.t * operand
  | P2 of pop2 * Reg.t * operand * operand
  | Ld of space * Reg.t * addr
  | St of space * addr * operand
  | Bar  (* block-wide barrier: __syncthreads *)

(* ------------------------------------------------------------------ *)
(* Structural queries                                                  *)
(* ------------------------------------------------------------------ *)

let def = function
  | Mov (d, _)
  | F2 (_, d, _, _)
  | F1 (_, d, _)
  | Fmad (d, _, _, _)
  | I2 (_, d, _, _)
  | Imad (d, _, _, _)
  | Cvt_f2i (d, _)
  | Cvt_i2f (d, _)
  | Setp (_, _, d, _, _)
  | Selp (d, _, _, _)
  | Pnot (d, _)
  | P2 (_, d, _, _)
  | Ld (_, d, _) -> Some d
  | St _ | Bar -> None

let reg_of_operand = function Reg r -> Some r | Imm_f _ | Imm_i _ | Spec _ | Par _ -> None

let operands = function
  | Mov (_, a) | F1 (_, _, a) | Cvt_f2i (_, a) | Cvt_i2f (_, a) | Pnot (_, a) -> [ a ]
  | F2 (_, _, a, b) | I2 (_, _, a, b) | Setp (_, _, _, a, b) | P2 (_, _, a, b) -> [ a; b ]
  | Fmad (_, a, b, c) | Imad (_, a, b, c) | Selp (_, a, b, c) -> [ a; b; c ]
  | Ld (_, _, { base; _ }) -> [ base ]
  | St (_, { base; _ }, v) -> [ base; v ]
  | Bar -> []

let uses i = List.filter_map reg_of_operand (operands i)

(* Rewrite every register occurrence (defs and uses) through [f]. *)
let map_regs (f : Reg.t -> Reg.t) (i : t) : t =
  let op = function Reg r -> Reg (f r) | o -> o in
  let ad a = { a with base = op a.base } in
  match i with
  | Mov (d, a) -> Mov (f d, op a)
  | F2 (o, d, a, b) -> F2 (o, f d, op a, op b)
  | F1 (o, d, a) -> F1 (o, f d, op a)
  | Fmad (d, a, b, c) -> Fmad (f d, op a, op b, op c)
  | I2 (o, d, a, b) -> I2 (o, f d, op a, op b)
  | Imad (d, a, b, c) -> Imad (f d, op a, op b, op c)
  | Cvt_f2i (d, a) -> Cvt_f2i (f d, op a)
  | Cvt_i2f (d, a) -> Cvt_i2f (f d, op a)
  | Setp (c, ty, d, a, b) -> Setp (c, ty, f d, op a, op b)
  | Selp (d, a, b, c) -> Selp (f d, op a, op b, op c)
  | Pnot (d, a) -> Pnot (f d, op a)
  | P2 (o, d, a, b) -> P2 (o, f d, op a, op b)
  | Ld (s, d, a) -> Ld (s, f d, ad a)
  | St (s, a, v) -> St (s, ad a, op v)
  | Bar -> Bar

(* Rewrite only the use occurrences through [f] (an operand map). *)
let map_uses (f : operand -> operand) (i : t) : t =
  let ad a = match f a.base with b -> { a with base = b } in
  match i with
  | Mov (d, a) -> Mov (d, f a)
  | F2 (o, d, a, b) -> F2 (o, d, f a, f b)
  | F1 (o, d, a) -> F1 (o, d, f a)
  | Fmad (d, a, b, c) -> Fmad (d, f a, f b, f c)
  | I2 (o, d, a, b) -> I2 (o, d, f a, f b)
  | Imad (d, a, b, c) -> Imad (d, f a, f b, f c)
  | Cvt_f2i (d, a) -> Cvt_f2i (d, f a)
  | Cvt_i2f (d, a) -> Cvt_i2f (d, f a)
  | Setp (c, ty, d, a, b) -> Setp (c, ty, d, f a, f b)
  | Selp (d, a, b, c) -> Selp (d, f a, f b, f c)
  | Pnot (d, a) -> Pnot (d, f a)
  | P2 (o, d, a, b) -> P2 (o, d, f a, f b)
  | Ld (s, d, a) -> Ld (s, d, ad a)
  | St (s, a, v) -> St (s, ad a, f v)
  | Bar -> Bar

(* ------------------------------------------------------------------ *)
(* Classification (drives both the timing model and the metrics)       *)
(* ------------------------------------------------------------------ *)

let is_sfu_op = function
  | FSqrt | FRsqrt | FRcp | FSin | FCos | FEx2 | FLg2 -> true
  | FNeg | FAbs -> false

let is_sfu = function F1 (o, _, _) -> is_sfu_op o | _ -> false

(* Long-latency memory operations: reads that go off-chip (global
   memory and per-thread local/spill memory, Table 1). *)
let is_long_latency_mem = function
  | Ld ((Global | Local), _, _) -> true
  | Ld ((Shared | Const), _, _) -> false
  | St _ -> false
  | _ -> false

(* Instructions that delimit scheduling regions for Eq. 2 of the paper:
   barriers and long-latency loads.  (Stores retire asynchronously on
   the G80 and do not block the issuing warp.) *)
let is_blocking i = match i with Bar -> true | _ -> is_long_latency_mem i

let is_barrier = function Bar -> true | _ -> false

let is_mem = function Ld _ | St _ -> true | _ -> false

(* Bytes of off-chip traffic generated per *thread* by one execution of
   this instruction (all our accesses are 32-bit). *)
let global_bytes = function
  | Ld (Global, _, _) | St (Global, _, _) -> 4
  | Ld (Local, _, _) | St (Local, _, _) -> 4 (* local memory is off-chip *)
  | _ -> 0

(* ------------------------------------------------------------------ *)
(* Operator semantics (decode helpers)                                 *)
(* ------------------------------------------------------------------ *)

(* The evaluation function of each ALU operator, resolved once.  The
   simulator's pre-decode stage selects these at kernel-launch time so
   its per-lane inner loop performs no operator dispatch; the KIR
   interpreter and constant folders may share them. *)

let fop2_fn : fop2 -> float -> float -> float = function
  | FAdd -> Util.Float32.add
  | FSub -> Util.Float32.sub
  | FMul -> Util.Float32.mul
  | FDiv -> Util.Float32.div
  | FMin -> Util.Float32.min
  | FMax -> Util.Float32.max

let fop1_fn : fop1 -> float -> float = function
  | FNeg -> Util.Float32.neg
  | FAbs -> Util.Float32.abs
  | FSqrt -> Util.Float32.sqrt
  | FRsqrt -> Util.Float32.rsqrt
  | FRcp -> Util.Float32.rcp
  | FSin -> Util.Float32.sin
  | FCos -> Util.Float32.cos
  | FEx2 -> fun x -> Util.Float32.round (Float.pow 2.0 x)
  | FLg2 -> fun x -> Util.Float32.round (Float.log x /. Float.log 2.0)

let iop2_fn : iop2 -> int -> int -> int = function
  | IAdd -> ( + )
  | ISub -> ( - )
  | IMul -> ( * )
  | IDiv -> fun a b -> if b = 0 then 0 else a / b
  | IRem -> fun a b -> if b = 0 then 0 else a mod b
  | IMin -> min
  | IMax -> max
  | IAnd -> ( land )
  | IOr -> ( lor )
  | IXor -> ( lxor )
  | IShl -> ( lsl )
  | IShr -> ( asr )

(* Comparison against the three-way result of [compare]. *)
let cmp_fn : cmp -> int -> bool = function
  | CEq -> fun c -> c = 0
  | CNe -> fun c -> c <> 0
  | CLt -> fun c -> c < 0
  | CLe -> fun c -> c <= 0
  | CGt -> fun c -> c > 0
  | CGe -> fun c -> c >= 0

let pop2_fn : pop2 -> bool -> bool -> bool = function
  | PAnd -> ( && )
  | POr -> ( || )
  | PXor -> ( <> )

let special_to_string = function
  | Tid_x -> "%tid.x"
  | Tid_y -> "%tid.y"
  | Tid_z -> "%tid.z"
  | Ntid_x -> "%ntid.x"
  | Ntid_y -> "%ntid.y"
  | Ntid_z -> "%ntid.z"
  | Ctaid_x -> "%ctaid.x"
  | Ctaid_y -> "%ctaid.y"
  | Nctaid_x -> "%nctaid.x"
  | Nctaid_y -> "%nctaid.y"

let all_specials =
  [ Tid_x; Tid_y; Tid_z; Ntid_x; Ntid_y; Ntid_z; Ctaid_x; Ctaid_y; Nctaid_x; Nctaid_y ]
