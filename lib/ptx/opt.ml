(* PTX-level scalar optimizations.

   These run after lowering from KIR and are what turns an unrolled
   loop body into the lean code the paper describes (section 2.3):
   address computations fold to constants, redundant [mad]s are shared,
   and dead copies disappear.  All passes are intraprocedural and, with
   the exception of DCE, block-local.

   Pass order used by [run]: copy-prop → const-fold → cse → dce,
   iterated to a fixed point (bounded). *)

open Instr

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let fold_f2 op a b =
  match op with
  | FAdd -> Util.Float32.add a b
  | FSub -> Util.Float32.sub a b
  | FMul -> Util.Float32.mul a b
  | FDiv -> Util.Float32.div a b
  | FMin -> Util.Float32.min a b
  | FMax -> Util.Float32.max a b

let fold_f1 op a =
  match op with
  | FNeg -> Util.Float32.neg a
  | FAbs -> Util.Float32.abs a
  | FSqrt -> Util.Float32.sqrt a
  | FRsqrt -> Util.Float32.rsqrt a
  | FRcp -> Util.Float32.rcp a
  | FSin -> Util.Float32.sin a
  | FCos -> Util.Float32.cos a
  | FEx2 -> Util.Float32.round (Float.pow 2.0 a)
  | FLg2 -> Util.Float32.round (Float.log a /. Float.log 2.0)

let fold_i2 op a b =
  match op with
  | IAdd -> Some (a + b)
  | ISub -> Some (a - b)
  | IMul -> Some (a * b)
  | IDiv -> if b = 0 then None else Some (a / b)
  | IRem -> if b = 0 then None else Some (a mod b)
  | IMin -> Some (min a b)
  | IMax -> Some (max a b)
  | IAnd -> Some (a land b)
  | IOr -> Some (a lor b)
  | IXor -> Some (a lxor b)
  | IShl -> Some (a lsl b)
  | IShr -> Some (a asr b)

let fold_cmp c compare_result =
  match c with
  | CEq -> compare_result = 0
  | CNe -> compare_result <> 0
  | CLt -> compare_result < 0
  | CLe -> compare_result <= 0
  | CGt -> compare_result > 0
  | CGe -> compare_result >= 0

let is_neg_zero z = z = 0.0 && Float.sign_bit z
let is_pos_zero z = z = 0.0 && not (Float.sign_bit z)

(* One instruction, already copy/constant-propagated: try to simplify.
   Returns a replacement instruction (often a [Mov] of an immediate,
   which later copy propagation then erases). *)
let simplify (i : t) : t =
  match i with
  | F2 (op, d, Imm_f a, Imm_f b) -> Mov (d, Imm_f (fold_f2 op a b))
  | F1 (op, d, Imm_f a) -> Mov (d, Imm_f (fold_f1 op a))
  | Fmad (d, Imm_f a, Imm_f b, Imm_f c) ->
    Mov (d, Imm_f (Util.Float32.mad a b c))
  | I2 (op, d, Imm_i a, Imm_i b) -> (
    match fold_i2 op a b with Some r -> Mov (d, Imm_i r) | None -> i)
  | Imad (d, Imm_i a, Imm_i b, Imm_i c) -> Mov (d, Imm_i ((a * b) + c))
  (* Algebraic identities that matter for address arithmetic. *)
  | I2 (IAdd, d, a, Imm_i 0) | I2 (IAdd, d, Imm_i 0, a) -> Mov (d, a)
  | I2 (ISub, d, a, Imm_i 0) -> Mov (d, a)
  | I2 (IMul, d, a, Imm_i 1) | I2 (IMul, d, Imm_i 1, a) -> Mov (d, a)
  | I2 (IMul, d, _, Imm_i 0) | I2 (IMul, d, Imm_i 0, _) -> Mov (d, Imm_i 0)
  | Imad (d, a, Imm_i 1, Imm_i 0) -> Mov (d, a)
  | Imad (d, _, Imm_i 0, c) | Imad (d, Imm_i 0, _, c) -> Mov (d, c)
  | Imad (d, a, Imm_i 1, c) -> I2 (IAdd, d, a, c)
  | Imad (d, a, b, Imm_i 0) -> I2 (IMul, d, a, b)
  (* Signed zero: [x + (+0.0)] is +0.0 when x = -0.0, not x, so only a
     -0.0 addend is an identity (and only a +0.0 subtrahend).  The OCaml
     pattern [Imm_f 0.0] matches both zeros, hence the guards. *)
  | F2 (FAdd, d, a, Imm_f z) when is_neg_zero z -> Mov (d, a)
  | F2 (FAdd, d, Imm_f z, a) when is_neg_zero z -> Mov (d, a)
  | F2 (FSub, d, a, Imm_f z) when is_pos_zero z -> Mov (d, a)
  | F2 (FMul, d, a, Imm_f 1.0) | F2 (FMul, d, Imm_f 1.0, a) -> Mov (d, a)
  | Fmad (d, a, Imm_f 1.0, c) -> F2 (FAdd, d, a, c)
  | Fmad (d, a, b, Imm_f z) when is_neg_zero z -> F2 (FMul, d, a, b)
  | Setp (c, Reg.S32, d, Imm_i a, Imm_i b) ->
    Mov (d, Imm_i (if fold_cmp c (compare a b) then 1 else 0))
  | Selp (d, a, _, Imm_i 1) -> Mov (d, a)
  | Selp (d, _, b, Imm_i 0) -> Mov (d, b)
  | _ -> i

(* ------------------------------------------------------------------ *)
(* Block-local copy & constant propagation                             *)
(* ------------------------------------------------------------------ *)

(* Within a block, [mov d, src] makes [d] an alias for [src] until
   either is redefined.  Propagating into uses exposes folding and CSE
   opportunities; the movs themselves die in DCE.  Predicate registers
   holding [Imm_i 0/1] are treated as constants by [simplify]. *)
let propagate_block (body : t list) : t list =
  let env : operand Reg.Tbl.t = Reg.Tbl.create 16 in
  let kill d =
    Reg.Tbl.remove env d;
    (* Any alias whose source was [d] is now stale. *)
    let stale =
      Reg.Tbl.fold
        (fun r src acc -> match src with Reg s when Reg.equal s d -> r :: acc | _ -> acc)
        env []
    in
    List.iter (Reg.Tbl.remove env) stale
  in
  let subst o =
    match o with
    | Reg r -> ( match Reg.Tbl.find_opt env r with Some v -> v | None -> o)
    | _ -> o
  in
  List.map
    (fun i ->
      let i = map_uses subst i in
      let i = simplify i in
      (match def i with Some d -> kill d | None -> ());
      (match i with
      | Mov (d, src) -> (
        match src with
        | Reg s when Reg.equal s d -> ()
        | Reg _ | Imm_f _ | Imm_i _ | Spec _ | Par _ -> Reg.Tbl.replace env d src)
      | _ -> ());
      i)
    body

(* ------------------------------------------------------------------ *)
(* Block-local common subexpression elimination                        *)
(* ------------------------------------------------------------------ *)

(* A pure instruction keyed by (opcode, operands).  Loads are not pure
   (memory may change); [Mov] is handled by copy propagation. *)
type key =
  | KF2 of fop2 * operand * operand
  | KF1 of fop1 * operand
  | KFmad of operand * operand * operand
  | KI2 of iop2 * operand * operand
  | KImad of operand * operand * operand
  | KCvtFI of operand
  | KCvtIF of operand
  | KSetp of cmp * Reg.ty * operand * operand
  | KSelp of operand * operand * operand
  | KPnot of operand
  | KP2 of pop2 * operand * operand

let key_of (i : t) : (key * Reg.t) option =
  match i with
  | F2 (o, d, a, b) -> Some (KF2 (o, a, b), d)
  | F1 (o, d, a) -> Some (KF1 (o, a), d)
  | Fmad (d, a, b, c) -> Some (KFmad (a, b, c), d)
  | I2 (o, d, a, b) -> Some (KI2 (o, a, b), d)
  | Imad (d, a, b, c) -> Some (KImad (a, b, c), d)
  | Cvt_f2i (d, a) -> Some (KCvtFI a, d)
  | Cvt_i2f (d, a) -> Some (KCvtIF a, d)
  | Setp (c, ty, d, a, b) -> Some (KSetp (c, ty, a, b), d)
  | Selp (d, a, b, p) -> Some (KSelp (a, b, p), d)
  | Pnot (d, a) -> Some (KPnot a, d)
  | P2 (o, d, a, b) -> Some (KP2 (o, a, b), d)
  | Mov _ | Ld _ | St _ | Bar -> None

let key_uses (k : key) (d : Reg.t) : bool =
  let ops =
    match k with
    | KF2 (_, a, b) | KI2 (_, a, b) | KSetp (_, _, a, b) | KP2 (_, a, b) -> [ a; b ]
    | KF1 (_, a) | KCvtFI a | KCvtIF a | KPnot a -> [ a ]
    | KFmad (a, b, c) | KImad (a, b, c) | KSelp (a, b, c) -> [ a; b; c ]
  in
  List.exists (function Reg r' -> Reg.equal r' d | _ -> false) ops

let cse_block (body : t list) : t list =
  let avail : (key, Reg.t) Hashtbl.t = Hashtbl.create 16 in
  let kill d =
    (* Remove every available expression mentioning [d] (as source or
       destination). *)
    let stale =
      Hashtbl.fold
        (fun k r acc -> if Reg.equal r d || key_uses k d then k :: acc else acc)
        avail []
    in
    List.iter (Hashtbl.remove avail) stale
  in
  List.map
    (fun i ->
      match key_of i with
      | Some (k, d) -> (
        match Hashtbl.find_opt avail k with
        | Some prev when not (Reg.equal prev d) ->
          kill d;
          Mov (d, Reg prev)
        | _ ->
          kill d;
          (* An instruction whose destination is one of its own operands
             (e.g. [add f1, f1, f1]) computes its key from the OLD value
             of [d]; recording it as available would equate it with later
             occurrences built from the new value. *)
          if not (key_uses k d) then Hashtbl.replace avail k d;
          i)
      | None ->
        (match def i with Some d -> kill d | None -> ());
        i)
    body

(* ------------------------------------------------------------------ *)
(* Dead code elimination (global, liveness-based)                      *)
(* ------------------------------------------------------------------ *)

(* Instructions with no side effect whose destination is dead are
   removed.  Loads are conservatively kept only if their result is
   used (a dead load still costs bandwidth on hardware, but no
   reasonable compiler emits one — ours may, transiently, after CSE). *)
let dce (k : Prog.t) : Prog.t =
  let cfg = Cfg.of_kernel k in
  let live = Liveness.compute cfg in
  let blocks =
    List.mapi
      (fun bi (b : Prog.block) ->
        let after = Liveness.live_after_each live cfg bi in
        let body = Array.of_list b.body in
        let keep = Array.make (Array.length body) true in
        Array.iteri
          (fun j i ->
            match i with
            | St _ | Bar -> ()
            | _ -> (
              match def i with
              | Some d -> if not (Reg.Set.mem d after.(j)) then keep.(j) <- false
              | None -> ()))
          body;
        let body' =
          Array.to_list body
          |> List.mapi (fun j i -> (j, i))
          |> List.filter_map (fun (j, i) -> if keep.(j) then Some i else None)
        in
        { b with body = body' })
      k.blocks
  in
  { k with blocks }

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let map_blocks f (k : Prog.t) : Prog.t =
  { k with blocks = List.map (fun (b : Prog.block) -> { b with body = f b.body }) k.blocks }

(* The individual passes, exposed so a pass manager (Tuner.Pipeline)
   can schedule, verify and time them one by one.  [run] below remains
   the reference composition. *)
let propagate (k : Prog.t) : Prog.t = map_blocks propagate_block k
let cse (k : Prog.t) : Prog.t = map_blocks cse_block k

let one_round (k : Prog.t) : Prog.t = k |> propagate |> cse |> dce

(* Run optimization rounds to a fixed point (bounded at 8 rounds; in
   practice two suffice). *)
let run (k : Prog.t) : Prog.t =
  let rec go k n =
    if n = 0 then k
    else
      let k' = one_round k in
      if Prog.static_size k' = Prog.static_size k && k' = k then k else go k' (n - 1)
  in
  go k 8
