(* The verified peephole rule database.

   A rule is a pair of canonical windows with the proof tier the funnel
   reached and the cycle win it was admitted for.  The database is a
   plain, sorted, line-oriented text format so it can be diffed,
   digest-pinned in CI, and cached content-addressed in [Tuner.Store]
   as an ordinary blob.  Serialization reuses [Pp]/[Parser] so a rule's
   wire form is exactly its instruction syntax — and a rule that does
   not survive a print/parse round trip bitwise (e.g. one whose
   constant's NaN payload the pretty-printer cannot express) is
   rejected at discovery time rather than silently mutated. *)

open Instr

type rule = {
  lhs : t list;  (* canonical window this rule replaces *)
  rhs : t list;  (* replacement; registers name lhs slots *)
  tier : Equiv.tier;  (* proof strength the funnel reached *)
  saved : int;  (* issue-cycle win under the discovery arch *)
}

let outputs (r : rule) : Reg.t list = Window.defs r.rhs

(* Registers the lhs defined but the rhs does not: applying the rule
   leaves them undefined, so the site must prove them dead. *)
let clobbers (r : rule) : Reg.t list =
  let outs = outputs r in
  List.filter (fun d -> not (List.exists (Reg.equal d) outs)) (Window.defs r.lhs)

let wellformed (r : rule) : bool =
  let mem rs x = List.exists (Reg.equal x) rs in
  r.lhs <> []
  && Window.is_pure r.lhs && Window.is_pure r.rhs
  && Window.is_canonical r.lhs
  && outputs r <> []
  && List.for_all (mem (Window.defs r.lhs)) (outputs r)
  && List.for_all (mem (Window.inputs r.lhs)) (Window.inputs r.rhs)
  && r.saved >= 0

let equal_rule (a : rule) (b : rule) : bool =
  Window.equal_seq a.lhs b.lhs && Window.equal_seq a.rhs b.rhs && a.tier = b.tier
  && a.saved = b.saved

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

(* One rule per line:
     p <tier> <saved> <lhs instrs> => <rhs instrs>
   where instruction sequences are [Pp.instr] forms joined by single
   spaces (each instruction ends in ';', so the joint is unambiguous). *)

let to_line (r : rule) : string =
  Printf.sprintf "p %s %d %s => %s" (Equiv.tier_name r.tier) r.saved (Window.key r.lhs)
    (Window.key r.rhs)

(* Parse an instruction sequence by wrapping it in a one-block kernel
   and reusing the real parser. *)
let seq_of_string (s : string) : t list option =
  let text =
    Printf.sprintf ".kernel rule ()\n.smem 0 .lmem 0\n{\nB0: .weight 1\n%s\nret;\n}\n" s
  in
  match Parser.kernel_of_string text with
  | k -> (
    match k.Prog.blocks with [ b ] -> Some b.Prog.body | _ -> None)
  | exception _ -> None

let of_line_opt (line : string) : rule option =
  match String.index_opt line ' ' with
  | None -> None
  | Some _ -> (
    let parts = String.split_on_char ' ' line in
    match parts with
    | "p" :: tier_s :: saved_s :: rest -> (
      match (Equiv.tier_of_name tier_s, int_of_string_opt saved_s) with
      | Some tier, Some saved -> (
        let body = String.concat " " rest in
        match String.index_opt body '\x00' with
        | Some _ -> None
        | None -> (
          (* Split on the (unique) " => " separator. *)
          let sep = " => " in
          let rec find i =
            if i + String.length sep > String.length body then None
            else if String.sub body i (String.length sep) = sep then Some i
            else find (i + 1)
          in
          match find 0 with
          | None -> None
          | Some i -> (
            let lhs_s = String.sub body 0 i in
            let rhs_s =
              String.sub body (i + String.length sep)
                (String.length body - i - String.length sep)
            in
            match (seq_of_string lhs_s, seq_of_string rhs_s) with
            | Some lhs, Some rhs ->
              let r = { lhs; rhs; tier; saved } in
              if wellformed r then Some r else None
            | _ -> None)))
      | _ -> None)
    | _ -> None)

let to_string (rules : rule list) : string =
  String.concat "" (List.map (fun r -> to_line r ^ "\n") rules)

let of_string (s : string) : rule list =
  String.split_on_char '\n' s
  |> List.filter_map (fun line -> if line = "" then None else of_line_opt line)

let digest (rules : rule list) : string = Digest.to_hex (Digest.string (to_string rules))
