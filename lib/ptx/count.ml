(* Static estimation of dynamic execution profile, per thread.

   This reproduces the paper's workflow of section 4: dump PTX, annotate
   loop trip counts, and statically derive

   - [instr]:   dynamic instructions executed per thread (the paper's
                Instr; e.g. 15150 for the unrolled 4k matmul kernel);
   - [regions]: the number of instruction intervals delimited by
                blocking instructions or kernel start/end (769 for the
                same kernel).  Blocking instructions are barriers and
                long-latency (global/texture) loads; *sequences of
                independent long-latency loads count as one unit*.

   Instead of manual annotation, our lowering records each basic
   block's expected executions per thread as [Prog.block.weight], so
   the estimate is a weighted sum over blocks. *)

type profile = {
  instr : float;  (* dynamic instructions per thread (incl. branches, barriers) *)
  regions : float;  (* paper's Regions term (see [effective_events]) *)
  mem_bar_events : float;  (* blocking events from loads + barriers *)
  sfu_events : float;  (* blocking events from SFU instruction runs *)
  sfu : float;  (* dynamic SFU instructions per thread *)
  mem : float;  (* dynamic memory instructions per thread *)
  global_bytes : float;  (* off-chip bytes transferred per thread *)
  barriers : float;  (* dynamic barriers per thread *)
}

(* Count blocking events inside one block body, separately for
   memory/barrier events and for SFU-instruction events.

   A "run" of long-latency instructions stays open as long as
   subsequent instructions do not consume any register produced inside
   the run; address arithmetic between loads keeps a run open, a use of
   a produced value (or a barrier) closes it.  This implements the
   paper's "sequences of independent, long-latency loads are considered
   a unit".  SFU instructions are counted with the same run-collapsing
   rule but reported separately: per the paper they only block "when
   longer latency operations are not present", which is decided by the
   metrics layer. *)
let blocking_events_in_body (body : Instr.t list) : int * int =
  let mem_events = ref 0 in
  let sfu_events = ref 0 in
  (* Current run: [None], [Some `Mem], or [Some `Sfu]. *)
  let in_run = ref None in
  let pending = ref Reg.Set.empty in
  let close () =
    in_run := None;
    pending := Reg.Set.empty
  in
  List.iter
    (fun i ->
      let uses_pending = List.exists (fun r -> Reg.Set.mem r !pending) (Instr.uses i) in
      let open_run kind counter =
        if uses_pending || !in_run <> Some kind then begin
          if uses_pending || !in_run <> None then close ();
          incr counter;
          in_run := Some kind
        end;
        match Instr.def i with
        | Some d -> pending := Reg.Set.add d !pending
        | None -> ()
      in
      if Instr.is_barrier i then begin
        close ();
        incr mem_events
      end
      else if Instr.is_long_latency_mem i then open_run `Mem mem_events
      else if Instr.is_sfu i then open_run `Sfu sfu_events
      else if uses_pending then close ())
    body;
  (!mem_events, !sfu_events)

(* The paper's Regions denominator: barriers and long-latency loads
   always delimit regions; SFU runs count only when they are the
   dominant long-latency behaviour of the kernel (CP and MRI-FHD, whose
   inner loops touch no off-chip memory). *)
let effective_events ~mem_bar ~sfu = if sfu > mem_bar then mem_bar +. sfu else mem_bar

let profile_of (k : Prog.t) : profile =
  let instr = ref 0.0 in
  let mem_ev = ref 0.0 in
  let sfu_ev = ref 0.0 in
  let sfu = ref 0.0 in
  let mem = ref 0.0 in
  let bytes = ref 0.0 in
  let barriers = ref 0.0 in
  List.iter
    (fun (b : Prog.block) ->
      let w = b.weight in
      (* The terminator is an instruction too (branches execute). *)
      instr := !instr +. (w *. float_of_int (List.length b.body + 1));
      let me, se = blocking_events_in_body b.body in
      mem_ev := !mem_ev +. (w *. float_of_int me);
      sfu_ev := !sfu_ev +. (w *. float_of_int se);
      List.iter
        (fun i ->
          if Instr.is_sfu i then sfu := !sfu +. w;
          if Instr.is_mem i then mem := !mem +. w;
          if Instr.is_barrier i then barriers := !barriers +. w;
          bytes := !bytes +. (w *. float_of_int (Instr.global_bytes i)))
        b.body)
    k.blocks;
  {
    instr = !instr;
    regions = effective_events ~mem_bar:!mem_ev ~sfu:!sfu_ev +. 1.0;
    mem_bar_events = !mem_ev;
    sfu_events = !sfu_ev;
    sfu = !sfu;
    mem = !mem;
    global_bytes = !bytes;
    barriers = !barriers;
  }

(* Fraction of the dynamic instruction stream that is memory
   operations — the paper's quick bandwidth-limit screen (section 4). *)
let mem_fraction p = if p.instr = 0.0 then 0.0 else p.mem /. p.instr

(* ------------------------------------------------------------------ *)
(* Per-class instruction breakdown (`gpuopt inspect --trace`)           *)
(* ------------------------------------------------------------------ *)

type class_row = {
  class_name : string;
  static_count : int;  (* instructions in the program text *)
  dynamic_count : float;  (* executions per thread, weight-estimated *)
}

(* Issue-class of one instruction: where it executes and what latency
   table prices it.  Branches are block terminators, counted
   separately. *)
let class_of (i : Instr.t) : string =
  if Instr.is_barrier i then "barrier"
  else if Instr.is_sfu i then "sfu"
  else
    match i with
    | Instr.Ld ((Instr.Global | Instr.Local), _, _) | Instr.St ((Instr.Global | Instr.Local), _, _)
      -> "mem.global"
    | Instr.Ld (Instr.Shared, _, _) | Instr.St (Instr.Shared, _, _) -> "mem.shared"
    | Instr.Ld (Instr.Const, _, _) | Instr.St (Instr.Const, _, _) -> "mem.const"
    | _ -> "alu"

let class_order = [ "alu"; "sfu"; "mem.global"; "mem.shared"; "mem.const"; "barrier"; "branch" ]

let class_breakdown (k : Prog.t) : class_row list =
  let stat : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let dyn : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let bump name w =
    Hashtbl.replace stat name (1 + Option.value ~default:0 (Hashtbl.find_opt stat name));
    Hashtbl.replace dyn name (w +. Option.value ~default:0.0 (Hashtbl.find_opt dyn name))
  in
  List.iter
    (fun (b : Prog.block) ->
      List.iter (fun i -> bump (class_of i) b.weight) b.body;
      (* The terminator issues like any instruction (Jump/CBr/Ret). *)
      bump "branch" b.weight)
    k.blocks;
  List.map
    (fun name ->
      {
        class_name = name;
        static_count = Option.value ~default:0 (Hashtbl.find_opt stat name);
        dynamic_count = Option.value ~default:0.0 (Hashtbl.find_opt dyn name);
      })
    class_order
