(* gpuopt — command-line interface to the optimization-space pruning
   toolkit.

     gpuopt arch [NAME]          print one machine model (Tables 1-2)
     gpuopt archs                list the machine-model registry
     gpuopt explore <app>        exhaustive vs pruned search, one app
     gpuopt tune <app>           pruned-only search (the methodology)
     gpuopt predict <app>        model-driven race: probe, fit, rank, halve
     gpuopt inspect <app>        optimization space; --trace one config
     gpuopt lint <app>           static memory-access analysis
     gpuopt compile <file.mcu>   minicuda -> PTX, resources, profile
     gpuopt run <file.mcu> ...   compile and simulate a kernel
     gpuopt chaos <app>          fault-injection self-test of the tuner
     gpuopt serve                tuning-service daemon (store-backed)
     gpuopt request <verb> ...   send one request to a running daemon

   Applications come from the registry (Apps.Registry.all): matmul,
   cp, sad, mri. *)

open Cmdliner

let app_conv =
  let parse s =
    match Apps.Registry.find s with
    | Some e -> Ok e
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown app %S (expected %s)" s
             (String.concat "|" Apps.Registry.names)))
  in
  Arg.conv (parse, fun fmt (e : Apps.Registry.entry) -> Format.pp_print_string fmt e.name)

let app_arg =
  Arg.(required & pos 0 (some app_conv) None & info [] ~docv:"APP" ~doc:"Application to search")

let quick_arg =
  let doc = "Use a tiny problem size (smoke test) instead of the paper-scale one." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let stats_arg =
  let doc =
    "Print measurement-engine statistics: simulator runs vs cache hits, and simulator throughput \
     (warp instructions per host second)."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let candidates_of ?arch ?extra_ptx (e : Apps.Registry.entry) quick =
  if quick then e.quick_candidates ?arch ?extra_ptx () else e.candidates ?arch ?extra_ptx ()

(* Shared by explore/tune: append the verified peephole pass, built from
   a (store-cached) superoptimizer discovery run on the target arch. *)
let rules_flag =
  let doc =
    "Append the superoptimizer's verified peephole pass to every candidate's schedule.  The \
     rule database is discovered for the target arch (and cached in $(b,--store) when given)."
  in
  Arg.(value & flag & info [ "rules" ] ~doc)

(* The rule database itself (explore/tune wrap it into a pipeline pass;
   the predictor also feeds it to the rule-win feature). *)
let rules_db ?store ~jobs rules_on (arch : Gpu.Arch.t) : Ptx.Patterns.rule list option =
  if not rules_on then None
  else begin
    let r = Tuner.Superopt.discover_cached ?store ~jobs ~arch () in
    Printf.printf "peephole: %d verified rule(s)%s, db %s\n"
      (List.length r.Tuner.Superopt.rules)
      (if r.Tuner.Superopt.cached then " (from store)" else "")
      (Ptx.Patterns.digest r.Tuner.Superopt.rules);
    Some r.Tuner.Superopt.rules
  end

let rules_extra ?store ~jobs rules_on (arch : Gpu.Arch.t) :
    Tuner.Pipeline.ptx_pass list option =
  Option.map
    (fun rs -> [ Tuner.Pipeline.peephole rs ])
    (rules_db ?store ~jobs rules_on arch)

(* Shared by explore/predict: the model-driven race's full-simulation
   budget, as a percentage of the valid space. *)
let budget_arg =
  let doc =
    "Full-simulation budget of the model-driven race, as a percentage of the valid space \
     (default 10).  The race fully simulates at most this many candidates — probes plus \
     survivors — and races the rest at the reduced launch shape."
  in
  let pct =
    let parse s =
      match int_of_string_opt s with
      | Some p when p >= 1 && p <= 100 -> Ok p
      | _ -> Error (`Msg (Printf.sprintf "expected a percentage in 1..100, got %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt (some pct) None & info [ "budget" ] ~docv:"PCT" ~doc)

let budget_frac = Option.map (fun pct -> float_of_int pct /. 100.0)

let print_prune_outcome (r : Tuner.Search.result) =
  match r.Tuner.Search.prune with
  | None -> ()
  | Some o ->
    Printf.printf "\nmodel-driven race (%d full simulations budgeted of %d):\n" o.Tuner.Prune.pr_budget
      o.Tuner.Prune.pr_total;
    print_string (Tuner.Report.prune_table r);
    Printf.printf "race winner:    %s  (%.4f ms)\n" o.Tuner.Prune.pr_winner.Tuner.Measure.cand.desc
      (o.Tuner.Prune.pr_winner.Tuner.Measure.time_s *. 1000.0);
    Printf.printf "model %s fit on %d probe(s)\n"
      (Tuner.Predict.digest o.Tuner.Prune.pr_model)
      o.Tuner.Prune.pr_model.Tuner.Predict.md_rows

(* Shared by explore/tune/lint/request: which machine model to target.
   The registry names plus "all" (explore/tune only: sweep every
   registry arch and report a per-arch winner table). *)
let arch_name_arg =
  let doc =
    "Target machine model, by registry name (see $(b,gpuopt archs)).  $(b,all) sweeps every \
     registry model and reports a per-arch winner table."
  in
  Arg.(value & opt string Gpu.Arch.g80.Gpu.Arch.name & info [ "arch" ] ~docv:"NAME" ~doc)

let resolve_arch name : Gpu.Arch.t =
  match Gpu.Arch.find name with
  | Some a -> a
  | None ->
    Printf.eprintf "unknown arch %S (expected %s)\n" name
      (String.concat "|" (Gpu.Arch.names @ [ "all" ]));
    exit 2

let winner_line (arch : Gpu.Arch.t) (m : Tuner.Search.measured) =
  Printf.printf "winner[%s] %s  (%.4f ms)\n" arch.Gpu.Arch.name m.cand.desc (m.time_s *. 1000.0)

(* Shared by explore/tune: an optional content-addressed result store,
   the same file format the serve daemon uses, so one-shot CLI sweeps
   and the service share measurements. *)
let store_arg =
  let doc =
    "Back measurements with the content-addressed result store in $(docv) (created if absent): \
     points already present are answered from disk, new measurements are appended.  The same \
     file drives $(b,gpuopt serve)."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"FILE" ~doc)

let with_store store_file (f : Tuner.Store.t option -> 'a) : 'a =
  match store_file with
  | None -> f None
  | Some file ->
    let store = Tuner.Store.open_ ~file () in
    List.iter
      (fun (c : Tuner.Store.corrupt_line) ->
        Printf.eprintf "store: %s:%d rejected: %s\n%!" file c.cl_line c.cl_reason)
      (Tuner.Store.corrupt_entries store);
    Fun.protect ~finally:(fun () -> Tuner.Store.close store) (fun () -> f (Some store))

let jobs_arg =
  let doc =
    "Measurement worker domains. Defaults to the GPUOPT_JOBS environment variable if set, else \
     one less than the available cores (min 1). Results are identical for every value."
  in
  let positive_int =
    let parse s =
      match int_of_string_opt s with
      | Some j when j >= 1 -> Ok j
      | _ -> Error (`Msg (Printf.sprintf "expected a positive integer, got %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt positive_int (Util.Pool.default_jobs ()) & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* ------------------------------------------------------------------ *)

let arch_cmd =
  let doc =
    "Print one machine model from the registry (default: the paper's GeForce 8800, Tables 1-2)."
  in
  let name_arg =
    Arg.(
      value
      & pos 0 string Gpu.Arch.g80.Gpu.Arch.name
      & info [] ~docv:"NAME" ~doc:"Machine model to print (see $(b,gpuopt archs)).")
  in
  let run name =
    let a = resolve_arch name in
    let l = a.Gpu.Arch.limits and lat = a.Gpu.Arch.latencies in
    Printf.printf "%s — %s\n\n" a.Gpu.Arch.name a.Gpu.Arch.display;
    if a.Gpu.Arch.name = Gpu.Arch.g80.Gpu.Arch.name then begin
      print_string
        (Tuner.Report.table
           [ "Memory"; "Location"; "Size"; "Latency"; "RO" ]
           (List.map
              (fun (m : Gpu.Arch.memory_row) ->
                [ m.mem_name; m.location; m.size; m.latency; (if m.read_only then "yes" else "no") ])
              Gpu.Arch.memories));
      Printf.printf "\n"
    end;
    print_string
      (Tuner.Report.table
         [ "Constraint"; "Limit" ]
         [
           [ "SMs"; string_of_int l.num_sms ];
           [ "Threads per SM"; string_of_int l.max_threads_per_sm ];
           [ "Thread blocks per SM"; string_of_int l.max_blocks_per_sm ];
           [ "32-bit registers per SM"; string_of_int l.regs_per_sm ];
           [ "Shared memory per SM (bytes)"; string_of_int l.smem_per_sm ];
           [ "Threads per block"; string_of_int l.max_threads_per_block ];
           [ "Shared-memory banks"; string_of_int a.Gpu.Arch.shared_banks ];
           [ "Issue latency (cycles)"; string_of_int lat.issue ];
           [ "Global latency (cycles)"; string_of_int lat.global ];
         ]);
    Printf.printf "\nPeak %.1f GFLOPS, %.1f GB/s global bandwidth, %.2f GHz\n"
      (Gpu.Arch.peak_gflops a) a.Gpu.Arch.global_bandwidth_gbs a.Gpu.Arch.clock_ghz
  in
  Cmd.v (Cmd.info "arch" ~doc) Term.(const run $ name_arg)

let archs_cmd =
  let doc = "List the machine-model registry, one line per arch." in
  let run () =
    print_string
      (Tuner.Report.table
         [ "Name"; "Description"; "SMs"; "Banks"; "GHz"; "GFLOPS"; "GB/s" ]
         (List.map
            (fun (a : Gpu.Arch.t) ->
              [
                a.Gpu.Arch.name;
                a.Gpu.Arch.display;
                string_of_int a.Gpu.Arch.limits.num_sms;
                string_of_int a.Gpu.Arch.shared_banks;
                Printf.sprintf "%.2f" a.Gpu.Arch.clock_ghz;
                Printf.sprintf "%.1f" (Gpu.Arch.peak_gflops a);
                Printf.sprintf "%.1f" a.Gpu.Arch.global_bandwidth_gbs;
              ])
            Gpu.Arch.archs))
  in
  Cmd.v (Cmd.info "archs" ~doc) Term.(const run $ const ())

let explore_cmd =
  let doc =
    "Exhaustively measure an application's optimization space, then compare against the \
     Pareto-pruned search (paper Table 4 / Figure 6)."
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Journal every settled measurement (time or fault) to $(docv) as it lands.  \
             Re-running with the same file skips the journaled candidates, so an interrupted \
             sweep resumes where it stopped.  The journal is keyed by app and candidate space; \
             a stale or foreign journal is rejected.")
  in
  let fail_fast_arg =
    Arg.(
      value & flag
      & info [ "fail-fast" ]
          ~doc:
            "Abort the sweep on the first measurement fault instead of recording it and \
             searching over the survivors.")
  in
  let predict_flag =
    let doc =
      "Also run the model-driven race: fit a ridge predictor on a seeded probe set, rank the \
       whole space by predicted runtime, race the top of the ranking at the reduced (quick) \
       launch shape, and fully simulate only the survivors (see $(b,--budget)).  Reported \
       next to the Pareto pruning, with whether the race recovered the true optimum."
    in
    Arg.(value & flag & info [ "predict" ] ~doc)
  in
  let run (e : Apps.Registry.entry) jobs quick stats checkpoint fail_fast store_file arch_name
      rules predict budget =
    if arch_name = "all" then begin
      if predict then begin
        Printf.eprintf "explore: --predict races one space at a time; not supported with --arch all\n";
        exit 2
      end;
      (* Cross-arch sweep: arch is the outer enumeration axis; one
         engine (and store binding) per arch, then the per-arch winner
         table and greppable winner lines. *)
      if checkpoint <> None then begin
        Printf.eprintf "explore: --checkpoint is per-space; not supported with --arch all\n";
        exit 2
      end;
      let rs =
        with_store store_file (fun store ->
            Tuner.Search.run_archs ~jobs ~fail_fast ?store
              ~store_scale:(if quick then "quick" else "full")
              ~app_name:e.name ~archs:Gpu.Arch.archs
              (fun arch ->
                candidates_of ~arch ?extra_ptx:(rules_extra ?store ~jobs rules arch) e quick))
      in
      print_string (Tuner.Report.arch_winner_table rs);
      Printf.printf "\n";
      List.iter
        (fun (r : Tuner.Search.arch_result) ->
          winner_line r.ar_arch r.ar_result.Tuner.Search.selected_best)
        rs;
      exit 0
    end;
    let arch = resolve_arch arch_name in
    let r =
      try
        with_store store_file (fun store ->
            let db = rules_db ?store ~jobs rules arch in
            let extra_ptx = Option.map (fun rs -> [ Tuner.Pipeline.peephole rs ]) db in
            let pspec =
              if not predict then None
              else
                (* A quick target IS the reduced shape already: race it
                   against itself rather than a larger space. *)
                let reduced =
                  if quick then candidates_of ~arch ?extra_ptx e quick
                  else e.reduced_candidates ~arch ?extra_ptx ()
                in
                Some
                  (Tuner.Prune.spec ~rules:(Option.value db ~default:[]) ~reduced ())
            in
            Tuner.Search.run ~jobs ~fail_fast ?checkpoint ?store ?predict:pspec
              ?budget_frac:(budget_frac budget)
              ~store_scale:(if quick then "quick" else "full")
              ~app_name:e.name
              (candidates_of ~arch ?extra_ptx e quick))
      with
      | Tuner.Fault.Fail { desc; fault } ->
        Printf.eprintf "fault in %s: %s\n" desc (Tuner.Fault.to_string fault);
        exit 1
      | Tuner.Measure.Interrupted { file; journaled } ->
        Printf.eprintf "sweep interrupted: %d measurement(s) journaled to %s; rerun with the \
                        same --checkpoint to resume\n" journaled file;
        exit 3
    in
    Printf.printf "%d valid configurations (%d invalid)\n\n" r.space_size r.invalid;
    print_string (Tuner.Report.figure6 r);
    Printf.printf "\n";
    print_string (Tuner.Report.table Tuner.Report.table4_header [ Tuner.Report.table4_row r ]);
    print_prune_outcome r;
    Printf.printf "\ntrue optimum:   %s  (%.4f ms)\n" r.best.cand.desc (r.best.time_s *. 1000.0);
    Printf.printf "pruned search:  %s  (%.4f ms)\n" r.selected_best.cand.desc
      (r.selected_best.time_s *. 1000.0);
    winner_line arch r.selected_best;
    if r.faults <> [] then begin
      Printf.printf "\n%d configuration(s) faulted and were excluded:\n"
        (List.length r.faults);
      print_string (Tuner.Report.fault_table r.faults)
    end;
    if stats then begin
      let s = r.engine in
      let requests = s.measure_runs + s.measure_hits in
      Printf.printf "\nmeasurement engine: %d requests -> %d simulator runs + %d cache hits\n"
        requests s.measure_runs s.measure_hits;
      Printf.printf "                    (the Pareto subset re-reads the exhaustive sweep's cache)\n";
      Printf.printf "simulator:          %d launches, %d warp-instrs in %.2fs host time" s.sim_launches
        s.sim_warp_instrs s.measure_host_s;
      if s.measure_host_s > 0.0 then
        Printf.printf " (%.2f M warp-instrs/s)" (float_of_int s.sim_warp_instrs /. s.measure_host_s /. 1e6);
      Printf.printf "\n";
      if store_file <> None then
        Printf.printf "result store:       %d hit(s), %d miss(es)\n" s.store_hits s.store_misses
    end
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(
      const run $ app_arg $ jobs_arg $ quick_arg $ stats_arg $ checkpoint_arg $ fail_fast_arg
      $ store_arg $ arch_name_arg $ rules_flag $ predict_flag $ budget_arg)

let predict_cmd =
  let doc =
    "Run the model-driven race alone, without the exhaustive sweep: measure a seeded probe \
     set, fit the ridge runtime predictor on it, rank the whole space by prediction, race the \
     top of the ranking at the reduced launch shape, and fully simulate only the survivors.  \
     Prints the fitted model (standardized weights, largest first), the head of the predicted \
     ranking, and the winner.  Unlike $(b,gpuopt explore --predict) this never measures the \
     rest of the space, so it cannot say whether the winner is the true optimum — it is the \
     production mode the budget buys."
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Rows of the predicted ranking (and model weights) to print.")
  in
  let run (e : Apps.Registry.entry) jobs quick store_file arch_name rules budget top =
    let arch = resolve_arch arch_name in
    with_store store_file (fun store ->
        let db = rules_db ?store ~jobs rules arch in
        let extra_ptx = Option.map (fun rs -> [ Tuner.Pipeline.peephole rs ]) db in
        let cands = candidates_of ~arch ?extra_ptx e quick in
        let reduced = if quick then cands else e.reduced_candidates ~arch ?extra_ptx () in
        let plan =
          match budget_frac budget with
          | None -> Tuner.Prune.default_plan
          | Some f -> { Tuner.Prune.default_plan with Tuner.Prune.pl_budget_frac = f }
        in
        let spec =
          Tuner.Prune.spec ~plan ~rules:(Option.value db ~default:[]) ~reduced ()
        in
        let scale = if quick then "quick" else "full" in
        let engine = Tuner.Measure.create ~app_name:e.name () in
        Tuner.Search.bind_store engine ~app_name:e.name cands ~store ~store_key:None
          ~store_scale:(Some scale);
        let o =
          try
            Tuner.Prune.run ~jobs ?store ~store_scale:scale ~engine ~app_name:e.name spec cands
          with Tuner.Fault.Fail { desc; fault } ->
            Printf.eprintf "fault in %s: %s\n" desc (Tuner.Fault.to_string fault);
            exit 1
        in
        Printf.printf "%d valid configurations; budget %d full simulation(s) (%.1f%%)\n"
          o.Tuner.Prune.pr_total o.Tuner.Prune.pr_budget
          (100.0 *. float_of_int o.Tuner.Prune.pr_budget /. float_of_int o.Tuner.Prune.pr_total);
        Printf.printf "probes (%d): %s\n" (List.length o.Tuner.Prune.pr_probes)
          (String.concat ", " o.Tuner.Prune.pr_probes);
        Printf.printf "\nmodel %s fit on %d probe(s); strongest standardized weights:\n"
          (Tuner.Predict.digest o.Tuner.Prune.pr_model)
          o.Tuner.Prune.pr_model.Tuner.Predict.md_rows;
        List.iteri
          (fun i (name, w) ->
            if i < top then Printf.printf "  %-20s %+.4f\n" name w)
          (Tuner.Predict.weight_table o.Tuner.Prune.pr_model);
        Printf.printf "\npredicted ranking (top %d of %d):\n" (min top o.Tuner.Prune.pr_total)
          o.Tuner.Prune.pr_total;
        List.iteri
          (fun i (desc, pred_s) ->
            if i < top then Printf.printf "  %2d. %-28s %.4f ms predicted\n" (i + 1) desc (pred_s *. 1000.0))
          o.Tuner.Prune.pr_ranked;
        Printf.printf
          "\nraced %d at the reduced shape (%d without a reduced twin); %d survivor(s): %s\n"
          o.Tuner.Prune.pr_raced o.Tuner.Prune.pr_reduced_missing
          (List.length o.Tuner.Prune.pr_survivors)
          (String.concat ", " o.Tuner.Prune.pr_survivors);
        Printf.printf "fully simulated %d of %d (%.1f%%)\n" o.Tuner.Prune.pr_simulated
          o.Tuner.Prune.pr_total
          (100.0 *. float_of_int o.Tuner.Prune.pr_simulated /. float_of_int o.Tuner.Prune.pr_total);
        Printf.printf "winner: %s  (%.4f ms simulated)\n"
          o.Tuner.Prune.pr_winner.Tuner.Measure.cand.desc
          (o.Tuner.Prune.pr_winner.Tuner.Measure.time_s *. 1000.0);
        winner_line arch o.Tuner.Prune.pr_winner;
        if store_file <> None then
          Printf.printf "result store: %d hit(s), %d miss(es)\n" (Tuner.Measure.store_hits engine)
            (Tuner.Measure.store_misses engine))
  in
  Cmd.v (Cmd.info "predict" ~doc)
    Term.(
      const run $ app_arg $ jobs_arg $ quick_arg $ store_arg $ arch_name_arg $ rules_flag
      $ budget_arg $ top_arg)

let chaos_cmd =
  let doc =
    "Prove the tuner's fault tolerance on an application: inject deterministic failures \
     (crashing thunks, watchdog-caught runaway kernels, corrupt passes) into the space, check \
     that every fault is reported and the search still finds the true optimum among the \
     survivors, then kill a checkpointed sweep partway and check that resuming reproduces the \
     uninterrupted result exactly.  Exits nonzero if any check fails."
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Victim-selection seed.")
  in
  let faults_arg =
    Arg.(value & opt int 5 & info [ "faults" ] ~docv:"N" ~doc:"Number of faults to inject.")
  in
  let hit_frontier_arg =
    Arg.(
      value & flag
      & info [ "hit-frontier" ]
          ~doc:
            "Let faults land on the fault-free run's Pareto-selected subset too.  Killing \
             frontier members legitimately changes what the pruned search selects, so the \
             strict selection-unchanged checks are skipped in this mode (the exhaustive-optimum \
             and resume checks still apply).")
  in
  let run (e : Apps.Registry.entry) jobs quick seed nfaults hit_frontier =
    let cands = candidates_of e quick in
    let failures = ref 0 in
    let check name ok =
      if not ok then incr failures;
      Printf.printf "CHECK %-52s %s\n" name (if ok then "ok" else "FAIL")
    in
    let fault_key ((c : Tuner.Candidate.t), f) = (c.desc, Tuner.Fault.to_journal f) in
    let times ms = List.map (fun (m : Tuner.Search.measured) -> (m.cand.desc, m.time_s)) ms in
    (* Fault-free baseline: the ground truth the injected runs must
       still recover on the surviving part of the space. *)
    let baseline = Tuner.Search.run ~jobs ~app_name:e.name cands in
    Printf.printf "baseline: %d valid configurations, optimum %s (%.4f ms)\n" baseline.space_size
      baseline.best.cand.desc
      (baseline.best.time_s *. 1000.0);
    (* Injected sweep.  By default victims are drawn outside the
       fault-free Pareto-selected subset: faults that miss the frontier
       provably leave the pruned selection unchanged, which is what the
       strict checks below assert. *)
    let avoid =
      if hit_frontier then []
      else List.map (fun ((c : Tuner.Candidate.t), _) -> c.desc) baseline.selected
    in
    let injected_cands, injections = Tuner.Chaos.inject ~seed ~count:nfaults ~avoid cands in
    List.iter
      (fun (inj : Tuner.Chaos.injection) ->
        Printf.printf "inject %-12s -> %s\n" (Tuner.Chaos.kind_name inj.inj_kind) inj.inj_desc)
      injections;
    let r = Tuner.Search.run ~jobs ~app_name:e.name injected_cands in
    Printf.printf "\n%d fault(s) recorded:\n" (List.length r.faults);
    print_string (Tuner.Report.fault_table r.faults);
    Printf.printf "\n";
    let injected_descs =
      List.sort compare (List.map (fun (i : Tuner.Chaos.injection) -> i.inj_desc) injections)
    in
    check "every injected candidate is reported as a fault"
      (List.sort compare (List.map (fun ((c : Tuner.Candidate.t), _) -> c.desc) r.faults)
      = injected_descs);
    check "each fault carries its injected kind's tag"
      (List.for_all
         (fun (inj : Tuner.Chaos.injection) ->
           match
             List.find_opt (fun ((c : Tuner.Candidate.t), _) -> c.desc = inj.inj_desc) r.faults
           with
           | Some (_, f) -> Tuner.Fault.tag f = Tuner.Chaos.expected_tag inj.inj_kind
           | None -> false)
         injections);
    (* The true optimum of the surviving space, from the baseline's
       measurements (deterministic, so exact comparison is fair). *)
    let surviving_best =
      List.filter
        (fun (m : Tuner.Search.measured) -> not (List.mem m.cand.desc injected_descs))
        baseline.exhaustive
      |> List.fold_left
           (fun acc (m : Tuner.Search.measured) ->
             match acc with
             | Some (b : Tuner.Search.measured) when b.time_s <= m.time_s -> acc
             | _ -> Some m)
           None
    in
    (match surviving_best with
    | None -> check "some candidate survived" false
    | Some sb ->
      check "exhaustive optimum over survivors is exact"
        (r.best.cand.desc = sb.cand.desc && r.best.time_s = sb.time_s));
    let sel_descs (res : Tuner.Search.result) =
      List.map (fun ((c : Tuner.Candidate.t), _) -> c.desc) res.selected
    in
    if hit_frontier then
      Printf.printf "(frontier hits allowed: optimum on curve: %s)\n"
        (if r.optimum_selected then "yes" else "no")
    else begin
      check "faults off the frontier leave the selection unchanged"
        (sel_descs r = sel_descs baseline);
      check "pruned search still picks the fault-free choice"
        (r.selected_best.cand.desc = baseline.selected_best.cand.desc
        && r.selected_best.time_s = baseline.selected_best.time_s
        && r.optimum_selected = baseline.optimum_selected)
    end;
    (* Kill-and-resume: checkpoint the injected sweep, stop it after
       half the space, resume against the same journal, and demand the
       merged result equals the uninterrupted one. *)
    let tmp = Filename.temp_file "gpuopt-chaos-" ".journal" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
      (fun () ->
        let nvalid = r.space_size in
        let k = max 1 (nvalid / 2) in
        let interrupted =
          match
            Tuner.Search.run ~jobs ~checkpoint:tmp ~checkpoint_budget:k ~app_name:e.name
              injected_cands
          with
          | (_ : Tuner.Search.result) -> false
          | exception Tuner.Measure.Interrupted { journaled; _ } -> journaled = k
        in
        check "sweep interrupts after the journal budget" interrupted;
        let resumed = Tuner.Search.run ~jobs ~checkpoint:tmp ~app_name:e.name injected_cands in
        check "resumed sweep skips the journaled measurements"
          (resumed.engine.measure_runs = nvalid - k);
        check "resumed result equals the uninterrupted one"
          (times resumed.exhaustive = times r.exhaustive
          && List.map fault_key resumed.faults = List.map fault_key r.faults
          && resumed.best.cand.desc = r.best.cand.desc
          && resumed.best.time_s = r.best.time_s
          && resumed.selected_best.cand.desc = r.selected_best.cand.desc
          && resumed.selected_eval_time = r.selected_eval_time
          && resumed.reduction = r.reduction));
    if !failures > 0 then begin
      Printf.printf "\n%d check(s) FAILED\n" !failures;
      exit 1
    end;
    Printf.printf "\nall checks passed\n"
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(const run $ app_arg $ jobs_arg $ quick_arg $ seed_arg $ faults_arg $ hit_frontier_arg)

let tune_cmd =
  let doc =
    "Run the paper's methodology: compile the whole space, compute the static metrics, measure \
     only the Pareto-optimal subset, report the chosen configuration."
  in
  let run (e : Apps.Registry.entry) jobs quick store_file arch_name rules =
    if arch_name = "all" then begin
      with_store store_file (fun store ->
          List.iter
            (fun (arch : Gpu.Arch.t) ->
              let tuned =
                Tuner.Search.tune_full ~jobs ?store
                  ~store_scale:(if quick then "quick" else "full")
                  ~app_name:e.name
                  (candidates_of ~arch ?extra_ptx:(rules_extra ?store ~jobs rules arch) e quick)
              in
              winner_line arch tuned.Tuner.Search.chosen)
            Gpu.Arch.archs);
      exit 0
    end;
    let arch = resolve_arch arch_name in
    let cands =
      with_store store_file (fun store ->
          candidates_of ~arch ?extra_ptx:(rules_extra ?store ~jobs rules arch) e quick)
    in
    let tuned =
      with_store store_file (fun store ->
          Tuner.Search.tune_full ~jobs ?store
            ~store_scale:(if quick then "quick" else "full")
            ~app_name:e.name cands)
    in
    let best = tuned.Tuner.Search.chosen and selected = tuned.Tuner.Search.considered in
    Printf.printf "space: %d configurations, measured only %d (%.0f%% pruned)\n"
      (List.length (List.filter (fun (c : Tuner.Candidate.t) -> c.valid) cands))
      (List.length selected)
      (100.0
      *. (1.0
         -. float_of_int (List.length selected)
            /. float_of_int (List.length (List.filter (fun (c : Tuner.Candidate.t) -> c.valid) cands))
         ));
    List.iter
      (fun ((c : Tuner.Candidate.t), (m : Tuner.Metrics.t)) ->
        Printf.printf "  candidate %-28s eff=%.3e util=%8.1f\n" c.desc m.efficiency m.utilization)
      selected;
    Printf.printf "chosen: %s (%.4f ms simulated)\n" best.cand.desc (best.time_s *. 1000.0);
    winner_line arch best;
    if store_file <> None then
      Printf.printf "result store: %d hit(s), %d miss(es)\n" tuned.tune_engine.store_hits
        tuned.tune_engine.store_misses
  in
  Cmd.v (Cmd.info "tune" ~doc)
    Term.(const run $ app_arg $ jobs_arg $ quick_arg $ store_arg $ arch_name_arg $ rules_flag)

let inspect_cmd =
  let doc =
    "Describe an application's optimization space (axes, constraints, cardinality); with \
     $(b,--trace), compile one configuration through the verified pipeline and print per-pass \
     statistics."
  in
  let config_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "config" ] ~docv:"DESC"
          ~doc:"Configuration to trace, by description (default: the space's first point).")
  in
  let trace_arg =
    Arg.(value & flag & info [ "trace" ] ~doc:"Compile one configuration and print the pass trace.")
  in
  let run (e : Apps.Registry.entry) config trace =
    Printf.printf "%s — %s\n\n" e.display e.title;
    print_string
      (Tuner.Report.table [ "Axis"; "Values" ]
         (List.map
            (fun (a : Tuner.Space.axis_info) ->
              [ a.axis_name; String.concat ", " a.axis_values ])
            e.axes));
    List.iter (Printf.printf "constraint: %s\n") e.constraints;
    Printf.printf "%d configurations\n" e.cardinality;
    if trace then begin
      let desc = match config with Some d -> d | None -> List.hd (Lazy.force e.configs) in
      let stats = ref [] in
      match e.compile ~hook:(fun s -> stats := s :: !stats) desc with
      | Error msg -> prerr_endline msg; exit 1
      | Ok c ->
        Printf.printf "\ntrace of %s:\n" desc;
        print_string (Tuner.Pipeline.trace_table (List.rev !stats));
        Printf.printf "\ninstruction classes:\n";
        print_string
          (Tuner.Report.table
             [ "Class"; "Static"; "Dynamic/thread" ]
             (List.map
                (fun (r : Ptx.Count.class_row) ->
                  [ r.class_name; string_of_int r.static_count;
                    Printf.sprintf "%.0f" r.dynamic_count ])
                (Ptx.Count.class_breakdown c.ptx)));
        Printf.printf "\n%d instructions, %d regs/thread, %d bytes smem/block\n"
          (Ptx.Prog.static_size c.ptx) c.resource.regs_per_thread c.resource.smem_bytes_per_block
    end
    else
      match config with
      | None -> ()
      | Some desc -> (
        match e.compile desc with
        | Error msg -> prerr_endline msg; exit 1
        | Ok c ->
          Printf.printf "\n%s: %d instructions, %d regs/thread, %d bytes smem/block\n" desc
            (Ptx.Prog.static_size c.ptx) c.resource.regs_per_thread c.resource.smem_bytes_per_block)
  in
  Cmd.v (Cmd.info "inspect" ~doc) Term.(const run $ app_arg $ config_arg $ trace_arg)

let lint_cmd =
  let doc =
    "Statically analyze an application's memory accesses on a quick-scale launch: affine \
     per-site coalescing and bank-conflict predictions, a shared-memory race check and \
     divergent-barrier detection.  Exits nonzero if a race or divergent barrier is found.  \
     $(b,--crossval) additionally diffs every static prediction against the simulator's \
     per-site counters; $(b,--mutate) injects a classic bug first (for demonstration)."
  in
  let config_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "config" ] ~docv:"DESC"
          ~doc:"Configuration to analyze, by description (default: the space's first point).")
  in
  let mutate_arg =
    Arg.(
      value
      & opt (some (enum [ ("race", `Race); ("bank", `Bank) ])) None
      & info [ "mutate" ] ~docv:"KIND"
          ~doc:
            "Analyze a deliberately broken variant: $(b,race) drops a barrier, $(b,bank) \
             transposes a shared-memory store.")
  in
  let crossval_arg =
    Arg.(
      value & flag
      & info [ "crossval" ]
          ~doc:"Cross-validate static predictions against the simulator's dynamic counters.")
  in
  let mutation (wb : Apps.Workbench.t) = function
    | `Race -> (
      (* Drop an interior barrier when there is one (the classic
         tile-loop race); kernels with a single barrier lose that. *)
      try Kir.Mutate.drop_sync ~index:1 with Kir.Mutate.Mutate_error _ -> Kir.Mutate.drop_sync ~index:0)
    | `Bank -> (
      match wb.Apps.Workbench.wb_kernel.Kir.Ast.shared_decls with
      | (arr, _) :: _ -> Kir.Mutate.transpose_store ~array:arr
      | [] -> failwith (wb.Apps.Workbench.wb_app ^ " uses no shared memory; nothing to mutate"))
  in
  let run (e : Apps.Registry.entry) config mutate crossval arch_name =
    let arch = resolve_arch arch_name in
    match e.workbench ~arch ?config () with
    | Error msg -> prerr_endline msg; exit 1
    | Ok wb ->
      let report =
        match mutate with
        | None -> Apps.Workbench.lint wb
        | Some m -> Apps.Workbench.lint_mutant wb (mutation wb m)
      in
      print_string (Analysis.Lint.render report);
      (* Dead-store lint ([Ptx.Liveness.dead_defs]): instructions whose
         defined register is dead on every path out of their position.
         The raw lowering is reported as a count (DCE will remove
         those); anything still dead in the *optimized* kernel is a
         wasted issue slot and is listed instruction by instruction. *)
      let lowered = Kir.Lower.lower wb.Apps.Workbench.wb_kernel in
      let dead_lowered = Ptx.Liveness.dead_defs lowered in
      if dead_lowered <> [] then
        Printf.printf "dead stores: %d in the raw lowering (removed by dce)\n"
          (List.length dead_lowered);
      let dead =
        Ptx.Liveness.dead_defs wb.Apps.Workbench.wb_compiled.Tuner.Pipeline.ptx
      in
      if dead = [] then Printf.printf "dead stores: none in the optimized kernel\n"
      else begin
        Printf.printf "dead stores: %d survive optimization (wasted issue slots):\n"
          (List.length dead);
        List.iter
          (fun (label, j, i) -> Printf.printf "  %s[%d]: %s\n" label j (Ptx.Pp.instr i))
          dead
      end;
      if crossval then begin
        Printf.printf "\ncross-validation against the simulator:\n";
        print_string
          (Analysis.Crossval.render
             (Apps.Workbench.crossval ?mutate:(Option.map (mutation wb) mutate) wb))
      end;
      if Analysis.Lint.has_errors report then exit 1
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const run $ app_arg $ config_arg $ mutate_arg $ crossval_arg $ arch_name_arg)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"minicuda source file")

let compile_cmd =
  let doc = "Compile a minicuda file to the PTX-like ISA and report resources and profile." in
  let run file =
    List.iter
      (fun k ->
        let c = Tuner.Pipeline.lower_opt k in
        print_string (Ptx.Pp.kernel c.ptx);
        Format.printf "// %a@." Ptx.Resource.pp c.resource;
        let prof = c.profile in
        Printf.printf
          "// profile: %.0f dynamic instrs/thread, %.0f regions, %.0f barriers, %.0f bytes \
           off-chip/thread\n\n"
          prof.instr prof.regions prof.barriers prof.global_bytes)
      (Minicuda.Parser.parse_file file)
  in
  Cmd.v (Cmd.info "compile" ~doc) Term.(const run $ file_arg)

let run_cmd =
  let doc =
    "Compile a single-kernel minicuda file and simulate it.  Buffers named with --buf are \
     zero-initialized (or ramp-initialized with --ramp) and the first words of each are printed \
     after the run."
  in
  let grid = Arg.(value & opt (pair ~sep:'x' int int) (1, 1) & info [ "grid" ] ~docv:"GXxGY") in
  let block = Arg.(value & opt (pair ~sep:'x' int int) (32, 1) & info [ "block" ] ~docv:"BXxBY") in
  let bufs =
    Arg.(value & opt_all (pair ~sep:'=' string int) [] & info [ "buf" ] ~docv:"NAME=WORDS")
  in
  let ramps =
    Arg.(value & opt_all string [] & info [ "ramp" ] ~docv:"NAME" ~doc:"initialize NAME to 0,1,2,...")
  in
  let ints = Arg.(value & opt_all (pair ~sep:'=' string int) [] & info [ "int" ] ~docv:"NAME=V") in
  let floats =
    Arg.(value & opt_all (pair ~sep:'=' string float) [] & info [ "float" ] ~docv:"NAME=V")
  in
  let show = Arg.(value & opt int 8 & info [ "show" ] ~docv:"N" ~doc:"words of output to print") in
  let run file (gx, gy) (bx, by) bufs ramps ints floats show =
    let kir = List.hd (Minicuda.Parser.parse_file file) in
    let ptx = (Tuner.Pipeline.lower_opt kir).ptx in
    let dev = Gpu.Device.create () in
    let buffers =
      List.map
        (fun (name, words) ->
          let space =
            match List.find_opt (fun (a : Kir.Ast.array_param) -> a.aname = name) kir.array_params with
            | Some a -> a.aspace
            | None -> failwith (Printf.sprintf "kernel has no array parameter %S" name)
          in
          let b =
            match space with
            | Kir.Ast.Const -> Gpu.Device.alloc_const dev words
            | _ -> Gpu.Device.alloc dev words
          in
          if List.mem name ramps then
            Gpu.Device.to_device dev b (Array.init words float_of_int);
          (name, b))
        bufs
    in
    let args =
      List.map (fun (n, b) -> (n, Gpu.Sim.Buf b)) buffers
      @ List.map (fun (n, v) -> (n, Gpu.Sim.I v)) ints
      @ List.map (fun (n, v) -> (n, Gpu.Sim.F v)) floats
    in
    let launch = { Gpu.Sim.kernel = ptx; grid = (gx, gy); block = (bx, by); args } in
    let stats = Gpu.Sim.run ~mode:(Gpu.Sim.Timing { max_blocks = Gpu.Sim.default_max_blocks }) dev launch in
    ignore (Gpu.Sim.run ~mode:Gpu.Sim.Functional dev launch);
    Printf.printf
      "simulated %.0f cycles = %.4f ms  (B_SM=%d, %d regs/thread, %d gmem transactions)\n"
      stats.cycles (stats.time_s *. 1000.0) stats.occupancy.blocks_per_sm stats.regs_per_thread
      stats.gmem_transactions;
    List.iter
      (fun (name, b) ->
        let data = Gpu.Device.of_device dev b in
        let n = min show (Array.length data) in
        Printf.printf "%s[0..%d] =" name (n - 1);
        for i = 0 to n - 1 do
          Printf.printf " %g" data.(i)
        done;
        print_newline ())
      buffers
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(const run $ file_arg $ grid $ block $ bufs $ ramps $ ints $ floats $ show)

(* ------------------------------------------------------------------ *)
(* Tuning service                                                      *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  let doc = "Unix-domain socket path the daemon listens on." in
  Arg.(value & opt string "gpuopt.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let doc =
    "Run the tuning service: a daemon answering tune/explore/lint requests over a \
     length-prefixed JSON protocol on a Unix-domain socket, with every measurement backed by a \
     persistent content-addressed store — no (kernel x space x arch) point is ever measured \
     twice, by any client, in any session.  Stop it with $(b,gpuopt request shutdown)."
  in
  let store_arg =
    let doc =
      "Content-addressed result store file (created if absent; appended atomically; corrupt \
       entries are rejected and skipped on load)."
    in
    Arg.(value & opt string "gpuopt.store" & info [ "store" ] ~docv:"FILE" ~doc)
  in
  let conns_arg =
    let doc = "Connection-worker domains (concurrent requests in flight)." in
    Arg.(value & opt int 4 & info [ "conns" ] ~docv:"N" ~doc)
  in
  let durable_arg =
    let doc =
      "fsync the store after every appended record: a machine crash (not just a process crash) \
       loses no completed measurement, at the cost of one disk sync per new store entry."
    in
    Arg.(value & flag & info [ "durable" ] ~doc)
  in
  let run socket store_file conns jobs durable =
    let store = Tuner.Store.open_ ~durable ~file:store_file () in
    List.iter
      (fun (c : Tuner.Store.corrupt_line) ->
        Printf.eprintf "store: %s:%d rejected: %s\n%!" store_file c.cl_line c.cl_reason)
      (Tuner.Store.corrupt_entries store);
    let server = Tuner.Serve.create ~jobs ~store (Apps.Serving.resolver ()) in
    Printf.printf "gpuopt serve: listening on %s (store %s: %d entr%s loaded, %d conn worker(s), \
                   %d measurement job(s))\n%!"
      socket store_file
      (Tuner.Store.loaded store)
      (if Tuner.Store.loaded store = 1 then "y" else "ies")
      conns jobs;
    (* SIGTERM (systemd stop, timeout(1), an operator's kill) drains
       gracefully: in-flight sweeps finish, their results reach the
       store, then the daemon exits through the normal path below. *)
    Tuner.Serve.listen ~conn_workers:conns ~on_sigterm:true server ~socket ();
    let s = Tuner.Serve.stats server in
    Tuner.Store.close store;
    Printf.printf
      "gpuopt serve: shut down after %d request(s) (%d error(s)); %d simulator run(s), %d store \
       hit(s), %d entr%s in %s\n"
      s.sv_requests s.sv_errors s.sv_runs s.sv_store_hits s.sv_store_entries
      (if s.sv_store_entries = 1 then "y" else "ies")
      store_file
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ socket_arg $ store_arg $ conns_arg $ jobs_arg $ durable_arg)

let request_cmd =
  let doc =
    "Send one request to a running $(b,gpuopt serve) daemon and print the reply.  Verbs: \
     $(b,ping), $(b,stats), $(b,tune) $(i,APP), $(b,explore) $(i,APP), $(b,lint) $(i,APP), \
     $(b,shutdown).  Exits nonzero if the server answers with an error."
  in
  let verb_arg =
    let verbs = [ "ping"; "stats"; "tune"; "explore"; "lint"; "shutdown" ] in
    let parse s = if List.mem s verbs then Ok s else Error (`Msg ("unknown verb " ^ s)) in
    Arg.(
      required
      & pos 0 (some (conv (parse, Format.pp_print_string))) None
      & info [] ~docv:"VERB" ~doc:"ping | stats | tune | explore | lint | shutdown")
  in
  let req_app_arg =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"APP" ~doc:"Application name")
  in
  let scale_arg =
    let parse s =
      match Tuner.Proto.scale_of_name s with
      | Some sc -> Ok sc
      | None -> Error (`Msg (Printf.sprintf "unknown scale %S (quick|bench|full)" s))
    in
    Arg.(
      value
      & opt (conv (parse, fun fmt s -> Format.pp_print_string fmt (Tuner.Proto.scale_name s)))
          Tuner.Proto.Quick
      & info [ "scale" ] ~docv:"SCALE" ~doc:"Problem scale: quick, bench or full.")
  in
  let chaos_arg =
    Arg.(
      value
      & opt (some (pair ~sep:',' int int)) None
      & info [ "chaos" ] ~docv:"SEED,COUNT"
          ~doc:
            "Inject $(i,COUNT) seeded faults into the explore sweep (server-side, store \
             bypassed).")
  in
  let config_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "config" ] ~docv:"DESC" ~doc:"Configuration for lint, by description.")
  in
  let need_app verb = function
    | Some a -> a
    | None ->
      Printf.eprintf "request %s: missing APP argument\n" verb;
      exit 2
  in
  let print_row tag (r : Tuner.Proto.measured_row) =
    Printf.printf "%s %s  (%.4f ms simulated)\n" tag r.m_desc (r.m_time_s *. 1000.0)
  in
  let run socket verb app scale chaos config arch predict deadline_ms retries =
    Tuner.Serve.ignore_sigpipe ();
    let req =
      match verb with
      | "ping" -> Tuner.Proto.Ping
      | "stats" -> Tuner.Proto.Stats
      | "shutdown" -> Tuner.Proto.Shutdown
      | "tune" -> Tuner.Proto.Tune { app = need_app verb app; scale; arch; deadline_ms }
      | "explore" ->
        Tuner.Proto.Explore
          {
            app = need_app verb app;
            scale;
            chaos =
              Option.map (fun (seed, count) -> { Tuner.Proto.ch_seed = seed; ch_count = count }) chaos;
            arch;
            predict;
            deadline_ms;
          }
      | "lint" -> Tuner.Proto.Lint { app = need_app verb app; config }
      | _ -> assert false
    in
    match Tuner.Serve.call ~retries ~socket req with
    | Error msg ->
      Printf.eprintf "request: %s (is `gpuopt serve --socket %s` running?)\n" msg socket;
      exit 1
    | Ok resp -> (
      match resp with
      | Tuner.Proto.Pong -> print_endline "pong"
      | Tuner.Proto.Bye -> print_endline "server shutting down"
      | Tuner.Proto.Stats_r s ->
        Printf.printf
          "requests %d (errors %d)\nsimulator runs %d\nstore: %d hit(s), %d miss(es), %d \
           entr%s\n"
          s.sv_requests s.sv_errors s.sv_runs s.sv_store_hits s.sv_store_misses
          s.sv_store_entries
          (if s.sv_store_entries = 1 then "y" else "ies")
      | Tuner.Proto.Tune_r t ->
        Printf.printf
          "space: %d configurations on %s, measured only %d (%d run(s), %d store hit(s))\n"
          t.t_space_size t.t_arch (List.length t.t_selected) t.t_runs t.t_store_hits;
        print_row "chosen:" t.t_chosen
      | Tuner.Proto.Explore_r x ->
        Printf.printf
          "space: %d valid configurations (%d invalid) on %s, %d fault(s)\nreduction %.1f%%, \
           optimum %sselected (%d run(s), %d store hit(s))\n"
          x.x_space_size x.x_invalid x.x_arch (List.length x.x_faults) (100.0 *. x.x_reduction)
          (if x.x_optimum_selected then "" else "NOT ")
          x.x_runs x.x_store_hits;
        print_row "true optimum: " x.x_best;
        print_row "pruned search:" x.x_selected_best;
        (match x.x_prune with
        | None -> ()
        | Some p ->
          Printf.printf
            "model race: %d probe(s) + %d survivor(s) = %d of %d fully simulated (%.1f%%), %d \
             raced; optimum predicted rank %s; %s\n"
            p.p_probes
            (p.p_simulated - p.p_probes)
            p.p_simulated p.p_total
            (100.0 *. float_of_int p.p_simulated /. float_of_int p.p_total)
            p.p_raced
            (if p.p_rank > 0 then Printf.sprintf "%d/%d" p.p_rank p.p_total else "-")
            (if p.p_recovered then "optimum recovered" else "optimum MISSED");
          print_row "race winner:  " p.p_winner;
          Printf.printf "model %s\n" p.p_model);
        List.iter
          (fun (f : Tuner.Proto.fault_row) -> Printf.printf "fault: %s: %s\n" f.f_desc f.f_fault)
          x.x_faults
      | Tuner.Proto.Lint_r { l_report; l_errors } ->
        print_string l_report;
        if l_errors then exit 1
      | Tuner.Proto.Overloaded_r { o_retry_after_ms } ->
        Printf.eprintf "server overloaded: retry after %d ms (or pass --retries)\n"
          o_retry_after_ms;
        exit 1
      | Tuner.Proto.Error_r { e_code; e_msg } ->
        Printf.eprintf "server error [%s]: %s\n" (Tuner.Proto.error_code_name e_code) e_msg;
        exit 1)
  in
  let req_arch_arg =
    let doc = "Target machine model for tune/explore, by registry name (server-validated)." in
    Arg.(value & opt (some string) None & info [ "arch" ] ~docv:"NAME" ~doc)
  in
  let req_predict_arg =
    let doc =
      "Ask the server to also run the model-driven race on an explore request and report its \
       pruning ratio and winner (ignored with $(b,--chaos))."
    in
    Arg.(value & flag & info [ "predict" ] ~doc)
  in
  let deadline_arg =
    let doc =
      "Deadline in milliseconds for tune/explore: the server abandons the sweep at the next \
       candidate boundary past the deadline and answers with a typed $(i,deadline-exceeded) \
       error.  Measurements completed before the cutoff are stored, so a retry resumes from \
       them."
    in
    Arg.(value & opt (some int) None & info [ "deadline" ] ~docv:"MS" ~doc)
  in
  let retries_arg =
    let doc =
      "Retry transport failures and typed $(i,overloaded) sheds up to $(i,N) times with \
       jittered exponential backoff.  Safe: measurements are content-addressed, so a retried \
       sweep never repeats completed work."
    in
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)
  in
  Cmd.v (Cmd.info "request" ~doc)
    Term.(
      const run $ socket_arg $ verb_arg $ req_app_arg $ scale_arg $ chaos_arg $ config_arg
      $ req_arch_arg $ req_predict_arg $ deadline_arg $ retries_arg)

let store_cmd =
  let doc =
    "Maintain a content-addressed result store file offline.  Verbs: $(b,fsck) $(i,FILE) \
     scans and reports valid / duplicate / corrupt records without modifying anything; \
     $(b,compact) $(i,FILE) rewrites the file down to its valid deduplicated records \
     (fsync + atomic rename) and reports the bytes reclaimed.  Run against a store no daemon \
     has open for writing."
  in
  let verb_arg =
    let verbs = [ "fsck"; "compact" ] in
    let parse s = if List.mem s verbs then Ok s else Error (`Msg ("unknown verb " ^ s)) in
    Arg.(
      required
      & pos 0 (some (conv (parse, Format.pp_print_string))) None
      & info [] ~docv:"VERB" ~doc:"fsck | compact")
  in
  let file_pos_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE" ~doc:"Store file to check.")
  in
  let print_report (r : Tuner.Store.fsck_report) =
    Printf.printf "%s: %d byte(s), %d record(s): %d valid, %d duplicate(s), %d corrupt\n"
      r.fs_file r.fs_bytes r.fs_records r.fs_valid r.fs_duplicates (List.length r.fs_corrupt);
    List.iter
      (fun (c : Tuner.Store.corrupt_line) ->
        Printf.printf "  line %d: %s\n" c.cl_line c.cl_reason)
      r.fs_corrupt
  in
  let run verb file =
    if not (Sys.file_exists file) then begin
      Printf.eprintf "store %s: %s: no such file\n" verb file;
      exit 2
    end;
    match verb with
    | "fsck" ->
      let r = Tuner.Store.fsck ~file in
      print_report r;
      Printf.printf "reclaimable: %d byte(s)\n" r.fs_reclaimable;
      (* Like fsck(8): nonzero exit when the file needs attention. *)
      if r.fs_corrupt <> [] || r.fs_duplicates > 0 then exit 1
    | "compact" ->
      let r, reclaimed = Tuner.Store.compact ~file in
      print_report r;
      Printf.printf "compacted: %d byte(s) reclaimed\n" reclaimed
    | _ -> assert false
  in
  Cmd.v (Cmd.info "store" ~doc) Term.(const run $ verb_arg $ file_pos_arg)

(* ------------------------------------------------------------------ *)
(* Superoptimizer                                                      *)
(* ------------------------------------------------------------------ *)

let len_arg =
  let doc = "Maximum window length to enumerate (1 or 2)." in
  Arg.(value & opt int 2 & info [ "len" ] ~docv:"N" ~doc)

let sweep_arg =
  let doc = "Random adversarial vectors per candidate pair in the bounded tier." in
  Arg.(value & opt int 128 & info [ "sweep" ] ~docv:"N" ~doc)

let superopt_params quick len sweep =
  if quick then (min len 1, min sweep 64) else (len, sweep)

let superopt_cmd =
  let doc =
    "Discover a verified peephole rule database for the target machine: enumerate short \
     canonical windows, propose cheaper rewrites, and push each pair through the equivalence \
     funnel (quick vectors, adversarial bounded sweep, exhaustive proof on narrow domains).  \
     With $(docv), additionally apply the database to the app's default configuration and \
     validate the result.  $(b,--quick) bounds discovery to single-instruction windows."
  in
  let opt_app_arg =
    Arg.(value & pos 0 (some app_conv) None & info [] ~docv:"APP" ~doc:"Apply the rules to this app's kernel")
  in
  let run app jobs quick store_file arch_name len sweep =
    let arch = resolve_arch arch_name in
    let max_len, sweep = superopt_params quick len sweep in
    let r =
      with_store store_file (fun store ->
          Tuner.Superopt.discover_cached ?store ~jobs ~arch ~max_len ~sweep ())
    in
    let open Tuner.Superopt in
    if r.cached then
      Printf.printf "%d rule(s) loaded from the store (arch %s)\n" (List.length r.rules)
        arch.Gpu.Arch.name
    else begin
      print_string (funnel_table r.funnel);
      let q, b, e = tier_counts r.rules in
      Printf.printf "\n%d rule(s) on %s: %d exhaustive, %d bounded, %d quick\n"
        (List.length r.rules) arch.Gpu.Arch.name e b q;
      if r.elapsed_s > 0.0 then
        Printf.printf "discovery: %.2fs, %.1f rules/s, %d pairs screened\n" r.elapsed_s
          (float_of_int (List.length r.rules) /. r.elapsed_s)
          r.funnel.fn_pairs
    end;
    Printf.printf "db digest: %s\n" (Ptx.Patterns.digest r.rules);
    match app with
    | None -> ()
    | Some (e : Apps.Registry.entry) -> (
      match e.workbench ~arch () with
      | Error msg -> prerr_endline msg; exit 1
      | Ok wb ->
        (* Apply to the *raw lowering* of the app's default config — the
           optimized kernel has already been folded by [Ptx.Opt], the
           raw one still contains the patterns the rules target. *)
        let before = Kir.Lower.lower wb.Apps.Workbench.wb_kernel in
        let after, st = Ptx.Peephole.run_stats r.rules before in
        Printf.printf
          "\n%s %s: %d -> %d instructions, %d window(s) rewritten, %d blocked by liveness\n"
          e.name wb.Apps.Workbench.wb_config
          (Ptx.Prog.static_size before) (Ptx.Prog.static_size after)
          st.Ptx.Peephole.matched st.Ptx.Peephole.blocked;
        (match Ptx.Verify.check after with
        | Ok () -> ()
        | Error vs ->
          Printf.printf "verifier rejected the rewritten kernel:\n%s\n" (Ptx.Verify.report vs);
          exit 1);
        (match Ptx.Equiv.validate before after with
        | Ok n -> Printf.printf "translation validation: ok (%d vectors)\n" n
        | Error m ->
          Printf.printf "translation validation FAILED: %s\n" (Ptx.Equiv.mismatch_to_string m);
          exit 1))
  in
  Cmd.v (Cmd.info "superopt" ~doc)
    Term.(
      const run $ opt_app_arg $ jobs_arg $ quick_arg $ store_arg $ arch_name_arg $ len_arg
      $ sweep_arg)

let rules_cmd =
  let doc =
    "Print the verified rule database, one rule per line (proof tier, cycles saved, window => \
     replacement), then its digest — the line CI pins against drift.  Reads the database from \
     $(b,--store) when present, else discovers it."
  in
  let run jobs quick store_file arch_name len sweep =
    let arch = resolve_arch arch_name in
    let max_len, sweep = superopt_params quick len sweep in
    let r =
      with_store store_file (fun store ->
          Tuner.Superopt.discover_cached ?store ~jobs ~arch ~max_len ~sweep ())
    in
    List.iter (fun rule -> print_endline (Ptx.Patterns.to_line rule)) r.Tuner.Superopt.rules;
    Printf.printf "%d rule(s), db digest: %s\n" (List.length r.Tuner.Superopt.rules)
      (Ptx.Patterns.digest r.Tuner.Superopt.rules)
  in
  Cmd.v (Cmd.info "rules" ~doc)
    Term.(const run $ jobs_arg $ quick_arg $ store_arg $ arch_name_arg $ len_arg $ sweep_arg)

let () =
  let doc = "program optimization space pruning for a multithreaded GPU (CGO'08 reproduction)" in
  let info = Cmd.info "gpuopt" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            arch_cmd; archs_cmd; explore_cmd; tune_cmd; predict_cmd; inspect_cmd; lint_cmd;
            compile_cmd; run_cmd; chaos_cmd; serve_cmd; request_cmd; store_cmd; superopt_cmd; rules_cmd;
          ]))
