examples/quickstart.mli:
