examples/minicuda_demo.ml: Array Gpu Kir List Minicuda Printf Ptx Util
