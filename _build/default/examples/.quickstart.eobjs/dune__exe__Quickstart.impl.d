examples/quickstart.ml: Array Format Gpu Kir List Printf Ptx Tuner Util
