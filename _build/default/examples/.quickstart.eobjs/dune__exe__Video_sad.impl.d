examples/video_sad.ml: Apps Array Float Gpu Hashtbl Kir List Option Printf Ptx Tuner
