examples/tune_matmul.ml: Apps List Printf Sys Tuner
