examples/mri_recon.mli:
