examples/mri_recon.ml: Apps Array Gpu Kir List Printf Ptx Tuner Util
