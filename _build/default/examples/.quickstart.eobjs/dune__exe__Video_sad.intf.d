examples/video_sad.mli:
