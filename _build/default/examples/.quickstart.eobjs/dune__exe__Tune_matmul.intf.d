examples/tune_matmul.mli:
