examples/minicuda_demo.mli:
