(* Tests for the paper's contribution: the efficiency/utilization
   metrics (Eqs. 1-2, including the paper's worked example), Pareto
   frontier extraction, and the pruned-search driver. *)

let t name f = Alcotest.test_case name `Quick f
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let metrics_tests =
  [
    t "paper worked example (sec 4): matmul 4k, complete unroll" (fun () ->
        (* Instr = 15150, Regions = 769, Threads = 2^24, W_TB = 8,
           B_SM = 2  =>  Efficiency = 3.93e-12, Utilization ~ 227. *)
        let m =
          Tuner.Metrics.compute ~instr:15150.0 ~regions:769.0
            ~threads:(Float.pow 2.0 24.0) ~warps_per_block:8 ~blocks_per_sm:2
        in
        check_b "efficiency 3.93e-12" true
          (Float.abs ((m.efficiency /. 3.93e-12) -. 1.0) < 0.01);
        check_b "utilization ~227" true (Float.abs (m.utilization -. 227.0) < 1.0));
    t "efficiency halves when instructions double" (fun () ->
        let m i =
          (Tuner.Metrics.compute ~instr:i ~regions:10.0 ~threads:1000.0 ~warps_per_block:4
             ~blocks_per_sm:2)
            .efficiency
        in
        check_b "inverse" true (Float.abs ((m 100.0 /. m 200.0) -. 2.0) < 1e-9));
    t "utilization grows with independent warps" (fun () ->
        let u b =
          (Tuner.Metrics.compute ~instr:100.0 ~regions:10.0 ~threads:1.0 ~warps_per_block:4
             ~blocks_per_sm:b)
            .utilization
        in
        check_b "monotone" true (u 1 < u 2 && u 2 < u 4);
        (* bracket term: (4-1)/2 + (B-1)*4 *)
        check_b "B=1" true (Float.abs (u 1 -. (100.0 /. 10.0 *. 1.5)) < 1e-9);
        check_b "B=2" true (Float.abs (u 2 -. (100.0 /. 10.0 *. 5.5)) < 1e-9));
    t "degenerate inputs give zero, not exceptions" (fun () ->
        let m =
          Tuner.Metrics.compute ~instr:0.0 ~regions:0.0 ~threads:0.0 ~warps_per_block:0
            ~blocks_per_sm:0
        in
        check_b "finite" true (m.efficiency = 0.0 && m.utilization = 0.0));
    t "normalize scales each axis to max 1" (fun () ->
        let ms =
          Tuner.Metrics.
            [
              { efficiency = 1.0; utilization = 50.0 };
              { efficiency = 4.0; utilization = 200.0 };
            ]
        in
        match Tuner.Metrics.normalize ms with
        | [ a; b ] ->
          check_b "a" true (a.efficiency = 0.25 && a.utilization = 0.25);
          check_b "b" true (b.efficiency = 1.0 && b.utilization = 1.0)
        | _ -> Alcotest.fail "length");
  ]

(* ------------------------------------------------------------------ *)
(* Pareto                                                              *)
(* ------------------------------------------------------------------ *)

let pt x y = { Tuner.Pareto.x; y }
let coords (p : Tuner.Pareto.point) = (p.x, p.y)

let random_points seed n =
  let rng = Util.Rng.create seed in
  List.init n (fun _ -> pt (Util.Rng.float rng) (Util.Rng.float rng))

let pareto_tests =
  [
    t "frontier of a staircase" (fun () ->
        let pts = [ pt 1.0 3.0; pt 2.0 2.0; pt 3.0 1.0; pt 1.5 1.5 ] in
        let f = Tuner.Pareto.frontier_points pts in
        check_i "three survive" 3 (List.length f);
        check_b "dominated point gone" true (not (List.mem (pt 1.5 1.5) f)));
    t "a single point is its own frontier" (fun () ->
        check_i "one" 1 (List.length (Tuner.Pareto.frontier_points [ pt 0.5 0.5 ])));
    t "identical points survive together (paper's clusters)" (fun () ->
        let pts = [ pt 1.0 1.0; pt 1.0 1.0; pt 1.0 1.0; pt 0.5 0.5 ] in
        check_i "cluster kept" 3 (List.length (Tuner.Pareto.frontier_points pts)));
    t "same x, lower y is dominated" (fun () ->
        let f = Tuner.Pareto.frontier_points [ pt 1.0 2.0; pt 1.0 1.0 ] in
        check_b "only the top" true (f = [ pt 1.0 2.0 ]));
    t "empty input" (fun () -> check_i "empty" 0 (List.length (Tuner.Pareto.frontier_points [])));
    t "result preserves input order" (fun () ->
        let pts = [ pt 3.0 1.0; pt 1.0 3.0; pt 2.0 2.0 ] in
        check_b "order" true (Tuner.Pareto.frontier_points pts = pts));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"frontier contains no dominated point (qcheck)" ~count:200
         QCheck.(int_range 0 100000)
         (fun seed ->
           let pts = random_points seed 60 in
           let f = Tuner.Pareto.frontier_points pts in
           List.for_all (fun p -> not (Tuner.Pareto.is_dominated coords f p)) f));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"every excluded point is dominated by the frontier (qcheck)"
         ~count:200
         QCheck.(int_range 0 100000)
         (fun seed ->
           let pts = random_points seed 60 in
           let f = Tuner.Pareto.frontier_points pts in
           List.for_all
             (fun p -> List.mem p f || Tuner.Pareto.is_dominated coords f p)
             pts));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"frontier includes the max of each axis (qcheck)" ~count:200
         QCheck.(int_range 0 100000)
         (fun seed ->
           let pts = random_points seed 40 in
           let f = Tuner.Pareto.frontier_points pts in
           let max_by proj =
             List.fold_left (fun a p -> if proj p > proj a then p else a) (List.hd pts) pts
           in
           List.exists (fun p -> p.Tuner.Pareto.x = (max_by (fun p -> p.Tuner.Pareto.x)).x) f
           && List.exists (fun p -> p.Tuner.Pareto.y = (max_by (fun p -> p.Tuner.Pareto.y)).y) f));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"quantized frontier is a superset of the exact one (qcheck)"
         ~count:200
         QCheck.(int_range 0 100000)
         (fun seed ->
           let pts = random_points seed 50 in
           let exact = Tuner.Pareto.frontier coords pts in
           let quant = Tuner.Pareto.frontier_quantized ~resolution:0.05 coords pts in
           List.for_all (fun p -> List.mem p quant) exact));
  ]

(* ------------------------------------------------------------------ *)
(* Search driver (on synthetic candidates)                             *)
(* ------------------------------------------------------------------ *)

(* Fabricate a candidate whose metrics and runtime we fully control:
   a one-block dummy kernel plus a closed-form run function. *)
let dummy_kernel =
  Ptx.Prog.make ~name:"dummy" ~params:[] ~smem_words:0 ~lmem_words:0
    [ Ptx.Prog.block "a" [] Ptx.Prog.Ret ]

let fake ~desc ~instr ~regions ~time : Tuner.Candidate.t =
  let base =
    Tuner.Candidate.make ~desc ~params:[] ~kernel:dummy_kernel ~threads_per_block:64
      ~threads_total:6400 ~run:(fun () -> time) ()
  in
  (* override the measured profile with the synthetic one *)
  { base with profile = { base.profile with instr; regions } }

let search_tests =
  [
    t "search keeps an optimum that sits on the frontier" (fun () ->
        (* efficiency ~ 1/instr; utilization ~ instr/regions * const.
           Make the fast config dominate on both axes. *)
        let cands =
          [
            fake ~desc:"good" ~instr:100.0 ~regions:10.0 ~time:1.0;
            fake ~desc:"bad" ~instr:400.0 ~regions:100.0 ~time:4.0;
            fake ~desc:"worse" ~instr:800.0 ~regions:400.0 ~time:8.0;
          ]
        in
        let r = Tuner.Search.run ~app_name:"synthetic" cands in
        check_b "optimum selected" true r.optimum_selected;
        check_b "exact" true r.optimum_exact;
        check_b "best is good" true (r.best.cand.desc = "good"));
    t "search reports reduction and eval-time bookkeeping" (fun () ->
        let cands =
          List.init 20 (fun k ->
              fake
                ~desc:(Printf.sprintf "c%d" k)
                ~instr:(100.0 +. float_of_int (k * 37 mod 200))
                ~regions:(10.0 +. float_of_int (k * 17 mod 50))
                ~time:(1.0 +. float_of_int k))
        in
        let r = Tuner.Search.run ~app_name:"synthetic" cands in
        check_i "space" 20 r.space_size;
        check_b "reduction in [0,1)" true (r.reduction >= 0.0 && r.reduction < 1.0);
        check_b "full eval time = sum" true
          (Float.abs (r.full_eval_time -. (20.0 +. (19.0 *. 20.0 /. 2.0))) < 1e-9);
        check_b "selected time <= full time" true (r.selected_eval_time <= r.full_eval_time));
    t "invalid candidates are excluded but counted" (fun () ->
        let invalid =
          Tuner.Candidate.make ~desc:"huge" ~params:[] ~kernel:dummy_kernel
            ~threads_per_block:1024 ~threads_total:1024
            ~run:(fun () -> 0.1)
            ()
        in
        check_b "flagged invalid" false invalid.valid;
        let r =
          Tuner.Search.run ~app_name:"synthetic"
            [ invalid; fake ~desc:"ok" ~instr:10.0 ~regions:2.0 ~time:1.0 ]
        in
        check_i "valid" 1 r.space_size;
        check_i "invalid" 1 r.invalid);
    t "tune measures only the selected subset" (fun () ->
        let measured = ref 0 in
        let counting desc instr regions time =
          let c = fake ~desc ~instr ~regions ~time in
          {
            c with
            run =
              (fun () ->
                incr measured;
                time);
          }
        in
        let cands =
          [
            counting "a" 100.0 10.0 1.0;
            counting "b" 1000.0 11.0 9.0;
            (* dominated on both axes *)
            counting "c" 400.0 300.0 5.0;
          ]
        in
        let best, selected = Tuner.Search.tune ~app_name:"synthetic" cands in
        check_b "fewer measurements than space" true (!measured = List.length selected);
        check_b "picked the fast one" true (best.cand.desc = "a"));
    t "candidate validity mirrors the paper's failure modes" (fun () ->
        let with_smem words =
          Tuner.Candidate.make ~desc:"s" ~params:[]
            ~kernel:
              (Ptx.Prog.make ~name:"d" ~params:[] ~smem_words:words ~lmem_words:0
                 [ Ptx.Prog.block "a" [] Ptx.Prog.Ret ])
            ~threads_per_block:64 ~threads_total:64
            ~run:(fun () -> 0.0)
            ()
        in
        check_b "smem overflow invalid" false (with_smem 5000).valid;
        check_b "modest smem valid" true (with_smem 100).valid);
  ]

(* ------------------------------------------------------------------ *)
(* Report rendering                                                    *)
(* ------------------------------------------------------------------ *)

let report_tests =
  [
    t "table aligns columns" (fun () ->
        let s = Tuner.Report.table [ "a"; "bb" ] [ [ "xxx"; "y" ]; [ "z"; "wwww" ] ] in
        let lines = String.split_on_char '\n' s in
        let widths = List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines in
        check_b "equal widths" true (List.length (List.sort_uniq compare widths) = 1));
    t "scatter marks frontier and optimum distinctly" (fun () ->
        let s =
          Tuner.Report.scatter
            [ (0.1, 0.9, Tuner.Report.Dot); (0.9, 0.1, Front); (0.99, 0.99, Best) ]
        in
        check_b "has dot" true (String.contains s '.');
        check_b "has front" true (String.contains s 'o');
        check_b "has best" true (String.contains s '*'));
    t "series plot renders without data loss at the edges" (fun () ->
        let s =
          Tuner.Report.series_plot ~x_name:"x" ~y_name:"y"
            [ ("s", [ (0.0, 0.0); (1.0, 1.0) ]) ]
        in
        check_b "nonempty" true (String.length s > 0));
    t "series plot copes with empty input" (fun () ->
        check_b "no data" true
          (Tuner.Report.series_plot ~x_name:"x" ~y_name:"y" [] = "(no data)\n"));
  ]

let suite =
  [
    ("tuner.metrics", metrics_tests);
    ("tuner.pareto", pareto_tests);
    ("tuner.search", search_tests);
    ("tuner.report", report_tests);
  ]
