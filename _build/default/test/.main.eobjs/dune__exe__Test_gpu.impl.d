test/test_gpu.ml: Alcotest Arch Array Device Float Gpu Kir Option Printf Ptx QCheck QCheck_alcotest Sim
