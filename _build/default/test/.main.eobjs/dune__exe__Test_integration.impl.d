test/test_integration.ml: Alcotest Apps Gpu Kir Minicuda Ptx Tuner
