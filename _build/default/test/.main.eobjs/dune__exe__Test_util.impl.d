test/test_util.ml: Alcotest Array Float Float32 List QCheck QCheck_alcotest Rng Stats Util
