test/test_apps.ml: Alcotest Apps Array Float Kir List Option Ptx Tuner
