test/main.mli:
