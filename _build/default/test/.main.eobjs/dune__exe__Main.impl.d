test/main.ml: Alcotest Test_apps Test_gpu Test_integration Test_kir Test_lang Test_ptx Test_tuner Test_util
