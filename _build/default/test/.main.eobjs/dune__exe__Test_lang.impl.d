test/test_lang.ml: Alcotest Array Gpu Kir List Minicuda Printf Ptx
