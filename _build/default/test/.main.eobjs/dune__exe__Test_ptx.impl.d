test/test_ptx.ml: Alcotest Array Cfg Count Gpu Instr Lexer List Liveness Opt Parser Pp Printf Prog Ptx QCheck QCheck_alcotest Reg Regalloc Resource Util
