test/test_tuner.ml: Alcotest Float List Printf Ptx QCheck QCheck_alcotest String Tuner Util
