test/test_kir.ml: Alcotest Array Gpu Kir List Ptx QCheck QCheck_alcotest String Util
