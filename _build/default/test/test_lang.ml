(* Tests for the minicuda surface language: lexer, parser/elaborator,
   pragmas, and end-to-end execution of parsed kernels. *)

let t name f = Alcotest.test_case name `Quick f
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let tokens src = List.map fst (Minicuda.Lexer.tokenize src)

let lexer_tests =
  [
    t "keywords, identifiers and punctuation" (fun () ->
        check_b "tokens" true
          (tokens "kernel f ( ) { }"
          = Minicuda.Token.[ KERNEL; IDENT "f"; LPAREN; RPAREN; LBRACE; RBRACE; EOF ]));
    t "numbers: ints, floats, suffixes, exponents" (fun () ->
        check_b "int" true (tokens "42" = Minicuda.Token.[ INT_LIT 42; EOF ]);
        check_b "float" true (tokens "1.5" = Minicuda.Token.[ FLOAT_LIT 1.5; EOF ]);
        check_b "f suffix" true (tokens "2f" = Minicuda.Token.[ FLOAT_LIT 2.0; EOF ]);
        check_b "exponent" true (tokens "1e3" = Minicuda.Token.[ FLOAT_LIT 1000.0; EOF ]));
    t "two-char operators" (fun () ->
        check_b "ops" true
          (tokens "<= == != += && ||"
          = Minicuda.Token.[ LE; EQEQ; NEQ; PLUS_EQ; ANDAND; OROR; EOF ]));
    t "comments are skipped" (fun () ->
        check_b "line" true (tokens "a // comment\n b" = Minicuda.Token.[ IDENT "a"; IDENT "b"; EOF ]);
        check_b "block" true (tokens "a /* x\ny */ b" = Minicuda.Token.[ IDENT "a"; IDENT "b"; EOF ]));
    t "pragmas become tokens" (fun () ->
        check_b "unroll n" true (tokens "#pragma unroll 4" = Minicuda.Token.[ UNROLL 4; EOF ]);
        check_b "unroll complete" true (tokens "#pragma unroll" = Minicuda.Token.[ UNROLL 0; EOF ]);
        check_b "trip" true (tokens "#pragma trip 100" = Minicuda.Token.[ TRIP 100; EOF ]));
    t "lexing errors carry line numbers" (fun () ->
        check_b "raises" true
          (try
             ignore (tokens "a\nb\n@");
             false
           with Minicuda.Lexer.Error { line = 3; _ } -> true));
  ]

(* ------------------------------------------------------------------ *)

let parse1 = Minicuda.Parser.parse_one

let run_src ?(grid = (1, 1)) ?(block = (32, 1)) ~words src args_of =
  let k = parse1 src in
  let ptx = Ptx.Opt.run (Kir.Lower.lower k) in
  let d = Gpu.Device.create () in
  let out = Gpu.Device.alloc d words in
  let args = ("O", Gpu.Sim.Buf out) :: args_of d in
  ignore (Gpu.Sim.run ~mode:Gpu.Sim.Functional d { Gpu.Sim.kernel = ptx; grid; block; args });
  Gpu.Device.of_device d out

let parser_tests =
  [
    t "precedence: 1 + 2 * 3 == 7" (fun () ->
        let out =
          run_src ~words:1 "kernel k(global float O) { if (threadIdx_x == 0) { O[0] = 1.0 + 2.0 * 3.0; } }"
            (fun _ -> [])
        in
        check_b "7" true (out.(0) = 7.0));
    t "parentheses override precedence" (fun () ->
        let out =
          run_src ~words:1
            "kernel k(global float O) { if (threadIdx_x == 0) { O[0] = (1.0 + 2.0) * 3.0; } }"
            (fun _ -> [])
        in
        check_b "9" true (out.(0) = 9.0));
    t "ternary and comparisons" (fun () ->
        let out =
          run_src ~words:32
            "kernel k(global float O) { O[threadIdx_x] = threadIdx_x < 16 ? 1.0 : 2.0; }"
            (fun _ -> [])
        in
        check_b "split" true (out.(0) = 1.0 && out.(31) = 2.0));
    t "unary minus and not" (fun () ->
        let out =
          run_src ~words:1
            "kernel k(global float O) { if (!(threadIdx_x != 0)) { O[0] = -3.5; } }" (fun _ -> [])
        in
        check_b "neg" true (out.(0) = -3.5));
    t "+= on scalars and arrays" (fun () ->
        let out =
          run_src ~words:1
            {|kernel k(global float O) {
                if (threadIdx_x == 0) {
                  float s = 1.0; s += 2.0; O[0] = 0.0; O[0] += s;
                }
              }|}
            (fun _ -> [])
        in
        check_b "3" true (out.(0) = 3.0));
    t "builtins: sqrtf, minf, maxi, casts" (fun () ->
        let out =
          run_src ~words:4
            {|kernel k(global float O) {
                if (threadIdx_x == 0) {
                  O[0] = sqrtf(16.0);
                  O[1] = minf(3.0, 2.0);
                  O[2] = float(maxi(4, 7));
                  O[3] = float(int(3.75));
                }
              }|}
            (fun _ -> [])
        in
        check_b "values" true (out.(0) = 4.0 && out.(1) = 2.0 && out.(2) = 7.0 && out.(3) = 3.0));
    t "for loop variants: ++, +=k, i = i + k" (fun () ->
        let src upd =
          Printf.sprintf
            {|kernel k(global float O) {
                if (threadIdx_x == 0) {
                  float s = 0.0;
                  for (int i = 0; i < 10; %s) { s += 1.0; }
                  O[0] = s;
                }
              }|}
            upd
        in
        let count upd = (run_src ~words:1 (src upd) (fun _ -> [])).(0) in
        check_b "++" true (count "i++" = 10.0);
        check_b "+=2" true (count "i += 2" = 5.0);
        check_b "i=i+5" true (count "i = i + 5" = 2.0));
    t "pragma unroll is applied as a transformation" (fun () ->
        let src p =
          Printf.sprintf
            {|kernel k(global float O) {
                float s = 0.0;
                %s
                for (int i = 0; i < 16; i++) { s += float(i); }
                O[threadIdx_x] = s;
              }|}
            p
        in
        let size p = Ptx.Prog.static_size (Ptx.Opt.run (Kir.Lower.lower (parse1 (src p)))) in
        check_b "unrolled bigger statically" true (size "#pragma unroll 4" > size "");
        check_b "complete biggest" true (size "#pragma unroll" > size "#pragma unroll 4");
        (* and the value is unchanged *)
        let v p = (run_src ~words:32 (src p) (fun _ -> [])).(0) in
        check_b "same result" true (v "" = v "#pragma unroll 4" && v "" = v "#pragma unroll"));
    t "pragma trip annotates dynamic loops" (fun () ->
        let k =
          parse1
            {|kernel k(global float O, int n) {
                float s = 0.0;
                #pragma trip 50
                for (int i = 0; i < n; i++) { s += 1.0; }
                O[threadIdx_x] = s;
              }|}
        in
        let rec find = function
          | Kir.Ast.For l :: _ -> l.Kir.Ast.trip
          | _ :: tl -> find tl
          | [] -> None
        in
        check_b "trip recorded" true (find k.Kir.Ast.body = Some 50));
    t "shared declarations and barriers" (fun () ->
        let out =
          run_src ~words:32
            {|kernel k(global float O) {
                shared float s[32];
                s[threadIdx_x] = float(threadIdx_x);
                __syncthreads();
                O[threadIdx_x] = s[31 - threadIdx_x];
              }|}
            (fun _ -> [])
        in
        check_b "reversed" true (out.(0) = 31.0 && out.(31) = 0.0));
    t "scalar params resolve as Param, arrays as Ld/Store" (fun () ->
        let k = parse1 "kernel k(global float O, float a, int n) { O[n] = a; }" in
        check_i "scalars" 2 (List.length k.Kir.Ast.scalar_params);
        check_i "arrays" 1 (List.length k.Kir.Ast.array_params));
    t "multiple kernels per file" (fun () ->
        let ks =
          Minicuda.Parser.parse
            "kernel a(global float O) { O[0] = 1.0; } kernel b(global float O) { O[0] = 2.0; }"
        in
        check_i "two" 2 (List.length ks));
    t "parse errors carry context" (fun () ->
        List.iter
          (fun src ->
            check_b "raises" true
              (try
                 ignore (Minicuda.Parser.parse src);
                 false
               with Minicuda.Parser.Error _ | Kir.Typecheck.Type_error _ -> true))
          [
            "kernel k(global float O) { O[0] = ; }";
            "kernel k(global float O) { for (int i = 0; j < 4; i++) { } }";
            "kernel k(global float O) { O[0] = 1.0 + 1; }" (* type error *);
            "kernel k() { unknown(3.0); }";
            "kernel k(global float O) { O[0] = notdeclared; }";
          ]);
    t "elaborated kernels typecheck by construction" (fun () ->
        (* Parser.kernel runs Typecheck.check; a second run must agree. *)
        let k =
          parse1
            {|kernel k(global float X, global float O, float a) {
                int gid = blockIdx_x * blockDim_x + threadIdx_x;
                O[gid] = a * X[gid];
              }|}
        in
        Kir.Typecheck.check k);
  ]

let suite = [ ("lang.lexer", lexer_tests); ("lang.parser", parser_tests) ]
