(* Tests for the util library: binary32 semantics, deterministic RNG,
   numeric helpers. *)

open Util

let check_f = Alcotest.(check (float 0.0))
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let t name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Float32                                                             *)
(* ------------------------------------------------------------------ *)

let float32_tests =
  [
    t "round is idempotent on representable values" (fun () ->
        List.iter
          (fun x -> check_f "round" (Float32.round x) (Float32.round (Float32.round x)))
          [ 0.0; 1.0; -1.5; 3.14159; 1e30; -1e-30; 0.1 ]);
    t "round narrows to 24-bit mantissa" (fun () ->
        (* 1 + 2^-25 is not representable in binary32: rounds to 1. *)
        check_f "narrow" 1.0 (Float32.round (1.0 +. (2.0 ** -25.0))));
    t "add rounds the result" (fun () ->
        (* 2^24 + 1 = 16777217 is not representable: rounds to 2^24. *)
        check_f "add" 16777216.0 (Float32.add 16777216.0 1.0));
    t "mad is multiply-then-add, each rounded (not fused)" (fun () ->
        let a = Float32.round 1.0000001 in
        check_f "mad=mul;add" (Float32.add (Float32.mul a a) 1.0) (Float32.mad a a 1.0));
    t "division" (fun () -> check_f "div" 0.5 (Float32.div 1.0 2.0));
    t "rsqrt" (fun () -> check_f "rsqrt" 0.5 (Float32.rsqrt 4.0));
    t "rcp" (fun () -> check_f "rcp" 0.25 (Float32.rcp 4.0));
    t "min/max with ordinary operands" (fun () ->
        check_f "min" 1.0 (Float32.min 1.0 2.0);
        check_f "max" 2.0 (Float32.max 1.0 2.0));
    t "abs and neg" (fun () ->
        check_f "abs" 2.5 (Float32.abs (-2.5));
        check_f "neg" (-2.5) (Float32.neg 2.5));
    t "of_int is exact for small ints" (fun () ->
        check_f "of_int" 123456.0 (Float32.of_int 123456));
    t "bits roundtrip" (fun () ->
        List.iter
          (fun x ->
            let x = Float32.round x in
            check_b "bits" true (Float32.equal_bits x (Float32.of_bits (Float32.to_bits x))))
          [ 1.5; -0.125; 3.0e7 ]);
    t "close accepts equal and rejects distant" (fun () ->
        check_b "equal" true (Float32.close 1.0 1.0);
        check_b "near" true (Float32.close 1.00001 1.0);
        check_b "far" false (Float32.close 1.1 1.0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"round is a projection (qcheck)" ~count:500
         QCheck.(float_range (-1e30) 1e30)
         (fun x ->
           let r = Float32.round x in
           Float32.round r = r));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"add commutes (qcheck)" ~count:500
         QCheck.(pair (float_range (-1e10) 1e10) (float_range (-1e10) 1e10))
         (fun (a, b) -> Float32.add a b = Float32.add b a));
  ]

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let rng_tests =
  [
    t "same seed, same stream" (fun () ->
        let a = Rng.create 42 and b = Rng.create 42 in
        for _ = 1 to 100 do
          check_i "int" (Rng.int a 1000) (Rng.int b 1000)
        done);
    t "different seeds diverge" (fun () ->
        let a = Rng.create 1 and b = Rng.create 2 in
        let xs = List.init 20 (fun _ -> Rng.int a 1000000) in
        let ys = List.init 20 (fun _ -> Rng.int b 1000000) in
        check_b "diverge" true (xs <> ys));
    t "int stays in range" (fun () ->
        let r = Rng.create 7 in
        for _ = 1 to 1000 do
          let x = Rng.int r 17 in
          check_b "range" true (x >= 0 && x < 17)
        done);
    t "float stays in [0,1)" (fun () ->
        let r = Rng.create 7 in
        for _ = 1 to 1000 do
          let x = Rng.float r in
          check_b "range" true (x >= 0.0 && x < 1.0)
        done);
    t "float_range respects bounds" (fun () ->
        let r = Rng.create 9 in
        for _ = 1 to 500 do
          let x = Rng.float_range r (-3.0) 5.0 in
          check_b "range" true (x >= -3.0 && x < 5.0)
        done);
    t "gaussian has plausible spread" (fun () ->
        let r = Rng.create 11 in
        let n = 5000 in
        let xs = Array.init n (fun _ -> Rng.gaussian r) in
        let mean = Stats.mean xs in
        check_b "mean ~ 0" true (Float.abs mean < 0.1);
        let var = Stats.mean (Array.map (fun x -> (x -. mean) ** 2.0) xs) in
        check_b "var ~ 1" true (Float.abs (var -. 1.0) < 0.15));
    t "split produces an independent stream" (fun () ->
        let a = Rng.create 3 in
        let b = Rng.split a in
        let xs = List.init 10 (fun _ -> Rng.int a 1000) in
        let ys = List.init 10 (fun _ -> Rng.int b 1000) in
        check_b "independent" true (xs <> ys));
    t "int rejects non-positive bound" (fun () ->
        let r = Rng.create 1 in
        Alcotest.check_raises "bound" (Invalid_argument "Rng.int: bound must be positive")
          (fun () -> ignore (Rng.int r 0)));
  ]

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats_tests =
  [
    t "cdiv" (fun () ->
        check_i "exact" 4 (Stats.cdiv 16 4);
        check_i "round up" 5 (Stats.cdiv 17 4);
        check_i "one" 1 (Stats.cdiv 1 4);
        check_i "zero" 0 (Stats.cdiv 0 4));
    t "argmin finds the minimum" (fun () ->
        match Stats.argmin (fun x -> float_of_int ((x - 3) * (x - 3))) [ 0; 1; 2; 3; 4 ] with
        | Some 3 -> ()
        | _ -> Alcotest.fail "wrong argmin");
    t "argmin of empty is None" (fun () ->
        check_b "none" true (Stats.argmin (fun x -> x) [] = None));
    t "argmax mirrors argmin" (fun () ->
        match Stats.argmax float_of_int [ 5; 9; 2 ] with
        | Some 9 -> ()
        | _ -> Alcotest.fail "wrong argmax");
    t "mean / sum" (fun () ->
        check_f "sum" 10.0 (Stats.sum [| 1.0; 2.0; 3.0; 4.0 |]);
        check_f "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
        check_f "mean empty" 0.0 (Stats.mean [||]));
    t "median odd and even" (fun () ->
        check_f "odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
        check_f "even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]));
    t "clamp" (fun () ->
        check_i "low" 0 (Stats.clamp 0 9 (-4));
        check_i "mid" 5 (Stats.clamp 0 9 5);
        check_i "high" 9 (Stats.clamp 0 9 99));
    t "min/max over arrays" (fun () ->
        check_f "min" (-2.0) (Stats.minimum [| 3.0; -2.0; 7.0 |]);
        check_f "max" 7.0 (Stats.maximum [| 3.0; -2.0; 7.0 |]));
    t "geomean of powers" (fun () ->
        check_b "geomean" true (Float.abs (Stats.geomean [| 1.0; 100.0 |] -. 10.0) < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"cdiv is the least sufficient multiple (qcheck)" ~count:500
         QCheck.(pair (int_range 0 10000) (int_range 1 100))
         (fun (a, b) ->
           let c = Stats.cdiv a b in
           c * b >= a && (c - 1) * b < a));
  ]

let suite =
  [
    ("util.float32", float32_tests); ("util.rng", rng_tests); ("util.stats", stats_tests);
  ]
