lib/core/candidate.ml: Format Gpu Printf Ptx
