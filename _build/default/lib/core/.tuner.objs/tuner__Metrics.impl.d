lib/core/metrics.ml: Candidate Float Gpu List
