lib/core/pareto.ml: Array Float Fun List
