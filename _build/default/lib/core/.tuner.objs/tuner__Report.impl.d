lib/core/report.ml: Array Buffer Candidate Float List Metrics Printf Search String Util
