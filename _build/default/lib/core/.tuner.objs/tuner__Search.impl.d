lib/core/search.ml: Candidate Hashtbl List Metrics Pareto String Util
