(* Pareto-optimal subset extraction (paper section 5.2).

   Points maximize both axes.  A point p is dominated when some q is at
   least as good on both axes and strictly better on one; the frontier
   is every non-dominated point.  Configurations with *identical*
   metric pairs do not dominate each other, so whole clusters survive —
   matching the paper's MRI-FHD plot where each frontier point stands
   for up to seven configurations. *)

type point = { x : float; y : float }

(* Generic frontier over any carrier: [coords] projects an element to
   its (x, y) metric pair.  O(n log n). *)
let frontier (coords : 'a -> float * float) (items : 'a list) : 'a list =
  match items with
  | [] -> []
  | _ ->
    let arr = Array.of_list items in
    let pts = Array.map coords arr in
    let order = Array.init (Array.length arr) Fun.id in
    (* Sort by x descending, y descending. *)
    Array.sort
      (fun i j ->
        let xi, yi = pts.(i) and xj, yj = pts.(j) in
        let c = compare xj xi in
        if c <> 0 then c else compare yj yi)
      order;
    let keep = Array.make (Array.length arr) false in
    let best_y = ref Float.neg_infinity in
    let i = ref 0 in
    let n = Array.length order in
    while !i < n do
      (* Process one group of equal x. *)
      let x0 = fst pts.(order.(!i)) in
      let group_max_y = snd pts.(order.(!i)) in
      (* Points in the group with y = group_max_y are mutually
         non-dominating; keep them all if they beat the running max. *)
      let j = ref !i in
      while !j < n && fst pts.(order.(!j)) = x0 do
        let y = snd pts.(order.(!j)) in
        if y = group_max_y && group_max_y > !best_y then keep.(order.(!j)) <- true;
        incr j
      done;
      if group_max_y > !best_y then best_y := group_max_y;
      i := !j
    done;
    (* Preserve input order in the result. *)
    List.filteri (fun idx _ -> keep.(idx)) items

(* The paper reads its frontier off a *plot*: "each point actually
   represents as many as seven configurations that have
   indistinguishable efficiency and utilization" (Figure 6(b)).  The
   quantized frontier reproduces that: both axes are normalized to
   [0, 1] and snapped to a grid of [resolution], and dominance is
   decided between grid cells, so metric-indistinguishable clusters
   survive or fall together.  Because cell-level dominance can (rarely)
   evict a point that is exactly Pareto-optimal, the result is the
   *union* with the exact frontier — always a superset of it. *)
let frontier_quantized ?(resolution = 0.01) (coords : 'a -> float * float) (items : 'a list) :
    'a list =
  match items with
  | [] -> []
  | _ ->
    let xs = List.map (fun p -> fst (coords p)) items in
    let ys = List.map (fun p -> snd (coords p)) items in
    let mx = List.fold_left Float.max 0.0 xs in
    let my = List.fold_left Float.max 0.0 ys in
    let q v m =
      if m <= 0.0 then 0.0 else Float.round (v /. m /. resolution) *. resolution
    in
    (* Work over indices so membership is positional, not structural. *)
    let arr = Array.of_list items in
    let idxs = List.init (Array.length arr) Fun.id in
    let keep = Array.make (Array.length arr) false in
    List.iter
      (fun i -> keep.(i) <- true)
      (frontier
         (fun i ->
           let x, y = coords arr.(i) in
           (q x mx, q y my))
         idxs);
    List.iter (fun i -> keep.(i) <- true) (frontier (fun i -> coords arr.(i)) idxs);
    List.filteri (fun i _ -> keep.(i)) items

let is_dominated (coords : 'a -> float * float) (items : 'a list) (p : 'a) : bool =
  let px, py = coords p in
  List.exists
    (fun q ->
      let qx, qy = coords q in
      qx >= px && qy >= py && (qx > px || qy > py))
    items

(* Frontier over raw points, for tests and plots. *)
let frontier_points (pts : point list) : point list =
  frontier (fun p -> (p.x, p.y)) pts
